package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"drams"
	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/federation"
	//lint:ignore depfree loadgen is harness wiring, not a component: it scrapes fleet /metrics endpoints via obs.ParseValues into BENCH reports
	"drams/internal/obs"
	"drams/internal/pap"
	"drams/internal/transport"
	"drams/internal/transport/tcp"
	"drams/internal/xacml"
)

// ErrChurnUnsupported is returned by targets that cannot kill/rejoin a
// member from inside the harness (the TCP target: its members are other
// OS processes, churned externally, e.g. by scripts/smoke_loadgen.sh).
var ErrChurnUnsupported = errors.New("loadgen: target does not support member churn")

// Target is the system under load. Implementations must be safe for
// concurrent Decide calls from the executor's worker pool.
type Target interface {
	// Tenants lists the edge tenants traffic is spread over.
	Tenants() []string
	// NewRequest mints a request with a fresh correlation ID.
	NewRequest() *xacml.Request
	// Decide runs one access decision through the tenant's PEP path.
	Decide(ctx context.Context, tenant string, req *xacml.Request) (drams.Enforcement, error)
	// FlipPolicy publishes ps as a new on-chain policy version and
	// returns once this target observes the fleet-wide activation.
	FlipPolicy(ctx context.Context, ps *xacml.PolicySet) error
	// Kill cuts the named edge tenant's federation member off;
	// Rejoin reconnects it and waits for chain catch-up.
	Kill(member string) error
	Rejoin(ctx context.Context, member string) error
	// Matched streams AlertMatched events for detection-latency
	// measurement; nil when the target has no monitor subscription.
	Matched() <-chan drams.Alert
	Close()
}

// MetricsScraper is an optional Target extension: a snapshot of the
// fleet's /metrics taken at run end, keyed by source, then full series
// name → value. cmd/drams-loadgen embeds it in the BENCH report so every
// archived run carries the fleet's counters next to its latency summary.
type MetricsScraper interface {
	ScrapeMetrics(ctx context.Context) map[string]map[string]float64
}

// BuiltinPolicy resolves a "name:version" spec (standard:v2,
// restricted:v2) to its policy set.
func BuiltinPolicy(spec string) (*xacml.PolicySet, error) {
	name, version, ok := strings.Cut(spec, ":")
	if !ok || version == "" {
		return nil, fmt.Errorf("loadgen: policy spec %q: want name:version", spec)
	}
	switch name {
	case "standard":
		return xacml.StandardPolicy(version), nil
	case "restricted":
		return xacml.RestrictedPolicy(version), nil
	}
	return nil, fmt.Errorf("loadgen: unknown policy %q (known: standard, restricted)", name)
}

// ---------------------------------------------------------------------------
// Netsim target: a full in-process deployment on the network simulator.

// NetsimConfig shapes the in-process deployment under load.
type NetsimConfig struct {
	// Clouds is the federation size (default 3: tenant-1..3 with the
	// infrastructure tenant sharing cloud-1).
	Clouds int
	// Seed pins network behaviour and identities (default 7).
	Seed uint64
	// Difficulty is the PoW difficulty in bits (default 8).
	Difficulty uint8
	// Monitoring enables the probes/analyser/monitor plane (needed for
	// alert-detection latency).
	Monitoring bool
	// NetLatency/NetJitter shape the simulated network.
	NetLatency, NetJitter time.Duration
	// EmptyBlockInterval is the idle block cadence (default 25ms).
	EmptyBlockInterval time.Duration
	// TimeoutBlocks is the M3 window (default 64, so churn-induced
	// half-logged exchanges do not time out mid-run by default).
	TimeoutBlocks uint64
}

// NetsimTarget drives a drams.Deployment over netsim, with fault-injection
// churn and in-process policy administration.
type NetsimTarget struct {
	dep     *drams.Deployment
	clients map[string]*drams.Client
	tenants []string

	alerts     <-chan drams.Alert
	stopAlerts func()
	alertCtx   context.CancelFunc

	mu     sync.Mutex
	killed map[string]bool
}

// NewNetsimTarget opens the deployment and connects per-tenant clients.
func NewNetsimTarget(cfg NetsimConfig) (*NetsimTarget, error) {
	if cfg.Clouds <= 0 {
		cfg.Clouds = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.Difficulty == 0 {
		cfg.Difficulty = 8
	}
	if cfg.EmptyBlockInterval <= 0 {
		cfg.EmptyBlockInterval = 25 * time.Millisecond
	}
	if cfg.TimeoutBlocks == 0 {
		cfg.TimeoutBlocks = 64
	}
	dep, err := drams.Open(xacml.StandardPolicy("v1"),
		drams.WithTopology(federation.SimpleTopology("faas", cfg.Clouds)),
		drams.WithSeed(cfg.Seed),
		drams.WithDifficulty(cfg.Difficulty),
		drams.WithMonitoring(cfg.Monitoring),
		drams.WithNetwork(cfg.NetLatency, cfg.NetJitter),
		drams.WithEmptyBlockInterval(cfg.EmptyBlockInterval),
		drams.WithTimeoutBlocks(cfg.TimeoutBlocks),
	)
	if err != nil {
		return nil, err
	}
	t := &NetsimTarget{
		dep:     dep,
		clients: make(map[string]*drams.Client),
		killed:  make(map[string]bool),
	}
	for _, ten := range dep.Topology().EdgeTenants() {
		c, err := dep.Client(ten.Name)
		if err != nil {
			dep.Close()
			return nil, err
		}
		t.clients[ten.Name] = c
		t.tenants = append(t.tenants, ten.Name)
	}
	if cfg.Monitoring {
		ctx, cancel := context.WithCancel(context.Background())
		ch, stop, err := dep.Alerts(ctx, drams.AlertFilter{
			Types:  []drams.AlertType{drams.AlertMatched},
			Buffer: 8192,
		})
		if err != nil {
			cancel()
			dep.Close()
			return nil, err
		}
		t.alerts, t.stopAlerts, t.alertCtx = ch, stop, cancel
	}
	return t, nil
}

// Deployment exposes the underlying deployment (tests).
func (t *NetsimTarget) Deployment() *drams.Deployment { return t.dep }

// ScrapeMetrics snapshots the deployment's gatherer — the same sample
// set /metrics would serve — under the single source key "netsim".
func (t *NetsimTarget) ScrapeMetrics(context.Context) map[string]map[string]float64 {
	vals := obs.FlattenValues(t.dep.Gatherer().Gather())
	if vals == nil {
		return nil
	}
	return map[string]map[string]float64{"netsim": vals}
}

func (t *NetsimTarget) Tenants() []string          { return t.tenants }
func (t *NetsimTarget) NewRequest() *xacml.Request { return t.dep.NewRequest() }
func (t *NetsimTarget) Matched() <-chan drams.Alert {
	return t.alerts
}

func (t *NetsimTarget) Decide(ctx context.Context, tenant string, req *xacml.Request) (drams.Enforcement, error) {
	c, ok := t.clients[tenant]
	if !ok {
		return drams.Enforcement{}, fmt.Errorf("loadgen: unknown tenant %q", tenant)
	}
	return c.Decide(ctx, req)
}

func (t *NetsimTarget) FlipPolicy(ctx context.Context, ps *xacml.PolicySet) error {
	admin, err := t.dep.Admin(t.tenants[0])
	if err != nil {
		return err
	}
	return admin.UpdatePolicy(ctx, ps, drams.UpdateOptions{})
}

// Kill partitions the victim tenant's cloud node and PEP away from the
// rest of the federation: its requests fail, its Logging Interface cannot
// reach the chain, and the member stops following the head — the netsim
// equivalent of the process crash the TCP smoke script injects.
func (t *NetsimTarget) Kill(member string) error {
	ten, ok := t.dep.Topology().Tenant(member)
	if !ok {
		return fmt.Errorf("loadgen: unknown tenant %q", member)
	}
	infra, err := t.dep.Topology().InfrastructureTenant()
	if err != nil {
		return err
	}
	if ten.Infrastructure || ten.Cloud == infra.Cloud {
		return fmt.Errorf("loadgen: refusing to kill %q: its cloud %q hosts the infrastructure plane", member, ten.Cloud)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.killed[member] {
		return fmt.Errorf("loadgen: %q is already killed", member)
	}
	t.dep.Net.Partition([]string{"node@" + ten.Cloud, federation.PEPAddr(member)})
	t.killed[member] = true
	return nil
}

// Rejoin heals the partition and pulls the victim's node back to the
// federation head before returning.
func (t *NetsimTarget) Rejoin(ctx context.Context, member string) error {
	ten, ok := t.dep.Topology().Tenant(member)
	if !ok {
		return fmt.Errorf("loadgen: unknown tenant %q", member)
	}
	t.mu.Lock()
	if !t.killed[member] {
		t.mu.Unlock()
		return fmt.Errorf("loadgen: %q is not killed", member)
	}
	delete(t.killed, member)
	t.dep.Net.Heal()
	t.mu.Unlock()

	node := t.dep.Nodes[ten.Cloud]
	infraNode := t.dep.InfraNode()
	if node == nil || infraNode == nil {
		return fmt.Errorf("loadgen: no chain node for %q", member)
	}
	for {
		if err := node.SyncFrom(infraNode.Name()); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("loadgen: rejoin %q: %w", member, ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func (t *NetsimTarget) Close() {
	if t.stopAlerts != nil {
		t.stopAlerts()
	}
	if t.alertCtx != nil {
		t.alertCtx()
	}
	t.dep.Close()
}

// ---------------------------------------------------------------------------
// TCP target: an external multi-process federation driven over real sockets.

// TCPConfig joins the harness to a running drams-node federation.
type TCPConfig struct {
	// Peers are the daemons' advertise addresses (host:port).
	Peers []string
	// Edges are the federation's edge tenant names (must match the
	// daemons' -federation flag).
	Edges []string
	// Seed must match the daemons' -seed (identities and the chain
	// allowlist derive from it).
	Seed uint64
	// Difficulty/TimeoutBlocks/RequireVerdict are the consensus-critical
	// knobs and must match the daemons'.
	Difficulty     uint8
	TimeoutBlocks  uint64
	RequireVerdict bool
	// ListenAddr is this process's bind address (default 127.0.0.1:0).
	ListenAddr string
	// PEPTimeout bounds one PEP→PDP round-trip (default 5s).
	PEPTimeout time.Duration
	// DialTimeout bounds the wait for the remote PDP to become routable
	// (default 15s).
	DialTimeout time.Duration
	// MetricsAddrs are the daemons' -metrics-addr endpoints (host:port);
	// when set, ScrapeMetrics pulls each one's /metrics at run end.
	MetricsAddrs []string
}

// TCPTarget joins a live federation as a non-mining member: it runs its
// own chain node (so it can publish policy updates through the on-chain
// PAP and observe their fleet-wide activation from its local state) and
// one local PEP per edge tenant (named lg-<tenant> to avoid colliding
// with the daemons' own PEPs) talking to the remote PDP over TCP.
type TCPTarget struct {
	tr           *tcp.Transport
	node         *blockchain.Node
	peps         map[string]*federation.PEPService
	tenants      []string
	admin        *pap.Admin
	metricsAddrs []string

	reqCounter atomic.Uint64
	stop       chan struct{}
	stopped    sync.WaitGroup
}

// NewTCPTarget connects, joins the chain, and waits for the remote PDP.
func NewTCPTarget(cfg TCPConfig) (*TCPTarget, error) {
	if len(cfg.Peers) == 0 || len(cfg.Edges) == 0 {
		return nil, fmt.Errorf("loadgen: tcp target needs peers and edge tenants")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.PEPTimeout <= 0 {
		cfg.PEPTimeout = 5 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 15 * time.Second
	}
	tr, err := tcp.New(tcp.Config{ListenAddr: cfg.ListenAddr, Peers: cfg.Peers})
	if err != nil {
		return nil, err
	}
	tenants := append(append([]string{}, cfg.Edges...), "infrastructure")
	material := drams.NewChainMaterial(cfg.Seed, tenants, drams.ChainParams{
		Difficulty:     cfg.Difficulty,
		TimeoutBlocks:  cfg.TimeoutBlocks,
		RequireVerdict: cfg.RequireVerdict,
	})
	var nodePeers []string
	for _, ten := range tenants {
		nodePeers = append(nodePeers, "node@"+ten)
	}
	node, err := blockchain.NewNode(blockchain.NodeConfig{
		Name:               "node@loadgen",
		Chain:              material.Chain,
		Network:            tr,
		Peers:              nodePeers,
		Mine:               false,
		EmptyBlockInterval: 50 * time.Millisecond,
	})
	if err != nil {
		tr.Close()
		return nil, err
	}
	node.Start()

	t := &TCPTarget{
		tr:           tr,
		node:         node,
		peps:         make(map[string]*federation.PEPService),
		tenants:      append([]string{}, cfg.Edges...),
		admin:        pap.NewAdmin(node, material.PAPID),
		metricsAddrs: append([]string{}, cfg.MetricsAddrs...),
		stop:         make(chan struct{}),
	}
	fail := func(err error) (*TCPTarget, error) {
		t.Close()
		return nil, err
	}
	if err := waitAddr(tr, federation.PDPAddr, cfg.DialTimeout); err != nil {
		return fail(err)
	}
	for _, ten := range cfg.Edges {
		pep, err := federation.NewPEPService(tr, "lg-"+ten, cfg.PEPTimeout)
		if err != nil {
			return fail(err)
		}
		t.peps[ten] = pep
	}
	// Chain catch-up: the daemons' nodes do not list node@loadgen as a
	// gossip peer, so actively pull the head on a short cadence (the same
	// batched range-sync a restarted daemon uses).
	t.stopped.Add(1)
	go func() {
		defer t.stopped.Done()
		ticker := time.NewTicker(250 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-ticker.C:
				for _, ten := range tenants {
					if t.node.SyncFrom("node@"+ten) == nil {
						break
					}
				}
			}
		}
	}()
	return t, nil
}

// waitAddr polls the transport's routing table until addr is reachable.
func waitAddr(tr transport.Transport, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, a := range tr.Addresses() {
			if a == addr {
				return nil
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("loadgen: %q never became routable (federation not up?)", addr)
}

func (t *TCPTarget) Tenants() []string { return t.tenants }

func (t *TCPTarget) NewRequest() *xacml.Request {
	return xacml.NewRequest(fmt.Sprintf("lg-%012x", t.reqCounter.Add(1)))
}

func (t *TCPTarget) Decide(ctx context.Context, tenant string, req *xacml.Request) (drams.Enforcement, error) {
	pep, ok := t.peps[tenant]
	if !ok {
		return drams.Enforcement{}, fmt.Errorf("loadgen: unknown tenant %q", tenant)
	}
	return pep.Decide(ctx, req)
}

// FlipPolicy publishes the update through this member's own node (any
// member can administer; the transaction reaches the producers by gossip)
// and waits until the local chain — synced on the catch-up cadence —
// reports the new version active fleet-wide.
func (t *TCPTarget) FlipPolicy(ctx context.Context, ps *xacml.PolicySet) error {
	prop, err := t.admin.UpdatePolicy(ctx, ps, pap.UpdateOptions{ActivateDelta: 2})
	if err != nil {
		return err
	}
	for {
		var active string
		t.node.Chain().ReadState(core.PolicyContractName, func(st contract.StateDB) {
			active, _, _ = core.ReadActivePolicy(st)
		})
		if active == prop.Version {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("loadgen: policy %s activation not observed: %w", prop.Version, ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// Height reports the local chain height (smoke-script diagnostics).
func (t *TCPTarget) Height() uint64 { return t.node.Chain().Height() }

// ScrapeMetrics pulls /metrics from each configured daemon endpoint,
// keyed by address. A member that fails to answer (crashed, no
// -metrics-addr) is skipped rather than failing the run — the report
// records what the surviving fleet exposed.
func (t *TCPTarget) ScrapeMetrics(ctx context.Context) map[string]map[string]float64 {
	out := make(map[string]map[string]float64)
	client := &http.Client{Timeout: 5 * time.Second}
	for _, addr := range t.metricsAddrs {
		req, err := http.NewRequestWithContext(ctx, "GET", "http://"+addr+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		vals, err := obs.ParseValues(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		out[addr] = vals
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func (t *TCPTarget) Kill(string) error                    { return ErrChurnUnsupported }
func (t *TCPTarget) Rejoin(context.Context, string) error { return ErrChurnUnsupported }
func (t *TCPTarget) Matched() <-chan drams.Alert          { return nil }

func (t *TCPTarget) Close() {
	select {
	case <-t.stop:
	default:
		close(t.stop)
	}
	t.stopped.Wait()
	t.node.Stop()
	t.tr.Close()
}
