// Package hybrid implements the hybrid database+blockchain store sketched
// in the paper's §III Log Size discussion (reference [9], "Blockchain-based
// database to ensure data integrity in cloud computing environments"):
// writes land in a local write-ahead-logged database at database speed,
// while Merkle roots of write batches are periodically anchored on the
// federation blockchain. Integrity audits replay the database against the
// anchored roots: any tampering of an anchored entry is detected at the
// next audit, and the anchoring period bounds the window of unprotected
// writes — the latency/integrity trade-off the paper describes.
package hybrid

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"drams/internal/blockchain"
	"drams/internal/clock"
	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/merkle"
	"drams/internal/store"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("hybrid: store closed")

// Config parameterises a hybrid store.
type Config struct {
	// Stream names the anchor stream on-chain (unique per store).
	Stream string
	// BatchSize B: a batch is anchored when it holds this many entries.
	BatchSize int
	// FlushInterval T: a non-empty batch older than this is anchored even
	// if below BatchSize (0 disables time-based flushing).
	FlushInterval time.Duration
	// Sender submits anchor transactions (its identity must be on the
	// chain allowlist).
	Sender *blockchain.Sender
	// Node provides chain state access for audits.
	Node *blockchain.Node
	// AnchorContract is the on-chain anchor contract name (default
	// "anchor").
	AnchorContract string
	// DB is the backing database (default: in-memory).
	DB *store.KV
	// WaitConfirmations > 0 makes each anchor wait for inclusion.
	WaitConfirmations uint64
	// Clock is the time source.
	Clock clock.Clock
}

// entryRecord is the append-only log row (the auditable unit).
type entryRecord struct {
	Key   string `json:"key"`
	Value []byte `json:"value"`
}

func (e entryRecord) leaf() []byte {
	b, err := json.Marshal(e)
	if err != nil {
		panic(fmt.Sprintf("hybrid: encode entry: %v", err))
	}
	return b
}

// Store is the hybrid store.
type Store struct {
	cfg Config
	db  *store.KV
	clk clock.Clock

	mu         sync.Mutex
	seq        uint64 // current (unanchored) batch sequence
	pending    []entryRecord
	batchBegan time.Time
	closed     bool

	anchorsSubmitted int64
	writes           int64
}

// Open creates a hybrid store.
func Open(cfg Config) (*Store, error) {
	if cfg.Stream == "" {
		return nil, errors.New("hybrid: Config.Stream required")
	}
	if cfg.Sender == nil || cfg.Node == nil {
		return nil, errors.New("hybrid: Config.Sender and Config.Node required")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.AnchorContract == "" {
		cfg.AnchorContract = "anchor"
	}
	if cfg.DB == nil {
		cfg.DB = store.NewMemory()
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	s := &Store{cfg: cfg, db: cfg.DB, clk: cfg.Clock, seq: 1}
	s.batchBegan = s.clk.Now()
	return s, nil
}

// Stats reports write and anchoring counters.
type Stats struct {
	Writes           int64
	AnchorsSubmitted int64
	PendingEntries   int
	CurrentBatch     uint64
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Writes:           s.writes,
		AnchorsSubmitted: s.anchorsSubmitted,
		PendingEntries:   len(s.pending),
		CurrentBatch:     s.seq,
	}
}

func logKey(seq uint64, idx int) string { return fmt.Sprintf("log/%016x/%08x", seq, idx) }
func dataKey(key string) string         { return "data/" + key }

// Put writes a key/value pair: it is immediately durable in the database
// and joins the current batch for the next anchor.
func (s *Store) Put(ctx context.Context, key string, value []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	rec := entryRecord{Key: key, Value: append([]byte(nil), value...)}
	idx := len(s.pending)
	seq := s.seq
	if err := s.db.Batch(map[string][]byte{
		dataKey(key):     rec.Value,
		logKey(seq, idx): rec.leaf(),
	}); err != nil {
		s.mu.Unlock()
		return err
	}
	s.pending = append(s.pending, rec)
	s.writes++
	due := len(s.pending) >= s.cfg.BatchSize ||
		(s.cfg.FlushInterval > 0 && s.clk.Since(s.batchBegan) >= s.cfg.FlushInterval)
	var flushErr error
	if due {
		flushErr = s.flushLocked(ctx)
	}
	s.mu.Unlock()
	return flushErr
}

// Get reads the current value for a key.
func (s *Store) Get(key string) ([]byte, error) {
	return s.db.Get(dataKey(key))
}

// Flush anchors the current partial batch (no-op when empty).
func (s *Store) Flush(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked(ctx)
}

func (s *Store) flushLocked(ctx context.Context) error {
	if len(s.pending) == 0 {
		return nil
	}
	leaves := make([][]byte, len(s.pending))
	for i, rec := range s.pending {
		leaves[i] = rec.leaf()
	}
	tree, err := merkle.Build(leaves)
	if err != nil {
		return fmt.Errorf("hybrid: build batch tree: %w", err)
	}
	args, err := json.Marshal(contract.AnchorArgs{
		Stream: s.cfg.Stream,
		Seq:    s.seq,
		Root:   tree.Root(),
		Count:  len(s.pending),
	})
	if err != nil {
		return fmt.Errorf("hybrid: encode anchor: %w", err)
	}
	call := contract.Call{Contract: s.cfg.AnchorContract, Method: "anchor", Args: args}
	if s.cfg.WaitConfirmations > 0 {
		if _, err := s.cfg.Sender.SendAndWait(ctx, call, s.cfg.WaitConfirmations); err != nil {
			return fmt.Errorf("hybrid: anchor batch %d: %w", s.seq, err)
		}
	} else {
		if _, err := s.cfg.Sender.Send(call); err != nil {
			return fmt.Errorf("hybrid: anchor batch %d: %w", s.seq, err)
		}
	}
	s.anchorsSubmitted++
	s.seq++
	s.pending = s.pending[:0]
	s.batchBegan = s.clk.Now()
	return nil
}

// Close flushes the current batch and closes the store (the backing DB is
// left open for the caller).
func (s *Store) Close(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.flushLocked(ctx)
	s.closed = true
	return err
}

// Corruption is one integrity violation found by an audit.
type Corruption struct {
	Batch  uint64 `json:"batch"`
	Index  int    `json:"index,omitempty"`
	Key    string `json:"key,omitempty"`
	Reason string `json:"reason"`
}

// AuditReport summarises an integrity audit.
type AuditReport struct {
	BatchesChecked int
	EntriesChecked int
	PendingEntries int // written but not yet anchored (unprotected window)
	Corruptions    []Corruption
}

// Clean reports whether the audit found no corruption.
func (r AuditReport) Clean() bool { return len(r.Corruptions) == 0 }

// Audit verifies the database against every on-chain anchor of this
// store's stream: each anchored batch's entries are re-read from the log,
// their Merkle root recomputed and compared, and each key's current value
// checked against its latest logged write.
func (s *Store) Audit() AuditReport {
	var rep AuditReport
	s.mu.Lock()
	rep.PendingEntries = len(s.pending)
	s.mu.Unlock()

	var anchors []contract.AnchorRecord
	s.cfg.Node.Chain().ReadState(s.cfg.AnchorContract, func(st contract.StateDB) {
		anchors = contract.ListAnchors(st, s.cfg.Stream)
	})

	latest := make(map[string][]byte) // key → last anchored value
	for seq := uint64(1); int(seq) <= len(anchors); seq++ {
		anchor := anchors[seq-1]
		rep.BatchesChecked++
		leaves := make([][]byte, 0, anchor.Count)
		broken := false
		for idx := 0; idx < anchor.Count; idx++ {
			raw, err := s.db.Get(logKey(seq, idx))
			if err != nil {
				rep.Corruptions = append(rep.Corruptions, Corruption{
					Batch: seq, Index: idx, Reason: "log entry missing",
				})
				broken = true
				continue
			}
			leaves = append(leaves, raw)
			var rec entryRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				rep.Corruptions = append(rep.Corruptions, Corruption{
					Batch: seq, Index: idx, Reason: "log entry unparsable",
				})
				broken = true
				continue
			}
			latest[rec.Key] = rec.Value
			rep.EntriesChecked++
		}
		if broken {
			continue
		}
		root := merkle.RootOf(leaves)
		if root != anchor.Root {
			rep.Corruptions = append(rep.Corruptions, Corruption{
				Batch:  seq,
				Reason: fmt.Sprintf("batch root %s does not match anchored %s", root.Short(), anchor.Root.Short()),
			})
		}
	}
	// Current values must match the last anchored write for each key
	// (pending writes are checked against the in-memory batch below).
	s.mu.Lock()
	for _, rec := range s.pending {
		latest[rec.Key] = rec.Value
	}
	s.mu.Unlock()
	for key, want := range latest {
		got, err := s.db.Get(dataKey(key))
		if err != nil {
			rep.Corruptions = append(rep.Corruptions, Corruption{Key: key, Reason: "current value missing"})
			continue
		}
		if string(got) != string(want) {
			rep.Corruptions = append(rep.Corruptions, Corruption{Key: key, Reason: "current value differs from logged write"})
		}
	}
	return rep
}

// ProveEntry produces a Merkle membership proof for entry idx of an
// anchored batch, verifiable against the on-chain root by a third party.
func (s *Store) ProveEntry(seq uint64, idx int) (merkle.Proof, crypto.Digest, error) {
	var anchor contract.AnchorRecord
	found := false
	s.cfg.Node.Chain().ReadState(s.cfg.AnchorContract, func(st contract.StateDB) {
		anchor, found = contract.ReadAnchor(st, s.cfg.Stream, seq)
	})
	if !found {
		return merkle.Proof{}, crypto.Digest{}, fmt.Errorf("hybrid: batch %d not anchored", seq)
	}
	leaves := make([][]byte, anchor.Count)
	for i := 0; i < anchor.Count; i++ {
		raw, err := s.db.Get(logKey(seq, i))
		if err != nil {
			return merkle.Proof{}, crypto.Digest{}, fmt.Errorf("hybrid: batch %d entry %d: %w", seq, i, err)
		}
		leaves[i] = raw
	}
	tree, err := merkle.Build(leaves)
	if err != nil {
		return merkle.Proof{}, crypto.Digest{}, err
	}
	proof, err := tree.Prove(idx)
	if err != nil {
		return merkle.Proof{}, crypto.Digest{}, err
	}
	return proof, anchor.Root, nil
}

// EntryBytes returns the raw log bytes for (seq, idx) so a verifier can
// check a proof.
func (s *Store) EntryBytes(seq uint64, idx int) ([]byte, error) {
	return s.db.Get(logKey(seq, idx))
}

// TamperLogEntry corrupts a logged entry directly in the database,
// bypassing the API — the attacker model for E4/E5 experiments.
func (s *Store) TamperLogEntry(seq uint64, idx int, newValue []byte) bool {
	rec := entryRecord{Key: fmt.Sprintf("tampered-%d-%d", seq, idx), Value: newValue}
	return s.db.TamperUnderlying(logKey(seq, idx), rec.leaf())
}

// TamperCurrentValue corrupts a key's current value in place.
func (s *Store) TamperCurrentValue(key string, newValue []byte) bool {
	return s.db.TamperUnderlying(dataKey(key), newValue)
}
