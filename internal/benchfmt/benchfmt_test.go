package benchfmt

import (
	"strings"
	"testing"
	"time"

	"drams/internal/metrics"
)

func TestReportRoundTrip(t *testing.T) {
	h := metrics.NewHistogram(0)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 10)
	}
	r := New("loadgen_unit test/demo", "loadgen")
	r.ElapsedMS = 1234.5
	r.Pass = false
	r.Config = map[string]any{"rate": 150}
	r.Metrics = map[string]Metric{"latency_ms": FromSummary(h.Snapshot(), "ms")}
	r.Thresholds = []ThresholdVerdict{
		{Expr: "p99<5ms", Metric: "p99", Actual: 99.0, Pass: false},
	}

	if got := r.Filename(); got != "BENCH_loadgen_unit_test_demo.json" {
		t.Fatalf("Filename() = %q: unsafe characters must be sanitized", got)
	}
	dir := t.TempDir()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Name != r.Name || got.Kind != "loadgen" || got.Pass {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	m := got.Metrics["latency_ms"]
	if m.Count != 1000 || m.Unit != "ms" || m.P99 < m.P50 || m.P50 <= 0 {
		t.Fatalf("metric mangled: %+v", m)
	}
	if len(got.Thresholds) != 1 || got.Thresholds[0].Pass || got.Thresholds[0].Expr != "p99<5ms" {
		t.Fatalf("thresholds mangled: %+v", got.Thresholds)
	}
	if got.GoVersion == "" || got.CPUs <= 0 || got.StartedAt.IsZero() ||
		time.Since(got.StartedAt) > time.Hour {
		t.Fatalf("environment fingerprint missing: %+v", got)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	r := New("schema-check", "loadgen")
	r.Schema = "drams-bench/999"
	path, err := r.WriteFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// WriteFile preserves a non-empty schema; ReadFile must reject it.
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("expected schema error, got %v", err)
	}
}

func TestGitSHAFromEnv(t *testing.T) {
	t.Setenv("GIT_SHA", "cafe00cafe00")
	if r := New("env", "loadgen"); r.GitSHA != "cafe00cafe00" {
		t.Fatalf("GitSHA = %q, want env override", r.GitSHA)
	}
}
