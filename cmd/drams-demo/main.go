// drams-demo walks through the Figure-1 architecture end to end: it builds
// a two-cloud FaaS federation with DRAMS attached, serves clean traffic,
// then compromises components one by one and shows the monitor catching
// each attack.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"drams"
	"drams/internal/core"
	"drams/internal/federation"
	"drams/internal/xacml"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "demo failed:", err)
		os.Exit(1)
	}
}

func policy() *xacml.PolicySet {
	match := func(cat xacml.Category, id xacml.AttributeID, v string) xacml.Match {
		return xacml.Match{Op: xacml.CmpEq, Attr: xacml.Designator{Cat: cat, ID: id}, Lit: xacml.String(v)}
	}
	doctorRead := &xacml.Rule{ID: "doctor-read", Effect: xacml.EffectPermit,
		Target: xacml.Target{AnyOf: []xacml.AnyOf{{AllOf: []xacml.AllOf{{Matches: []xacml.Match{
			match(xacml.CatSubject, "role", "doctor"), match(xacml.CatAction, "op", "read"),
		}}}}}}}
	deny := &xacml.Rule{ID: "default-deny", Effect: xacml.EffectDeny}
	return &xacml.PolicySet{ID: "records", Version: "v1", Alg: xacml.DenyUnlessPermit,
		Items: []xacml.PolicyItem{{Policy: &xacml.Policy{ID: "p", Version: "1",
			Alg: xacml.FirstApplicable, Rules: []*xacml.Rule{doctorRead, deny}}}}}
}

func run() error {
	fmt.Println("DRAMS demo — Decentralised Runtime Access Monitoring System")
	fmt.Println("=============================================================")
	fmt.Println()
	fmt.Println("[1/5] deploying the Figure-1 federation:")
	fmt.Println("      2 clouds, 2 edge tenants + infrastructure tenant,")
	fmt.Println("      PDP/PRP + PEPs + agents + LIs + 2-node chain + analyser")
	dep, err := drams.Open(policy(),
		drams.WithDifficulty(8),
		drams.WithTimeoutBlocks(25),
		drams.WithEmptyBlockInterval(20*time.Millisecond),
		drams.WithSeed(2026),
	)
	if err != nil {
		return err
	}
	defer dep.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Stream every security alert the monitor raises, as it lands.
	alerts, stopAlerts, err := dep.Alerts(ctx, drams.AlertFilter{})
	if err != nil {
		return err
	}
	defer stopAlerts()
	go func() {
		for a := range alerts {
			fmt.Printf("      🔔 ALERT %s\n", a)
		}
	}()

	clients := map[string]*drams.Client{}
	for _, tenant := range []string{"tenant-1", "tenant-2"} {
		c, err := dep.Client(tenant)
		if err != nil {
			return err
		}
		clients[tenant] = c
	}

	fmt.Println()
	fmt.Println("[2/5] clean traffic: a doctor reads a record via tenant-1's PEP")
	req := clients["tenant-1"].NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	enf, err := clients["tenant-1"].Decide(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("      decision enforced: %s\n", enf.Decision)
	if err := dep.WaitForMatched(ctx, req.ID); err != nil {
		return err
	}
	fmt.Println("      all four probe logs matched on-chain; analyser verdict agrees ✓")

	fmt.Println()
	fmt.Println("[3/5] attack: compromised PEP grants an intern's denied request (A3)")
	_ = dep.TamperPEP("tenant-1", &drams.Tamper{
		Enforce: func(xacml.Decision) xacml.Decision { return xacml.Permit },
	})
	evil := clients["tenant-1"].NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("intern")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	enf, err = clients["tenant-1"].Decide(ctx, evil)
	if err != nil {
		return err
	}
	fmt.Printf("      PEP enforced: %s (the PDP said Deny)\n", enf.Decision)
	if _, err := dep.WaitForAlert(ctx, evil.ID, core.AlertEnforcementMismatch); err != nil {
		return err
	}
	fmt.Println("      detected: enforcement-mismatch alert on-chain ✓")
	_ = dep.TamperPEP("tenant-1", nil)

	fmt.Println()
	fmt.Println("[4/5] attack: request suppressed in transit (A6)")
	_ = dep.TamperPEP("tenant-2", &drams.Tamper{DropRequest: true})
	dropped := clients["tenant-2"].NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	if _, err := clients["tenant-2"].Decide(ctx, dropped); err != federation.ErrRequestDropped {
		fmt.Printf("      (request outcome: %v)\n", err)
	}
	if _, err := dep.WaitForAlert(ctx, dropped.ID, core.AlertMessageSuppressed); err != nil {
		return err
	}
	fmt.Println("      detected: message-suppressed alert after the timeout window ✓")
	_ = dep.TamperPEP("tenant-2", nil)

	fmt.Println()
	fmt.Println("[5/5] final monitor state:")
	st := dep.Monitor.Stats()
	fmt.Printf("      log records seen : %d\n", st.LogsSeen)
	fmt.Printf("      matched exchanges: %d\n", st.Matched)
	fmt.Printf("      alerts           : %d\n", st.AlertsSeen)
	for typ, n := range st.AlertsByType {
		fmt.Printf("        %-24s %d\n", typ, n)
	}
	fmt.Printf("      chain height     : %d\n", dep.InfraNode().Chain().Height())
	fmt.Println()
	fmt.Println("demo complete")
	return nil
}
