package xacml

import (
	"encoding/json"
	"testing"
)

func TestObligationsOnDenyPath(t *testing.T) {
	denyRule := &Rule{ID: "deny-interns", Effect: EffectDeny,
		Target: roleTarget("intern"),
		Obligs: []Obligation{{ID: "alert-security", FulfillOn: EffectDeny}}}
	pol := &Policy{ID: "p", Version: "1", Alg: FirstApplicable, Rules: []*Rule{denyRule}}
	ps := &PolicySet{ID: "s", Version: "1", Alg: PermitUnlessDeny,
		Items: []PolicyItem{{Policy: pol}}}
	pdp := NewPDP(ps)
	res, err := pdp.Evaluate(roleReq("intern"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Deny {
		t.Fatalf("decision = %s", res.Decision)
	}
	if len(res.Obligations) != 1 || res.Obligations[0].ID != "alert-security" {
		t.Fatalf("obligations = %v", res.Obligations)
	}
}

func TestUnknownCmpOpIsIndeterminate(t *testing.T) {
	m := Match{Op: CmpOp("~="), Attr: Designator{Cat: CatSubject, ID: "role"}, Lit: String("x")}
	r := roleReq("x")
	if got := m.Evaluate(r); got != MatchIndeterminate {
		t.Fatalf("unknown op = %s", got)
	}
	e := &CmpExpr{Op: CmpOp("~="), Attr: Designator{Cat: CatSubject, ID: "role"}, Lit: String("x")}
	if _, err := e.Eval(r); err == nil {
		t.Fatal("unknown op in condition did not error")
	}
}

func TestPrefixOpNeedsStrings(t *testing.T) {
	r := NewRequest("t").Add(CatSubject, "n", Int(5))
	e := &CmpExpr{Op: CmpPrefix, Attr: Designator{Cat: CatSubject, ID: "n"}, Lit: Int(5)}
	if _, err := e.Eval(r); err == nil {
		t.Fatal("prefix on ints accepted")
	}
}

func TestBagJSONRoundTrip(t *testing.T) {
	b := Bag{String("a"), Int(2), Bool(true)}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back Bag
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || !back.Contains(String("a")) || !back.Contains(Int(2)) || !back.Contains(Bool(true)) {
		t.Fatalf("round trip = %v", back)
	}
}

func TestEmptyPolicySetEvaluates(t *testing.T) {
	ps := &PolicySet{ID: "empty", Version: "1", Alg: DenyOverrides}
	if got := ps.Evaluate(NewRequest("x")); got != NotApplicable {
		t.Fatalf("empty set = %s", got)
	}
	// deny-unless-permit turns emptiness into Deny.
	ps.Alg = DenyUnlessPermit
	if got := ps.Evaluate(NewRequest("x")); got != Deny {
		t.Fatalf("empty deny-unless-permit = %s", got)
	}
}

func TestPolicyItemZeroValue(t *testing.T) {
	var pi PolicyItem
	if got := pi.Evaluate(NewRequest("x")); got != NotApplicable {
		t.Fatalf("empty item = %s", got)
	}
	if pi.ID() != "" {
		t.Fatalf("empty item id = %q", pi.ID())
	}
}

func TestOnlyOneApplicableAtRuleLevelIsAuthoringError(t *testing.T) {
	pol := &Policy{ID: "p", Version: "1", Alg: OnlyOneApplicable,
		Rules: []*Rule{{ID: "r", Effect: EffectPermit}}}
	if got := pol.Evaluate(NewRequest("x")); got != IndeterminateDP {
		t.Fatalf("rule-level only-one-applicable = %s", got)
	}
}

func TestCombiningAlgsEnumeration(t *testing.T) {
	if len(CombiningAlgs()) != 6 {
		t.Fatalf("algs = %v", CombiningAlgs())
	}
	if len(Categories()) != 4 {
		t.Fatalf("categories = %v", Categories())
	}
}

func TestTargetStringReadable(t *testing.T) {
	tgt := TargetMatching(CatSubject, "role", String("doctor"))
	s := tgt.String()
	if s == "" || s == "true" {
		t.Fatalf("target string = %q", s)
	}
	if (Target{}).String() != "true" {
		t.Fatal("empty target should render as true")
	}
}

func TestMatchResultString(t *testing.T) {
	for mr, want := range map[MatchResult]string{
		MatchNo: "NoMatch", MatchYes: "Match", MatchIndeterminate: "Indeterminate",
	} {
		if mr.String() != want {
			t.Errorf("%d.String() = %q", mr, mr.String())
		}
	}
}

func TestDecisionAndEffectStrings(t *testing.T) {
	if EffectPermit.String() != "Permit" || EffectDeny.String() != "Deny" {
		t.Fatal("effect strings wrong")
	}
	for d, want := range map[Decision]string{
		NotApplicable:   "NotApplicable",
		Permit:          "Permit",
		Deny:            "Deny",
		IndeterminateP:  "Indeterminate{P}",
		IndeterminateD:  "Indeterminate{D}",
		IndeterminateDP: "Indeterminate{DP}",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), want)
		}
	}
}
