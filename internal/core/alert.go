package core

import (
	"encoding/json"
	"fmt"
)

// AlertType classifies a detected integrity violation. Each maps to one of
// the matching checks M1–M6 in DESIGN.md and to a threat from the paper's
// §I threat model.
type AlertType string

// Alert types.
const (
	// AlertRequestTampered (M1): the request the PDP received differs
	// from the one the PEP sent.
	AlertRequestTampered AlertType = "request-tampered"
	// AlertResponseTampered (M2): the response the PEP received differs
	// from the one the PDP sent (content or decision).
	AlertResponseTampered AlertType = "response-tampered"
	// AlertMessageSuppressed (M3): a leg of the exchange never produced
	// its log within the timeout window.
	AlertMessageSuppressed AlertType = "message-suppressed"
	// AlertEnforcementMismatch (M4): the PEP enforced a different effect
	// than the decision it received.
	AlertEnforcementMismatch AlertType = "enforcement-mismatch"
	// AlertDecisionIncorrect (M5): the PDP's decision differs from the
	// Analyser's expected decision under the authoritative policy.
	AlertDecisionIncorrect AlertType = "decision-incorrect"
	// AlertPolicyTampered (M6): the PDP evaluated a policy whose digest
	// does not match the PAP-anchored digest for the active version.
	AlertPolicyTampered AlertType = "policy-tampered"
	// AlertVerdictMissing (M5 liveness): the Analyser produced no verdict
	// within the timeout window (only when verdicts are required).
	AlertVerdictMissing AlertType = "verdict-missing"
	// AlertEquivocation: one component logged two conflicting records for
	// the same interception point of the same request.
	AlertEquivocation AlertType = "equivocation"
)

// AlertMatched is a synthetic stream event type: it never appears on-chain
// and is emitted only on Monitor subscription channels when an exchange
// completes cleanly (the Matched contract event). It carries ReqID and
// Height but no Tenant. It is deliberately excluded from AllAlertTypes.
const AlertMatched AlertType = "matched"

// Policy rollout stream events. Like AlertMatched they are synthetic
// (opt-in by listing the type in AlertFilter.Types, excluded from
// AllAlertTypes): they describe this member's observation of the
// chain-replicated policy lifecycle, not an on-chain integrity violation.
// Their ReqID carries "version@height" so re-activations stay distinct.
const (
	// AlertPolicyActivated: the local watcher flipped the PDP (or, on
	// PDP-less members, acknowledged the fleet-wide flip) to the version
	// activated on-chain at Height.
	AlertPolicyActivated AlertType = "policy-activated"
	// AlertPolicyRejected: a policy update could not be applied locally
	// (digest mismatch against the anchored root, unparseable bytes) or
	// was rejected on-chain (conflicting digest for an existing version).
	AlertPolicyRejected AlertType = "policy-rejected"
)

// IsSynthetic reports whether t is a monitor-local stream event rather than
// an on-chain security alert.
func (t AlertType) IsSynthetic() bool {
	return t == AlertMatched || t == AlertPolicyActivated || t == AlertPolicyRejected
}

// AllAlertTypes enumerates every alert the contract can raise.
func AllAlertTypes() []AlertType {
	return []AlertType{
		AlertRequestTampered, AlertResponseTampered, AlertMessageSuppressed,
		AlertEnforcementMismatch, AlertDecisionIncorrect, AlertPolicyTampered,
		AlertVerdictMissing, AlertEquivocation,
	}
}

// Alert is the payload of an on-chain security-alert event.
type Alert struct {
	Type   AlertType `json:"type"`
	ReqID  string    `json:"reqId"`
	Tenant string    `json:"tenant,omitempty"`
	// Detail is a human-readable explanation (no confidential content).
	Detail string `json:"detail"`
	// Height is the block height at which the mismatch became visible.
	Height uint64 `json:"height"`
}

// Encode serialises the alert.
func (a Alert) Encode() []byte {
	b, err := json.Marshal(a)
	if err != nil {
		panic(fmt.Sprintf("core: encode alert: %v", err))
	}
	return b
}

// DecodeAlert parses a JSON alert.
func DecodeAlert(data []byte) (Alert, error) {
	var a Alert
	if err := json.Unmarshal(data, &a); err != nil {
		return Alert{}, fmt.Errorf("core: decode alert: %w", err)
	}
	return a, nil
}

// String renders the alert for operator display.
func (a Alert) String() string {
	return fmt.Sprintf("[%s] req=%s tenant=%s height=%d: %s", a.Type, a.ReqID, a.Tenant, a.Height, a.Detail)
}
