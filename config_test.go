package drams_test

import (
	"strings"
	"testing"

	"drams"
	"drams/internal/federation"
	"drams/internal/xacml"
)

func TestNewRequiresPolicy(t *testing.T) {
	if _, err := drams.New(drams.Config{}); err == nil {
		t.Fatal("policyless config accepted")
	}
}

func TestNewRejectsInvalidTopology(t *testing.T) {
	bad := &federation.Topology{
		Name:    "bad",
		Clouds:  []federation.Cloud{{Name: "c"}},
		Tenants: []federation.Tenant{{Name: "t", Cloud: "c"}}, // no infrastructure
	}
	_, err := drams.New(drams.Config{Policy: testPolicy("v1"), Topology: bad})
	if err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestRequestUnknownTenant(t *testing.T) {
	dep := testDeployment(t, nil)
	if _, err := dep.Request("ghost-tenant", dep.NewRequest()); err == nil {
		t.Fatal("unknown tenant accepted")
	}
	if err := dep.TamperPEP("ghost-tenant", nil); err == nil {
		t.Fatal("tampering unknown tenant accepted")
	}
}

func TestRequestAssignsMissingID(t *testing.T) {
	dep := testDeployment(t, nil)
	req := xacml.NewRequest("").
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	if _, err := dep.Request("tenant-1", req); err != nil {
		t.Fatal(err)
	}
	if req.ID == "" {
		t.Fatal("request ID not assigned")
	}
}

func TestPublishDuplicateVersionFails(t *testing.T) {
	dep := testDeployment(t, nil)
	if err := dep.PublishPolicy(testPolicy("v1")); err == nil ||
		!strings.Contains(err.Error(), "already published") {
		t.Fatalf("duplicate version: %v", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	dep, err := drams.New(drams.Config{Policy: testPolicy("v1"), Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	dep.Close()
	dep.Close() // second close must be a no-op
}

func TestDeterministicIdentitiesAcrossDeployments(t *testing.T) {
	// Same seed → same component identities → a persisted chain from one
	// run validates in the next (restartability).
	d1 := testDeployment(t, nil)
	d2, err := drams.New(drams.Config{
		Policy: testPolicy("v1"), Difficulty: 6, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d1.Key != d2.Key {
		t.Fatal("shared key differs across same-seed deployments")
	}
	n1 := d1.InfraNode().Chain().Identities().Len()
	n2 := d2.InfraNode().Chain().Identities().Len()
	if n1 != n2 {
		t.Fatalf("identity counts differ: %d vs %d", n1, n2)
	}
}

func TestTopologyAccessor(t *testing.T) {
	dep := testDeployment(t, nil)
	top := dep.Topology()
	if top == nil || len(top.EdgeTenants()) != 2 {
		t.Fatalf("topology = %+v", top)
	}
	if dep.InfraNode() == nil {
		t.Fatal("no infra node")
	}
}
