package experiment

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"drams/internal/attack"
	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/logger"
	"drams/internal/netsim"
	"drams/internal/xacml"
)

// V8Params parameterise the hot-path benchmark: the end-to-end effect of the
// binary wire codec, Merkle-batched probe anchoring, and parallel block
// apply, each measured against its pre-optimisation baseline.
type V8Params struct {
	// Requests is the number of decisions measured per transport backend.
	Requests int
	// Batch is the DecideBatch pipeline depth.
	Batch int
	// Records is the probe-record burst for the anchoring-count comparison.
	Records int
	// Window is the LI flush window under test (the deployed default is 16).
	Window int
	// ApplyBlocks/ApplyTxs shape the block-apply comparison: ApplyBlocks
	// blocks of ApplyTxs disjoint-key transactions each.
	ApplyBlocks, ApplyTxs int
	// V7Trials re-runs the full V7 attack catalogue with this many trials
	// per class under batched anchoring; 0 skips the detection row.
	V7Trials int
}

// DefaultV8Params measures 512 decisions per backend, a 64-record anchoring
// burst at the default window, four 128-tx blocks, and one trial of every
// attack class.
func DefaultV8Params() V8Params {
	return V8Params{Requests: 512, Batch: 64, Records: 64, Window: 16,
		ApplyBlocks: 4, ApplyTxs: 128, V7Trials: 1}
}

// allocsPerRun measures the average number of heap allocations per call to f
// (same protocol as testing.AllocsPerRun, without importing testing into a
// shipped binary).
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// v8DecideRate measures pipelined DecideBatch throughput on one backend.
func v8DecideRate(p V8Params, newBackend func(*xacml.PolicySet) (*v4Backend, error)) (string, float64, error) {
	b, err := newBackend(StandardPolicy("v1"))
	if err != nil {
		return "", 0, err
	}
	defer b.close()
	newReqs := func() []*xacml.Request {
		reqs := make([]*xacml.Request, p.Requests)
		roles := []string{"doctor", "nurse", "intern"}
		for i := range reqs {
			reqs[i] = xacml.NewRequest(fmt.Sprintf("v8-%d", i)).
				Add(xacml.CatSubject, "role", xacml.String(roles[i%len(roles)])).
				Add(xacml.CatAction, "op", xacml.String("read")).
				Add(xacml.CatResource, "type", xacml.String("record"))
		}
		return reqs
	}
	ctx := context.Background()
	if _, err := b.pep.DecideBatch(ctx, newReqs()); err != nil {
		return "", 0, fmt.Errorf("V8 %s warm-up: %w", b.name, err)
	}
	reqs := newReqs()
	start := time.Now()
	for off := 0; off < len(reqs); off += p.Batch {
		end := off + p.Batch
		if end > len(reqs) {
			end = len(reqs)
		}
		if _, err := b.pep.DecideBatch(ctx, reqs[off:end]); err != nil {
			return "", 0, fmt.Errorf("V8 %s: %w", b.name, err)
		}
	}
	return b.name, float64(p.Requests) / time.Since(start).Seconds(), nil
}

// v8AnchorTxs logs a burst of probe records through an LI with the given
// flush window and returns how many on-chain transactions anchored them.
// The burst is enqueued before the worker starts, so windows fill
// deterministically.
func v8AnchorTxs(records, window int) (int, error) {
	var seed [32]byte
	seed[0] = 8
	id := crypto.NewIdentityFromSeed("li@v8", seed)
	reg := contract.NewRegistry()
	reg.MustRegister(core.NewLogMatchContract(core.MatchConfig{TimeoutBlocks: 500}))
	net := netsim.New(netsim.Config{Seed: 8})
	defer net.Close()
	node, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "v8-anchor",
		Chain: blockchain.Config{
			Difficulty: 4,
			Identities: []crypto.PublicIdentity{id.Public()},
			Registry:   reg,
		},
		Network:            net,
		Mine:               true,
		EmptyBlockInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return 0, err
	}
	defer node.Stop()
	li, err := logger.NewLI(logger.LIConfig{
		Name: "li@v8", Tenant: "v8", Node: node, Identity: id,
		Key:  crypto.DeriveKey("v8", "anchor"),
		Mode: logger.SubmitAsync, Workers: 1,
		QueueSize: records + 8, FlushWindow: window,
	})
	if err != nil {
		return 0, err
	}
	ctx := context.Background()
	for i := 0; i < records; i++ {
		rec := core.LogRecord{
			Kind:      core.KindPEPRequest,
			ReqID:     fmt.Sprintf("v8-%d", i),
			Tenant:    "v8",
			Agent:     "agent@v8",
			ReqDigest: crypto.Sum([]byte(fmt.Sprintf("request-%d", i))),
		}
		if err := li.Log(ctx, rec); err != nil {
			return 0, err
		}
	}
	node.Start()
	li.Start()
	defer li.Stop()

	deadline := time.Now().Add(60 * time.Second)
	for stored := 0; stored < records; {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("V8: only %d/%d records anchored in time", stored, records)
		}
		stored = 0
		node.Chain().ReadState(core.ContractName, func(st contract.StateDB) {
			for i := 0; i < records; i++ {
				if _, ok := core.ReadStoredRecord(st, fmt.Sprintf("v8-%d", i), core.KindPEPRequest); ok {
					stored++
				}
			}
		})
		if stored < records {
			time.Sleep(5 * time.Millisecond)
		}
	}

	txs := 0
	chain := node.Chain()
	for _, h := range chain.BestChainHashes() {
		b, ok := chain.BlockByHash(h)
		if !ok {
			continue
		}
		for i := range b.Txs {
			call := b.Txs[i].Call
			if call.Contract == core.ContractName &&
				(call.Method == core.MethodLog || call.Method == core.MethodLogBatch) {
				txs++
			}
		}
	}
	if txs == 0 {
		return 0, fmt.Errorf("V8: no anchoring transactions on chain")
	}
	return txs, nil
}

// v8ApplyRates mines identical blocks of disjoint-key transactions and
// measures block application (signature batch verification + contract
// execution + commit) on a sequential chain vs a parallel-apply chain.
func v8ApplyRates(p V8Params) (seqRate, parRate float64, err error) {
	var ids []*crypto.Identity
	var pubs []crypto.PublicIdentity
	for i := 0; i < 8; i++ {
		var seed [32]byte
		seed[0], seed[1] = 88, byte(i+1)
		id := crypto.NewIdentityFromSeed(fmt.Sprintf("v8-sender-%d", i), seed)
		ids = append(ids, id)
		pubs = append(pubs, id.Public())
	}
	newCfg := func() blockchain.Config {
		reg := contract.NewRegistry()
		reg.MustRegister(&contract.KVContract{ContractName: "kv"})
		return blockchain.Config{
			Difficulty:  4,
			Identities:  pubs,
			Registry:    reg,
			GenesisTime: time.Unix(1700000000, 0).UTC(),
		}
	}
	parCfg := newCfg()
	parCfg.ApplyWorkers = 4 // force a real pool even on small hosts
	seqCfg := newCfg()
	seqCfg.SequentialApply = true
	par, seq := blockchain.NewChain(parCfg), blockchain.NewChain(seqCfg)

	perSender := p.ApplyTxs / len(ids)
	if perSender < 1 {
		perSender = 1
	}
	var seqElapsed, parElapsed time.Duration
	totalTxs := 0
	head, _ := par.Head()
	parent, _ := par.BlockByHash(head)
	for blk := 0; blk < p.ApplyBlocks; blk++ {
		var txs []blockchain.Transaction
		for s, id := range ids {
			for n := 0; n < perSender; n++ {
				nonce := uint64(blk*perSender + n + 1)
				args := []byte(fmt.Sprintf(`{"key":"v8/%d/%d/%d","value":"dg=="}`, s, blk, n))
				tx, err := blockchain.NewTransaction(id, nonce, contract.Call{
					Contract: "kv", Method: "put", Args: args,
				})
				if err != nil {
					return 0, 0, err
				}
				txs = append(txs, tx)
			}
		}
		b := &blockchain.Block{
			Header: blockchain.BlockHeader{
				Height:       parent.Header.Height + 1,
				PrevHash:     parent.Hash(),
				MerkleRoot:   blockchain.ComputeMerkleRoot(txs),
				TimeUnixNano: parent.Header.TimeUnixNano + int64(100*time.Millisecond),
				Difficulty:   par.NextDifficulty(),
				Miner:        "v8-miner",
			},
			Txs: txs,
		}
		if !blockchain.Mine(context.Background(), b, 0) {
			return 0, 0, fmt.Errorf("V8: mining failed")
		}
		start := time.Now()
		if err := par.AddBlock(b); err != nil {
			return 0, 0, fmt.Errorf("V8 parallel apply: %w", err)
		}
		parElapsed += time.Since(start)
		start = time.Now()
		if err := seq.AddBlock(b); err != nil {
			return 0, 0, fmt.Errorf("V8 sequential apply: %w", err)
		}
		seqElapsed += time.Since(start)
		totalTxs += len(txs)
		parent = b
	}
	if par.StateDigest() != seq.StateDigest() {
		return 0, 0, fmt.Errorf("V8: parallel apply diverged from sequential")
	}
	return float64(totalTxs) / seqElapsed.Seconds(), float64(totalTxs) / parElapsed.Seconds(), nil
}

// RunV8 benchmarks the zero-allocation hot path end to end: pipelined
// decision throughput over netsim vs TCP loopback (binary tx/block codec on
// the wire), on-chain anchoring transactions per probe burst at flush window
// 1 vs the deployed window, encode+decode allocations for the binary codec
// vs the legacy JSON codec, block-apply throughput sequential vs parallel —
// and re-runs the V7 attack catalogue to show detection is intact under
// Merkle-batched anchoring.
func RunV8(p V8Params) (Table, error) {
	t := Table{
		ID:     "V8",
		Title:  "zero-allocation hot path: binary codec, batched anchoring, parallel apply",
		Header: []string{"metric", "baseline", "hot_path", "ratio"},
		Notes: []string{
			fmt.Sprintf("decide row: %d decisions per backend, DecideBatch depth %d; baseline netsim, hot path TCP loopback (binary wire codec)", p.Requests, p.Batch),
			fmt.Sprintf("anchor row: on-chain txs anchoring a %d-record probe burst; baseline flush window 1 (one tx per record), hot path window %d (one Merkle-rooted tx per window)", p.Records, p.Window),
			"alloc rows: heap allocations per operation (AllocsPerRun protocol); baseline legacy JSON codec, hot path binary codec",
			fmt.Sprintf("apply row: end-to-end AddBlock (verify+execute+commit) of %d blocks x %d disjoint-key txs; baseline SequentialApply, hot path 4 OCC apply workers", p.ApplyBlocks, p.ApplyTxs),
		},
	}
	if p.Batch < 1 || p.Requests < p.Batch {
		return t, fmt.Errorf("V8: batch %d must be in [1, Requests=%d]", p.Batch, p.Requests)
	}
	if p.Window < 2 || p.Records < p.Window {
		return t, fmt.Errorf("V8: window %d must be in [2, Records=%d]", p.Window, p.Records)
	}

	// Decision throughput: netsim baseline vs TCP loopback.
	_, netsimRate, err := v8DecideRate(p, newV4Netsim)
	if err != nil {
		return t, err
	}
	_, tcpRate, err := v8DecideRate(p, newV4TCP)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"decide_batch_req_s", fmt.Sprintf("%.1f", netsimRate), fmt.Sprintf("%.1f", tcpRate),
		fmt.Sprintf("%.2fx", tcpRate/netsimRate),
	})

	// Anchoring transaction volume: window 1 vs the deployed window.
	unbatched, err := v8AnchorTxs(p.Records, 1)
	if err != nil {
		return t, err
	}
	batched, err := v8AnchorTxs(p.Records, p.Window)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("anchor_txs_per_%d_records", p.Records),
		fmt.Sprintf("%d", unbatched), fmt.Sprintf("%d", batched),
		fmt.Sprintf("%.1fx", float64(unbatched)/float64(batched)),
	})

	// Codec allocations: binary vs legacy JSON.
	var seedTx [32]byte
	seedTx[0] = 81
	txID := crypto.NewIdentityFromSeed("v8-codec", seedTx)
	tx, err := blockchain.NewTransaction(txID, 1, contract.Call{
		Contract: "kv", Method: "put", Args: []byte(`{"key":"v8/alloc","value":"dg=="}`),
	})
	if err != nil {
		return t, err
	}
	txBin, txJSON := blockchain.EncodeTx(tx), blockchain.EncodeTxJSON(tx)
	rtBin := allocsPerRun(200, func() {
		_ = blockchain.EncodeTx(tx)
		_, _ = blockchain.DecodeTx(txBin)
	})
	rtJSON := allocsPerRun(200, func() {
		_ = blockchain.EncodeTxJSON(tx)
		_, _ = blockchain.DecodeTx(txJSON)
	})
	t.Rows = append(t.Rows, []string{
		"tx_roundtrip_allocs_op", fmt.Sprintf("%.1f", rtJSON), fmt.Sprintf("%.1f", rtBin),
		fmt.Sprintf("%.1fx", rtJSON/maxF(rtBin, 0.5)),
	})
	blk := &blockchain.Block{Header: blockchain.BlockHeader{Height: 1, Miner: "v8"}}
	for i := 0; i < 16; i++ {
		btx, err := blockchain.NewTransaction(txID, uint64(i+2), contract.Call{
			Contract: "kv", Method: "put", Args: []byte(fmt.Sprintf(`{"key":"v8/b/%d","value":"dg=="}`, i)),
		})
		if err != nil {
			return t, err
		}
		blk.Txs = append(blk.Txs, btx)
	}
	blk.Header.MerkleRoot = blockchain.ComputeMerkleRoot(blk.Txs)
	blkBin, blkJSON := blk.Encode(), blockchain.EncodeBlockJSON(blk)
	decBin := allocsPerRun(200, func() { _, _ = blockchain.DecodeBlock(blkBin) })
	decJSON := allocsPerRun(200, func() { _, _ = blockchain.DecodeBlock(blkJSON) })
	t.Rows = append(t.Rows, []string{
		"block_decode_allocs_op", fmt.Sprintf("%.1f", decJSON), fmt.Sprintf("%.1f", decBin),
		fmt.Sprintf("%.1fx", decJSON/maxF(decBin, 0.5)),
	})

	// Block application: sequential vs parallel OCC.
	seqRate, parRate, err := v8ApplyRates(p)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"block_apply_tx_s", fmt.Sprintf("%.1f", seqRate), fmt.Sprintf("%.1f", parRate),
		fmt.Sprintf("%.2fx", parRate/seqRate),
	})

	// Detection integrity: the full V7 attack catalogue under the batched
	// anchoring pipeline (batching is the deployed default, so the campaign
	// exercises Merkle-rooted anchors end to end).
	if p.V7Trials > 0 {
		rep, err := attack.Campaign{
			Scenarios: attack.ChaosCatalogue(), Trials: p.V7Trials, Seed: 7,
		}.Run()
		if err != nil {
			return t, err
		}
		detected, trials, falsePos := 0, 0, 0
		for _, r := range rep.Results {
			if r.Err != "" {
				return t, fmt.Errorf("V8: attack class %s: %s", r.Class, r.Err)
			}
			detected += r.Detected
			trials += r.Trials
			falsePos += r.FalsePositives
		}
		t.Rows = append(t.Rows, []string{
			"v7_catalogue_detected",
			fmt.Sprintf("%d/%d", detected, trials),
			pct(detected, trials),
			fmt.Sprintf("fp=%d", falsePos),
		})
		t.Notes = append(t.Notes,
			fmt.Sprintf("v7 row: all %d attack classes re-run with %d trial(s) each under batched anchoring; hot_path is the detection rate, ratio column reports false positives", len(rep.Results), p.V7Trials))
	}
	return t, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
