// Package loadgen is the DRAMS load-generation harness: open-loop
// (arrival-rate) and closed-loop (looping-VU) executors drive weighted
// access-request mixes against a deployment target — the in-process netsim
// federation or a live multi-process TCP federation — while an HDR
// latency engine samples decision latency, error rate, dropped-iteration
// rate and alert-detection latency into time-series windows. Declarative
// thresholds (`p99<5ms`, `error_rate<0.1%`) gate the run, and every run
// can be serialized as a benchfmt report (BENCH_loadgen_<scenario>.json).
//
// The open-loop executors exist because every closed-loop bench
// under-reports tail latency via coordinated omission: a stalled PDP
// stalls the load generator itself, so the stall is sampled once instead
// of once per would-have-been request. Arrival-rate executors keep firing
// on schedule and surface saturation as an explicit dropped_iterations
// counter instead.
package loadgen

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"drams/internal/benchfmt"
	"drams/internal/metrics"
	"drams/internal/xacml"
)

// Event is one scheduled run event (policy flip, kill, rejoin) with its
// observed outcome.
type Event struct {
	Offset Duration `json:"offset"`
	Kind   string   `json:"kind"` // policy-flip | kill | rejoin
	Detail string   `json:"detail"`
	Err    string   `json:"err,omitempty"`
}

// Result is one finished load-test run.
type Result struct {
	Scenario Scenario  `json:"scenario"`
	Started  time.Time `json:"started"`
	Elapsed  Duration  `json:"elapsed"`

	// Iterations scheduled; Requests completed; Errors failed; Dropped
	// shed at arrival with the worker pool saturated. Always:
	// Iterations = Requests + Errors + Dropped (+ any still cancelling
	// at shutdown, which are counted as Errors).
	Iterations int64 `json:"iterations"`
	Requests   int64 `json:"requests"`
	Errors     int64 `json:"errors"`
	Dropped    int64 `json:"dropped"`

	// Latency is the end-to-end decision latency distribution (ms);
	// AlertLatency the submission→on-chain-match detection latency (ms),
	// present when the target has monitoring and alert_sample > 0.
	Latency      metrics.Summary `json:"-"`
	AlertLatency metrics.Summary `json:"-"`

	Windows []Window `json:"windows"`
	Events  []Event  `json:"events,omitempty"`

	// Metrics is the threshold-evaluation map (see MetricNames).
	Metrics  map[string]float64          `json:"metrics"`
	Verdicts []benchfmt.ThresholdVerdict `json:"verdicts"`
	// Pass is true when every threshold passed.
	Pass bool `json:"pass"`
}

// Report converts the result to the shared benchfmt schema; the report
// name is loadgen_<scenario>, so the file is BENCH_loadgen_<scenario>.json.
func (r *Result) Report(targetKind string) *benchfmt.Report {
	rep := benchfmt.New("loadgen_"+r.Scenario.Name, "loadgen")
	rep.StartedAt = r.Started.UTC()
	rep.ElapsedMS = float64(r.Elapsed.D()) / float64(time.Millisecond)
	rep.Pass = r.Pass
	rep.Config = map[string]any{
		"scenario": r.Scenario,
		"target":   targetKind,
	}
	rep.Metrics = map[string]benchfmt.Metric{
		"latency_ms": benchfmt.FromSummary(r.Latency, "ms"),
		"iterations": {Count: r.Iterations},
		"requests":   {Count: r.Requests},
		"errors":     {Count: r.Errors},
		"dropped":    {Count: r.Dropped},
	}
	if r.AlertLatency.Count > 0 {
		rep.Metrics["alert_latency_ms"] = benchfmt.FromSummary(r.AlertLatency, "ms")
	}
	rep.Thresholds = r.Verdicts
	return rep
}

// run carries one execution's wiring.
type run struct {
	scn     Scenario
	target  Target
	eng     *engine
	tenants []string
	cum     []float64 // cumulative template weights
	logf    func(format string, args ...any)
}

// Logf optionally receives progress lines during Run (nil = silent).
type Logf func(format string, args ...any)

// Run executes the scenario against the target and evaluates its
// thresholds. The context cancels the whole run early (the result still
// reports what was measured).
func Run(ctx context.Context, scn Scenario, target Target, logf Logf) (*Result, error) {
	scn = scn.withDefaults()
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	thresholds, err := ParseThresholds(scn.Thresholds)
	if err != nil {
		return nil, err
	}
	tenants := target.Tenants()
	if len(tenants) == 0 {
		return nil, fmt.Errorf("loadgen: target has no edge tenants")
	}
	if scn.Churn != nil {
		found := false
		for _, ten := range tenants {
			if ten == scn.Churn.Victim {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("loadgen: churn victim %q is not an edge tenant of the target", scn.Churn.Victim)
		}
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}

	start := time.Now()
	r := &run{
		scn:     scn,
		target:  target,
		eng:     newEngine(start),
		tenants: tenants,
		logf:    logf,
	}
	var total float64
	for _, m := range scn.Mix {
		total += m.Weight
		r.cum = append(r.cum, total)
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	// Sampler: closes a time-series window every SampleEvery.
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		ticker := time.NewTicker(scn.SampleEvery.D())
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case now := <-ticker.C:
				r.eng.sample(now)
			}
		}
	}()

	// Alert-detection consumer (netsim with monitoring only).
	alertsDone := make(chan struct{})
	if matched := target.Matched(); matched != nil && scn.AlertSample > 0 {
		go func() {
			defer close(alertsDone)
			for {
				select {
				case <-runCtx.Done():
					return
				case a, ok := <-matched:
					if !ok {
						return
					}
					r.eng.alertSeen(a.ReqID, time.Now())
				}
			}
		}()
	} else {
		close(alertsDone)
	}

	// Scheduled events: policy flip and kill/rejoin churn run on their
	// own timelines, concurrent with the traffic.
	var events []Event
	var eventsMu chan struct{} = make(chan struct{}, 1)
	record := func(kind, detail string, err error) {
		ev := Event{Offset: Duration(time.Since(start)), Kind: kind, Detail: detail}
		if err != nil {
			ev.Err = err.Error()
			r.logf("%s FAILED: %v", kind, err)
		} else {
			r.logf("%s: %s (t=%s)", kind, detail, time.Since(start).Round(time.Millisecond))
		}
		eventsMu <- struct{}{}
		events = append(events, ev)
		<-eventsMu
	}
	eventsDone := make(chan struct{})
	pending := 0
	if scn.PolicyFlip != nil {
		pending++
		go func() {
			defer func() { eventsDone <- struct{}{} }()
			select {
			case <-runCtx.Done():
				return
			case <-time.After(scn.PolicyFlip.After.D()):
			}
			ps, err := BuiltinPolicy(scn.PolicyFlip.Policy)
			if err == nil {
				flipCtx, cancel := context.WithTimeout(runCtx, 60*time.Second)
				err = r.target.FlipPolicy(flipCtx, ps)
				cancel()
			}
			record("policy-flip", scn.PolicyFlip.Policy, err)
		}()
	}
	if scn.Churn != nil {
		pending++
		go func() {
			defer func() { eventsDone <- struct{}{} }()
			select {
			case <-runCtx.Done():
				return
			case <-time.After(scn.Churn.KillAfter.D()):
			}
			if err := r.target.Kill(scn.Churn.Victim); err != nil {
				record("kill", scn.Churn.Victim, err)
				return
			}
			record("kill", scn.Churn.Victim, nil)
			select {
			case <-runCtx.Done():
				// Never leave the target partitioned: rejoin even when
				// the traffic already stopped.
			case <-time.After(scn.Churn.RejoinAfter.D()):
			}
			//lint:ignore ctxflow the run ctx may already be cancelled here and the target must still be rejoined (never leave it partitioned)
			rejoinCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := r.target.Rejoin(rejoinCtx, scn.Churn.Victim)
			cancel()
			record("rejoin", scn.Churn.Victim, err)
		}()
	}

	// The traffic itself.
	runExecutor(runCtx, scn.Executor, scn.Seed, r.eng, r.fire)

	// Drain the event goroutines (a churn rejoin may outlive the
	// schedule), then stop sampler and alert consumer.
	for i := 0; i < pending; i++ {
		<-eventsDone
	}
	cancelRun()
	<-samplerDone
	<-alertsDone
	elapsed := time.Since(start)
	r.eng.sample(time.Now()) // final partial window

	res := &Result{
		Scenario:     scn,
		Started:      start,
		Elapsed:      Duration(elapsed),
		Iterations:   r.eng.started.Value(),
		Requests:     r.eng.requests.Value(),
		Errors:       r.eng.errors.Value(),
		Dropped:      r.eng.dropped.Value(),
		Latency:      r.eng.latency.Snapshot(),
		AlertLatency: r.eng.alertLat.Snapshot(),
		Windows:      r.eng.series(),
		Events:       events,
		Metrics:      r.eng.metricValues(elapsed),
	}
	res.Verdicts, res.Pass = EvaluateThresholds(thresholds, res.Metrics)
	return res, ctx.Err()
}

// fire runs one iteration: deterministic template/tenant pick, one
// decision, engine accounting.
func (r *run) fire(i uint64) {
	tmpl := r.pickTemplate(i)
	tenant := r.tenants[int(i)%len(r.tenants)]
	req := r.buildRequest(tmpl, tenant, i)

	sampleAlerts := r.scn.AlertSample > 0 && r.target.Matched() != nil &&
		hashUnit(i^0xa1e7) < r.scn.AlertSample
	if sampleAlerts {
		r.eng.trackAlert(req.ID, time.Now())
	}

	ctx, cancel := context.WithTimeout(context.Background(), r.scn.RequestTimeout.D())
	defer cancel()
	t0 := time.Now()
	_, err := r.target.Decide(ctx, tenant, req)
	if err != nil {
		r.eng.recordError()
		if sampleAlerts {
			r.eng.inflight.Delete(req.ID)
		}
		return
	}
	r.eng.recordSuccess(time.Since(t0))
}

// hashUnit maps an iteration index to a uniform [0,1) value (deterministic
// sampling without shared RNG state).
func hashUnit(i uint64) float64 {
	i += 0x9e3779b97f4a7c15
	i = (i ^ (i >> 30)) * 0xbf58476d1ce4e5b9
	i = (i ^ (i >> 27)) * 0x94d049bb133111eb
	i ^= i >> 31
	return float64(i>>11) / (1 << 53)
}

// pickTemplate draws from the weighted mix, keyed by iteration index.
func (r *run) pickTemplate(i uint64) string {
	if len(r.scn.Mix) == 1 {
		return r.scn.Mix[0].Template
	}
	u := hashUnit(bits.RotateLeft64(i, 17)) * r.cum[len(r.cum)-1]
	for k, c := range r.cum {
		if u < c {
			return r.scn.Mix[k].Template
		}
	}
	return r.scn.Mix[len(r.scn.Mix)-1].Template
}

// buildRequest instantiates a template (the attribute shapes mirror the
// bench suite's StandardRequest so decisions hit the same policy rules).
func (r *run) buildRequest(tmpl, tenant string, i uint64) *xacml.Request {
	req := r.target.NewRequest()
	switch tmpl {
	case TemplateWrite:
		roles := []string{"doctor", "nurse", "intern"}
		req.Add(xacml.CatSubject, "role", xacml.String(roles[int(i)%len(roles)])).
			Add(xacml.CatAction, "op", xacml.String("write")).
			Add(xacml.CatResource, "type", xacml.String("record"))
	case TemplateCrossTenant:
		// A read issued through this tenant's PEP for a subject homed in
		// another tenant — the federation's cross-cloud access shape.
		home := r.tenants[(int(i)+1)%len(r.tenants)]
		req.Add(xacml.CatSubject, "role", xacml.String("doctor")).
			Add(xacml.CatSubject, "home-tenant", xacml.String(home)).
			Add(xacml.CatAction, "op", xacml.String("read")).
			Add(xacml.CatResource, "type", xacml.String("record"))
	default: // TemplateRead
		req.Add(xacml.CatSubject, "role", xacml.String("doctor")).
			Add(xacml.CatAction, "op", xacml.String("read")).
			Add(xacml.CatResource, "type", xacml.String("record"))
	}
	return req
}
