package blockchain

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drams/internal/clock"
	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/metrics"
	"drams/internal/store"
	"drams/internal/transport"
)

// Message kinds used on the wire.
const (
	kindTx       = "bc.tx"
	kindBlock    = "bc.block"
	kindGetBlock = "bc.getblock"
	kindGetRange = "bc.getrange"
	kindHead     = "bc.head"
	kindSubmit   = "bc.submit"
	kindHello    = "bc.hello"
)

// WireTx and WireBlock name the gossip frame kinds on the wire. They are
// exported for adversarial harnesses (internal/attack) that speak the
// gossip protocol directly — e.g. delivering equivocating sibling blocks
// to chosen peer subsets.
const (
	WireTx    = kindTx
	WireBlock = kindBlock
)

// ErrStopped is returned by node operations after Stop.
var ErrStopped = errors.New("blockchain: node stopped")

// NodeConfig configures one chain node.
type NodeConfig struct {
	// Name is the node's network address and miner label.
	Name string
	// Chain holds the consensus parameters (must match across the
	// federation).
	Chain Config
	// Network connects the node to its peers. Any transport backend works:
	// netsim.Network in-process, transport/tcp across processes.
	Network transport.Transport
	// Peers are the addresses gossip goes to. Empty means "discover chain
	// peers dynamically": the node announces itself with a bc.hello
	// handshake and gossips only to nodes that answered, so PEP/PDP/logger
	// endpoints sharing the transport never see bc.* frames.
	Peers []string
	// Mine enables the mining loop.
	Mine bool
	// EmptyBlockInterval makes the miner produce empty blocks at this
	// cadence when the mempool is idle, so block hooks (e.g. the log-match
	// timeout check M3) keep advancing. Zero disables empty blocks.
	EmptyBlockInterval time.Duration
	// MempoolSize bounds pending transactions.
	MempoolSize int
	// SyncDepth bounds how many ancestors are fetched when resolving an
	// orphan block (default 10 000).
	SyncDepth int
	// RebroadcastInterval re-gossips pending transactions periodically so
	// that txs stranded by a partition reach the block producers after
	// healing (also closes per-sender nonce gaps). Default 250ms; negative
	// disables.
	RebroadcastInterval time.Duration
	// IngestBatch caps how many gossiped transactions are admitted per
	// signature-verification batch (default 128). Ignored when the chain
	// is configured with SequentialVerify, which keeps the historic
	// verify-inline-per-message behaviour.
	IngestBatch int
	// Store, when set, makes the chain durable: persisted blocks are
	// replayed (with full validation) at construction, a damaged tail is
	// truncated, and every block that joins the best chain afterwards is
	// written incrementally. The caller owns the store's lifecycle (open
	// before NewNode, close after Stop).
	Store *store.KV
	// SyncBatch caps how many blocks one bc.getrange catch-up call may
	// return (default 128, server-clamped to 512). Catch-up cost is then
	// dominated by validation, not round-trips.
	SyncBatch int
	// PerBlockSync forces the legacy one-Call-per-block catch-up protocol
	// instead of batched range sync — the baseline for the V6 rejoin
	// benchmark.
	PerBlockSync bool
	// LegacyJSONWire makes the node emit JSON (pre-binary-codec) encodings
	// for outbound gossip, serves and persistence. Decoding always accepts
	// both formats, so this models the old half of a mixed-version
	// federation (format-interop tests, staged rollouts).
	LegacyJSONWire bool
}

// EventNotification delivers the events of one applied block to a
// subscriber.
type EventNotification struct {
	Height uint64
	Events []contract.Event
}

// NodeStats are observability counters for experiments.
type NodeStats struct {
	BlocksMined     int64
	BlocksAccepted  int64
	BlocksRejected  int64
	TxsSubmitted    int64
	EventsDropped   int64
	MiningCancelled int64
	OrphansResolved int64
	IngestBatches   int64
	IngestDropped   int64
	// BlocksPersisted / PersistErrors count incremental writes to the
	// durable chain store (zero without NodeConfig.Store).
	BlocksPersisted int64
	PersistErrors   int64
	// BlocksReloaded is how many persisted blocks were re-validated and
	// applied at construction; ReloadDropped counts persisted blocks
	// discarded because the stored tail failed validation (torn write,
	// tampering) — the discarded range is re-fetched from peers.
	BlocksReloaded int64
	ReloadDropped  int64
	// SyncCalls / SyncBlocks count the catch-up protocol: transport Calls
	// issued (head, range and per-block fetches) and blocks obtained
	// through them. With batched range sync SyncCalls stays far below
	// SyncBlocks; the legacy per-block protocol pays one Call per block.
	SyncCalls  int64
	SyncBlocks int64
	// MempoolLen / SeenCacheLen are point-in-time occupancy gauges of the
	// pending-transaction pool and the gossip-duplicate suppression cache.
	MempoolLen   int
	SeenCacheLen int
	// Verifier reports the shared signature-verification pipeline counters
	// (mempool admission + block validation).
	Verifier VerifierStats
}

// Node is one participant of the private chain: chain storage, mempool,
// gossip, and optionally a miner.
type Node struct {
	cfg   NodeConfig
	chain *Chain
	pool  *Mempool
	ep    transport.Endpoint
	clk   clock.Clock

	peerMu    sync.Mutex
	chainPeer map[string]struct{} // discovered via bc.hello (Peers empty)
	helloed   int                 // address count at the last hello broadcast

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
	newTx    chan struct{}
	ingest   chan inboundTx // nil when SequentialVerify
	seenTx   *seenCache     // recently handled tx-gossip payloads

	subMu  sync.Mutex
	subs   map[int]*eventSub
	subSeq int

	// bestSeen is the highest chain height this node has heard claimed by
	// the network — peer head responses and gossiped block headers — used
	// by readiness probes to tell "caught up" from "still syncing". It is a
	// claim, not a validated height: a lying peer can inflate it, which
	// makes a node report not-ready, never unsafe.
	bestSeen atomic.Uint64

	mined      metrics.Counter
	accepted   metrics.Counter
	rejected   metrics.Counter
	submitted  metrics.Counter
	evDropped  metrics.Counter
	cancelled  metrics.Counter
	orphans    metrics.Counter
	inBatches  metrics.Counter
	inDropped  metrics.Counter
	reloaded   metrics.Counter
	reloadDrop metrics.Counter
	syncCalls  metrics.Counter
	syncBlocks metrics.Counter

	// testAfterCollect, when set (tests only), runs between the mining
	// loop's mempool collection and its head re-check — the window of the
	// historical stale-snapshot race.
	testAfterCollect func()

	// gossipFilter / collectFilter are the Byzantine-behaviour hooks the
	// adversarial harness (internal/attack) installs to model a compromised
	// federation member: suppressing outbound gossip (block withholding)
	// and editing the mined transaction set (selective censorship). Honest
	// nodes never set them.
	gossipFilter  atomic.Pointer[gossipFilterBox]
	collectFilter atomic.Pointer[collectFilterBox]
}

// gossipFilterBox / collectFilterBox wrap the hook funcs so the atomic
// pointers always hold a concrete type.
type (
	gossipFilterBox struct {
		fn func(kind string, payload []byte) bool
	}
	collectFilterBox struct {
		fn func(txs []Transaction) []Transaction
	}
)

// SetGossipFilter installs an outbound gossip gate: every frame about to be
// fanned out to the chain peer set is offered to fn first, and suppressed
// when fn returns false. Inbound traffic is unaffected — a withholding node
// still learns the honest chain. Passing nil removes the filter. The hook
// exists for the adversarial test harness; a production node has no
// legitimate use for it.
func (n *Node) SetGossipFilter(fn func(kind string, payload []byte) bool) {
	if fn == nil {
		n.gossipFilter.Store(nil)
		return
	}
	n.gossipFilter.Store(&gossipFilterBox{fn: fn})
}

// SetCollectFilter installs a mining-time transaction editor: the mining
// loop passes each mempool collection through fn before building the block
// candidate, so a Byzantine producer can censor or delay specific senders'
// transactions. Dropped transactions stay in the mempool and are picked up
// again once the filter is removed (nil clears). The filter must preserve
// per-sender nonce contiguity or the produced block will be rejected by
// honest validators.
func (n *Node) SetCollectFilter(fn func(txs []Transaction) []Transaction) {
	if fn == nil {
		n.collectFilter.Store(nil)
		return
	}
	n.collectFilter.Store(&collectFilterBox{fn: fn})
}

// inboundTx is a gossiped transaction queued for batched admission.
type inboundTx struct {
	tx   Transaction
	raw  []byte // original wire payload, re-gossiped on acceptance
	from string
}

// NewNode constructs (but does not start) a node.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("blockchain: node needs a name")
	}
	if cfg.Network == nil {
		return nil, errors.New("blockchain: node needs a network")
	}
	if cfg.SyncDepth <= 0 {
		cfg.SyncDepth = 10000
	}
	if cfg.IngestBatch <= 0 {
		cfg.IngestBatch = 128
	}
	if cfg.SyncBatch <= 0 {
		cfg.SyncBatch = 128
	}
	chain := NewChain(cfg.Chain)
	var reloaded, reloadDropped int
	if cfg.Store != nil {
		// Replay the persisted best chain through full validation before
		// any network traffic; the event sink is not installed yet, so
		// replay emits nothing (subscribers reconcile via their own Sync).
		applied, err := chain.LoadFromStore(cfg.Store)
		reloaded = applied
		if err != nil {
			// The tail beyond the validated prefix is damaged (torn final
			// write after a crash, tampering): drop it and let catch-up
			// re-fetch those heights from peers.
			for _, key := range cfg.Store.Keys(persistBlockPrefix) {
				if key > persistBlockKey(uint64(applied)) {
					reloadDropped++
				}
			}
			if terr := truncateStoreAbove(cfg.Store, uint64(applied)); terr != nil {
				return nil, fmt.Errorf("blockchain: reload %q: %v; truncate: %w", cfg.Name, err, terr)
			}
		}
		chain.AttachStore(cfg.Store)
	}
	ep, err := cfg.Network.Register(cfg.Name)
	if err != nil {
		return nil, fmt.Errorf("blockchain: register node %q: %w", cfg.Name, err)
	}
	n := &Node{
		cfg:       cfg,
		chain:     chain,
		pool:      NewMempool(cfg.MempoolSize),
		ep:        ep,
		clk:       cfg.Chain.withDefaults().Clock,
		stop:      make(chan struct{}),
		newTx:     make(chan struct{}, 1),
		subs:      make(map[int]*eventSub),
		chainPeer: make(map[string]struct{}),
	}
	n.seenTx = newSeenCache(seenCacheSize, n.clk)
	n.reloaded.Add(int64(reloaded))
	n.reloadDrop.Add(int64(reloadDropped))
	n.chain.SetEventSink(n.fanout)
	if !cfg.Chain.SequentialVerify {
		// Gossip handlers are active from construction, so the batched
		// admission loop must be too (Stop terminates it).
		n.ingest = make(chan inboundTx, 4*cfg.IngestBatch)
		n.wg.Add(1)
		go n.ingestLoop()
	}
	ep.OnMessage(kindTx, n.handleTxGossip)
	ep.OnMessage(kindBlock, n.handleBlockGossip)
	ep.OnMessage(kindHello, n.handleHello)
	ep.OnCall(kindGetBlock, n.handleGetBlock)
	ep.OnCall(kindGetRange, n.handleGetRange)
	ep.OnCall(kindHead, n.handleHead)
	ep.OnCall(kindSubmit, n.handleSubmit)
	if len(cfg.Peers) == 0 {
		// No static peer table: announce ourselves so existing chain nodes
		// learn us (and answer, so we learn them). The handshake is the
		// only bc.* frame non-node endpoints ever receive; all subsequent
		// gossip is scoped to discovered chain peers. On multi-process
		// transports addresses appear asynchronously, so rebroadcastLoop
		// re-announces whenever the address set changes (see reHello).
		n.helloed = len(cfg.Network.Addresses())
		ep.Broadcast(kindHello, []byte{helloSyn})
	}
	return n, nil
}

// reHello re-broadcasts the discovery announcement when the transport's
// address set changed since the last hello — on multi-process transports
// peer processes (and their node endpoints) become routable long after
// NewNode's initial broadcast. Quiescent once the membership is stable.
func (n *Node) reHello() {
	if len(n.cfg.Peers) != 0 {
		return
	}
	count := len(n.cfg.Network.Addresses())
	n.peerMu.Lock()
	changed := count != n.helloed
	n.helloed = count
	n.peerMu.Unlock()
	if changed {
		n.ep.Broadcast(kindHello, []byte{helloSyn})
	}
}

// bc.hello payload flags.
const (
	helloSyn byte = 1 // "I just joined, please answer"
	helloAck byte = 2 // targeted answer; no further reply needed
)

// handleHello records a chain peer discovered via the bc.hello handshake and
// answers syn announcements so the newcomer learns this node too.
func (n *Node) handleHello(from string, payload []byte) {
	if from == n.cfg.Name {
		return
	}
	n.peerMu.Lock()
	n.chainPeer[from] = struct{}{}
	n.peerMu.Unlock()
	if len(payload) > 0 && payload[0] == helloSyn {
		_ = n.ep.Send(from, kindHello, []byte{helloAck})
	}
}

// discoveredPeers snapshots the bc.hello peer set.
func (n *Node) discoveredPeers() []string {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	out := make([]string, 0, len(n.chainPeer))
	for p := range n.chainPeer {
		out = append(out, p)
	}
	return out
}

// Chain exposes the node's chain view.
func (n *Node) Chain() *Chain { return n.chain }

// Name returns the node's network name.
func (n *Node) Name() string { return n.cfg.Name }

// Mempool exposes the pending-transaction pool.
func (n *Node) Mempool() *Mempool { return n.pool }

// noteSeenHeight folds a height claim from the network into the
// best-seen-height watermark.
func (n *Node) noteSeenHeight(h uint64) {
	for {
		cur := n.bestSeen.Load()
		if h <= cur || n.bestSeen.CompareAndSwap(cur, h) {
			return
		}
	}
}

// BestSeenHeight returns the highest chain height any peer has claimed to
// this node (via head responses or gossiped block headers). Zero until the
// first peer contact.
func (n *Node) BestSeenHeight() uint64 { return n.bestSeen.Load() }

// CaughtUp reports whether the node's own chain is within lag blocks of
// the best height the network has claimed — the readiness predicate: a
// node that has not yet heard from any peer counts as caught up (nothing
// to compare against), a node mid catch-up does not.
func (n *Node) CaughtUp(lag uint64) bool {
	return n.chain.Height()+lag >= n.bestSeen.Load()
}

// ProbeHead asks peer for its best-chain tip, folding the answer into the
// best-seen-height watermark, and returns the claimed height. Readiness
// probes use it to learn the fleet head without pulling any blocks.
func (n *Node) ProbeHead(peer string) (uint64, error) {
	hi, err := n.fetchHead(peer)
	if err != nil {
		return 0, err
	}
	return hi.Height, nil
}

// Stats snapshots the node counters.
func (n *Node) Stats() NodeStats {
	persist := n.chain.PersistStats()
	return NodeStats{
		BlocksMined:     n.mined.Value(),
		BlocksAccepted:  n.accepted.Value(),
		BlocksRejected:  n.rejected.Value(),
		TxsSubmitted:    n.submitted.Value(),
		EventsDropped:   n.evDropped.Value(),
		MiningCancelled: n.cancelled.Value(),
		OrphansResolved: n.orphans.Value(),
		IngestBatches:   n.inBatches.Value(),
		IngestDropped:   n.inDropped.Value(),
		BlocksPersisted: persist.BlocksPersisted,
		PersistErrors:   persist.PersistErrors,
		BlocksReloaded:  n.reloaded.Value(),
		ReloadDropped:   n.reloadDrop.Value(),
		SyncCalls:       n.syncCalls.Value(),
		SyncBlocks:      n.syncBlocks.Value(),
		MempoolLen:      n.pool.Len(),
		SeenCacheLen:    n.seenTx.len(),
		Verifier:        n.chain.Verifier().Stats(),
	}
}

// Start launches the mining loop (if configured) and the periodic
// transaction rebroadcast. Handlers are active from construction.
func (n *Node) Start() {
	if n.cfg.Mine {
		n.wg.Add(1)
		go n.mineLoop()
	}
	interval := n.cfg.RebroadcastInterval
	if interval == 0 {
		interval = 250 * time.Millisecond
	}
	if interval > 0 {
		n.wg.Add(1)
		go n.rebroadcastLoop(interval)
	}
}

// rebroadcastLoop periodically re-gossips pending transactions; duplicate
// floods are suppressed by receivers' mempools (ErrKnownTx).
func (n *Node) rebroadcastLoop(interval time.Duration) {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case <-n.clk.After(interval):
		}
		n.reHello()
		for _, tx := range n.pool.All(256) {
			n.gossip(kindTx, n.wireEncodeTx(tx), "")
		}
	}
}

// Stop halts mining and closes subscriber channels.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
	})
	n.wg.Wait()
	n.subMu.Lock()
	for id, sub := range n.subs {
		close(sub.ch)
		delete(n.subs, id)
	}
	n.subMu.Unlock()
}

// SubmitTx validates a transaction, adds it to the mempool and gossips it.
// This is the in-process client entry point used by the Logging Interfaces.
func (n *Node) SubmitTx(tx Transaction) error {
	select {
	case <-n.stop:
		return ErrStopped
	default:
	}
	if err := n.chain.Verifier().VerifyTx(&tx); err != nil {
		return err
	}
	if err := n.pool.Add(tx); err != nil {
		return err
	}
	n.submitted.Inc()
	select {
	case n.newTx <- struct{}{}:
	default:
	}
	n.gossip(kindTx, n.wireEncodeTx(tx), "")
	return nil
}

// WaitForReceipt blocks until txID has at least `confirmations` best-chain
// confirmations, returning its receipt.
func (n *Node) WaitForReceipt(ctx context.Context, txID crypto.Digest, confirmations uint64) (Receipt, error) {
	headCh, cancel := n.chain.SubscribeHead()
	defer cancel()
	for {
		rec, conf, err := n.chain.Receipt(txID)
		if err == nil && conf >= confirmations {
			return rec, nil
		}
		select {
		case <-headCh:
		case <-ctx.Done():
			return Receipt{}, fmt.Errorf("blockchain: wait for tx %s: %w", txID.Short(), ctx.Err())
		case <-n.stop:
			return Receipt{}, ErrStopped
		}
	}
}

// eventSub is one event subscriber: its delivery channel plus a private
// drop counter, so a consumer can detect that it missed notifications and
// reconcile from chain state.
type eventSub struct {
	ch      chan EventNotification
	dropped metrics.Counter
}

// EventSubscription is a handle on one event stream. Delivery is best
// effort: when the subscriber's buffer is full the notification is dropped
// (never blocking consensus) and Dropped advances — consumers that need
// completeness must treat on-chain state as ground truth and resync when
// they observe drops (pap.Watcher does exactly this).
type EventSubscription struct {
	// C delivers per-block contract events. Closed on Cancel or node Stop.
	C <-chan EventNotification

	sub    *eventSub
	cancel func()
}

// Dropped reports how many notifications this subscriber has missed to a
// full buffer since subscribing. The counter is monotonic; consumers track
// the last value they acted on and resync on any advance.
func (s *EventSubscription) Dropped() int64 { return s.sub.dropped.Value() }

// Cancel unsubscribes and closes C. Safe to call more than once.
func (s *EventSubscription) Cancel() { s.cancel() }

// Subscribe registers a per-block contract event stream (buffer <= 0 means
// the 4096 default). Delivery is best effort — see EventSubscription.
func (n *Node) Subscribe(buffer int) *EventSubscription {
	if buffer <= 0 {
		buffer = 4096
	}
	sub := &eventSub{ch: make(chan EventNotification, buffer)}
	n.subMu.Lock()
	n.subSeq++
	id := n.subSeq
	n.subs[id] = sub
	n.subMu.Unlock()
	var once sync.Once
	return &EventSubscription{
		C:   sub.ch,
		sub: sub,
		cancel: func() {
			once.Do(func() {
				n.subMu.Lock()
				if s, ok := n.subs[id]; ok {
					delete(n.subs, id)
					close(s.ch)
				}
				n.subMu.Unlock()
			})
		},
	}
}

// SubscribeEvents returns a channel of per-block contract events and a
// cancel function; the channel is closed on Stop or cancel. Delivery is
// best effort — a slow subscriber's notifications are dropped (counted in
// NodeStats.EventsDropped), NOT delivered at-least-once. Consumers that
// cannot tolerate gaps should use Subscribe, whose handle exposes the
// per-subscriber drop counter to trigger a state resync.
func (n *Node) SubscribeEvents(buffer int) (<-chan EventNotification, func()) {
	sub := n.Subscribe(buffer)
	return sub.C, sub.cancel
}

func (n *Node) fanout(height uint64, events []contract.Event) {
	n.subMu.Lock()
	defer n.subMu.Unlock()
	for _, sub := range n.subs {
		select {
		case sub.ch <- EventNotification{Height: height, Events: events}:
		default:
			// Subscriber too slow: drop rather than block consensus. The
			// per-subscriber counter lets the consumer notice and resync
			// from chain state, which stays the ground truth.
			sub.dropped.Inc()
			n.evDropped.Inc()
		}
	}
}

// wireEncodeTx picks the node's outbound wire format for a transaction.
func (n *Node) wireEncodeTx(tx Transaction) []byte {
	if n.cfg.LegacyJSONWire {
		return EncodeTxJSON(tx)
	}
	return EncodeTx(tx)
}

// wireEncodeBlock picks the node's outbound wire format for a block.
func (n *Node) wireEncodeBlock(b *Block) []byte {
	if n.cfg.LegacyJSONWire {
		return EncodeBlockJSON(b)
	}
	return b.Encode()
}

// gossip fans a frame out to the chain peer set: the static Peers table when
// configured, otherwise the peers discovered through the bc.hello handshake.
// Either way gossip never sprays non-node endpoints (PEPs, PDP, loggers)
// that share the transport.
func (n *Node) gossip(kind string, payload []byte, except string) {
	if box := n.gossipFilter.Load(); box != nil && !box.fn(kind, payload) {
		return
	}
	peers := n.cfg.Peers
	if len(peers) == 0 {
		peers = n.discoveredPeers()
	}
	for _, p := range peers {
		if p == except || p == n.cfg.Name {
			continue
		}
		_ = n.ep.Send(p, kind, payload)
	}
}

// handleTxGossip processes a gossiped transaction. With the batch pipeline
// (the default) it only decodes and enqueues; signature verification and
// mempool admission happen in ingestLoop, batched across the worker pool.
func (n *Node) handleTxGossip(from string, payload []byte) {
	// Duplicate copies arrive constantly — the flood fans in from every
	// peer and the rebroadcast loops re-send pending transactions a few
	// times a second — so recently handled payloads are recognised by
	// digest before paying for a decode and an ID derivation.
	key := crypto.Sum(payload)
	if n.seenTx.has(key) {
		return
	}
	tx, err := DecodeTx(payload)
	if err != nil {
		n.seenTx.add(key) // malformed stays malformed; skip retries too
		return
	}
	if n.ingest != nil {
		if n.pool.Has(tx.ID()) {
			n.seenTx.add(key)
			return // duplicate flood: stop it before it costs a queue slot
		}
		select {
		case n.ingest <- inboundTx{tx: tx, raw: payload, from: from}:
			n.seenTx.add(key)
		default:
			// Queue full under burst; the sender's periodic rebroadcast
			// will retry, so dropping here only delays admission — the
			// payload stays unmarked so that retry is not muted.
			n.inDropped.Inc()
		}
		return
	}
	// Sequential baseline: verify inline on the delivery goroutine.
	n.seenTx.add(key)
	if err := n.chain.Verifier().VerifyTx(&tx); err != nil {
		return
	}
	n.admit(tx, payload, from)
}

// admit adds a verified transaction to the mempool, wakes the miner and
// continues the gossip flood.
func (n *Node) admit(tx Transaction, payload []byte, from string) {
	if err := n.pool.Add(tx); err != nil {
		return // duplicate or full: stop the flood here
	}
	select {
	case n.newTx <- struct{}{}:
	default:
	}
	n.gossip(kindTx, payload, from)
}

// ingestLoop drains gossiped transactions and admits them in verification
// batches: all signatures of a batch are checked in one worker-pool pass,
// and transactions already verified (gossip duplicates, rebroadcasts) are
// skipped via the verifier's LRU. Batches form opportunistically — the loop
// takes whatever is queued up to IngestBatch without waiting, so a lone
// transaction is admitted immediately.
func (n *Node) ingestLoop() {
	defer n.wg.Done()
	for {
		var first inboundTx
		select {
		case <-n.stop:
			return
		case first = <-n.ingest:
		}
		batch := []inboundTx{first}
		for len(batch) < n.cfg.IngestBatch {
			select {
			case it := <-n.ingest:
				batch = append(batch, it)
				continue
			default:
			}
			break
		}
		n.inBatches.Inc()
		// Collapse copies of the same transaction flooding in from several
		// peers at once — one verification per unique ID.
		seen := make(map[crypto.Digest]struct{}, len(batch))
		unique := batch[:0]
		for _, it := range batch {
			id := it.tx.ID()
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			unique = append(unique, it)
		}
		batch = unique
		txs := make([]Transaction, len(batch))
		for i := range batch {
			txs[i] = batch[i].tx
		}
		verifyErrs := n.chain.Verifier().VerifyBatch(txs)
		valid := txs[:0]
		kept := batch[:0]
		for i := range batch {
			if verifyErrs[i] != nil {
				continue
			}
			valid = append(valid, txs[i])
			kept = append(kept, batch[i])
		}
		if len(valid) == 0 {
			continue
		}
		addErrs := n.pool.AddBatch(valid)
		admitted := false
		for i := range kept {
			if addErrs[i] != nil {
				continue // duplicate or full: stop the flood here
			}
			admitted = true
			n.gossip(kindTx, kept[i].raw, kept[i].from)
		}
		if admitted {
			select {
			case n.newTx <- struct{}{}:
			default:
			}
		}
	}
}

// handleBlockGossip processes a gossiped block, resolving orphans by
// fetching ancestors from the sender.
func (n *Node) handleBlockGossip(from string, payload []byte) {
	b, err := DecodeBlock(payload)
	if err != nil {
		return
	}
	n.importBlock(b, from)
}

// importBlock adds a block, pulling missing ancestors from `from` when
// needed, and re-gossips on success.
func (n *Node) importBlock(b *Block, from string) {
	n.noteSeenHeight(b.Header.Height)
	err := n.chain.AddBlock(b)
	switch {
	case err == nil:
		n.afterAccept(b, from)
	case errors.Is(err, ErrKnownBlock):
		// Flood already saw it; stop.
	case errors.Is(err, ErrOrphanBlock) && from != "":
		if n.resolveOrphans(b, from) {
			n.afterAccept(b, from)
		}
	default:
		n.rejected.Inc()
	}
}

func (n *Node) afterAccept(b *Block, from string) {
	n.accepted.Inc()
	n.pool.PruneConfirmed(n.chain.AccountNonces())
	n.gossip(kindBlock, n.wireEncodeBlock(b), from)
}

// handleGetBlock serves a block by hash.
func (n *Node) handleGetBlock(from string, payload []byte) ([]byte, error) {
	if len(payload) != crypto.DigestSize {
		return nil, errors.New("blockchain: getblock: bad hash size")
	}
	var h crypto.Digest
	copy(h[:], payload)
	b, ok := n.chain.BlockByHash(h)
	if !ok {
		return nil, fmt.Errorf("blockchain: getblock %s: not found", h.Short())
	}
	return n.wireEncodeBlock(b), nil
}

type headInfo struct {
	Hash   crypto.Digest `json:"hash"`
	Height uint64        `json:"height"`
}

// handleHead serves the node's best-chain tip.
func (n *Node) handleHead(from string, payload []byte) ([]byte, error) {
	hash, height := n.chain.Head()
	return json.Marshal(headInfo{Hash: hash, Height: height})
}

// handleSubmit accepts a client-submitted transaction over the network.
func (n *Node) handleSubmit(from string, payload []byte) ([]byte, error) {
	tx, err := DecodeTx(payload)
	if err != nil {
		return nil, err
	}
	if err := n.SubmitTx(tx); err != nil {
		return nil, err
	}
	id := tx.ID()
	return id.Bytes(), nil
}

// headAge reports how long ago the current head block was produced. A
// fresh chain (only genesis, whose timestamp is a fixed past instant)
// reports a large age, which correctly kick-starts empty-block production.
func (n *Node) headAge() time.Duration {
	hash, _ := n.chain.Head()
	b, ok := n.chain.BlockByHash(hash)
	if !ok {
		return 0
	}
	return n.clk.Now().Sub(b.Header.Time())
}

// mineLoop is the node's proof-of-work production loop.
func (n *Node) mineLoop() {
	defer n.wg.Done()
	headCh, cancelSub := n.chain.SubscribeHead()
	defer cancelSub()

	for {
		select {
		case <-n.stop:
			return
		default:
		}
		// Drain a stale head signal from our own last accept.
		select {
		case <-headCh:
		default:
		}

		// Snapshot the parent BEFORE collecting from the mempool, and
		// re-check it afterwards: a block imported between the two would
		// otherwise let Collect run against post-import nonces while the
		// candidate still builds on the old head (or vice versa), mining
		// already-confirmed transactions onto the new head — a guaranteed
		// rejection after the PoW was paid.
		parentHash, parentHeight := n.chain.Head()
		txs := n.pool.Collect(n.chain.Config().MaxTxPerBlock, n.chain.AccountNonces())
		if box := n.collectFilter.Load(); box != nil {
			txs = box.fn(txs)
		}
		if n.testAfterCollect != nil {
			n.testAfterCollect()
		}
		if h, _ := n.chain.Head(); h != parentHash {
			n.cancelled.Inc()
			continue // head moved mid-snapshot: restart from the new head
		}
		if len(txs) == 0 {
			if n.cfg.EmptyBlockInterval == 0 {
				// Wait for work.
				select {
				case <-n.stop:
					return
				case <-n.newTx:
				case <-headCh:
				}
				continue
			}
			// Pace empty blocks against the age of the chain tip (not
			// our own last block) so multiple miners do not race to
			// produce redundant empty siblings.
			if age := n.headAge(); age < n.cfg.EmptyBlockInterval {
				select {
				case <-n.stop:
					return
				case <-n.newTx:
					continue
				case <-headCh:
					continue
				case <-n.clk.After(n.cfg.EmptyBlockInterval - age):
				}
				continue
			}
			// Fall through: mine an empty liveness block.
		}

		b := &Block{
			Header: BlockHeader{
				Height:       parentHeight + 1,
				PrevHash:     parentHash,
				MerkleRoot:   ComputeMerkleRoot(txs),
				TimeUnixNano: n.clk.Now().UnixNano(),
				Difficulty:   n.chain.NextDifficulty(),
				Miner:        n.cfg.Name,
			},
			Txs: txs,
		}

		attemptCtx, cancelAttempt := context.WithCancel(context.Background())
		watcherDone := make(chan struct{})
		go func() {
			select {
			case <-n.stop:
				cancelAttempt()
			case <-headCh:
				cancelAttempt()
			case <-watcherDone:
			}
		}()
		mined := Mine(attemptCtx, b, minerSeed(n.cfg.Name, b.Header.Height))
		close(watcherDone)
		cancelAttempt()

		if !mined {
			n.cancelled.Inc()
			continue
		}
		if err := n.chain.AddBlock(b); err != nil {
			// Lost a race with a concurrent import; retry from fresh head.
			n.cancelled.Inc()
			continue
		}
		n.mined.Inc()
		n.afterAccept(b, "")
	}
}
