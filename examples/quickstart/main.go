// Quickstart: the smallest useful DRAMS program, on the client-centric API.
//
// It deploys a two-cloud federation with monitoring attached, opens a
// per-tenant client and an alert subscription, runs one legitimate access
// request, then compromises the tenant's PEP and shows the monitor pushing
// the resulting on-chain alert into the stream.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"drams"
	"drams/internal/core"
	"drams/internal/xacml"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A one-policy access-control regime: doctors may read, all else denied.
	policy := &xacml.PolicySet{
		ID: "root", Version: "v1", Alg: xacml.DenyUnlessPermit,
		Items: []xacml.PolicyItem{{Policy: &xacml.Policy{
			ID: "records", Version: "1", Alg: xacml.FirstApplicable,
			Rules: []*xacml.Rule{
				{
					ID:     "doctor-read",
					Effect: xacml.EffectPermit,
					Target: xacml.TargetMatching(xacml.CatSubject, "role", xacml.String("doctor")),
				},
				{ID: "default-deny", Effect: xacml.EffectDeny},
			},
		}}},
	}

	dep, err := drams.Open(policy)
	if err != nil {
		return err
	}
	defer dep.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// The tenant's handle for access requests, and a stream of every
	// security alert the monitor raises for it.
	client, err := dep.Client("tenant-1")
	if err != nil {
		return err
	}
	alerts, stop, err := dep.Alerts(ctx, drams.AlertFilter{Tenant: "tenant-1"})
	if err != nil {
		return err
	}
	defer stop()

	// 1. A legitimate request: permitted, and the whole exchange is
	//    matched on the federation blockchain.
	req := client.NewRequest().Add(xacml.CatSubject, "role", xacml.String("doctor"))
	enf, err := client.Decide(ctx, req)
	if err != nil {
		return err
	}
	fmt.Println("doctor request  :", enf.Decision)
	if err := dep.WaitForMatched(ctx, req.ID); err != nil {
		return err
	}
	fmt.Println("on-chain match  : ok (no alerts)")

	// 2. Compromise the PEP: it now grants everything. DRAMS detects the
	//    mismatch between the PDP's decision and the enforced effect.
	_ = dep.TamperPEP("tenant-1", &drams.Tamper{
		Enforce: func(xacml.Decision) xacml.Decision { return xacml.Permit },
	})
	bad := client.NewRequest().Add(xacml.CatSubject, "role", xacml.String("intern"))
	enf, err = client.Decide(ctx, bad)
	if err != nil {
		return err
	}
	fmt.Println("intern request  :", enf.Decision, "(wrongly granted by the compromised PEP)")

	// The alert arrives on the subscription stream.
	for {
		select {
		case alert := <-alerts:
			if alert.ReqID == bad.ID && alert.Type == core.AlertEnforcementMismatch {
				fmt.Println("DRAMS detected  :", alert.String())
				return nil
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
