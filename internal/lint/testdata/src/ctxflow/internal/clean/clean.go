// Package clean is the zero-finding twin for ctxflow.
package clean

import (
	"context"
	"time"
)

// Derive flows the caller's context into the deadline.
func Derive(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second)
}

// Root has no context parameter, so minting one is the only option.
func Root() context.Context {
	return context.Background()
}
