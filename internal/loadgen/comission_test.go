package loadgen

import (
	"context"
	"testing"
	"time"

	"drams/internal/xacml"
)

// stallEvaluator injects a periodic PDP stall: every period, the PDP
// freezes for stall (all evaluations block until the window ends). It is
// the canonical coordinated-omission fixture — a backend that is fast
// almost always and terrible on a schedule.
type stallEvaluator struct {
	inner  xacml.Evaluator
	anchor time.Time
	period time.Duration
	stall  time.Duration
}

func (s *stallEvaluator) Evaluate(r *xacml.Request) (xacml.Result, error) {
	phase := time.Since(s.anchor) % s.period
	if phase < s.stall {
		time.Sleep(s.stall - phase)
	}
	return s.inner.Evaluate(r)
}

// TestCoordinatedOmission pins the defining difference between the two
// executor families. With a PDP that stalls 120ms out of every 500ms:
//
//   - the closed-loop executor's VU is itself blocked during the stall, so
//     it samples each stall at most once per VU — its p99 stays low even
//     though ~24% of wall-clock time is a freeze;
//   - the open-loop executor keeps scheduling arrivals through the stall,
//     so every request that would have arrived during the freeze records
//     its true (queued) latency — its p99 reflects the stall.
//
// If the open-loop scheduler ever regresses into waiting for completions
// (the coordinated-omission bug), its p99 collapses to the closed-loop
// value and this test fails.
func TestCoordinatedOmission(t *testing.T) {
	if testing.Short() {
		t.Skip("stall-injection run in -short mode")
	}
	const (
		period  = 500 * time.Millisecond
		stall   = 120 * time.Millisecond
		runtime = 2 * time.Second
	)
	target, err := NewNetsimTarget(NetsimConfig{Clouds: 3, NetLatency: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	dep := target.Deployment()
	dep.CompromisePDP(func(inner xacml.Evaluator) xacml.Evaluator {
		return &stallEvaluator{inner: inner, anchor: time.Now(), period: period, stall: stall}
	})
	defer dep.CompromisePDP(nil)

	closed := Scenario{
		Name: "co-closed",
		Executor: ExecutorSpec{
			Type: ExecLoopingVU, VUs: 1, Duration: Duration(runtime),
		},
		SampleEvery: Duration(250 * time.Millisecond),
		Seed:        7,
	}
	closedRes, err := Run(context.Background(), closed, target, nil)
	if err != nil {
		t.Fatal(err)
	}

	open := Scenario{
		Name: "co-open",
		Executor: ExecutorSpec{
			Type: ExecConstantArrivalRate, Rate: 250,
			Duration: Duration(runtime), MaxWorkers: 1024,
		},
		SampleEvery: Duration(250 * time.Millisecond),
		Seed:        7,
	}
	openRes, err := Run(context.Background(), open, target, nil)
	if err != nil {
		t.Fatal(err)
	}

	openP99 := openRes.Metrics["p99"]
	closedP99 := closedRes.Metrics["p99"]
	t.Logf("open-loop:   n=%d p50=%.2fms p99=%.2fms max=%.2fms dropped=%d",
		openRes.Requests, openRes.Metrics["p50"], openP99, openRes.Metrics["max"], openRes.Dropped)
	t.Logf("closed-loop: n=%d p50=%.2fms p99=%.2fms max=%.2fms",
		closedRes.Requests, closedRes.Metrics["p50"], closedP99, closedRes.Metrics["max"])

	// The closed loop DID hit the stall (its max proves the backend was
	// slow)...
	if closedRes.Metrics["max"] < 80 {
		t.Fatalf("closed-loop max %.2fms: the stall never fired, fixture broken", closedRes.Metrics["max"])
	}
	// ...but under-reports it at the tail: only ~4 of its samples are
	// stall-priced, far below the 1%% needed to move p99.
	if closedP99 > 60 {
		t.Fatalf("closed-loop p99 = %.2fms: expected coordinated omission to hide the stall", closedP99)
	}
	// The open loop prices the stall into the tail: ~24%% of scheduled
	// arrivals land in a freeze window and wait out the remainder.
	if openP99 < 60 {
		t.Fatalf("open-loop p99 = %.2fms: arrival-rate executor failed to surface the stall", openP99)
	}
	if openP99 < 3*closedP99 {
		t.Fatalf("open p99 %.2fms not >> closed p99 %.2fms: executors lost their defining difference",
			openP99, closedP99)
	}
}
