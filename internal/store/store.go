// Package store implements a small embedded key-value store with an optional
// write-ahead log for durability. It backs the classical-database half of the
// hybrid database+blockchain design (paper §III, reference [9]) and the
// persistence layer of blockchain nodes.
//
// The store is deliberately simple — an in-memory sorted map with an
// append-only JSON-lines WAL — because the experiments only require ordered
// iteration, atomic batches and crash-recovery replay, not a full LSM tree.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("store: key not found")

// ErrClosed is returned for operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Op is a WAL operation type.
type Op string

// WAL operation kinds.
const (
	OpPut    Op = "put"
	OpDelete Op = "del"
)

// walRecord is one serialized WAL entry.
type walRecord struct {
	Op    Op     `json:"op"`
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"`
	Batch int    `json:"batch,omitempty"` // records in this atomic batch (set on first record)
}

// Compaction defaults: the WAL is snapshotted and truncated when it holds
// more than CompactFactor× the live key count in records (and at least
// CompactMinRecords, so small stores are not churned).
const (
	DefaultCompactFactor     = 4
	DefaultCompactMinRecords = 1024
)

// KV is the embedded store. Create with Open (durable) or NewMemory.
type KV struct {
	mu      sync.RWMutex
	data    map[string][]byte
	wal     *os.File
	walBuf  *bufio.Writer
	path    string
	closed  bool
	writes  int64
	walRecs int64 // records in the WAL file (replayed + appended)

	compactFactor int64
	compactMin    int64
	compactions   int64
}

// NewMemory returns a volatile in-memory store.
func NewMemory() *KV {
	return &KV{data: make(map[string][]byte)}
}

// Open opens (creating if necessary) a durable store whose WAL lives at path.
// Existing WAL records are replayed into memory.
func Open(path string) (*KV, error) {
	kv := &KV{
		data:          make(map[string][]byte),
		path:          path,
		compactFactor: DefaultCompactFactor,
		compactMin:    DefaultCompactMinRecords,
	}
	if err := kv.replay(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open WAL %s: %w", path, err)
	}
	kv.wal = f
	kv.walBuf = bufio.NewWriter(f)
	return kv, nil
}

// SetAutoCompact tunes the WAL auto-compaction trigger: compaction runs
// after a mutation leaves more than factor× the live key count in WAL
// records, but never below minRecords. factor <= 0 disables auto-compaction
// (explicit Compact still works).
func (kv *KV) SetAutoCompact(factor, minRecords int) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.compactFactor = int64(factor)
	kv.compactMin = int64(minRecords)
}

// Compactions reports how many WAL compactions have run.
func (kv *KV) Compactions() int64 {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.compactions
}

// WALRecords reports how many records the WAL file currently holds.
func (kv *KV) WALRecords() int64 {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.walRecs
}

func (kv *KV) replay(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: replay WAL %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn final record after a crash is expected; stop replay there.
			break
		}
		kv.applyLocked(rec)
		kv.walRecs++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: replay WAL %s: %w", path, err)
	}
	return nil
}

func (kv *KV) applyLocked(rec walRecord) {
	switch rec.Op {
	case OpPut:
		kv.data[rec.Key] = rec.Value
	case OpDelete:
		delete(kv.data, rec.Key)
	}
}

func (kv *KV) appendWAL(recs ...walRecord) error {
	if kv.walBuf == nil {
		return nil
	}
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("store: encode WAL record: %w", err)
		}
		if _, err := kv.walBuf.Write(append(b, '\n')); err != nil {
			return fmt.Errorf("store: append WAL: %w", err)
		}
	}
	if err := kv.walBuf.Flush(); err != nil {
		return err
	}
	kv.walRecs += int64(len(recs))
	return nil
}

// maybeCompactLocked runs a compaction when the WAL has accumulated more
// than compactFactor× the live key count in records (overwrites and
// deletes pile up dead records across reopen cycles; without this the
// append-only file grows without bound). Callers hold kv.mu.
func (kv *KV) maybeCompactLocked() {
	if kv.walBuf == nil || kv.compactFactor <= 0 {
		return
	}
	threshold := kv.compactFactor * int64(len(kv.data))
	if threshold < kv.compactMin {
		threshold = kv.compactMin
	}
	if kv.walRecs <= threshold {
		return
	}
	// Compaction failure is non-fatal: the WAL stays append-only correct,
	// just longer than ideal, and the next mutation retries.
	_ = kv.compactLocked()
}

// Compact rewrites the WAL as a snapshot of the live keys, atomically
// replacing the old log. The store keeps serving from memory throughout.
func (kv *KV) Compact() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	if kv.walBuf == nil {
		return nil // memory-only store: nothing to compact
	}
	return kv.compactLocked()
}

func (kv *KV) compactLocked() error {
	tmpPath := kv.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact %s: %w", kv.path, err)
	}
	w := bufio.NewWriter(tmp)
	keys := make([]string, 0, len(kv.data))
	for k := range kv.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var recs int64
	for _, k := range keys {
		b, err := json.Marshal(walRecord{Op: OpPut, Key: k, Value: kv.data[k]})
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compact encode %q: %w", k, err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compact write: %w", err)
		}
		recs++
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact close: %w", err)
	}
	// Atomic switch: the rename is the commit point. A crash before it
	// replays the old WAL; after it, the snapshot.
	if err := os.Rename(tmpPath, kv.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact rename: %w", err)
	}
	old := kv.wal
	f, err := os.OpenFile(kv.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The snapshot landed but we lost the append handle; keep the old
		// descriptor (it appends to the unlinked file — durability of new
		// writes degrades until reopen, but memory state stays correct).
		return fmt.Errorf("store: compact reopen: %w", err)
	}
	old.Close()
	kv.wal = f
	kv.walBuf = bufio.NewWriter(f)
	kv.walRecs = recs
	kv.compactions++
	return nil
}

// Put stores value under key.
func (kv *KV) Put(key string, value []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	if err := kv.appendWAL(walRecord{Op: OpPut, Key: key, Value: cp}); err != nil {
		return err
	}
	kv.data[key] = cp
	kv.writes++
	kv.maybeCompactLocked()
	return nil
}

// Get retrieves the value stored under key. The returned slice is a copy.
func (kv *KV) Get(key string) ([]byte, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	if kv.closed {
		return nil, ErrClosed
	}
	v, ok := kv.data[key]
	if !ok {
		return nil, fmt.Errorf("store: get %q: %w", key, ErrNotFound)
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Has reports whether key exists.
func (kv *KV) Has(key string) bool {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	_, ok := kv.data[key]
	return ok
}

// Delete removes key; deleting a missing key is not an error.
func (kv *KV) Delete(key string) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	if err := kv.appendWAL(walRecord{Op: OpDelete, Key: key}); err != nil {
		return err
	}
	delete(kv.data, key)
	kv.writes++
	kv.maybeCompactLocked()
	return nil
}

// Batch applies a set of puts atomically: either all land in the WAL or none
// are applied to memory.
func (kv *KV) Batch(puts map[string][]byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	keys := make([]string, 0, len(puts))
	for k := range puts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]walRecord, 0, len(keys))
	for i, k := range keys {
		cp := make([]byte, len(puts[k]))
		copy(cp, puts[k])
		rec := walRecord{Op: OpPut, Key: k, Value: cp}
		if i == 0 {
			rec.Batch = len(keys)
		}
		recs = append(recs, rec)
	}
	if err := kv.appendWAL(recs...); err != nil {
		return err
	}
	for _, rec := range recs {
		kv.data[rec.Key] = rec.Value
	}
	kv.writes += int64(len(recs))
	kv.maybeCompactLocked()
	return nil
}

// Keys returns all keys with the given prefix in sorted order.
func (kv *KV) Keys(prefix string) []string {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	var keys []string
	for k := range kv.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Range calls fn for each key/value with the given prefix in sorted key
// order; iteration stops early if fn returns false. The value slice passed to
// fn must not be retained or mutated.
func (kv *KV) Range(prefix string, fn func(key string, value []byte) bool) {
	for _, k := range kv.Keys(prefix) {
		kv.mu.RLock()
		v, ok := kv.data[k]
		kv.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn(k, v) {
			return
		}
	}
}

// Len returns the number of live keys.
func (kv *KV) Len() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.data)
}

// Writes returns the count of mutating operations applied, which the
// experiment harness uses as a cheap write-amplification probe.
func (kv *KV) Writes() int64 {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.writes
}

// TamperUnderlying mutates a stored value *without* going through the WAL or
// the public API. It exists solely for experiments that simulate an attacker
// with direct database access (hybrid-store audit, E4/E5); production code
// must never call it. It returns false if the key does not exist.
func (kv *KV) TamperUnderlying(key string, newValue []byte) bool {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if _, ok := kv.data[key]; !ok {
		return false
	}
	kv.data[key] = append([]byte(nil), newValue...)
	return true
}

// Close flushes and closes the WAL. Further operations return ErrClosed.
func (kv *KV) Close() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return nil
	}
	kv.closed = true
	if kv.walBuf != nil {
		if err := kv.walBuf.Flush(); err != nil {
			return fmt.Errorf("store: close flush: %w", err)
		}
	}
	if kv.wal != nil {
		if err := kv.wal.Close(); err != nil {
			return fmt.Errorf("store: close WAL: %w", err)
		}
	}
	return nil
}
