// Package sim hosts the seedpin test fixtures. The rule covers test files
// and the attack harness only, so this non-test literal is not flagged.
package sim

import "fix/internal/netsim"

// Default is production wiring: runtime seeds are chosen by the caller.
var Default = netsim.Config{Synchronous: true}
