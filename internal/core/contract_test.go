package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/xacml"
)

var testKey = crypto.DeriveKey("test", "li-key")

// matchEnv drives the log-match contract directly through the engine.
type matchEnv struct {
	t      *testing.T
	engine *contract.Engine
	st     *contract.State
	height uint64
}

func newMatchEnv(t *testing.T, cfg MatchConfig) *matchEnv {
	t.Helper()
	reg := contract.NewRegistry()
	reg.MustRegister(NewLogMatchContract(cfg))
	return &matchEnv{t: t, engine: contract.NewEngine(reg), st: contract.NewState(), height: 1}
}

func (e *matchEnv) call(caller, method string, args []byte) ([]contract.Event, error) {
	e.t.Helper()
	ctx := contract.CallCtx{Height: e.height, Caller: caller, TxID: crypto.Sum(args)}
	return e.engine.Execute(ctx, e.st, contract.Call{Contract: ContractName, Method: method, Args: args})
}

func (e *matchEnv) mustCall(caller, method string, args []byte) []contract.Event {
	e.t.Helper()
	evs, err := e.call(caller, method, args)
	if err != nil {
		e.t.Fatalf("%s/%s: %v", caller, method, err)
	}
	return evs
}

func (e *matchEnv) onBlock() []contract.Event {
	evs := e.engine.OnBlock(e.height, time.Unix(int64(e.height), 0), e.st)
	e.height++
	return evs
}

func (e *matchEnv) anchorPolicy(version string, digest crypto.Digest) {
	e.t.Helper()
	pa := PolicyAnnouncement{Version: version, Digest: digest, Active: true}
	e.mustCall("pap", MethodPolicy, pa.Encode())
}

// exchange builds the four consistent records of one clean exchange.
type exchange struct {
	reqID    string
	reqDig   crypto.Digest
	respDig  crypto.Digest
	decision xacml.Decision
	polVer   string
	polDig   crypto.Digest
}

func cleanExchange(reqID string) exchange {
	return exchange{
		reqID:    reqID,
		reqDig:   crypto.Sum([]byte("request-" + reqID)),
		respDig:  crypto.Sum([]byte("response-" + reqID)),
		decision: xacml.Permit,
		polVer:   "v1",
		polDig:   crypto.Sum([]byte("policy-v1")),
	}
}

func (x exchange) pepRequest() LogRecord {
	return LogRecord{Kind: KindPEPRequest, ReqID: x.reqID, Tenant: "t1", Agent: "agent-t1", ReqDigest: x.reqDig}
}
func (x exchange) pdpRequest() LogRecord {
	return LogRecord{Kind: KindPDPRequest, ReqID: x.reqID, Tenant: "infra", Agent: "agent-infra", ReqDigest: x.reqDig}
}
func (x exchange) pdpResponse() LogRecord {
	return LogRecord{Kind: KindPDPResponse, ReqID: x.reqID, Tenant: "infra", Agent: "agent-infra",
		ReqDigest: x.reqDig, RespDigest: x.respDig,
		DecisionTag:   DecisionTag(testKey, x.reqID, x.decision),
		PolicyVersion: x.polVer, PolicyDigest: x.polDig}
}
func (x exchange) pepResponse(enforced xacml.Decision) LogRecord {
	return LogRecord{Kind: KindPEPResponse, ReqID: x.reqID, Tenant: "t1", Agent: "agent-t1",
		ReqDigest: x.reqDig, RespDigest: x.respDig,
		DecisionTag: DecisionTag(testKey, x.reqID, x.decision),
		EnforcedTag: DecisionTag(testKey, x.reqID, enforced)}
}
func (x exchange) verdict(expected xacml.Decision) Verdict {
	return Verdict{ReqID: x.reqID, ExpectedTag: DecisionTag(testKey, x.reqID, expected),
		PolicyDigest: x.polDig, Analyser: "analyser"}
}

func alertsOf(evs []contract.Event) []Alert {
	var out []Alert
	for _, e := range evs {
		if e.Type == EventAlert {
			a, err := DecodeAlert(e.Payload)
			if err == nil {
				out = append(out, a)
			}
		}
	}
	return out
}

func hasEvent(evs []contract.Event, typ string) bool {
	for _, e := range evs {
		if e.Type == typ {
			return true
		}
	}
	return false
}

func defaultCfg() MatchConfig {
	return MatchConfig{TimeoutBlocks: 3, PAP: "pap", Analyser: "analyser", RequireVerdict: true}
}

func TestCleanExchangeMatches(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-1")
	env.anchorPolicy(x.polVer, x.polDig)

	var all []contract.Event
	all = append(all, env.mustCall("li-t1", MethodLog, x.pepRequest().Encode())...)
	all = append(all, env.mustCall("li-infra", MethodLog, x.pdpRequest().Encode())...)
	all = append(all, env.mustCall("li-infra", MethodLog, x.pdpResponse().Encode())...)
	all = append(all, env.mustCall("li-t1", MethodLog, x.pepResponse(x.decision).Encode())...)
	all = append(all, env.mustCall("analyser", MethodVerdict, x.verdict(x.decision).Encode())...)

	if got := alertsOf(all); len(got) != 0 {
		t.Fatalf("clean exchange raised alerts: %v", got)
	}
	if !hasEvent(all, EventMatched) {
		t.Fatal("no Matched event")
	}
	ns := contract.Namespace(env.st, ContractName)
	if !ReadDone(ns, "req-1") {
		t.Fatal("request not marked done")
	}
	// Timeouts later must not fire for a done request.
	env.height += 10
	if alerts := alertsOf(env.onBlock()); len(alerts) != 0 {
		t.Fatalf("done request raised timeout alerts: %v", alerts)
	}
}

func TestM1RequestTampered(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-m1")
	env.anchorPolicy(x.polVer, x.polDig)
	env.mustCall("li-t1", MethodLog, x.pepRequest().Encode())
	tampered := x.pdpRequest()
	tampered.ReqDigest = crypto.Sum([]byte("evil"))
	evs := env.mustCall("li-infra", MethodLog, tampered.Encode())
	alerts := alertsOf(evs)
	if len(alerts) != 1 || alerts[0].Type != AlertRequestTampered {
		t.Fatalf("alerts = %v", alerts)
	}
	if !strings.Contains(alerts[0].Detail, "PEP egress") {
		t.Fatalf("detail = %q", alerts[0].Detail)
	}
}

func TestM2ResponseTampered(t *testing.T) {
	for _, mode := range []string{"digest", "decision"} {
		env := newMatchEnv(t, defaultCfg())
		x := cleanExchange("req-m2-" + mode)
		env.anchorPolicy(x.polVer, x.polDig)
		env.mustCall("li-infra", MethodLog, x.pdpResponse().Encode())
		rec := x.pepResponse(x.decision)
		switch mode {
		case "digest":
			rec.RespDigest = crypto.Sum([]byte("evil"))
		case "decision":
			// PEP received a flipped decision (and enforced it).
			rec.DecisionTag = DecisionTag(testKey, x.reqID, xacml.Deny)
			rec.EnforcedTag = rec.DecisionTag
		}
		evs := env.mustCall("li-t1", MethodLog, rec.Encode())
		alerts := alertsOf(evs)
		found := false
		for _, a := range alerts {
			if a.Type == AlertResponseTampered {
				found = true
			}
		}
		if !found {
			t.Fatalf("mode %s: alerts = %v", mode, alerts)
		}
	}
}

func TestM3Timeout(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-m3")
	env.anchorPolicy(x.polVer, x.polDig)
	env.mustCall("li-t1", MethodLog, x.pepRequest().Encode())
	// Nothing else arrives. Advance past the deadline.
	var alerts []Alert
	for i := 0; i < 6; i++ {
		alerts = append(alerts, alertsOf(env.onBlock())...)
	}
	if len(alerts) != 1 || alerts[0].Type != AlertMessageSuppressed {
		t.Fatalf("alerts = %v", alerts)
	}
	for _, missing := range []string{string(KindPDPRequest), string(KindPDPResponse), string(KindPEPResponse)} {
		if !strings.Contains(alerts[0].Detail, missing) {
			t.Fatalf("detail %q missing %q", alerts[0].Detail, missing)
		}
	}
	if strings.Contains(alerts[0].Detail, string(KindPEPRequest)) {
		t.Fatalf("detail %q lists the present record", alerts[0].Detail)
	}
}

func TestM3DeadlineNotRearmed(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-m3b")
	env.anchorPolicy(x.polVer, x.polDig)
	env.mustCall("li-t1", MethodLog, x.pepRequest().Encode())
	env.height += 2
	env.mustCall("li-infra", MethodLog, x.pdpRequest().Encode()) // second record must not extend the deadline
	var alerts []Alert
	for i := 0; i < 8; i++ {
		alerts = append(alerts, alertsOf(env.onBlock())...)
	}
	if len(alerts) != 1 || alerts[0].Type != AlertMessageSuppressed {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestM4EnforcementMismatch(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-m4")
	env.anchorPolicy(x.polVer, x.polDig)
	env.mustCall("li-infra", MethodLog, x.pdpResponse().Encode())
	// PEP received Permit but enforced Deny.
	evs := env.mustCall("li-t1", MethodLog, x.pepResponse(xacml.Deny).Encode())
	alerts := alertsOf(evs)
	if len(alerts) != 1 || alerts[0].Type != AlertEnforcementMismatch {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestM5DecisionIncorrect(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-m5")
	env.anchorPolicy(x.polVer, x.polDig)
	env.mustCall("li-infra", MethodLog, x.pdpResponse().Encode()) // PDP says Permit
	evs := env.mustCall("analyser", MethodVerdict, x.verdict(xacml.Deny).Encode())
	alerts := alertsOf(evs)
	if len(alerts) != 1 || alerts[0].Type != AlertDecisionIncorrect {
		t.Fatalf("alerts = %v", alerts)
	}
	// Order independence: verdict first, then pdp.response.
	env2 := newMatchEnv(t, defaultCfg())
	env2.anchorPolicy(x.polVer, x.polDig)
	env2.mustCall("analyser", MethodVerdict, x.verdict(xacml.Deny).Encode())
	evs2 := env2.mustCall("li-infra", MethodLog, x.pdpResponse().Encode())
	alerts2 := alertsOf(evs2)
	if len(alerts2) != 1 || alerts2[0].Type != AlertDecisionIncorrect {
		t.Fatalf("reversed order alerts = %v", alerts2)
	}
}

func TestM6PolicyTampered(t *testing.T) {
	x := cleanExchange("req-m6")
	cases := []struct {
		name   string
		setup  func(env *matchEnv)
		mutate func(rec *LogRecord)
		detail string
	}{
		{
			name:   "unanchored version",
			setup:  func(env *matchEnv) {}, // no policy announced
			mutate: func(rec *LogRecord) {},
			detail: "not anchored",
		},
		{
			name: "stale version",
			setup: func(env *matchEnv) {
				env.anchorPolicy("v1", x.polDig)
				env.anchorPolicy("v2", crypto.Sum([]byte("policy-v2")))
			},
			mutate: func(rec *LogRecord) {}, // claims v1 while v2 active
			detail: "active version",
		},
		{
			name:  "digest mismatch",
			setup: func(env *matchEnv) { env.anchorPolicy("v1", x.polDig) },
			mutate: func(rec *LogRecord) {
				rec.PolicyDigest = crypto.Sum([]byte("forged-policy"))
			},
			detail: "differs from anchored",
		},
	}
	for _, c := range cases {
		env := newMatchEnv(t, defaultCfg())
		c.setup(env)
		rec := x.pdpResponse()
		c.mutate(&rec)
		evs := env.mustCall("li-infra", MethodLog, rec.Encode())
		alerts := alertsOf(evs)
		if len(alerts) != 1 || alerts[0].Type != AlertPolicyTampered {
			t.Fatalf("%s: alerts = %v", c.name, alerts)
		}
		if !strings.Contains(alerts[0].Detail, c.detail) {
			t.Fatalf("%s: detail = %q", c.name, alerts[0].Detail)
		}
	}
}

func TestVerdictMissingTimeout(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-vm")
	env.anchorPolicy(x.polVer, x.polDig)
	for _, rec := range []LogRecord{x.pepRequest(), x.pdpRequest(), x.pdpResponse(), x.pepResponse(x.decision)} {
		env.mustCall("li", MethodLog, rec.Encode())
	}
	var alerts []Alert
	for i := 0; i < 6; i++ {
		alerts = append(alerts, alertsOf(env.onBlock())...)
	}
	if len(alerts) != 1 || alerts[0].Type != AlertVerdictMissing {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestVerdictOptional(t *testing.T) {
	cfg := defaultCfg()
	cfg.RequireVerdict = false
	env := newMatchEnv(t, cfg)
	x := cleanExchange("req-opt")
	env.anchorPolicy(x.polVer, x.polDig)
	var all []contract.Event
	for _, rec := range []LogRecord{x.pepRequest(), x.pdpRequest(), x.pdpResponse(), x.pepResponse(x.decision)} {
		all = append(all, env.mustCall("li", MethodLog, rec.Encode())...)
	}
	if !hasEvent(all, EventMatched) {
		t.Fatal("exchange without verdict should match when verdicts optional")
	}
	for i := 0; i < 6; i++ {
		if alerts := alertsOf(env.onBlock()); len(alerts) != 0 {
			t.Fatalf("alerts = %v", alerts)
		}
	}
}

func TestEquivocationAndIdempotence(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-eq")
	env.anchorPolicy(x.polVer, x.polDig)
	rec := x.pepRequest()
	env.mustCall("li-t1", MethodLog, rec.Encode())
	// Identical retry: no alert, no event.
	evs := env.mustCall("li-t1", MethodLog, rec.Encode())
	if len(evs) != 0 {
		t.Fatalf("idempotent retry produced events: %v", evs)
	}
	// Conflicting record for the same point: equivocation.
	conflict := rec
	conflict.ReqDigest = crypto.Sum([]byte("other"))
	evs = env.mustCall("li-t1", MethodLog, conflict.Encode())
	alerts := alertsOf(evs)
	if len(alerts) != 1 || alerts[0].Type != AlertEquivocation {
		t.Fatalf("alerts = %v", alerts)
	}
	// Original record is preserved.
	ns := contract.Namespace(env.st, ContractName)
	stored, ok := ReadStoredRecord(ns, x.reqID, KindPEPRequest)
	if !ok || stored.ReqDigest != rec.ReqDigest {
		t.Fatal("original record not preserved")
	}
}

func TestAlertDeduplication(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-dd")
	env.anchorPolicy(x.polVer, x.polDig)
	env.mustCall("li-t1", MethodLog, x.pepRequest().Encode())
	tampered := x.pdpRequest()
	tampered.ReqDigest = crypto.Sum([]byte("evil"))
	first := alertsOf(env.mustCall("li-infra", MethodLog, tampered.Encode()))
	if len(first) != 1 {
		t.Fatalf("first = %v", first)
	}
	// Subsequent records re-run checks but must not duplicate the alert.
	resp := x.pdpResponse()
	later := alertsOf(env.mustCall("li-infra", MethodLog, resp.Encode()))
	for _, a := range later {
		if a.Type == AlertRequestTampered {
			t.Fatal("M1 alert duplicated")
		}
	}
}

func TestAccessControlOnMethods(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-ac")
	if _, err := env.call("mallory", MethodVerdict, x.verdict(xacml.Permit).Encode()); err == nil {
		t.Fatal("foreign verdict accepted")
	}
	pa := PolicyAnnouncement{Version: "v1", Digest: x.polDig, Active: true}
	if _, err := env.call("mallory", MethodPolicy, pa.Encode()); err == nil {
		t.Fatal("foreign policy announcement accepted")
	}
	if _, err := env.call("li", "unknown-method", nil); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestPolicyReAnchorConflict(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	env.anchorPolicy("v1", crypto.Sum([]byte("a")))
	pa := PolicyAnnouncement{Version: "v1", Digest: crypto.Sum([]byte("b")), Active: true}
	if _, err := env.call("pap", MethodPolicy, pa.Encode()); err == nil {
		t.Fatal("conflicting re-anchor accepted")
	}
	// Idempotent same-digest re-anchor is fine.
	pa2 := PolicyAnnouncement{Version: "v1", Digest: crypto.Sum([]byte("a")), Active: true}
	if _, err := env.call("pap", MethodPolicy, pa2.Encode()); err != nil {
		t.Fatalf("idempotent re-anchor rejected: %v", err)
	}
}

func TestRecordValidation(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	bad := []LogRecord{
		{},                                 // no id
		{Kind: KindPEPRequest, ReqID: "x"}, // no digest
		{Kind: "weird", ReqID: "x", ReqDigest: crypto.Sum([]byte("r"))},          // unknown kind
		{Kind: KindPDPResponse, ReqID: "x", RespDigest: crypto.Sum([]byte("r"))}, // missing tag
	}
	for i, rec := range bad {
		if _, err := env.call("li", MethodLog, rec.Encode()); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
	if _, err := env.call("li", MethodLog, []byte("{")); err == nil {
		t.Error("garbage args accepted")
	}
	if _, err := env.call("analyser", MethodVerdict, []byte("{")); err == nil {
		t.Error("garbage verdict accepted")
	}
	if _, err := env.call("pap", MethodPolicy, []byte("{")); err == nil {
		t.Error("garbage policy accepted")
	}
	empty := Verdict{ReqID: "", ExpectedTag: crypto.Digest{}}
	if _, err := env.call("analyser", MethodVerdict, empty.Encode()); err == nil {
		t.Error("empty verdict accepted")
	}
}

func TestDecisionTagProperties(t *testing.T) {
	// Equal decision+request → equal tags; anything else differs.
	a := DecisionTag(testKey, "r1", xacml.Permit)
	if a != DecisionTag(testKey, "r1", xacml.Permit) {
		t.Fatal("tag not deterministic")
	}
	if a == DecisionTag(testKey, "r1", xacml.Deny) {
		t.Fatal("different decisions share a tag")
	}
	if a == DecisionTag(testKey, "r2", xacml.Permit) {
		t.Fatal("different requests share a tag (replay risk)")
	}
	other := crypto.DeriveKey("other", "key")
	if a == DecisionTag(other, "r1", xacml.Permit) {
		t.Fatal("different keys share a tag")
	}
	// Extended indeterminates collapse: tag is over the simple lattice.
	if DecisionTag(testKey, "r1", xacml.IndeterminateD) != DecisionTag(testKey, "r1", xacml.IndeterminateDP) {
		t.Fatal("indeterminate flavours should share a tag")
	}
}

func TestEncryptedContextRoundTrip(t *testing.T) {
	cipher, err := crypto.NewCipher(testKey)
	if err != nil {
		t.Fatal(err)
	}
	req := xacml.NewRequest("rq").Add(xacml.CatSubject, "role", xacml.String("doctor"))
	res := xacml.Result{RequestID: "rq", Decision: xacml.Permit}
	ec := EncryptedContext{Request: req, Result: &res, Enforced: xacml.Permit}
	sealed, err := ec.Seal(cipher, "rq")
	if err != nil {
		t.Fatal(err)
	}
	back, err := OpenContext(cipher, "rq", sealed)
	if err != nil {
		t.Fatal(err)
	}
	if back.Request.Digest() != req.Digest() || back.Result.Decision != xacml.Permit {
		t.Fatal("context round trip mismatch")
	}
	// Binding to reqID: opening under another request id fails.
	if _, err := OpenContext(cipher, "other", sealed); err == nil {
		t.Fatal("context not bound to request id")
	}
	// Wrong key fails.
	otherCipher, _ := crypto.NewCipher(crypto.DeriveKey("x", "y"))
	if _, err := OpenContext(otherCipher, "rq", sealed); err == nil {
		t.Fatal("context opened with wrong key")
	}
}

func TestAlertEncodeDecodeAndString(t *testing.T) {
	a := Alert{Type: AlertRequestTampered, ReqID: "r", Tenant: "t", Detail: "d", Height: 4}
	back, err := DecodeAlert(a.Encode())
	if err != nil || back != a {
		t.Fatalf("round trip: %+v %v", back, err)
	}
	if !strings.Contains(a.String(), "request-tampered") {
		t.Fatalf("String() = %q", a.String())
	}
	if _, err := DecodeAlert([]byte("{")); err == nil {
		t.Fatal("garbage alert decoded")
	}
	if len(AllAlertTypes()) != 8 {
		t.Fatalf("alert taxonomy size = %d", len(AllAlertTypes()))
	}
}

func TestLogRecordJSONStable(t *testing.T) {
	x := cleanExchange("req-js")
	rec := x.pdpResponse()
	var m map[string]any
	if err := json.Unmarshal(rec.Encode(), &m); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"kind", "reqId", "reqDigest", "respDigest", "decisionTag", "policyVersion", "policyDigest"} {
		if _, ok := m[field]; !ok {
			t.Errorf("encoded record missing %q", field)
		}
	}
}
