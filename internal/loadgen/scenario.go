package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("250ms"), so scenario files stay human-editable.
type Duration time.Duration

// D converts to time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts both "250ms" strings and raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("loadgen: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("loadgen: bad duration %s", data)
	}
	*d = Duration(n)
	return nil
}

// Executor types.
const (
	// ExecConstantArrivalRate fires iterations on a fixed (or Poisson)
	// schedule at Rate/s regardless of in-flight completions — the
	// open-loop executor that cannot coordinate-omit.
	ExecConstantArrivalRate = "constant-arrival-rate"
	// ExecRampingArrivalRate varies the arrival rate piecewise-linearly
	// through Stages, starting from Rate.
	ExecRampingArrivalRate = "ramping-arrival-rate"
	// ExecLoopingVU runs VUs closed-loop workers, each firing its next
	// iteration only after the previous one returned — the
	// coordinated-omission-prone baseline the open-loop executors are
	// compared against.
	ExecLoopingVU = "looping-vu"
)

// Stage is one ramp segment: the arrival rate moves linearly from the
// previous stage's target (or ExecutorSpec.Rate for the first stage) to
// Target over Duration.
type Stage struct {
	Target   float64  `json:"target"`
	Duration Duration `json:"duration"`
}

// ExecutorSpec selects and parameterises the iteration scheduler.
type ExecutorSpec struct {
	Type string `json:"type"`
	// Rate is the arrival rate in iterations/s (constant-arrival-rate),
	// or the starting rate of the first ramp stage.
	Rate float64 `json:"rate,omitempty"`
	// Duration bounds the run (constant-arrival-rate and looping-vu; a
	// ramping run lasts the sum of its stages).
	Duration Duration `json:"duration,omitempty"`
	// Stages is the ramp profile (ramping-arrival-rate only).
	Stages []Stage `json:"stages,omitempty"`
	// Poisson draws exponentially distributed inter-arrival gaps instead
	// of a fixed 1/rate spacing.
	Poisson bool `json:"poisson,omitempty"`
	// MaxWorkers bounds the in-flight iteration pool of the open-loop
	// executors (default 256). When every worker is busy at an arrival
	// tick, the iteration is counted in dropped_iterations — never
	// silently skipped, never queued (queueing would re-introduce
	// coordination).
	MaxWorkers int `json:"max_workers,omitempty"`
	// VUs is the closed-loop worker count (looping-vu only, default 1).
	VUs int `json:"vus,omitempty"`
	// Iterations optionally caps total looping-vu iterations (0 = bound
	// by Duration only).
	Iterations int64 `json:"iterations,omitempty"`
}

// totalDuration is the scheduled run length.
func (e ExecutorSpec) totalDuration() time.Duration {
	if e.Type == ExecRampingArrivalRate {
		var total time.Duration
		for _, st := range e.Stages {
			total += st.Duration.D()
		}
		return total
	}
	return e.Duration.D()
}

func (e ExecutorSpec) validate() error {
	switch e.Type {
	case ExecConstantArrivalRate:
		if e.Rate <= 0 {
			return fmt.Errorf("loadgen: %s needs rate > 0", e.Type)
		}
		if e.Duration <= 0 {
			return fmt.Errorf("loadgen: %s needs duration > 0", e.Type)
		}
	case ExecRampingArrivalRate:
		if len(e.Stages) == 0 {
			return fmt.Errorf("loadgen: %s needs at least one stage", e.Type)
		}
		for i, st := range e.Stages {
			if st.Target < 0 || st.Duration <= 0 {
				return fmt.Errorf("loadgen: %s stage %d needs target >= 0 and duration > 0", e.Type, i)
			}
		}
	case ExecLoopingVU:
		if e.Duration <= 0 && e.Iterations <= 0 {
			return fmt.Errorf("loadgen: %s needs duration or iterations", e.Type)
		}
	default:
		return fmt.Errorf("loadgen: unknown executor type %q (known: %s, %s, %s)",
			e.Type, ExecConstantArrivalRate, ExecRampingArrivalRate, ExecLoopingVU)
	}
	if e.MaxWorkers < 0 || e.VUs < 0 {
		return fmt.Errorf("loadgen: negative worker counts")
	}
	return nil
}

// Request templates.
const (
	// TemplateRead is the permit-path read probe (doctor reads a record).
	TemplateRead = "read"
	// TemplateWrite cycles roles over writes, mixing permits and denies.
	TemplateWrite = "write"
	// TemplateCrossTenant issues a read through one tenant's PEP on behalf
	// of a subject homed in another tenant.
	TemplateCrossTenant = "cross-tenant"
)

// MixEntry weights one request template within a scenario.
type MixEntry struct {
	Template string  `json:"template"`
	Weight   float64 `json:"weight"`
}

// PolicyFlipSpec schedules a mid-run on-chain policy update through the
// target's PAP admin path.
type PolicyFlipSpec struct {
	// After is the offset from run start.
	After Duration `json:"after"`
	// Policy names a built-in policy set as name:version, e.g.
	// "standard:v2" or "restricted:v2".
	Policy string `json:"policy"`
}

// ChurnSpec schedules a member kill and rejoin against the target.
type ChurnSpec struct {
	// Victim is the edge tenant whose federation member is killed.
	Victim string `json:"victim"`
	// KillAfter is the kill offset from run start.
	KillAfter Duration `json:"kill_after"`
	// RejoinAfter is the rejoin offset from the kill.
	RejoinAfter Duration `json:"rejoin_after"`
}

// Scenario is a declarative load-test: an executor, a weighted request
// mix, optional mid-run policy-flip and churn events, a sampling cadence,
// and the SLO thresholds gating the run's exit code.
type Scenario struct {
	Name     string       `json:"name"`
	Executor ExecutorSpec `json:"executor"`
	Mix      []MixEntry   `json:"mix,omitempty"`
	// RequestTimeout bounds one decision round-trip (default 5s).
	RequestTimeout Duration `json:"request_timeout,omitempty"`
	// SampleEvery is the time-series window width (default 1s).
	SampleEvery Duration `json:"sample_every,omitempty"`
	// AlertSample is the fraction of requests whose alert-detection
	// latency is tracked, 0..1 (default 0 = off; needs a target with
	// monitoring, i.e. netsim with monitoring on).
	AlertSample float64 `json:"alert_sample,omitempty"`
	// PolicyFlip optionally schedules a mid-run policy update.
	PolicyFlip *PolicyFlipSpec `json:"policy_flip,omitempty"`
	// Churn optionally schedules a member kill/rejoin.
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Thresholds are SLO expressions (see ParseThreshold) evaluated at
	// run end.
	Thresholds []string `json:"thresholds,omitempty"`
	// Seed drives every random choice of the run (arrival jitter,
	// template picks); equal seeds give equal schedules.
	Seed uint64 `json:"seed,omitempty"`
}

// withDefaults fills unset knobs.
func (s Scenario) withDefaults() Scenario {
	if len(s.Mix) == 0 {
		s.Mix = []MixEntry{{Template: TemplateRead, Weight: 1}}
	}
	if s.RequestTimeout <= 0 {
		s.RequestTimeout = Duration(5 * time.Second)
	}
	if s.SampleEvery <= 0 {
		s.SampleEvery = Duration(time.Second)
	}
	if s.Executor.MaxWorkers == 0 {
		s.Executor.MaxWorkers = 256
	}
	if s.Executor.Type == ExecLoopingVU && s.Executor.VUs == 0 {
		s.Executor.VUs = 1
	}
	return s
}

// Validate checks the scenario is runnable (thresholds included).
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("loadgen: scenario needs a name")
	}
	if err := s.Executor.validate(); err != nil {
		return err
	}
	var total float64
	for _, m := range s.Mix {
		switch m.Template {
		case TemplateRead, TemplateWrite, TemplateCrossTenant:
		default:
			return fmt.Errorf("loadgen: unknown template %q (known: %s, %s, %s)",
				m.Template, TemplateRead, TemplateWrite, TemplateCrossTenant)
		}
		if m.Weight < 0 {
			return fmt.Errorf("loadgen: template %q has negative weight", m.Template)
		}
		total += m.Weight
	}
	if len(s.Mix) > 0 && total <= 0 {
		return fmt.Errorf("loadgen: request mix has zero total weight")
	}
	if s.AlertSample < 0 || s.AlertSample > 1 {
		return fmt.Errorf("loadgen: alert_sample must be in [0,1]")
	}
	if s.PolicyFlip != nil {
		if _, err := BuiltinPolicy(s.PolicyFlip.Policy); err != nil {
			return err
		}
	}
	if s.Churn != nil && s.Churn.Victim == "" {
		return fmt.Errorf("loadgen: churn needs a victim tenant")
	}
	if _, err := ParseThresholds(s.Thresholds); err != nil {
		return err
	}
	return nil
}

// LoadScenario reads and validates a scenario JSON file.
func LoadScenario(path string) (Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	var s Scenario
	if err := json.Unmarshal(raw, &s); err != nil {
		return Scenario{}, fmt.Errorf("loadgen: parse scenario %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("loadgen: scenario %s: %w", path, err)
	}
	return s, nil
}

// Builtin scenarios, by name.
func builtins() map[string]Scenario {
	return map[string]Scenario{
		// ci-slo is the CI gate: seed-pinned constant open-loop traffic on
		// netsim with monitoring on and generous-but-real thresholds.
		"ci-slo": {
			Name: "ci-slo",
			Executor: ExecutorSpec{
				Type: ExecConstantArrivalRate, Rate: 150,
				Duration: Duration(4 * time.Second), Poisson: true, MaxWorkers: 512,
			},
			Mix: []MixEntry{
				{Template: TemplateRead, Weight: 0.7},
				{Template: TemplateWrite, Weight: 0.2},
				{Template: TemplateCrossTenant, Weight: 0.1},
			},
			RequestTimeout: Duration(3 * time.Second),
			SampleEvery:    Duration(time.Second),
			AlertSample:    0.05,
			// Generous for small CI runners (the gate catches collapse
			// and regressions measured in multiples, not milliseconds).
			// rate guards the hot path: of the 150 req/s scheduled, at
			// least 100 req/s must actually complete.
			Thresholds: []string{"p99<1s", "error_rate<1%", "dropped<1%", "rate>=100"},
			Seed:       7,
		},
		// smoke is a fast sanity run for local iteration.
		"smoke": {
			Name: "smoke",
			Executor: ExecutorSpec{
				Type: ExecConstantArrivalRate, Rate: 50,
				Duration: Duration(2 * time.Second), Poisson: true,
			},
			Thresholds: []string{"error_rate<5%", "dropped<5%"},
			Seed:       7,
		},
		// ramp-flip-churn is the full netsim drill: ramping open-loop
		// arrivals with a mid-run policy flip and a member kill/rejoin.
		// Thresholds tolerate the churn window (victim-tenant requests
		// fail while its member is cut off).
		"ramp-flip-churn": {
			Name: "ramp-flip-churn",
			Executor: ExecutorSpec{
				Type: ExecRampingArrivalRate, Rate: 50, Poisson: true, MaxWorkers: 512,
				Stages: []Stage{
					{Target: 150, Duration: Duration(2 * time.Second)},
					{Target: 300, Duration: Duration(3 * time.Second)},
					{Target: 100, Duration: Duration(2 * time.Second)},
				},
			},
			Mix: []MixEntry{
				{Template: TemplateRead, Weight: 0.6},
				{Template: TemplateWrite, Weight: 0.3},
				{Template: TemplateCrossTenant, Weight: 0.1},
			},
			RequestTimeout: Duration(1500 * time.Millisecond),
			SampleEvery:    Duration(500 * time.Millisecond),
			PolicyFlip:     &PolicyFlipSpec{After: Duration(2 * time.Second), Policy: "standard:v2"},
			Churn: &ChurnSpec{
				Victim:      "tenant-2",
				KillAfter:   Duration(3 * time.Second),
				RejoinAfter: Duration(2 * time.Second),
			},
			Thresholds: []string{"p99<1500ms", "error_rate<40%", "dropped<20%"},
			Seed:       7,
		},
		// tcp-ramp drives a live TCP federation (see scripts/
		// smoke_loadgen.sh): ramping arrivals with a mid-run policy flip
		// published through the harness's own federation member; process
		// kill/rejoin churn is injected externally by the operator.
		"tcp-ramp": {
			Name: "tcp-ramp",
			Executor: ExecutorSpec{
				Type: ExecRampingArrivalRate, Rate: 15, Poisson: true, MaxWorkers: 512,
				Stages: []Stage{
					{Target: 50, Duration: Duration(4 * time.Second)},
					{Target: 80, Duration: Duration(4 * time.Second)},
					{Target: 30, Duration: Duration(4 * time.Second)},
				},
			},
			Mix: []MixEntry{
				{Template: TemplateRead, Weight: 0.8},
				{Template: TemplateWrite, Weight: 0.2},
			},
			RequestTimeout: Duration(5 * time.Second),
			SampleEvery:    Duration(time.Second),
			PolicyFlip:     &PolicyFlipSpec{After: Duration(4 * time.Second), Policy: "standard:v2"},
			// Sized for CI runners (possibly single-core): the gate is
			// "no collapse", not a latency benchmark.
			Thresholds: []string{"p99<4000ms", "error_rate<10%", "dropped<10%"},
			Seed:       7,
		},
		// closed-loop is the coordinated-omission comparison baseline.
		"closed-loop": {
			Name: "closed-loop",
			Executor: ExecutorSpec{
				Type: ExecLoopingVU, VUs: 4, Duration: Duration(4 * time.Second),
			},
			Thresholds: []string{"error_rate<1%"},
			Seed:       7,
		},
	}
}

// BuiltinScenario returns a named builtin.
func BuiltinScenario(name string) (Scenario, error) {
	s, ok := builtins()[name]
	if !ok {
		return Scenario{}, fmt.Errorf("loadgen: unknown scenario %q (known: %s)",
			name, strings.Join(BuiltinScenarioNames(), ", "))
	}
	return s, nil
}

// BuiltinScenarioNames lists the builtin scenarios, sorted.
func BuiltinScenarioNames() []string {
	var names []string
	for name := range builtins() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
