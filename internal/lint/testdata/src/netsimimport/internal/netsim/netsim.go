// Package netsim is the fixture stand-in for the in-process simulator.
package netsim

// Config mirrors the simulator's seeded configuration.
type Config struct {
	Synchronous bool
	Seed        int64
}

// New builds a fixture network handle.
func New(cfg Config) *Network { return &Network{cfg: cfg} }

// Network is the fixture simulator handle.
type Network struct{ cfg Config }
