package attack

import (
	"context"
	"math"
	"testing"
	"time"

	"drams"
	"drams/internal/xacml"
)

func detectPolicy() *xacml.PolicySet {
	doctorRead := &xacml.Rule{
		ID:     "doctor-read",
		Effect: xacml.EffectPermit,
		Target: xacml.Target{AnyOf: []xacml.AnyOf{{AllOf: []xacml.AllOf{{Matches: []xacml.Match{
			{Op: xacml.CmpEq, Attr: xacml.Designator{Cat: xacml.CatSubject, ID: "role"}, Lit: xacml.String("doctor")},
		}}}}}},
	}
	deny := &xacml.Rule{ID: "default-deny", Effect: xacml.EffectDeny}
	return &xacml.PolicySet{ID: "root", Version: "v1", Alg: xacml.DenyUnlessPermit,
		Items: []xacml.PolicyItem{{Policy: &xacml.Policy{ID: "p", Version: "1",
			Alg: xacml.FirstApplicable, Rules: []*xacml.Rule{doctorRead, deny}}}}}
}

func escalateToDoctor(req *xacml.Request) *xacml.Request {
	out := xacml.NewRequest(req.ID)
	out.Add(xacml.CatSubject, "role", xacml.String("doctor"))
	return out
}

// TestCatalogueDetectionMatrix is the executable form of experiment E5:
// every scenario must raise (at least) one of its expected alerts.
func TestCatalogueDetectionMatrix(t *testing.T) {
	dep, err := drams.New(drams.Config{
		Policy:             detectPolicy(),
		Difficulty:         6,
		TimeoutBlocks:      20,
		EmptyBlockInterval: 15 * time.Millisecond,
		Seed:               7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	for _, sc := range Catalogue(escalateToDoctor) {
		sc := sc
		t.Run(sc.ID+"_"+sc.Name, func(t *testing.T) {
			cleanup, err := sc.Install(dep, "tenant-1")
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()

			req := dep.NewRequest().Add(xacml.CatSubject, "role", xacml.String("intern"))
			enf, reqErr := dep.Request("tenant-1", req)
			if sc.WantPermit && reqErr == nil && !enf.Permitted() {
				t.Fatalf("%s: attack did not achieve its goal (decision %s)", sc.ID, enf.Decision)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			type res struct {
				ok  bool
				err error
			}
			got := make(chan res, len(sc.Expected))
			for _, want := range sc.Expected {
				want := want
				go func() {
					_, err := dep.WaitForAlert(ctx, req.ID, want)
					got <- res{ok: err == nil, err: err}
				}()
			}
			for range sc.Expected {
				r := <-got
				if r.ok {
					cancel()
					return // detected
				}
			}
			t.Fatalf("%s: none of the expected alerts %v fired; saw %v",
				sc.ID, sc.Expected, dep.Monitor.AlertsFor(req.ID))
		})
	}
}

func TestLogForgeryRejected(t *testing.T) {
	dep, err := drams.New(drams.Config{
		Policy:             detectPolicy(),
		Difficulty:         6,
		TimeoutBlocks:      20,
		EmptyBlockInterval: 15 * time.Millisecond,
		Seed:               9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	res := AttemptLogForgery(dep.InfraNode(), "forged-req-1")
	if !res.Rejected {
		t.Fatalf("forged log accepted: %v", res.Err)
	}
}

func TestRewriteProbabilityAnalytic(t *testing.T) {
	// Monotone in attacker share.
	if RewriteProbability(0.1, 6) >= RewriteProbability(0.3, 6) {
		t.Fatal("P should grow with attacker share")
	}
	// Monotone (non-increasing) in confirmation depth.
	for z := 1; z < 10; z++ {
		if RewriteProbability(0.3, z+1) > RewriteProbability(0.3, z)+1e-12 {
			t.Fatalf("P should fall with depth: z=%d", z)
		}
	}
	// Majority attacker always wins.
	if RewriteProbability(0.5, 6) != 1 || RewriteProbability(0.7, 3) != 1 {
		t.Fatal("majority attacker must win")
	}
	// Known reference value from the Bitcoin paper: q=0.1, z=5 → ~0.0009.
	got := RewriteProbability(0.1, 5)
	if math.Abs(got-0.0009137) > 2e-4 {
		t.Fatalf("q=0.1 z=5: got %v, want ≈0.0009", got)
	}
	// Probabilities stay in [0,1].
	for _, q := range []float64{0.05, 0.2, 0.45} {
		for z := 0; z < 12; z++ {
			p := RewriteProbability(q, z)
			if p < 0 || p > 1 {
				t.Fatalf("P(q=%v,z=%d) = %v out of range", q, z, p)
			}
		}
	}
}

func TestSimulationMatchesAnalytic(t *testing.T) {
	for _, c := range []struct {
		q float64
		z int
	}{{0.1, 2}, {0.2, 3}, {0.3, 4}} {
		analytic := RewriteProbability(c.q, c.z)
		sim := SimulateRewriteRace(c.q, c.z, 20000, 11)
		// The analytic form uses Nakamoto's Poisson approximation of the
		// head-start phase; the simulation runs the exact race, so allow a
		// small modelling + sampling margin.
		if math.Abs(analytic-sim) > 0.03 {
			t.Errorf("q=%v z=%d: analytic %v vs sim %v", c.q, c.z, analytic, sim)
		}
	}
}

func TestCatalogueShape(t *testing.T) {
	cat := Catalogue(escalateToDoctor)
	if len(cat) != 8 {
		t.Fatalf("catalogue size = %d, want 8", len(cat))
	}
	seen := map[string]bool{}
	for _, sc := range cat {
		if sc.ID == "" || sc.Name == "" || sc.Description == "" || len(sc.Expected) == 0 {
			t.Errorf("scenario %q incomplete", sc.ID)
		}
		if seen[sc.ID] {
			t.Errorf("duplicate scenario id %q", sc.ID)
		}
		seen[sc.ID] = true
	}
	// A1 without an escalation function must fail to install.
	noEsc := Catalogue(nil)
	dep := (*drams.Deployment)(nil)
	_ = dep
	if _, err := noEsc[0].Install(nil, "x"); err == nil {
		t.Error("A1 without escalation should error")
	}
}
