package xacml

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// cacheTestRequests builds a pool of generated requests against a generated
// policy set large enough that decisions vary.
func cacheTestRequests(n int) (*PolicySet, []*Request) {
	gen := NewGenerator(7, GenParams{Rules: 40, Policies: 2, Attrs: 4, ValuesPerAttr: 4, MaxCondDepth: 2})
	ps := gen.PolicySet("cache", "v1")
	reqs := make([]*Request, n)
	for i := range reqs {
		reqs[i] = gen.Request(fmt.Sprintf("r%d", i))
	}
	return ps, reqs
}

// TestCachedPDPBitForBit checks a cached PDP returns exactly the results an
// uncached PDP produces — on cold misses, warm hits, and for requests that
// share attribute content but differ in correlation ID.
func TestCachedPDPBitForBit(t *testing.T) {
	ps, reqs := cacheTestRequests(64)
	plain := NewPDP(ps)
	cached := NewCachedPDP(ps, 1024)

	for round := 0; round < 2; round++ { // round 0 cold, round 1 warm
		for i, r := range reqs {
			want, err := plain.Evaluate(r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cached.Evaluate(r)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d req %d: cached %+v != plain %+v", round, i, got, want)
			}
		}
	}
	stats := cached.Cache().Stats()
	if stats.Hits != int64(len(reqs)) || stats.Misses != int64(len(reqs)) {
		t.Fatalf("stats = %+v, want %d hits / %d misses", stats, len(reqs), len(reqs))
	}

	// Same attributes under a fresh correlation ID: served from cache, with
	// the new ID stamped in.
	clone := reqs[0].Clone()
	clone.ID = "fresh-correlation-id"
	res, err := cached.Evaluate(clone)
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestID != "fresh-correlation-id" {
		t.Fatalf("cached result kept stale correlation ID %q", res.RequestID)
	}
	wantClone, _ := plain.Evaluate(clone)
	if !reflect.DeepEqual(wantClone, res) {
		t.Fatalf("re-correlated cached result diverged: %+v != %+v", res, wantClone)
	}
}

// TestCacheDigestInvalidation checks that loading a different policy set
// never serves decisions computed under the old one — both via the Load
// purge and via the per-entry policy-digest check.
func TestCacheDigestInvalidation(t *testing.T) {
	permit := &PolicySet{ID: "ps", Version: "v1", Alg: PermitUnlessDeny,
		Items: []PolicyItem{{Policy: &Policy{ID: "p", Alg: PermitUnlessDeny}}}}
	deny := &PolicySet{ID: "ps", Version: "v2", Alg: DenyUnlessPermit,
		Items: []PolicyItem{{Policy: &Policy{ID: "p", Alg: DenyUnlessPermit}}}}

	pdp := NewCachedPDP(permit, 64)
	req := NewRequest("r1").Add(CatSubject, "role", String("doctor"))
	res, err := pdp.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Permit {
		t.Fatalf("v1 decision = %v", res.Decision)
	}

	pdp.Load(deny)
	res, err = pdp.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Deny {
		t.Fatalf("stale cached decision after policy swap: %v", res.Decision)
	}
	if res.PolicyVersion != "v2" || res.PolicyDigest != deny.Digest() {
		t.Fatalf("result carries stale policy identity: %+v", res)
	}
	if pdp.Cache().Stats().Purges != 1 {
		t.Fatalf("purges = %d", pdp.Cache().Stats().Purges)
	}

	// Belt and braces: even an entry that survives a missed purge is
	// rejected by its policy digest.
	cache := NewDecisionCache(64)
	key := req.Digest()
	cache.Put(key, permit.Digest(), Result{Decision: Permit}, cache.Epoch())
	if _, ok := cache.Get(key, deny.Digest()); ok {
		t.Fatal("entry under old policy digest served for new digest")
	}
	if cache.Stats().Invalidations != 1 {
		t.Fatalf("invalidations = %d", cache.Stats().Invalidations)
	}
	if cache.Len() != 0 {
		t.Fatal("invalidated entry not discarded")
	}
}

// TestCacheEvictionBound checks the LRU bound holds under churn.
func TestCacheEvictionBound(t *testing.T) {
	ps, reqs := cacheTestRequests(512)
	pdp := NewCachedPDP(ps, 64)
	for _, r := range reqs {
		if _, err := pdp.Evaluate(r); err != nil {
			t.Fatal(err)
		}
	}
	c := pdp.Cache()
	if c.Len() > 64 {
		t.Fatalf("cache holds %d entries, bound 64", c.Len())
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded under churn")
	}
}

// TestCacheConcurrent evaluates a shared request pool from many goroutines
// with a concurrent policy reload mixed in; run under -race this checks the
// striped locking, and every result must be internally consistent (decision
// matching the policy digest it claims).
func TestCacheConcurrent(t *testing.T) {
	permit := &PolicySet{ID: "ps", Version: "v1", Alg: PermitUnlessDeny,
		Items: []PolicyItem{{Policy: &Policy{ID: "p", Alg: PermitUnlessDeny}}}}
	deny := &PolicySet{ID: "ps", Version: "v2", Alg: DenyUnlessPermit,
		Items: []PolicyItem{{Policy: &Policy{ID: "p", Alg: DenyUnlessPermit}}}}
	permitDigest, denyDigest := permit.Digest(), deny.Digest()

	pdp := NewCachedPDP(permit, 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				req := NewRequest(fmt.Sprintf("g%d-i%d", g, i)).
					Add(CatSubject, "user", String(fmt.Sprintf("u%d", i%16)))
				res, err := pdp.Evaluate(req)
				if err != nil {
					t.Error(err)
					return
				}
				switch res.PolicyDigest {
				case permitDigest:
					if res.Decision != Permit {
						t.Errorf("v1 result with decision %v", res.Decision)
					}
				case denyDigest:
					if res.Decision != Deny {
						t.Errorf("v2 result with decision %v", res.Decision)
					}
				default:
					t.Error("result with unknown policy digest")
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if i%2 == 0 {
				pdp.Load(deny)
			} else {
				pdp.Load(permit)
			}
		}
	}()
	wg.Wait()
}
