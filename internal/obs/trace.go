package obs

import (
	"drams/internal/metrics"
	"drams/internal/trace"
)

// The span recorder lives in the dependency-free internal/trace package so
// components can record spans without importing obs (the depfree analyzer
// enforces that layering). obs aliases the types and constants here: the
// wiring layers and operators keep one import for the whole observability
// surface, and type identity is preserved — an obs.Tracer IS a
// trace.Tracer, so SetTracer call sites accept either spelling.

// Canonical stage names for the end-to-end decision pipeline, in causal
// order. See internal/trace.
const (
	StagePEPDecide      = trace.StagePEPDecide
	StagePDPEval        = trace.StagePDPEval
	StageLIFlushWait    = trace.StageLIFlushWait
	StageChainAnchor    = trace.StageChainAnchor
	StageAnalyserVerify = trace.StageAnalyserVerify
	StageMonitorMatch   = trace.StageMonitorMatch
	StageMonitorAlert   = trace.StageMonitorAlert
)

// Span is one recorded stage of a request's end-to-end timeline.
type Span = trace.Span

// Tracer records per-request stage spans into bounded timelines and
// per-stage duration histograms.
type Tracer = trace.Tracer

// DefaultTraceCapacity bounds how many distinct in-flight/recent trace
// timelines a Tracer retains.
const DefaultTraceCapacity = trace.DefaultCapacity

// NewTracer builds a tracer recording stage histograms into reg (which
// may be nil: timelines only). capacity <= 0 uses DefaultTraceCapacity.
func NewTracer(reg *metrics.Registry, capacity int) *Tracer {
	return trace.New(reg, capacity)
}
