// Package tcp is the real-network implementation of transport.Transport: a
// length-prefixed-frame TCP stack that lets a DRAMS federation run as
// genuinely separate OS processes.
//
// One Transport per process. It listens on Config.ListenAddr, dials the
// static seed peers from Config.Peers, and keeps one persistent connection
// per peer with a dedicated write queue and reconnect-with-backoff. A
// handshake ("hello") exchanges each node's logical endpoint addresses, and
// later Register/Unregister calls are announced incrementally, so logical
// addresses ("node@cloud-1", "pdp@infrastructure") route to whichever
// process hosts them. Sends to addresses hosted locally are delivered
// in-process without touching a socket.
//
// Delivery semantics match netsim (pinned by the transporttest conformance
// suite): one-way loss is silent, Call correlates request/response and
// honours ctx cancellation mid-flight, crashed endpoints drop traffic both
// ways, and remote handler errors keep their ErrNoHandler/ErrDropped
// sentinel identity across the wire.
package tcp

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"drams/internal/metrics"
	"drams/internal/transport"
)

// Config controls one process's transport.
type Config struct {
	// ListenAddr is the host:port to listen on ("127.0.0.1:0" picks an
	// ephemeral port).
	ListenAddr string
	// AdvertiseAddr is the address peers dial to reach this node; defaults
	// to the resolved listen address. It doubles as the node's identity, so
	// every process in a federation must refer to a node by the exact same
	// string.
	AdvertiseAddr string
	// Peers are seed advertise addresses of other transports. Connections
	// to them are established eagerly and re-established with backoff.
	Peers []string
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// MaxBackoff caps the reconnect backoff (default 2s; attempts start at
	// 50ms and double).
	MaxBackoff time.Duration
	// WriteQueue bounds each peer's outbound frame queue (default 4096);
	// frames beyond it are dropped, like any congested network drops.
	WriteQueue int
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.WriteQueue <= 0 {
		c.WriteQueue = 4096
	}
	return c
}

// helloBody is the JSON payload of a handshake frame.
type helloBody struct {
	// Node is the sender's advertise address.
	Node string `json:"node"`
	// Addrs are the logical endpoint addresses registered on the sender.
	Addrs []string `json:"addrs"`
}

// Transport is one process's TCP transport. It implements
// transport.Transport.
type Transport struct {
	cfg       Config
	ln        net.Listener
	advertise string

	mu     sync.Mutex
	local  map[string]*endpoint  // logical addr -> endpoint
	remote map[string]string     // logical addr -> hosting node (advertise addr)
	peers  map[string]*peer      // node advertise addr -> connection manager
	conns  map[net.Conn]struct{} // every live conn, so Close can unblock readers
	closed bool

	pendMu  sync.Mutex
	pending map[uint64]chan frame
	corr    atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup

	sent       metrics.Counter
	delivered  metrics.Counter
	dropped    metrics.Counter
	bytes      metrics.Counter
	reconnects metrics.Counter
}

var _ transport.Transport = (*Transport)(nil)

// New starts a transport: it listens immediately and begins dialing the
// configured seed peers in the background.
func New(cfg Config) (*Transport, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", cfg.ListenAddr, err)
	}
	adv := cfg.AdvertiseAddr
	if adv == "" {
		adv = ln.Addr().String()
		// The advertise address is the identity peers dial back; a
		// wildcard host would be silently undialable (all learned
		// addresses attributed to e.g. "0.0.0.0:port"), so refuse it
		// rather than misroute later.
		if host, _, err := net.SplitHostPort(adv); err == nil {
			if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
				ln.Close()
				return nil, fmt.Errorf("tcp: listening on wildcard %s needs an explicit AdvertiseAddr", cfg.ListenAddr)
			}
		}
	}
	t := &Transport{
		cfg:       cfg,
		ln:        ln,
		advertise: adv,
		local:     make(map[string]*endpoint),
		remote:    make(map[string]string),
		peers:     make(map[string]*peer),
		conns:     make(map[net.Conn]struct{}),
		pending:   make(map[uint64]chan frame),
		stop:      make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	for _, seed := range cfg.Peers {
		if seed == adv {
			continue
		}
		t.peerFor(seed)
	}
	return t, nil
}

// Addr returns the resolved listen address (useful with ":0").
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Advertise returns the node identity peers know this transport by.
func (t *Transport) Advertise() string { return t.advertise }

// Stats returns a snapshot of this process's traffic counters.
func (t *Transport) Stats() transport.Stats {
	return transport.Stats{
		Sent:       t.sent.Value(),
		Delivered:  t.delivered.Value(),
		Dropped:    t.dropped.Value(),
		Bytes:      t.bytes.Value(),
		Reconnects: t.reconnects.Value(),
	}
}

// Register creates a local endpoint bound to the logical address and
// announces it to every connected peer.
func (t *Transport) Register(addr string) (transport.Endpoint, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if _, ok := t.local[addr]; ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("tcp: register %q: %w", addr, transport.ErrAddressInUse)
	}
	ep := &endpoint{
		t:     t,
		addr:  addr,
		msgH:  make(map[string]func(from string, payload []byte)),
		callH: make(map[string]func(from string, payload []byte) ([]byte, error)),
	}
	t.local[addr] = ep
	peers := t.peerList()
	t.mu.Unlock()
	for _, p := range peers {
		p.enqueueCtl(frame{typ: fAddrAdd, from: t.advertise, kind: addr})
	}
	return ep, nil
}

// Unregister removes a local address and announces the removal.
func (t *Transport) Unregister(addr string) {
	t.mu.Lock()
	_, ok := t.local[addr]
	delete(t.local, addr)
	peers := t.peerList()
	t.mu.Unlock()
	if !ok {
		return
	}
	for _, p := range peers {
		p.enqueueCtl(frame{typ: fAddrDel, from: t.advertise, kind: addr})
	}
}

// Addresses lists every known logical address: local endpoints plus those
// learned from connected peers.
func (t *Transport) Addresses() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.local)+len(t.remote))
	for a := range t.local {
		out = append(out, a)
	}
	for a := range t.remote {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Close shuts the listener, all peer connections and in-flight dispatches
// down.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	peers := t.peerList()
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	close(t.stop)
	err := t.ln.Close()
	for _, p := range peers {
		p.close()
	}
	for _, c := range conns {
		c.Close() // unblock any reader parked in readFrame
	}
	t.wg.Wait()
	return err
}

// trackConn records a live connection so Close can unblock its reader;
// returns false (and leaves the conn untracked) when the transport is
// already closed.
func (t *Transport) trackConn(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

func (t *Transport) untrackConn(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
}

// peerList snapshots the peer set; callers hold t.mu.
func (t *Transport) peerList() []*peer {
	out := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		out = append(out, p)
	}
	return out
}

// peerFor returns (creating and starting if needed) the connection manager
// for a node.
func (t *Transport) peerFor(node string) *peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if p, ok := t.peers[node]; ok {
		return p
	}
	p := &peer{
		t:      t,
		node:   node,
		out:    make(chan frame, t.cfg.WriteQueue),
		ctl:    make(chan frame, 64),
		attach: make(chan net.Conn, 1),
		dead:   make(chan net.Conn, 8),
		stop:   make(chan struct{}),
	}
	// Endpoints registered between the connection's handshake snapshot and
	// this peer entry's creation would otherwise never be announced: have
	// the writer send a full hello once it owns a connection.
	p.needsResync.Store(true)
	t.peers[node] = p
	t.wg.Add(1)
	go p.run()
	return p
}

// helloFrame builds this node's handshake frame.
func (t *Transport) helloFrame() frame {
	t.mu.Lock()
	addrs := make([]string, 0, len(t.local))
	for a := range t.local {
		addrs = append(addrs, a)
	}
	t.mu.Unlock()
	body, _ := json.Marshal(helloBody{Node: t.advertise, Addrs: addrs})
	return frame{typ: fHello, from: t.advertise, payload: body}
}

// learnAddrs records which node hosts the given logical addresses.
func (t *Transport) learnAddrs(node string, addrs []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, a := range addrs {
		if _, local := t.local[a]; local {
			continue // never shadow a local endpoint
		}
		t.remote[a] = node
	}
}

// syncAddrs makes a full hello authoritative for its sender: addresses the
// node no longer lists are forgotten, so a resync hello repairs both lost
// addr-add and lost addr-del announcements.
func (t *Transport) syncAddrs(node string, addrs []string) {
	listed := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		listed[a] = true
	}
	t.mu.Lock()
	for a, n := range t.remote {
		if n == node && !listed[a] {
			delete(t.remote, a)
		}
	}
	t.mu.Unlock()
	t.learnAddrs(node, addrs)
}

// forgetAddr drops a remote address if it is still attributed to node.
func (t *Transport) forgetAddr(node, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.remote[addr] == node {
		delete(t.remote, addr)
	}
}

// acceptLoop serves inbound connections.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.stop:
				return
			case <-time.After(10 * time.Millisecond):
				// Brief pause so a persistent accept error (e.g. fd
				// exhaustion) cannot spin this loop at full speed.
			}
			continue
		}
		t.mu.Lock()
		closed := t.closed
		if !closed {
			t.wg.Add(1)
		}
		t.mu.Unlock()
		if closed || !t.trackConn(conn) {
			conn.Close()
			if closed {
				return
			}
			t.wg.Done()
			continue
		}
		go t.serveConn(conn)
	}
}

// serveConn handles one inbound connection: handshake, then a read loop.
// The inbound conn is offered to the peer's writer so nodes that never
// dialed us can still be written to.
func (t *Transport) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrackConn(conn)
	r := bufio.NewReaderSize(conn, 64<<10)
	f, err := readFrame(r)
	if err != nil || f.typ != fHello {
		conn.Close()
		return
	}
	var hb helloBody
	if err := json.Unmarshal(f.payload, &hb); err != nil || hb.Node == "" {
		conn.Close()
		return
	}
	t.syncAddrs(hb.Node, hb.Addrs)
	// Answer with our own hello directly on this conn — the peer's writer
	// does not own it yet, so this write cannot interleave.
	hf := t.helloFrame()
	out, err := appendFrame(nil, &hf)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	_, err = conn.Write(out)
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return
	}
	p := t.peerFor(hb.Node)
	if p == nil {
		conn.Close()
		return
	}
	p.offer(conn)
	t.readLoop(r, conn, hb.Node)
}

// connDead tells the peer's writer its connection died, so it stops
// writing into a stale socket and redials (or adopts a fresh inbound conn).
func (t *Transport) connDead(node string, conn net.Conn) {
	t.mu.Lock()
	p := t.peers[node]
	t.mu.Unlock()
	if p != nil {
		select {
		case p.dead <- conn:
		default:
		}
	}
}

// readLoop dispatches frames arriving on conn until it fails.
func (t *Transport) readLoop(r *bufio.Reader, conn net.Conn, node string) {
	defer t.connDead(node, conn)
	for {
		f, err := readFrame(r)
		if err != nil {
			conn.Close()
			return
		}
		switch f.typ {
		case fHello:
			var hb helloBody
			if json.Unmarshal(f.payload, &hb) == nil && hb.Node != "" {
				t.syncAddrs(hb.Node, hb.Addrs)
			}
		case fAddrAdd:
			t.learnAddrs(f.from, []string{f.kind})
		case fAddrDel:
			t.forgetAddr(f.from, f.kind)
		case fMsg, fCall:
			t.mu.Lock()
			closed := t.closed
			if !closed {
				t.wg.Add(1)
			}
			t.mu.Unlock()
			if closed {
				conn.Close()
				return
			}
			// Each message gets its own goroutine, like netsim's async
			// delivery: handlers may block or call back without wedging
			// the connection.
			go func(f frame) {
				defer t.wg.Done()
				t.dispatch(f, node)
			}(f)
		case fReply:
			t.deliverReply(f)
		}
	}
}

func (t *Transport) localEndpoint(addr string) *endpoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.local[addr]
}

// dispatch delivers an ingress message or call to the target local
// endpoint. viaNode is the peer the frame arrived from ("" for loopback
// delivery within this process).
func (t *Transport) dispatch(f frame, viaNode string) {
	ep := t.localEndpoint(f.to)
	if ep == nil || ep.isCrashed() {
		t.dropped.Inc()
		return
	}
	t.delivered.Inc()
	switch f.typ {
	case fMsg:
		ep.dispatchMsg(f)
	case fCall:
		reply := frame{typ: fReply, corr: f.corr, from: f.to, to: f.from}
		out, err := ep.dispatchCall(f)
		if err != nil {
			reply.errStr = err.Error()
		} else {
			reply.payload = out
		}
		t.sendReply(reply, viaNode)
	}
}

// deliverReply completes a pending local Call with an arriving reply.
// Replies to crashed callers are dropped, as on netsim.
func (t *Transport) deliverReply(reply frame) {
	t.pendMu.Lock()
	ch, ok := t.pending[reply.corr]
	t.pendMu.Unlock()
	if !ok {
		return
	}
	if ep := t.localEndpoint(reply.to); ep != nil && ep.isCrashed() {
		t.dropped.Inc()
		return
	}
	select {
	case ch <- reply:
	default:
	}
}

// sendReply routes a reply back to the caller: locally when the call
// originated in this process, else over the connection's peer.
func (t *Transport) sendReply(reply frame, viaNode string) {
	t.sent.Inc()
	t.bytes.Add(int64(len(reply.payload)))
	if viaNode == "" {
		t.deliverReply(reply)
		return
	}
	if p := t.peerFor(viaNode); p != nil {
		p.enqueue(reply)
	}
}

// send routes an egress frame by logical destination.
func (t *Transport) send(f frame) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return transport.ErrClosed
	}
	_, isLocal := t.local[f.to]
	node, isRemote := t.remote[f.to]
	if !isLocal && !isRemote {
		t.mu.Unlock()
		return fmt.Errorf("tcp: send to %q: %w", f.to, transport.ErrUnknownAddress)
	}
	if isLocal {
		t.wg.Add(1)
	}
	t.mu.Unlock()

	t.sent.Inc()
	t.bytes.Add(int64(len(f.payload)))
	if isLocal {
		// Loopback delivery: stay off the socket but keep netsim's
		// one-goroutine-per-delivery asynchrony.
		go func() {
			defer t.wg.Done()
			t.dispatch(f, "")
		}()
		return nil
	}
	if p := t.peerFor(node); p != nil {
		p.enqueue(f)
	}
	return nil
}

// endpoint is one local addressable participant.
type endpoint struct {
	t       *Transport
	addr    string
	crashed atomic.Bool

	mu       sync.RWMutex
	msgH     map[string]func(from string, payload []byte)
	callH    map[string]func(from string, payload []byte) ([]byte, error)
	defaultH func(msg transport.Message)
}

var _ transport.Endpoint = (*endpoint)(nil)

// Addr returns the endpoint's logical address.
func (e *endpoint) Addr() string { return e.addr }

// OnMessage registers a handler for one-way messages of the given kind.
func (e *endpoint) OnMessage(kind string, fn func(from string, payload []byte)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.msgH[kind] = fn
}

// OnCall registers a request handler for the given kind.
func (e *endpoint) OnCall(kind string, fn func(from string, payload []byte) ([]byte, error)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.callH[kind] = fn
}

// OnDefault registers a catch-all handler for unmatched one-way messages.
func (e *endpoint) OnDefault(fn func(msg transport.Message)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.defaultH = fn
}

// Crash makes the endpoint drop all traffic until Restart.
func (e *endpoint) Crash() { e.crashed.Store(true) }

// Restart brings a crashed endpoint back.
func (e *endpoint) Restart() { e.crashed.Store(false) }

func (e *endpoint) isCrashed() bool { return e.crashed.Load() }

// Send transmits a one-way message. Loss is silent by design.
func (e *endpoint) Send(to, kind string, payload []byte) error {
	if e.isCrashed() {
		return transport.ErrCrashed
	}
	return e.t.send(frame{typ: fMsg, from: e.addr, to: to, kind: kind, payload: payload})
}

// Broadcast sends to every known address except the sender and exclusions.
func (e *endpoint) Broadcast(kind string, payload []byte, except ...string) {
	skip := make(map[string]bool, len(except)+1)
	skip[e.addr] = true
	for _, a := range except {
		skip[a] = true
	}
	for _, a := range e.t.Addresses() {
		if skip[a] {
			continue
		}
		_ = e.Send(a, kind, payload)
	}
}

// Call sends a request and waits for the reply or ctx cancellation.
func (e *endpoint) Call(ctx context.Context, to, kind string, payload []byte) ([]byte, error) {
	if e.isCrashed() {
		return nil, transport.ErrCrashed
	}
	corr := e.t.corr.Add(1)
	ch := make(chan frame, 1)
	e.t.pendMu.Lock()
	e.t.pending[corr] = ch
	e.t.pendMu.Unlock()
	defer func() {
		e.t.pendMu.Lock()
		delete(e.t.pending, corr)
		e.t.pendMu.Unlock()
	}()

	if err := e.t.send(frame{typ: fCall, corr: corr, from: e.addr, to: to, kind: kind, payload: payload}); err != nil {
		return nil, err
	}
	select {
	case reply := <-ch:
		if reply.errStr != "" {
			return nil, transport.RemoteError(reply.errStr)
		}
		return reply.Payload(), nil
	case <-ctx.Done():
		return nil, fmt.Errorf("tcp: call %s/%s: %w", to, kind, ctx.Err())
	case <-e.t.stop:
		return nil, transport.ErrClosed
	}
}

// Payload returns the reply payload (helper so Call reads naturally).
func (f frame) Payload() []byte { return f.payload }

// dispatchMsg runs the kind handler (or the catch-all) for a one-way
// message.
func (e *endpoint) dispatchMsg(f frame) {
	e.mu.RLock()
	fn, ok := e.msgH[f.kind]
	def := e.defaultH
	e.mu.RUnlock()
	if ok {
		fn(f.from, f.payload)
		return
	}
	if def != nil {
		def(transport.Message{From: f.from, To: f.to, Kind: f.kind, Payload: f.payload})
	}
}

// dispatchCall runs the call handler, mapping a missing handler onto the
// shared sentinel.
func (e *endpoint) dispatchCall(f frame) ([]byte, error) {
	e.mu.RLock()
	fn, ok := e.callH[f.kind]
	e.mu.RUnlock()
	if !ok {
		return nil, transport.ErrNoHandler
	}
	return fn(f.from, f.payload)
}

// peer manages the persistent connection to one other node: a single write
// queue drained by one goroutine that dials (with capped exponential
// backoff) whenever it has no usable connection, and adopts inbound
// connections offered by the accept path.
type peer struct {
	t      *Transport
	node   string
	out    chan frame
	ctl    chan frame // routing control frames (addr announcements)
	attach chan net.Conn
	dead   chan net.Conn // readers report connections that failed
	stop   chan struct{}
	once   sync.Once

	// needsResync asks the writer to send a fresh full hello: set when a
	// control frame could not be queued (or at peer creation), so address
	// knowledge always heals even after control-plane loss.
	needsResync atomic.Bool
}

// enqueue queues a frame for the peer, dropping (with accounting) when the
// queue is full — backpressure behaves like a congested link.
func (p *peer) enqueue(f frame) {
	select {
	case p.out <- f:
	default:
		p.t.dropped.Inc()
	}
}

// enqueueCtl queues a routing control frame. Control-plane loss would be
// unrecoverable on a healthy connection (a missed addr-add leaves the
// address unroutable forever), so a full queue degrades to requesting a
// complete hello resync instead of dropping the information.
func (p *peer) enqueueCtl(f frame) {
	select {
	case p.ctl <- f:
	default:
		p.needsResync.Store(true)
	}
}

// offer hands an inbound connection to the writer; if the writer already
// has one, the offer is discarded (the conn stays alive for reading).
func (p *peer) offer(conn net.Conn) {
	select {
	case p.attach <- conn:
	default:
	}
}

func (p *peer) close() {
	p.once.Do(func() { close(p.stop) })
}

// run is the peer's writer/redialer loop. One frame survives a write
// failure: it is held and retried on the next connection, so e.g. a call
// reply racing a peer restart still arrives once the link is back.
func (p *peer) run() {
	defer p.t.wg.Done()
	var conn net.Conn
	var encBuf []byte
	var held *frame  // frame whose write failed, retried after reconnect
	var hadConn bool // a link existed before, so the next attach is a reconnect
	backoff := 50 * time.Millisecond
	gotConn := func() {
		if hadConn {
			p.t.reconnects.Inc()
		}
		hadConn = true
	}
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	writeFrame := func(f *frame) bool {
		out, err := appendFrame(encBuf[:0], f)
		if err != nil {
			p.t.dropped.Inc()
			held = nil
			return true // unencodable: drop it, keep the conn
		}
		encBuf = out
		if _, err := conn.Write(out); err != nil {
			held = f
			conn.Close()
			conn = nil
			return false
		}
		held = nil
		return true
	}
	for {
		if conn == nil {
			select {
			case <-p.stop:
				return
			case c := <-p.attach:
				conn = c
				backoff = 50 * time.Millisecond
				gotConn()
				continue
			default:
			}
			c, err := net.DialTimeout("tcp", p.node, p.t.cfg.DialTimeout)
			if err != nil {
				select {
				case <-p.stop:
					return
				case c := <-p.attach:
					conn = c
					backoff = 50 * time.Millisecond
					gotConn()
				case <-time.After(backoff):
					backoff *= 2
					if backoff > p.t.cfg.MaxBackoff {
						backoff = p.t.cfg.MaxBackoff
					}
				}
				continue
			}
			// A dialed connection starts with our hello; the remote's
			// accept path answers with its own and learns our addresses.
			hf := p.t.helloFrame()
			out, encErr := appendFrame(encBuf[:0], &hf)
			if encErr != nil {
				c.Close()
				continue
			}
			encBuf = out
			if _, err := c.Write(out); err != nil {
				c.Close()
				continue
			}
			if !p.t.trackConn(c) {
				c.Close()
				return
			}
			conn = c
			backoff = 50 * time.Millisecond
			gotConn()
			p.t.mu.Lock()
			closed := p.t.closed
			if !closed {
				p.t.wg.Add(1)
			}
			p.t.mu.Unlock()
			if closed {
				return
			}
			r := bufio.NewReaderSize(conn, 64<<10)
			go func(conn net.Conn) {
				defer p.t.wg.Done()
				defer p.t.untrackConn(conn)
				p.t.readLoop(r, conn, p.node)
			}(conn)
		}
		if held != nil {
			f := held
			if !writeFrame(f) {
				continue
			}
		}
		if p.needsResync.Swap(false) {
			hf := p.t.helloFrame()
			if !writeFrame(&hf) {
				p.needsResync.Store(true)
				continue
			}
		}
		// Control frames go first: address knowledge must not queue behind
		// bulk data.
		select {
		case f := <-p.ctl:
			writeFrame(&f)
			continue
		default:
		}
		select {
		case <-p.stop:
			return
		case c := <-p.dead:
			if c == conn {
				// Our reader saw this conn fail; stop writing into it.
				conn.Close()
				conn = nil
			}
		case c := <-p.attach:
			// Writer already has a conn; keep it — stale ones are reaped
			// via p.dead.
			_ = c
		case f := <-p.ctl:
			writeFrame(&f)
		case f := <-p.out:
			writeFrame(&f)
		}
	}
}
