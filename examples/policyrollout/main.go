// Policy rollout: runtime policy administration over the chain.
//
// The PAP publishes a restricting policy update as an on-chain transaction
// (full serialized set + digest + activation height); every federation
// member's watcher verifies it against the anchored root and hot-reloads
// its PDP at the activation height — no restarts, decision caches purged in
// the same step, and the rollout observable as PolicyActivated events on an
// Alerts subscription. The example then rolls the fleet back to v1.
//
//	go run ./examples/policyrollout
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"drams"
	"drams/internal/xacml"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "policyrollout:", err)
		os.Exit(1)
	}
}

func run() error {
	// v1: the standard role-gated regime (doctors and nurses may read).
	dep, err := drams.Open(xacml.StandardPolicy("v1"), drams.WithSeed(11))
	if err != nil {
		return err
	}
	defer dep.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Operators watch rollouts as stream events (synthetic, opt-in by
	// type — like AlertMatched).
	rollouts, stopRollouts, err := dep.Alerts(ctx, drams.AlertFilter{
		Types: []drams.AlertType{drams.AlertPolicyActivated, drams.AlertPolicyRejected},
	})
	if err != nil {
		return err
	}
	defer stopRollouts()

	client, err := dep.Client("tenant-1")
	if err != nil {
		return err
	}
	doctorRead := func() *xacml.Request {
		return client.NewRequest().
			Add(xacml.CatSubject, "role", xacml.String("doctor")).
			Add(xacml.CatAction, "op", xacml.String("read")).
			Add(xacml.CatResource, "type", xacml.String("record"))
	}

	enf, err := client.Decide(ctx, doctorRead())
	if err != nil {
		return err
	}
	fmt.Printf("under %s: doctor reads a record → %v\n", enf.PolicyVersion, enf.Decision)

	// A security incident: revoke all read access, fleet-wide, two blocks
	// from now. Any member may administer — here tenant-1's own admin
	// handle signs with the federation PAP identity.
	admin, err := dep.Admin("tenant-1")
	if err != nil {
		return err
	}
	fmt.Println("\npublishing v2 (reads revoked) with a 2-block activation gate...")
	if err := admin.UpdatePolicy(ctx, xacml.RestrictedPolicy("v2"), drams.UpdateOptions{ActivateDelta: 2}); err != nil {
		return err
	}
	ev := <-rollouts
	fmt.Printf("rollout event: %s %s\n", ev.Type, ev.Detail)

	enf, err = client.Decide(ctx, doctorRead())
	if err != nil {
		return err
	}
	fmt.Printf("under %s: doctor reads a record → %v\n", enf.PolicyVersion, enf.Decision)

	st := dep.PolicyStats()
	fmt.Printf("\npolicy stats: version=%s activations=%d cache-purges=%d\n",
		st.Version, st.Activations, st.CachePurges)

	// Incident over: roll the fleet back to v1 (the bytes are already
	// anchored on-chain; only an activation travels).
	fmt.Println("\nrolling back to v1...")
	if err := admin.Rollback(ctx, "v1", drams.UpdateOptions{}); err != nil {
		return err
	}
	ev = <-rollouts
	fmt.Printf("rollout event: %s %s\n", ev.Type, ev.Detail)

	enf, err = client.Decide(ctx, doctorRead())
	if err != nil {
		return err
	}
	fmt.Printf("under %s: doctor reads a record → %v\n", enf.PolicyVersion, enf.Decision)

	fmt.Println("\non-chain activation history:")
	for i, act := range admin.History() {
		fmt.Printf("  %d. %s at height %d (digest %s)\n", i+1, act.Version, act.Height, act.Digest.Short())
	}
	return nil
}
