#!/usr/bin/env bash
# smoke_federation.sh — multi-process federation smoke test.
#
# Starts three drams-node daemons on loopback (infrastructure + two edge
# tenants; tenant-2 runs with a durable -data-dir), waits until every
# process reports chain height >= TARGET_HEIGHT and each edge has served at
# least one end-to-end access decision, then exercises the two lifecycle
# paths this deployment must survive:
#
#   1. Live policy rollout: tenant-1's process pushes a restricting v2
#      policy on-chain mid-run; all processes that are up activate it at
#      the SAME chain height and tenant-1's decision stream flips from
#      Permit-under-v1 to Deny-under-v2 without restarting.
#   2. Member crash + durable restart: tenant-2 is killed BEFORE the v2
#      rollout lands and restarted from its -data-dir after it. The
#      restarted process must resume its persisted chain (height > 0, no
#      fresh genesis), catch up past its crash height via batched
#      bc.getrange sync (strictly fewer transport calls than blocks
#      fetched), activate v2 at the same height as the rest of the fleet,
#      and serve Deny-under-v2 decisions.
#   3. Operations surface: every daemon serves /metrics and /healthz on
#      its -metrics-addr; readiness gates the restarted tenant-2 (503
#      while it catches up, 200 once synced); the durable member's
#      drams_node_blocks_persisted_total keeps advancing; and the
#      restarted tenant-2 runs a mute-logs drill so the infrastructure
#      monitor's drams_monitor_alerts_total must advance with M3
#      message-suppressed alerts.
#
# Finally state-digest convergence is checked across all surviving
# processes. Exits non-zero on any failure or on the hard timeout.
#
# Usage: scripts/smoke_federation.sh [bin-dir]
set -u

TIMEOUT="${SMOKE_TIMEOUT:-120}"
TARGET_HEIGHT="${SMOKE_HEIGHT:-5}"
PUSH_HEIGHT="${SMOKE_PUSH_HEIGHT:-8}"
RESTART_HEIGHT="${SMOKE_RESTART_HEIGHT:-15}"
PORT_BASE="${SMOKE_PORT_BASE:-19701}"
WORKDIR="$(mktemp -d)"
BIN="${1:-$WORKDIR}/drams-node"

cleanup() {
    [ -n "${PIDS:-}" ] && kill $PIDS 2>/dev/null
    wait 2>/dev/null
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# Static gate first: a broken invariant fails fast, before any daemons
# start (skippable for tight inner loops with SKIP_CHECK=1).
if [ -z "${SKIP_CHECK:-}" ]; then
    . "$(dirname "$0")/check.sh"
    drams_check || exit 1
fi

if [ ! -x "$BIN" ]; then
    echo "building drams-node..."
    go build -o "$BIN" ./cmd/drams-node || exit 1
fi

# The v2 update: reads revoked (doctor-read flips Permit -> Deny).
"$BIN" -print-policy restricted:v2 > "$WORKDIR/v2.json" || exit 1

P1=$((PORT_BASE)) P2=$((PORT_BASE + 1)) P3=$((PORT_BASE + 2))
A1="127.0.0.1:$P1" A2="127.0.0.1:$P2" A3="127.0.0.1:$P3"
M1="127.0.0.1:$((PORT_BASE + 3))" M2="127.0.0.1:$((PORT_BASE + 4))" M3="127.0.0.1:$((PORT_BASE + 5))"
# -timeout-blocks is tightened fleet-wide so the mute-logs drill's M3
# alerts land within the run (consensus-critical: identical everywhere).
COMMON="-federation tenant-1,tenant-2 -seed 7 -difficulty 8 -timeout-blocks 20 -run-for ${TIMEOUT}s"
T2_ARGS="-listen $A3 -join $A1,$A2 -tenant tenant-2 -request-every 300ms -data-dir $WORKDIR/t2-data -metrics-addr $M3"

"$BIN" -listen "$A1" -join "$A2,$A3" -tenant infrastructure -metrics-addr "$M1" $COMMON \
    >"$WORKDIR/infra.log" 2>&1 &
PIDS="$!"
"$BIN" -listen "$A2" -join "$A1,$A3" -tenant tenant-1 -request-every 300ms -metrics-addr "$M2" \
    -policy-file "$WORKDIR/v2.json" -policy-at-height "$PUSH_HEIGHT" -policy-delta 4 \
    $COMMON >"$WORKDIR/t1.log" 2>&1 &
PIDS="$PIDS $!"
"$BIN" $T2_ARGS $COMMON >"$WORKDIR/t2.log" 2>&1 &
PID_T2="$!"
PIDS="$PIDS $PID_T2"

# metric <addr> <series-grep-pattern>: prints the series' integer value.
metric() {
    curl -fsS --max-time 5 "http://$1/metrics" 2>/dev/null | grep "^$2" | head -1 | grep -o '[0-9]*$'
}

echo "3 daemons up (logs in $WORKDIR), waiting for height >= $TARGET_HEIGHT and v1 decisions..."

fail() {
    echo "SMOKE FAILED: $1" >&2
    for log in infra t1 t2 t2b; do
        [ -f "$WORKDIR/$log.log" ] || continue
        echo "--- $log.log (tail) ---" >&2
        tail -25 "$WORKDIR/$log.log" >&2
    done
    exit 1
}

deadline=$(( $(date +%s) + TIMEOUT ))

# Phase A: every process mines/validates to the target height and both
# edges serve a v1 Permit.
ok=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    heights_ok=true
    for log in infra t1 t2; do
        h=$(grep -o 'status height=[0-9]*' "$WORKDIR/$log.log" 2>/dev/null | tail -1 | grep -o '[0-9]*$')
        [ -n "$h" ] && [ "$h" -ge "$TARGET_HEIGHT" ] || heights_ok=false
    done
    v1_ok=true
    for log in t1 t2; do
        grep -q 'decision req=.*decision=Permit policy=v1' "$WORKDIR/$log.log" 2>/dev/null || v1_ok=false
    done
    if $heights_ok && $v1_ok; then
        ok=1
        break
    fi
    sleep 1
done
[ -n "$ok" ] || fail "phase A (heights + v1 decisions) not met within ${TIMEOUT}s"

# Ops surface: every daemon answers /healthz and serves its node counters
# on /metrics.
for m in "$M1" "$M2" "$M3"; do
    hz=$(curl -fsS --max-time 5 -o /dev/null -w '%{http_code}' "http://$m/healthz" 2>/dev/null)
    [ "$hz" = "200" ] || fail "healthz on $m answered '${hz:-nothing}', want 200"
    v=$(metric "$m" 'drams_node_blocks_persisted_total')
    [ -n "$v" ] || fail "metrics on $m missing drams_node_blocks_persisted_total"
done
alerts_before=$(metric "$M1" 'drams_monitor_alerts_total{type="message-suppressed"}')
[ -n "$alerts_before" ] || fail "infra metrics missing drams_monitor_alerts_total series"
echo "ops surface up on $M1 $M2 $M3 (message-suppressed alerts so far: $alerts_before)"

# Crash tenant-2 before the rollout: it must learn v2 from its restart.
kill "$PID_T2" 2>/dev/null
wait "$PID_T2" 2>/dev/null
PIDS=$(echo "$PIDS" | sed "s/ $PID_T2\$//")
crash_height=$(grep -o 'status height=[0-9]*' "$WORKDIR/t2.log" | tail -1 | grep -o '[0-9]*$')
echo "tenant-2 killed at height $crash_height; waiting for the v2 rollout to land without it..."

# Phase B: the surviving fleet activates v2 (t1 flips Permit -> Deny) and
# advances well past the crash height, so the restart has real catching
# up to do.
ok=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    flip_ok=true
    for log in infra t1; do
        grep -q 'policy v2 activated at height' "$WORKDIR/$log.log" 2>/dev/null || flip_ok=false
    done
    grep -q 'decision req=.*decision=Deny policy=v2' "$WORKDIR/t1.log" 2>/dev/null || flip_ok=false
    h=$(grep -o 'status height=[0-9]*' "$WORKDIR/infra.log" 2>/dev/null | tail -1 | grep -o '[0-9]*$')
    if $flip_ok && [ -n "$h" ] && [ "$h" -ge "$RESTART_HEIGHT" ]; then
        ok=1
        break
    fi
    sleep 1
done
[ -n "$ok" ] || fail "phase B (v2 rollout without tenant-2) not met within ${TIMEOUT}s"

# Phase C: restart tenant-2 from its data dir. The restart also runs the
# mute-logs drill (engaged after it has rejoined): its pep.response
# records stop reaching the chain, so the monitor MUST raise M3
# message-suppressed alerts once the timeout window expires.
"$BIN" $T2_ARGS -byzantine mute-logs -byzantine-after 3s -catchup-delay 1500ms $COMMON >"$WORKDIR/t2b.log" 2>&1 &
PID_T2="$!"
PIDS="$PIDS $PID_T2"
echo "tenant-2 restarted from $WORKDIR/t2-data, waiting for durable rejoin..."

# Readiness gates the rejoin: the non-producing restart must answer 503
# (catch-up in progress) before its first successful sync round, then
# flip to 200. Poll tightly from the moment the process launches.
saw_503="" saw_200=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    rz=$(curl -fsS --max-time 2 -o /dev/null -w '%{http_code}' "http://$M3/readyz" 2>/dev/null)
    case "$rz" in
        503) [ -z "$saw_200" ] && saw_503=1 ;;
        200) saw_200=1; break ;;
    esac
    sleep 0.05
done
[ -n "$saw_503" ] || fail "restarted tenant-2 never reported 503 on /readyz during catch-up"
[ -n "$saw_200" ] || fail "restarted tenant-2 /readyz never reached 200 within ${TIMEOUT}s"
echo "readiness gated the rejoin: /readyz 503 during catch-up, then 200"

ok=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    if grep -q 'restored chain height=' "$WORKDIR/t2b.log" 2>/dev/null \
        && grep -q 'caught up to height' "$WORKDIR/t2b.log" 2>/dev/null \
        && grep -q 'policy v2 activated at height' "$WORKDIR/t2b.log" 2>/dev/null \
        && grep -q 'decision req=.*decision=Deny policy=v2' "$WORKDIR/t2b.log" 2>/dev/null; then
        ok=1
        break
    fi
    sleep 1
done
[ -n "$ok" ] || fail "phase C (durable restart + rejoin) not met within ${TIMEOUT}s"

# Durability: the restarted process resumed its persisted chain, not a
# fresh genesis.
restored=$(grep -o 'restored chain height=[0-9]*' "$WORKDIR/t2b.log" | head -1 | grep -o '[0-9]*$')
[ -n "$restored" ] && [ "$restored" -ge 1 ] || fail "restart began from a fresh genesis (restored height ${restored:-none})"

# Batched-sync economics: catching up must cost far fewer transport calls
# than blocks fetched (the bc.getrange win over per-block sync).
caught=$(grep -o '[0-9]* blocks in [0-9]* sync calls' "$WORKDIR/t2b.log" | head -1)
blocks=$(echo "$caught" | grep -o '^[0-9]*')
calls=$(echo "$caught" | grep -o '[0-9]* sync calls$' | grep -o '^[0-9]*')
[ -n "$blocks" ] && [ -n "$calls" ] || fail "catch-up stats line missing"
[ "$blocks" -ge 3 ] || fail "restart had nothing to catch up ($blocks blocks) — restart height gate broken"
[ "$calls" -lt "$blocks" ] || fail "catch-up used $calls calls for $blocks blocks — batched range sync not in effect"

# Height-gated atomicity across the crash: all three members (the restarted
# one included) must report the SAME activation height for v2.
act_heights=$(for log in infra t1 t2b; do
    grep -o 'policy v2 activated at height [0-9]*' "$WORKDIR/$log.log" | head -1 | grep -o '[0-9]*$'
done | sort -u | wc -l)
[ "$act_heights" -eq 1 ] || fail "v2 activation heights differ across processes"

# Each process instance ran exactly once per log file.
for log in infra t1 t2 t2b; do
    starts=$(grep -c '] listening on' "$WORKDIR/$log.log")
    [ "$starts" -eq 1 ] || fail "$log has $starts starts"
done

# Ops-surface progression: the durable member keeps persisting blocks
# (drams_node_blocks_persisted_total advances across a sampling gap) and
# the mute-logs drill forces drams_monitor_alerts_total to advance with
# M3 message-suppressed alerts on the infrastructure monitor.
persisted_a=$(metric "$M3" 'drams_node_blocks_persisted_total')
[ -n "$persisted_a" ] || fail "restarted tenant-2 metrics missing drams_node_blocks_persisted_total"
ok=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    persisted_b=$(metric "$M3" 'drams_node_blocks_persisted_total')
    if [ -n "$persisted_b" ] && [ "$persisted_b" -gt "$persisted_a" ]; then
        ok=1
        break
    fi
    sleep 1
done
[ -n "$ok" ] || fail "drams_node_blocks_persisted_total did not advance ($persisted_a -> ${persisted_b:-none})"

ok=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    alerts_now=$(metric "$M1" 'drams_monitor_alerts_total{type="message-suppressed"}')
    if [ -n "$alerts_now" ] && [ "$alerts_now" -gt "${alerts_before:-0}" ]; then
        ok=1
        break
    fi
    sleep 1
done
[ -n "$ok" ] || fail "drams_monitor_alerts_total{type=message-suppressed} did not advance (drill not detected)"
echo "ops progression: persisted $persisted_a -> $persisted_b, message-suppressed alerts ${alerts_before:-0} -> $alerts_now"

# Convergence: the surviving processes (infra, t1 and the restarted t2)
# must report a COMMON state digest in their recent status lines. Blocks
# are produced continuously, so the *latest* line of each log races the
# sampling instant — sharing a digest within the recent window proves the
# three replicas applied identical state at the same height.
check_digests() {
    for log in infra t1 t2b; do
        grep -o 'digest=[0-9a-f]*' "$WORKDIR/$log.log" | tail -20 | sort -u
    done | sort | uniq -c | awk '$1 == 3 {n++} END {print n+0}'
}
shared=$(check_digests)
if [ "$shared" -eq 0 ]; then
    # Give the freshly restarted member a few more status ticks.
    sleep 3
    shared=$(check_digests)
fi

kill $PIDS 2>/dev/null
wait 2>/dev/null
PIDS=""

if [ "$shared" -eq 0 ]; then
    echo "SMOKE FAILED: state digests did not converge after restart" >&2
    exit 1
fi

echo "SMOKE OK: 3-process federation served v1, hot-reloaded to v2 fleet-wide, tenant-2 survived kill+restart from its data dir (resumed height $restored, caught up $blocks blocks in $calls calls, $shared shared digests), readiness gated the rejoin 503->200, and the ops surface tracked persistence and M3 alerts"
exit 0
