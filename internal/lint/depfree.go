package lint

// DepFree enforces the PR 9 layering contract in both directions. The
// dep-free stratum (metrics, crypto, merkle, trace, obs) must stay
// importable from anywhere without dragging in components, so its members
// import only the stdlib and each other. And components must never import
// internal/obs back: observability wiring happens in the root layer and
// cmd/ by registering closures over Stats() accessors, so no component
// shares an import (or a lock) with the scrape path.
type DepFree struct {
	// Stratum lists the module-relative dep-free packages. Each may import
	// only the stdlib and other stratum members from non-test files.
	Stratum []string
	// Restricted is the stratum package components must not import back.
	Restricted string
	// RestrictedAllowed are package patterns that may import Restricted
	// from non-test files (the wiring layers).
	RestrictedAllowed []string
}

// NewDepFree returns the analyzer with the repo's dep-free stratum.
func NewDepFree() *DepFree {
	return &DepFree{
		Stratum: []string{
			"internal/metrics",
			"internal/crypto",
			"internal/merkle",
			"internal/trace",
			"internal/obs",
		},
		Restricted: "internal/obs",
		RestrictedAllowed: []string{
			"",        // root wiring layer registers collectors and serves /metrics
			"cmd/...", // daemons wire their own exposition endpoints
		},
	}
}

func (a *DepFree) Name() string { return "depfree" }

func (a *DepFree) Doc() string {
	return "the dep-free stratum imports only stdlib+stratum, and only wiring layers import internal/obs (PR 9)"
}

func (a *DepFree) Run(p *Pass) {
	rel := p.PkgRel()
	inStratum := matchAnyPath(rel, a.Stratum)
	mayImportRestricted := rel == a.Restricted || matchAnyPath(rel, a.RestrictedAllowed)
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, spec := range f.Imports {
			ip := importPathOf(spec)
			ipRel, inMod := p.Rel(ip)
			if inStratum && !p.Graph.IsStdlib(ip) && !(inMod && matchAnyPath(ipRel, a.Stratum)) {
				p.Reportf(spec.Pos(), "dep-free package %s imports %s: the stratum may import only the stdlib and other stratum packages", rel, ip)
				continue
			}
			if inMod && ipRel == a.Restricted && !mayImportRestricted {
				p.Reportf(spec.Pos(), "package %s imports %s: components never import obs — wiring layers register closures over Stats() accessors instead", rel, ip)
			}
		}
	}
}
