package xacml

import (
	"fmt"
	"strings"
)

// MatchResult is the three-valued outcome of target matching.
type MatchResult uint8

// Target match outcomes.
const (
	MatchNo MatchResult = iota + 1
	MatchYes
	MatchIndeterminate
)

// String implements fmt.Stringer.
func (m MatchResult) String() string {
	switch m {
	case MatchNo:
		return "NoMatch"
	case MatchYes:
		return "Match"
	case MatchIndeterminate:
		return "Indeterminate"
	default:
		return fmt.Sprintf("MatchResult(%d)", uint8(m))
	}
}

// Match is one attribute test: true if at least one value of the designated
// bag satisfies the comparison against the literal.
type Match struct {
	Op   CmpOp      `json:"op"`
	Attr Designator `json:"attr"`
	Lit  Value      `json:"lit"`
}

// Evaluate computes the three-valued result of the match.
func (m Match) Evaluate(r *Request) MatchResult {
	bag, err := m.Attr.Resolve(r)
	if err != nil {
		return MatchIndeterminate
	}
	for _, v := range bag {
		ok, err := applyCmp(m.Op, v, m.Lit)
		if err != nil {
			return MatchIndeterminate
		}
		if ok {
			return MatchYes
		}
	}
	return MatchNo
}

// String renders the match for debugging.
func (m Match) String() string {
	return fmt.Sprintf("%s %s %s", m.Attr.Key(), m.Op, m.Lit)
}

// AllOf is a conjunction of matches.
type AllOf struct {
	Matches []Match `json:"matches"`
}

// Evaluate per XACML 3.0 §5.8: all must match; an Indeterminate operand
// makes the conjunction Indeterminate unless some operand is NoMatch.
func (a AllOf) Evaluate(r *Request) MatchResult {
	result := MatchYes
	for _, m := range a.Matches {
		switch m.Evaluate(r) {
		case MatchNo:
			return MatchNo
		case MatchIndeterminate:
			result = MatchIndeterminate
		}
	}
	return result
}

// AnyOf is a disjunction of AllOf conjunctions.
type AnyOf struct {
	AllOf []AllOf `json:"allOf"`
}

// Evaluate per XACML 3.0 §5.7: at least one AllOf must match; Match
// dominates Indeterminate.
func (a AnyOf) Evaluate(r *Request) MatchResult {
	result := MatchNo
	for _, all := range a.AllOf {
		switch all.Evaluate(r) {
		case MatchYes:
			return MatchYes
		case MatchIndeterminate:
			result = MatchIndeterminate
		}
	}
	return result
}

// Target is a conjunction of AnyOf clauses (XACML 3.0 §5.6). An empty
// Target matches every request.
type Target struct {
	AnyOf []AnyOf `json:"anyOf,omitempty"`
}

// Evaluate computes the target's three-valued result.
func (t Target) Evaluate(r *Request) MatchResult {
	result := MatchYes
	for _, any := range t.AnyOf {
		switch any.Evaluate(r) {
		case MatchNo:
			return MatchNo
		case MatchIndeterminate:
			result = MatchIndeterminate
		}
	}
	return result
}

// IsEmpty reports whether the target matches everything trivially.
func (t Target) IsEmpty() bool { return len(t.AnyOf) == 0 }

// String renders the target for debugging.
func (t Target) String() string {
	if t.IsEmpty() {
		return "true"
	}
	var anys []string
	for _, any := range t.AnyOf {
		var alls []string
		for _, all := range any.AllOf {
			var ms []string
			for _, m := range all.Matches {
				ms = append(ms, m.String())
			}
			alls = append(alls, "("+strings.Join(ms, " ∧ ")+")")
		}
		anys = append(anys, "("+strings.Join(alls, " ∨ ")+")")
	}
	return strings.Join(anys, " ∧ ")
}

// TargetMatching builds a target matching a single equality test; a common
// construction convenience.
func TargetMatching(cat Category, id AttributeID, v Value) Target {
	return Target{AnyOf: []AnyOf{{AllOf: []AllOf{{Matches: []Match{{
		Op: CmpEq, Attr: Designator{Cat: cat, ID: id}, Lit: v,
	}}}}}}}
}
