package drams_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"drams"
	"drams/internal/obs"
)

// TestTraceTimelineEndToEnd drives one clean decision through the full
// pipeline and reconstructs its timeline: the trace must cover at least
// five distinct stages (PEP decide, PDP evaluation, LI flush wait, chain
// anchoring, monitor match — analyser verification typically joins them),
// be sorted by start time, and land per-stage histograms in /metrics.
func TestTraceTimelineEndToEnd(t *testing.T) {
	dep := testDeployment(t, nil)
	client, err := dep.Client("tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctx20(t)
	req := doctorRequest(dep)
	if _, err := client.Decide(ctx, req); err != nil {
		t.Fatal(err)
	}
	if err := dep.WaitForMatched(ctx, req.ID); err != nil {
		t.Fatal(err)
	}

	// The monitor.match span lands when the EventMatched notification is
	// consumed; WaitForMatched returns on the same notification, so give
	// the recording a moment.
	var spans []drams.TraceSpan
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans = dep.Trace(req.ID)
		if len(spans) >= 5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(spans) < 5 {
		t.Fatalf("trace has %d spans, want >= 5: %+v", len(spans), spans)
	}
	stages := make(map[string]bool)
	for i, sp := range spans {
		stages[sp.Stage] = true
		if i > 0 && sp.Start.Before(spans[i-1].Start) {
			t.Fatalf("timeline not start-sorted at %d: %+v", i, spans)
		}
	}
	for _, want := range []string{
		obs.StagePEPDecide, obs.StagePDPEval, obs.StageLIFlushWait,
		obs.StageChainAnchor, obs.StageMonitorMatch,
	} {
		if !stages[want] {
			t.Errorf("trace missing stage %s (have %v)", want, stages)
		}
	}

	// Per-stage histograms are part of the exposition.
	srv := httptest.NewServer(dep.MetricsHandler())
	defer srv.Close()
	body := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		`drams_trace_stage_ms_bucket{stage="pep.decide",le="+Inf"}`,
		`drams_trace_stage_ms_bucket{stage="pdp.eval",le="+Inf"}`,
		`drams_trace_stage_ms_count{stage="chain.anchor"}`,
		"# TYPE drams_trace_stage_ms histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsExpositionLint gathers the full exposition of a live
// deployment and holds it to promtool-style rules: every family named
// validly, help text present, counters (and only counters) suffixed
// _total — and the node, transport, cache, monitor and analyser planes all
// contributing series.
func TestMetricsExpositionLint(t *testing.T) {
	dep := testDeployment(t, nil)
	client, err := dep.Client("tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Decide(ctx20(t), doctorRequest(dep)); err != nil {
		t.Fatal(err)
	}

	samples := dep.Gatherer().Gather()
	if errs := obs.Lint(samples); errs != nil {
		t.Fatalf("exposition lint: %v", errs)
	}
	srv := httptest.NewServer(dep.MetricsHandler())
	defer srv.Close()
	body := httpGet(t, srv.URL+"/metrics")
	for _, fam := range []string{
		"drams_node_blocks_accepted_total",
		"drams_node_mempool_len",
		"drams_transport_sent_total",
		"drams_pdp_cache_hits_total",
		"drams_pep_requests_total",
		"drams_li_submitted_total",
		"drams_agent_observed_total",
		"drams_watcher_activations_total",
		"drams_monitor_logs_seen_total",
		"drams_monitor_alerts_total",
		"drams_monitor_detection_latency_ms",
		"drams_analyser_verdicts_total",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
	// Health endpoints ride the same handler; a settled deployment is
	// caught up and policy-fresh, hence ready.
	if code, _ := httpStatus(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}
	if code, body := httpStatus(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d: %s", code, body)
	}
}

// blockedWriter wedges the first /metrics response mid-write, emulating a
// scraper that connected and then stopped reading.
type blockedWriter struct {
	release chan struct{}
	header  http.Header
}

func (b *blockedWriter) Header() http.Header { return b.header }
func (b *blockedWriter) WriteHeader(int)     {}
func (b *blockedWriter) Write(p []byte) (int, error) {
	<-b.release
	return len(p), nil
}

// TestStalledScraperDoesNotBlockDecides proves the snapshot-then-serve
// design end-to-end: with a scrape wedged mid-write, the PEP→PDP decide
// path keeps completing (the stalled writer holds no lock any component or
// collector needs), and a concurrent scrape still succeeds. The strict
// throughput bound (<1%) follows from lock-freedom, pinned at the obs
// layer by TestStalledScraperHoldsNoLocks; here we assert the user-visible
// property under -race: decides proceed while the scraper is stalled.
func TestStalledScraperDoesNotBlockDecides(t *testing.T) {
	dep := testDeployment(t, nil)
	client, err := dep.Client("tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctx20(t)
	// Warm the path before stalling the scraper.
	if _, err := client.Decide(ctx, doctorRequest(dep)); err != nil {
		t.Fatal(err)
	}

	handler := dep.MetricsHandler()
	bw := &blockedWriter{release: make(chan struct{}), header: make(http.Header)}
	scrapeDone := make(chan struct{})
	go func() {
		handler.ServeHTTP(bw, httptest.NewRequest("GET", "/metrics", nil))
		close(scrapeDone)
	}()
	// Let the scrape reach its blocked Write (it snapshots first).
	time.Sleep(50 * time.Millisecond)

	const decides = 32
	var wg sync.WaitGroup
	errs := make(chan error, decides)
	for i := 0; i < decides; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Decide(ctx, doctorRequest(dep)); err != nil {
				errs <- err
			}
		}()
	}
	decidesDone := make(chan struct{})
	go func() { wg.Wait(); close(decidesDone) }()
	select {
	case <-decidesDone:
	case <-time.After(15 * time.Second):
		t.Fatal("decides blocked behind a stalled scraper")
	}
	close(errs)
	for err := range errs {
		t.Errorf("decide under stalled scrape: %v", err)
	}
	// A fresh scrape must also complete while the first is still wedged.
	if got := dep.Gatherer().Gather(); len(got) == 0 {
		t.Fatal("concurrent gather returned nothing")
	}
	select {
	case <-scrapeDone:
		t.Fatal("scrape finished early; writer was supposed to be stalled")
	default:
	}
	close(bw.release)
	select {
	case <-scrapeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("scrape did not finish after release")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	_, body := httpStatus(t, url)
	return body
}

func httpStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}
