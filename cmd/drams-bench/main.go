// drams-bench regenerates the full experiment suite: E1–E8 of DESIGN.md §2,
// the AB1–AB3 ablations, and the V1–V8 throughput comparisons (batch
// signature verification, PDP decision cache, client decision pipelining,
// netsim vs TCP transport backends, membership churn, fast resync,
// adversarial detection, and the V8 zero-allocation hot path). It prints
// each result table (text or CSV). EXPERIMENTS.md is produced from this
// tool's output.
//
// Usage:
//
//	drams-bench [-run E1,E2,...,V1,...,V8] [-quick] [-csv] [-json [-out DIR]]
//	            [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"drams/internal/benchfmt"
	"drams/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	runList := flag.String("run", "all", "comma-separated experiment ids (E1..E8) or 'all'")
	quick := flag.Bool("quick", false, "reduced parameters (fast smoke run)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "also write one BENCH_<id>.json per experiment (drams-bench/1 schema)")
	outDir := flag.String("out", ".", "output directory for -json reports")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	selected := map[string]bool{}
	if *runList == "all" {
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "AB1", "AB2", "AB3", "V1", "V2", "V3", "V4", "V5", "V6", "V7", "V8"} {
			selected[id] = true
		}
	} else {
		for _, id := range strings.Split(*runList, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	type runner struct {
		id string
		fn func() (experiment.Table, error)
	}
	runners := []runner{
		{"E1", func() (experiment.Table, error) {
			p := experiment.DefaultE1Params()
			if *quick {
				p = experiment.E1Params{Requests: 8, Workers: 2}
			}
			return experiment.RunE1(p)
		}},
		{"E2", func() (experiment.Table, error) {
			p := experiment.DefaultE2Params()
			if *quick {
				p = experiment.E2Params{Sizes: []int{64, 4096}, Difficulties: []uint8{8}, Samples: 3}
			}
			return experiment.RunE2(p)
		}},
		{"E3", func() (experiment.Table, error) {
			p := experiment.DefaultE3Params()
			if *quick {
				p = experiment.E3Params{Difficulties: []uint8{4, 8, 12}, Blocks: 3}
			}
			return experiment.RunE3(p)
		}},
		{"E4", func() (experiment.Table, error) {
			p := experiment.DefaultE4Params()
			if *quick {
				p = experiment.E4Params{Writes: 48, BatchSizes: []int{16}, ValueSize: 128}
			}
			return experiment.RunE4(p)
		}},
		{"E5", func() (experiment.Table, error) {
			p := experiment.DefaultE5Params()
			if *quick {
				p = experiment.E5Params{Trials: 1}
			}
			return experiment.RunE5(p)
		}},
		{"E6", func() (experiment.Table, error) {
			p := experiment.DefaultE6Params()
			if *quick {
				p = experiment.E6Params{Requests: 16, Workers: 4}
			}
			return experiment.RunE6(p)
		}},
		{"E7", func() (experiment.Table, error) {
			p := experiment.DefaultE7Params()
			if *quick {
				p = experiment.E7Params{RuleCounts: []int{10, 100}, Requests: 100}
			}
			return experiment.RunE7(p)
		}},
		{"E8", func() (experiment.Table, error) {
			p := experiment.DefaultE8Params()
			if *quick {
				p = experiment.E8Params{CloudCounts: []int{2}, Requests: 8}
			}
			return experiment.RunE8(p)
		}},
		{"AB1", func() (experiment.Table, error) {
			p := experiment.DefaultAB1Params()
			if *quick {
				p = experiment.AB1Params{TimeoutBlocks: []uint64{5, 20}, Trials: 1}
			}
			return experiment.RunAB1(p)
		}},
		{"AB2", func() (experiment.Table, error) {
			p := experiment.DefaultAB2Params()
			if *quick {
				p = experiment.AB2Params{Trials: 1}
			}
			return experiment.RunAB2(p)
		}},
		{"AB3", func() (experiment.Table, error) {
			p := experiment.DefaultAB3Params()
			if *quick {
				p = experiment.AB3Params{Requests: 8}
			}
			return experiment.RunAB3(p)
		}},
		{"V1", func() (experiment.Table, error) {
			p := experiment.DefaultV1Params()
			if *quick {
				p = experiment.V1Params{BatchSizes: []int{64, 256}}
			}
			return experiment.RunV1(p)
		}},
		{"V2", func() (experiment.Table, error) {
			p := experiment.DefaultV2Params()
			if *quick {
				p = experiment.V2Params{RuleCounts: []int{10, 100}, Requests: 64, Repeats: 4}
			}
			return experiment.RunV2(p)
		}},
		{"V3", func() (experiment.Table, error) {
			p := experiment.DefaultV3Params()
			if *quick {
				p = experiment.V3Params{InFlight: []int{1, 8, 64}, Requests: 64,
					NetLatency: 300 * time.Microsecond}
			}
			return experiment.RunV3(p)
		}},
		{"V4", func() (experiment.Table, error) {
			p := experiment.DefaultV4Params()
			if *quick {
				p = experiment.V4Params{Requests: 128, Batch: 64}
			}
			return experiment.RunV4(p)
		}},
		{"V5", func() (experiment.Table, error) {
			p := experiment.DefaultV5Params()
			if *quick {
				p = experiment.V5Params{Requests: 2048, Batch: 64, UpdateEveryBlocks: 2}
			}
			return experiment.RunV5(p)
		}},
		{"V6", func() (experiment.Table, error) {
			p := experiment.DefaultV6Params()
			if *quick {
				p = experiment.V6Params{ChainLengths: []int{64, 256}, SyncBatch: 64,
					NetLatency: 300 * time.Microsecond}
			}
			return experiment.RunV6(p)
		}},
		{"V7", func() (experiment.Table, error) {
			p := experiment.DefaultV7Params()
			if *quick {
				p = experiment.V7Params{Trials: 1, Seed: 7}
			}
			return experiment.RunV7(p)
		}},
		{"V8", func() (experiment.Table, error) {
			p := experiment.DefaultV8Params()
			if *quick {
				p = experiment.V8Params{Requests: 128, Batch: 64, Records: 32, Window: 16,
					ApplyBlocks: 2, ApplyTxs: 64, V7Trials: 1}
			}
			return experiment.RunV8(p)
		}},
	}

	failures := 0
	for _, r := range runners {
		if !selected[r.id] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", r.id)
		start := time.Now()
		tab, err := r.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", r.id, err)
			failures++
			continue
		}
		if *csv {
			fmt.Printf("# %s: %s\n%s\n", tab.ID, tab.Title, tab.CSV())
		} else {
			fmt.Println(tab.Render())
		}
		if *jsonOut {
			rep := benchfmt.New(tab.ID, "experiment")
			rep.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
			rep.Config = map[string]any{"quick": *quick}
			rep.Table = &benchfmt.TableData{
				Title: tab.Title, Header: tab.Header, Rows: tab.Rows, Notes: tab.Notes,
			}
			path, err := rep.WriteFile(*outDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s report: %v\n", r.id, err)
				failures++
				continue
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		fmt.Fprintf(os.Stderr, "%s done in %s\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	return failures
}
