// Package analysis is the formally-grounded policy analyser of DRAMS
// (paper §II: "On the base of a logical representation of the access control
// policies evaluated by the PDP, the Analyser checks if for a given request
// the calculated response is the expected one", per the rigorous XACML
// framework of reference [8]).
//
// The analyser compiles a policy set into a normalised logical form —
// per-rule applicability predicates over attribute atoms, combined by an
// independent implementation of the XACML combining algorithms — and offers:
//
//   - ExpectedDecision: re-derivation of the decision for a request, used by
//     the monitor's M5 check to detect compromised PDPs;
//   - finite-domain abstraction of the policy's attribute space, supporting
//     exhaustive property analysis: completeness, reachability/redundancy of
//     rules, and change-impact between policy versions (witness requests
//     whose decisions differ).
//
// The compiled form deliberately re-implements target matching (as
// three-valued predicate evaluation) and the combining algorithms, so the
// analyser and the PDP share no decision logic: agreement between them is a
// meaningful differential check, divergence a strong tamper signal.
package analysis

import (
	"fmt"

	"drams/internal/xacml"
)

// tv is a three-valued logic value.
type tv uint8

const (
	tvFalse tv = iota + 1
	tvTrue
	tvError
)

func tvOf(b bool) tv {
	if b {
		return tvTrue
	}
	return tvFalse
}

// pred is a compiled three-valued predicate over requests.
type pred func(r *xacml.Request) tv

// andPred: False dominates Error (XACML AllOf/AND semantics).
func andPred(ps []pred) pred {
	return func(r *xacml.Request) tv {
		out := tvTrue
		for _, p := range ps {
			switch p(r) {
			case tvFalse:
				return tvFalse
			case tvError:
				out = tvError
			}
		}
		return out
	}
}

// orPred: True dominates Error (XACML AnyOf/OR semantics).
func orPred(ps []pred) pred {
	return func(r *xacml.Request) tv {
		out := tvFalse
		for _, p := range ps {
			switch p(r) {
			case tvTrue:
				return tvTrue
			case tvError:
				out = tvError
			}
		}
		return out
	}
}

func notPred(p pred) pred {
	return func(r *xacml.Request) tv {
		switch p(r) {
		case tvTrue:
			return tvFalse
		case tvFalse:
			return tvTrue
		default:
			return tvError
		}
	}
}

// compileMatch converts one target Match into a predicate.
func compileMatch(m xacml.Match) pred {
	e := &xacml.CmpExpr{Op: m.Op, Attr: m.Attr, Lit: m.Lit}
	return compileExpr(e)
}

// compileTarget converts a Target (AND of AnyOf; OR of AllOf; AND of
// Matches) into a predicate. An empty target is constantly true.
func compileTarget(t xacml.Target) pred {
	if t.IsEmpty() {
		return func(*xacml.Request) tv { return tvTrue }
	}
	anys := make([]pred, 0, len(t.AnyOf))
	for _, any := range t.AnyOf {
		alls := make([]pred, 0, len(any.AllOf))
		for _, all := range any.AllOf {
			ms := make([]pred, 0, len(all.Matches))
			for _, m := range all.Matches {
				ms = append(ms, compileMatch(m))
			}
			alls = append(alls, andPred(ms))
		}
		anys = append(anys, orPred(alls))
	}
	// The outer AnyOf list is conjunctive: every AnyOf clause must match.
	return andPred(anys)
}

// compileExpr converts a condition expression into a predicate. The
// evaluation path goes through Expr.Eval (which is shared code for leaf
// comparison semantics) but logical composition and the surrounding rule /
// combining machinery is re-implemented here.
func compileExpr(e xacml.Expr) pred {
	switch x := e.(type) {
	case nil:
		return func(*xacml.Request) tv { return tvTrue }
	case *xacml.AndExpr:
		ps := make([]pred, len(x.Args))
		for i, a := range x.Args {
			ps[i] = compileExpr(a)
		}
		return andPred(ps)
	case *xacml.OrExpr:
		ps := make([]pred, len(x.Args))
		for i, a := range x.Args {
			ps[i] = compileExpr(a)
		}
		return orPred(ps)
	case *xacml.NotExpr:
		return notPred(compileExpr(x.Arg))
	default:
		// Leaf node: delegate to its own evaluation.
		leaf := e
		return func(r *xacml.Request) tv {
			v, err := leaf.Eval(r)
			if err != nil {
				return tvError
			}
			return tvOf(v)
		}
	}
}

// compiledRule is the normalised form of a rule: effect + one applicability
// predicate (target ∧ condition).
type compiledRule struct {
	id     string
	effect xacml.Effect
	target pred
	cond   pred
}

func (cr *compiledRule) decide(r *xacml.Request) xacml.Decision {
	switch cr.target(r) {
	case tvFalse:
		return xacml.NotApplicable
	case tvError:
		return indetFor(cr.effect)
	}
	switch cr.cond(r) {
	case tvFalse:
		return xacml.NotApplicable
	case tvError:
		return indetFor(cr.effect)
	}
	if cr.effect == xacml.EffectPermit {
		return xacml.Permit
	}
	return xacml.Deny
}

func indetFor(e xacml.Effect) xacml.Decision {
	if e == xacml.EffectPermit {
		return xacml.IndeterminateP
	}
	return xacml.IndeterminateD
}

// compiledNode is a policy or policy set in normalised form.
type compiledNode struct {
	id       string
	target   pred
	alg      xacml.CombiningAlg
	rules    []*compiledRule // non-nil for policies
	children []*compiledNode // non-nil for policy sets
	// childTargets mirrors children targets for only-one-applicable.
	childTargets []pred
}

// Compiled is the analyser's normalised logical representation of a policy
// set, with an independent evaluator.
type Compiled struct {
	root   *compiledNode
	src    *xacml.PolicySet
	nRules int
}

// Compile normalises a policy set.
func Compile(ps *xacml.PolicySet) *Compiled {
	c := &Compiled{src: ps}
	c.root = c.compileSet(ps)
	return c
}

// Source returns the policy set the compilation was built from.
func (c *Compiled) Source() *xacml.PolicySet { return c.src }

// RuleCount reports the number of compiled rules.
func (c *Compiled) RuleCount() int { return c.nRules }

func (c *Compiled) compileSet(ps *xacml.PolicySet) *compiledNode {
	n := &compiledNode{id: ps.ID, target: compileTarget(ps.Target), alg: ps.Alg}
	for _, item := range ps.Items {
		if item.Policy != nil {
			n.children = append(n.children, c.compilePolicy(item.Policy))
			n.childTargets = append(n.childTargets, compileTarget(item.Policy.Target))
		} else if item.Set != nil {
			n.children = append(n.children, c.compileSet(item.Set))
			n.childTargets = append(n.childTargets, compileTarget(item.Set.Target))
		}
	}
	return n
}

func (c *Compiled) compilePolicy(p *xacml.Policy) *compiledNode {
	n := &compiledNode{id: p.ID, target: compileTarget(p.Target), alg: p.Alg}
	for _, ru := range p.Rules {
		n.rules = append(n.rules, &compiledRule{
			id:     ru.ID,
			effect: ru.Effect,
			target: compileTarget(ru.Target),
			cond:   compileExpr(ru.Condition),
		})
		c.nRules++
	}
	return n
}

// ExpectedDecision re-derives the decision for a request from the
// normalised form (six-valued).
func (c *Compiled) ExpectedDecision(r *xacml.Request) xacml.Decision {
	return c.evalNode(c.root, r)
}

// ExpectedSimple is ExpectedDecision collapsed to the four-valued lattice a
// PEP sees; this is what the M5 monitor check compares.
func (c *Compiled) ExpectedSimple(r *xacml.Request) xacml.Decision {
	return c.ExpectedDecision(r).Simple()
}

func (c *Compiled) evalNode(n *compiledNode, r *xacml.Request) xacml.Decision {
	switch n.target(r) {
	case tvFalse:
		return xacml.NotApplicable
	case tvError:
		return downgrade(c.evalChildren(n, r))
	}
	return c.evalChildren(n, r)
}

func (c *Compiled) evalChildren(n *compiledNode, r *xacml.Request) xacml.Decision {
	if n.rules != nil {
		ds := make([]xacml.Decision, len(n.rules))
		for i, ru := range n.rules {
			ds[i] = ru.decide(r)
		}
		return combineDecisions(n.alg, ds)
	}
	if n.alg == xacml.OnlyOneApplicable {
		selected := -1
		for i, ct := range n.childTargets {
			switch ct(r) {
			case tvError:
				return xacml.IndeterminateDP
			case tvTrue:
				if selected >= 0 {
					return xacml.IndeterminateDP
				}
				selected = i
			}
		}
		if selected < 0 {
			return xacml.NotApplicable
		}
		return c.evalNode(n.children[selected], r)
	}
	ds := make([]xacml.Decision, len(n.children))
	for i, ch := range n.children {
		ds[i] = c.evalNode(ch, r)
	}
	return combineDecisions(n.alg, ds)
}

// downgrade applies the indeterminate-target rule (XACML table 7).
func downgrade(d xacml.Decision) xacml.Decision {
	switch d {
	case xacml.Permit:
		return xacml.IndeterminateP
	case xacml.Deny:
		return xacml.IndeterminateD
	default:
		return d
	}
}

// combineDecisions is the analyser's own implementation of the combining
// algorithms (kept textually independent from package xacml).
func combineDecisions(alg xacml.CombiningAlg, ds []xacml.Decision) xacml.Decision {
	switch alg {
	case xacml.DenyOverrides, xacml.PermitOverrides:
		win, lose := xacml.Deny, xacml.Permit
		indetWin, indetLose := xacml.IndeterminateD, xacml.IndeterminateP
		if alg == xacml.PermitOverrides {
			win, lose = xacml.Permit, xacml.Deny
			indetWin, indetLose = xacml.IndeterminateP, xacml.IndeterminateD
		}
		var sawLose, sawIW, sawIL, sawIDP bool
		for _, d := range ds {
			switch d {
			case win:
				return win
			case lose:
				sawLose = true
			case indetWin:
				sawIW = true
			case indetLose:
				sawIL = true
			case xacml.IndeterminateDP:
				sawIDP = true
			}
		}
		switch {
		case sawIDP, sawIW && (sawIL || sawLose):
			return xacml.IndeterminateDP
		case sawIW:
			return indetWin
		case sawLose:
			return lose
		case sawIL:
			return indetLose
		default:
			return xacml.NotApplicable
		}
	case xacml.FirstApplicable:
		for _, d := range ds {
			switch d {
			case xacml.NotApplicable:
				continue
			case xacml.Permit, xacml.Deny:
				return d
			default:
				return xacml.IndeterminateDP
			}
		}
		return xacml.NotApplicable
	case xacml.DenyUnlessPermit:
		for _, d := range ds {
			if d == xacml.Permit {
				return xacml.Permit
			}
		}
		return xacml.Deny
	case xacml.PermitUnlessDeny:
		for _, d := range ds {
			if d == xacml.Deny {
				return xacml.Deny
			}
		}
		return xacml.Permit
	default:
		return xacml.IndeterminateDP
	}
}

// VerifyDecision checks a PDP-reported decision against the analyser's
// expectation, returning nil when they agree (on the four-valued lattice).
func (c *Compiled) VerifyDecision(r *xacml.Request, reported xacml.Decision) error {
	expected := c.ExpectedSimple(r)
	if reported.Simple() != expected {
		return fmt.Errorf("analysis: request %s: PDP reported %s but policy semantics give %s",
			r.ID, reported, expected)
	}
	return nil
}
