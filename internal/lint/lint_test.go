package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches one expectation comment in a fixture: `// want "regex"`,
// or the block form `/* want "regex" */` used on lines that already carry
// a //lint:ignore directive (a line comment cannot follow another).
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// expectation is one `want` annotation: a finding must land on this
// file:line with a message matching pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	met     bool
}

// collectWants scans every .go file under dir for want annotations.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &expectation{
					file: rel, line: line, pattern: regexp.MustCompile(m[1]),
				})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("collect wants under %s: %v", dir, err)
	}
	return wants
}

// runGolden loads one fixture module from testdata/src, runs the given
// analyzers over it, and asserts findings and want annotations match in
// both directions: every finding is expected, every expectation is met.
// The fixture's clean twin packages carry no annotations, so any finding
// there fails the test.
func runGolden(t *testing.T, fixture string, analyzers ...Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	findings := prog.Run(analyzers)
	wants := collectWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want annotations: the golden test would vacuously pass", fixture)
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == f.File && w.line == f.Line && w.pattern.MatchString(f.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: want finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func TestNetsimImportFixture(t *testing.T) { runGolden(t, "netsimimport", NewNetsimImport()) }

func TestDepFreeFixture(t *testing.T) { runGolden(t, "depfree", NewDepFree()) }

func TestCtxFlowFixture(t *testing.T) { runGolden(t, "ctxflow", NewCtxFlow()) }

func TestLockHeldFixture(t *testing.T) { runGolden(t, "lockheld", NewLockHeld()) }

func TestSeedPinFixture(t *testing.T) { runGolden(t, "seedpin", NewSeedPin()) }

func TestErrCmpFixture(t *testing.T) { runGolden(t, "errcmp", NewErrCmp()) }

func TestStatsSnapFixture(t *testing.T) { runGolden(t, "statssnap", NewStatsSnap()) }

// TestSuppressFixture drives the directive machinery through ctxflow:
// working same-line and line-above suppressions vanish, an unsuppressed
// violation still fires, and unused or malformed directives surface as
// findings under the "lint" meta analyzer.
func TestSuppressFixture(t *testing.T) { runGolden(t, "suppress", NewCtxFlow()) }

func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "ctxflow", File: "internal/x/y.go", Line: 12, Col: 3, Message: "boom"}
	if got, want := f.String(), "internal/x/y.go:12: [ctxflow] boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestWriteJSONNeverNull(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "[]" {
		t.Fatalf("WriteJSON(nil) = %q, want []", got)
	}
}
