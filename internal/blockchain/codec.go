package blockchain

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"unsafe"

	"drams/internal/crypto"
)

// Wire codec for blocks and transactions.
//
// The hot path (gossip, bc.getrange sync, store.KV persistence) uses a
// length-prefixed binary encoding in the style of the TCP frame codec:
// append-to-caller-buffer writers, exact-size pre-computation (one
// allocation per encode) and zero-copy []byte reads on decode. The first
// byte of every encoding is a format tag:
//
//	0x01        binary codec v1 (this file)
//	'{' (0x7b)  legacy JSON (encoding/json of the Go structs)
//
// so decoders accept both formats transparently — chains persisted by
// pre-binary builds reopen, and mixed-version federations interoperate
// (JSON peers' gossip decodes here; LegacyJSONWire makes a node *emit*
// JSON for the reverse direction).
//
// Binary transaction body (big-endian; str = u16 len + bytes,
// blob = u32 len + bytes):
//
//	str from | u64 nonce | str contract | str method | blob args |
//	blob pubKey | blob signature
//
// Binary block:
//
//	0x01 | u64 height | 32B prevHash | 32B merkleRoot | u64 time |
//	u8 difficulty | u64 nonce | str miner | u32 txCount | tx bodies...
//
// A standalone transaction encoding is 0x01 followed by one tx body.
//
// Decoded []byte fields (Args, PubKey, Signature) alias the input buffer:
// transport and persistence layers hand each decode a freshly read buffer
// that is never reused, and decoded values are treated as immutable
// everywhere downstream. Callers that mutate the input after decoding must
// copy first.

// codecVersion tags the binary format; bump on incompatible layout change.
const codecVersion byte = 0x01

// maxWireTxs bounds the declared tx count of a decoded block before any
// allocation, so a hostile length field cannot balloon memory.
const maxWireTxs = 1 << 20

var errTruncated = errors.New("blockchain: truncated encoding")

// encodePool recycles scratch buffers for encode paths whose result is
// consumed immediately (header hashing, persistence values).
var encodePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func txEncodedLen(tx *Transaction) int {
	return 2 + len(tx.From) + 8 +
		2 + len(tx.Call.Contract) + 2 + len(tx.Call.Method) + 4 + len(tx.Call.Args) +
		4 + len(tx.PubKey) + 4 + len(tx.Signature)
}

func blockEncodedLen(b *Block) int {
	n := 1 + 8 + crypto.DigestSize + crypto.DigestSize + 8 + 1 + 8 + 2 + len(b.Header.Miner) + 4
	for i := range b.Txs {
		n += txEncodedLen(&b.Txs[i])
	}
	return n
}

func appendStr16(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendBlob32(buf []byte, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func checkTxFields(tx *Transaction) error {
	for _, s := range []string{tx.From, tx.Call.Contract, tx.Call.Method} {
		if len(s) > math.MaxUint16 {
			return fmt.Errorf("blockchain: encode: string field too long (%d bytes)", len(s))
		}
	}
	return nil
}

// appendTxBody serializes one transaction body (no version byte) onto buf.
func appendTxBody(buf []byte, tx *Transaction) []byte {
	buf = appendStr16(buf, tx.From)
	buf = binary.BigEndian.AppendUint64(buf, tx.Nonce)
	buf = appendStr16(buf, tx.Call.Contract)
	buf = appendStr16(buf, tx.Call.Method)
	buf = appendBlob32(buf, tx.Call.Args)
	buf = appendBlob32(buf, tx.PubKey)
	return appendBlob32(buf, tx.Signature)
}

// AppendTx serializes tx in the binary wire format onto buf and returns the
// extended slice. Callers that encode in a loop should reuse buf.
func AppendTx(buf []byte, tx *Transaction) ([]byte, error) {
	if err := checkTxFields(tx); err != nil {
		return buf, err
	}
	buf = append(buf, codecVersion)
	return appendTxBody(buf, tx), nil
}

// AppendBlock serializes b in the binary wire format onto buf and returns
// the extended slice.
func AppendBlock(buf []byte, b *Block) ([]byte, error) {
	if len(b.Txs) > maxWireTxs {
		return buf, fmt.Errorf("blockchain: encode block: %d txs exceeds limit", len(b.Txs))
	}
	if len(b.Header.Miner) > math.MaxUint16 {
		return buf, fmt.Errorf("blockchain: encode block: miner name too long")
	}
	for i := range b.Txs {
		if err := checkTxFields(&b.Txs[i]); err != nil {
			return buf, err
		}
	}
	h := &b.Header
	buf = append(buf, codecVersion)
	buf = binary.BigEndian.AppendUint64(buf, h.Height)
	buf = append(buf, h.PrevHash[:]...)
	buf = append(buf, h.MerkleRoot[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.TimeUnixNano))
	buf = append(buf, h.Difficulty)
	buf = binary.BigEndian.AppendUint64(buf, h.Nonce)
	buf = appendStr16(buf, h.Miner)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b.Txs)))
	for i := range b.Txs {
		buf = appendTxBody(buf, &b.Txs[i])
	}
	return buf, nil
}

// txReader walks a binary tx body with bounds checks.
type txReader struct {
	buf []byte
	off int
}

func (r *txReader) u16() (uint16, error) {
	if r.off+2 > len(r.buf) {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *txReader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *txReader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// str returns a zero-copy string aliasing the input buffer, under the same
// immutability contract as blob: decoded values alias data, which callers
// hand over and never mutate. This keeps binary decode at zero allocations
// per transaction.
func (r *txReader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if r.off+int(n) > len(r.buf) {
		return "", errTruncated
	}
	if n == 0 {
		return "", nil
	}
	s := unsafe.String(&r.buf[r.off], int(n))
	r.off += int(n)
	return s, nil
}

// blob returns a zero-copy view into the input buffer (nil for length 0, so
// round-trips preserve nil-ness of optional fields).
func (r *txReader) blob() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > len(r.buf)-r.off {
		return nil, errTruncated
	}
	if n == 0 {
		return nil, nil
	}
	b := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *txReader) digest() (crypto.Digest, error) {
	var d crypto.Digest
	if r.off+crypto.DigestSize > len(r.buf) {
		return d, errTruncated
	}
	copy(d[:], r.buf[r.off:])
	r.off += crypto.DigestSize
	return d, nil
}

func (r *txReader) readTxBody(tx *Transaction) error {
	var err error
	if tx.From, err = r.str(); err != nil {
		return err
	}
	if tx.Nonce, err = r.u64(); err != nil {
		return err
	}
	if tx.Call.Contract, err = r.str(); err != nil {
		return err
	}
	if tx.Call.Method, err = r.str(); err != nil {
		return err
	}
	var args []byte
	if args, err = r.blob(); err != nil {
		return err
	}
	// The JSON decode path can only yield a valid RawMessage; enforce the
	// same invariant here, or a hostile peer's garbage args would panic
	// Call.Encode when the tx ID is computed.
	if len(args) > 0 && !json.Valid(args) {
		return errors.New("call args are not valid JSON")
	}
	tx.Call.Args = json.RawMessage(args)
	if tx.PubKey, err = r.blob(); err != nil {
		return err
	}
	if tx.Signature, err = r.blob(); err != nil {
		return err
	}
	return nil
}

func decodeTxBinary(data []byte) (Transaction, error) {
	r := txReader{buf: data, off: 1}
	var tx Transaction
	if err := r.readTxBody(&tx); err != nil {
		return Transaction{}, fmt.Errorf("blockchain: decode tx: %w", err)
	}
	if r.off != len(data) {
		return Transaction{}, fmt.Errorf("blockchain: decode tx: %d trailing bytes", len(data)-r.off)
	}
	return tx, nil
}

func decodeBlockBinary(data []byte) (*Block, error) {
	r := txReader{buf: data, off: 1}
	var b Block
	var err error
	fail := func(err error) (*Block, error) {
		return nil, fmt.Errorf("blockchain: decode block: %w", err)
	}
	if b.Header.Height, err = r.u64(); err != nil {
		return fail(err)
	}
	if b.Header.PrevHash, err = r.digest(); err != nil {
		return fail(err)
	}
	if b.Header.MerkleRoot, err = r.digest(); err != nil {
		return fail(err)
	}
	t, err := r.u64()
	if err != nil {
		return fail(err)
	}
	b.Header.TimeUnixNano = int64(t)
	if r.off >= len(data) {
		return fail(errTruncated)
	}
	b.Header.Difficulty = data[r.off]
	r.off++
	if b.Header.Nonce, err = r.u64(); err != nil {
		return fail(err)
	}
	if b.Header.Miner, err = r.str(); err != nil {
		return fail(err)
	}
	count, err := r.u32()
	if err != nil {
		return fail(err)
	}
	if count > maxWireTxs {
		return fail(fmt.Errorf("declared tx count %d exceeds limit", count))
	}
	// A tx body is at least 24 bytes (7 length prefixes + nonce); reject
	// counts the remaining bytes cannot possibly hold before allocating.
	if int(count) > (len(data)-r.off)/24+1 {
		return fail(fmt.Errorf("declared tx count %d exceeds remaining data", count))
	}
	if count > 0 {
		b.Txs = make([]Transaction, count)
		for i := range b.Txs {
			if err := r.readTxBody(&b.Txs[i]); err != nil {
				return fail(err)
			}
		}
	}
	if r.off != len(data) {
		return fail(fmt.Errorf("%d trailing bytes", len(data)-r.off))
	}
	return &b, nil
}

// EncodeTxJSON serialises a transaction in the legacy JSON wire format.
// Kept for mixed-version federations (NodeConfig.LegacyJSONWire) and
// format-interop tests.
func EncodeTxJSON(tx Transaction) []byte {
	out, err := json.Marshal(tx)
	if err != nil {
		panic(fmt.Sprintf("blockchain: encode tx: %v", err))
	}
	return out
}

// EncodeBlockJSON serialises a block in the legacy JSON wire format.
func EncodeBlockJSON(b *Block) []byte {
	out, err := json.Marshal(b)
	if err != nil {
		panic(fmt.Sprintf("blockchain: encode block: %v", err))
	}
	return out
}
