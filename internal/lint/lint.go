package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Implementations are stateless across
// passes: Run is called once per package variant with everything it needs
// on the pass.
type Analyzer interface {
	// Name is the short identifier findings and //lint:ignore directives
	// use (e.g. "ctxflow").
	Name() string
	// Doc is a one-line description of the invariant enforced.
	Doc() string
	// Run inspects one package variant and reports findings via
	// pass.Reportf.
	Run(pass *Pass)
}

// Pass hands an analyzer one type-checked package variant: its files, type
// info, and the module import graph.
type Pass struct {
	Pkg   *Package
	XTest bool
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Graph *Graph

	prog     *Program
	analyzer Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Graph.Dir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name(),
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether f is a _test.go file of this unit.
func (p *Pass) IsTestFile(f *ast.File) bool {
	u := p.unit()
	return u != nil && u.testFiles[f]
}

func (p *Pass) unit() *Unit {
	for _, u := range p.prog.Units {
		if u.Pkg == p.Pkg && u.XTest == p.XTest {
			return u
		}
	}
	return nil
}

// Rel is Graph.Rel for this pass's module.
func (p *Pass) Rel(importPath string) (string, bool) { return p.Graph.Rel(importPath) }

// PkgRel is the module-relative path of the package under analysis.
func (p *Pass) PkgRel() string {
	rel, _ := p.Graph.Rel(p.Pkg.ImportPath)
	return rel
}

// LookupObject resolves an exported object declared in another module
// package (by module-relative path), or nil.
func (p *Pass) LookupObject(relPath, name string) types.Object {
	return p.prog.LookupObject(relPath, name)
}

// Finding is one rendered analyzer hit.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the canonical `file:line: [name] message` form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// WriteJSON renders findings as a JSON array (never null).
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// MetaAnalyzer is the reserved analyzer name under which the framework
// itself reports malformed or unused //lint:ignore directives.
const MetaAnalyzer = "lint"

// directive is one parsed //lint:ignore comment.
type directive struct {
	file   string
	line   int
	names  map[string]bool
	reason string
	pos    token.Position
	used   bool
}

// Run executes the analyzers over every loaded unit, applies
// //lint:ignore suppression, and returns the surviving findings sorted by
// position. Malformed and unused directives are themselves findings under
// the "lint" meta analyzer, so a stale suppression turns the gate red just
// like a regression would.
func (p *Program) Run(analyzers []Analyzer) []Finding {
	var raw []Finding
	for _, u := range p.Units {
		for _, a := range analyzers {
			pass := &Pass{
				Pkg: u.Pkg, XTest: u.XTest, Fset: p.Fset, Files: u.Files,
				Types: u.Types, Info: u.Info, Graph: p.Graph,
				prog: p, analyzer: a, findings: &raw,
			}
			a.Run(pass)
		}
	}

	directives, meta := p.collectDirectives()
	var out []Finding
	for _, f := range raw {
		if d := matchDirective(directives, f); d != nil {
			d.used = true
			continue
		}
		out = append(out, f)
	}
	out = append(out, meta...)
	for _, ds := range directives {
		for _, d := range ds {
			if !d.used {
				names := make([]string, 0, len(d.names))
				for n := range d.names {
					names = append(names, n)
				}
				sort.Strings(names)
				out = append(out, Finding{
					Analyzer: MetaAnalyzer,
					File:     d.file, Line: d.line, Col: d.pos.Column,
					Message: fmt.Sprintf("unused //lint:ignore directive for %s: it suppresses nothing, remove it", strings.Join(names, ",")),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// collectDirectives scans every loaded file once for //lint:ignore
// comments. The returned map is keyed by rendered file path; malformed
// directives come back as meta findings.
func (p *Program) collectDirectives() (map[string][]*directive, []Finding) {
	directives := map[string][]*directive{}
	var meta []Finding
	seenFile := map[string]bool{}
	for _, u := range p.Units {
		for _, f := range u.Files {
			position := p.Fset.Position(f.Pos())
			if seenFile[position.Filename] {
				continue
			}
			seenFile[position.Filename] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue // /* */ comments don't carry directives
					}
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, "lint:ignore")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					file := pos.Filename
					if rel, err := filepath.Rel(p.Graph.Dir, file); err == nil && !strings.HasPrefix(rel, "..") {
						file = rel
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						meta = append(meta, Finding{
							Analyzer: MetaAnalyzer,
							File:     file, Line: pos.Line, Col: pos.Column,
							Message: "malformed //lint:ignore directive: want `//lint:ignore <analyzer>[,<analyzer>] <reason>`",
						})
						continue
					}
					names := map[string]bool{}
					for _, n := range strings.Split(fields[0], ",") {
						if n != "" {
							names[n] = true
						}
					}
					directives[file] = append(directives[file], &directive{
						file: file, line: pos.Line, names: names,
						reason: strings.Join(fields[1:], " "), pos: pos,
					})
				}
			}
		}
	}
	return directives, meta
}

// matchDirective finds a directive covering the finding: same line
// (trailing comment) or the line above (standalone comment).
func matchDirective(directives map[string][]*directive, f Finding) *directive {
	for _, d := range directives[f.File] {
		if (d.line == f.Line || d.line == f.Line-1) && d.names[f.Analyzer] {
			return d
		}
	}
	return nil
}
