package contract

import (
	"encoding/json"
	"fmt"

	"drams/internal/crypto"
)

// KVContract is a minimal general-purpose on-chain key-value store. DRAMS
// uses it for data that only needs immutable, ordered publication (e.g.
// federation membership records). Each key is owned by the caller that first
// wrote it; other callers cannot overwrite it.
type KVContract struct {
	ContractName string
}

var _ Contract = (*KVContract)(nil)

// KVArgs are the arguments for KVContract methods.
type KVArgs struct {
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"`
}

// Name implements Contract.
func (k *KVContract) Name() string { return k.ContractName }

// Execute implements Contract. Methods: "put", "del".
func (k *KVContract) Execute(ctx CallCtx, st StateDB, call Call) ([]Event, error) {
	var args KVArgs
	if err := json.Unmarshal(call.Args, &args); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArgs, err)
	}
	if args.Key == "" {
		return nil, fmt.Errorf("%w: empty key", ErrBadArgs)
	}
	ownerKey := "owner/" + args.Key
	dataKey := "data/" + args.Key
	if owner, ok := st.Get(ownerKey); ok && string(owner) != ctx.Caller {
		return nil, fmt.Errorf("contract: key %q owned by %q, caller is %q", args.Key, owner, ctx.Caller)
	}
	switch call.Method {
	case "put":
		st.Set(ownerKey, []byte(ctx.Caller))
		st.Set(dataKey, args.Value)
		payload, _ := json.Marshal(map[string]string{"key": args.Key, "by": ctx.Caller})
		return []Event{{Type: "Put", Payload: payload}}, nil
	case "del":
		st.Delete(ownerKey)
		st.Delete(dataKey)
		payload, _ := json.Marshal(map[string]string{"key": args.Key, "by": ctx.Caller})
		return []Event{{Type: "Del", Payload: payload}}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownMethod, call.Method)
	}
}

// ReadKV reads a KVContract value out of a (namespaced) state snapshot;
// off-chain readers use this through the node's state query.
func ReadKV(st StateDB, key string) ([]byte, bool) {
	return st.Get("data/" + key)
}

// AnchorContract records Merkle roots of off-chain data batches. It is the
// on-chain half of the hybrid database+blockchain design (paper §III,
// reference [9]) and also anchors policy digests published by the PAP so the
// monitor can detect policy substitution (check M6).
//
// Anchors are append-only per stream: sequence numbers must be fresh. A
// second anchor for an existing (stream, seq) with a different root is
// rejected and flagged with an AnchorConflict event — a visible sign of
// equivocation.
type AnchorContract struct {
	ContractName string
}

var _ Contract = (*AnchorContract)(nil)

// AnchorArgs are the arguments for AnchorContract.anchor.
type AnchorArgs struct {
	Stream string        `json:"stream"`
	Seq    uint64        `json:"seq"`
	Root   crypto.Digest `json:"root"`
	Count  int           `json:"count"`
	Note   string        `json:"note,omitempty"`
}

// AnchorRecord is what gets stored per (stream, seq).
type AnchorRecord struct {
	Root   crypto.Digest `json:"root"`
	Count  int           `json:"count"`
	Height uint64        `json:"height"`
	By     string        `json:"by"`
	Note   string        `json:"note,omitempty"`
}

// Name implements Contract.
func (a *AnchorContract) Name() string { return a.ContractName }

// Execute implements Contract. Methods: "anchor".
func (a *AnchorContract) Execute(ctx CallCtx, st StateDB, call Call) ([]Event, error) {
	if call.Method != "anchor" {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMethod, call.Method)
	}
	var args AnchorArgs
	if err := json.Unmarshal(call.Args, &args); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArgs, err)
	}
	if args.Stream == "" {
		return nil, fmt.Errorf("%w: empty stream", ErrBadArgs)
	}
	key := anchorKey(args.Stream, args.Seq)
	if existing, ok := st.Get(key); ok {
		var prev AnchorRecord
		if err := json.Unmarshal(existing, &prev); err == nil && prev.Root == args.Root {
			// Idempotent re-anchor (e.g. client retry): accept silently.
			return nil, nil
		}
		payload, _ := json.Marshal(map[string]any{
			"stream": args.Stream, "seq": args.Seq, "by": ctx.Caller,
		})
		return []Event{{Type: "AnchorConflict", Payload: payload}},
			fmt.Errorf("contract: anchor %s/%d already exists with different root", args.Stream, args.Seq)
	}
	rec := AnchorRecord{Root: args.Root, Count: args.Count, Height: ctx.Height, By: ctx.Caller, Note: args.Note}
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("contract: encode anchor record: %w", err)
	}
	st.Set(key, b)
	// Track the latest sequence per stream for O(1) reads.
	st.Set("head/"+args.Stream, []byte(fmt.Sprintf("%d", args.Seq)))
	payload, _ := json.Marshal(args)
	return []Event{{Type: "Anchored", Payload: payload}}, nil
}

func anchorKey(stream string, seq uint64) string {
	return fmt.Sprintf("anchor/%s/%016x", stream, seq)
}

// ReadAnchor reads an anchor record from a namespaced state view.
func ReadAnchor(st StateDB, stream string, seq uint64) (AnchorRecord, bool) {
	b, ok := st.Get(anchorKey(stream, seq))
	if !ok {
		return AnchorRecord{}, false
	}
	var rec AnchorRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return AnchorRecord{}, false
	}
	return rec, true
}

// ReadAnchorHead returns the highest anchored sequence for a stream.
func ReadAnchorHead(st StateDB, stream string) (uint64, bool) {
	b, ok := st.Get("head/" + stream)
	if !ok {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(string(b), "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// ListAnchors returns every anchored sequence for a stream in order.
func ListAnchors(st StateDB, stream string) []AnchorRecord {
	keys := st.Keys("anchor/" + stream + "/")
	out := make([]AnchorRecord, 0, len(keys))
	for _, k := range keys {
		b, ok := st.Get(k)
		if !ok {
			continue
		}
		var rec AnchorRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			continue
		}
		out = append(out, rec)
	}
	return out
}
