package core

import (
	"fmt"
	"testing"

	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/xacml"
)

func mustBatch(t *testing.T, recs ...LogRecord) LogBatch {
	t.Helper()
	lb, err := NewLogBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	return lb
}

// A whole exchange anchored in one batch transaction must store every
// record, emit proof-bearing events, anchor the root, and complete the
// exchange exactly like four individual transactions.
func TestLogBatchCompletesExchange(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-b1")
	env.anchorPolicy(x.polVer, x.polDig)

	lb := mustBatch(t, x.pepRequest(), x.pdpRequest(), x.pdpResponse(), x.pepResponse(x.decision))
	evs := env.mustCall("li-t1", MethodLogBatch, lb.Encode())

	stored := 0
	for _, e := range evs {
		if e.Type != EventLogStored {
			continue
		}
		stored++
		br, err := DecodeBatchedRecord(e.Payload)
		if err != nil {
			t.Fatalf("batched event payload: %v", err)
		}
		if br.Root != lb.Root {
			t.Fatal("event carries a foreign root")
		}
		if !br.VerifyInclusion() {
			t.Fatalf("record %d: inclusion proof does not verify", br.Index)
		}
	}
	if stored != 4 {
		t.Fatalf("stored %d records, want 4", stored)
	}
	if n, ok := ReadBatchAnchor(contract.Namespace(env.st, ContractName), lb.Root); !ok || n != 4 {
		t.Fatalf("batch anchor = (%d, %v), want (4, true)", n, ok)
	}
	if len(alertsOf(evs)) != 0 {
		t.Fatalf("clean batch raised alerts: %+v", alertsOf(evs))
	}
	// The verdict completes the exchange (RequireVerdict is on).
	evs = env.mustCall("analyser", MethodVerdict, x.verdict(x.decision).Encode())
	if !hasEvent(evs, EventMatched) {
		t.Fatal("batched exchange never matched")
	}
}

// A batch whose claimed root does not bind its records is invalid.
func TestLogBatchRootMismatchRejected(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-b2")
	lb := mustBatch(t, x.pepRequest(), x.pdpRequest())
	lb.Root = crypto.Sum([]byte("forged root"))
	if _, err := env.call("li-t1", MethodLogBatch, lb.Encode()); err == nil {
		t.Fatal("forged batch root accepted")
	}
	if _, ok := ReadStoredRecord(contract.Namespace(env.st, ContractName), x.reqID, KindPEPRequest); ok {
		t.Fatal("record from rejected batch was stored")
	}
}

func TestLogBatchRejectsEmptyAndOversize(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	if _, err := env.call("li-t1", MethodLogBatch, LogBatch{}.Encode()); err == nil {
		t.Fatal("empty batch accepted")
	}
	recs := make([]LogRecord, MaxLogBatch+1)
	for i := range recs {
		recs[i] = cleanExchange(fmt.Sprintf("req-ovr-%d", i)).pepRequest()
	}
	if _, err := NewLogBatch(recs); err == nil {
		t.Fatal("NewLogBatch accepted oversize window")
	}
	// A hand-rolled oversize batch must be rejected by the contract's own
	// bound before any root computation.
	lb := LogBatch{Records: recs}
	if _, err := env.call("li-t1", MethodLogBatch, lb.Encode()); err == nil {
		t.Fatal("contract accepted oversize batch")
	}
}

// A conflicting record smuggled inside a batch must raise the same
// equivocation alert as a conflicting individual transaction, keeping the
// original record.
func TestLogBatchEquivocationDetected(t *testing.T) {
	env := newMatchEnv(t, defaultCfg())
	x := cleanExchange("req-b3")
	env.mustCall("li-t1", MethodLog, x.pepRequest().Encode())

	conflict := x.pepRequest()
	conflict.ReqDigest = crypto.Sum([]byte("other view"))
	lb := mustBatch(t, conflict, x.pdpRequest())
	evs := env.mustCall("li-evil", MethodLogBatch, lb.Encode())

	alerts := alertsOf(evs)
	if len(alerts) != 1 || alerts[0].Type != AlertEquivocation {
		t.Fatalf("alerts = %+v, want one equivocation", alerts)
	}
	got, _ := ReadStoredRecord(contract.Namespace(env.st, ContractName), x.reqID, KindPEPRequest)
	if got.ReqDigest != x.reqDig {
		t.Fatal("original record was overwritten by batched conflict")
	}
	// The non-conflicting record of the same batch still landed.
	if _, ok := ReadStoredRecord(contract.Namespace(env.st, ContractName), x.reqID, KindPDPRequest); !ok {
		t.Fatal("clean record of a partially conflicting batch was lost")
	}
}

// One batch advancing several requests runs the matching checks for each.
func TestLogBatchMultiRequest(t *testing.T) {
	cfg := defaultCfg()
	cfg.RequireVerdict = false
	env := newMatchEnv(t, cfg)
	x1, x2 := cleanExchange("req-b4"), cleanExchange("req-b5")
	env.anchorPolicy(x1.polVer, x1.polDig)

	lb := mustBatch(t,
		x1.pepRequest(), x1.pdpRequest(), x1.pdpResponse(), x1.pepResponse(x1.decision),
		x2.pepRequest(), x2.pdpRequest(), x2.pdpResponse(), x2.pepResponse(xacml.Deny))
	evs := env.mustCall("li-t1", MethodLogBatch, lb.Encode())

	if !ReadDone(contract.Namespace(env.st, ContractName), x1.reqID) {
		t.Fatal("clean exchange in multi-request batch did not complete")
	}
	if ReadDone(contract.Namespace(env.st, ContractName), x2.reqID) {
		t.Fatal("tampered-enforcement exchange completed")
	}
	found := false
	for _, a := range alertsOf(evs) {
		if a.ReqID == x2.reqID && a.Type == AlertEnforcementMismatch {
			found = true
		}
	}
	if !found {
		t.Fatal("M4 mismatch inside a batch went undetected")
	}
}

// Tampering with any part of a batched-record envelope breaks the proof.
func TestBatchedRecordTamperFailsVerification(t *testing.T) {
	x := cleanExchange("req-b6")
	lb := mustBatch(t, x.pepRequest(), x.pdpRequest(), x.pdpResponse())
	env := newMatchEnv(t, defaultCfg())
	evs := env.mustCall("li-t1", MethodLogBatch, lb.Encode())

	var br BatchedRecord
	ok := false
	for _, e := range evs {
		if e.Type == EventLogStored {
			if v, err := DecodeBatchedRecord(e.Payload); err == nil {
				br, ok = v, true
				break
			}
		}
	}
	if !ok {
		t.Fatal("no batched record event")
	}
	if !br.VerifyInclusion() {
		t.Fatal("genuine proof rejected")
	}
	forged := br
	forged.Record.ReqDigest = crypto.Sum([]byte("forged"))
	if forged.VerifyInclusion() {
		t.Fatal("forged record passed inclusion verification")
	}
	wrongRoot := br
	wrongRoot.Root = crypto.Sum([]byte("elsewhere"))
	if wrongRoot.VerifyInclusion() {
		t.Fatal("proof verified against a foreign root")
	}
	// A plain record payload must not decode as a batched envelope.
	if _, err := DecodeBatchedRecord(x.pepRequest().Encode()); err == nil {
		t.Fatal("plain record decoded as batched envelope")
	}
}
