package drams_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"drams"
	"drams/internal/core"
)

// TestPartitionedCloudLogsRaiseM3 injects an infrastructure failure rather
// than a malicious component: tenant-2's cloud node is partitioned from the
// rest of the federation, so its LI's log transactions never reach the
// block producer. The M3 timeout check must surface the missing edge-side
// records — the paper's resilience claim covers failures of the monitoring
// pipeline itself.
func TestPartitionedCloudLogsRaiseM3(t *testing.T) {
	dep := testDeployment(t, nil)

	// Isolate only the chain node of cloud-2. The access-control path
	// (PEP ↔ PDP) and all other components stay connected, so the
	// exchange itself succeeds — but tenant-2's observations are trapped
	// in the partitioned node's mempool.
	var rest []string
	for _, addr := range dep.Net.Addresses() {
		if addr != "node@cloud-2" {
			rest = append(rest, addr)
		}
	}
	dep.Net.Partition([]string{"node@cloud-2"}, rest)

	req := doctorRequest(dep)
	enf, err := dep.Request("tenant-2", req)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() {
		t.Fatalf("decision = %s", enf.Decision)
	}

	alert, err := dep.WaitForAlert(ctx20(t), req.ID, core.AlertMessageSuppressed)
	if err != nil {
		t.Fatal(err)
	}
	// The missing legs are exactly the tenant-2 (PEP-side) records.
	for _, want := range []string{string(core.KindPEPRequest), string(core.KindPEPResponse)} {
		if !strings.Contains(alert.Detail, want) {
			t.Fatalf("detail %q should list %s", alert.Detail, want)
		}
	}
	if strings.Contains(alert.Detail, string(core.KindPDPRequest)) {
		t.Fatalf("detail %q lists a record that did arrive", alert.Detail)
	}

	// After healing, new traffic flows and matches cleanly again.
	dep.Net.Heal()
	req2 := doctorRequest(dep)
	if _, err := dep.Request("tenant-2", req2); err != nil {
		t.Fatal(err)
	}
	if err := dep.WaitForMatched(ctx20(t), req2.ID); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyserOutageRaisesVerdictMissing severs the analyser's chain node
// mid-operation: decisions keep flowing but no verdicts can be produced, so
// the liveness half of M5 must fire.
func TestAnalyserOutageRaisesVerdictMissing(t *testing.T) {
	dep := testDeployment(t, nil)

	// Warm-up: one clean matched exchange proves the analyser works.
	warm := doctorRequest(dep)
	if _, err := dep.Request("tenant-1", warm); err != nil {
		t.Fatal(err)
	}
	if err := dep.WaitForMatched(ctx20(t), warm.ID); err != nil {
		t.Fatal(err)
	}

	// The analyser runs against cloud-2's node (a different cloud section
	// than the access-control components, per Figure 1). Cut it off.
	var rest []string
	for _, addr := range dep.Net.Addresses() {
		if addr != "node@cloud-2" {
			rest = append(rest, addr)
		}
	}
	dep.Net.Partition([]string{"node@cloud-2"}, rest)

	req := doctorRequest(dep)
	if _, err := dep.Request("tenant-1", req); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.WaitForAlert(ctx20(t), req.ID, core.AlertVerdictMissing); err != nil {
		t.Fatal(err)
	}
}

// TestCrashedLIDetectedByTimeout crashes tenant-1's LI endpoint... the LI
// talks to its node in-process, so instead we model an LI process crash by
// stopping it: its agents' observations fail and M3 fires.
func TestCrashedLIDetectedByTimeout(t *testing.T) {
	dep := testDeployment(t, nil)
	dep.LIs["tenant-1"].Stop()

	req := doctorRequest(dep)
	enf, err := dep.Request("tenant-1", req)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() {
		t.Fatalf("decision = %s (access control must keep working without its logger)", enf.Decision)
	}
	alert, err := dep.WaitForAlert(ctx20(t), req.ID, core.AlertMessageSuppressed)
	if err != nil {
		t.Fatal(err)
	}
	if alert.ReqID != req.ID {
		t.Fatalf("alert = %+v", alert)
	}
}

// TestLossyNetworkStillMatches runs clean traffic over a network that
// delays every message; the pipeline must still converge (blockchain gossip
// and the M3 window absorb the jitter).
func TestLossyNetworkStillMatches(t *testing.T) {
	dep := testDeployment(t, func(c *drams.Config) {
		c.NetLatency = 2 * time.Millisecond
		c.NetJitter = 3 * time.Millisecond
		c.TimeoutBlocks = 40
	})
	for i := 0; i < 5; i++ {
		req := doctorRequest(dep)
		if _, err := dep.Request("tenant-1", req); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		err := dep.WaitForMatched(ctx, req.ID)
		cancel()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if n := dep.Monitor.Stats().AlertsSeen; n != 0 {
		t.Fatalf("alerts on clean jittery traffic: %d", n)
	}
}
