package loadgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"drams/internal/benchfmt"
)

// Threshold is one parsed SLO expression, e.g. `p99<5ms`, `error_rate<0.1%`,
// `dropped<=1%`, `rate>=100`. The grammar is `<metric><op><value>`:
//
//   - metric: a key of the run's metric map (see MetricNames)
//   - op: one of <, <=, >, >=
//   - value: a Go duration ("5ms", "1.5s" — compared in milliseconds), a
//     percentage ("0.1%" — compared as the fraction 0.001), or a bare number
type Threshold struct {
	Expr   string
	Metric string
	Op     string
	Value  float64
}

// MetricNames lists the keys thresholds can reference, with their units.
// Latency quantiles are in milliseconds; error_rate and dropped are
// fractions of scheduled iterations; rate is completed requests per second.
var MetricNames = []string{
	"p50", "p90", "p99", "p999", "mean", "min", "max", // decision latency, ms
	"alert_p50", "alert_p99", "alert_mean", // alert-detection latency, ms
	"error_rate", "dropped", // fractions
	"rate", "count", // throughput
}

var thresholdOps = []string{"<=", ">=", "<", ">"} // two-char ops first

// ParseThreshold parses one threshold expression.
func ParseThreshold(expr string) (Threshold, error) {
	s := strings.TrimSpace(expr)
	if s == "" {
		return Threshold{}, fmt.Errorf("loadgen: empty threshold expression")
	}
	var metric, op, rawVal string
	for _, candidate := range thresholdOps {
		if i := strings.Index(s, candidate); i >= 0 {
			metric, op, rawVal = strings.TrimSpace(s[:i]), candidate, strings.TrimSpace(s[i+len(candidate):])
			break
		}
	}
	if op == "" {
		return Threshold{}, fmt.Errorf("loadgen: threshold %q: no comparison operator (want <metric><op><value> with op one of < <= > >=)", expr)
	}
	if metric == "" {
		return Threshold{}, fmt.Errorf("loadgen: threshold %q: missing metric name", expr)
	}
	known := false
	for _, name := range MetricNames {
		if metric == name {
			known = true
			break
		}
	}
	if !known {
		return Threshold{}, fmt.Errorf("loadgen: threshold %q: unknown metric %q (known: %s)",
			expr, metric, strings.Join(MetricNames, ", "))
	}
	if rawVal == "" {
		return Threshold{}, fmt.Errorf("loadgen: threshold %q: missing value", expr)
	}
	val, err := parseThresholdValue(rawVal)
	if err != nil {
		return Threshold{}, fmt.Errorf("loadgen: threshold %q: %w", expr, err)
	}
	return Threshold{Expr: metric + op + rawVal, Metric: metric, Op: op, Value: val}, nil
}

// parseThresholdValue maps the value grammar onto the metric units:
// durations become milliseconds, percentages become fractions, bare
// numbers pass through.
func parseThresholdValue(s string) (float64, error) {
	if strings.HasSuffix(s, "%") {
		pct, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			return 0, fmt.Errorf("cannot parse value %q: bad percentage", s)
		}
		return pct / 100, nil
	}
	// Bare numbers first: ParseDuration rejects them (except "0"), and a
	// unitless value must not be guessed at.
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		if d < 0 {
			return 0, fmt.Errorf("negative duration %q", s)
		}
		return float64(d) / float64(time.Millisecond), nil
	}
	return 0, fmt.Errorf("cannot parse value %q (want a number, duration, or percentage)", s)
}

// ParseThresholds parses a list of expressions, failing on the first bad one.
func ParseThresholds(exprs []string) ([]Threshold, error) {
	out := make([]Threshold, 0, len(exprs))
	for _, e := range exprs {
		t, err := ParseThreshold(e)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Evaluate checks the threshold against a metric map and returns the
// verdict. A metric absent from the map fails the threshold (a gate that
// cannot be measured must not silently pass).
func (t Threshold) Evaluate(metrics map[string]float64) benchfmt.ThresholdVerdict {
	v := benchfmt.ThresholdVerdict{Expr: t.Expr, Metric: t.Metric}
	actual, ok := metrics[t.Metric]
	if !ok {
		return v // Pass=false
	}
	v.Actual = actual
	switch t.Op {
	case "<":
		v.Pass = actual < t.Value
	case "<=":
		v.Pass = actual <= t.Value
	case ">":
		v.Pass = actual > t.Value
	case ">=":
		v.Pass = actual >= t.Value
	}
	return v
}

// EvaluateThresholds evaluates every threshold; ok is true only when all
// pass. Verdicts keep the input order.
func EvaluateThresholds(ts []Threshold, metrics map[string]float64) (verdicts []benchfmt.ThresholdVerdict, ok bool) {
	ok = true
	for _, t := range ts {
		v := t.Evaluate(metrics)
		verdicts = append(verdicts, v)
		ok = ok && v.Pass
	}
	return verdicts, ok
}

// FormatVerdicts renders verdicts for terminal output, one per line.
func FormatVerdicts(verdicts []benchfmt.ThresholdVerdict) string {
	var sb strings.Builder
	for _, v := range verdicts {
		mark := "PASS"
		if !v.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&sb, "  %s  %-20s actual=%.4f\n", mark, v.Expr, v.Actual)
	}
	return sb.String()
}

// sortedMetricKeys is a test/debug helper: metric map keys in stable order.
func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
