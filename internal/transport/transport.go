// Package transport defines the wire abstraction connecting every DRAMS
// component — blockchain gossip, PEP→PDP access calls, agent→LI log
// submissions and alert pushes. The rest of the system talks only to the
// Transport and Endpoint interfaces; concrete backends decide what "the
// network" actually is:
//
//   - netsim.Network: the in-process simulator with controllable latency,
//     jitter, loss, partitions and link faults (single-process federations,
//     deterministic tests, fault-injection experiments);
//   - tcp.Transport: a real length-prefixed-frame TCP stack with persistent
//     connections, per-peer write queues and reconnect, so a federation can
//     run as genuinely separate OS processes (cmd/drams-node daemon mode).
//
// Addressing is logical: endpoints are named strings ("node@cloud-1",
// "pep@tenant-1", "pdp@infrastructure"), and a backend maps names to
// whatever locators it uses underneath. Both backends must satisfy the
// semantics pinned down by the transporttest conformance suite.
package transport

import (
	"context"
	"errors"
)

// Sentinel errors shared by all transport backends so callers can use
// errors.Is without knowing which backend is underneath. Backends may wrap
// these with context.
var (
	// ErrUnknownAddress is returned when sending to an unregistered address.
	ErrUnknownAddress = errors.New("transport: unknown address")
	// ErrAddressInUse is returned when registering a duplicate address.
	ErrAddressInUse = errors.New("transport: address already registered")
	// ErrDropped is returned to callers when the transport dropped the
	// request or the reply (Call only; one-way sends are dropped silently,
	// as on a real network).
	ErrDropped = errors.New("transport: message dropped")
	// ErrNoHandler is returned when the peer has no handler for a call kind.
	ErrNoHandler = errors.New("transport: no handler for message kind")
	// ErrCrashed is returned when the local endpoint is crashed.
	ErrCrashed = errors.New("transport: endpoint crashed")
	// ErrClosed is returned after Transport.Close.
	ErrClosed = errors.New("transport: closed")
)

// Message is the unit of delivery handed to catch-all handlers.
type Message struct {
	From    string
	To      string
	Kind    string
	Payload []byte
}

// Stats aggregates transport-level traffic counters. For multi-process
// backends the counters are per-process: Sent counts local egress,
// Delivered local ingress dispatches.
type Stats struct {
	Sent      int64
	Delivered int64
	Dropped   int64
	Bytes     int64
	// Reconnects counts re-established peer links after a connection was
	// lost (always 0 on the in-process simulator, which has no links).
	Reconnects int64
}

// Endpoint is one addressable participant on a transport. Implementations
// must be safe for concurrent use: handlers may be invoked concurrently
// with each other and with outbound operations.
type Endpoint interface {
	// Addr returns the endpoint's logical address.
	Addr() string
	// Send transmits a one-way message. Loss is silent by design: an error
	// is returned only for local conditions (crashed endpoint, unknown
	// destination, closed transport), never for in-flight loss.
	Send(to, kind string, payload []byte) error
	// Broadcast sends the message to every known address except the sender
	// and any listed exclusions. Best effort.
	Broadcast(kind string, payload []byte, except ...string)
	// Call sends a request and waits for the reply, ctx cancellation or
	// transport failure. Remote handler errors come back as errors; the
	// ErrNoHandler and ErrDropped sentinels survive the wire (errors.Is).
	Call(ctx context.Context, to, kind string, payload []byte) ([]byte, error)
	// OnMessage registers a handler for one-way messages of the given kind.
	OnMessage(kind string, fn func(from string, payload []byte))
	// OnCall registers a request handler for the given kind.
	OnCall(kind string, fn func(from string, payload []byte) ([]byte, error))
	// OnDefault registers a catch-all handler invoked for one-way messages
	// with no kind-specific handler.
	OnDefault(fn func(msg Message))
	// Crash makes the endpoint drop all traffic (in and out) until Restart,
	// simulating a crashed component without tearing down its registration.
	Crash()
	// Restart brings a crashed endpoint back.
	Restart()
}

// Transport connects endpoints. A single process may host many logical
// endpoints on one transport.
type Transport interface {
	// Register creates an endpoint bound to the logical address.
	Register(addr string) (Endpoint, error)
	// Unregister removes addr from the transport.
	Unregister(addr string)
	// Addresses lists every known endpoint address — local ones and, for
	// multi-process backends, addresses learned from connected peers.
	Addresses() []string
	// Stats returns a snapshot of the traffic counters.
	Stats() Stats
	// Close shuts the transport down; subsequent operations fail with
	// ErrClosed.
	Close() error
}

// RemoteError maps a wire error string back onto the sentinel errors where
// possible, so callers can use errors.Is across the network boundary. Both
// backends funnel remote handler errors through this.
func RemoteError(s string) error {
	switch s {
	case ErrNoHandler.Error():
		return ErrNoHandler
	case ErrDropped.Error():
		return ErrDropped
	default:
		return errors.New(s)
	}
}
