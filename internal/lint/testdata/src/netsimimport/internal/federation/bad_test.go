package federation

import (
	"testing"

	"fix/internal/netsim" // test files may drive the simulator freely
)

func TestUsesSim(t *testing.T) {
	_ = netsim.New(netsim.Config{Synchronous: true, Seed: 1})
}
