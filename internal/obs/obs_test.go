package obs

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"drams/internal/metrics"
)

func TestWriteExpositionGolden(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Help("drams_node_blocks_accepted_total", "Blocks accepted onto the best chain.")
	reg.Help("drams_node_mempool_len", "Pending transactions in the mempool.")
	reg.Counter("drams_node_blocks_accepted_total").Add(7)
	reg.Gauge("drams_node_mempool_len").Set(3)

	g := NewGatherer(reg)
	g.Register(func() []metrics.Sample {
		return []metrics.Sample{
			C(`drams_monitor_alerts_total{type="M1"}`, "Alerts observed, by M-check type.", 2),
			C(`drams_monitor_alerts_total{type="M3"}`, "Alerts observed, by M-check type.", 5),
		}
	})

	var sb strings.Builder
	if err := WriteExposition(&sb, g.Gather()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP drams_monitor_alerts_total Alerts observed, by M-check type.`,
		`# TYPE drams_monitor_alerts_total counter`,
		`drams_monitor_alerts_total{type="M1"} 2`,
		`drams_monitor_alerts_total{type="M3"} 5`,
		`# HELP drams_node_blocks_accepted_total Blocks accepted onto the best chain.`,
		`# TYPE drams_node_blocks_accepted_total counter`,
		`drams_node_blocks_accepted_total 7`,
		`# HELP drams_node_mempool_len Pending transactions in the mempool.`,
		`# TYPE drams_node_mempool_len gauge`,
		`drams_node_mempool_len 3`,
		``,
	}, "\n")
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteExpositionHistogram(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Help("drams_trace_stage_ms", "Span durations.")
	h := reg.Histogram(`drams_trace_stage_ms{stage="pep.decide"}`)
	for _, v := range []float64{0.5, 0.9, 1.5, 3.0} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := WriteExposition(&sb, NewGatherer(reg).Gather()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE drams_trace_stage_ms histogram",
		`drams_trace_stage_ms_bucket{stage="pep.decide",le="1"} 2`,
		`drams_trace_stage_ms_bucket{stage="pep.decide",le="2"} 3`,
		`drams_trace_stage_ms_bucket{stage="pep.decide",le="4"} 4`,
		`drams_trace_stage_ms_bucket{stage="pep.decide",le="+Inf"} 4`,
		`drams_trace_stage_ms_sum{stage="pep.decide"} 5.9`,
		`drams_trace_stage_ms_count{stage="pep.decide"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLint(t *testing.T) {
	clean := []metrics.Sample{
		C("drams_x_total", "help", 1),
		G("drams_y", "help", 1),
		H(`drams_z_ms{stage="a"}`, "help", metrics.HistExport{}),
	}
	if errs := Lint(clean); errs != nil {
		t.Fatalf("clean set flagged: %v", errs)
	}
	bad := []metrics.Sample{
		C("drams_counter", "help", 1),             // counter without _total
		G("drams_gauge_total", "help", 1),         // gauge with _total
		C("drams_nohelp_total", "", 1),            // missing help
		C("1bad_total", "help", 1),                // invalid name
		C(`drams_l_total{bad-label="x"}`, "h", 1), // invalid label name
		{Name: "drams_dual", Kind: metrics.KindGauge, Help: "h"},
	}
	errs := Lint(append(bad, metrics.Sample{Name: "drams_dual", Kind: metrics.KindHistogram, Help: "h"}))
	if len(errs) < 6 {
		t.Fatalf("want >= 6 lint errors, got %d: %v", len(errs), errs)
	}
}

func TestHealthReady(t *testing.T) {
	h := NewHealth()
	ok, fails := h.Ready()
	if !ok || fails != nil {
		t.Fatalf("empty health not ready: %v", fails)
	}
	syncing := true
	h.AddReady("chain", func() error {
		if syncing {
			return errors.New("syncing: height 3 < best seen 10")
		}
		return nil
	})
	h.AddReady("watcher", func() error { return nil })
	if ok, fails = h.Ready(); ok || len(fails) != 1 || !strings.Contains(fails[0], "chain: syncing") {
		t.Fatalf("ready=%v fails=%v", ok, fails)
	}
	syncing = false
	if ok, _ = h.Ready(); !ok {
		t.Fatal("still not ready after check cleared")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Help("drams_up_total", "Test counter.")
	reg.Counter("drams_up_total").Inc()
	health := NewHealth()
	ready := false
	health.AddReady("chain", func() error {
		if !ready {
			return errors.New("catching up")
		}
		return nil
	})
	srv := httptest.NewServer(Handler(NewGatherer(reg), health))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "drams_up_total 1") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "chain: catching up") {
		t.Fatalf("/readyz while syncing: %d %q", code, body)
	}
	ready = true
	if code, body := get("/readyz"); code != 200 || body != "ok\n" {
		t.Fatalf("/readyz after catch-up: %d %q", code, body)
	}
}

func TestTracerTimeline(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := NewTracer(reg, 2)
	base := time.Unix(1000, 0)
	tr.Span("req-1", StagePEPDecide, base, 2*time.Millisecond)
	tr.Span("req-1", StageChainAnchor, base.Add(5*time.Millisecond), 40*time.Millisecond)
	tr.Span("req-1", StagePDPEval, base.Add(time.Millisecond), 500*time.Microsecond)

	spans := tr.Trace("req-1")
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	order := []string{StagePEPDecide, StagePDPEval, StageChainAnchor}
	for i, want := range order {
		if spans[i].Stage != want {
			t.Fatalf("span %d = %s, want %s (timeline not start-sorted)", i, spans[i].Stage, want)
		}
	}
	// Per-stage histograms land in the registry under the stage label.
	if reg.Histogram(`drams_trace_stage_ms{stage="pep.decide"}`).Count() != 1 {
		t.Fatal("stage histogram not recorded")
	}
	// FIFO eviction at capacity 2: adding traces 2 and 3 evicts req-1.
	tr.Span("req-2", StagePEPDecide, base, time.Millisecond)
	tr.Span("req-3", StagePEPDecide, base, time.Millisecond)
	if tr.Trace("req-1") != nil {
		t.Fatal("req-1 not evicted at capacity")
	}
	if tr.Trace("req-3") == nil {
		t.Fatal("req-3 missing")
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Span("x", StagePEPDecide, time.Now(), time.Millisecond) // must not panic
	if tr.Trace("x") != nil {
		t.Fatal("nil tracer returned spans")
	}
}

// blockedWriter blocks every Write until released, emulating a stalled
// scraper that accepted the TCP connection but never reads.
type blockedWriter struct {
	release chan struct{}
	header  http.Header
}

func (b *blockedWriter) Header() http.Header { return b.header }
func (b *blockedWriter) WriteHeader(int)     {}
func (b *blockedWriter) Write(p []byte) (int, error) {
	<-b.release
	return len(p), nil
}

// TestStalledScraperHoldsNoLocks proves snapshot-then-serve: once /metrics
// has gathered its snapshot, a scraper stalled mid-write holds no lock any
// instrumentation call could contend on — counters, histograms and further
// Gather calls all proceed while the first scrape is still blocked.
func TestStalledScraperHoldsNoLocks(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Help("drams_decides_total", "Decides executed.")
	reg.Help("drams_decide_ms", "Decide latency.")
	c := reg.Counter("drams_decides_total")
	h := reg.Histogram("drams_decide_ms")
	g := NewGatherer(reg)
	var statsMu sync.Mutex // stands in for a component's Stats() lock
	g.Register(func() []metrics.Sample {
		statsMu.Lock()
		defer statsMu.Unlock()
		return []metrics.Sample{G("drams_component_gauge", "Component state.", 1)}
	})
	handler := Handler(g, NewHealth())

	bw := &blockedWriter{release: make(chan struct{}), header: make(http.Header)}
	scrapeDone := make(chan struct{})
	go func() {
		req := httptest.NewRequest("GET", "/metrics", nil)
		handler.ServeHTTP(bw, req)
		close(scrapeDone)
	}()

	// The "hot path": instrumentation plus the component lock the
	// collector samples. All of it must complete while the scrape is
	// still wedged in Write.
	hot := make(chan struct{})
	go func() {
		for i := 0; i < 100000; i++ {
			c.Inc()
			h.Observe(float64(i % 7))
			statsMu.Lock()
			statsMu.Unlock() //nolint:staticcheck // contention probe
		}
		// A concurrent scrape must also complete: Gather shares no state
		// with the stalled writer.
		_ = g.Gather()
		close(hot)
	}()

	select {
	case <-hot:
	case <-time.After(10 * time.Second):
		t.Fatal("hot path blocked behind a stalled scraper")
	}
	select {
	case <-scrapeDone:
		t.Fatal("scrape finished early; writer was supposed to be stalled")
	default:
	}
	close(bw.release)
	select {
	case <-scrapeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("scrape did not finish after release")
	}
}
