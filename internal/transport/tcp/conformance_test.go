package tcp

import (
	"testing"

	"drams/internal/transport"
	"drams/internal/transport/transporttest"
)

// newCluster builds n TCP transports on loopback, peered into a full mesh:
// each transport seeds connections to all previously created ones, and the
// hello handshake merges the address tables.
func newCluster(t *testing.T, n int) []transport.Transport {
	t.Helper()
	out := make([]transport.Transport, n)
	var seeds []string
	for i := 0; i < n; i++ {
		tr, err := New(Config{ListenAddr: "127.0.0.1:0", Peers: append([]string(nil), seeds...)})
		if err != nil {
			t.Fatalf("tcp transport %d: %v", i, err)
		}
		t.Cleanup(func() { tr.Close() })
		out[i] = tr
		seeds = append(seeds, tr.Advertise())
	}
	return out
}

// TestTransportConformance runs the shared conformance suite over real
// loopback sockets: every Send/Call between endpoints hosted on different
// transports crosses a TCP connection.
func TestTransportConformance(t *testing.T) {
	transporttest.Run(t, newCluster)
}
