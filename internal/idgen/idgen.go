// Package idgen produces unique identifiers for requests, transactions and
// log entries. Generators are seedable so that whole-system simulations are
// reproducible, and every generated identifier is lexically sortable by
// generation order within a generator.
package idgen

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// ID is a 16-byte identifier rendered as 32 hex characters.
type ID [16]byte

// String renders the ID as lowercase hex.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short returns the first 8 hex characters, for logs and debug output.
func (id ID) Short() string { return hex.EncodeToString(id[:4]) }

// IsZero reports whether the ID is the all-zero value.
func (id ID) IsZero() bool { return id == ID{} }

// Parse decodes a 32-character hex string into an ID.
func Parse(s string) (ID, error) {
	var id ID
	if len(s) != 32 {
		return id, fmt.Errorf("idgen: parse %q: want 32 hex chars, got %d", s, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("idgen: parse %q: %w", s, err)
	}
	copy(id[:], b)
	return id, nil
}

// Generator yields unique IDs. It is safe for concurrent use.
type Generator struct {
	mu    sync.Mutex
	state uint64 // splitmix64 state
	ctr   uint64
}

// New returns a Generator seeded from crypto/rand.
func New() *Generator {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable for unique ID generation;
		// fall back to a fixed seed rather than aborting the process.
		binary.BigEndian.PutUint64(b[:], 0x9e3779b97f4a7c15)
	}
	return NewSeeded(binary.BigEndian.Uint64(b[:]))
}

// NewSeeded returns a deterministic Generator: two generators built with the
// same seed yield the same ID sequence.
func NewSeeded(seed uint64) *Generator {
	return &Generator{state: seed}
}

// Next returns the next unique ID. The first 8 bytes are a monotonically
// increasing counter (so IDs sort by generation order); the last 8 are a
// splitmix64 output keyed by the seed.
func (g *Generator) Next() ID {
	g.mu.Lock()
	g.ctr++
	ctr := g.ctr
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	g.mu.Unlock()

	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31

	var id ID
	binary.BigEndian.PutUint64(id[0:8], ctr)
	binary.BigEndian.PutUint64(id[8:16], z)
	return id
}

// Rand is a small, fast, seedable PRNG (xoshiro256**) used by simulations
// that need reproducible randomness without importing math/rand's global
// state. It is safe for concurrent use.
type Rand struct {
	mu sync.Mutex
	s  [4]uint64
}

// NewRand returns a Rand seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	// Expand the seed through splitmix64 per the xoshiro authors' advice.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0,
// mirroring math/rand semantics.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("idgen: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bytes fills a new slice of length n with pseudo-random bytes.
func (r *Rand) Bytes(n int) []byte {
	b := make([]byte, n)
	var word uint64
	for i := range b {
		if i%8 == 0 {
			word = r.Uint64()
		}
		b[i] = byte(word >> (8 * (i % 8)))
	}
	return b
}

// Sequence is a convenience atomic counter for naming things uniquely within
// a process (e.g. node identifiers in tests).
type Sequence struct{ n atomic.Uint64 }

// Next returns the next counter value, starting at 1.
func (s *Sequence) Next() uint64 { return s.n.Add(1) }
