// Package metrics implements the lightweight instrumentation used by the
// DRAMS experiment harness: counters, gauges and latency histograms with
// percentile summaries. All types are safe for concurrent use and the zero
// values of Counter and Gauge are ready to use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use.
type Counter struct{ n atomic.Int64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which must be >= 0) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a value that can go up and down. The zero value is ready to use.
type Gauge struct{ n atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// Histogram records observations and reports percentile summaries. It keeps
// HDR-style log-bucketed counts — each power of two is split into 2^subBits
// linear sub-buckets — so quantiles carry a bounded relative error
// (<= 2^-subBits ≈ 0.1%) no matter how many samples are observed or how
// skewed they are. Memory is proportional to the number of distinct buckets
// touched (the span of the data), never to the sample count.
type Histogram struct {
	mu         sync.Mutex
	buckets    map[int32]int64
	count      int64
	sum, sumSq float64
	min, max   float64
}

// subBits fixes the per-octave resolution: 1024 linear sub-buckets per
// power of two bound the relative quantile error at 1/1024.
const subBits = 10

// NewHistogram returns an empty Histogram. The parameter is retained for
// API compatibility with the old reservoir-sampling implementation and is
// ignored: log-bucketed counts are exact in count and bounded in memory
// without a sample cap.
func NewHistogram(int) *Histogram {
	return &Histogram{
		buckets: make(map[int32]int64),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// bucketKey maps a value to its log-bucket. Zero (and non-finite values,
// which are clamped) get the reserved key 0; negative values mirror the
// positive layout with a negative key.
func bucketKey(v float64) int32 {
	if v == 0 || math.IsNaN(v) {
		return 0
	}
	neg := v < 0
	if neg {
		v = -v
	}
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	if math.IsInf(v, 0) {
		frac, exp = 0.5, 1025
	}
	sub := int32((frac*2 - 1) * (1 << subBits)) // ∈ [0, 2^subBits)
	if sub >= 1<<subBits {
		sub = 1<<subBits - 1
	}
	key := (int32(exp+1100) << subBits) | sub
	if neg {
		return -key
	}
	return key
}

// bucketBounds returns the [lo, hi) value range represented by a key.
func bucketBounds(key int32) (lo, hi float64) {
	if key == 0 {
		return 0, 0
	}
	neg := key < 0
	if neg {
		key = -key
	}
	exp := int(key>>subBits) - 1100
	sub := float64(key & (1<<subBits - 1))
	lo = math.Ldexp(1+sub/(1<<subBits), exp-1)
	hi = math.Ldexp(1+(sub+1)/(1<<subBits), exp-1)
	if neg {
		return -hi, -lo
	}
	return lo, hi
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	h.sumSq += v * v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketKey(v)]++
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations (0 if none).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 if none).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 if none).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// bucketRow is one populated bucket, ordered by represented value.
type bucketRow struct {
	lo, hi float64
	count  int64
}

// sortedBuckets snapshots the populated buckets in ascending value order.
// Callers must hold h.mu.
func (h *Histogram) sortedBuckets() []bucketRow {
	rows := make([]bucketRow, 0, len(h.buckets))
	for key, c := range h.buckets {
		lo, hi := bucketBounds(key)
		rows = append(rows, bucketRow{lo: lo, hi: hi, count: c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].lo < rows[j].lo })
	return rows
}

// quantileFrom walks the cumulative bucket counts to the q-quantile rank
// and interpolates linearly inside the landing bucket. Results are clamped
// to the exact observed [min, max].
func quantileFrom(rows []bucketRow, count int64, mn, mx float64, q float64) float64 {
	if count == 0 {
		return 0
	}
	if q <= 0 {
		return mn
	}
	if q >= 1 {
		return mx
	}
	rank := q * float64(count-1)
	cum := int64(0)
	for _, r := range rows {
		if rank < float64(cum+r.count) {
			within := (rank - float64(cum) + 0.5) / float64(r.count)
			v := r.lo + (r.hi-r.lo)*within
			return math.Max(mn, math.Min(mx, v))
		}
		cum += r.count
	}
	return mx
}

// Quantile returns the q-quantile (0 <= q <= 1) with relative error bounded
// by the bucket resolution (~0.1%). Returns 0 when empty; q=0 and q=1
// return the exact min and max.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantileFrom(h.sortedBuckets(), h.count, h.min, h.max, q)
}

// Buckets returns the number of populated log-buckets — the memory bound of
// the histogram, proportional to the data's span, not its volume.
func (h *Histogram) Buckets() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.buckets)
}

// octaveUpper returns the smallest power-of-two upper bound that covers
// every value in the bucket identified by key. Coarsening the 1024
// sub-buckets per octave down to one exposition bucket per octave keeps
// cumulative exports bounded (one bucket per power of two spanned by the
// data) while staying a valid upper bound for Prometheus `le` semantics.
func octaveUpper(key int32) float64 {
	if key == 0 {
		return 0
	}
	neg := key < 0
	if neg {
		key = -key
	}
	exp := int(key>>subBits) - 1100
	if neg {
		// Negative bucket holds values in (-2^exp, -2^(exp-1)].
		return -math.Ldexp(1, exp-1)
	}
	// Positive bucket holds values in [2^(exp-1), 2^exp).
	return math.Ldexp(1, exp)
}

// HistBucket is one cumulative exposition bucket: the count of
// observations with value <= LE.
type HistBucket struct {
	LE    float64
	Count int64
}

// HistExport is a Prometheus-shaped snapshot of a Histogram: cumulative
// buckets at power-of-two upper bounds derived from the log-bucketed
// storage, plus the exact running count and sum.
type HistExport struct {
	Count   int64
	Sum     float64
	Buckets []HistBucket // ascending LE, cumulative counts; excludes +Inf
}

// Export snapshots the histogram in cumulative-bucket form. The number of
// buckets is bounded by the octave span of the data (one per power of two
// touched), never by the sample count.
func (h *Histogram) Export() HistExport {
	h.mu.Lock()
	perBound := make(map[float64]int64, len(h.buckets))
	for key, c := range h.buckets {
		perBound[octaveUpper(key)] += c
	}
	out := HistExport{Count: h.count, Sum: h.sum}
	h.mu.Unlock()

	bounds := make([]float64, 0, len(perBound))
	for b := range perBound {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	cum := int64(0)
	for _, b := range bounds {
		cum += perBound[b]
		out.Buckets = append(out.Buckets, HistBucket{LE: b, Count: cum})
	}
	return out
}

// Summary is a point-in-time percentile snapshot of a Histogram.
type Summary struct {
	Count               int64
	Mean                float64
	Min, Max            float64
	P50, P90, P99, P999 float64
	StdDev              float64
	TotalObservation    float64
}

// Snapshot computes a Summary.
func (h *Histogram) Snapshot() Summary {
	h.mu.Lock()
	count := h.count
	sum, sumSq := h.sum, h.sumSq
	rows := h.sortedBuckets()
	mn, mx := h.min, h.max
	h.mu.Unlock()

	s := Summary{Count: count, TotalObservation: sum}
	if count == 0 {
		return s
	}
	s.Mean = sum / float64(count)
	s.Min, s.Max = mn, mx
	q := func(p float64) float64 { return quantileFrom(rows, count, mn, mx, p) }
	s.P50, s.P90, s.P99, s.P999 = q(0.50), q(0.90), q(0.99), q(0.999)
	if count > 1 {
		// Sample variance from the exact running moments.
		variance := (sumSq - float64(count)*s.Mean*s.Mean) / float64(count-1)
		if variance > 0 {
			s.StdDev = math.Sqrt(variance)
		}
	}
	return s
}

// String renders the summary as a compact single line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f min=%.3f max=%.3f",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Min, s.Max)
}

// Registry groups named metrics for an experiment run.
//
// A metric name may carry a Prometheus-style label suffix,
// e.g. `drams_monitor_alerts_total{type="M1"}`: series sharing the part
// before the brace form one metric family for exposition. Help text is
// registered per family with Help.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string // keyed by family name
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// SplitSeries splits a series name into its family (the metric name
// proper) and the optional `{label="value",...}` suffix.
func SplitSeries(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// Help registers help text for a metric family (the series name without
// any label suffix). Registering twice keeps the first non-empty text.
func (r *Registry) Help(family, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.help[family]; !ok && help != "" {
		r.help[family] = help
	}
}

// HelpFor returns the registered help text for a family ("" if none).
func (r *Registry) HelpFor(family string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[family]
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(0)
		r.histograms[name] = h
	}
	return h
}

// Kind identifies a metric's type for exposition.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Sample is one series snapshotted from a Registry (or synthesized by a
// collector): a full series name, its kind, help text for the family, and
// either a scalar value or a histogram export.
type Sample struct {
	Name  string // full series name, may include a {label="v"} suffix
	Kind  Kind
	Help  string
	Value int64       // counter/gauge value
	Hist  *HistExport // set for KindHistogram
}

// Samples snapshots every registered metric, sorted by family then full
// series name, so exposition output is deterministic. Histograms are
// exported in cumulative-bucket form.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		family, _ := SplitSeries(name)
		out = append(out, Sample{Name: name, Kind: KindCounter, Help: r.help[family], Value: c.Value()})
	}
	for name, g := range r.gauges {
		family, _ := SplitSeries(name)
		out = append(out, Sample{Name: name, Kind: KindGauge, Help: r.help[family], Value: g.Value()})
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	help := make(map[string]string, len(hists))
	for name := range hists {
		family, _ := SplitSeries(name)
		help[family] = r.help[family]
	}
	r.mu.Unlock()

	// Histogram export takes each histogram's own lock; do it outside the
	// registry lock so a scrape never serializes against metric creation.
	for name, h := range hists {
		family, _ := SplitSeries(name)
		ex := h.Export()
		out = append(out, Sample{Name: name, Kind: KindHistogram, Help: help[family], Hist: &ex})
	}
	SortSamples(out)
	return out
}

// SortSamples orders samples by family name, then by full series name —
// the exposition order (series of one family must be contiguous).
func SortSamples(s []Sample) {
	sort.Slice(s, func(i, j int) bool {
		fi, _ := SplitSeries(s[i].Name)
		fj, _ := SplitSeries(s[j].Name)
		if fi != fj {
			return fi < fj
		}
		return s[i].Name < s[j].Name
	})
}

// Dump renders all metrics one per line, sorted by metric name (ties
// broken by the type keyword) — deterministic regardless of map order or
// registration order.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	type row struct{ name, line string }
	rows := make([]row, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		rows = append(rows, row{name, fmt.Sprintf("counter %s = %d", name, c.Value())})
	}
	for name, g := range r.gauges {
		rows = append(rows, row{name, fmt.Sprintf("gauge %s = %d", name, g.Value())})
	}
	for name, h := range r.histograms {
		rows = append(rows, row{name, fmt.Sprintf("hist %s: %s", name, h.Snapshot())})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].name != rows[j].name {
			return rows[i].name < rows[j].name
		}
		return rows[i].line < rows[j].line
	})
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = r.line
	}
	return strings.Join(lines, "\n")
}
