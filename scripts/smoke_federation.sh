#!/usr/bin/env bash
# smoke_federation.sh — multi-process federation smoke test.
#
# Starts three drams-node daemons on loopback (infrastructure + two edge
# tenants), waits until every process reports chain height >= TARGET_HEIGHT
# and each edge has served at least one end-to-end access decision, then
# tears everything down. Exits non-zero on any failure or on the hard
# timeout.
#
# Usage: scripts/smoke_federation.sh [bin-dir]
set -u

TIMEOUT="${SMOKE_TIMEOUT:-120}"
TARGET_HEIGHT="${SMOKE_HEIGHT:-5}"
PORT_BASE="${SMOKE_PORT_BASE:-19701}"
WORKDIR="$(mktemp -d)"
BIN="${1:-$WORKDIR}/drams-node"

cleanup() {
    [ -n "${PIDS:-}" ] && kill $PIDS 2>/dev/null
    wait 2>/dev/null
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

if [ ! -x "$BIN" ]; then
    echo "building drams-node..."
    go build -o "$BIN" ./cmd/drams-node || exit 1
fi

P1=$((PORT_BASE)) P2=$((PORT_BASE + 1)) P3=$((PORT_BASE + 2))
A1="127.0.0.1:$P1" A2="127.0.0.1:$P2" A3="127.0.0.1:$P3"
COMMON="-federation tenant-1,tenant-2 -seed 7 -difficulty 8 -run-for ${TIMEOUT}s"

"$BIN" -listen "$A1" -join "$A2,$A3" -tenant infrastructure $COMMON \
    >"$WORKDIR/infra.log" 2>&1 &
PIDS="$!"
"$BIN" -listen "$A2" -join "$A1,$A3" -tenant tenant-1 -requests 3 $COMMON \
    >"$WORKDIR/t1.log" 2>&1 &
PIDS="$PIDS $!"
"$BIN" -listen "$A3" -join "$A1,$A2" -tenant tenant-2 -requests 3 $COMMON \
    >"$WORKDIR/t2.log" 2>&1 &
PIDS="$PIDS $!"

echo "3 daemons up (logs in $WORKDIR), waiting for height >= $TARGET_HEIGHT and decisions..."

deadline=$(( $(date +%s) + TIMEOUT ))
ok=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    heights_ok=true
    for log in infra t1 t2; do
        h=$(grep -o 'status height=[0-9]*' "$WORKDIR/$log.log" 2>/dev/null | tail -1 | grep -o '[0-9]*$')
        [ -n "$h" ] && [ "$h" -ge "$TARGET_HEIGHT" ] || heights_ok=false
    done
    decisions_ok=true
    for log in t1 t2; do
        grep -q 'decision req=.*decision=Permit' "$WORKDIR/$log.log" 2>/dev/null || decisions_ok=false
    done
    if $heights_ok && $decisions_ok; then
        ok=1
        break
    fi
    sleep 1
done

if [ -z "$ok" ]; then
    echo "SMOKE FAILED: criteria not met within ${TIMEOUT}s" >&2
    for log in infra t1 t2; do
        echo "--- $log.log (tail) ---" >&2
        tail -20 "$WORKDIR/$log.log" >&2
    done
    exit 1
fi

# Convergence: the last reported state digests must agree across processes.
digests=$(for log in infra t1 t2; do
    grep -o 'digest=[0-9a-f]*' "$WORKDIR/$log.log" | tail -1
done | sort -u | wc -l)
if [ "$digests" -ne 1 ]; then
    # Digests race the sampling instant; give the slowest node a moment and
    # re-check on fresh status lines.
    sleep 3
    digests=$(for log in infra t1 t2; do
        grep -o 'digest=[0-9a-f]*' "$WORKDIR/$log.log" | tail -1
    done | sort -u | wc -l)
fi

kill $PIDS 2>/dev/null
wait 2>/dev/null
PIDS=""

if [ "$digests" -ne 1 ]; then
    echo "SMOKE FAILED: state digests did not converge" >&2
    exit 1
fi

echo "SMOKE OK: 3-process federation mined to height >= $TARGET_HEIGHT, served decisions on both edges, and converged"
exit 0
