package blockchain

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"drams/internal/contract"
	"drams/internal/netsim"
	"drams/internal/store"
)

// TestMineLoopHeadMovedMidSnapshot is the regression test for the mining
// loop's stale-snapshot race: a block imported between the mempool
// collection and the head read used to make the miner build
// already-confirmed transactions onto the new head, a guaranteed rejection
// after the PoW was paid. The test hook injects a competing import exactly
// into that window.
func TestMineLoopHeadMovedMidSnapshot(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 9})
	defer net.Close()
	node, err := NewNode(NodeConfig{
		Name:    "miner",
		Chain:   testChainConfig(t, alice),
		Network: net,
		Mine:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	tx, err := NewTransaction(alice, 1, putCall("race", "v"))
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	raced := make(chan struct{})
	node.testAfterCollect = func() {
		if len(node.pool.Collect(16, node.chain.AccountNonces())) == 0 {
			return // not our tx yet (empty warm-up iterations)
		}
		once.Do(func() {
			// A peer's block carrying the same tx lands right between the
			// miner's collection and its head re-check.
			head, _ := node.chain.Head()
			b := mineChild(t, node.chain, head, tx)
			if err := node.chain.AddBlock(b); err != nil {
				t.Errorf("competing import: %v", err)
			}
			close(raced)
		})
	}
	node.Start()
	if err := node.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-raced:
	case <-time.After(10 * time.Second):
		t.Fatal("race window never hit")
	}
	waitFor(t, 5*time.Second, func() bool {
		_, _, err := node.chain.Receipt(tx.ID())
		return err == nil
	}, "tx confirmed")
	// The miner must have detected the moved head and restarted instead of
	// mining the confirmed tx again onto the new head.
	if st := node.Stats(); st.BlocksRejected != 0 {
		t.Fatalf("miner produced %d rejected blocks", st.BlocksRejected)
	}
	if st := node.Stats(); st.MiningCancelled == 0 {
		t.Fatalf("expected at least one cancelled attempt, stats: %+v", st)
	}
}

// TestSubscriptionDropCounters pins the corrected SubscribeEvents contract:
// delivery is best effort, drops are counted per subscriber and in the
// node aggregate.
func TestSubscriptionDropCounters(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 3})
	defer net.Close()
	node, err := NewNode(NodeConfig{Name: "n", Chain: testChainConfig(t, alice), Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	slow := node.Subscribe(1)
	defer slow.Cancel()
	fast := node.Subscribe(8)
	defer fast.Cancel()
	for i := 0; i < 4; i++ {
		node.fanout(uint64(i+1), []contract.Event{{Contract: "kv", Type: "put"}})
	}
	if got := slow.Dropped(); got != 3 {
		t.Fatalf("slow subscriber dropped %d, want 3", got)
	}
	if got := fast.Dropped(); got != 0 {
		t.Fatalf("fast subscriber dropped %d, want 0", got)
	}
	if st := node.Stats(); st.EventsDropped != 3 {
		t.Fatalf("aggregate EventsDropped = %d, want 3", st.EventsDropped)
	}
}

// rangeOf is a test helper calling the bc.getrange handler directly.
func rangeOf(t *testing.T, n *Node, req rangeReq) []*Block {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := n.handleGetRange("tester", payload)
	if err != nil {
		t.Fatal(err)
	}
	var resp rangeResp
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	out := make([]*Block, len(resp.Blocks))
	for i, enc := range resp.Blocks {
		b, err := DecodeBlock(enc)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

func TestGetRangeServesDescendingWindow(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 4})
	defer net.Close()
	node, err := NewNode(NodeConfig{Name: "src", Chain: testChainConfig(t, alice), Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	parent := node.chain.Genesis()
	for i := 1; i <= 6; i++ {
		tx, err := NewTransaction(alice, uint64(i), putCall(fmt.Sprintf("k%d", i), "v"))
		if err != nil {
			t.Fatal(err)
		}
		b := mineChild(t, node.chain, parent, tx)
		if err := node.chain.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		parent = b.Hash()
	}
	head, _ := node.chain.Head()

	// Full window: descending from head, genesis excluded.
	blocks := rangeOf(t, node, rangeReq{Cursor: head, Count: 100})
	if len(blocks) != 6 {
		t.Fatalf("got %d blocks, want 6", len(blocks))
	}
	for i, b := range blocks {
		if want := uint64(6 - i); b.Header.Height != want {
			t.Fatalf("block %d at height %d, want %d", i, b.Header.Height, want)
		}
	}
	// Bounded window respects Count.
	if got := len(rangeOf(t, node, rangeReq{Cursor: head, Count: 2})); got != 2 {
		t.Fatalf("bounded window returned %d blocks", got)
	}
	// Unknown cursor errors.
	payload, _ := json.Marshal(rangeReq{Cursor: crypto32(0xee), Count: 4})
	if _, err := node.handleGetRange("tester", payload); err == nil {
		t.Fatal("unknown cursor served")
	}
}

// TestBatchedSyncUsesFewCalls proves catch-up economics: syncing a chain of
// N blocks costs ~N/SyncBatch range calls, not N round-trips.
func TestBatchedSyncUsesFewCalls(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 5})
	defer net.Close()
	src, err := NewNode(NodeConfig{Name: "src", Chain: testChainConfig(t, alice), Network: net,
		Peers: []string{"src", "joiner"}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Stop()
	parent := src.chain.Genesis()
	const length = 30
	for i := 1; i <= length; i++ {
		tx, err := NewTransaction(alice, uint64(i), putCall(fmt.Sprintf("k%d", i), "v"))
		if err != nil {
			t.Fatal(err)
		}
		b := mineChild(t, src.chain, parent, tx)
		if err := src.chain.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		parent = b.Hash()
	}

	joiner, err := NewNode(NodeConfig{Name: "joiner", Chain: testChainConfig(t, alice), Network: net,
		Peers: []string{"src", "joiner"}, SyncBatch: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Stop()
	if err := joiner.SyncFrom("src"); err != nil {
		t.Fatal(err)
	}
	if joiner.chain.Height() != length {
		t.Fatalf("joiner height %d, want %d", joiner.chain.Height(), length)
	}
	if joiner.chain.StateDigest() != src.chain.StateDigest() {
		t.Fatal("state digest diverged")
	}
	st := joiner.Stats()
	if st.SyncBlocks != length {
		t.Fatalf("SyncBlocks = %d, want %d", st.SyncBlocks, length)
	}
	// 1 head call + ceil(30/10) range calls.
	if st.SyncCalls > 5 {
		t.Fatalf("SyncCalls = %d for %d blocks (batch 10)", st.SyncCalls, length)
	}
}

// TestNodeRestartFromStore is the crash/restart lifecycle: a validating
// node persists incrementally, dies, reopens from its data dir with full
// re-validation, and catches up past its crash height via batched sync.
func TestNodeRestartFromStore(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{BaseLatency: time.Millisecond, Seed: 7})
	defer net.Close()
	peers := []string{"miner", "member"}
	miner, err := NewNode(NodeConfig{Name: "miner", Chain: testChainConfig(t, alice), Network: net,
		Peers: peers, Mine: true, EmptyBlockInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer miner.Stop()
	miner.Start()

	path := filepath.Join(t.TempDir(), "member.wal")
	kv, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	member, err := NewNode(NodeConfig{Name: "member", Chain: testChainConfig(t, alice), Network: net,
		Peers: peers, Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	member.Start()

	// Some real transactions so the restored state digest is non-trivial.
	sender := NewSender(miner, alice)
	for i := 0; i < 5; i++ {
		if _, err := sender.Send(putCall(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, func() bool { return member.chain.Height() >= 8 }, "member at height 8")

	// Crash: stop without any explicit save — incremental persistence must
	// already have everything up to the member's head on disk.
	crashHeight := member.chain.Height()
	member.Stop()
	net.Unregister("member")
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	if st := member.Stats(); st.BlocksPersisted < int64(crashHeight) {
		t.Fatalf("persisted %d blocks, head was %d", st.BlocksPersisted, crashHeight)
	}

	// The fleet moves on while the member is down.
	waitFor(t, 15*time.Second, func() bool { return miner.chain.Height() >= crashHeight+6 }, "fleet advanced")

	// Reopen: the persisted chain is re-validated and the node rejoins.
	kv2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	restarted, err := NewNode(NodeConfig{Name: "member", Chain: testChainConfig(t, alice), Network: net,
		Peers: peers, Store: kv2})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Stop()
	if st := restarted.Stats(); st.BlocksReloaded < int64(crashHeight) {
		t.Fatalf("reloaded %d blocks, crashed at height %d", st.BlocksReloaded, crashHeight)
	}
	if restarted.chain.Height() < crashHeight {
		t.Fatalf("restored height %d < crash height %d", restarted.chain.Height(), crashHeight)
	}
	restarted.Start()
	if err := restarted.SyncFrom("miner"); err != nil {
		t.Fatal(err)
	}
	if h := restarted.chain.Height(); h < crashHeight+6 {
		t.Fatalf("caught up only to height %d", h)
	}
	waitFor(t, 10*time.Second, func() bool {
		return restarted.chain.StateDigest() == miner.chain.StateDigest()
	}, "state digests converge after restart")
	st := restarted.Stats()
	if st.SyncBlocks == 0 {
		t.Fatal("no blocks fetched through catch-up")
	}
	if st.SyncCalls >= st.SyncBlocks+2 {
		t.Fatalf("per-block economics: %d calls for %d blocks", st.SyncCalls, st.SyncBlocks)
	}
}

// TestNodeReopenTruncatedWAL simulates the classic crash artifact — a torn
// final WAL record — and expects the validated prefix to load.
func TestNodeReopenTruncatedWAL(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	path := filepath.Join(t.TempDir(), "chain.wal")
	kv, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	src := buildTestChain(t, 5)
	if err := src.SaveToStore(kv); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","key":"block/tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	kv2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	net := netsim.New(netsim.Config{Seed: 8})
	defer net.Close()
	node, err := NewNode(NodeConfig{Name: "n", Chain: testChainConfig(t, alice), Network: net, Store: kv2})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	if node.chain.Height() != 5 {
		t.Fatalf("height %d after torn-record reopen, want 5", node.chain.Height())
	}
	if node.chain.StateDigest() != src.StateDigest() {
		t.Fatal("state digest lost through torn record")
	}
}

// TestNodeReopenCorruptBlockTruncatesTail: a persisted block that fails
// validation must not brick the node — the validated prefix survives, the
// damaged tail is dropped from the store, and a peer refills it.
func TestNodeReopenCorruptBlockTruncatesTail(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	path := filepath.Join(t.TempDir(), "chain.wal")
	kv, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	src := buildTestChain(t, 6)
	if err := src.SaveToStore(kv); err != nil {
		t.Fatal(err)
	}
	// Bit-flip block 4 in place (memory view; the node reads this store).
	raw, err := kv.Get(persistBlockKey(4))
	if err != nil {
		t.Fatal(err)
	}
	mutated := append([]byte(nil), raw...)
	mutated[len(mutated)-1] ^= 0xff
	kv.TamperUnderlying(persistBlockKey(4), mutated)

	net := netsim.New(netsim.Config{Seed: 10})
	defer net.Close()
	node, err := NewNode(NodeConfig{Name: "n", Chain: testChainConfig(t, alice), Network: net,
		Peers: []string{"n", "src"}, Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	defer kv.Close()
	if node.chain.Height() != 3 {
		t.Fatalf("height %d after corrupt tail, want 3", node.chain.Height())
	}
	st := node.Stats()
	if st.BlocksReloaded != 3 || st.ReloadDropped != 3 {
		t.Fatalf("reloaded=%d dropped=%d, want 3/3", st.BlocksReloaded, st.ReloadDropped)
	}
	if got := len(kv.Keys(persistBlockPrefix)); got != 3 {
		t.Fatalf("store still holds %d blocks after truncation", got)
	}

	// A peer with the intact chain refills the dropped heights.
	srcNode, err := NewNode(NodeConfig{Name: "src", Chain: testChainConfig(t, alice), Network: net,
		Peers: []string{"n", "src"}})
	if err != nil {
		t.Fatal(err)
	}
	defer srcNode.Stop()
	for _, h := range src.BestChainHashes()[1:] {
		b, _ := src.BlockByHash(h)
		if err := srcNode.Chain().AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := node.SyncFrom("src"); err != nil {
		t.Fatal(err)
	}
	if node.chain.Height() != 6 || node.chain.StateDigest() != src.StateDigest() {
		t.Fatalf("refill failed: height %d", node.chain.Height())
	}
	// And the refilled suffix is durable again.
	if got := len(kv.Keys(persistBlockPrefix)); got != 6 {
		t.Fatalf("store holds %d blocks after refill, want 6", got)
	}
}

// TestSyncFromToleratesHeadChurn scripts a peer whose head answer is stale
// by the time the branch is pulled (reorged away): SyncFrom must chase the
// fresh head instead of failing with "did not converge".
func TestSyncFromToleratesHeadChurn(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 11})
	defer net.Close()

	// Main chain of 8 blocks plus a doomed fork block at height 5.
	main := buildTestChain(t, 8)
	hashes := main.BestChainHashes()
	fork := mineChild(t, main, hashes[4]) // empty sibling of block 5
	byHash := make(map[string]*Block)
	for _, h := range hashes[1:] {
		b, _ := main.BlockByHash(h)
		byHash[string(h[:])] = b
	}

	ep, err := net.Register("churn-peer")
	if err != nil {
		t.Fatal(err)
	}
	var headCalls int
	var mu sync.Mutex
	ep.OnCall(kindHead, func(from string, payload []byte) ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		headCalls++
		if headCalls == 1 {
			// First answer: the fork block, which "reorgs away" before the
			// joiner can pull its ancestry.
			return json.Marshal(headInfo{Hash: fork.Hash(), Height: 5})
		}
		return json.Marshal(headInfo{Hash: hashes[8], Height: 8})
	})
	ep.OnCall(kindGetRange, func(from string, payload []byte) ([]byte, error) {
		var req rangeReq
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		var resp rangeResp
		cursor := req.Cursor
		for len(resp.Blocks) < req.Count {
			b, ok := byHash[string(cursor[:])]
			if !ok {
				if len(resp.Blocks) == 0 {
					return nil, errors.New("not found (reorged away)")
				}
				break
			}
			resp.Blocks = append(resp.Blocks, b.Encode())
			cursor = b.Header.PrevHash
		}
		return json.Marshal(resp)
	})

	joiner, err := NewNode(NodeConfig{Name: "joiner", Chain: testChainConfig(t, alice), Network: net,
		Peers: []string{"joiner", "churn-peer"}, SyncBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Stop()
	if err := joiner.SyncFrom("churn-peer"); err != nil {
		t.Fatalf("head churn not tolerated: %v", err)
	}
	if joiner.chain.Height() != 8 {
		t.Fatalf("joiner height %d, want 8", joiner.chain.Height())
	}
	if joiner.chain.StateDigest() != main.StateDigest() {
		t.Fatal("state digest diverged")
	}
}

// crypto32 builds a fixed digest for negative tests.
func crypto32(fill byte) (d [32]byte) {
	for i := range d {
		d[i] = fill
	}
	return
}

// TestGetRangeByteCapSplitsLargeBlocks: a range response must stay under
// the transport frame budget however large individual blocks are — the
// window splits and the requester keeps pulling, so catch-up on a chain of
// fat blocks still completes (and still beats per-block on round-trips).
func TestGetRangeByteCapSplitsLargeBlocks(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 12})
	defer net.Close()
	src, err := NewNode(NodeConfig{Name: "src", Chain: testChainConfig(t, alice), Network: net,
		Peers: []string{"src", "joiner"}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Stop()
	big := make([]byte, 1<<20) // ~1.4 MiB per encoded block (JSON inflates)
	for i := range big {
		big[i] = byte(i)
	}
	parent := src.chain.Genesis()
	const length = 8
	for i := 1; i <= length; i++ {
		tx, err := NewTransaction(alice, uint64(i), putCall(fmt.Sprintf("k%d", i), string(big)))
		if err != nil {
			t.Fatal(err)
		}
		b := mineChild(t, src.chain, parent, tx)
		if err := src.chain.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		parent = b.Hash()
	}
	head, _ := src.chain.Head()
	if got := len(rangeOf(t, src, rangeReq{Cursor: head, Count: length})); got >= length {
		t.Fatalf("one response carried all %d fat blocks — byte cap not applied", got)
	}

	joiner, err := NewNode(NodeConfig{Name: "joiner", Chain: testChainConfig(t, alice), Network: net,
		Peers: []string{"src", "joiner"}})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Stop()
	if err := joiner.SyncFrom("src"); err != nil {
		t.Fatal(err)
	}
	if joiner.chain.Height() != length || joiner.chain.StateDigest() != src.chain.StateDigest() {
		t.Fatalf("fat-block sync incomplete: height %d", joiner.chain.Height())
	}
	st := joiner.Stats()
	if st.SyncCalls >= int64(length) {
		t.Fatalf("split windows degenerated to per-block: %d calls for %d blocks", st.SyncCalls, length)
	}
}

// TestPullBranchRemembersLegacyPeer: syncing from a peer without the
// bc.getrange handler must probe it at most once per pull, then pay
// exactly one bc.getblock per block — parity with the legacy protocol.
func TestPullBranchRemembersLegacyPeer(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 13})
	defer net.Close()
	main := buildTestChain(t, 6)
	byHash := make(map[string]*Block)
	for _, h := range main.BestChainHashes()[1:] {
		b, _ := main.BlockByHash(h)
		byHash[string(h[:])] = b
	}
	ep, err := net.Register("legacy-peer")
	if err != nil {
		t.Fatal(err)
	}
	var blockCalls int64
	ep.OnCall(kindGetBlock, func(from string, payload []byte) ([]byte, error) {
		blockCalls++
		b, ok := byHash[string(payload)]
		if !ok {
			return nil, errors.New("not found")
		}
		return b.Encode(), nil
	})
	// kindGetRange deliberately has no handler, so the joiner's probe gets
	// ErrNoHandler; the probe count shows up in the joiner's SyncCalls.

	joiner, err := NewNode(NodeConfig{Name: "joiner", Chain: testChainConfig(t, alice), Network: net,
		Peers: []string{"joiner", "legacy-peer"}, SyncBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Stop()
	hashes := main.BestChainHashes()
	if err := joiner.pullBranch("legacy-peer", hashes[len(hashes)-1], nil); err != nil {
		t.Fatal(err)
	}
	if joiner.chain.Height() != 6 {
		t.Fatalf("joiner height %d, want 6", joiner.chain.Height())
	}
	if blockCalls != 6 {
		t.Fatalf("legacy peer served %d block calls, want 6", blockCalls)
	}
	// One failed range probe + six block fetches: anything more means the
	// pull kept re-probing the missing handler.
	if st := joiner.Stats(); st.SyncCalls != 7 {
		t.Fatalf("SyncCalls = %d, want 7 (1 probe + 6 blocks)", st.SyncCalls)
	}
}
