package drams_test

import (
	"context"
	"testing"
	"time"

	"drams"
	"drams/internal/transport/tcp"
	"drams/internal/xacml"
)

// TestDeploymentOverTCPTransport runs a full monitored deployment on the
// real TCP backend instead of netsim: the decision round-trip, the log
// mining and the on-chain match all flow through transport.Endpoint, so any
// semantic gap between the backends would surface here.
func TestDeploymentOverTCPTransport(t *testing.T) {
	dep, err := drams.Open(testPolicy("v1"),
		drams.WithListenAddr("127.0.0.1:0"),
		drams.WithDifficulty(6),
		drams.WithTimeoutBlocks(20),
		drams.WithEmptyBlockInterval(15*time.Millisecond),
		drams.WithSeed(42),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if dep.Net != nil {
		t.Fatal("TCP-backed deployment must not expose a netsim handle")
	}

	client, err := dep.Client("tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req := doctorRequest(dep)
	enf, err := client.Decide(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if enf.Decision != xacml.Permit {
		t.Fatalf("decision = %v, want Permit", enf.Decision)
	}
	if err := dep.WaitForMatched(ctx, req.ID); err != nil {
		t.Fatalf("exchange did not match on-chain over TCP: %v", err)
	}
}

// TestDeploymentOnSuppliedTransport proves caller-owned transports are not
// closed by Deployment.Close.
func TestDeploymentOnSuppliedTransport(t *testing.T) {
	tr, err := tcp.New(tcp.Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	dep, err := drams.Open(testPolicy("v1"),
		drams.WithTransport(tr),
		drams.WithMonitoring(false),
		drams.WithDifficulty(4),
		drams.WithEmptyBlockInterval(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	dep.Close()
	// The supplied transport must still be usable after Close — including
	// the deployment's own addresses, which Close must have released.
	if _, err := tr.Register("still-alive"); err != nil {
		t.Fatalf("caller-owned transport was closed by the deployment: %v", err)
	}
	dep2, err := drams.Open(testPolicy("v1"),
		drams.WithTransport(tr),
		drams.WithMonitoring(false),
		drams.WithDifficulty(4),
		drams.WithEmptyBlockInterval(10*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("re-open on the same transport after Close: %v", err)
	}
	dep2.Close()
}
