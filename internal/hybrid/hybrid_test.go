package hybrid

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/merkle"
	"drams/internal/netsim"
)

// hybridEnv is a single-node chain plus a hybrid store.
type hybridEnv struct {
	node  *blockchain.Node
	store *Store
}

func newHybridEnv(t *testing.T, batchSize int, confirm uint64) *hybridEnv {
	t.Helper()
	var seed [32]byte
	seed[0] = 5
	id := crypto.NewIdentityFromSeed("hybrid-writer", seed)
	reg := contract.NewRegistry()
	reg.MustRegister(&contract.AnchorContract{ContractName: "anchor"})
	net := netsim.New(netsim.Config{Seed: 3})
	node, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "node-0",
		Chain: blockchain.Config{
			Difficulty: 4,
			Identities: []crypto.PublicIdentity{id.Public()},
			Registry:   reg,
		},
		Network:            net,
		Mine:               true,
		EmptyBlockInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	t.Cleanup(func() {
		node.Stop()
		net.Close()
	})
	st, err := Open(Config{
		Stream:            "logs",
		BatchSize:         batchSize,
		Sender:            blockchain.NewSender(node, id),
		Node:              node,
		WaitConfirmations: confirm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &hybridEnv{node: node, store: st}
}

func (e *hybridEnv) putN(t *testing.T, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		if err := e.store.Put(ctx, fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
}

func (e *hybridEnv) waitAnchors(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		var got int
		e.node.Chain().ReadState("anchor", func(st contract.StateDB) {
			got = len(contract.ListAnchors(st, "logs"))
		})
		if got >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("anchors did not reach %d", want)
}

func TestPutGetRoundTrip(t *testing.T) {
	env := newHybridEnv(t, 4, 0)
	env.putN(t, 3)
	v, err := env.store.Get("key-1")
	if err != nil || string(v) != "value-1" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if _, err := env.store.Get("missing"); err == nil {
		t.Fatal("phantom key")
	}
}

func TestBatchAnchoredAtSize(t *testing.T) {
	env := newHybridEnv(t, 4, 1)
	env.putN(t, 8) // two full batches
	env.waitAnchors(t, 2)
	st := env.store.Stats()
	if st.AnchorsSubmitted != 2 || st.PendingEntries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlushAnchorsPartialBatch(t *testing.T) {
	env := newHybridEnv(t, 100, 1)
	env.putN(t, 5)
	if st := env.store.Stats(); st.AnchorsSubmitted != 0 || st.PendingEntries != 5 {
		t.Fatalf("pre-flush stats = %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := env.store.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	env.waitAnchors(t, 1)
	if st := env.store.Stats(); st.PendingEntries != 0 {
		t.Fatalf("post-flush stats = %+v", st)
	}
	// Empty flush is a no-op.
	if err := env.store.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestAuditCleanStore(t *testing.T) {
	env := newHybridEnv(t, 4, 1)
	env.putN(t, 10) // 2 anchored batches + 2 pending
	env.waitAnchors(t, 2)
	rep := env.store.Audit()
	if !rep.Clean() {
		t.Fatalf("clean store failed audit: %+v", rep.Corruptions)
	}
	if rep.BatchesChecked != 2 || rep.EntriesChecked != 8 || rep.PendingEntries != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestAuditDetectsLogTamper(t *testing.T) {
	env := newHybridEnv(t, 4, 1)
	env.putN(t, 8)
	env.waitAnchors(t, 2)
	if !env.store.TamperLogEntry(1, 2, []byte("evil")) {
		t.Fatal("tamper failed")
	}
	rep := env.store.Audit()
	if rep.Clean() {
		t.Fatal("tampered log passed audit")
	}
	found := false
	for _, c := range rep.Corruptions {
		if c.Batch == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("corruption not attributed to batch 1: %+v", rep.Corruptions)
	}
}

func TestAuditDetectsCurrentValueTamper(t *testing.T) {
	env := newHybridEnv(t, 4, 1)
	env.putN(t, 4)
	env.waitAnchors(t, 1)
	if !env.store.TamperCurrentValue("key-2", []byte("evil")) {
		t.Fatal("tamper failed")
	}
	rep := env.store.Audit()
	if rep.Clean() {
		t.Fatal("tampered value passed audit")
	}
	found := false
	for _, c := range rep.Corruptions {
		if c.Key == "key-2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("corruption not attributed to key-2: %+v", rep.Corruptions)
	}
}

func TestAuditDetectsDeletedLogEntry(t *testing.T) {
	env := newHybridEnv(t, 4, 1)
	env.putN(t, 4)
	env.waitAnchors(t, 1)
	// Simulate deletion by overwriting with garbage the auditor can't
	// parse as the original (use TamperUnderlying through the store API).
	if !env.store.TamperLogEntry(1, 0, nil) {
		t.Fatal("tamper failed")
	}
	rep := env.store.Audit()
	if rep.Clean() {
		t.Fatal("deleted entry passed audit")
	}
}

func TestProofVerifiesAgainstAnchor(t *testing.T) {
	env := newHybridEnv(t, 4, 1)
	env.putN(t, 4)
	env.waitAnchors(t, 1)
	proof, root, err := env.store.ProveEntry(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := env.store.EntryBytes(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !merkle.Verify(root, raw, proof) {
		t.Fatal("valid proof rejected")
	}
	// A tampered entry fails against the anchored root.
	if merkle.Verify(root, append(raw, 'X'), proof) {
		t.Fatal("tampered entry verified")
	}
	// Unanchored batch: no proof.
	if _, _, err := env.store.ProveEntry(99, 0); err == nil {
		t.Fatal("proof for unanchored batch")
	}
}

func TestUpdatesTrackLatestValue(t *testing.T) {
	env := newHybridEnv(t, 2, 1)
	ctx := context.Background()
	_ = env.store.Put(ctx, "k", []byte("v1"))
	_ = env.store.Put(ctx, "k", []byte("v2")) // completes batch 1
	env.waitAnchors(t, 1)
	v, _ := env.store.Get("k")
	if string(v) != "v2" {
		t.Fatalf("got %q", v)
	}
	rep := env.store.Audit()
	if !rep.Clean() {
		t.Fatalf("update flow failed audit: %+v", rep.Corruptions)
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	env := newHybridEnv(t, 4, 1)
	env.putN(t, 2)
	ctx := context.Background()
	if err := env.store.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := env.store.Put(ctx, "x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
	if err := env.store.Flush(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
	if err := env.store.Close(ctx); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// Close flushed the partial batch.
	env.waitAnchors(t, 1)
}

func TestTimeBasedFlush(t *testing.T) {
	env := newHybridEnv(t, 1000, 1) // size threshold unreachable
	// Reopen the store with a flush interval (newHybridEnv builds one
	// without); easier to build a second store against the same node.
	var seed [32]byte
	seed[0] = 5
	id := crypto.NewIdentityFromSeed("hybrid-writer", seed)
	hs, err := Open(Config{
		Stream:            "timed",
		BatchSize:         1000,
		FlushInterval:     30 * time.Millisecond,
		Sender:            blockchain.NewSender(env.node, id),
		Node:              env.node,
		WaitConfirmations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := hs.Put(ctx, "k0", []byte("v")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // exceed the interval
	// The next write triggers the time-based flush of both entries.
	if err := hs.Put(ctx, "k1", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if st := hs.Stats(); st.AnchorsSubmitted != 1 || st.PendingEntries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	rep := hs.Audit()
	if !rep.Clean() || rep.BatchesChecked != 1 || rep.EntriesChecked != 2 {
		t.Fatalf("audit = %+v", rep)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Open(Config{Stream: "s"}); err == nil {
		t.Fatal("missing sender/node accepted")
	}
}
