// Package clean is the zero-finding twin for statssnap.
package clean

import "sync"

// Server guards its counters with a mutex.
type Server struct {
	mu     sync.Mutex
	counts map[string]int
	events []string
}

// Snapshot is the exported stats view.
type Snapshot struct {
	Counts map[string]int
	Events []string
	Depth  int
}

// Stats copies the guarded containers before returning.
func (s *Server) Stats() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Snapshot{
		Counts: make(map[string]int, len(s.counts)),
		Events: append([]string(nil), s.events...),
		Depth:  len(s.events),
	}
	for k, v := range s.counts {
		out.Counts[k] = v
	}
	return out
}
