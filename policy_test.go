package drams_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"drams"
	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/pap"
	"drams/internal/xacml"
)

// restrictedTestPolicy denies the doctor-read request testPolicy permits.
func restrictedTestPolicy(version string) *xacml.PolicySet {
	defaultDeny := &xacml.Rule{ID: "default-deny", Effect: xacml.EffectDeny}
	pol := &xacml.Policy{ID: "records", Version: "1", Alg: xacml.FirstApplicable,
		Rules: []*xacml.Rule{defaultDeny}}
	return &xacml.PolicySet{ID: "root", Version: version, Alg: xacml.DenyUnlessPermit,
		Items: []xacml.PolicyItem{{Policy: pol}}}
}

// TestAdminUpdatePolicyHotReload drives the full runtime administration
// flow through the public API: subscribe to rollout events, publish a
// restricting v2 through Deployment.Admin, watch the PolicyActivated alert
// arrive, and check the same request flips Permit → Deny with the decision
// cache invalidated — then roll back to v1 and watch it flip again.
func TestAdminUpdatePolicyHotReload(t *testing.T) {
	dep := testDeployment(t, nil)
	ctx := ctx20(t)

	alerts, stop, err := dep.Alerts(ctx, drams.AlertFilter{
		Types: []drams.AlertType{drams.AlertPolicyActivated}, Replay: true, Buffer: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// The boot-time v1 activation is replayed.
	select {
	case a := <-alerts:
		if a.Type != drams.AlertPolicyActivated || !strings.HasPrefix(a.ReqID, "v1@") {
			t.Fatalf("replayed rollout event = %+v", a)
		}
	case <-ctx.Done():
		t.Fatal("no replayed activation event")
	}

	admin, err := dep.Admin("tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	if got := admin.PolicyVersion(); got != "v1" {
		t.Fatalf("active version = %q", got)
	}

	// Permit under v1, and the repeat hits the decision cache.
	req := doctorRequest(dep)
	enf, err := dep.Request("tenant-1", req)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() || enf.PolicyVersion != "v1" {
		t.Fatalf("v1 enforcement = %+v", enf)
	}

	// Publish v2 from an edge tenant's admin handle.
	if err := admin.UpdatePolicy(ctx, restrictedTestPolicy("v2"), drams.UpdateOptions{ActivateDelta: 2}); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-alerts:
		if !strings.HasPrefix(a.ReqID, "v2@") {
			t.Fatalf("rollout event = %+v", a)
		}
	case <-ctx.Done():
		t.Fatal("no v2 activation event")
	}

	enf, err = dep.Request("tenant-1", doctorRequest(dep))
	if err != nil {
		t.Fatal(err)
	}
	if enf.Permitted() || enf.PolicyVersion != "v2" {
		t.Fatalf("v2 enforcement = %+v", enf)
	}

	st := dep.PolicyStats()
	if st.Version != "v2" || st.Activations != 2 || st.CachePurges < 2 {
		t.Fatalf("policy stats = %+v", st)
	}
	if ms := dep.Monitor.Stats(); ms.PolicyActivations != 2 {
		t.Fatalf("monitor policy activations = %d", ms.PolicyActivations)
	}

	// Roll back to v1: decisions flip again, history shows all three
	// activations on-chain.
	if err := admin.Rollback(ctx, "v1", drams.UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	enf, err = dep.Request("tenant-1", doctorRequest(dep))
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() || enf.PolicyVersion != "v1" {
		t.Fatalf("post-rollback enforcement = %+v", enf)
	}
	hist := admin.History()
	if len(hist) != 3 || hist[0].Version != "v1" || hist[1].Version != "v2" || hist[2].Version != "v1" {
		t.Fatalf("history = %+v", hist)
	}

	// The policy bytes round-trip from chain state.
	ps, err := admin.PolicySet("v2")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Digest() != restrictedTestPolicy("v2").Digest() {
		t.Fatal("chain-stored v2 differs from the published set")
	}
}

// TestAdminConflictingVersionRejected re-publishes an anchored version with
// different content: the admin gets ErrPolicyConflict and the fleet keeps
// the original digest.
func TestAdminConflictingVersionRejected(t *testing.T) {
	dep := testDeployment(t, nil)
	admin, err := dep.Admin("infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	err = admin.UpdatePolicy(ctx20(t), restrictedTestPolicy("v1"), drams.UpdateOptions{})
	if !errors.Is(err, pap.ErrPolicyConflict) {
		t.Fatalf("conflict err = %v", err)
	}
	if d, _ := admin.PolicyDigest("v1"); d != testPolicy("v1").Digest() {
		t.Fatal("anchored digest changed")
	}
}

// TestExchangesMatchAcrossPolicyFlip proves the M6 grace window: a request
// decided under v1 whose logs land around the v2 flip still matches
// cleanly, and post-flip requests match under v2.
func TestExchangesMatchAcrossPolicyFlip(t *testing.T) {
	dep := testDeployment(t, nil)
	ctx := ctx20(t)

	// Decide under v1 and immediately publish v2 so the exchange's logs
	// race the activation.
	req := doctorRequest(dep)
	if _, err := dep.Request("tenant-1", req); err != nil {
		t.Fatal(err)
	}
	if err := dep.PublishPolicy(restrictedTestPolicy("v2")); err != nil {
		t.Fatal(err)
	}
	if err := dep.WaitForMatched(ctx, req.ID); err != nil {
		t.Fatalf("v1-era exchange did not match across the flip: %v", err)
	}

	req2 := doctorRequest(dep)
	if _, err := dep.Request("tenant-1", req2); err != nil {
		t.Fatal(err)
	}
	if err := dep.WaitForMatched(ctx, req2.ID); err != nil {
		t.Fatalf("v2 exchange did not match: %v", err)
	}
	if alerts := dep.Monitor.AlertsFor(req.ID); len(alerts) != 0 {
		t.Fatalf("flip produced alerts: %v", alerts)
	}
}

// TestPolicyStateReplaysDeterministically replays the deployment's frozen
// best chain into a fresh replica built from the same ChainMaterial and
// demands identical contract state — proving a restarted member re-derives
// the exact policy lifecycle from the chain.
func TestPolicyStateReplaysDeterministically(t *testing.T) {
	cfg := drams.Config{
		Policy:             testPolicy("v1"),
		Difficulty:         6,
		TimeoutBlocks:      20,
		EmptyBlockInterval: 15 * time.Millisecond,
		Seed:               42,
	}
	dep, err := drams.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	ctx := ctx20(t)

	admin, err := dep.Admin("infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.UpdatePolicy(ctx, restrictedTestPolicy("v2"), drams.UpdateOptions{ActivateDelta: 1}); err != nil {
		t.Fatal(err)
	}
	if err := admin.Rollback(ctx, "v1", drams.UpdateOptions{}); err != nil {
		t.Fatal(err)
	}

	// Freeze the chain, then replay it into a fresh node built from the
	// same deterministic material.
	src := dep.InfraNode().Chain()
	dep.Close()

	var tenants []string
	for _, ten := range dep.Topology().Tenants {
		tenants = append(tenants, ten.Name)
	}
	material := drams.NewChainMaterial(cfg.Seed, tenants, drams.ChainParams{
		Difficulty:     cfg.Difficulty,
		TimeoutBlocks:  cfg.TimeoutBlocks,
		RequireVerdict: true,
	})
	replica := blockchain.NewChain(material.Chain)
	for _, h := range src.BestChainHashes() {
		if h == src.Genesis() {
			continue
		}
		b, ok := src.BlockByHash(h)
		if !ok {
			t.Fatalf("missing best-chain block %s", h.Short())
		}
		if err := replica.AddBlock(b); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	if replica.StateDigest() != src.StateDigest() {
		t.Fatalf("replayed digest %s != source %s",
			replica.StateDigest().Short(), src.StateDigest().Short())
	}
	var ver string
	replica.ReadState(core.PolicyContractName, func(st contract.StateDB) { ver, _, _ = core.ReadActivePolicy(st) })
	if ver != "v1" {
		t.Fatalf("replayed active version = %q", ver)
	}
}
