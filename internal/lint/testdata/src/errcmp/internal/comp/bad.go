// Package comp exercises the errcmp analyzer.
package comp

import (
	"fix/internal/blockchain"
	"fix/internal/transport"
)

// Classify compares sentinels by identity, which breaks across the wire.
func Classify(err error) string {
	if err == transport.ErrTimeout { // want "compared with =="
		return "timeout"
	}
	if err != blockchain.ErrNotFound { // want "compared with !="
		return "other"
	}
	switch err {
	case blockchain.ErrNotFound: // want "by identity"
		return "missing"
	}
	return ""
}
