// Package drams is the public API of the DRAMS reproduction: the
// Decentralised Runtime Access Monitoring System of "Decentralised Runtime
// Monitoring for Access Control Systems in Cloud Federations" (Ferdous,
// Margheri, Paci, Yang, Sassone — ICDCS 2017).
//
// A Deployment assembles the full Figure-1 architecture on one machine:
//
//   - a FaaS federation topology (clouds, edge tenants, the infrastructure
//     tenant) over a simulated network;
//   - the XACML access-control plane: one PDP + PRP in the infrastructure
//     tenant and a PEP at every tenant edge;
//   - a private proof-of-work smart-contract blockchain with one node per
//     cloud, running the DRAMS log-match contract;
//   - a probing agent and a Logging Interface per tenant, encrypting and
//     signing observations;
//   - the Analyser re-deriving expected decisions, and the off-chain
//     Monitor aggregating security alerts.
//
// Quickstart (the client-centric surface):
//
//	dep, err := drams.Open(policy, drams.WithSeed(7))
//	defer dep.Close()
//	client, err := dep.Client("tenant-1")         // per-tenant handle
//	enf, err := client.Decide(ctx, req)           // normal access control
//	enfs, err := client.DecideBatch(ctx, reqs)    // pipelined decisions
//	dep.TamperPEP("tenant-1", &drams.Tamper{      // inject an attack
//	    Enforce: func(xacml.Decision) xacml.Decision { return xacml.Permit },
//	})
//	alerts, stop, err := dep.Alerts(ctx, drams.AlertFilter{}) // streaming alerts
//	defer stop()
//
// The original surface — drams.New(Config), Deployment.Request,
// WaitForAlert/WaitForMatched — keeps working as thin shims over the
// client API.
package drams

import (
	"context"
	"errors"
	"fmt"
	"time"

	"drams/internal/blockchain"
	"drams/internal/clock"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/federation"
	"drams/internal/idgen"
	"drams/internal/logger"
	"drams/internal/netsim"
	"drams/internal/xacml"
)

// Re-exported aliases so example applications can use the drams package as
// the single entry point for common types.
type (
	// Enforcement is what a PEP returns to the application.
	Enforcement = federation.Enforcement
	// Alert is a DRAMS security alert.
	Alert = core.Alert
	// AlertType classifies alerts.
	AlertType = core.AlertType
	// AlertFilter selects which monitor events a subscription receives.
	AlertFilter = core.AlertFilter
	// Tamper injects attacks at a PEP's data path.
	Tamper = federation.Tamper
)

// AlertMatched is the synthetic stream event emitted on subscription
// channels when an exchange completes cleanly on-chain.
const AlertMatched = core.AlertMatched

// Config configures a Deployment. The zero value plus a Policy is usable.
type Config struct {
	// Topology describes the federation; defaults to two clouds with one
	// edge tenant each plus the infrastructure tenant (Figure 1).
	Topology *federation.Topology
	// Policy is the initial access-control policy set (required).
	Policy *xacml.PolicySet
	// Difficulty is the PoW difficulty in leading-zero bits (default 8).
	Difficulty uint8
	// TimeoutBlocks is the log-match M3 window Δ (default 5 blocks).
	TimeoutBlocks uint64
	// RequireVerdict demands an analyser verdict per request (default
	// true; set DisableVerdicts to opt out).
	DisableVerdicts bool
	// EmptyBlockInterval keeps blocks flowing when idle (default 25ms).
	EmptyBlockInterval time.Duration
	// SubmitMode is the LI submission mode (default async).
	SubmitMode logger.SubmitMode
	// MonitorOff disables probes, analyser and monitor entirely — the
	// baseline for overhead experiments.
	MonitorOff bool
	// NetLatency/NetJitter shape the federation network.
	NetLatency, NetJitter time.Duration
	// Seed makes network behaviour and request IDs reproducible.
	Seed uint64
	// MaxTxPerBlock caps block size (default 256).
	MaxTxPerBlock int
	// PEPTimeout bounds a PEP's wait for the PDP (default 5s).
	PEPTimeout time.Duration
	// UseTPM seals the shared LI key in a per-tenant SoftTPM and unseals
	// it at LI boot (the §III System Integrity mitigation).
	UseTPM bool
	// MineAll makes every cloud's node mine (more realistic, more forks).
	// Default: only the infrastructure cloud's node mines while all nodes
	// validate and gossip — the designated-producer configuration a
	// private federation chain would use.
	MineAll bool
	// VerifyWorkers sizes each node's signature-verification worker pool
	// for block validation and batched gossip admission (default
	// GOMAXPROCS).
	VerifyWorkers int
	// VerifyCacheSize bounds each node's verified-transaction LRU, which
	// lets gossip duplicates and block validation skip re-verifying
	// signatures checked at mempool admission (default 8192; negative
	// disables the cache).
	VerifyCacheSize int
	// SequentialVerify disables the batch-verification pipeline: every
	// signature is checked inline, one at a time — the pre-pipeline
	// baseline for overhead experiments.
	SequentialVerify bool
	// DecisionCacheSize bounds the PDP decision cache in entries (default
	// 4096). Cached decisions are keyed by canonical request attributes
	// and the active policy-set digest, so results are bit-for-bit what
	// full evaluation produces.
	DecisionCacheSize int
	// DisableDecisionCache evaluates every request from scratch — the
	// overhead baseline.
	DisableDecisionCache bool
	// RemoteAgents separates probing agents from their Logging Interfaces:
	// each LI exposes its §II network endpoints and agents submit raw
	// observations over the tenant network (the LI derives digests, tags
	// and encryption, so K never leaves the LI). Default: in-process
	// agents.
	RemoteAgents bool
}

// Deployment is a running DRAMS federation.
type Deployment struct {
	cfg      Config
	topology *federation.Topology

	Net   *netsim.Network
	Nodes map[string]*blockchain.Node // by cloud name

	PDP          *xacml.PDP
	PDPService   *federation.PDPService
	PRP          *xacml.PRP
	PEPs         map[string]*federation.PEPService // by tenant
	LIs          map[string]*logger.LI             // by tenant
	Agents       map[string]*logger.Agent          // by tenant (in-process mode)
	RemoteAgents map[string]*logger.RemoteAgent    // by tenant (RemoteAgents mode)
	Analyser     *core.Analyser
	Monitor      *core.Monitor
	TPMs         map[string]*crypto.SoftTPM // by tenant (when UseTPM)

	Key crypto.Key

	papSender *blockchain.Sender
	ids       *idgen.Generator
	closed    bool
}

// probe is what a tenant's agent must implement for both hook points.
type probe interface {
	federation.PEPProbe
	federation.PDPProbe
}

// probeFor returns the tenant's agent regardless of agent mode.
func (d *Deployment) probeFor(tenant string) probe {
	if a, ok := d.RemoteAgents[tenant]; ok {
		return a
	}
	return d.Agents[tenant]
}

// identitySeed derives deterministic identities per component so
// deployments are reproducible under a fixed Config.Seed.
func identitySeed(seed uint64, name string) [32]byte {
	d := crypto.SumAll([]byte(fmt.Sprintf("drams-id|%d|", seed)), []byte(name))
	return [32]byte(d)
}

// New assembles and starts a deployment.
func New(cfg Config) (*Deployment, error) {
	if cfg.Policy == nil {
		return nil, errors.New("drams: Config.Policy is required")
	}
	if cfg.Topology == nil {
		cfg.Topology = federation.SimpleTopology("faas", 2)
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Difficulty == 0 {
		cfg.Difficulty = 8
	}
	if cfg.TimeoutBlocks == 0 {
		cfg.TimeoutBlocks = 5
	}
	if cfg.EmptyBlockInterval == 0 {
		cfg.EmptyBlockInterval = 25 * time.Millisecond
	}
	if cfg.SubmitMode == 0 {
		cfg.SubmitMode = logger.SubmitAsync
	}
	if cfg.MaxTxPerBlock == 0 {
		cfg.MaxTxPerBlock = 256
	}

	d := &Deployment{
		cfg:          cfg,
		topology:     cfg.Topology,
		Nodes:        make(map[string]*blockchain.Node),
		PEPs:         make(map[string]*federation.PEPService),
		LIs:          make(map[string]*logger.LI),
		Agents:       make(map[string]*logger.Agent),
		RemoteAgents: make(map[string]*logger.RemoteAgent),
		TPMs:         make(map[string]*crypto.SoftTPM),
		ids:          idgen.NewSeeded(cfg.Seed + 1),
	}
	d.Net = netsim.New(netsim.Config{
		BaseLatency: cfg.NetLatency,
		Jitter:      cfg.NetJitter,
		Seed:        cfg.Seed,
	})
	d.Key = crypto.DeriveKey(fmt.Sprintf("drams-K-%d", cfg.Seed), "shared-li-key")

	// Component identities (deterministic under Seed).
	liIdentities := make(map[string]*crypto.Identity) // by tenant
	var allow []crypto.PublicIdentity
	for _, ten := range d.topology.Tenants {
		id := crypto.NewIdentityFromSeed("li@"+ten.Name, identitySeed(cfg.Seed, "li@"+ten.Name))
		liIdentities[ten.Name] = id
		allow = append(allow, id.Public())
	}
	analyserID := crypto.NewIdentityFromSeed("analyser", identitySeed(cfg.Seed, "analyser"))
	papID := crypto.NewIdentityFromSeed("pap", identitySeed(cfg.Seed, "pap"))
	allow = append(allow, analyserID.Public(), papID.Public())

	// Shared contract registry (contracts are stateless; state is
	// per-chain).
	registry := contract.NewRegistry()
	registry.MustRegister(core.NewLogMatchContract(core.MatchConfig{
		TimeoutBlocks:  cfg.TimeoutBlocks,
		PAP:            papID.Name(),
		Analyser:       analyserID.Name(),
		RequireVerdict: !cfg.DisableVerdicts && !cfg.MonitorOff,
	}))
	registry.MustRegister(&contract.AnchorContract{ContractName: "anchor"})
	registry.MustRegister(&contract.KVContract{ContractName: "kv"})

	chainCfg := blockchain.Config{
		Difficulty:       cfg.Difficulty,
		MaxTxPerBlock:    cfg.MaxTxPerBlock,
		Identities:       allow,
		Registry:         registry,
		VerifyWorkers:    cfg.VerifyWorkers,
		VerifyCacheSize:  cfg.VerifyCacheSize,
		SequentialVerify: cfg.SequentialVerify,
	}

	infra, err := d.topology.InfrastructureTenant()
	if err != nil {
		d.Close()
		return nil, err
	}

	// One chain node per cloud. By default only the infrastructure
	// cloud's node mines (designated producer); every node validates.
	var nodeNames []string
	for _, c := range d.topology.Clouds {
		nodeNames = append(nodeNames, "node@"+c.Name)
	}
	for _, c := range d.topology.Clouds {
		node, err := blockchain.NewNode(blockchain.NodeConfig{
			Name:               "node@" + c.Name,
			Chain:              chainCfg,
			Network:            d.Net,
			Peers:              nodeNames,
			Mine:               cfg.MineAll || c.Name == infra.Cloud,
			EmptyBlockInterval: cfg.EmptyBlockInterval,
		})
		if err != nil {
			d.Close()
			return nil, err
		}
		d.Nodes[c.Name] = node
	}
	for _, node := range d.Nodes {
		node.Start()
	}
	infraNode := d.Nodes[infra.Cloud]

	// Access-control plane.
	d.PDP = xacml.NewPDP(nil)
	if !cfg.DisableDecisionCache {
		d.PDP.SetCache(xacml.NewDecisionCache(cfg.DecisionCacheSize))
	}
	d.PRP = xacml.NewPRP()
	d.PDPService, err = federation.NewPDPService(d.Net, d.PDP)
	if err != nil {
		d.Close()
		return nil, err
	}
	for _, ten := range d.topology.EdgeTenants() {
		pep, err := federation.NewPEPService(d.Net, ten.Name, cfg.PEPTimeout)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.PEPs[ten.Name] = pep
	}

	d.papSender = blockchain.NewSender(infraNode, papID)

	// Monitoring plane (unless disabled).
	if !cfg.MonitorOff {
		for _, ten := range d.topology.Tenants {
			key := d.Key
			if cfg.UseTPM {
				tpm, err := crypto.NewSoftTPM(ten.Name)
				if err != nil {
					d.Close()
					return nil, err
				}
				// Measured boot of the LI component, then seal/unseal K.
				if err := tpm.Extend(1, []byte("li-binary-v1")); err != nil {
					d.Close()
					return nil, err
				}
				handle := tpm.Seal(1<<1, key[:])
				raw, err := tpm.Unseal(handle)
				if err != nil {
					d.Close()
					return nil, fmt.Errorf("drams: TPM unseal for %s: %w", ten.Name, err)
				}
				copy(key[:], raw)
				d.TPMs[ten.Name] = tpm
			}
			li, err := logger.NewLI(logger.LIConfig{
				Name:     "li@" + ten.Name,
				Tenant:   ten.Name,
				Node:     d.Nodes[ten.Cloud],
				Identity: liIdentities[ten.Name],
				Key:      key,
				Mode:     cfg.SubmitMode,
			})
			if err != nil {
				d.Close()
				return nil, err
			}
			li.Start()
			d.LIs[ten.Name] = li
			if cfg.RemoteAgents {
				liAddr := "li-endpoint@" + ten.Name
				if err := li.Expose(d.Net, liAddr); err != nil {
					d.Close()
					return nil, err
				}
				ra, err := logger.NewRemoteAgent(d.Net, "agent@"+ten.Name, liAddr)
				if err != nil {
					d.Close()
					return nil, err
				}
				d.RemoteAgents[ten.Name] = ra
			} else {
				d.Agents[ten.Name] = logger.NewAgent("agent@"+ten.Name, ten.Name, li, clock.System{})
			}
		}
		// Attach probes.
		for tenant, pep := range d.PEPs {
			pep.SetProbe(d.probeFor(tenant))
		}
		d.PDPService.SetProbe(d.probeFor(infra.Name))

		// Analyser: per Figure 1 it runs in a different cloud section than
		// the access-control components — attach it to a node of another
		// cloud when the federation has one.
		analyserNode := infraNode
		for _, c := range d.topology.Clouds {
			if c.Name != infra.Cloud {
				analyserNode = d.Nodes[c.Name]
				break
			}
		}
		d.Analyser, err = core.NewAnalyser("analyser", analyserNode, analyserID, d.Key)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.Analyser.Start()

		d.Monitor = core.NewMonitor(infraNode, clock.System{})
		d.Monitor.Start()
	}

	// Publish the initial policy.
	if err := d.PublishPolicy(cfg.Policy); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// PublishPolicy publishes a policy set: it is stored in the PRP, its digest
// is anchored on-chain by the PAP (waiting for confirmation), the PDP loads
// it, and the Analyser recompiles its logical form.
func (d *Deployment) PublishPolicy(ps *xacml.PolicySet) error {
	digest, err := d.PRP.Publish(ps)
	if err != nil {
		return err
	}
	pa := core.PolicyAnnouncement{Version: ps.Version, Digest: digest, Active: true}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rec, err := d.papSender.SendAndWait(ctx, contract.Call{
		Contract: core.ContractName, Method: core.MethodPolicy, Args: pa.Encode(),
	}, 1)
	if err != nil {
		return fmt.Errorf("drams: anchor policy: %w", err)
	}
	if !rec.OK {
		return fmt.Errorf("drams: anchor policy rejected: %s", rec.Err)
	}
	d.PDP.Load(ps)
	if d.Analyser != nil {
		d.Analyser.LoadPolicy(ps)
		// Give the analyser's chain view a moment to include the anchor,
		// then verify it (non-fatal if its node is still syncing; the
		// anchor check re-runs on chain state, so this is best-effort).
		_ = d.Analyser.VerifyPolicyAnchor()
	}
	return nil
}

// NewRequestID mints a correlation ID for an access request.
func (d *Deployment) NewRequestID() string {
	return d.ids.Next().String()
}

// NewRequest builds an empty request with a fresh correlation ID.
func (d *Deployment) NewRequest() *xacml.Request {
	return xacml.NewRequest(d.NewRequestID())
}

// TamperPEP installs attack injection at a tenant's PEP (nil clears).
func (d *Deployment) TamperPEP(tenant string, t *Tamper) error {
	pep, ok := d.PEPs[tenant]
	if !ok {
		return fmt.Errorf("drams: tenant %q has no PEP", tenant)
	}
	pep.SetTamper(t)
	return nil
}

// CompromisePDP swaps the PDP's evaluator through a wrapper — the attack
// framework uses this to model altered evaluation processes. Passing nil
// restores the honest PDP.
func (d *Deployment) CompromisePDP(wrap func(xacml.Evaluator) xacml.Evaluator) {
	if wrap == nil {
		d.PDPService.SetEvaluator(d.PDP)
		return
	}
	d.PDPService.SetEvaluator(wrap(d.PDP))
}

// WaitForAlert blocks until the monitor sees the given alert for reqID. It
// is a shim over a one-shot Alerts subscription.
func (d *Deployment) WaitForAlert(ctx context.Context, reqID string, t AlertType) (Alert, error) {
	if d.Monitor == nil {
		return Alert{}, ErrMonitoringDisabled
	}
	return d.Monitor.WaitForAlert(ctx, reqID, t)
}

// WaitForMatched blocks until the exchange for reqID completed cleanly
// on-chain. It is a shim over a one-shot Alerts subscription.
func (d *Deployment) WaitForMatched(ctx context.Context, reqID string) error {
	if d.Monitor == nil {
		return ErrMonitoringDisabled
	}
	return d.Monitor.WaitForMatched(ctx, reqID)
}

// InfraNode returns the blockchain node of the infrastructure tenant's
// cloud (the monitor's view).
func (d *Deployment) InfraNode() *blockchain.Node {
	infra, err := d.topology.InfrastructureTenant()
	if err != nil {
		return nil
	}
	return d.Nodes[infra.Cloud]
}

// Topology returns the federation topology.
func (d *Deployment) Topology() *federation.Topology { return d.topology }

// Close stops every component. Safe to call more than once.
func (d *Deployment) Close() {
	if d.closed {
		return
	}
	d.closed = true
	if d.Monitor != nil {
		d.Monitor.Stop()
	}
	if d.Analyser != nil {
		d.Analyser.Stop()
	}
	for _, li := range d.LIs {
		li.Stop()
	}
	for _, node := range d.Nodes {
		node.Stop()
	}
	if d.Net != nil {
		d.Net.Close()
	}
}
