// Package experiment implements the E1–E8 experiment drivers of DESIGN.md —
// the reproduction of every figure/table obligation derived from the paper
// (Figure 1, the §I threat model, and the §III Log Size / System Integrity
// discussions). Each driver returns a Table that cmd/drams-bench prints and
// bench_test.go reports, so EXPERIMENTS.md numbers are regenerable with one
// command.
package experiment

import (
	"fmt"
	"strings"
	"time"

	"drams"
	"drams/internal/federation"
	"drams/internal/logger"
	"drams/internal/xacml"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Header, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond)) }
func msF(v float64) string      { return fmt.Sprintf("%.2f", v) }
func count(n int64) string      { return fmt.Sprintf("%d", n) }
func pct(num, den int) string   { return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(max(1, den))) }
func rate(n int, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1f", float64(n)/d.Seconds())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// StandardPolicy is the benchmark access-control policy: role-gated reads
// and writes over records with a default deny (canonical copy in
// xacml.StandardPolicy, shared with the drams-node daemon).
func StandardPolicy(version string) *xacml.PolicySet {
	return xacml.StandardPolicy(version)
}

// StandardRequest builds the i-th benchmark request (cycling through
// permit/deny outcomes).
func StandardRequest(dep *drams.Deployment, i int) *xacml.Request {
	roles := []string{"doctor", "nurse", "intern"}
	ops := []string{"read", "write"}
	return dep.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String(roles[i%len(roles)])).
		Add(xacml.CatAction, "op", xacml.String(ops[(i/3)%len(ops)])).
		Add(xacml.CatResource, "type", xacml.String("record"))
}

// edgeClients returns one Client per edge tenant, in EdgeTenants order.
func edgeClients(dep *drams.Deployment) ([]*drams.Client, error) {
	tenants := dep.Topology().EdgeTenants()
	clients := make([]*drams.Client, len(tenants))
	for i, ten := range tenants {
		c, err := dep.Client(ten.Name)
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}
	return clients, nil
}

// NewStandardDeployment builds the deployment shape shared by the system
// experiments: one edge tenant per cloud plus the infrastructure tenant.
func NewStandardDeployment(clouds int, mode logger.SubmitMode, monitorOff bool, timeoutBlocks uint64) (*drams.Deployment, error) {
	if timeoutBlocks == 0 {
		timeoutBlocks = 30
	}
	if clouds < 1 {
		clouds = 2
	}
	return drams.New(drams.Config{
		Policy:             StandardPolicy("v1"),
		Topology:           federation.SimpleTopology("bench", clouds),
		Difficulty:         8,
		TimeoutBlocks:      timeoutBlocks,
		EmptyBlockInterval: 15 * time.Millisecond,
		SubmitMode:         mode,
		MonitorOff:         monitorOff,
		Seed:               1,
	})
}
