// Package federation is a component: it must not import obs back.
package federation

import (
	"fix/internal/obs" // want "components never import obs"
)

// Service owns its registry via the wiring layer, not like this.
type Service struct{ reg any }

// New builds the service the wrong way around.
func New() *Service { return &Service{reg: obs.NewRegistry()} }
