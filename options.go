package drams

import (
	"time"

	"drams/internal/federation"
	"drams/internal/logger"
	"drams/internal/transport"
	"drams/internal/xacml"
)

// Option adjusts a Config during Open. Options are applied in order over
// the zero Config, so later options win; anything not covered by an option
// can still be set with WithConfig.
type Option func(*Config)

// Open assembles and starts a deployment from a policy plus functional
// options — the client-centric construction path layered over Config (which
// remains the compatibility surface for struct-literal callers):
//
//	dep, err := drams.Open(policy,
//	    drams.WithTopology(federation.SimpleTopology("faas", 3)),
//	    drams.WithSeed(42),
//	)
func Open(policy *xacml.PolicySet, opts ...Option) (*Deployment, error) {
	cfg := Config{Policy: policy}
	for _, opt := range opts {
		opt(&cfg)
	}
	return New(cfg)
}

// WithConfig replaces the whole Config (keeping the Open-supplied policy if
// the given config has none) — the escape hatch for knobs without a
// dedicated option.
func WithConfig(c Config) Option {
	return func(cfg *Config) {
		policy := cfg.Policy
		*cfg = c
		if cfg.Policy == nil {
			cfg.Policy = policy
		}
	}
}

// WithTopology sets the federation topology.
func WithTopology(t *federation.Topology) Option {
	return func(c *Config) { c.Topology = t }
}

// WithSeed makes network behaviour, identities and request IDs
// reproducible.
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithDifficulty sets the PoW difficulty in leading-zero bits.
func WithDifficulty(bits uint8) Option {
	return func(c *Config) { c.Difficulty = bits }
}

// WithTimeoutBlocks sets the log-match M3 window Δ in blocks.
func WithTimeoutBlocks(n uint64) Option {
	return func(c *Config) { c.TimeoutBlocks = n }
}

// WithEmptyBlockInterval keeps blocks flowing when idle.
func WithEmptyBlockInterval(d time.Duration) Option {
	return func(c *Config) { c.EmptyBlockInterval = d }
}

// WithMaxTxPerBlock caps block size.
func WithMaxTxPerBlock(n int) Option {
	return func(c *Config) { c.MaxTxPerBlock = n }
}

// WithSubmitMode sets the Logging Interface submission mode.
func WithSubmitMode(m logger.SubmitMode) Option {
	return func(c *Config) { c.SubmitMode = m }
}

// WithMonitoring enables or disables the whole monitoring plane (probes,
// analyser, monitor). Disabled is the baseline for overhead experiments.
func WithMonitoring(enabled bool) Option {
	return func(c *Config) { c.MonitorOff = !enabled }
}

// WithoutVerdicts drops the analyser-verdict requirement from the log-match
// contract.
func WithoutVerdicts() Option {
	return func(c *Config) { c.DisableVerdicts = true }
}

// WithNetwork shapes the simulated federation network.
func WithNetwork(latency, jitter time.Duration) Option {
	return func(c *Config) {
		c.NetLatency = latency
		c.NetJitter = jitter
	}
}

// WithTransport runs the deployment on the given wire backend instead of
// the default in-process simulator — e.g. a transport/tcp instance so other
// processes can join the federation. The caller keeps ownership: Close does
// not shut a supplied transport down.
func WithTransport(t transport.Transport) Option {
	return func(c *Config) { c.Transport = t }
}

// WithListenAddr makes the deployment build its own TCP transport listening
// on host:port (instead of netsim), so the federation is reachable from
// other processes.
func WithListenAddr(addr string) Option {
	return func(c *Config) { c.ListenAddr = addr }
}

// WithPeers seeds the WithListenAddr TCP transport with other processes'
// advertise addresses.
func WithPeers(addrs ...string) Option {
	return func(c *Config) { c.TransportPeers = append([]string(nil), addrs...) }
}

// WithDataDir makes every chain node durable: persisted chains under dir
// are re-validated and resumed on Open (instead of a fresh genesis), every
// accepted block is written incrementally from then on, and the policy
// watcher reconciles with the restored on-chain policy state.
func WithDataDir(dir string) Option {
	return func(c *Config) { c.DataDir = dir }
}

// WithPEPTimeout bounds a PEP's wait for the PDP.
func WithPEPTimeout(d time.Duration) Option {
	return func(c *Config) { c.PEPTimeout = d }
}

// WithTPM seals the shared LI key in a per-tenant SoftTPM (the §III System
// Integrity mitigation).
func WithTPM() Option {
	return func(c *Config) { c.UseTPM = true }
}

// WithRemoteAgents separates probing agents from their Logging Interfaces
// over the tenant network.
func WithRemoteAgents() Option {
	return func(c *Config) { c.RemoteAgents = true }
}

// WithMineAll makes every cloud's node mine (more realistic, more forks)
// instead of the designated-producer default.
func WithMineAll() Option {
	return func(c *Config) { c.MineAll = true }
}

// WithVerifyWorkers sizes each node's signature-verification worker pool.
func WithVerifyWorkers(n int) Option {
	return func(c *Config) { c.VerifyWorkers = n }
}

// WithVerifyCache bounds each node's verified-transaction LRU (negative
// disables it).
func WithVerifyCache(entries int) Option {
	return func(c *Config) { c.VerifyCacheSize = entries }
}

// WithSequentialVerify disables the batch-verification pipeline — the
// pre-pipeline baseline for overhead experiments.
func WithSequentialVerify() Option {
	return func(c *Config) { c.SequentialVerify = true }
}

// WithDecisionCache bounds the PDP decision cache in entries.
func WithDecisionCache(entries int) Option {
	return func(c *Config) { c.DecisionCacheSize = entries }
}

// WithoutDecisionCache evaluates every request from scratch — the overhead
// baseline.
func WithoutDecisionCache() Option {
	return func(c *Config) { c.DisableDecisionCache = true }
}
