// Package federation is a component: it must compile against transport
// interfaces only.
package federation

import (
	_ "fix/internal/netsim" // want "components must compile against internal/transport interfaces"
)

// Service is a placeholder component.
type Service struct{}
