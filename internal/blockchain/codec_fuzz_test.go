package blockchain

import (
	"bytes"
	"testing"
)

// Fuzzing the wire decoders: arbitrary bytes must never panic, and every
// accepted input must re-encode/re-decode to the same value (the decoder and
// encoder agree on one canonical binary form).

func FuzzDecodeTx(f *testing.F) {
	tx := testTx(f, "alice", 3)
	f.Add(EncodeTx(tx))
	f.Add(EncodeTxJSON(tx))
	f.Add([]byte{codecVersion})
	f.Add([]byte("{"))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeTx(data)
		if err != nil {
			return
		}
		re, err := AppendTx(nil, &got)
		if err != nil {
			// JSON-decoded values may exceed binary field limits; they
			// must still have decoded without panicking.
			return
		}
		back, err := DecodeTx(re)
		if err != nil {
			t.Fatalf("re-decode of accepted tx failed: %v", err)
		}
		// Compare canonical encodings, not structs: the JSON fallback may
		// produce empty-but-non-nil byte fields that binary canonicalises
		// to nil without changing meaning.
		re2, err := AppendTx(nil, &back)
		if err != nil {
			t.Fatalf("re-encode of canonical tx failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("tx encoding not stable:\n got %x\nwant %x", re2, re)
		}
		if back.ID() != got.ID() {
			t.Fatal("tx ID changed through canonical re-encode")
		}
	})
}

func FuzzDecodeBlock(f *testing.F) {
	for _, n := range []int{0, 2} {
		b := testBlockForCodec(f, n)
		f.Add(b.Encode())
		f.Add(EncodeBlockJSON(b))
	}
	f.Add([]byte{codecVersion, 1, 2, 3})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeBlock(data)
		if err != nil {
			return
		}
		re, err := AppendBlock(nil, got)
		if err != nil {
			return
		}
		back, err := DecodeBlock(re)
		if err != nil {
			t.Fatalf("re-decode of accepted block failed: %v", err)
		}
		if back.Hash() != got.Hash() {
			t.Fatal("block hash changed through canonical re-encode")
		}
		if !bytes.Equal(re, func() []byte { b, _ := AppendBlock(nil, back); return b }()) {
			t.Fatal("binary encoding not stable")
		}
	})
}

func FuzzDecodeRangeResp(f *testing.F) {
	resp := rangeResp{Blocks: [][]byte{testBlockForCodec(f, 1).Encode()}}
	f.Add(encodeRangeResp(&resp))
	f.Add([]byte(`{"blocks":[]}`))
	f.Add([]byte{codecVersion, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeRangeResp(data)
		if err != nil {
			return
		}
		back, err := decodeRangeResp(encodeRangeResp(&got))
		if err != nil {
			t.Fatalf("re-decode of accepted range response failed: %v", err)
		}
		if len(back.Blocks) != len(got.Blocks) {
			t.Fatal("range response not canonical")
		}
	})
}
