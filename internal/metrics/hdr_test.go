package metrics

import (
	"math"
	"sort"
	"testing"
)

// splitmix64 is a tiny deterministic PRNG so the accuracy pin below is
// byte-for-byte reproducible across runs and machines.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestHistogramQuantileErrorBound pins the HDR guarantee the load harness
// depends on: over 1M heavily skewed samples, every reported quantile stays
// within the log-bucket relative error bound of the exact sorted-reference
// quantile. The old reservoir-sampling histogram fails this at p99/p999 —
// under long-run open-loop workloads the reservoir under-represents the
// tail, which is precisely where SLO thresholds look.
func TestHistogramQuantileErrorBound(t *testing.T) {
	const n = 1_000_000
	h := NewHistogram(0)
	ref := make([]float64, 0, n)
	state := uint64(0x5eed)
	for i := 0; i < n; i++ {
		// Log-uniform over [1, 10^4): ~heavy right tail, four decades of
		// span — the shape of latency under saturation.
		u := float64(splitmix64(&state)>>11) / (1 << 53)
		v := math.Pow(10, 4*u)
		h.Observe(v)
		ref = append(ref, v)
	}
	sort.Float64s(ref)

	exact := func(q float64) float64 {
		pos := q * float64(n-1)
		lo, hi := int(math.Floor(pos)), int(math.Ceil(pos))
		frac := pos - float64(lo)
		return ref[lo]*(1-frac) + ref[hi]*frac
	}

	// 2^-subBits bucket resolution plus interpolation slack.
	const maxRelErr = 0.005
	for _, q := range []float64{0.50, 0.90, 0.99, 0.999, 0.9999} {
		want := exact(q)
		got := h.Quantile(q)
		rel := math.Abs(got-want) / want
		if rel > maxRelErr {
			t.Errorf("q%.4f = %.4f, exact %.4f, rel err %.5f > %.5f",
				q, got, want, rel, maxRelErr)
		}
	}

	// Extremes are exact, count is exact, mean is exact.
	if h.Quantile(0) != ref[0] || h.Quantile(1) != ref[n-1] {
		t.Errorf("extremes: q0=%v want %v, q1=%v want %v",
			h.Quantile(0), ref[0], h.Quantile(1), ref[n-1])
	}
	if h.Count() != n {
		t.Errorf("count = %d, want %d", h.Count(), n)
	}
	var sum float64
	for _, v := range ref {
		sum += v
	}
	if mean := h.Mean(); math.Abs(mean-sum/n)/(sum/n) > 1e-9 {
		t.Errorf("mean = %v, want %v", mean, sum/n)
	}

	// The whole distribution fits in a bounded bucket map: four decades at
	// 1024 sub-buckets per octave is ~14 octaves ≈ 14k buckets.
	if got := h.Buckets(); got > 15_000 {
		t.Errorf("bucket count %d exceeds the log-bucket bound", got)
	}

	// Snapshot must agree with Quantile (same bucket walk).
	s := h.Snapshot()
	for _, pair := range []struct{ got, q float64 }{
		{s.P50, 0.50}, {s.P90, 0.90}, {s.P99, 0.99}, {s.P999, 0.999},
	} {
		if math.Abs(pair.got-h.Quantile(pair.q)) > 1e-9 {
			t.Errorf("snapshot p%v = %v, Quantile = %v", pair.q, pair.got, h.Quantile(pair.q))
		}
	}
}
