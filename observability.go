package drams

import (
	"fmt"
	"net/http"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/federation"
	"drams/internal/logger"
	"drams/internal/metrics"
	"drams/internal/obs"
	"drams/internal/pap"
	"drams/internal/transport"
	"drams/internal/xacml"
)

// TraceSpan is one recorded stage of a request's end-to-end timeline.
type TraceSpan = obs.Span

// ReadyChainLag is how many blocks a node may trail the best height its
// peers have advertised and still count as caught up: one block can always
// be in flight, and one more may have been mined while the head probe was
// travelling.
const ReadyChainLag = 2

// initObservability builds the deployment-wide metrics registry, gatherer,
// tracer and health checks. Always on: an idle registry costs nothing until
// something scrapes it.
func (d *Deployment) initObservability() {
	d.registry = metrics.NewRegistry()
	d.gatherer = obs.NewGatherer(d.registry)
	d.tracer = obs.NewTracer(d.registry, obs.DefaultTraceCapacity)
	d.health = obs.NewHealth()
}

// Registry returns the deployment-wide metrics registry.
func (d *Deployment) Registry() *metrics.Registry { return d.registry }

// Gatherer returns the deployment's metric gatherer — the snapshot source
// behind MetricsHandler.
func (d *Deployment) Gatherer() *obs.Gatherer { return d.gatherer }

// Health returns the deployment's readiness checks (chain catch-up, policy
// watcher freshness). Callers may add their own checks before serving.
func (d *Deployment) Health() *obs.Health { return d.health }

// Trace reconstructs the recorded end-to-end timeline of one request,
// sorted by stage start time: PEP decide, PDP evaluation, LI flush wait,
// chain anchoring, analyser verification, monitor match/alert. The trace
// is keyed by the request's correlation ID (requests without one get a
// minted trace ID, returned in Request.TraceID). Nil when unknown or
// already evicted.
func (d *Deployment) Trace(reqID string) []TraceSpan { return d.tracer.Trace(reqID) }

// MetricsHandler serves /metrics (Prometheus text exposition), /healthz and
// /readyz for this deployment. The handler snapshots before writing, so a
// stalled scraper never holds a lock the decision path could contend on.
func (d *Deployment) MetricsHandler() http.Handler { return obs.Handler(d.gatherer, d.health) }

// wireObservability registers every component's counters under the
// drams_* namespace, attaches the span recorder to each pipeline stage,
// and installs the deployment's readiness checks. Called once from New
// after all components exist.
func (d *Deployment) wireObservability() {
	g := d.gatherer

	// Tracer attachment (monitoring plane components are nil-checked:
	// MonitorOff deployments still trace the PEP/PDP hot path).
	for _, pep := range d.PEPs {
		pep.SetTracer(d.tracer)
	}
	if d.PDPService != nil {
		d.PDPService.SetTracer(d.tracer)
	}
	for _, li := range d.LIs {
		li.SetTracer(d.tracer)
	}
	if d.Monitor != nil {
		d.Monitor.SetTracer(d.tracer)
	}
	if d.Analyser != nil {
		d.Analyser.SetTracer(d.tracer)
	}

	for name, node := range d.Nodes {
		g.Register(NodeCollector("node@"+name, node))
	}
	if d.Transport != nil {
		g.Register(TransportCollector(d.Transport))
	}
	for name, pep := range d.PEPs {
		g.Register(PEPCollector(name, pep))
	}
	if d.PDPService != nil {
		g.Register(PDPCollector(d.PDPService, d.PDP))
	}
	for name, li := range d.LIs {
		g.Register(LICollector(name, li))
	}
	for name, agent := range d.Agents {
		g.Register(AgentCollector(name, agent))
	}
	for name, agent := range d.RemoteAgents {
		g.Register(AgentCollector(name, agent))
	}
	if d.watcher != nil {
		g.Register(WatcherCollector(d.watcher))
	}
	if d.Monitor != nil {
		g.Register(MonitorCollector(d.Monitor))
	}
	if d.Analyser != nil {
		g.Register(AnalyserCollector(d.Analyser))
	}

	// Readiness: the deployment is ready to serve decisions when its
	// infrastructure node has caught up with the federation chain and the
	// policy watcher has applied the chain's active policy version.
	if node := d.InfraNode(); node != nil {
		d.health.AddReady("chain", ChainReady(node))
		if d.watcher != nil {
			d.health.AddReady("policy-watcher", WatcherReady(node, d.watcher))
		}
	}
}

// ChainReady returns a readiness check reporting whether the node's chain
// is within ReadyChainLag blocks of the best height any peer has advertised
// (vacuously ready before first peer contact).
func ChainReady(node *blockchain.Node) func() error {
	return func() error {
		if node.CaughtUp(ReadyChainLag) {
			return nil
		}
		return fmt.Errorf("syncing: height %d trails best seen %d by more than %d blocks",
			node.Chain().Height(), node.BestSeenHeight(), ReadyChainLag)
	}
}

// WatcherReady returns a readiness check reporting whether the policy
// watcher has applied the chain's active policy version — a stale watcher
// means local decisions may be made under a superseded policy.
func WatcherReady(node *blockchain.Node, w *pap.Watcher) func() error {
	return func() error {
		var active string
		node.Chain().ReadState(core.PolicyContractName, func(st contract.StateDB) {
			active, _, _ = core.ReadActivePolicy(st)
		})
		if active == "" {
			// No policy anchored yet: nothing to be stale against.
			return nil
		}
		if applied := w.Stats().Version; applied != active {
			return fmt.Errorf("stale: chain active policy %q, watcher applied %q", active, applied)
		}
		return nil
	}
}

// NodeCollector samples one chain node's counters as drams_node_* series
// labelled with the member name. Shared by drams.Open deployments and the
// drams-node daemon so both expose identical series.
func NodeCollector(member string, node *blockchain.Node) obs.Collector {
	l := fmt.Sprintf("{member=%q}", member)
	return func() []metrics.Sample {
		s := node.Stats()
		return []metrics.Sample{
			obs.C("drams_node_blocks_mined_total"+l, "Blocks mined by this node.", s.BlocksMined),
			obs.C("drams_node_blocks_accepted_total"+l, "Blocks accepted onto the best chain.", s.BlocksAccepted),
			obs.C("drams_node_blocks_rejected_total"+l, "Blocks rejected during validation.", s.BlocksRejected),
			obs.C("drams_node_txs_submitted_total"+l, "Transactions admitted to the mempool.", s.TxsSubmitted),
			obs.C("drams_node_events_dropped_total"+l, "Event notifications dropped at full subscriber buffers.", s.EventsDropped),
			obs.C("drams_node_mining_cancelled_total"+l, "Mining rounds abandoned because the head moved.", s.MiningCancelled),
			obs.C("drams_node_orphans_resolved_total"+l, "Orphan blocks resolved by ancestor fetch.", s.OrphansResolved),
			obs.C("drams_node_ingest_batches_total"+l, "Batched gossip admissions.", s.IngestBatches),
			obs.C("drams_node_ingest_dropped_total"+l, "Gossip submissions dropped by the ingest queue.", s.IngestDropped),
			obs.C("drams_node_blocks_persisted_total"+l, "Blocks written to the durable chain store.", s.BlocksPersisted),
			obs.C("drams_node_persist_errors_total"+l, "Durable store write failures.", s.PersistErrors),
			obs.C("drams_node_blocks_reloaded_total"+l, "Persisted blocks replayed at construction.", s.BlocksReloaded),
			obs.C("drams_node_reload_dropped_total"+l, "Persisted blocks discarded by reload validation.", s.ReloadDropped),
			obs.C("drams_node_sync_calls_total"+l, "Catch-up protocol transport calls.", s.SyncCalls),
			obs.C("drams_node_sync_blocks_total"+l, "Blocks obtained through catch-up sync.", s.SyncBlocks),
			obs.C("drams_node_verifier_verified_total"+l, "Signature verifications performed.", s.Verifier.Verified),
			obs.C("drams_node_verifier_cache_hits_total"+l, "Verifications skipped via the verified-tx cache.", s.Verifier.CacheHits),
			obs.C("drams_node_verifier_cache_misses_total"+l, "Verified-tx cache lookups that fell through.", s.Verifier.CacheMisses),
			obs.C("drams_node_verifier_batches_total"+l, "Batch verification calls.", s.Verifier.Batches),
			obs.C("drams_node_verifier_failures_total"+l, "Transactions that failed signature verification.", s.Verifier.Failures),
			obs.G("drams_node_mempool_len"+l, "Pending transactions in the mempool.", int64(s.MempoolLen)),
			obs.G("drams_node_seen_cache_len"+l, "Entries in the gossip duplicate-suppression cache.", int64(s.SeenCacheLen)),
			obs.G("drams_node_chain_height"+l, "Height of the node's best chain.", int64(node.Chain().Height())),
			obs.G("drams_node_best_seen_height"+l, "Best chain height advertised by any peer.", int64(node.BestSeenHeight())),
		}
	}
}

// TransportCollector samples the wire backend's counters.
func TransportCollector(tr transport.Transport) obs.Collector {
	return func() []metrics.Sample {
		s := tr.Stats()
		return []metrics.Sample{
			obs.C("drams_transport_sent_total", "Messages handed to the transport.", s.Sent),
			obs.C("drams_transport_delivered_total", "Messages delivered to an endpoint.", s.Delivered),
			obs.C("drams_transport_dropped_total", "Messages dropped in transit.", s.Dropped),
			obs.C("drams_transport_bytes_total", "Payload bytes carried.", s.Bytes),
			obs.C("drams_transport_reconnects_total", "Peer links re-established after loss.", s.Reconnects),
		}
	}
}

// PEPCollector samples one tenant's PEP counters.
func PEPCollector(tenant string, pep *federation.PEPService) obs.Collector {
	l := fmt.Sprintf("{tenant=%q}", tenant)
	return func() []metrics.Sample {
		s := pep.Stats()
		return []metrics.Sample{
			obs.C("drams_pep_requests_total"+l, "Access requests entering the PEP.", s.Requests),
			obs.C("drams_pep_permits_total"+l, "Requests enforced as Permit.", s.Permits),
			obs.C("drams_pep_denies_total"+l, "Requests enforced as not-Permit.", s.Denies),
			obs.C("drams_pep_failures_total"+l, "Requests that failed before enforcement.", s.Failures),
		}
	}
}

// PDPCollector samples the PDP service and (when caching is enabled) the
// decision-cache counters. pdp may be nil.
func PDPCollector(svc *federation.PDPService, pdp *xacml.PDP) obs.Collector {
	return func() []metrics.Sample {
		s := svc.Stats()
		out := []metrics.Sample{
			obs.C("drams_pdp_evaluations_total", "Requests evaluated by the PDP service.", s.Evaluations),
			obs.C("drams_pdp_failures_total", "PDP service evaluation failures.", s.Failures),
		}
		if pdp != nil {
			if c := pdp.Cache(); c != nil {
				cs := c.Stats()
				out = append(out,
					obs.C("drams_pdp_cache_hits_total", "Decisions answered from the cache.", cs.Hits),
					obs.C("drams_pdp_cache_misses_total", "Cache lookups that fell through to evaluation.", cs.Misses),
					obs.C("drams_pdp_cache_invalidations_total", "Entries discarded for a stale policy digest.", cs.Invalidations),
					obs.C("drams_pdp_cache_evictions_total", "Entries displaced by the LRU bound.", cs.Evictions),
					obs.C("drams_pdp_cache_purges_total", "Whole-cache clears (policy loads).", cs.Purges),
				)
			}
		}
		return out
	}
}

// LICollector samples one tenant's Logging Interface counters, including
// the flush-depth histogram of the batch-anchoring pipeline.
func LICollector(tenant string, li *logger.LI) obs.Collector {
	l := fmt.Sprintf("{tenant=%q}", tenant)
	return func() []metrics.Sample {
		s := li.Stats()
		return []metrics.Sample{
			obs.C("drams_li_submitted_total"+l, "Probe records submitted on-chain.", s.Submitted),
			obs.C("drams_li_failed_total"+l, "Probe records whose submission failed.", s.Failed),
			obs.C("drams_li_dropped_total"+l, "Probe records dropped at a full queue.", s.Dropped),
			obs.C("drams_li_batches_total"+l, "Merkle-anchored batch transactions submitted.", s.BatchesSubmitted),
			obs.G("drams_li_queue_len"+l, "Records waiting in the LI queue.", int64(s.QueueLen)),
			obs.H("drams_li_flush_depth"+l, "Records anchored per flush (1 = unbatched).", li.FlushDepth()),
		}
	}
}

// agentStats is satisfied by both in-process and remote probing agents.
type agentStats interface{ Stats() logger.AgentStats }

// AgentCollector samples one tenant's probing-agent counters.
func AgentCollector(tenant string, agent agentStats) obs.Collector {
	l := fmt.Sprintf("{tenant=%q}", tenant)
	return func() []metrics.Sample {
		s := agent.Stats()
		return []metrics.Sample{
			obs.C("drams_agent_observed_total"+l, "Exchanges observed by the probing agent.", s.Observed),
			obs.C("drams_agent_errors_total"+l, "Probe observations that failed to log.", s.Errors),
		}
	}
}

// WatcherCollector samples the policy-lifecycle watcher counters.
func WatcherCollector(w *pap.Watcher) obs.Collector {
	return func() []metrics.Sample {
		s := w.Stats()
		return []metrics.Sample{
			obs.C("drams_watcher_staged_total", "Policy versions staged for activation.", s.Staged),
			obs.C("drams_watcher_activations_total", "Policy versions activated locally.", s.Activations),
			obs.C("drams_watcher_rejections_total", "Policy versions rejected locally.", s.Rejections),
			obs.C("drams_watcher_events_dropped_total", "Chain-event notifications the watcher missed.", s.EventsDropped),
			obs.C("drams_watcher_resyncs_total", "Chain-state reconciliations after missed events.", s.Resyncs),
			obs.G("drams_watcher_height", "Chain height of the last local policy activation.", int64(s.Height)),
		}
	}
}

// MonitorCollector samples the off-chain monitor, including per-type alert
// counters and the detection-latency histogram.
func MonitorCollector(m *core.Monitor) obs.Collector {
	return func() []metrics.Sample {
		s := m.Stats()
		out := []metrics.Sample{
			obs.C("drams_monitor_logs_seen_total", "On-chain log-stored events consumed.", s.LogsSeen),
			obs.C("drams_monitor_matched_total", "Requests whose logs matched cleanly on-chain.", s.Matched),
			obs.C("drams_monitor_stream_dropped_total", "Subscriber events dropped at full buffers.", s.StreamDropped),
			obs.C("drams_monitor_policy_activations_total", "Policy rollout activations observed.", s.PolicyActivations),
			obs.C("drams_monitor_policy_rejections_total", "Policy rollout rejections observed.", s.PolicyRejections),
			obs.G("drams_monitor_tracked", "In-flight detection-latency entries.", int64(s.Tracked)),
			obs.G("drams_monitor_subscribers", "Live alert subscriptions.", int64(s.Subscribers)),
			obs.H("drams_monitor_detection_latency_ms", "Wall-clock ms from probe submission to off-chain alert.", m.DetectionLatency()),
		}
		for _, t := range core.AllAlertTypes() {
			out = append(out, obs.C(
				fmt.Sprintf("drams_monitor_alerts_total{type=%q}", t),
				"Security alerts observed, by M-check type.", s.AlertsByType[t]))
		}
		return out
	}
}

// AnalyserCollector samples the analyser counters.
func AnalyserCollector(an *core.Analyser) obs.Collector {
	return func() []metrics.Sample {
		s := an.Stats()
		return []metrics.Sample{
			obs.C("drams_analyser_verdicts_total", "Expected-decision verdicts submitted.", s.VerdictsSubmitted),
			obs.C("drams_analyser_mismatches_total", "Re-derived decisions disagreeing with the PDP.", s.MismatchesFound),
			obs.C("drams_analyser_failures_total", "Log records the analyser could not verify.", s.Failures),
		}
	}
}
