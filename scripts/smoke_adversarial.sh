#!/usr/bin/env bash
# smoke_adversarial.sh — adversarial multi-process federation drill.
#
# Starts three drams-node daemons on loopback (infrastructure + two edge
# tenants). tenant-2's process is a Byzantine member: it mines, but after
# -byzantine-after its chain node suppresses ALL outbound block/tx gossip
# (withholding attack), trapping its own tenant's probe-log records on the
# compromised node. The honest side keeps anchoring the PDP-side records of
# tenant-2's exchanges, so the M3 deadline must flag the half-anchored
# requests:
#
#   1. Healthy phase: both edges serve Permit-under-v1 decisions and the
#      fleet mines past a minimum height.
#   2. The withholding attack engages (greppable BYZANTINE line).
#   3. The infrastructure monitor raises ALERT type=message-suppressed for
#      a tenant-2 request within the timeout.
#   4. False-positive guard: the honest tenant-1 stream must produce no
#      alert at all.
#
# Exits non-zero on any failure or on the hard timeout.
#
# Usage: scripts/smoke_adversarial.sh [bin-dir]
set -u

TIMEOUT="${SMOKE_TIMEOUT:-120}"
TARGET_HEIGHT="${SMOKE_HEIGHT:-3}"
ENGAGE_AFTER="${SMOKE_ENGAGE_AFTER:-15}"
PORT_BASE="${SMOKE_PORT_BASE:-19801}"
WORKDIR="$(mktemp -d)"
BIN="${1:-$WORKDIR}/drams-node"

cleanup() {
    [ -n "${PIDS:-}" ] && kill $PIDS 2>/dev/null
    wait 2>/dev/null
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# Static gate first: a broken invariant fails fast, before any daemons
# start (skippable for tight inner loops with SKIP_CHECK=1).
if [ -z "${SKIP_CHECK:-}" ]; then
    . "$(dirname "$0")/check.sh"
    drams_check || exit 1
fi

if [ ! -x "$BIN" ]; then
    echo "building drams-node..."
    go build -o "$BIN" ./cmd/drams-node || exit 1
fi

P1=$((PORT_BASE)) P2=$((PORT_BASE + 1)) P3=$((PORT_BASE + 2))
A1="127.0.0.1:$P1" A2="127.0.0.1:$P2" A3="127.0.0.1:$P3"
# -timeout-blocks 8: a short M3 window so detection lands well inside the
# smoke budget (consensus-critical, so set on every process).
COMMON="-federation tenant-1,tenant-2 -seed 7 -difficulty 8 -timeout-blocks 8 -run-for ${TIMEOUT}s"

"$BIN" -listen "$A1" -join "$A2,$A3" -tenant infrastructure $COMMON \
    >"$WORKDIR/infra.log" 2>&1 &
PIDS="$!"
"$BIN" -listen "$A2" -join "$A1,$A3" -tenant tenant-1 -request-every 300ms \
    $COMMON >"$WORKDIR/t1.log" 2>&1 &
PIDS="$PIDS $!"
"$BIN" -listen "$A3" -join "$A1,$A2" -tenant tenant-2 -request-every 300ms \
    -mine -byzantine withhold -byzantine-after "${ENGAGE_AFTER}s" \
    $COMMON >"$WORKDIR/t2.log" 2>&1 &
PIDS="$PIDS $!"

echo "3 daemons up (logs in $WORKDIR); tenant-2 turns Byzantine after ${ENGAGE_AFTER}s..."

fail() {
    echo "ADVERSARIAL SMOKE FAILED: $1" >&2
    for log in infra t1 t2; do
        [ -f "$WORKDIR/$log.log" ] || continue
        echo "--- $log.log (tail) ---" >&2
        tail -25 "$WORKDIR/$log.log" >&2
    done
    exit 1
}

deadline=$(( $(date +%s) + TIMEOUT ))

# Phase A: the federation is healthy before the attack — every process
# reaches the target height and both edges serve a v1 Permit.
ok=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    heights_ok=true
    for log in infra t1 t2; do
        h=$(grep -o 'status height=[0-9]*' "$WORKDIR/$log.log" 2>/dev/null | tail -1 | grep -o '[0-9]*$')
        [ -n "$h" ] && [ "$h" -ge "$TARGET_HEIGHT" ] || heights_ok=false
    done
    v1_ok=true
    for log in t1 t2; do
        grep -q 'decision req=.*decision=Permit policy=v1' "$WORKDIR/$log.log" 2>/dev/null || v1_ok=false
    done
    if $heights_ok && $v1_ok; then
        ok=1
        break
    fi
    sleep 1
done
[ -n "$ok" ] || fail "phase A (healthy federation) not met within ${TIMEOUT}s"
echo "federation healthy; waiting for the withholding attack to engage..."

# Phase B: the attack engages.
ok=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    if grep -q 'BYZANTINE mode=withhold engaged' "$WORKDIR/t2.log" 2>/dev/null; then
        ok=1
        break
    fi
    sleep 1
done
[ -n "$ok" ] || fail "phase B (byzantine engagement) not met within ${TIMEOUT}s"
echo "withholding engaged; waiting for M3 detection on the honest side..."

# Phase C: the monitor flags a trapped tenant-2 exchange. The victim's
# pep.* records are stuck on the Byzantine node, the PDP-side records
# anchor honestly, and the Δ-block deadline sweep raises the alert.
ok=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    if grep -q 'ALERT type=message-suppressed req=.* tenant=tenant-2' "$WORKDIR/infra.log" 2>/dev/null; then
        ok=1
        break
    fi
    sleep 1
done
[ -n "$ok" ] || fail "phase C (withholding not detected) within ${TIMEOUT}s"

# False-positive guard: the honest tenant-1 stream must stay alert-free.
if grep -q 'ALERT .*tenant=tenant-1' "$WORKDIR/infra.log" 2>/dev/null; then
    fail "false positive: alert raised for honest tenant-1"
fi

alerts=$(grep -c 'ALERT type=message-suppressed req=.* tenant=tenant-2' "$WORKDIR/infra.log")
echo "ADVERSARIAL SMOKE OK: withholding attack detected ($alerts message-suppressed alert(s) for tenant-2, none for honest tenant-1)"
exit 0
