package logger

import (
	"context"
	"sync"
	"time"

	"drams/internal/clock"
	"drams/internal/core"
	"drams/internal/metrics"
	"drams/internal/xacml"
)

// Agent is a probing agent: it senses access-control activity at the
// interception points of its tenant and forwards observations to the local
// Logging Interface (paper §II: "Probing agents for intercepting and
// forwarding data to create access logs").
//
// Agents are passive sensors: an observation failure never blocks or alters
// the access-control flow; it is counted and the M3 timeout check surfaces
// the gap.
type Agent struct {
	name   string
	tenant string
	li     *LI
	clk    clock.Clock

	observed metrics.Counter
	errors   metrics.Counter

	// muted kinds are observed but never forwarded — an attack drill
	// that leaves one leg of every exchange off-chain so the fleet's M3
	// timeout check must flag this member.
	mu    sync.RWMutex
	muted map[core.LogKind]bool

	// timeout bounds confirmed-mode submissions so a stalled chain cannot
	// block the access path indefinitely.
	timeout time.Duration
}

// AgentStats snapshot.
type AgentStats struct {
	Observed int64
	Errors   int64
}

// NewAgent builds an agent forwarding to li.
func NewAgent(name, tenant string, li *LI, clk clock.Clock) *Agent {
	if clk == nil {
		clk = clock.System{}
	}
	return &Agent{name: name, tenant: tenant, li: li, clk: clk, timeout: 30 * time.Second}
}

// Name returns the agent name.
func (a *Agent) Name() string { return a.name }

// Mute suppresses forwarding for one interception point (attack drill:
// the member keeps serving traffic, but the muted leg never reaches the
// chain, so every exchange trips the M3 message-suppressed check once its
// timeout window expires).
func (a *Agent) Mute(kind core.LogKind) {
	a.mu.Lock()
	if a.muted == nil {
		a.muted = make(map[core.LogKind]bool)
	}
	a.muted[kind] = true
	a.mu.Unlock()
}

// isMuted reports whether kind is drilled out.
func (a *Agent) isMuted(kind core.LogKind) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.muted[kind]
}

// Stats snapshots the agent counters.
func (a *Agent) Stats() AgentStats {
	return AgentStats{Observed: a.observed.Value(), Errors: a.errors.Value()}
}

func (a *Agent) submit(rec core.LogRecord, ec core.EncryptedContext) {
	a.observed.Inc()
	if a.isMuted(rec.Kind) {
		return
	}
	payload, err := a.li.Seal(ec, rec.ReqID)
	if err != nil {
		a.errors.Inc()
		return
	}
	rec.Payload = payload
	rec.Agent = a.name
	rec.Tenant = a.tenant
	rec.TimestampUnixNano = a.clk.Now().UnixNano()
	ctx, cancel := context.WithTimeout(context.Background(), a.timeout)
	defer cancel()
	if err := a.li.Log(ctx, rec); err != nil {
		a.errors.Inc()
	}
}

// PEPRequestSent records that the tenant's PEP sent req towards the PDP.
func (a *Agent) PEPRequestSent(req *xacml.Request) {
	a.submit(core.LogRecord{
		Kind:      core.KindPEPRequest,
		ReqID:     req.ID,
		TraceID:   req.TraceID,
		ReqDigest: req.Digest(),
	}, core.EncryptedContext{Request: req})
}

// PDPRequestReceived records that the PDP received req.
func (a *Agent) PDPRequestReceived(req *xacml.Request) {
	a.submit(core.LogRecord{
		Kind:      core.KindPDPRequest,
		ReqID:     req.ID,
		TraceID:   req.TraceID,
		ReqDigest: req.Digest(),
	}, core.EncryptedContext{Request: req})
}

// PDPResponseSent records the decision the PDP sent for req. The sealed
// context includes the request so the Analyser can re-derive the expected
// decision.
func (a *Agent) PDPResponseSent(req *xacml.Request, res xacml.Result) {
	a.submit(core.LogRecord{
		Kind:          core.KindPDPResponse,
		ReqID:         req.ID,
		TraceID:       req.TraceID,
		ReqDigest:     req.Digest(),
		RespDigest:    res.Digest(),
		DecisionTag:   a.li.DecisionTag(req.ID, res.Decision),
		PolicyVersion: res.PolicyVersion,
		PolicyDigest:  res.PolicyDigest,
	}, core.EncryptedContext{Request: req, Result: &res})
}

// PEPResponseReceived records the response as it arrived at the PEP and
// the effect the PEP actually enforced.
func (a *Agent) PEPResponseReceived(req *xacml.Request, res xacml.Result, enforced xacml.Decision) {
	a.submit(core.LogRecord{
		Kind:        core.KindPEPResponse,
		ReqID:       req.ID,
		TraceID:     req.TraceID,
		ReqDigest:   req.Digest(),
		RespDigest:  res.Digest(),
		DecisionTag: a.li.DecisionTag(req.ID, res.Decision),
		EnforcedTag: a.li.DecisionTag(req.ID, enforced),
	}, core.EncryptedContext{Request: req, Result: &res, Enforced: enforced})
}
