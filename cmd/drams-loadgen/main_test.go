package main

import (
	"os"
	"path/filepath"
	"testing"

	"drams/internal/benchfmt"
)

// TestExitCodeMapping pins the documented contract: 0 = pass, 1 = run
// error, 2 = thresholds failed. CI keys off these codes.
func TestExitCodeMapping(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up netsim deployments")
	}
	out := t.TempDir()

	// Unknown scenario, bad flags, bad target: run errors.
	if got := run([]string{"-scenario", "no-such-scenario"}); got != 1 {
		t.Fatalf("unknown scenario: exit %d, want 1", got)
	}
	if got := run([]string{"-bogus-flag"}); got != 1 {
		t.Fatalf("bad flag: exit %d, want 1", got)
	}
	if got := run([]string{"-scenario", "smoke", "-target", "carrier-pigeon"}); got != 1 {
		t.Fatalf("bad target: exit %d, want 1", got)
	}
	if got := run([]string{"-scenario", "smoke", "-target", "tcp"}); got != 1 {
		t.Fatalf("tcp without peers: exit %d, want 1", got)
	}
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("-list: exit %d, want 0", got)
	}

	// A passing run: tiny smoke load, generous thresholds.
	args := []string{
		"-scenario", "smoke", "-duration", "500ms", "-rate", "40",
		"-monitoring=false", "-out", out,
	}
	if got := run(args); got != 0 {
		t.Fatalf("passing run: exit %d, want 0", got)
	}
	rep, err := benchfmt.ReadFile(filepath.Join(out, "BENCH_loadgen_smoke.json"))
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	if !rep.Pass || rep.Kind != "loadgen" {
		t.Fatalf("report mismatch: %+v", rep)
	}
	if _, ok := rep.Metrics["dropped"]; !ok {
		t.Fatal("dropped_iterations missing from report")
	}
	// The run-end fleet /metrics snapshot rides along in the report.
	fleet, ok := rep.FleetMetrics["netsim"]
	if !ok {
		t.Fatalf("fleet_metrics missing netsim snapshot: %+v", rep.FleetMetrics)
	}
	if v := fleet[`drams_pep_requests_total{tenant="tenant-1"}`]; v <= 0 {
		t.Fatalf("fleet snapshot has no PEP traffic: %v", fleet)
	}

	// Same run with an impossible threshold: exit 2, report says fail.
	args = []string{
		"-scenario", "smoke", "-duration", "500ms", "-rate", "40",
		"-monitoring=false", "-thresholds", "p99<1us", "-out", out,
	}
	if got := run(args); got != 2 {
		t.Fatalf("failing thresholds: exit %d, want 2", got)
	}
	rep, err = benchfmt.ReadFile(filepath.Join(out, "BENCH_loadgen_smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || len(rep.Thresholds) != 1 || rep.Thresholds[0].Pass {
		t.Fatalf("failing report mismatch: %+v", rep)
	}
}

// TestScenarioFileResolution checks -scenario path vs builtin-name handling.
func TestScenarioFileResolution(t *testing.T) {
	if _, err := resolveScenario("ci-slo"); err != nil {
		t.Fatalf("builtin: %v", err)
	}
	if _, err := resolveScenario("./does-not-exist.json"); err == nil {
		t.Fatal("expected error for missing file")
	}
	path := filepath.Join(t.TempDir(), "custom.json")
	if err := os.WriteFile(path, []byte(`{
		"name": "custom",
		"executor": {"type": "constant-arrival-rate", "rate": 10, "duration": "1s"},
		"thresholds": ["error_rate<5%"]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	scn, err := resolveScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if scn.Name != "custom" || scn.Executor.Rate != 10 {
		t.Fatalf("file scenario mangled: %+v", scn)
	}
}
