// Package logger implements the Logger component of DRAMS (paper §II):
// probing agents that sense access-control activity at the four
// interception points, and the Logging Interface (LI) that encrypts
// observations, signs them with the tenant's component identity, submits
// them to the smart-contract blockchain, and surfaces security-alert events
// back to tenant operators.
package logger

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drams/internal/blockchain"
	"drams/internal/clock"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/metrics"
	"drams/internal/trace"
	"drams/internal/xacml"
)

// ErrQueueFull is returned by async submission when the LI's queue is full.
var ErrQueueFull = errors.New("logger: submission queue full")

// ErrStopped is returned after the LI is stopped.
var ErrStopped = errors.New("logger: LI stopped")

// SubmitMode selects how the LI pushes logs to the chain.
type SubmitMode uint8

// Submission modes (E6 compares them).
const (
	// SubmitAsync enqueues and returns immediately; a worker pool submits
	// in the background. Access-control latency is unaffected.
	SubmitAsync SubmitMode = iota + 1
	// SubmitSync submits and waits for the transaction to be accepted
	// into the mempool (not mined).
	SubmitSync
	// SubmitConfirmed submits and waits for on-chain confirmation; the
	// strongest guarantee and the highest latency.
	SubmitConfirmed
)

// LIConfig configures a Logging Interface.
type LIConfig struct {
	// Name is the LI's component-identity name (on the chain allowlist).
	Name string
	// Tenant is the tenant the LI serves.
	Tenant string
	// Node is the blockchain node the LI talks to (typically the node of
	// its own cloud).
	Node *blockchain.Node
	// Identity signs the LI's transactions.
	Identity *crypto.Identity
	// Key is the shared symmetric key K (paper §II); in a hardened
	// deployment it is unsealed from the tenant's TPM.
	Key crypto.Key
	// Mode selects async/sync/confirmed submission.
	Mode SubmitMode
	// QueueSize bounds the async queue (default 1024).
	QueueSize int
	// Workers is the async worker count (default 2).
	Workers int
	// Confirmations for SubmitConfirmed mode (default 1).
	Confirmations uint64
	// FlushWindow caps how many probe records an async worker anchors
	// under one Merkle-rooted batch transaction (default 16). A window of
	// N observations then costs one signed transaction instead of N; the
	// contract re-derives the root and per-record events carry membership
	// proofs, so anchoring stays as binding as individual submissions.
	// Set to 1 to submit each record as its own transaction. Only
	// SubmitAsync batches; the synchronous modes trade latency for
	// per-record guarantees already.
	FlushWindow int
	// FlushLinger is how long a worker holding a partial window waits for
	// more records before flushing (default 2ms, negative disables the
	// wait). Bounded so batching never delays detection noticeably.
	FlushLinger time.Duration
	// Clock is the time source.
	Clock clock.Clock
}

// LIStats snapshot.
type LIStats struct {
	// Submitted counts records (a batch of N counts N).
	Submitted int64
	Failed    int64
	Dropped   int64
	// BatchesSubmitted counts Merkle-anchored batch transactions.
	BatchesSubmitted int64
	QueueLen         int
}

// LI is the Logging Interface: the bridge between probing agents and the
// blockchain.
type LI struct {
	cfg    LIConfig
	sender *blockchain.Sender
	cipher *crypto.Cipher
	clk    clock.Clock

	queue chan queued

	submitted metrics.Counter
	failed    metrics.Counter
	dropped   metrics.Counter
	batches   metrics.Counter
	// flushDepth records how many probe records each async flush anchored
	// under one batch transaction (1 = unbatched fallback).
	flushDepth *metrics.Histogram
	tracer     atomic.Pointer[trace.Tracer]

	alertMu       sync.Mutex
	alertHandlers []func(core.Alert)
	cancelSub     func()

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

type queued struct {
	call contract.Call
	// rec is set for probe log records, which are batchable; other calls
	// (verdicts, policy announcements) pass through unbatched.
	rec *core.LogRecord
	// enq is when the record joined the queue, so the flush-wait trace
	// span can report time spent waiting for the batch window.
	enq time.Time
}

// NewLI constructs a Logging Interface.
func NewLI(cfg LIConfig) (*LI, error) {
	if cfg.Node == nil || cfg.Identity == nil {
		return nil, errors.New("logger: LI needs a node and an identity")
	}
	if cfg.Mode == 0 {
		cfg.Mode = SubmitAsync
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Confirmations == 0 {
		cfg.Confirmations = 1
	}
	if cfg.FlushWindow == 0 {
		cfg.FlushWindow = 16
	}
	if cfg.FlushWindow > core.MaxLogBatch {
		cfg.FlushWindow = core.MaxLogBatch
	}
	if cfg.FlushLinger == 0 {
		cfg.FlushLinger = 2 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	cipher, err := crypto.NewCipher(cfg.Key)
	if err != nil {
		return nil, fmt.Errorf("logger: LI cipher: %w", err)
	}
	li := &LI{
		cfg:        cfg,
		sender:     blockchain.NewSender(cfg.Node, cfg.Identity),
		cipher:     cipher,
		clk:        cfg.Clock,
		queue:      make(chan queued, cfg.QueueSize),
		flushDepth: metrics.NewHistogram(0),
		stop:       make(chan struct{}),
	}
	return li, nil
}

// Start launches async workers and the alert-event subscription.
func (li *LI) Start() {
	for i := 0; i < li.cfg.Workers; i++ {
		li.wg.Add(1)
		go li.worker()
	}
	events, cancel := li.cfg.Node.SubscribeEvents(0)
	li.cancelSub = cancel
	li.wg.Add(1)
	go func() {
		defer li.wg.Done()
		for {
			select {
			case <-li.stop:
				return
			case note, ok := <-events:
				if !ok {
					return
				}
				for _, e := range note.Events {
					if e.Contract == core.ContractName && e.Type == core.EventAlert {
						if a, err := core.DecodeAlert(e.Payload); err == nil {
							li.dispatchAlert(a)
						}
					}
				}
			}
		}
	}()
}

// Stop drains nothing: queued submissions not yet sent are dropped (they
// remain observable as Dropped in stats); in-flight ones finish.
func (li *LI) Stop() {
	li.stopOnce.Do(func() { close(li.stop) })
	if li.cancelSub != nil {
		li.cancelSub()
	}
	li.wg.Wait()
}

// Name returns the LI's identity name.
func (li *LI) Name() string { return li.cfg.Name }

// Tenant returns the tenant the LI serves.
func (li *LI) Tenant() string { return li.cfg.Tenant }

// Stats snapshots the counters.
func (li *LI) Stats() LIStats {
	return LIStats{
		Submitted:        li.submitted.Value(),
		Failed:           li.failed.Value(),
		Dropped:          li.dropped.Value(),
		BatchesSubmitted: li.batches.Value(),
		QueueLen:         len(li.queue),
	}
}

// SetTracer attaches (or clears, with nil) the end-to-end span recorder:
// every batched record gets a li.flush_wait span from enqueue to batch
// submission.
func (li *LI) SetTracer(t *trace.Tracer) { li.tracer.Store(t) }

// FlushDepth exports the distribution of records per anchored flush.
func (li *LI) FlushDepth() metrics.HistExport { return li.flushDepth.Export() }

// DecisionTag computes the keyed decision commitment on behalf of agents
// (the LI exposes the symmetric-key functions, paper §II).
func (li *LI) DecisionTag(reqID string, d xacml.Decision) crypto.Digest {
	return core.DecisionTag(li.cfg.Key, reqID, d)
}

// Seal encrypts an exchange context for on-chain storage.
func (li *LI) Seal(ec core.EncryptedContext, reqID string) ([]byte, error) {
	return ec.Seal(li.cipher, reqID)
}

// Open decrypts a sealed context (forensics / authorised readers).
func (li *LI) Open(reqID string, payload []byte) (core.EncryptedContext, error) {
	return core.OpenContext(li.cipher, reqID, payload)
}

// Log submits a record (with its already-sealed payload) according to the
// configured mode. In async mode with a flush window above 1 the record is
// queued for Merkle-batched anchoring; otherwise it becomes its own
// transaction.
func (li *LI) Log(ctx context.Context, rec core.LogRecord) error {
	if li.cfg.Mode == SubmitAsync && li.cfg.FlushWindow > 1 {
		select {
		case <-li.stop:
			return ErrStopped
		default:
		}
		select {
		case li.queue <- queued{rec: &rec, enq: time.Now()}:
			return nil
		default:
			li.dropped.Inc()
			return ErrQueueFull
		}
	}
	call := contract.Call{Contract: core.ContractName, Method: core.MethodLog, Args: rec.Encode()}
	return li.submit(ctx, call)
}

// SubmitVerdict lets an analyser colocated with this LI publish through it.
func (li *LI) SubmitVerdict(ctx context.Context, v core.Verdict) error {
	call := contract.Call{Contract: core.ContractName, Method: core.MethodVerdict, Args: v.Encode()}
	return li.submit(ctx, call)
}

// AnnouncePolicy lets the PAP publish a policy digest through this LI.
func (li *LI) AnnouncePolicy(ctx context.Context, pa core.PolicyAnnouncement) error {
	call := contract.Call{Contract: core.ContractName, Method: core.MethodPolicy, Args: pa.Encode()}
	return li.submit(ctx, call)
}

func (li *LI) submit(ctx context.Context, call contract.Call) error {
	select {
	case <-li.stop:
		return ErrStopped
	default:
	}
	switch li.cfg.Mode {
	case SubmitAsync:
		select {
		case li.queue <- queued{call: call}:
			return nil
		default:
			li.dropped.Inc()
			return ErrQueueFull
		}
	case SubmitSync:
		if _, err := li.sender.Send(call); err != nil {
			li.failed.Inc()
			return err
		}
		li.submitted.Inc()
		return nil
	case SubmitConfirmed:
		rec, err := li.sender.SendAndWait(ctx, call, li.cfg.Confirmations)
		if err != nil {
			li.failed.Inc()
			return err
		}
		li.submitted.Inc()
		if !rec.OK {
			return fmt.Errorf("logger: tx failed on-chain: %s", rec.Err)
		}
		return nil
	default:
		return fmt.Errorf("logger: unknown submit mode %d", li.cfg.Mode)
	}
}

func (li *LI) worker() {
	defer li.wg.Done()
	for {
		select {
		case <-li.stop:
			return
		case q := <-li.queue:
			if q.rec != nil {
				li.flushWindow(q)
			} else {
				li.send(q.call, 1)
			}
		}
	}
}

// send submits one call with a single retry (transient mempool or network
// hiccups), counting n records on the outcome. Reports success.
func (li *LI) send(call contract.Call, n int64) bool {
	if _, err := li.sender.Send(call); err != nil {
		li.clk.Sleep(10 * time.Millisecond)
		if _, err2 := li.sender.Send(call); err2 != nil {
			li.failed.Add(n)
			return false
		}
	}
	li.submitted.Add(n)
	return true
}

// flushWindow gathers up to FlushWindow records starting from first —
// draining whatever is already queued, then lingering briefly for
// stragglers — and anchors the window as one batch transaction. A lone
// record falls back to a plain log transaction, so light traffic keeps the
// unbatched wire shape. Non-record calls pulled while draining pass
// straight through.
func (li *LI) flushWindow(first queued) {
	recs := append(make([]core.LogRecord, 0, li.cfg.FlushWindow), *first.rec)
	enqs := append(make([]time.Time, 0, li.cfg.FlushWindow), first.enq)
	lingered := false
gather:
	for len(recs) < li.cfg.FlushWindow {
		select {
		case q := <-li.queue:
			if q.rec != nil {
				recs = append(recs, *q.rec)
				enqs = append(enqs, q.enq)
			} else {
				li.send(q.call, 1)
			}
			continue
		default:
		}
		if lingered || li.cfg.FlushLinger <= 0 {
			break
		}
		lingered = true
		select {
		case <-li.stop:
			break gather // flush what we hold; in-flight work finishes
		case q := <-li.queue:
			if q.rec != nil {
				recs = append(recs, *q.rec)
				enqs = append(enqs, q.enq)
			} else {
				li.send(q.call, 1)
			}
		case <-li.clk.After(li.cfg.FlushLinger):
		}
	}
	spanFlush := func() {
		li.flushDepth.Observe(float64(len(recs)))
		tr := li.tracer.Load()
		if tr == nil {
			return
		}
		now := time.Now()
		for i, rec := range recs {
			tr.Span(rec.TraceID, trace.StageLIFlushWait, enqs[i], now.Sub(enqs[i]))
		}
	}
	if len(recs) == 1 {
		if li.send(contract.Call{Contract: core.ContractName, Method: core.MethodLog, Args: recs[0].Encode()}, 1) {
			spanFlush()
		}
		return
	}
	lb, err := core.NewLogBatch(recs)
	if err != nil {
		li.failed.Add(int64(len(recs)))
		return
	}
	call := contract.Call{Contract: core.ContractName, Method: core.MethodLogBatch, Args: lb.Encode()}
	if li.send(call, int64(len(recs))) {
		li.batches.Inc()
		spanFlush()
	}
}

// OnAlert registers a handler for security alerts surfaced by the LI
// (invoked on the LI's event goroutine).
func (li *LI) OnAlert(fn func(core.Alert)) {
	li.alertMu.Lock()
	defer li.alertMu.Unlock()
	li.alertHandlers = append(li.alertHandlers, fn)
}

func (li *LI) dispatchAlert(a core.Alert) {
	li.alertMu.Lock()
	handlers := make([]func(core.Alert), len(li.alertHandlers))
	copy(handlers, li.alertHandlers)
	li.alertMu.Unlock()
	for _, fn := range handlers {
		fn(a)
	}
}
