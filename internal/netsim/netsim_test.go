package netsim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drams/internal/transport"
)

func syncNet() *Network {
	return New(Config{Synchronous: true, Seed: 1})
}

func TestRegisterAndSend(t *testing.T) {
	n := syncNet()
	a, err := n.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Value
	b.OnMessage("ping", func(from string, payload []byte) {
		got.Store(from + ":" + string(payload))
	})
	if err := a.Send("b", "ping", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if v := got.Load(); v != "a:hello" {
		t.Fatalf("got %v", v)
	}
}

func TestDuplicateRegister(t *testing.T) {
	n := syncNet()
	if _, err := n.Register("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register("a"); !errors.Is(err, ErrAddressInUse) {
		t.Fatalf("got %v", err)
	}
}

func TestSendUnknownAddress(t *testing.T) {
	n := syncNet()
	a, _ := n.Register("a")
	if err := a.Send("ghost", "k", nil); !errors.Is(err, ErrUnknownAddress) {
		t.Fatalf("got %v", err)
	}
}

func TestCallRoundTrip(t *testing.T) {
	n := syncNet()
	a, _ := n.Register("a")
	b, _ := n.Register("b")
	b.OnCall("add", func(from string, payload []byte) ([]byte, error) {
		return append(payload, '!'), nil
	})
	out, err := a.Call(context.Background(), "b", "add", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "x!" {
		t.Fatalf("got %q", out)
	}
}

func TestCallHandlerError(t *testing.T) {
	n := syncNet()
	a, _ := n.Register("a")
	b, _ := n.Register("b")
	b.OnCall("fail", func(from string, payload []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	_, err := a.Call(context.Background(), "b", "fail", nil)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("got %v", err)
	}
}

func TestCallNoHandler(t *testing.T) {
	n := syncNet()
	a, _ := n.Register("a")
	_, _ = n.Register("b")
	_, err := a.Call(context.Background(), "b", "nothing", nil)
	if !errors.Is(err, ErrNoHandler) {
		t.Fatalf("got %v", err)
	}
}

func TestCallTimeoutOnPartition(t *testing.T) {
	n := New(Config{Seed: 1}) // async so the drop manifests as a timeout
	a, _ := n.Register("a")
	b, _ := n.Register("b")
	b.OnCall("k", func(from string, payload []byte) ([]byte, error) { return nil, nil })
	n.Partition([]string{"a"}, []string{"b"})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.Call(ctx, "b", "k", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v", err)
	}
	n.Heal()
	if _, err := a.Call(context.Background(), "b", "k", nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	n.Close()
}

func TestPartitionBlocksSameGroupAllows(t *testing.T) {
	n := syncNet()
	a, _ := n.Register("a")
	b, _ := n.Register("b")
	c, _ := n.Register("c")
	var bGot, cGot atomic.Int64
	b.OnMessage("m", func(string, []byte) { bGot.Add(1) })
	c.OnMessage("m", func(string, []byte) { cGot.Add(1) })
	n.Partition([]string{"a", "b"}, []string{"c"})
	_ = a.Send("b", "m", nil)
	_ = a.Send("c", "m", nil)
	if bGot.Load() != 1 {
		t.Fatal("same-group delivery blocked")
	}
	if cGot.Load() != 0 {
		t.Fatal("cross-partition message delivered")
	}
}

func TestDropRateAllDropped(t *testing.T) {
	n := New(Config{Synchronous: true, DropRate: 1, Seed: 2})
	a, _ := n.Register("a")
	b, _ := n.Register("b")
	var got atomic.Int64
	b.OnMessage("m", func(string, []byte) { got.Add(1) })
	for i := 0; i < 20; i++ {
		_ = a.Send("b", "m", nil)
	}
	if got.Load() != 0 {
		t.Fatalf("delivered %d despite drop rate 1", got.Load())
	}
	st := n.Stats()
	if st.Dropped != 20 || st.Sent != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLinkFault(t *testing.T) {
	n := syncNet()
	a, _ := n.Register("a")
	b, _ := n.Register("b")
	c, _ := n.Register("c")
	var bGot, cGot atomic.Int64
	b.OnMessage("m", func(string, []byte) { bGot.Add(1) })
	c.OnMessage("m", func(string, []byte) { cGot.Add(1) })
	n.SetLinkFault("a", "b", 1.0, 0)
	for i := 0; i < 10; i++ {
		_ = a.Send("b", "m", nil)
		_ = a.Send("c", "m", nil)
	}
	if bGot.Load() != 0 {
		t.Fatal("faulted link delivered")
	}
	if cGot.Load() != 10 {
		t.Fatalf("unfaulted link delivered %d", cGot.Load())
	}
	n.ClearLinkFault("a", "b")
	_ = a.Send("b", "m", nil)
	if bGot.Load() != 1 {
		t.Fatal("link not restored after ClearLinkFault")
	}
}

func TestCrashAndRestart(t *testing.T) {
	n := syncNet()
	a, _ := n.Register("a")
	b, _ := n.Register("b")
	var got atomic.Int64
	b.OnMessage("m", func(string, []byte) { got.Add(1) })
	b.Crash()
	_ = a.Send("b", "m", nil)
	if got.Load() != 0 {
		t.Fatal("crashed endpoint received message")
	}
	if err := b.Send("a", "m", nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed endpoint could send: %v", err)
	}
	b.Restart()
	_ = a.Send("b", "m", nil)
	if got.Load() != 1 {
		t.Fatal("restarted endpoint did not receive")
	}
}

func TestBroadcast(t *testing.T) {
	n := syncNet()
	a, _ := n.Register("a")
	var got sync.Map
	for _, name := range []string{"b", "c", "d"} {
		ep, _ := n.Register(name)
		name := name
		ep.OnMessage("gossip", func(string, []byte) { got.Store(name, true) })
	}
	a.Broadcast("gossip", []byte("block"), "d")
	if _, ok := got.Load("b"); !ok {
		t.Fatal("b missed broadcast")
	}
	if _, ok := got.Load("c"); !ok {
		t.Fatal("c missed broadcast")
	}
	if _, ok := got.Load("d"); ok {
		t.Fatal("excluded d received broadcast")
	}
}

func TestDefaultHandler(t *testing.T) {
	n := syncNet()
	a, _ := n.Register("a")
	b, _ := n.Register("b")
	var got atomic.Value
	b.OnDefault(func(msg Message) { got.Store(msg.Kind) })
	_ = a.Send("b", "unhandled-kind", nil)
	if got.Load() != "unhandled-kind" {
		t.Fatalf("default handler got %v", got.Load())
	}
}

func TestAsyncLatencyDelivery(t *testing.T) {
	n := New(Config{BaseLatency: 5 * time.Millisecond, Jitter: 5 * time.Millisecond, Seed: 3})
	defer n.Close()
	a, _ := n.Register("a")
	b, _ := n.Register("b")
	done := make(chan time.Time, 1)
	b.OnMessage("m", func(string, []byte) { done <- time.Now() })
	start := time.Now()
	_ = a.Send("b", "m", nil)
	select {
	case at := <-done:
		if at.Sub(start) < 4*time.Millisecond {
			t.Fatalf("delivered too fast: %v", at.Sub(start))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never delivered")
	}
}

func TestUnregisterStopsDelivery(t *testing.T) {
	n := syncNet()
	a, _ := n.Register("a")
	_, _ = n.Register("b")
	n.Unregister("b")
	if err := a.Send("b", "m", nil); !errors.Is(err, ErrUnknownAddress) {
		t.Fatalf("got %v", err)
	}
}

func TestNetworkCloseRejectsTraffic(t *testing.T) {
	n := New(Config{Synchronous: true, Seed: 1})
	a, _ := n.Register("a")
	_, _ = n.Register("b")
	n.Close()
	if err := a.Send("b", "m", nil); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("got %v", err)
	}
	if _, err := n.Register("c"); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("register after close: %v", err)
	}
}

func TestConcurrentTraffic(t *testing.T) {
	n := New(Config{Seed: 9})
	defer n.Close()
	recv := make([]transport.Endpoint, 4)
	var count atomic.Int64
	for i := range recv {
		ep, err := n.Register(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		ep.OnMessage("m", func(string, []byte) { count.Add(1) })
		recv[i] = ep
	}
	var wg sync.WaitGroup
	const msgs = 200
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for j := 0; j < msgs; j++ {
				dst := (src + 1 + j%3) % 4
				_ = recv[src].Send(string(rune('a'+dst)), "m", []byte{byte(j)})
			}
		}(i)
	}
	wg.Wait()
	n.Close() // waits for in-flight deliveries
	if got := count.Load(); got != 4*msgs {
		t.Fatalf("delivered %d, want %d", got, 4*msgs)
	}
}

func TestSeededDropPatternDeterministic(t *testing.T) {
	// Two networks with identical seeds must drop exactly the same
	// messages — the property that makes whole-simulation runs
	// reproducible.
	pattern := func(seed uint64) []bool {
		n := New(Config{Synchronous: true, DropRate: 0.5, Seed: seed})
		a, _ := n.Register("a")
		b, _ := n.Register("b")
		var got []bool
		var delivered atomic.Int64
		b.OnMessage("m", func(string, []byte) { delivered.Add(1) })
		prev := int64(0)
		for i := 0; i < 100; i++ {
			_ = a.Send("b", "m", nil)
			cur := delivered.Load()
			got = append(got, cur > prev)
			prev = cur
		}
		return got
	}
	p1, p2 := pattern(77), pattern(77)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("drop pattern diverged at message %d", i)
		}
	}
	// A different seed should give a different pattern (overwhelmingly).
	p3 := pattern(78)
	same := true
	for i := range p1 {
		if p1[i] != p3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func TestStatsBytes(t *testing.T) {
	n := syncNet()
	a, _ := n.Register("a")
	b, _ := n.Register("b")
	b.OnMessage("m", func(string, []byte) {})
	_ = a.Send("b", "m", make([]byte, 100))
	if st := n.Stats(); st.Bytes != 100 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
