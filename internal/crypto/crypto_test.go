package crypto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	a := Sum([]byte("hello"))
	b := Sum([]byte("hello"))
	if a != b {
		t.Fatal("Sum not deterministic")
	}
	if a == Sum([]byte("world")) {
		t.Fatal("different inputs collided")
	}
}

func TestSumAllInjectiveFraming(t *testing.T) {
	// ("ab","c") must differ from ("a","bc") — length framing makes the
	// encoding injective.
	if SumAll([]byte("ab"), []byte("c")) == SumAll([]byte("a"), []byte("bc")) {
		t.Fatal("SumAll framing is not injective")
	}
	if SumAll() == SumAll([]byte{}) {
		t.Fatal("zero chunks vs one empty chunk should differ")
	}
}

func TestDigestStringParseRoundTrip(t *testing.T) {
	d := Sum([]byte("round trip"))
	parsed, err := ParseDigest(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != d {
		t.Fatal("digest round trip mismatch")
	}
}

func TestParseDigestErrors(t *testing.T) {
	if _, err := ParseDigest("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseDigest("abcd"); err == nil {
		t.Fatal("short digest accepted")
	}
}

func TestDigestZeroAndShort(t *testing.T) {
	var z Digest
	if !z.IsZero() {
		t.Fatal("zero digest not IsZero")
	}
	d := Sum([]byte("x"))
	if d.IsZero() {
		t.Fatal("real digest IsZero")
	}
	if len(d.Short()) != 8 {
		t.Fatalf("Short = %q", d.Short())
	}
	b := d.Bytes()
	b[0] ^= 0xff
	if d.Bytes()[0] == b[0] {
		t.Fatal("Bytes did not copy")
	}
}

func TestLeadingZeroBits(t *testing.T) {
	cases := []struct {
		d    Digest
		want int
	}{
		{Digest{0x80}, 0},
		{Digest{0x40}, 1},
		{Digest{0x01}, 7},
		{Digest{0x00, 0x80}, 8},
		{Digest{0x00, 0x00, 0x20}, 18},
	}
	for _, c := range cases {
		if got := c.d.LeadingZeroBits(); got != c.want {
			t.Errorf("LeadingZeroBits(% x...) = %d, want %d", c.d[:3], got, c.want)
		}
	}
	var all Digest
	if got := all.LeadingZeroBits(); got != 256 {
		t.Errorf("all-zero digest = %d, want 256", got)
	}
}

func TestCipherRoundTrip(t *testing.T) {
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("the PDP decided Permit for request 42")
	ad := []byte("tenant-1")
	ct, err := c.Encrypt(pt, ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decrypt(ct, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip: got %q", got)
	}
}

func TestCipherTamperDetection(t *testing.T) {
	c, err := NewCipher(DeriveKey("pw", "ctx"))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c.Encrypt([]byte("secret log entry"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ct); i += 7 {
		mutated := append([]byte(nil), ct...)
		mutated[i] ^= 0x01
		if _, err := c.Decrypt(mutated, nil); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("bit flip at %d not detected: %v", i, err)
		}
	}
}

func TestCipherWrongAdditionalData(t *testing.T) {
	c, _ := NewCipher(DeriveKey("pw", "ctx"))
	ct, _ := c.Encrypt([]byte("data"), []byte("ad1"))
	if _, err := c.Decrypt(ct, []byte("ad2")); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("wrong AD accepted: %v", err)
	}
}

func TestCipherWrongKey(t *testing.T) {
	c1, _ := NewCipher(DeriveKey("pw1", "ctx"))
	c2, _ := NewCipher(DeriveKey("pw2", "ctx"))
	ct, _ := c1.Encrypt([]byte("data"), nil)
	if _, err := c2.Decrypt(ct, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("wrong key accepted: %v", err)
	}
}

func TestCipherShortCiphertext(t *testing.T) {
	c, _ := NewCipher(DeriveKey("pw", "ctx"))
	if _, err := c.Decrypt([]byte{1, 2, 3}, nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("short ciphertext: %v", err)
	}
}

func TestCipherNonceUniqueness(t *testing.T) {
	c, _ := NewCipher(DeriveKey("pw", "ctx"))
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		ct, err := c.Encrypt([]byte("same plaintext"), nil)
		if err != nil {
			t.Fatal(err)
		}
		nonce := string(ct[:12])
		if seen[nonce] {
			t.Fatal("nonce reused")
		}
		seen[nonce] = true
	}
}

func TestCipherPropertyRoundTrip(t *testing.T) {
	c, _ := NewCipher(DeriveKey("quick", "prop"))
	if err := quick.Check(func(pt, ad []byte) bool {
		ct, err := c.Encrypt(pt, ad)
		if err != nil {
			return false
		}
		got, err := c.Decrypt(ct, ad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveKeyDeterministicAndContextual(t *testing.T) {
	if DeriveKey("a", "x") != DeriveKey("a", "x") {
		t.Fatal("DeriveKey not deterministic")
	}
	if DeriveKey("a", "x") == DeriveKey("a", "y") {
		t.Fatal("context does not separate keys")
	}
	if DeriveKey("a", "x") == DeriveKey("b", "x") {
		t.Fatal("passphrase does not separate keys")
	}
}

func TestIdentitySignVerify(t *testing.T) {
	id, err := NewIdentity("pep-1")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("log entry payload")
	sig := id.Sign(msg)
	pub := id.Public()
	if !pub.Verify(msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if pub.Verify([]byte("other"), sig) {
		t.Fatal("signature verified for wrong message")
	}
	sig[0] ^= 1
	if pub.Verify(msg, sig) {
		t.Fatal("mutated signature accepted")
	}
}

func TestIdentityFromSeedDeterministic(t *testing.T) {
	var seed [32]byte
	seed[0] = 9
	a := NewIdentityFromSeed("n", seed)
	b := NewIdentityFromSeed("n", seed)
	msg := []byte("m")
	if !a.Public().Verify(msg, b.Sign(msg)) {
		t.Fatal("seeded identities differ")
	}
	if a.Name() != "n" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestPublicIdentityFingerprint(t *testing.T) {
	a, _ := NewIdentity("x")
	b, _ := NewIdentity("x")
	if a.Public().Fingerprint() == b.Public().Fingerprint() {
		t.Fatal("distinct keys share fingerprint")
	}
	var empty PublicIdentity
	if empty.Verify([]byte("m"), []byte("sig")) {
		t.Fatal("empty identity verified something")
	}
}

func TestHMAC(t *testing.T) {
	k := DeriveKey("k", "hmac")
	a := HMAC(k, []byte("msg"))
	if a != HMAC(k, []byte("msg")) {
		t.Fatal("HMAC not deterministic")
	}
	if a == HMAC(k, []byte("msg2")) {
		t.Fatal("HMAC collision on different messages")
	}
	if a == HMAC(DeriveKey("k2", "hmac"), []byte("msg")) {
		t.Fatal("HMAC collision on different keys")
	}
}

func TestConstantTimeEqual(t *testing.T) {
	if !ConstantTimeEqual([]byte("ab"), []byte("ab")) {
		t.Fatal("equal slices unequal")
	}
	if ConstantTimeEqual([]byte("ab"), []byte("ac")) {
		t.Fatal("unequal slices equal")
	}
}

// TestVerifyBatchMatchesSingle checks the fanned-out batch verification
// agrees with single verification for valid, corrupted, and malformed-key
// checks, at several worker counts including the inline path.
func TestVerifyBatchMatchesSingle(t *testing.T) {
	var seed [32]byte
	checks := make([]SigCheck, 33)
	for i := range checks {
		seed[0] = byte(i)
		id := NewIdentityFromSeed("batch", seed)
		msg := []byte{byte(i), byte(i >> 8)}
		checks[i] = SigCheck{Key: id.Public().Key, Msg: msg, Sig: id.Sign(msg)}
	}
	checks[7].Sig[0] ^= 0xFF            // corrupted signature
	checks[20].Key = checks[20].Key[:5] // malformed key
	for _, workers := range []int{0, 1, 3, 64} {
		got := VerifyBatch(workers, checks)
		for i, c := range checks {
			if got[i] != c.Verify() {
				t.Fatalf("workers=%d check %d: batch %v, single %v", workers, i, got[i], c.Verify())
			}
		}
		if got[7] || got[20] {
			t.Fatalf("workers=%d: invalid checks passed", workers)
		}
	}
	if out := VerifyBatch(4, nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}
