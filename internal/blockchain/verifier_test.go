package blockchain

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"drams/internal/crypto"
	"drams/internal/netsim"
)

// testTxs builds n valid transactions from the given identity starting at
// nonce 1.
func testTxs(t testing.TB, id *crypto.Identity, n int) []Transaction {
	t.Helper()
	txs := make([]Transaction, n)
	for i := range txs {
		tx, err := NewTransaction(id, uint64(i+1), putCall(fmt.Sprintf("k%d", i), "v"))
		if err != nil {
			t.Fatal(err)
		}
		txs[i] = tx
	}
	return txs
}

// TestVerifyBatchMatchesSequential checks that the batch verifier accepts
// and rejects exactly the transactions the sequential registry check does,
// including a corrupted signature and an unknown sender planted mid-batch.
func TestVerifyBatchMatchesSequential(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	mallory := testIdentity(t, "mallory", 66) // not registered
	reg := NewIdentityRegistry(alice.Public())
	txs := testTxs(t, alice, 32)

	txs[17].Signature[0] ^= 0xFF // corrupt one signature mid-batch
	bad, err := NewTransaction(mallory, 1, putCall("m", "v"))
	if err != nil {
		t.Fatal(err)
	}
	txs[23] = bad

	v := NewTxVerifier(reg, VerifierConfig{Workers: 4, CacheSize: -1})
	got := v.VerifyBatch(txs)
	for i := range txs {
		want := reg.VerifyTx(&txs[i])
		if (got[i] == nil) != (want == nil) {
			t.Fatalf("tx %d: batch err %v, sequential err %v", i, got[i], want)
		}
	}
	if !errors.Is(got[17], ErrBadSignature) {
		t.Fatalf("tx 17 err = %v, want ErrBadSignature", got[17])
	}
	if !errors.Is(got[23], ErrUnknownIdentity) {
		t.Fatalf("tx 23 err = %v, want ErrUnknownIdentity", got[23])
	}
	if err := v.VerifyAll(txs); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("VerifyAll err = %v, want first failure", err)
	}
	if v.Stats().Failures != 4 { // 2 from VerifyBatch + 2 from VerifyAll
		t.Fatalf("failures = %d", v.Stats().Failures)
	}
}

// TestVerifierCacheSkipsReverification checks that a second pass over the
// same transactions performs no new signature verifications.
func TestVerifierCacheSkipsReverification(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	reg := NewIdentityRegistry(alice.Public())
	txs := testTxs(t, alice, 16)
	v := NewTxVerifier(reg, VerifierConfig{})

	if err := v.VerifyAll(txs); err != nil {
		t.Fatal(err)
	}
	first := v.Stats()
	if first.Verified != 16 || first.CacheHits != 0 {
		t.Fatalf("cold pass stats = %+v", first)
	}
	if err := v.VerifyAll(txs); err != nil {
		t.Fatal(err)
	}
	second := v.Stats()
	if second.Verified != first.Verified {
		t.Fatalf("warm pass re-verified: %d -> %d", first.Verified, second.Verified)
	}
	if second.CacheHits != 16 {
		t.Fatalf("warm pass hits = %d", second.CacheHits)
	}
	// Single-tx path hits the same cache.
	if err := v.VerifyTx(&txs[3]); err != nil {
		t.Fatal(err)
	}
	if v.Stats().Verified != first.Verified {
		t.Fatal("VerifyTx re-verified a cached transaction")
	}
}

// TestVerifierFailedTxNotCached checks that a rejected transaction is
// re-checked (and re-rejected) on every attempt.
func TestVerifierFailedTxNotCached(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	reg := NewIdentityRegistry(alice.Public())
	tx := testTxs(t, alice, 1)[0]
	tx.Signature[0] ^= 0xFF
	v := NewTxVerifier(reg, VerifierConfig{})
	for i := 0; i < 2; i++ {
		if err := v.VerifyTx(&tx); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("attempt %d: err = %v", i, err)
		}
	}
	if v.Stats().Verified != 2 {
		t.Fatalf("verified = %d, want 2 (failures must not be cached)", v.Stats().Verified)
	}
}

// TestVerifierRegistryGenerationInvalidation checks that a membership change
// (same name, new key) invalidates cached verifications: a transaction
// verified under the old key must fail, not hit the stale cache entry.
func TestVerifierRegistryGenerationInvalidation(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	reg := NewIdentityRegistry(alice.Public())
	tx := testTxs(t, alice, 1)[0]
	v := NewTxVerifier(reg, VerifierConfig{})
	if err := v.VerifyTx(&tx); err != nil {
		t.Fatal(err)
	}

	// The federation rotates alice's key.
	alice2 := testIdentity(t, "alice", 2)
	reg.Add(alice2.Public())

	if err := v.VerifyTx(&tx); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("stale cache served a rotated identity: err = %v", err)
	}
	if errs := v.VerifyBatch([]Transaction{tx}); !errors.Is(errs[0], ErrBadSignature) {
		t.Fatalf("batch path served a rotated identity: err = %v", errs[0])
	}
}

// TestVerifierLRUBound checks the cache never exceeds its configured size.
func TestVerifierLRUBound(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	reg := NewIdentityRegistry(alice.Public())
	v := NewTxVerifier(reg, VerifierConfig{CacheSize: 32})
	txs := testTxs(t, alice, 200)
	if err := v.VerifyAll(txs); err != nil {
		t.Fatal(err)
	}
	if got := v.cache.len(); got > 32 {
		t.Fatalf("cache holds %d entries, bound 32", got)
	}
}

// TestVerifierConcurrent hammers overlapping batches from several
// goroutines; run under -race this checks the striped cache's locking.
func TestVerifierConcurrent(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	bob := testIdentity(t, "bob", 2)
	reg := NewIdentityRegistry(alice.Public(), bob.Public())
	txsA := testTxs(t, alice, 64)
	txsB := make([]Transaction, 64)
	for i := range txsB {
		tx, err := NewTransaction(bob, uint64(i+1), putCall(fmt.Sprintf("b%d", i), "v"))
		if err != nil {
			t.Fatal(err)
		}
		txsB[i] = tx
	}
	v := NewTxVerifier(reg, VerifierConfig{Workers: 2, CacheSize: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				batch := txsA
				if (g+iter)%2 == 0 {
					batch = txsB
				}
				if err := v.VerifyAll(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestChainRejectsBadSignatureInBlock checks the batch path still rejects a
// block carrying one transaction whose signature was corrupted after
// signing (the A8 forgery case), end to end through AddBlock.
func TestChainRejectsBadSignatureInBlock(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	c := NewChain(testChainConfig(t, alice))
	txs := testTxs(t, alice, 8)
	txs[5].Signature[0] ^= 0xFF
	b := mineChild(t, c, c.Genesis(), txs...)
	if err := c.AddBlock(b); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("AddBlock err = %v, want ErrBadSignature", err)
	}
	if _, h := c.Head(); h != 0 {
		t.Fatalf("bad block extended the chain to height %d", h)
	}
}

// TestAddBlockRejectsStructurallyInvalidBeforeVerifying checks the DoS
// ordering: a block that fails a cheap structural check (bad PoW, wrong
// difficulty, orphan) must be rejected before any ed25519 work is spent on
// its transactions.
func TestAddBlockRejectsStructurallyInvalidBeforeVerifying(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	c := NewChain(testChainConfig(t, alice))
	txs := testTxs(t, alice, 8)

	unmined := &Block{
		Header: BlockHeader{
			Height:     1,
			PrevHash:   c.Genesis(),
			MerkleRoot: ComputeMerkleRoot(txs),
			Difficulty: 4,
			Miner:      "cheap-forgery",
		},
		Txs: txs,
	}
	if err := c.AddBlock(unmined); !errors.Is(err, ErrBadPoW) {
		t.Fatalf("AddBlock err = %v, want ErrBadPoW", err)
	}
	orphan := mineChild(t, c, c.Genesis(), txs...)
	orphan.Header.PrevHash = crypto.Sum([]byte("unknown-parent")) // now an orphan (and stale PoW, but parent check wins)
	if err := c.AddBlock(orphan); !errors.Is(err, ErrOrphanBlock) {
		t.Fatalf("AddBlock err = %v, want ErrOrphanBlock", err)
	}
	if v := c.Verifier().Stats().Verified; v != 0 {
		t.Fatalf("structurally invalid blocks cost %d signature verifications", v)
	}
}

// TestBlockValidationUsesAdmissionCache checks the pipeline contract: a
// transaction verified at mempool admission is not re-verified when the
// block containing it is validated.
func TestBlockValidationUsesAdmissionCache(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 11, Synchronous: true})
	defer net.Close()
	n, err := NewNode(NodeConfig{Name: "n", Chain: testChainConfig(t, alice), Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	txs := testTxs(t, alice, 8)
	for _, tx := range txs {
		if err := n.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
	}
	verifiedAtAdmission := n.Stats().Verifier.Verified
	b := mineChild(t, n.Chain(), n.Chain().Genesis(), txs...)
	if err := n.Chain().AddBlock(b); err != nil {
		t.Fatal(err)
	}
	after := n.Stats().Verifier
	if after.Verified != verifiedAtAdmission {
		t.Fatalf("block validation re-verified: %d -> %d", verifiedAtAdmission, after.Verified)
	}
}

// TestGossipBatchedAdmission checks that gossiped transactions reach a
// peer's mempool through the batched ingest loop.
func TestGossipBatchedAdmission(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 13})
	defer net.Close()
	a, err := NewNode(NodeConfig{Name: "a", Chain: testChainConfig(t, alice), Network: net})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(NodeConfig{Name: "b", Chain: testChainConfig(t, alice), Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	defer b.Stop()
	a.Start()
	b.Start()

	txs := testTxs(t, alice, 16)
	for _, tx := range txs {
		if err := a.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool {
		return b.Mempool().Len() == len(txs)
	}, "gossiped txs admitted at peer")
	if b.Stats().IngestBatches == 0 {
		t.Fatal("peer admitted txs without the ingest loop")
	}
	// The peer verified each unique tx at most once, despite rebroadcasts.
	if v := b.Stats().Verifier.Verified; v > int64(len(txs)) {
		t.Fatalf("peer verified %d times for %d txs", v, len(txs))
	}
}
