package xacml

import (
	"encoding/json"
	"fmt"
	"strings"
)

// CmpOp is a comparison operator for condition expressions and target
// matches.
type CmpOp string

// Comparison operators.
const (
	CmpEq CmpOp = "=="
	CmpNe CmpOp = "!="
	CmpLt CmpOp = "<"
	CmpLe CmpOp = "<="
	CmpGt CmpOp = ">"
	CmpGe CmpOp = ">="
	// CmpPrefix matches string values with the literal as prefix.
	CmpPrefix CmpOp = "prefix"
)

// applyCmp evaluates one scalar comparison.
func applyCmp(op CmpOp, attr, lit Value) (bool, error) {
	switch op {
	case CmpEq:
		if attr.T != lit.T {
			return false, fmt.Errorf("%w: %s vs %s", ErrTypeMismatch, attr.T, lit.T)
		}
		return attr.Equal(lit), nil
	case CmpNe:
		if attr.T != lit.T {
			return false, fmt.Errorf("%w: %s vs %s", ErrTypeMismatch, attr.T, lit.T)
		}
		return !attr.Equal(lit), nil
	case CmpLt, CmpLe, CmpGt, CmpGe:
		c, err := attr.Compare(lit)
		if err != nil {
			return false, err
		}
		switch op {
		case CmpLt:
			return c < 0, nil
		case CmpLe:
			return c <= 0, nil
		case CmpGt:
			return c > 0, nil
		default:
			return c >= 0, nil
		}
	case CmpPrefix:
		if attr.T != TypeString || lit.T != TypeString {
			return false, fmt.Errorf("%w: prefix needs strings", ErrTypeMismatch)
		}
		return strings.HasPrefix(attr.S, lit.S), nil
	default:
		return false, fmt.Errorf("xacml: unknown comparison %q", op)
	}
}

// Expr is a boolean condition expression over a request. Implementations
// are pure; Eval never mutates the request.
type Expr interface {
	// Eval computes the truth value; errors make the enclosing rule
	// Indeterminate.
	Eval(r *Request) (bool, error)
	// Walk visits this node then its children.
	Walk(fn func(Expr))
	// String renders a debug form.
	String() string

	exprJSON() exprEnvelope
}

// Compile-time interface checks.
var (
	_ Expr = (*AndExpr)(nil)
	_ Expr = (*OrExpr)(nil)
	_ Expr = (*NotExpr)(nil)
	_ Expr = (*CmpExpr)(nil)
	_ Expr = (*InExpr)(nil)
	_ Expr = (*PresentExpr)(nil)
	_ Expr = (*ConstExpr)(nil)
)

// AndExpr is boolean conjunction. XACML logical functions are strict with
// respect to errors except where short-circuiting yields a determined
// result: a False operand makes the whole conjunction False regardless of
// errors elsewhere.
type AndExpr struct{ Args []Expr }

// Eval implements Expr.
func (e *AndExpr) Eval(r *Request) (bool, error) {
	var firstErr error
	for _, a := range e.Args {
		v, err := a.Eval(r)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !v {
			return false, nil
		}
	}
	if firstErr != nil {
		return false, firstErr
	}
	return true, nil
}

// Walk implements Expr.
func (e *AndExpr) Walk(fn func(Expr)) {
	fn(e)
	for _, a := range e.Args {
		a.Walk(fn)
	}
}

// String implements Expr.
func (e *AndExpr) String() string { return nary("and", e.Args) }

// OrExpr is boolean disjunction (True dominates errors).
type OrExpr struct{ Args []Expr }

// Eval implements Expr.
func (e *OrExpr) Eval(r *Request) (bool, error) {
	var firstErr error
	for _, a := range e.Args {
		v, err := a.Eval(r)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if v {
			return true, nil
		}
	}
	if firstErr != nil {
		return false, firstErr
	}
	return false, nil
}

// Walk implements Expr.
func (e *OrExpr) Walk(fn func(Expr)) {
	fn(e)
	for _, a := range e.Args {
		a.Walk(fn)
	}
}

// String implements Expr.
func (e *OrExpr) String() string { return nary("or", e.Args) }

// NotExpr is boolean negation.
type NotExpr struct{ Arg Expr }

// Eval implements Expr.
func (e *NotExpr) Eval(r *Request) (bool, error) {
	v, err := e.Arg.Eval(r)
	if err != nil {
		return false, err
	}
	return !v, nil
}

// Walk implements Expr.
func (e *NotExpr) Walk(fn func(Expr)) {
	fn(e)
	e.Arg.Walk(fn)
}

// String implements Expr.
func (e *NotExpr) String() string { return "(not " + e.Arg.String() + ")" }

// CmpExpr compares an attribute bag against a literal: true iff at least
// one bag value satisfies the comparison ("any-of" semantics).
type CmpExpr struct {
	Op   CmpOp
	Attr Designator
	Lit  Value
}

// Eval implements Expr.
func (e *CmpExpr) Eval(r *Request) (bool, error) {
	bag, err := e.Attr.Resolve(r)
	if err != nil {
		return false, err
	}
	for _, v := range bag {
		ok, err := applyCmp(e.Op, v, e.Lit)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Walk implements Expr.
func (e *CmpExpr) Walk(fn func(Expr)) { fn(e) }

// String implements Expr.
func (e *CmpExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Attr.Key(), e.Op, e.Lit)
}

// InExpr is set membership: true iff at least one bag value equals one of
// the literals.
type InExpr struct {
	Attr Designator
	Set  []Value
}

// Eval implements Expr.
func (e *InExpr) Eval(r *Request) (bool, error) {
	bag, err := e.Attr.Resolve(r)
	if err != nil {
		return false, err
	}
	for _, v := range bag {
		for _, lit := range e.Set {
			if v.Equal(lit) {
				return true, nil
			}
		}
	}
	return false, nil
}

// Walk implements Expr.
func (e *InExpr) Walk(fn func(Expr)) { fn(e) }

// String implements Expr.
func (e *InExpr) String() string {
	parts := make([]string, len(e.Set))
	for i, v := range e.Set {
		parts[i] = v.String()
	}
	return fmt.Sprintf("(%s in {%s})", e.Attr.Key(), strings.Join(parts, ","))
}

// PresentExpr is true iff the designated bag is non-empty.
type PresentExpr struct{ Attr Designator }

// Eval implements Expr.
func (e *PresentExpr) Eval(r *Request) (bool, error) {
	// Presence testing ignores MustBePresent by definition.
	return !r.Get(e.Attr.Cat, e.Attr.ID).IsEmpty(), nil
}

// Walk implements Expr.
func (e *PresentExpr) Walk(fn func(Expr)) { fn(e) }

// String implements Expr.
func (e *PresentExpr) String() string { return "(present " + e.Attr.Key() + ")" }

// ConstExpr is a boolean literal.
type ConstExpr struct{ Val bool }

// Eval implements Expr.
func (e *ConstExpr) Eval(r *Request) (bool, error) { return e.Val, nil }

// Walk implements Expr.
func (e *ConstExpr) Walk(fn func(Expr)) { fn(e) }

// String implements Expr.
func (e *ConstExpr) String() string { return fmt.Sprintf("%t", e.Val) }

func nary(op string, args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return "(" + op + " " + strings.Join(parts, " ") + ")"
}

// exprEnvelope is the tagged-union JSON form of an Expr.
type exprEnvelope struct {
	Op   string          `json:"op"`
	Args []exprEnvelope  `json:"args,omitempty"`
	Cmp  CmpOp           `json:"cmp,omitempty"`
	Attr *Designator     `json:"attr,omitempty"`
	Lit  *Value          `json:"lit,omitempty"`
	Set  []Value         `json:"set,omitempty"`
	Val  bool            `json:"val,omitempty"`
	Raw  json.RawMessage `json:"-"`
}

func (e *AndExpr) exprJSON() exprEnvelope {
	return exprEnvelope{Op: "and", Args: envelopes(e.Args)}
}
func (e *OrExpr) exprJSON() exprEnvelope {
	return exprEnvelope{Op: "or", Args: envelopes(e.Args)}
}
func (e *NotExpr) exprJSON() exprEnvelope {
	return exprEnvelope{Op: "not", Args: []exprEnvelope{e.Arg.exprJSON()}}
}
func (e *CmpExpr) exprJSON() exprEnvelope {
	attr := e.Attr
	lit := e.Lit
	return exprEnvelope{Op: "cmp", Cmp: e.Op, Attr: &attr, Lit: &lit}
}
func (e *InExpr) exprJSON() exprEnvelope {
	attr := e.Attr
	return exprEnvelope{Op: "in", Attr: &attr, Set: e.Set}
}
func (e *PresentExpr) exprJSON() exprEnvelope {
	attr := e.Attr
	return exprEnvelope{Op: "present", Attr: &attr}
}
func (e *ConstExpr) exprJSON() exprEnvelope {
	return exprEnvelope{Op: "const", Val: e.Val}
}

func envelopes(args []Expr) []exprEnvelope {
	out := make([]exprEnvelope, len(args))
	for i, a := range args {
		out[i] = a.exprJSON()
	}
	return out
}

// MarshalExpr serialises an expression tree to JSON.
func MarshalExpr(e Expr) ([]byte, error) {
	if e == nil {
		return []byte("null"), nil
	}
	return json.Marshal(e.exprJSON())
}

// UnmarshalExpr parses an expression tree from JSON ("null" yields nil).
func UnmarshalExpr(data []byte) (Expr, error) {
	if len(data) == 0 || string(data) == "null" {
		return nil, nil
	}
	var env exprEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("xacml: unmarshal expr: %w", err)
	}
	return exprFromEnvelope(env)
}

func exprFromEnvelope(env exprEnvelope) (Expr, error) {
	switch env.Op {
	case "and", "or":
		args := make([]Expr, len(env.Args))
		for i, a := range env.Args {
			e, err := exprFromEnvelope(a)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		if env.Op == "and" {
			return &AndExpr{Args: args}, nil
		}
		return &OrExpr{Args: args}, nil
	case "not":
		if len(env.Args) != 1 {
			return nil, fmt.Errorf("xacml: not expects 1 arg, got %d", len(env.Args))
		}
		arg, err := exprFromEnvelope(env.Args[0])
		if err != nil {
			return nil, err
		}
		return &NotExpr{Arg: arg}, nil
	case "cmp":
		if env.Attr == nil || env.Lit == nil {
			return nil, fmt.Errorf("xacml: cmp expr missing attr/lit")
		}
		return &CmpExpr{Op: env.Cmp, Attr: *env.Attr, Lit: *env.Lit}, nil
	case "in":
		if env.Attr == nil {
			return nil, fmt.Errorf("xacml: in expr missing attr")
		}
		return &InExpr{Attr: *env.Attr, Set: env.Set}, nil
	case "present":
		if env.Attr == nil {
			return nil, fmt.Errorf("xacml: present expr missing attr")
		}
		return &PresentExpr{Attr: *env.Attr}, nil
	case "const":
		return &ConstExpr{Val: env.Val}, nil
	default:
		return nil, fmt.Errorf("xacml: unknown expr op %q", env.Op)
	}
}
