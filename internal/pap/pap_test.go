package pap

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/netsim"
	"drams/internal/store"
	"drams/internal/xacml"
)

// papFleet is a miniature federation: n chain nodes over netsim, each with
// a PDP and a Watcher, plus an Admin bound to one member.
type papFleet struct {
	nodes    []*blockchain.Node
	pdps     []*xacml.PDP
	watchers []*Watcher
	admin    *Admin
	events   *eventLog
}

type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) add(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

func (l *eventLog) byKind(k EventKind) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, ev := range l.events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

func newFleet(t *testing.T, n int) *papFleet {
	t.Helper()
	pap := crypto.NewIdentityFromSeed("pap", crypto.DeriveKey("pap-test", "id"))
	registry := contract.NewRegistry()
	registry.MustRegister(&core.PolicyContract{PAP: pap.Name()})
	chainCfg := blockchain.Config{
		Difficulty: 6,
		Identities: []crypto.PublicIdentity{pap.Public()},
		Registry:   registry,
	}
	net := netsim.New(netsim.Config{BaseLatency: time.Millisecond, Seed: 5})
	f := &papFleet{events: &eventLog{}}
	for i := 0; i < n; i++ {
		node, err := blockchain.NewNode(blockchain.NodeConfig{
			Name:               fmt.Sprintf("node-%d", i),
			Chain:              chainCfg,
			Network:            net,
			Mine:               i == 0,
			EmptyBlockInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.nodes = append(f.nodes, node)
		pdp := xacml.NewCachedPDP(nil, 256)
		f.pdps = append(f.pdps, pdp)
		w, err := NewWatcher(WatcherConfig{Node: node, PDP: pdp, PRP: xacml.NewPRP(), OnEvent: f.events.add})
		if err != nil {
			t.Fatal(err)
		}
		f.watchers = append(f.watchers, w)
	}
	t.Cleanup(func() {
		for _, w := range f.watchers {
			w.Stop()
		}
		for _, nd := range f.nodes {
			nd.Stop()
		}
		net.Close()
	})
	for _, nd := range f.nodes {
		nd.Start()
	}
	for _, w := range f.watchers {
		w.Start()
	}
	f.admin = NewAdmin(f.nodes[0], pap)
	return f
}

func papCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func (f *papFleet) waitAll(t *testing.T, version string) {
	t.Helper()
	ctx := papCtx(t)
	for i, w := range f.watchers {
		if err := w.WaitForVersion(ctx, version); err != nil {
			t.Fatalf("watcher %d: %v", i, err)
		}
	}
}

func doctorRead(id string) *xacml.Request {
	return xacml.NewRequest(id).
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatAction, "op", xacml.String("read"))
}

// TestFleetActivatesAtSameHeight publishes updates from one member and
// demands every member flip — to the same version, at the same chain
// height, with the PDP answering under the new policy afterwards.
func TestFleetActivatesAtSameHeight(t *testing.T) {
	f := newFleet(t, 3)
	ctx := papCtx(t)

	prop, err := f.admin.UpdatePolicy(ctx, xacml.StandardPolicy("v1"), UpdateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f.waitAll(t, "v1")
	for i, pdp := range f.pdps {
		res, err := pdp.Evaluate(doctorRead(fmt.Sprintf("r1-%d", i)))
		if err != nil {
			t.Fatalf("pdp %d: %v", i, err)
		}
		if res.Decision != xacml.Permit || res.PolicyVersion != "v1" {
			t.Fatalf("pdp %d under v1: %v/%s", i, res.Decision, res.PolicyVersion)
		}
	}

	// Second update with a real activation delay.
	prop, err = f.admin.UpdatePolicy(ctx, xacml.RestrictedPolicy("v2"), UpdateOptions{ActivateDelta: 3})
	if err != nil {
		t.Fatal(err)
	}
	if prop.Digest != xacml.RestrictedPolicy("v2").Digest() {
		t.Fatalf("proposal digest = %s", prop.Digest.Short())
	}
	f.waitAll(t, "v2")

	// Same activation height on every member.
	var height uint64
	for i, w := range f.watchers {
		st := w.Stats()
		if st.Version != "v2" {
			t.Fatalf("watcher %d version = %q", i, st.Version)
		}
		if i == 0 {
			height = st.Height
		} else if st.Height != height {
			t.Fatalf("watcher %d activated at %d, watcher 0 at %d", i, st.Height, height)
		}
	}
	if height < prop.ActivateHeight {
		t.Fatalf("activated at %d before the gate %d", height, prop.ActivateHeight)
	}

	// Decisions flip everywhere, and the decision caches were purged.
	for i, pdp := range f.pdps {
		res, err := pdp.Evaluate(doctorRead(fmt.Sprintf("r2-%d", i)))
		if err != nil {
			t.Fatalf("pdp %d: %v", i, err)
		}
		if res.Decision != xacml.Deny || res.PolicyVersion != "v2" {
			t.Fatalf("pdp %d under v2: %v/%s", i, res.Decision, res.PolicyVersion)
		}
		if purges := pdp.Cache().Stats().Purges; purges < 2 {
			t.Fatalf("pdp %d cache purges = %d", i, purges)
		}
	}

	// On-chain history agrees.
	if hist := f.admin.History(); len(hist) != 2 || hist[0].Version != "v1" || hist[1].Version != "v2" {
		t.Fatalf("history = %+v", hist)
	}
}

// TestRollbackReactivatesOldVersion flips v1→v2→v1 and checks decisions,
// history and PRP state follow.
func TestRollbackReactivatesOldVersion(t *testing.T) {
	f := newFleet(t, 2)
	ctx := papCtx(t)

	if _, err := f.admin.UpdatePolicy(ctx, xacml.StandardPolicy("v1"), UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	f.waitAll(t, "v1")
	if _, err := f.admin.UpdatePolicy(ctx, xacml.RestrictedPolicy("v2"), UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	f.waitAll(t, "v2")

	prop, err := f.admin.Rollback(ctx, "v1", UpdateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prop.Version != "v1" {
		t.Fatalf("rollback proposal = %+v", prop)
	}
	f.waitAll(t, "v1")
	for i, pdp := range f.pdps {
		res, err := pdp.Evaluate(doctorRead(fmt.Sprintf("rb-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision != xacml.Permit || res.PolicyVersion != "v1" {
			t.Fatalf("pdp %d after rollback: %v/%s", i, res.Decision, res.PolicyVersion)
		}
	}
	if hist := f.admin.History(); len(hist) != 3 || hist[2].Version != "v1" {
		t.Fatalf("history = %+v", hist)
	}
	if _, err := f.admin.Rollback(ctx, "v9", UpdateOptions{}); err == nil {
		t.Fatal("rollback to unknown version accepted")
	}
}

// TestConflictSurfacesAsError re-anchors an existing version with different
// content: the Admin reports ErrPolicyConflict, the fleet keeps the
// original digest, and watchers surface the equivocation as a rejection.
func TestConflictSurfacesAsError(t *testing.T) {
	f := newFleet(t, 2)
	ctx := papCtx(t)

	if _, err := f.admin.UpdatePolicy(ctx, xacml.StandardPolicy("v1"), UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	f.waitAll(t, "v1")

	divergent := xacml.RestrictedPolicy("v1")
	if _, err := f.admin.UpdatePolicy(ctx, divergent, UpdateOptions{}); !errors.Is(err, ErrPolicyConflict) {
		t.Fatalf("conflict err = %v", err)
	}
	if d, _ := f.admin.PolicyDigest("v1"); d != xacml.StandardPolicy("v1").Digest() {
		t.Fatal("conflict replaced the anchored digest")
	}
	if st := f.admin.Stats(); st.Conflicts != 1 || st.UpdatesSubmitted != 1 {
		t.Fatalf("admin stats = %+v", st)
	}
	waitCond(t, 10*time.Second, func() bool {
		return len(f.events.byKind(EventRejected)) >= 1
	}, "watchers never surfaced the conflict")

	// Idempotent retry of the original content is fine.
	if _, err := f.admin.UpdatePolicy(ctx, xacml.StandardPolicy("v1"), UpdateOptions{}); err != nil {
		t.Fatalf("idempotent retry: %v", err)
	}
}

// TestLateJoinerSyncsActivePolicy starts a watcher only after activations
// happened: Sync must bring it to the fleet's active version.
func TestLateJoinerSyncsActivePolicy(t *testing.T) {
	f := newFleet(t, 2)
	ctx := papCtx(t)
	if _, err := f.admin.UpdatePolicy(ctx, xacml.RestrictedPolicy("v5"), UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	f.waitAll(t, "v5")

	pdp := xacml.NewCachedPDP(nil, 64)
	late, err := NewWatcher(WatcherConfig{Node: f.nodes[1], PDP: pdp})
	if err != nil {
		t.Fatal(err)
	}
	late.Start()
	defer late.Stop()
	if err := late.WaitForVersion(ctx, "v5"); err != nil {
		t.Fatal(err)
	}
	res, err := pdp.Evaluate(doctorRead("late"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != xacml.Deny || res.PolicyVersion != "v5" {
		t.Fatalf("late joiner: %v/%s", res.Decision, res.PolicyVersion)
	}
}

// TestReplayReproducesPolicyState replays the frozen best chain into a
// fresh replica and demands identical contract state and active version —
// the node-restart determinism guarantee.
func TestReplayReproducesPolicyState(t *testing.T) {
	f := newFleet(t, 2)
	ctx := papCtx(t)
	if _, err := f.admin.UpdatePolicy(ctx, xacml.StandardPolicy("v1"), UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	f.waitAll(t, "v1")
	if _, err := f.admin.UpdatePolicy(ctx, xacml.RestrictedPolicy("v2"), UpdateOptions{ActivateDelta: 2}); err != nil {
		t.Fatal(err)
	}
	f.waitAll(t, "v2")
	if _, err := f.admin.Rollback(ctx, "v1", UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	f.waitAll(t, "v1")

	// Freeze the source chain.
	src := f.nodes[0].Chain()
	for _, nd := range f.nodes {
		nd.Stop()
	}

	replica := blockchain.NewChain(src.Config())
	for _, h := range src.BestChainHashes() {
		if h == src.Genesis() {
			continue
		}
		b, ok := src.BlockByHash(h)
		if !ok {
			t.Fatalf("best-chain block %s missing", h.Short())
		}
		if err := replica.AddBlock(b); err != nil {
			t.Fatalf("replay %s: %v", h.Short(), err)
		}
	}
	if replica.StateDigest() != src.StateDigest() {
		t.Fatalf("replayed state digest %s != source %s",
			replica.StateDigest().Short(), src.StateDigest().Short())
	}
	var srcVer, repVer string
	src.ReadState(core.PolicyContractName, func(st contract.StateDB) { srcVer, _, _ = core.ReadActivePolicy(st) })
	replica.ReadState(core.PolicyContractName, func(st contract.StateDB) { repVer, _, _ = core.ReadActivePolicy(st) })
	if srcVer != "v1" || repVer != srcVer {
		t.Fatalf("active versions: source %q, replica %q", srcVer, repVer)
	}
}

// TestMonitorEventConversion checks the watcher→monitor adapter.
func TestMonitorEventConversion(t *testing.T) {
	d := crypto.Sum([]byte("x"))
	a, ok := MonitorEvent(Event{Kind: EventActivated, Version: "v3", Digest: d, Height: 9})
	if !ok || a.Type != core.AlertPolicyActivated || a.ReqID != "v3@9" || a.Height != 9 {
		t.Fatalf("activated alert = %+v (%v)", a, ok)
	}
	a, ok = MonitorEvent(Event{Kind: EventRejected, Version: "v3", Height: 4, Err: "boom"})
	if !ok || a.Type != core.AlertPolicyRejected {
		t.Fatalf("rejected alert = %+v (%v)", a, ok)
	}
	if _, ok := MonitorEvent(Event{Kind: EventStaged, Version: "v3"}); ok {
		t.Fatal("staged events must not reach the monitor")
	}
}

func waitCond(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

// TestWatcherResyncOnDrops pins the recovery contract for best-effort
// event delivery: when the subscription reports dropped notifications, the
// watcher reconciles from chain state and lands on the active version it
// never saw an event for.
func TestWatcherResyncOnDrops(t *testing.T) {
	f := newFleet(t, 2)
	ctx := papCtx(t)
	if _, err := f.admin.UpdatePolicy(ctx, xacml.StandardPolicy("v1"), UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.admin.UpdatePolicy(ctx, xacml.RestrictedPolicy("v2"), UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	f.waitAll(t, "v2")

	// A watcher that missed every event (never started, so no
	// subscription): observing a drop must trigger the chain-state resync.
	pdp := xacml.NewCachedPDP(nil, 64)
	w, err := NewWatcher(WatcherConfig{Node: f.nodes[1], PDP: pdp})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Version(); got != "" {
		t.Fatalf("fresh watcher already at %q", got)
	}
	w.observeDrops(3)
	if got := w.Version(); got != "v2" {
		t.Fatalf("after drop-triggered resync at %q, want v2", got)
	}
	st := w.Stats()
	if st.Resyncs != 1 || st.EventsDropped != 3 {
		t.Fatalf("resyncs=%d dropped=%d, want 1/3", st.Resyncs, st.EventsDropped)
	}
	// A second observation with no new drops must not resync again.
	w.observeDrops(3)
	if st := w.Stats(); st.Resyncs != 1 {
		t.Fatalf("resyncs=%d after no-op observation", st.Resyncs)
	}
}

// TestWatcherRecoversAfterNodeRestart is the pap half of the crash/restart
// lifecycle: a member whose node reopens from its data dir — with policy
// flips having happened while it was down — must land on the fleet's
// current active version without any replayed admin action.
func TestWatcherRecoversAfterNodeRestart(t *testing.T) {
	papID := crypto.NewIdentityFromSeed("pap", crypto.DeriveKey("pap-restart", "id"))
	registry := contract.NewRegistry()
	registry.MustRegister(&core.PolicyContract{PAP: papID.Name()})
	chainCfg := blockchain.Config{
		Difficulty: 6,
		Identities: []crypto.PublicIdentity{papID.Public()},
		Registry:   registry,
	}
	net := netsim.New(netsim.Config{BaseLatency: time.Millisecond, Seed: 21})
	defer net.Close()
	peers := []string{"producer", "member"}
	producer, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "producer", Chain: chainCfg, Network: net, Peers: peers,
		Mine: true, EmptyBlockInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Stop()
	producer.Start()

	path := filepath.Join(t.TempDir(), "member.wal")
	kv, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	member, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "member", Chain: chainCfg, Network: net, Peers: peers, Store: kv,
	})
	if err != nil {
		t.Fatal(err)
	}
	member.Start()
	memberPDP := xacml.NewCachedPDP(nil, 64)
	w, err := NewWatcher(WatcherConfig{Node: member, PDP: memberPDP})
	if err != nil {
		t.Fatal(err)
	}
	w.Start()

	ctx := papCtx(t)
	admin := NewAdmin(producer, papID)
	if _, err := admin.UpdatePolicy(ctx, xacml.StandardPolicy("v1"), UpdateOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := w.WaitForVersion(ctx, "v1"); err != nil {
		t.Fatal(err)
	}

	// Crash the member mid-run.
	crashHeight := member.Chain().Height()
	w.Stop()
	member.Stop()
	net.Unregister("member")
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	// The fleet flips to v2 while the member is down.
	if _, err := admin.UpdatePolicy(ctx, xacml.RestrictedPolicy("v2"), UpdateOptions{}); err != nil {
		t.Fatal(err)
	}

	// Reopen from the data dir: re-validate, catch up past the crash
	// height over batched sync, and reconcile the policy state.
	kv2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	restarted, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "member", Chain: chainCfg, Network: net, Peers: peers, Store: kv2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Stop()
	if restarted.Stats().BlocksReloaded == 0 || restarted.Chain().Height() == 0 {
		t.Fatal("restart began from a fresh genesis")
	}
	restarted.Start()
	if err := restarted.SyncFrom("producer"); err != nil {
		t.Fatal(err)
	}
	if restarted.Chain().Height() <= crashHeight {
		t.Fatalf("no catch-up past crash height %d", crashHeight)
	}
	restartedPDP := xacml.NewCachedPDP(nil, 64)
	w2, err := NewWatcher(WatcherConfig{Node: restarted, PDP: restartedPDP})
	if err != nil {
		t.Fatal(err)
	}
	w2.Start()
	defer w2.Stop()
	if err := w2.WaitForVersion(ctx, "v2"); err != nil {
		t.Fatal(err)
	}
	res, err := restartedPDP.Evaluate(doctorRead("after-restart"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != xacml.Deny || res.PolicyVersion != "v2" {
		t.Fatalf("restarted member decides %v under %s, want Deny under v2", res.Decision, res.PolicyVersion)
	}
	waitCond(t, 10*time.Second, func() bool {
		return restarted.Chain().StateDigest() == producer.Chain().StateDigest()
	}, "restarted member converges on the fleet digest")
}
