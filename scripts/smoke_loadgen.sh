#!/usr/bin/env bash
# smoke_loadgen.sh — load harness against a real multi-process federation.
#
# Starts three drams-node daemons on loopback (infrastructure + two edge
# tenants; tenant-2 with a durable -data-dir), then runs drams-loadgen
# -target tcp with the tcp-ramp scenario: the harness joins the federation
# as a fourth (non-mining) chain member, ramps open-loop arrivals through
# its own PEPs against the remote PDP, and publishes a standard:v2 policy
# update through the on-chain PAP mid-run. While the ramp is running,
# tenant-2's PROCESS is killed and later restarted from its data dir —
# the external-churn counterpart of the netsim target's in-process
# kill/rejoin.
#
# Asserts:
#   - drams-loadgen exits 0 (run completed AND all SLO thresholds passed)
#   - BENCH_loadgen_tcp-ramp.json is written, says "pass": true, and
#     reports dropped_iterations
#   - every daemon instance that saw the rollout (infra, tenant-1, and the
#     RESTARTED tenant-2) activated policy v2 at the same height
#   - the restarted tenant-2 resumed its persisted chain (no fresh genesis)
#
# Usage: scripts/smoke_loadgen.sh [bin-dir]
set -u

TIMEOUT="${SMOKE_TIMEOUT:-150}"
PORT_BASE="${SMOKE_PORT_BASE:-19731}"
KILL_AFTER="${SMOKE_KILL_AFTER:-6}"
RESTART_AFTER="${SMOKE_RESTART_AFTER:-3}"
WORKDIR="$(mktemp -d)"
BINDIR="${1:-$WORKDIR}"
NODE="$BINDIR/drams-node"
LOADGEN="$BINDIR/drams-loadgen"

cleanup() {
    [ -n "${PIDS:-}" ] && kill $PIDS 2>/dev/null
    wait 2>/dev/null
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# Static gate first: a broken invariant fails fast, before any daemons
# start (skippable for tight inner loops with SKIP_CHECK=1).
if [ -z "${SKIP_CHECK:-}" ]; then
    . "$(dirname "$0")/check.sh"
    drams_check || exit 1
fi

for bin in "$NODE:./cmd/drams-node" "$LOADGEN:./cmd/drams-loadgen"; do
    path="${bin%%:*}" pkg="${bin#*:}"
    if [ ! -x "$path" ]; then
        echo "building $pkg..."
        go build -o "$path" "$pkg" || exit 1
    fi
done

P1=$((PORT_BASE)) P2=$((PORT_BASE + 1)) P3=$((PORT_BASE + 2))
A1="127.0.0.1:$P1" A2="127.0.0.1:$P2" A3="127.0.0.1:$P3"
# -timeout-blocks is huge so the harness's PEP exchanges (which have no
# obligation-probe follow-up) never cross the M3 window mid-run; it is
# consensus-critical, so daemons and loadgen must agree on it. -empty-block
# is slowed way down: at the 50ms default three miners produce ~20
# blocks/s of PoW+validation churn, which starves the PDP of CPU on small
# runners and turns decision latency into seconds.
COMMON="-federation tenant-1,tenant-2 -seed 7 -difficulty 8 -timeout-blocks 4096 -empty-block 500ms -run-for ${TIMEOUT}s"
T2_ARGS="-listen $A3 -join $A1,$A2 -tenant tenant-2 -data-dir $WORKDIR/t2-data"

"$NODE" -listen "$A1" -join "$A2,$A3" -tenant infrastructure $COMMON \
    >"$WORKDIR/infra.log" 2>&1 &
PIDS="$!"
"$NODE" -listen "$A2" -join "$A1,$A3" -tenant tenant-1 -request-every 500ms $COMMON \
    >"$WORKDIR/t1.log" 2>&1 &
PIDS="$PIDS $!"
"$NODE" $T2_ARGS $COMMON >"$WORKDIR/t2.log" 2>&1 &
PID_T2="$!"
PIDS="$PIDS $PID_T2"

fail() {
    echo "LOADGEN SMOKE FAILED: $1" >&2
    for log in infra t1 t2 t2b loadgen; do
        [ -f "$WORKDIR/$log.log" ] || continue
        echo "--- $log.log (tail) ---" >&2
        tail -25 "$WORKDIR/$log.log" >&2
    done
    exit 1
}

deadline=$(( $(date +%s) + TIMEOUT ))
echo "3 daemons up (logs in $WORKDIR), waiting for the chain to move..."
ok=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    heights_ok=true
    for log in infra t1 t2; do
        h=$(grep -o 'status height=[0-9]*' "$WORKDIR/$log.log" 2>/dev/null | tail -1 | grep -o '[0-9]*$')
        [ -n "$h" ] && [ "$h" -ge 3 ] || heights_ok=false
    done
    if $heights_ok; then ok=1; break; fi
    sleep 1
done
[ -n "$ok" ] || fail "daemons never reached height 3"

echo "starting drams-loadgen (tcp-ramp: open-loop ramp + mid-run standard:v2 flip)..."
"$LOADGEN" -target tcp -scenario tcp-ramp \
    -peers "$A1,$A2,$A3" -federation tenant-1,tenant-2 \
    -difficulty 8 -timeout-blocks 4096 -out "$WORKDIR" \
    >"$WORKDIR/loadgen.log" 2>&1 &
PID_LG="$!"
PIDS="$PIDS $PID_LG"

# External churn while the ramp runs: kill tenant-2's process, then
# restart it from its durable data dir.
sleep "$KILL_AFTER"
kill "$PID_T2" 2>/dev/null
wait "$PID_T2" 2>/dev/null
PIDS=$(echo "$PIDS" | sed "s/ $PID_T2 / /")
echo "tenant-2 killed mid-ramp; restarting from its data dir in ${RESTART_AFTER}s..."
sleep "$RESTART_AFTER"
"$NODE" $T2_ARGS $COMMON >"$WORKDIR/t2b.log" 2>&1 &
PIDS="$PIDS $!"

wait "$PID_LG"
LG_EXIT=$?
PIDS=$(echo "$PIDS" | sed "s/ $PID_LG / /")
echo "--- loadgen output ---"
cat "$WORKDIR/loadgen.log"
[ "$LG_EXIT" -eq 0 ] || fail "drams-loadgen exited $LG_EXIT (0 = pass, 1 = run error, 2 = SLO breach)"

REPORT="$WORKDIR/BENCH_loadgen_tcp-ramp.json"
[ -f "$REPORT" ] || fail "missing $REPORT"
grep -q '"schema": "drams-bench/1"' "$REPORT" || fail "report has wrong schema"
grep -q '"pass": true' "$REPORT" || fail "report does not say pass"
grep -q '"dropped"' "$REPORT" || fail "report missing dropped_iterations metric"
grep -q '"expr": "p99' "$REPORT" || fail "report missing p99 threshold verdict"

# The flip the harness published must have activated fleet-wide — on the
# survivors and on the RESTARTED tenant-2 (which learns it from its
# catch-up sync).
ok=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    act=true
    for log in infra t1 t2b; do
        grep -q 'policy v2 activated at height' "$WORKDIR/$log.log" 2>/dev/null || act=false
    done
    if $act; then ok=1; break; fi
    sleep 1
done
[ -n "$ok" ] || fail "policy v2 (published by the harness) did not activate on all members"

act_heights=$(for log in infra t1 t2b; do
    grep -o 'policy v2 activated at height [0-9]*' "$WORKDIR/$log.log" | head -1 | grep -o '[0-9]*$'
done | sort -u | wc -l)
[ "$act_heights" -eq 1 ] || fail "v2 activation heights differ across processes"

restored=$(grep -o 'restored chain height=[0-9]*' "$WORKDIR/t2b.log" | head -1 | grep -o '[0-9]*$')
[ -n "$restored" ] && [ "$restored" -ge 1 ] || fail "tenant-2 restart began from a fresh genesis"

kill $PIDS 2>/dev/null
wait 2>/dev/null
PIDS=""

echo "LOADGEN SMOKE OK: tcp-ramp passed its SLOs against a live 3-process federation, survived tenant-2 kill+restart (resumed height $restored), and the harness-published v2 activated fleet-wide at one height"
exit 0
