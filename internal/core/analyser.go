package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drams/internal/analysis"
	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/metrics"
	"drams/internal/trace"
	"drams/internal/xacml"
)

// Analyser is the standalone checking component of DRAMS (paper §II): it
// consumes pdp.response logs from the chain, decrypts the exchange context
// with the shared LI key, re-derives the expected decision from its own
// compiled representation of the authoritative policy, and publishes a
// keyed verdict the log-match contract compares against the PDP's decision
// (check M5).
//
// Per Figure 1 it is "logically placed within the Infrastructural Tenant,
// but deployed within a different cloud section" — here: it runs against
// its own blockchain node and shares no code path with the PDP.
type Analyser struct {
	name   string
	node   *blockchain.Node
	sender *blockchain.Sender
	cipher *crypto.Cipher
	key    crypto.Key

	compiled atomic.Pointer[analysedPolicy]

	// history keeps the compiled forms of recently loaded versions keyed
	// by policy digest, so exchanges whose logs land around a runtime
	// policy flip are verified under the policy the PDP actually decided
	// with (M6 separately polices that the claimed version was anchored
	// and active). Bounded FIFO.
	histMu    sync.Mutex
	history   map[crypto.Digest]*analysedPolicy
	histOrder []crypto.Digest

	tracer atomic.Pointer[trace.Tracer]

	verdicts   metrics.Counter
	mismatches metrics.Counter
	failures   metrics.Counter

	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	cancelSub func()
}

type analysedPolicy struct {
	compiled *analysis.Compiled
	digest   crypto.Digest
}

// AnalyserStats snapshots the analyser counters.
type AnalyserStats struct {
	VerdictsSubmitted int64
	MismatchesFound   int64
	Failures          int64
}

// NewAnalyser builds an analyser. identity must be the identity configured
// as MatchConfig.Analyser on the contract.
func NewAnalyser(name string, node *blockchain.Node, identity *crypto.Identity, key crypto.Key) (*Analyser, error) {
	cipher, err := crypto.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("core: analyser cipher: %w", err)
	}
	return &Analyser{
		name:    name,
		node:    node,
		sender:  blockchain.NewSender(node, identity),
		cipher:  cipher,
		key:     key,
		history: make(map[crypto.Digest]*analysedPolicy),
		stop:    make(chan struct{}),
	}, nil
}

// analyserHistoryBound caps how many compiled policy versions are retained
// for flip-window verification.
const analyserHistoryBound = 8

// LoadPolicy compiles the authoritative policy set the analyser will check
// decisions against. Previously loaded versions are retained (bounded) so
// in-flight exchanges from before a runtime policy flip are still verified
// under the policy they were decided with.
func (an *Analyser) LoadPolicy(ps *xacml.PolicySet) {
	cl := ps.Clone()
	ap := &analysedPolicy{compiled: analysis.Compile(cl), digest: cl.Digest()}
	an.compiled.Store(ap)
	an.histMu.Lock()
	if _, ok := an.history[ap.digest]; !ok {
		an.history[ap.digest] = ap
		an.histOrder = append(an.histOrder, ap.digest)
		for len(an.histOrder) > analyserHistoryBound {
			oldest := an.histOrder[0]
			an.histOrder = an.histOrder[1:]
			delete(an.history, oldest)
		}
	}
	an.histMu.Unlock()
}

// policyFor picks the compiled policy matching the digest a pdp.response
// claims, falling back to the current one for unknown digests (the forged
// digest then makes the M5 verdict mismatch, and M6 fires independently).
func (an *Analyser) policyFor(digest crypto.Digest) *analysedPolicy {
	an.histMu.Lock()
	ap := an.history[digest]
	an.histMu.Unlock()
	if ap != nil {
		return ap
	}
	return an.compiled.Load()
}

// VerifyPolicyAnchor checks that the loaded policy matches the on-chain
// anchored digest for the active version — the analyser's own supply-chain
// check before trusting a policy from the PRP.
func (an *Analyser) VerifyPolicyAnchor() error {
	ap := an.compiled.Load()
	if ap == nil {
		return fmt.Errorf("core: analyser has no policy loaded")
	}
	var (
		anchored   crypto.Digest
		haveAnchor bool
	)
	// Preferred anchor: the policy lifecycle contract; legacy PAP
	// announcements in the log-match contract otherwise.
	an.node.Chain().ReadState(PolicyContractName, func(st contract.StateDB) {
		_, anchored, haveAnchor = ReadActivePolicy(st)
	})
	if !haveAnchor {
		an.node.Chain().ReadState(ContractName, func(st contract.StateDB) {
			if ver, ok := ReadActivePolicyVersion(st); ok {
				anchored, haveAnchor = ReadPolicyAnchor(st, ver)
			}
		})
	}
	if !haveAnchor {
		return fmt.Errorf("core: no active policy anchored on-chain")
	}
	if anchored != ap.digest {
		return fmt.Errorf("core: loaded policy digest %s differs from anchored %s",
			ap.digest.Short(), anchored.Short())
	}
	return nil
}

// SetTracer attaches (or clears, with nil) the end-to-end span recorder.
func (an *Analyser) SetTracer(t *trace.Tracer) { an.tracer.Store(t) }

// Start begins consuming pdp.response logs and publishing verdicts.
func (an *Analyser) Start() {
	events, cancel := an.node.SubscribeEvents(0)
	an.cancelSub = cancel
	an.wg.Add(1)
	go func() {
		defer an.wg.Done()
		for {
			select {
			case <-an.stop:
				return
			case note, ok := <-events:
				if !ok {
					return
				}
				for _, e := range note.Events {
					if e.Contract == ContractName && e.Type == EventLogStored {
						an.handleLog(e.Payload)
					}
				}
			}
		}
	}()
}

// Stop halts the analyser.
func (an *Analyser) Stop() {
	an.stopOnce.Do(func() { close(an.stop) })
	if an.cancelSub != nil {
		an.cancelSub()
	}
	an.wg.Wait()
}

// Stats snapshots the counters.
func (an *Analyser) Stats() AnalyserStats {
	return AnalyserStats{
		VerdictsSubmitted: an.verdicts.Value(),
		MismatchesFound:   an.mismatches.Value(),
		Failures:          an.failures.Value(),
	}
}

// extractRecord recovers the log record carried by a LogStored event
// payload. Batch-anchored records arrive as BatchedRecord envelopes; the
// analyser insists on a valid Merkle membership proof AND an on-chain
// anchor for the claimed root before trusting one — an event stream cannot
// feed it observations the chain never committed to.
func (an *Analyser) extractRecord(payload []byte) (LogRecord, bool) {
	if br, err := DecodeBatchedRecord(payload); err == nil {
		if !br.VerifyInclusion() {
			an.failures.Inc()
			return LogRecord{}, false
		}
		anchored := false
		an.node.Chain().ReadState(ContractName, func(st contract.StateDB) {
			_, anchored = ReadBatchAnchor(st, br.Root)
		})
		if !anchored {
			an.failures.Inc()
			return LogRecord{}, false
		}
		return br.Record, true
	}
	rec, err := DecodeLogRecord(payload)
	if err != nil {
		return LogRecord{}, false
	}
	return rec, true
}

func (an *Analyser) handleLog(payload []byte) {
	rec, ok := an.extractRecord(payload)
	if !ok || rec.Kind != KindPDPResponse {
		return
	}
	start := time.Now()
	ap := an.policyFor(rec.PolicyDigest)
	if ap == nil {
		an.failures.Inc()
		return
	}
	ec, err := OpenContext(an.cipher, rec.ReqID, rec.Payload)
	if err != nil || ec.Request == nil {
		// Cannot decrypt (wrong key / tampered payload) or missing
		// context: a verdict cannot be produced; the RequireVerdict
		// timeout will surface this as AlertVerdictMissing.
		an.failures.Inc()
		return
	}
	expected := ap.compiled.ExpectedSimple(ec.Request)
	if ec.Result != nil && ec.Result.Decision.Simple() != expected {
		an.mismatches.Inc()
	}
	v := Verdict{
		ReqID:        rec.ReqID,
		ExpectedTag:  DecisionTag(an.key, rec.ReqID, expected),
		PolicyDigest: ap.digest,
		Analyser:     an.name,
	}
	call := contract.Call{Contract: ContractName, Method: MethodVerdict, Args: v.Encode()}
	if _, err := an.sender.Send(call); err != nil {
		an.failures.Inc()
		return
	}
	an.verdicts.Inc()
	traceID := rec.TraceID
	if traceID == "" {
		traceID = rec.ReqID
	}
	an.tracer.Load().Span(traceID, trace.StageAnalyserVerify, start, time.Since(start))
}

// ExpectedDecision exposes the analyser's re-derivation for direct use
// (experiments, examples).
func (an *Analyser) ExpectedDecision(r *xacml.Request) (xacml.Decision, error) {
	ap := an.compiled.Load()
	if ap == nil {
		return 0, fmt.Errorf("core: analyser has no policy loaded")
	}
	return ap.compiled.ExpectedSimple(r), nil
}
