// Command drams-lint runs the repo's architectural-invariant analyzer
// suite (internal/lint) over the requested packages and exits nonzero on
// findings, making the invariants a CI gate rather than prose.
//
// Usage:
//
//	drams-lint [-json] [-out findings.json] [-list] [packages...]
//
// Packages default to ./... relative to the working directory, which must
// sit inside a Go module. Findings print as `file:line: [analyzer]
// message`; -json switches stdout to the machine-readable array and -out
// additionally writes that array to a file regardless of the stdout mode
// (CI uploads it as an artifact on failure).
//
// Exit codes: 0 no findings, 1 findings reported, 2 the run itself failed.
//
// Suppression: a finding is silenced by `//lint:ignore <analyzer> <reason>`
// on the offending line or the line above. The reason is mandatory and
// unused or malformed directives are findings themselves, so suppressions
// cannot rot.
package main

import (
	"flag"
	"fmt"
	"os"

	"drams/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "print findings as a JSON array instead of text")
	outFile := flag.String("out", "", "also write JSON findings to this file")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drams-lint: %v\n", err)
		return 2
	}
	findings := prog.Run(analyzers)

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err == nil {
			err = lint.WriteJSON(f, findings)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "drams-lint: write %s: %v\n", *outFile, err)
			return 2
		}
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "drams-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "drams-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
