package blockchain

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"drams/internal/crypto"
)

// mempoolShards is the lock-stripe width. Senders hash onto stripes, so
// concurrent submitters (many LIs flushing at once, gossip ingest batches,
// the miner's Collect) contend only when they touch the same stripe instead
// of serializing on one pool-wide mutex.
const mempoolShards = 16

// senderShard holds the pending transactions of the senders hashing onto
// one stripe, ordered by (sender, nonce) within the shard.
type senderShard struct {
	mu       sync.Mutex
	bySender map[string]map[uint64]Transaction
}

// idShard holds the known-transaction-ID set of one stripe (striped by
// digest, independently of the sender stripes, so Has stays one short
// mutex).
type idShard struct {
	mu  sync.Mutex
	ids map[crypto.Digest]struct{}
}

// Mempool holds pending transactions ordered by (sender, nonce) so block
// assembly can pick executable sequences — a transaction is only included
// once all lower nonces of its sender are confirmed or included first.
// Internally it is lock-striped: a sender's transactions live on one of
// mempoolShards stripes, and the duplicate-ID set is striped separately by
// digest.
type Mempool struct {
	senders [mempoolShards]senderShard
	ids     [mempoolShards]idShard
	size    atomic.Int64
	maxSize int64
}

// NewMempool returns a mempool bounded to maxSize transactions (10 000 when
// maxSize <= 0).
func NewMempool(maxSize int) *Mempool {
	if maxSize <= 0 {
		maxSize = 10000
	}
	m := &Mempool{maxSize: int64(maxSize)}
	for i := range m.senders {
		m.senders[i].bySender = make(map[string]map[uint64]Transaction)
	}
	for i := range m.ids {
		m.ids[i].ids = make(map[crypto.Digest]struct{})
	}
	return m
}

func (m *Mempool) senderShard(sender string) *senderShard {
	h := fnv.New32a()
	h.Write([]byte(sender))
	return &m.senders[h.Sum32()%mempoolShards]
}

func (m *Mempool) idShard(id crypto.Digest) *idShard {
	return &m.ids[id[0]%mempoolShards]
}

// reserveID claims id in the duplicate set, reporting false when known.
func (m *Mempool) reserveID(id crypto.Digest) bool {
	s := m.idShard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.ids[id]; ok {
		return false
	}
	s.ids[id] = struct{}{}
	return true
}

func (m *Mempool) releaseID(id crypto.Digest) {
	s := m.idShard(id)
	s.mu.Lock()
	delete(s.ids, id)
	s.mu.Unlock()
}

// Add inserts a transaction. Duplicates (by ID, or same sender+nonce) return
// ErrKnownTx; a full pool returns an error. The ID set, size bound and
// sender stripe are claimed in that order, each under its own short lock,
// with rollback on the failure paths — no global lock is ever taken.
func (m *Mempool) Add(tx Transaction) error {
	id := tx.ID()
	if !m.reserveID(id) {
		return ErrKnownTx
	}
	if m.size.Add(1) > m.maxSize {
		m.size.Add(-1)
		m.releaseID(id)
		return fmt.Errorf("blockchain: mempool full (%d)", m.maxSize)
	}
	s := m.senderShard(tx.From)
	s.mu.Lock()
	slot, ok := s.bySender[tx.From]
	if !ok {
		slot = make(map[uint64]Transaction)
		s.bySender[tx.From] = slot
	}
	if _, dup := slot[tx.Nonce]; dup {
		s.mu.Unlock()
		m.size.Add(-1)
		m.releaseID(id)
		return fmt.Errorf("%w: sender %q nonce %d", ErrKnownTx, tx.From, tx.Nonce)
	}
	slot[tx.Nonce] = tx
	s.mu.Unlock()
	return nil
}

// AddBatch inserts a batch of transactions and returns one error per
// transaction, index-aligned (nil = admitted). Used by the node's batched
// gossip-admission loop.
func (m *Mempool) AddBatch(txs []Transaction) []error {
	errs := make([]error, len(txs))
	for i := range txs {
		errs[i] = m.Add(txs[i])
	}
	return errs
}

// Has reports whether the transaction ID is pending.
func (m *Mempool) Has(id crypto.Digest) bool {
	s := m.idShard(id)
	s.mu.Lock()
	_, ok := s.ids[id]
	s.mu.Unlock()
	return ok
}

// Len returns the number of pending transactions.
func (m *Mempool) Len() int { return int(m.size.Load()) }

// Collect returns up to max transactions executable on top of the given
// confirmed per-sender nonces, in a deterministic (sender, nonce) order. The
// transactions stay in the pool until PruneConfirmed removes them.
func (m *Mempool) Collect(max int, confirmed map[string]uint64) []Transaction {
	runs := make(map[string][]Transaction)
	var senders []string
	for i := range m.senders {
		s := &m.senders[i]
		s.mu.Lock()
		for sender, txs := range s.bySender {
			next := confirmed[sender] + 1
			var run []Transaction
			for len(run) < max {
				tx, ok := txs[next]
				if !ok {
					break
				}
				run = append(run, tx)
				next++
			}
			if len(run) > 0 {
				runs[sender] = run
				senders = append(senders, sender)
			}
		}
		s.mu.Unlock()
	}
	sort.Strings(senders)
	var out []Transaction
	for _, sender := range senders {
		for _, tx := range runs[sender] {
			if len(out) >= max {
				return out
			}
			out = append(out, tx)
		}
	}
	return out
}

// All returns up to max pending transactions in deterministic (sender,
// nonce) order; used for periodic rebroadcast after partitions.
func (m *Mempool) All(max int) []Transaction {
	runs := make(map[string][]Transaction)
	var senders []string
	for i := range m.senders {
		s := &m.senders[i]
		s.mu.Lock()
		for sender, txs := range s.bySender {
			nonces := make([]uint64, 0, len(txs))
			for n := range txs {
				nonces = append(nonces, n)
			}
			sort.Slice(nonces, func(i, j int) bool { return nonces[i] < nonces[j] })
			if len(nonces) > max {
				nonces = nonces[:max]
			}
			run := make([]Transaction, len(nonces))
			for j, n := range nonces {
				run[j] = txs[n]
			}
			if len(run) > 0 {
				runs[sender] = run
				senders = append(senders, sender)
			}
		}
		s.mu.Unlock()
	}
	sort.Strings(senders)
	var out []Transaction
	for _, sender := range senders {
		for _, tx := range runs[sender] {
			if len(out) >= max {
				return out
			}
			out = append(out, tx)
		}
	}
	return out
}

// PruneConfirmed drops every pending transaction whose nonce is already
// covered by the confirmed nonces (i.e. it executed on the best chain, or a
// competing transaction with the same nonce did).
func (m *Mempool) PruneConfirmed(confirmed map[string]uint64) {
	var removed []crypto.Digest
	for i := range m.senders {
		s := &m.senders[i]
		s.mu.Lock()
		for sender, txs := range s.bySender {
			limit := confirmed[sender]
			for nonce, tx := range txs {
				if nonce <= limit {
					delete(txs, nonce)
					removed = append(removed, tx.ID())
				}
			}
			if len(txs) == 0 {
				delete(s.bySender, sender)
			}
		}
		s.mu.Unlock()
	}
	// IDs are released outside the sender locks (no nested stripes).
	for _, id := range removed {
		m.releaseID(id)
	}
	m.size.Add(int64(-len(removed)))
}
