package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmp enforces the PR 3 wire-error contract: transport and blockchain
// sentinel errors survive crossing the wire only through RemoteError
// wrapping, so identity comparison (== / != / switch case) silently stops
// matching the moment an error arrives from a peer instead of a local
// call. errors.Is is the only comparison that holds on both sides of the
// wire.
type ErrCmp struct {
	// SentinelPkgs are the module-relative packages whose exported Err*
	// variables cross the wire wrapped.
	SentinelPkgs []string
}

// NewErrCmp returns the analyzer covering the wire-crossing sentinels.
func NewErrCmp() *ErrCmp {
	return &ErrCmp{SentinelPkgs: []string{
		"internal/transport",
		"internal/blockchain",
		"internal/netsim", // aliases the transport sentinels
	}}
}

func (a *ErrCmp) Name() string { return "errcmp" }

func (a *ErrCmp) Doc() string {
	return "transport/blockchain sentinel errors are matched with errors.Is, never == or != (PR 3)"
}

func (a *ErrCmp) Run(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{x.X, x.Y} {
					if name, ok := a.sentinel(p, side); ok {
						p.Reportf(x.OpPos, "%s compared with %s: sentinels cross the wire wrapped in RemoteError, use errors.Is", name, x.Op)
						break
					}
				}
			case *ast.SwitchStmt:
				if x.Tag == nil {
					return true
				}
				if tv, ok := p.Info.Types[x.Tag]; !ok || !isErrorType(tv.Type) {
					return true
				}
				for _, c := range x.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := a.sentinel(p, e); ok {
							p.Reportf(e.Pos(), "switch case matches %s by identity: sentinels cross the wire wrapped in RemoteError, use errors.Is", name)
						}
					}
				}
			}
			return true
		})
	}
}

// sentinel reports whether e resolves to an exported Err* package-level
// error variable declared in one of the sentinel packages.
func (a *ErrCmp) sentinel(p *Pass, e ast.Expr) (string, bool) {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[x.Sel]
	default:
		return "", false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !v.Exported() || !isErrorType(v.Type()) {
		return "", false
	}
	if len(v.Name()) < 4 || v.Name()[:3] != "Err" {
		return "", false
	}
	rel, inMod := p.Rel(v.Pkg().Path())
	if !inMod || !matchAnyPath(rel, a.SentinelPkgs) {
		return "", false
	}
	return v.Pkg().Name() + "." + v.Name(), true
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
