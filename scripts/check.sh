#!/usr/bin/env bash
# check.sh — the repo's unified static gate: go vet plus drams-lint, the
# stdlib-only analyzer suite that enforces the architectural invariants
# (netsim isolation, the dep-free obs stratum, ctx propagation, no
# blocking call under a lock, pinned chaos seeds, errors.Is on wire
# sentinels, snapshot-only Stats; see docs/ARCHITECTURE.md).
#
# Usage:
#   scripts/check.sh                   # run the gate from the repo root
#   . scripts/check.sh && drams_check  # source the function into a script
#
# LINT_JSON_OUT=path.json additionally writes machine-readable findings
# (CI uploads them as an artifact when the gate fails).
set -u

drams_check() {
    echo "check: go vet ./..."
    go vet ./... || return 1
    echo "check: drams-lint ./..."
    if [ -n "${LINT_JSON_OUT:-}" ]; then
        go run ./cmd/drams-lint -out "$LINT_JSON_OUT" ./... || return 1
    else
        go run ./cmd/drams-lint ./... || return 1
    fi
}

# Executed directly (not sourced): run the gate now.
if [ "${BASH_SOURCE[0]:-$0}" = "$0" ]; then
    drams_check || exit 1
fi
