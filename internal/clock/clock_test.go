package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemNow(t *testing.T) {
	c := System{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("System.Now %v outside [%v, %v]", got, before, after)
	}
}

func TestSystemSince(t *testing.T) {
	c := System{}
	start := c.Now()
	if d := c.Since(start); d < 0 {
		t.Fatalf("Since returned negative duration %v", d)
	}
}

func TestMockNowAndAdvance(t *testing.T) {
	start := time.Date(2026, 6, 11, 0, 0, 0, 0, time.UTC)
	m := NewMock(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", m.Now(), start)
	}
	m.Advance(5 * time.Second)
	want := start.Add(5 * time.Second)
	if !m.Now().Equal(want) {
		t.Fatalf("after Advance Now = %v, want %v", m.Now(), want)
	}
}

func TestMockSince(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewMock(start)
	m.Advance(30 * time.Second)
	if d := m.Since(start); d != 30*time.Second {
		t.Fatalf("Since = %v, want 30s", d)
	}
}

func TestMockAfterFiresOnAdvance(t *testing.T) {
	m := NewMock(time.Unix(0, 0))
	ch := m.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	m.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired too early")
	default:
	}
	m.Advance(2 * time.Second)
	select {
	case tm := <-ch:
		if !tm.Equal(time.Unix(11, 0)) {
			t.Fatalf("fired at %v, want %v", tm, time.Unix(11, 0))
		}
	case <-time.After(time.Second):
		t.Fatal("timer did not fire after Advance past deadline")
	}
}

func TestMockAfterNonPositive(t *testing.T) {
	m := NewMock(time.Unix(0, 0))
	select {
	case <-m.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestMockSleepUnblocksOnAdvance(t *testing.T) {
	m := NewMock(time.Unix(0, 0))
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Sleep(5 * time.Second)
		close(done)
	}()
	// Give the sleeper a moment to register its waiter.
	for i := 0; i < 100; i++ {
		m.mu.Lock()
		n := len(m.waiters)
		m.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
	wg.Wait()
}

func TestMockSleepZeroReturnsImmediately(t *testing.T) {
	m := NewMock(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		m.Sleep(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep(0) blocked")
	}
}

func TestMockSet(t *testing.T) {
	m := NewMock(time.Unix(100, 0))
	ch := m.After(50 * time.Second)
	m.Set(time.Unix(200, 0))
	if !m.Now().Equal(time.Unix(200, 0)) {
		t.Fatalf("Set: Now = %v", m.Now())
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("Set did not fire elapsed timer")
	}
	// Setting to the past is a no-op.
	m.Set(time.Unix(150, 0))
	if !m.Now().Equal(time.Unix(200, 0)) {
		t.Fatalf("Set backwards moved clock: %v", m.Now())
	}
}

func TestMockMultipleWaiters(t *testing.T) {
	m := NewMock(time.Unix(0, 0))
	a := m.After(1 * time.Second)
	b := m.After(2 * time.Second)
	c := m.After(3 * time.Second)
	m.Advance(2 * time.Second)
	for name, ch := range map[string]<-chan time.Time{"a": a, "b": b} {
		select {
		case <-ch:
		case <-time.After(time.Second):
			t.Fatalf("waiter %s did not fire", name)
		}
	}
	select {
	case <-c:
		t.Fatal("waiter c fired early")
	default:
	}
}
