package lint

// DefaultAnalyzers is the drams-lint suite: one analyzer per architectural
// invariant a past PR established by fixing a real bug. The table mapping
// each analyzer to its motivating PR lives in docs/ARCHITECTURE.md §13.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NewNetsimImport(),
		NewDepFree(),
		NewCtxFlow(),
		NewLockHeld(),
		NewSeedPin(),
		NewErrCmp(),
		NewStatsSnap(),
	}
}
