// drams-loadgen runs declarative load scenarios against a DRAMS
// federation — the in-process netsim deployment or a live drams-node TCP
// federation — with open-loop (arrival-rate) or closed-loop (looping-VU)
// executors, weighted request mixes, mid-run policy flips and member
// churn, HDR latency capture, and SLO thresholds that set the exit code.
//
// Usage:
//
//	drams-loadgen -scenario ci-slo                        # builtin, netsim
//	drams-loadgen -scenario ./my.json -target netsim
//	drams-loadgen -scenario tcp-ramp -target tcp \
//	    -peers 127.0.0.1:19701,127.0.0.1:19702,127.0.0.1:19703 \
//	    -federation tenant-1,tenant-2,tenant-3 -seed 7
//	drams-loadgen -list
//
// Exit codes: 0 = run complete, all thresholds passed; 1 = run error;
// 2 = run complete but at least one threshold failed. Every run writes
// BENCH_loadgen_<scenario>.json (see internal/benchfmt) into -out.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"drams/internal/loadgen"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the testable entry point: parses args, executes, maps the result
// to the documented exit code.
func run(args []string) int {
	fs := flag.NewFlagSet("drams-loadgen", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "smoke", "builtin scenario name or path to a scenario JSON file")
		list     = fs.Bool("list", false, "list builtin scenarios and exit")
		target   = fs.String("target", "netsim", "system under load: netsim (in-process) or tcp (live drams-node federation)")
		outDir   = fs.String("out", ".", "directory for the BENCH_loadgen_<scenario>.json report ('' = skip)")

		// Scenario overrides (zero value = keep the scenario's setting).
		rate       = fs.Float64("rate", 0, "override arrival rate (iterations/s)")
		duration   = fs.Duration("duration", 0, "override run duration (constant/looping executors)")
		vus        = fs.Int("vus", 0, "override closed-loop VU count")
		maxWorkers = fs.Int("max-workers", 0, "override open-loop worker pool bound")
		seed       = fs.Uint64("seed", 0, "override scenario seed")
		thresholds = fs.String("thresholds", "", "override thresholds (comma-separated, e.g. 'p99<5ms,error_rate<0.1%')")

		// Netsim target knobs.
		clouds     = fs.Int("clouds", 3, "netsim: federation size")
		difficulty = fs.Uint("difficulty", 8, "netsim/tcp: PoW difficulty bits")
		monitoring = fs.Bool("monitoring", true, "netsim: enable probes/analyser/monitor plane")
		netLatency = fs.Duration("net-latency", 200*time.Microsecond, "netsim: simulated one-way latency")
		netJitter  = fs.Duration("net-jitter", 0, "netsim: simulated latency jitter")

		// TCP target knobs (must match the daemons' flags).
		peers         = fs.String("peers", "", "tcp: comma-separated daemon addresses (host:port)")
		metricsPeers  = fs.String("metrics-peers", "", "tcp: comma-separated daemon -metrics-addr endpoints to scrape into the report")
		federationArg = fs.String("federation", "", "tcp: comma-separated edge tenant names")
		timeoutBlocks = fs.Uint64("timeout-blocks", 64, "tcp: M3 timeout window in blocks")
		requireVer    = fs.Bool("require-verdict", true, "tcp: chain rule requiring M2 before M3 expiry")
		dialTimeout   = fs.Duration("dial-timeout", 15*time.Second, "tcp: wait for the remote PDP to become routable")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *list {
		fmt.Println("builtin scenarios:")
		for _, name := range loadgen.BuiltinScenarioNames() {
			s, _ := loadgen.BuiltinScenario(name)
			fmt.Printf("  %-16s %s, thresholds: %s\n", name, s.Executor.Type, strings.Join(s.Thresholds, " "))
		}
		return 0
	}

	scn, err := resolveScenario(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *rate > 0 {
		scn.Executor.Rate = *rate
	}
	if *duration > 0 {
		scn.Executor.Duration = loadgen.Duration(*duration)
	}
	if *vus > 0 {
		scn.Executor.VUs = *vus
	}
	if *maxWorkers > 0 {
		scn.Executor.MaxWorkers = *maxWorkers
	}
	if *seed != 0 {
		scn.Seed = *seed
	}
	if *thresholds != "" {
		scn.Thresholds = splitList(*thresholds)
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	}

	var tgt loadgen.Target
	switch *target {
	case "netsim":
		tgt, err = loadgen.NewNetsimTarget(loadgen.NetsimConfig{
			Clouds:        *clouds,
			Seed:          scn.Seed,
			Difficulty:    uint8(*difficulty),
			Monitoring:    *monitoring,
			NetLatency:    *netLatency,
			NetJitter:     *netJitter,
			TimeoutBlocks: *timeoutBlocks,
		})
	case "tcp":
		if *peers == "" || *federationArg == "" {
			fmt.Fprintln(os.Stderr, "drams-loadgen: -target tcp needs -peers and -federation")
			return 1
		}
		tgt, err = loadgen.NewTCPTarget(loadgen.TCPConfig{
			Peers:          splitList(*peers),
			Edges:          splitList(*federationArg),
			Seed:           scn.Seed,
			Difficulty:     uint8(*difficulty),
			TimeoutBlocks:  *timeoutBlocks,
			RequireVerdict: *requireVer,
			DialTimeout:    *dialTimeout,
			MetricsAddrs:   splitList(*metricsPeers),
		})
	default:
		fmt.Fprintf(os.Stderr, "drams-loadgen: unknown target %q (want netsim or tcp)\n", *target)
		return 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "drams-loadgen: open %s target: %v\n", *target, err)
		return 1
	}
	defer tgt.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logf("scenario %s on %s: %s", scn.Name, *target, describe(scn))
	res, err := loadgen.Run(ctx, scn, tgt, logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drams-loadgen: %v\n", err)
		return 1
	}
	printResult(res)
	if *outDir != "" {
		rep := res.Report(*target)
		if sc, ok := tgt.(loadgen.MetricsScraper); ok {
			// Scrape on a fresh context: the run context may already be
			// cancelled by the signal that ended the run.
			scrapeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			rep.FleetMetrics = sc.ScrapeMetrics(scrapeCtx)
			cancel()
		}
		path, err := rep.WriteFile(*outDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drams-loadgen: %v\n", err)
			return 1
		}
		logf("report: %s", path)
	}
	if !res.Pass {
		return 2
	}
	return 0
}

// resolveScenario loads a builtin by name or a JSON file by path.
func resolveScenario(arg string) (loadgen.Scenario, error) {
	if strings.ContainsAny(arg, "/\\") || strings.HasSuffix(arg, ".json") {
		return loadgen.LoadScenario(arg)
	}
	return loadgen.BuiltinScenario(arg)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func describe(s loadgen.Scenario) string {
	e := s.Executor
	switch e.Type {
	case loadgen.ExecRampingArrivalRate:
		return fmt.Sprintf("%s from %.0f/s over %d stages", e.Type, e.Rate, len(e.Stages))
	case loadgen.ExecLoopingVU:
		return fmt.Sprintf("%s with %d VUs for %s", e.Type, e.VUs, e.Duration.D())
	default:
		return fmt.Sprintf("%s at %.0f/s for %s", e.Type, e.Rate, e.Duration.D())
	}
}

func printResult(res *loadgen.Result) {
	fmt.Printf("scenario: %s\n", res.Scenario.Name)
	fmt.Printf("elapsed:  %s\n", res.Elapsed.D().Round(time.Millisecond))
	fmt.Printf("iterations: %d  completed: %d  errors: %d  dropped_iterations: %d\n",
		res.Iterations, res.Requests, res.Errors, res.Dropped)
	fmt.Printf("latency ms: p50=%.2f p90=%.2f p99=%.2f p99.9=%.2f max=%.2f\n",
		res.Latency.P50, res.Latency.P90, res.Latency.P99, res.Latency.P999, res.Latency.Max)
	if res.AlertLatency.Count > 0 {
		fmt.Printf("alert detection ms: n=%d p50=%.0f p99=%.0f\n",
			res.AlertLatency.Count, res.AlertLatency.P50, res.AlertLatency.P99)
	}
	for _, ev := range res.Events {
		status := "ok"
		if ev.Err != "" {
			status = "FAILED: " + ev.Err
		}
		fmt.Printf("event: %-11s %-12s t=%-8s %s\n", ev.Kind, ev.Detail, ev.Offset.D().Round(time.Millisecond), status)
	}
	if len(res.Verdicts) > 0 {
		fmt.Printf("thresholds:\n%s", loadgen.FormatVerdicts(res.Verdicts))
	}
	if res.Pass {
		fmt.Println("result: PASS")
	} else {
		fmt.Println("result: FAIL")
	}
}
