package blockchain

import (
	"context"
	"encoding/binary"
	"math"
)

// Mine searches for a nonce making the block header meet its declared
// difficulty. It mutates b.Header.Nonce and returns true on success, or
// false if ctx was cancelled first (e.g. a competing block arrived). The
// nonce search starts from seed so concurrent miners explore different
// regions.
func Mine(ctx context.Context, b *Block, seed uint64) bool {
	const checkEvery = 1 << 12
	nonce := seed
	for i := 0; ; i++ {
		if i%checkEvery == 0 {
			select {
			case <-ctx.Done():
				return false
			default:
			}
		}
		b.Header.Nonce = nonce
		if b.Header.MeetsDifficulty() {
			return true
		}
		nonce++
	}
}

// minerSeed derives a distinct nonce-space starting point per miner name so
// that simultaneous miners on one machine don't duplicate work.
func minerSeed(name string, height uint64) uint64 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], height)
	sum := uint64(0x9e3779b97f4a7c15)
	for _, c := range []byte(name) {
		sum = (sum ^ uint64(c)) * 0x100000001b3
	}
	for _, c := range buf {
		sum = (sum ^ uint64(c)) * 0x100000001b3
	}
	return sum
}

// ExpectedAttemptsForDifficulty returns the mean number of hash attempts to
// find a block at the given difficulty (2^d); used by the E3 analysis.
func ExpectedAttemptsForDifficulty(d uint8) float64 {
	return math.Ldexp(1, int(d))
}
