package xacml

import (
	"errors"
	"testing"
)

func TestRequestAddGet(t *testing.T) {
	r := NewRequest("req-1")
	r.Add(CatSubject, "role", String("doctor")).
		Add(CatSubject, "role", String("admin")).
		Add(CatResource, "type", String("record"))
	roles := r.Get(CatSubject, "role")
	if len(roles) != 2 {
		t.Fatalf("roles = %v", roles)
	}
	if got := r.Get(CatAction, "missing"); !got.IsEmpty() {
		t.Fatalf("missing attr = %v", got)
	}
}

func TestRequestCloneIndependent(t *testing.T) {
	r := NewRequest("a")
	r.Add(CatSubject, "role", String("x"))
	c := r.Clone()
	c.Add(CatSubject, "role", String("y"))
	if len(r.Get(CatSubject, "role")) != 1 {
		t.Fatal("clone mutated original")
	}
	if c.ID != "a" {
		t.Fatal("clone lost ID")
	}
}

func TestRequestDigestContentOnly(t *testing.T) {
	a := NewRequest("id-1").Add(CatSubject, "role", String("x"))
	b := NewRequest("id-2").Add(CatSubject, "role", String("x"))
	if a.Digest() != b.Digest() {
		t.Fatal("digest should exclude correlation ID")
	}
	c := NewRequest("id-1").Add(CatSubject, "role", String("y"))
	if a.Digest() == c.Digest() {
		t.Fatal("different content same digest")
	}
}

func TestRequestDigestOrderInsensitive(t *testing.T) {
	a := NewRequest("1").
		Add(CatSubject, "role", String("x")).
		Add(CatSubject, "role", String("y")).
		Add(CatResource, "id", Int(7))
	b := NewRequest("1").
		Add(CatResource, "id", Int(7)).
		Add(CatSubject, "role", String("y")).
		Add(CatSubject, "role", String("x"))
	if a.Digest() != b.Digest() {
		t.Fatal("digest sensitive to insertion order")
	}
}

func TestRequestEncodeDecodeRoundTrip(t *testing.T) {
	r := NewRequest("rt").
		Add(CatSubject, "role", String("doctor")).
		Add(CatEnvironment, "hour", Int(13))
	dec, err := DecodeRequest(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.ID != "rt" || dec.Digest() != r.Digest() {
		t.Fatal("round trip changed request")
	}
	if _, err := DecodeRequest([]byte("{bad")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestDesignatorResolve(t *testing.T) {
	r := NewRequest("1").Add(CatSubject, "role", String("x"))
	d := Designator{Cat: CatSubject, ID: "role"}
	bag, err := d.Resolve(r)
	if err != nil || len(bag) != 1 {
		t.Fatalf("resolve: %v %v", bag, err)
	}
	// Missing without MustBePresent → empty bag, no error.
	d2 := Designator{Cat: CatSubject, ID: "ghost"}
	bag, err = d2.Resolve(r)
	if err != nil || !bag.IsEmpty() {
		t.Fatalf("optional missing: %v %v", bag, err)
	}
	// Missing with MustBePresent → error.
	d3 := Designator{Cat: CatSubject, ID: "ghost", MustBePresent: true}
	if _, err := d3.Resolve(r); !errors.Is(err, ErrMissingAttribute) {
		t.Fatalf("got %v", err)
	}
}
