package drams_test

import (
	"context"
	"testing"
	"time"

	"drams"
	"drams/internal/xacml"
)

// TestDeploymentRestartFromDataDir is the deployment-level durable
// lifecycle: a deployment opened with a DataDir, closed, and reopened with
// the same directory must resume its persisted chains (not a fresh
// genesis), keep the policy version that was active at shutdown — even
// though Open is handed the original v1 policy — and serve decisions under
// it immediately.
func TestDeploymentRestartFromDataDir(t *testing.T) {
	dir := t.TempDir()
	open := func() *drams.Deployment {
		dep, err := drams.Open(testPolicy("v1"),
			drams.WithDataDir(dir),
			drams.WithSeed(42),
			drams.WithDifficulty(6),
			drams.WithTimeoutBlocks(20),
			drams.WithEmptyBlockInterval(15*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	dep := open()
	client, err := dep.Client("tenant-1")
	if err != nil {
		dep.Close()
		t.Fatal(err)
	}
	if _, err := client.Decide(ctx, doctorRequest(dep)); err != nil {
		dep.Close()
		t.Fatal(err)
	}
	// Flip the fleet to a restricting v2, then shut everything down.
	admin, err := dep.Admin("tenant-1")
	if err != nil {
		dep.Close()
		t.Fatal(err)
	}
	v2 := xacml.RestrictedPolicy("v2")
	if err := admin.UpdatePolicy(ctx, v2, drams.UpdateOptions{}); err != nil {
		dep.Close()
		t.Fatal(err)
	}
	heightAtClose := dep.InfraNode().Chain().Height()
	dep.Close()

	restarted := open()
	defer restarted.Close()
	node := restarted.InfraNode()
	if st := node.Stats(); st.BlocksReloaded == 0 {
		t.Fatal("restarted deployment began from a fresh genesis")
	}
	if h := node.Chain().Height(); h < heightAtClose {
		t.Fatalf("restored height %d < height at close %d", h, heightAtClose)
	}
	// The restored member must land on v2 without re-publishing: Open was
	// given v1 but the chain's active policy wins.
	if st := restarted.PolicyStats(); st.Version != "v2" {
		t.Fatalf("restarted deployment active policy %q, want v2", st.Version)
	}
	client2, err := restarted.Client("tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	enf, err := client2.Decide(ctx, doctorRequest(restarted))
	if err != nil {
		t.Fatal(err)
	}
	if enf.Decision != xacml.Deny || enf.PolicyVersion != "v2" {
		t.Fatalf("decision %v under %s, want Deny under v2", enf.Decision, enf.PolicyVersion)
	}
}
