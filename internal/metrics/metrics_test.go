package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // negative deltas ignored
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("concurrent counter = %d, want 16000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
		tol  float64
	}{
		{0, 1, 0}, {1, 1000, 0}, {0.5, 500.5, 1}, {0.9, 900, 2}, {0.99, 990, 2},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Errorf("q%.2f = %v, want ~%v", c.q, got, c.want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
}

func TestHistogramBoundedMemory(t *testing.T) {
	h := NewHistogram(128)
	for i := 0; i < 100000; i++ {
		h.Observe(float64(i))
	}
	// Log-bucketed storage: memory tracks the data's span (octaves ×
	// sub-buckets), never the sample count.
	if got := h.Buckets(); got > 16*1024 {
		t.Fatalf("bucket count grew to %d", got)
	}
	if h.Count() != 100000 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-49999.5) > 100 {
		t.Fatalf("p50 = %v, want ~49999.5", p50)
	}
}

func TestHistogramNegativeAndZero(t *testing.T) {
	h := NewHistogram(0)
	for _, v := range []float64{-10, -1, 0, 0, 1, 10} {
		h.Observe(v)
	}
	if h.Min() != -10 || h.Max() != 10 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if p0 := h.Quantile(0); p0 != -10 {
		t.Fatalf("q0 = %v, want -10", p0)
	}
	if p50 := h.Quantile(0.5); math.Abs(p50) > 0.5 {
		t.Fatalf("p50 = %v, want ~0", p50)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(0)
	h.ObserveDuration(1500 * time.Microsecond)
	if got := h.Mean(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("duration ms = %v, want 1.5", got)
	}
}

func TestSnapshotStdDev(t *testing.T) {
	h := NewHistogram(0)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("summary string: %s", s)
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("registry did not return same counter")
	}
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(1)
	dump := r.Dump()
	for _, want := range []string{"counter x = 1", "gauge g = 5", "hist h"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1024)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

// TestDumpGolden locks Dump's exact output: sorted by metric name across
// all three metric types, independent of registration order and map
// iteration order.
func TestDumpGolden(t *testing.T) {
	r := NewRegistry()
	// Register deliberately out of name order and across types.
	r.Histogram("zeta").Observe(4)
	r.Counter("mid").Add(7)
	r.Gauge("alpha").Set(-2)
	r.Counter("alpha2").Add(1)
	r.Gauge("mid2").Set(9)

	want := strings.Join([]string{
		"gauge alpha = -2",
		"counter alpha2 = 1",
		"counter mid = 7",
		"gauge mid2 = 9",
		"hist zeta: n=1 mean=4.000 p50=4.000 p90=4.000 p99=4.000 min=4.000 max=4.000",
	}, "\n")
	if got := r.Dump(); got != want {
		t.Fatalf("Dump() mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Same registry, fresh call: must be byte-identical.
	if again := r.Dump(); again != r.Dump() {
		t.Fatal("Dump() is not deterministic across calls")
	}
}

// TestHistogramExport checks the cumulative per-octave export: bounds are
// valid Prometheus `le` upper bounds, counts are cumulative and total to
// Count, and Sum is exact.
func TestHistogramExport(t *testing.T) {
	h := NewHistogram(0)
	for _, v := range []float64{0.5, 0.7, 1.5, 3, 3.9, 100} {
		h.Observe(v)
	}
	ex := h.Export()
	if ex.Count != 6 {
		t.Fatalf("Count = %d, want 6", ex.Count)
	}
	if math.Abs(ex.Sum-109.6) > 1e-9 {
		t.Fatalf("Sum = %v, want 109.6", ex.Sum)
	}
	if len(ex.Buckets) == 0 {
		t.Fatal("no buckets exported")
	}
	prevLE := math.Inf(-1)
	prevCount := int64(0)
	for _, b := range ex.Buckets {
		if b.LE <= prevLE {
			t.Fatalf("bucket bounds not strictly ascending: %v after %v", b.LE, prevLE)
		}
		if b.Count < prevCount {
			t.Fatalf("bucket counts not cumulative: %d after %d", b.Count, prevCount)
		}
		prevLE, prevCount = b.LE, b.Count
	}
	if last := ex.Buckets[len(ex.Buckets)-1]; last.Count != ex.Count {
		t.Fatalf("last cumulative count = %d, want %d", last.Count, ex.Count)
	}
	// Every observation must be counted by the first bucket whose LE covers it.
	covered := func(v float64) int64 {
		for _, b := range ex.Buckets {
			if v <= b.LE {
				return b.Count
			}
		}
		return -1
	}
	if c := covered(0.5); c < 2 { // 0.5 and 0.7 both fall under le=1
		t.Fatalf("le covering 0.5 counts %d, want >= 2", c)
	}
	// One exposition bucket per octave: 6 values spanning [0.5, 128) touch
	// at most 9 octaves.
	if len(ex.Buckets) > 9 {
		t.Fatalf("expected per-octave coarsening, got %d buckets", len(ex.Buckets))
	}
}

// TestRegistrySamples checks sorted family grouping, help plumbing, and
// label-suffix splitting.
func TestRegistrySamples(t *testing.T) {
	r := NewRegistry()
	r.Help("drams_monitor_alerts_total", "Alerts observed by type.")
	r.Counter(`drams_monitor_alerts_total{type="M3"}`).Add(2)
	r.Counter(`drams_monitor_alerts_total{type="M1"}`).Add(1)
	r.Gauge("drams_chain_height").Set(10)
	r.Histogram("drams_trace_stage_ms").Observe(1.5)

	s := r.Samples()
	if len(s) != 4 {
		t.Fatalf("got %d samples, want 4", len(s))
	}
	var names []string
	for _, smp := range s {
		names = append(names, smp.Name)
	}
	want := []string{
		"drams_chain_height",
		`drams_monitor_alerts_total{type="M1"}`,
		`drams_monitor_alerts_total{type="M3"}`,
		"drams_trace_stage_ms",
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sample order: got %v, want %v", names, want)
		}
	}
	for _, smp := range s {
		fam, _ := SplitSeries(smp.Name)
		if fam == "drams_monitor_alerts_total" {
			if smp.Help != "Alerts observed by type." {
				t.Fatalf("help not propagated to %s", smp.Name)
			}
			if smp.Kind != KindCounter {
				t.Fatalf("kind = %v, want counter", smp.Kind)
			}
		}
	}
	if s[3].Kind != KindHistogram || s[3].Hist == nil || s[3].Hist.Count != 1 {
		t.Fatalf("histogram sample malformed: %+v", s[3])
	}
}

func TestSplitSeries(t *testing.T) {
	fam, lab := SplitSeries(`a_total{x="1",y="2"}`)
	if fam != "a_total" || lab != `{x="1",y="2"}` {
		t.Fatalf("got %q %q", fam, lab)
	}
	fam, lab = SplitSeries("plain")
	if fam != "plain" || lab != "" {
		t.Fatalf("got %q %q", fam, lab)
	}
}
