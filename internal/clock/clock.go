// Package clock provides an injectable time source so that simulations and
// tests can run deterministically while production code uses wall-clock time.
//
// Components throughout DRAMS accept a clock.Clock rather than calling
// time.Now directly; this is what makes multi-node simulations reproducible
// under a fixed seed.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts the passage of time.
type Clock interface {
	// Now reports the current instant.
	Now() time.Time
	// Since reports the elapsed duration from t to Now.
	Since(t time.Time) time.Duration
	// Sleep blocks the caller for d (simulated clocks may return instantly
	// after advancing virtual time).
	Sleep(d time.Duration)
	// After returns a channel that delivers the current time after d.
	After(d time.Duration) <-chan time.Time
}

// System is the wall-clock implementation backed by the time package.
type System struct{}

var _ Clock = System{}

// Now implements Clock.
func (System) Now() time.Time { return time.Now() }

// Since implements Clock.
func (System) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (System) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (System) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Mock is a manually advanced clock for deterministic tests. The zero value
// is not usable; construct with NewMock.
type Mock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

var _ Clock = (*Mock)(nil)

// NewMock returns a Mock clock positioned at start.
func NewMock(start time.Time) *Mock {
	return &Mock{now: start}
}

// Now implements Clock.
func (m *Mock) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since implements Clock.
func (m *Mock) Since(t time.Time) time.Duration { return m.Now().Sub(t) }

// Sleep implements Clock. It returns once virtual time has been advanced past
// the deadline by another goroutine calling Advance.
func (m *Mock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After implements Clock.
func (m *Mock) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		//lint:ignore lockheld buffered channel created one line up with no other sender: the send cannot block
		ch <- m.now
		return ch
	}
	m.waiters = append(m.waiters, &waiter{deadline: m.now.Add(d), ch: ch})
	return ch
}

// Advance moves virtual time forward by d, firing any timers whose deadlines
// are reached.
func (m *Mock) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	remaining := m.waiters[:0]
	var fired []*waiter
	for _, w := range m.waiters {
		if !w.deadline.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	m.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}

// Set jumps virtual time to t (which must not be earlier than the current
// virtual time) and fires reached timers.
func (m *Mock) Set(t time.Time) {
	m.mu.Lock()
	d := t.Sub(m.now)
	m.mu.Unlock()
	if d > 0 {
		m.Advance(d)
	}
}
