package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"drams/internal/blockchain"
	"drams/internal/clock"
	"drams/internal/metrics"
)

// MonitorStats is a snapshot of what the monitor has observed.
type MonitorStats struct {
	LogsSeen     int64
	AlertsSeen   int64
	Matched      int64
	AlertsByType map[AlertType]int64
	// DetectionLatencyMs summarises wall-clock time from TrackSubmission
	// to the corresponding alert arriving off-chain.
	DetectionLatencyMs metrics.Summary
}

// Monitor is the off-chain DRAMS observer: it consumes contract events from
// a blockchain node, aggregates security alerts, exposes wait primitives
// for tests/experiments, and measures detection latency. The on-chain state
// remains the ground truth; the monitor is a (restartable) view.
type Monitor struct {
	node *blockchain.Node
	clk  clock.Clock

	mu        sync.Mutex
	alerts    []Alert
	alertKeys map[string]bool // dedupe re-delivered events
	byType    map[AlertType]int64
	matched   map[string]uint64 // reqID → height
	tracked   map[string]time.Time
	waiters   []*waiter
	handlers  []func(Alert)

	logsSeen   metrics.Counter
	alertsSeen metrics.Counter
	matchedCnt metrics.Counter
	latency    *metrics.Histogram

	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	cancelSub func()
}

type waiter struct {
	reqID string
	// alertType empty means "wait for Matched".
	alertType AlertType
	ch        chan Alert
}

// NewMonitor builds a monitor attached to a node.
func NewMonitor(node *blockchain.Node, clk clock.Clock) *Monitor {
	if clk == nil {
		clk = clock.System{}
	}
	return &Monitor{
		node:      node,
		clk:       clk,
		alertKeys: make(map[string]bool),
		byType:    make(map[AlertType]int64),
		matched:   make(map[string]uint64),
		tracked:   make(map[string]time.Time),
		latency:   metrics.NewHistogram(0),
		stop:      make(chan struct{}),
	}
}

// Start begins consuming events.
func (m *Monitor) Start() {
	events, cancel := m.node.SubscribeEvents(0)
	m.cancelSub = cancel
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			select {
			case <-m.stop:
				return
			case note, ok := <-events:
				if !ok {
					return
				}
				for _, e := range note.Events {
					m.handleEvent(e.Contract, e.Type, e.Payload, note.Height)
				}
			}
		}
	}()
}

// Stop halts the monitor.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	if m.cancelSub != nil {
		m.cancelSub()
	}
	m.wg.Wait()
}

// OnAlert registers a handler invoked (on the monitor goroutine) for every
// new alert.
func (m *Monitor) OnAlert(fn func(Alert)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers = append(m.handlers, fn)
}

// TrackSubmission records the wall-clock submission time of a request's
// first log so detection latency can be measured end-to-end.
func (m *Monitor) TrackSubmission(reqID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tracked[reqID]; !ok {
		m.tracked[reqID] = m.clk.Now()
	}
}

func (m *Monitor) handleEvent(contractName, eventType string, payload []byte, height uint64) {
	if contractName != ContractName {
		return
	}
	switch eventType {
	case EventLogStored:
		m.logsSeen.Inc()
	case EventMatched:
		var body struct {
			ReqID  string `json:"reqId"`
			Height uint64 `json:"height"`
		}
		if err := json.Unmarshal(payload, &body); err != nil {
			return
		}
		m.matchedCnt.Inc()
		m.mu.Lock()
		m.matched[body.ReqID] = height
		m.notifyLocked(Alert{ReqID: body.ReqID, Height: height}, true)
		m.mu.Unlock()
	case EventAlert:
		a, err := DecodeAlert(payload)
		if err != nil {
			return
		}
		key := a.ReqID + "|" + string(a.Type)
		m.mu.Lock()
		if m.alertKeys[key] {
			m.mu.Unlock()
			return
		}
		m.alertKeys[key] = true
		m.alerts = append(m.alerts, a)
		m.byType[a.Type]++
		if t0, ok := m.tracked[a.ReqID]; ok {
			m.latency.ObserveDuration(m.clk.Since(t0))
		}
		handlers := make([]func(Alert), len(m.handlers))
		copy(handlers, m.handlers)
		m.notifyLocked(a, false)
		m.mu.Unlock()
		m.alertsSeen.Inc()
		for _, fn := range handlers {
			fn(a)
		}
	}
}

// notifyLocked wakes waiters matching the event. matchedEvent selects
// waiters for Matched (alertType empty).
func (m *Monitor) notifyLocked(a Alert, matchedEvent bool) {
	remaining := m.waiters[:0]
	for _, w := range m.waiters {
		hit := w.reqID == a.ReqID &&
			((matchedEvent && w.alertType == "") || (!matchedEvent && w.alertType == a.Type))
		if hit {
			w.ch <- a
			continue
		}
		remaining = append(remaining, w)
	}
	m.waiters = remaining
}

// WaitForAlert blocks until an alert of the given type is seen for reqID.
func (m *Monitor) WaitForAlert(ctx context.Context, reqID string, t AlertType) (Alert, error) {
	m.mu.Lock()
	if m.alertKeys[reqID+"|"+string(t)] {
		for _, a := range m.alerts {
			if a.ReqID == reqID && a.Type == t {
				m.mu.Unlock()
				return a, nil
			}
		}
	}
	w := &waiter{reqID: reqID, alertType: t, ch: make(chan Alert, 1)}
	m.waiters = append(m.waiters, w)
	m.mu.Unlock()
	select {
	case a := <-w.ch:
		return a, nil
	case <-ctx.Done():
		return Alert{}, fmt.Errorf("core: wait for %s on %s: %w", t, reqID, ctx.Err())
	case <-m.stop:
		return Alert{}, fmt.Errorf("core: wait for %s on %s: monitor stopped", t, reqID)
	}
}

// WaitForMatched blocks until reqID completes cleanly.
func (m *Monitor) WaitForMatched(ctx context.Context, reqID string) error {
	m.mu.Lock()
	if _, ok := m.matched[reqID]; ok {
		m.mu.Unlock()
		return nil
	}
	w := &waiter{reqID: reqID, ch: make(chan Alert, 1)}
	m.waiters = append(m.waiters, w)
	m.mu.Unlock()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("core: wait for matched %s: %w", reqID, ctx.Err())
	case <-m.stop:
		return fmt.Errorf("core: wait for matched %s: monitor stopped", reqID)
	}
}

// Alerts returns a copy of all alerts seen so far.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// AlertsFor returns the alerts recorded for one request.
func (m *Monitor) AlertsFor(reqID string) []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Alert
	for _, a := range m.alerts {
		if a.ReqID == reqID {
			out = append(out, a)
		}
	}
	return out
}

// Matched reports whether a request completed cleanly, and at what height.
func (m *Monitor) Matched(reqID string) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.matched[reqID]
	return h, ok
}

// Stats snapshots the monitor counters.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	byType := make(map[AlertType]int64, len(m.byType))
	for k, v := range m.byType {
		byType[k] = v
	}
	m.mu.Unlock()
	return MonitorStats{
		LogsSeen:           m.logsSeen.Value(),
		AlertsSeen:         m.alertsSeen.Value(),
		Matched:            m.matchedCnt.Value(),
		AlertsByType:       byType,
		DetectionLatencyMs: m.latency.Snapshot(),
	}
}
