package tcp

import (
	"bufio"
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	in := frame{
		typ:     fCall,
		corr:    1<<40 + 7,
		from:    "pep@tenant-1",
		to:      "pdp@infrastructure",
		kind:    "ac.eval",
		errStr:  "",
		payload: []byte("payload-bytes"),
	}
	buf, err := appendFrame(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(bufio.NewReader(bytes.NewReader(buf)))
	if err != nil {
		t.Fatal(err)
	}
	if out.typ != in.typ || out.corr != in.corr || out.from != in.from ||
		out.to != in.to || out.kind != in.kind || out.errStr != in.errStr ||
		!bytes.Equal(out.payload, in.payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	in := frame{typ: fMsg, payload: make([]byte, maxFrame)}
	if _, err := appendFrame(nil, &in); err == nil {
		t.Fatal("oversize frame encoded")
	}
	var lenBuf [4]byte
	lenBuf[0] = 0xff
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(lenBuf[:]))); err == nil {
		t.Fatal("oversize frame length accepted")
	}
}

func waitTrue(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

// TestReconnectAfterPeerRestart proves the persistent-connection machinery:
// when a peer process dies and comes back on the same address, the write
// queue's redial-with-backoff re-establishes the link and traffic flows
// again without any caller intervention.
func TestReconnectAfterPeerRestart(t *testing.T) {
	a, err := New(Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	b1, err := New(Config{ListenAddr: "127.0.0.1:0", Peers: []string{a.Advertise()}})
	if err != nil {
		t.Fatal(err)
	}
	bAddr := b1.Advertise()

	epA, err := a.Register("alpha")
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Int64
	epA.OnMessage("m", func(string, []byte) { got.Add(1) })
	epA.OnCall("echo", func(from string, p []byte) ([]byte, error) { return p, nil })

	epB1, err := b1.Register("beta")
	if err != nil {
		t.Fatal(err)
	}
	waitTrue(t, 5*time.Second, func() bool {
		for _, x := range b1.Addresses() {
			if x == "alpha" {
				return true
			}
		}
		return false
	}, "b1 learns alpha")
	if err := epB1.Send("alpha", "m", []byte("1")); err != nil {
		t.Fatal(err)
	}
	waitTrue(t, 5*time.Second, func() bool { return got.Load() == 1 }, "first delivery")

	// Kill the peer process and bring a new one up on the same port.
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := New(Config{ListenAddr: bAddr, AdvertiseAddr: bAddr, Peers: []string{a.Advertise()}})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	epB2, err := b2.Register("beta")
	if err != nil {
		t.Fatal(err)
	}
	waitTrue(t, 10*time.Second, func() bool {
		for _, x := range b2.Addresses() {
			if x == "alpha" {
				return true
			}
		}
		return false
	}, "restarted peer learns alpha")

	// Traffic flows again in both directions.
	if err := epB2.Send("alpha", "m", []byte("2")); err != nil {
		t.Fatal(err)
	}
	waitTrue(t, 10*time.Second, func() bool { return got.Load() == 2 }, "delivery after restart")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := epB2.Call(ctx, "alpha", "echo", []byte("ping"))
	if err != nil || string(out) != "ping" {
		t.Fatalf("call after restart = %q, %v", out, err)
	}
}
