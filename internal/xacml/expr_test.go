package xacml

import (
	"strings"
	"testing"
)

func reqWith(kv map[AttributeID]Value) *Request {
	r := NewRequest("t")
	for id, v := range kv {
		r.Add(CatSubject, id, v)
	}
	return r
}

func TestCmpExprAllOps(t *testing.T) {
	r := reqWith(map[AttributeID]Value{"n": Int(5), "s": String("abcdef")})
	des := func(id AttributeID) Designator { return Designator{Cat: CatSubject, ID: id} }
	cases := []struct {
		e    Expr
		want bool
	}{
		{&CmpExpr{Op: CmpEq, Attr: des("n"), Lit: Int(5)}, true},
		{&CmpExpr{Op: CmpEq, Attr: des("n"), Lit: Int(6)}, false},
		{&CmpExpr{Op: CmpNe, Attr: des("n"), Lit: Int(6)}, true},
		{&CmpExpr{Op: CmpLt, Attr: des("n"), Lit: Int(6)}, true},
		{&CmpExpr{Op: CmpLe, Attr: des("n"), Lit: Int(5)}, true},
		{&CmpExpr{Op: CmpGt, Attr: des("n"), Lit: Int(4)}, true},
		{&CmpExpr{Op: CmpGe, Attr: des("n"), Lit: Int(6)}, false},
		{&CmpExpr{Op: CmpPrefix, Attr: des("s"), Lit: String("abc")}, true},
		{&CmpExpr{Op: CmpPrefix, Attr: des("s"), Lit: String("xyz")}, false},
	}
	for _, c := range cases {
		got, err := c.e.Eval(r)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestCmpExprAnyOfBagSemantics(t *testing.T) {
	r := NewRequest("t").
		Add(CatSubject, "role", String("nurse")).
		Add(CatSubject, "role", String("doctor"))
	e := &CmpExpr{Op: CmpEq, Attr: Designator{Cat: CatSubject, ID: "role"}, Lit: String("doctor")}
	got, err := e.Eval(r)
	if err != nil || !got {
		t.Fatalf("any-of bag semantics failed: %v %v", got, err)
	}
}

func TestCmpExprErrors(t *testing.T) {
	r := reqWith(map[AttributeID]Value{"n": Int(5)})
	// Type mismatch.
	e := &CmpExpr{Op: CmpEq, Attr: Designator{Cat: CatSubject, ID: "n"}, Lit: String("5")}
	if _, err := e.Eval(r); err == nil {
		t.Fatal("type mismatch not reported")
	}
	// MustBePresent missing.
	e2 := &CmpExpr{Op: CmpEq, Attr: Designator{Cat: CatSubject, ID: "ghost", MustBePresent: true}, Lit: Int(1)}
	if _, err := e2.Eval(r); err == nil {
		t.Fatal("missing attr not reported")
	}
	// Optional missing → false, no error.
	e3 := &CmpExpr{Op: CmpEq, Attr: Designator{Cat: CatSubject, ID: "ghost"}, Lit: Int(1)}
	got, err := e3.Eval(r)
	if err != nil || got {
		t.Fatalf("optional missing: %v %v", got, err)
	}
}

func TestInExpr(t *testing.T) {
	r := reqWith(map[AttributeID]Value{"role": String("b")})
	e := &InExpr{Attr: Designator{Cat: CatSubject, ID: "role"}, Set: []Value{String("a"), String("b")}}
	if got, _ := e.Eval(r); !got {
		t.Fatal("in-set value not found")
	}
	e2 := &InExpr{Attr: Designator{Cat: CatSubject, ID: "role"}, Set: []Value{String("x")}}
	if got, _ := e2.Eval(r); got {
		t.Fatal("out-of-set value matched")
	}
}

func TestPresentExpr(t *testing.T) {
	r := reqWith(map[AttributeID]Value{"role": String("x")})
	if got, _ := (&PresentExpr{Attr: Designator{Cat: CatSubject, ID: "role"}}).Eval(r); !got {
		t.Fatal("present attr reported absent")
	}
	// Present ignores MustBePresent (no error for absent).
	e := &PresentExpr{Attr: Designator{Cat: CatSubject, ID: "ghost", MustBePresent: true}}
	got, err := e.Eval(r)
	if err != nil || got {
		t.Fatalf("absent attr: %v %v", got, err)
	}
}

func TestLogicalExprs(t *testing.T) {
	r := NewRequest("t")
	tr := &ConstExpr{Val: true}
	fa := &ConstExpr{Val: false}
	cases := []struct {
		e    Expr
		want bool
	}{
		{&AndExpr{Args: []Expr{tr, tr}}, true},
		{&AndExpr{Args: []Expr{tr, fa}}, false},
		{&AndExpr{Args: nil}, true}, // empty conjunction
		{&OrExpr{Args: []Expr{fa, tr}}, true},
		{&OrExpr{Args: []Expr{fa, fa}}, false},
		{&OrExpr{Args: nil}, false}, // empty disjunction
		{&NotExpr{Arg: fa}, true},
		{&NotExpr{Arg: tr}, false},
	}
	for _, c := range cases {
		got, err := c.e.Eval(r)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestLogicalShortCircuitDominatesErrors(t *testing.T) {
	r := NewRequest("t")
	errExpr := &CmpExpr{Op: CmpEq, Attr: Designator{Cat: CatSubject, ID: "x", MustBePresent: true}, Lit: Int(1)}
	// False AND error → False (determined regardless of the error).
	and := &AndExpr{Args: []Expr{errExpr, &ConstExpr{Val: false}}}
	got, err := and.Eval(r)
	if err != nil || got {
		t.Fatalf("and: %v %v", got, err)
	}
	// True OR error → True.
	or := &OrExpr{Args: []Expr{errExpr, &ConstExpr{Val: true}}}
	got, err = or.Eval(r)
	if err != nil || !got {
		t.Fatalf("or: %v %v", got, err)
	}
	// True AND error → error.
	and2 := &AndExpr{Args: []Expr{errExpr, &ConstExpr{Val: true}}}
	if _, err := and2.Eval(r); err == nil {
		t.Fatal("undetermined and should propagate error")
	}
	// Not(error) → error.
	if _, err := (&NotExpr{Arg: errExpr}).Eval(r); err == nil {
		t.Fatal("not should propagate error")
	}
}

func TestExprJSONRoundTrip(t *testing.T) {
	d := Designator{Cat: CatSubject, ID: "role", MustBePresent: true}
	exprs := []Expr{
		&ConstExpr{Val: true},
		&CmpExpr{Op: CmpGe, Attr: d, Lit: Int(5)},
		&InExpr{Attr: d, Set: []Value{String("a"), String("b")}},
		&PresentExpr{Attr: d},
		&NotExpr{Arg: &ConstExpr{Val: false}},
		&AndExpr{Args: []Expr{
			&OrExpr{Args: []Expr{&ConstExpr{Val: true}, &CmpExpr{Op: CmpEq, Attr: d, Lit: String("x")}}},
			&NotExpr{Arg: &PresentExpr{Attr: d}},
		}},
	}
	for _, e := range exprs {
		data, err := MarshalExpr(e)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		back, err := UnmarshalExpr(data)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if back.String() != e.String() {
			t.Errorf("round trip: %s -> %s", e, back)
		}
	}
}

func TestExprJSONNil(t *testing.T) {
	data, err := MarshalExpr(nil)
	if err != nil || string(data) != "null" {
		t.Fatalf("nil marshal: %s %v", data, err)
	}
	e, err := UnmarshalExpr(data)
	if err != nil || e != nil {
		t.Fatalf("nil unmarshal: %v %v", e, err)
	}
}

func TestExprJSONErrors(t *testing.T) {
	bad := []string{`{"op":"wat"}`, `{"op":"cmp"}`, `{"op":"not","args":[]}`, `{"op":"in"}`, `{"op":"present"}`, `{`}
	for _, s := range bad {
		if _, err := UnmarshalExpr([]byte(s)); err == nil {
			t.Errorf("bad expr %q accepted", s)
		}
	}
}

func TestExprWalkVisitsAll(t *testing.T) {
	e := &AndExpr{Args: []Expr{
		&NotExpr{Arg: &ConstExpr{Val: true}},
		&OrExpr{Args: []Expr{&ConstExpr{Val: false}}},
	}}
	var n int
	e.Walk(func(Expr) { n++ })
	if n != 5 {
		t.Fatalf("walked %d nodes, want 5", n)
	}
}

func TestExprStringIsReadable(t *testing.T) {
	e := &AndExpr{Args: []Expr{
		&CmpExpr{Op: CmpEq, Attr: Designator{Cat: CatSubject, ID: "role"}, Lit: String("dr")},
		&ConstExpr{Val: true},
	}}
	s := e.String()
	for _, want := range []string{"and", "subject/role", "==", `"dr"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
