// Package netsim is the fixture simulator config source.
package netsim

// Config carries the seeded simulator configuration.
type Config struct {
	Synchronous bool
	Seed        int64
}
