package tcp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame types on the wire.
const (
	fMsg     byte = 1 // one-way message
	fCall    byte = 2 // request expecting a reply
	fReply   byte = 3 // reply to a call (Err set on handler failure)
	fHello   byte = 4 // handshake: From = node id, Payload = JSON hello body
	fAddrAdd byte = 5 // a logical address appeared on the sending node (Kind = addr)
	fAddrDel byte = 6 // a logical address left the sending node (Kind = addr)
)

// maxFrame bounds a single frame (header + body) to keep a misbehaving peer
// from ballooning memory.
const maxFrame = 32 << 20

// frame is the unit of the length-prefixed wire protocol:
//
//	u32 big-endian frame length (excluding itself), then
//	u8 type | u64 corr | str from | str to | str kind | str err | blob payload
//
// where str is u16 length + bytes and blob is u32 length + bytes.
type frame struct {
	typ     byte
	corr    uint64
	from    string
	to      string
	kind    string
	errStr  string
	payload []byte
}

func (f *frame) encodedLen() int {
	return 1 + 8 + 2 + len(f.from) + 2 + len(f.to) + 2 + len(f.kind) + 2 + len(f.errStr) + 4 + len(f.payload)
}

// appendFrame serializes f (with its length prefix) onto buf.
func appendFrame(buf []byte, f *frame) ([]byte, error) {
	n := f.encodedLen()
	if n > maxFrame {
		return buf, fmt.Errorf("tcp: frame too large (%d bytes)", n)
	}
	for _, s := range []string{f.from, f.to, f.kind, f.errStr} {
		if len(s) > math.MaxUint16 {
			return buf, fmt.Errorf("tcp: frame string field too long (%d bytes)", len(s))
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, f.typ)
	buf = binary.BigEndian.AppendUint64(buf, f.corr)
	appendStr := func(s string) {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	appendStr(f.from)
	appendStr(f.to)
	appendStr(f.kind)
	appendStr(f.errStr)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.payload)))
	buf = append(buf, f.payload...)
	return buf, nil
}

// readFrame reads one length-prefixed frame.
func readFrame(r *bufio.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 1+8+2+2+2+2+4 || n > maxFrame {
		return frame{}, fmt.Errorf("tcp: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	var f frame
	f.typ = body[0]
	f.corr = binary.BigEndian.Uint64(body[1:9])
	off := 9
	readStr := func() (string, error) {
		if off+2 > len(body) {
			return "", fmt.Errorf("tcp: truncated frame")
		}
		l := int(binary.BigEndian.Uint16(body[off : off+2]))
		off += 2
		if off+l > len(body) {
			return "", fmt.Errorf("tcp: truncated frame")
		}
		s := string(body[off : off+l])
		off += l
		return s, nil
	}
	var err error
	if f.from, err = readStr(); err != nil {
		return frame{}, err
	}
	if f.to, err = readStr(); err != nil {
		return frame{}, err
	}
	if f.kind, err = readStr(); err != nil {
		return frame{}, err
	}
	if f.errStr, err = readStr(); err != nil {
		return frame{}, err
	}
	if off+4 > len(body) {
		return frame{}, fmt.Errorf("tcp: truncated frame")
	}
	pl := int(binary.BigEndian.Uint32(body[off : off+4]))
	off += 4
	if off+pl != len(body) {
		return frame{}, fmt.Errorf("tcp: frame payload length mismatch")
	}
	if pl > 0 {
		f.payload = body[off : off+pl]
	}
	return f, nil
}
