// Package blockchain declares fixture ledger sentinels.
package blockchain

import "errors"

// ErrNotFound is a sentinel that crosses the wire wrapped.
var ErrNotFound = errors.New("blockchain: not found")
