package blockchain

import (
	"encoding/json"
	"testing"
)

// Benchmarks for the hot-path codec. Run with -benchmem; the V8 experiment
// asserts the allocs/op ratios end-to-end, and TestCodecAllocBudgets below
// keeps the budgets honest in the tier-1 suite.

func BenchmarkTxEncodeBinary(b *testing.B) {
	tx := testTx(b, "alice", 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeTx(tx)
	}
}

func BenchmarkTxEncodeJSON(b *testing.B) {
	tx := testTx(b, "alice", 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeTxJSON(tx)
	}
}

func BenchmarkTxDecodeBinary(b *testing.B) {
	enc := EncodeTx(testTx(b, "alice", 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTx(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTxDecodeJSON(b *testing.B) {
	enc := EncodeTxJSON(testTx(b, "alice", 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTx(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockEncodeBinary(b *testing.B) {
	blk := testBlockForCodec(b, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = blk.Encode()
	}
}

func BenchmarkBlockEncodeJSON(b *testing.B) {
	blk := testBlockForCodec(b, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeBlockJSON(blk)
	}
}

func BenchmarkBlockDecodeBinary(b *testing.B) {
	enc := testBlockForCodec(b, 16).Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBlock(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockDecodeJSON(b *testing.B) {
	enc := EncodeBlockJSON(testBlockForCodec(b, 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBlock(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeaderHash(b *testing.B) {
	blk := testBlockForCodec(b, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = blk.Header.Hash()
	}
}

// TestCodecAllocBudgets pins the allocation budgets of the hot-path codec so
// a regression shows up in the tier-1 suite, not just in benchmark reports:
// encoding is a single exact-size buffer, decoding stays within a handful of
// allocations (string conversions for the identity fields; byte fields alias
// the input), and both sides beat the JSON path by at least 5x.
func TestCodecAllocBudgets(t *testing.T) {
	tx := testTx(t, "alice", 3)
	blk := testBlockForCodec(t, 16)
	txBin, txJSON := EncodeTx(tx), EncodeTxJSON(tx)
	blkBin, blkJSON := blk.Encode(), EncodeBlockJSON(blk)

	measure := func(name string, f func()) float64 {
		t.Helper()
		n := testing.AllocsPerRun(200, f)
		t.Logf("%s: %.1f allocs/op", name, n)
		return n
	}

	encTx := measure("EncodeTx/binary", func() { _ = EncodeTx(tx) })
	if encTx > 1 {
		t.Errorf("EncodeTx allocates %.1f/op, budget 1", encTx)
	}
	encBlk := measure("Block.Encode/binary", func() { _ = blk.Encode() })
	if encBlk > 1 {
		t.Errorf("Block.Encode allocates %.1f/op, budget 1", encBlk)
	}
	hash := measure("Header.Hash", func() { _ = blk.Header.Hash() })
	if hash > 2 {
		t.Errorf("Header.Hash allocates %.1f/op, budget 2 (pooled scratch)", hash)
	}

	decTxBin := measure("DecodeTx/binary", func() { _, _ = DecodeTx(txBin) })
	decTxJSON := measure("DecodeTx/json", func() { _, _ = DecodeTx(txJSON) })
	if decTxBin > 8 {
		t.Errorf("binary tx decode allocates %.1f/op, budget 8", decTxBin)
	}
	if decTxBin*5 > decTxJSON {
		t.Errorf("binary tx decode (%.1f allocs) is not 5x leaner than JSON (%.1f)", decTxBin, decTxJSON)
	}

	decBlkBin := measure("DecodeBlock/binary", func() { _, _ = DecodeBlock(blkBin) })
	decBlkJSON := measure("DecodeBlock/json", func() { _, _ = DecodeBlock(blkJSON) })
	if decBlkBin*5 > decBlkJSON {
		t.Errorf("binary block decode (%.1f allocs) is not 5x leaner than JSON (%.1f)", decBlkBin, decBlkJSON)
	}

	// The wire path pays encode + decode; the round trip must beat JSON by
	// at least 5x (encode alone cannot: JSON marshal is already ~2 allocs
	// and the binary floor is the one output buffer).
	encTxJSONAllocs := measure("EncodeTxJSON", func() { _ = EncodeTxJSON(tx) })
	if (encTx+decTxBin)*5 > encTxJSONAllocs+decTxJSON {
		t.Errorf("binary tx round trip (%.1f allocs) is not 5x leaner than JSON (%.1f)",
			encTx+decTxBin, encTxJSONAllocs+decTxJSON)
	}
}

// json round-trip sanity for the benchmark fixtures (the JSON fallback stays
// a correctness path, not just a bench baseline).
func TestBenchFixturesDecodeBothFormats(t *testing.T) {
	blk := testBlockForCodec(t, 16)
	var viaJSON Block
	if err := json.Unmarshal(EncodeBlockJSON(blk), &viaJSON); err != nil {
		t.Fatal(err)
	}
	if viaJSON.Hash() != blk.Hash() {
		t.Fatal("JSON fixture diverges")
	}
}
