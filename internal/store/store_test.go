package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestMemoryPutGet(t *testing.T) {
	kv := NewMemory()
	if err := kv.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := kv.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "1" {
		t.Fatalf("got %q", v)
	}
}

func TestGetMissing(t *testing.T) {
	kv := NewMemory()
	if _, err := kv.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestDelete(t *testing.T) {
	kv := NewMemory()
	_ = kv.Put("a", []byte("1"))
	if err := kv.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if kv.Has("a") {
		t.Fatal("key survives delete")
	}
	if err := kv.Delete("never-existed"); err != nil {
		t.Fatalf("deleting missing key errored: %v", err)
	}
}

func TestValueIsolation(t *testing.T) {
	kv := NewMemory()
	orig := []byte("abc")
	_ = kv.Put("k", orig)
	orig[0] = 'X' // caller mutates after Put
	v, _ := kv.Get("k")
	if string(v) != "abc" {
		t.Fatalf("Put did not copy: %q", v)
	}
	v[0] = 'Y' // caller mutates returned value
	v2, _ := kv.Get("k")
	if string(v2) != "abc" {
		t.Fatalf("Get did not copy: %q", v2)
	}
}

func TestKeysPrefixSorted(t *testing.T) {
	kv := NewMemory()
	for _, k := range []string{"b/2", "a/1", "b/1", "c", "b/10"} {
		_ = kv.Put(k, []byte(k))
	}
	got := kv.Keys("b/")
	want := []string{"b/1", "b/10", "b/2"}
	if len(got) != len(want) {
		t.Fatalf("keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	kv := NewMemory()
	for i := 0; i < 10; i++ {
		_ = kv.Put(fmt.Sprintf("k/%02d", i), []byte{byte(i)})
	}
	var visited int
	kv.Range("k/", func(key string, value []byte) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("visited %d, want 3", visited)
	}
}

func TestBatchAtomicVisible(t *testing.T) {
	kv := NewMemory()
	err := kv.Batch(map[string][]byte{"x": []byte("1"), "y": []byte("2"), "z": []byte("3")})
	if err != nil {
		t.Fatal(err)
	}
	if kv.Len() != 3 {
		t.Fatalf("len = %d", kv.Len())
	}
}

func TestWALPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")

	kv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = kv.Put("a", []byte("1"))
	_ = kv.Put("b", []byte("2"))
	_ = kv.Delete("a")
	_ = kv.Batch(map[string][]byte{"c": []byte("3"), "d": []byte("4")})
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	if kv2.Has("a") {
		t.Fatal("deleted key resurrected")
	}
	for k, want := range map[string]string{"b": "2", "c": "3", "d": "4"} {
		v, err := kv2.Get(k)
		if err != nil || string(v) != want {
			t.Fatalf("after replay %s = %q (%v), want %q", k, v, err, want)
		}
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	kv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = kv.Put("good", []byte("1"))
	_ = kv.Close()
	// Simulate a crash mid-write: append a torn (invalid JSON) record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.WriteString(`{"op":"put","key":"torn","val`)
	_ = f.Close()

	kv2, err := Open(path)
	if err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	defer kv2.Close()
	if !kv2.Has("good") {
		t.Fatal("good record lost")
	}
	if kv2.Has("torn") {
		t.Fatal("torn record applied")
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	dir := t.TempDir()
	kv, err := Open(filepath.Join(dir, "w"))
	if err != nil {
		t.Fatal(err)
	}
	_ = kv.Close()
	if err := kv.Put("a", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := kv.Get("a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close: %v", err)
	}
	if err := kv.Delete("a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after close: %v", err)
	}
	if err := kv.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestTamperUnderlyingBypassesWAL(t *testing.T) {
	kv := NewMemory()
	_ = kv.Put("k", []byte("honest"))
	if !kv.TamperUnderlying("k", []byte("evil")) {
		t.Fatal("tamper failed")
	}
	v, _ := kv.Get("k")
	if string(v) != "evil" {
		t.Fatalf("got %q", v)
	}
	if kv.TamperUnderlying("missing", nil) {
		t.Fatal("tampering a missing key reported success")
	}
}

func TestWritesCounter(t *testing.T) {
	kv := NewMemory()
	_ = kv.Put("a", nil)
	_ = kv.Delete("a")
	_ = kv.Batch(map[string][]byte{"b": nil, "c": nil})
	if got := kv.Writes(); got != 4 {
		t.Fatalf("writes = %d, want 4", got)
	}
}

func TestPropertyPutGetRoundTrip(t *testing.T) {
	kv := NewMemory()
	if err := quick.Check(func(key string, value []byte) bool {
		if err := kv.Put(key, value); err != nil {
			return false
		}
		got, err := kv.Get(key)
		if err != nil {
			return false
		}
		return bytes.Equal(got, value)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWALBinaryValues(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	kv, _ := Open(path)
	binary := []byte{0, 1, 2, 255, 254, '\n', '"', '\\'}
	_ = kv.Put("bin", binary)
	_ = kv.Close()
	kv2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	got, err := kv2.Get("bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, binary) {
		t.Fatalf("binary round trip: % x", got)
	}
}

func TestCompactionShrinksWALAndPreservesState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.wal")
	kv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	kv.SetAutoCompact(4, 16)

	// Overwrite a small working set far past the threshold: dead records
	// pile up, compaction must kick in and rewrite the log as a snapshot.
	for round := 0; round < 40; round++ {
		for i := 0; i < 8; i++ {
			if err := kv.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d-%d", i, round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := kv.Delete("k7"); err != nil {
		t.Fatal(err)
	}
	if kv.Compactions() == 0 {
		t.Fatal("auto-compaction never triggered")
	}
	if recs := kv.WALRecords(); recs > 4*int64(kv.Len())+16 {
		t.Fatalf("WAL holds %d records for %d live keys", recs, kv.Len())
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 7 live keys with ~60-byte JSON records plus the post-compaction tail
	// must be far below the ~320 uncompacted records.
	if info.Size() > 8*1024 {
		t.Fatalf("WAL file is %d bytes after compaction", info.Size())
	}

	// Reopen: the snapshot + tail replays to exactly the live state.
	kv2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	if kv2.Len() != 7 {
		t.Fatalf("reopened store has %d keys, want 7", kv2.Len())
	}
	for i := 0; i < 7; i++ {
		v, err := kv2.Get(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("v%d-39", i); string(v) != want {
			t.Fatalf("k%d = %q, want %q", i, v, want)
		}
	}
	if kv2.Has("k7") {
		t.Fatal("deleted key survived compaction + reopen")
	}
}

func TestCompactionSurvivesReopenCycles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.wal")
	for cycle := 0; cycle < 5; cycle++ {
		kv, err := Open(path)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		kv.SetAutoCompact(2, 8)
		for i := 0; i < 20; i++ {
			if err := kv.Put(fmt.Sprintf("k%d", i%4), []byte(fmt.Sprintf("c%d-%d", cycle, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := kv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	kv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if kv.Len() != 4 {
		t.Fatalf("store has %d keys, want 4", kv.Len())
	}
	for i := 0; i < 4; i++ {
		v, err := kv.Get(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("c4-%d", 16+i); string(v) != want {
			t.Fatalf("k%d = %q, want %q", i, v, want)
		}
	}
	// The WAL must not have grown with the total write count (100 puts):
	// each cycle's compaction resets it to the live set.
	if recs := kv.WALRecords(); recs > 20 {
		t.Fatalf("WAL carries %d records across reopen cycles", recs)
	}
}

func TestTamperUnderlyingSurvivesCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.wal")
	kv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if err := kv.Put("a", []byte("honest")); err != nil {
		t.Fatal(err)
	}
	if !kv.TamperUnderlying("a", []byte("tampered")) {
		t.Fatal("tamper failed")
	}
	if err := kv.Compact(); err != nil {
		t.Fatal(err)
	}
	// The attacker's value is what the store serves — compaction must not
	// resurrect the honest value (it snapshots memory, the attacker's
	// view), and explicit compaction of a tampered store must not error.
	v, err := kv.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "tampered" {
		t.Fatalf("value after compaction = %q", v)
	}
	if !kv.TamperUnderlying("a", []byte("again")) {
		t.Fatal("tamper after compaction failed")
	}
}

func TestExplicitCompactOnMemoryStore(t *testing.T) {
	kv := NewMemory()
	if err := kv.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Compact(); err != nil {
		t.Fatalf("memory-store compact: %v", err)
	}
}
