package drams

import (
	"context"
	"errors"
	"fmt"

	"drams/internal/blockchain"
	"drams/internal/federation"
	"drams/internal/xacml"
)

// ErrMonitoringDisabled is returned by monitoring-plane methods when the
// deployment was built with monitoring off.
var ErrMonitoringDisabled = errors.New("drams: monitoring is disabled")

// Client is a per-tenant handle onto a deployment — the application-facing
// entry point for access requests. A Client is cheap, stateless and safe
// for concurrent use; obtain one per tenant with Deployment.Client and
// reuse it for the tenant's whole traffic.
type Client struct {
	dep    *Deployment
	tenant string
	pep    *federation.PEPService
}

// Client returns the access-request handle for a tenant's PEP.
func (d *Deployment) Client(tenant string) (*Client, error) {
	pep, ok := d.PEPs[tenant]
	if !ok {
		return nil, fmt.Errorf("drams: tenant %q has no PEP", tenant)
	}
	return &Client{dep: d, tenant: tenant, pep: pep}, nil
}

// Tenant returns the tenant this client submits requests for.
func (c *Client) Tenant() string { return c.tenant }

// NewRequest builds an empty request with a fresh correlation ID.
func (c *Client) NewRequest() *xacml.Request { return c.dep.NewRequest() }

// Decide runs one access request through the tenant's PEP and returns the
// enforced outcome. The context's deadline and cancellation propagate into
// the PEP service and the federation network round-trip to the PDP.
func (c *Client) Decide(ctx context.Context, req *xacml.Request) (Enforcement, error) {
	c.dep.prepare(req)
	return c.pep.Decide(ctx, req)
}

// DecideBatch pipelines many access requests over the tenant's PEP: all of
// them share one network round-trip to the PDP (and the later items hit a
// decision cache warmed by the earlier ones), while probes, attack
// injection and on-chain logging behave per-request exactly as Decide.
//
// The returned slice is positionally aligned with reqs; entries whose
// request failed carry IndeterminateDP. The error is nil only when every
// request succeeded (per-item errors are joined, so errors.Is still works).
func (c *Client) DecideBatch(ctx context.Context, reqs []*xacml.Request) ([]Enforcement, error) {
	for _, req := range reqs {
		c.dep.prepare(req)
	}
	return c.pep.DecideBatch(ctx, reqs)
}

// DecideAsync starts Decide in the background and returns a Future. The
// request's correlation ID is minted synchronously, so callers can
// subscribe to its alerts before the decision lands.
func (c *Client) DecideAsync(ctx context.Context, req *xacml.Request) *Future {
	c.dep.prepare(req)
	f := &Future{reqID: req.ID, done: make(chan struct{})}
	go func() {
		defer close(f.done)
		f.enf, f.err = c.pep.Decide(ctx, req)
	}()
	return f
}

// Future is the pending outcome of a DecideAsync call.
type Future struct {
	reqID string
	done  chan struct{}
	enf   Enforcement // written once before done is closed
	err   error
}

// RequestID returns the correlation ID of the in-flight request, usable to
// subscribe for its alerts or wait for its on-chain match.
func (f *Future) RequestID() string { return f.reqID }

// Done is closed when the outcome is available.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks for the outcome or the context, whichever first. Wait may be
// called any number of times, from any goroutine.
func (f *Future) Wait(ctx context.Context) (Enforcement, error) {
	select {
	case <-f.done:
		return f.enf, f.err
	case <-ctx.Done():
		return Enforcement{Decision: xacml.IndeterminateDP},
			fmt.Errorf("drams: async decide %s: %w", f.reqID, ctx.Err())
	}
}

// prepare mints a correlation ID if the request has none and registers the
// submission with the monitor for detection-latency measurement.
func (d *Deployment) prepare(req *xacml.Request) {
	if req.ID == "" {
		req.ID = d.NewRequestID()
	}
	if d.Monitor != nil {
		d.Monitor.TrackSubmission(req.ID)
	}
}

// Request runs one access request through a tenant's PEP and returns the
// enforced outcome.
//
// Deprecated-style compat shim: it is a thin wrapper over Client.Decide
// with a background context. New code should hold a Client and pass a real
// context so deadlines and cancellation reach the PDP round-trip; callers
// that only need a context on the old entry point can use RequestContext.
func (d *Deployment) Request(tenant string, req *xacml.Request) (Enforcement, error) {
	return d.RequestContext(context.Background(), tenant, req)
}

// RequestContext is Request with the caller's context honored through the
// Client.Decide path.
func (d *Deployment) RequestContext(ctx context.Context, tenant string, req *xacml.Request) (Enforcement, error) {
	c, err := d.Client(tenant)
	if err != nil {
		return Enforcement{}, err
	}
	return c.Decide(ctx, req)
}

// PEP returns the tenant-edge enforcement point service for a tenant,
// without reaching through the exported map.
func (d *Deployment) PEP(tenant string) (*federation.PEPService, error) {
	pep, ok := d.PEPs[tenant]
	if !ok {
		return nil, fmt.Errorf("drams: tenant %q has no PEP", tenant)
	}
	return pep, nil
}

// Node returns the blockchain node of a cloud, without reaching through the
// exported map.
func (d *Deployment) Node(cloud string) (*blockchain.Node, error) {
	node, ok := d.Nodes[cloud]
	if !ok {
		return nil, fmt.Errorf("drams: cloud %q has no chain node", cloud)
	}
	return node, nil
}

// Alerts subscribes to the monitor's event stream. The channel carries
// security alerts matching the filter — plus synthetic AlertMatched events
// for cleanly completed exchanges when the filter lists that type
// explicitly — and is closed on cancel, context end, or deployment
// shutdown. Buffers are bounded; a slow consumer loses events (counted in
// Monitor.Stats), never the on-chain record.
func (d *Deployment) Alerts(ctx context.Context, f AlertFilter) (<-chan Alert, func(), error) {
	if d.Monitor == nil {
		return nil, nil, ErrMonitoringDisabled
	}
	ch, cancel := d.Monitor.Subscribe(ctx, f)
	return ch, cancel, nil
}
