// Package benchfmt defines the machine-readable benchmark report every
// DRAMS perf tool emits: one BENCH_<name>.json per run, carrying the run
// configuration, environment fingerprint (git SHA, Go version, CPU count),
// per-metric summaries, and threshold verdicts. cmd/drams-loadgen and
// cmd/drams-bench share this schema, so CI can archive every run as a
// diffable point on the perf trajectory.
//
// Schema (version "drams-bench/1"):
//
//	{
//	  "schema": "drams-bench/1",
//	  "name": "loadgen_ci-slo",            // report name; file is BENCH_<name>.json
//	  "kind": "loadgen" | "experiment",
//	  "git_sha": "abc123…",                // best-effort, "" outside a checkout
//	  "go_version": "go1.24", "goos": …, "goarch": …, "cpus": 4,
//	  "started_at": RFC3339, "elapsed_ms": 4012.3,
//	  "pass": true,
//	  "config": { … },                     // tool-specific run configuration
//	  "metrics": {                         // per-metric summaries (loadgen)
//	    "latency_ms": {"count":…, "mean":…, "p50":…, "p99":…, "p999":…, "unit":"ms"},
//	    …
//	  },
//	  "thresholds": [                      // declarative SLO verdicts (loadgen)
//	    {"expr": "p99<5ms", "metric": "p99", "actual": 2.1, "pass": true}, …
//	  ],
//	  "table": {"title":…, "header": […], "rows": [[…]], "notes": […]}  // experiment kind
//	}
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"drams/internal/metrics"
)

// Schema is the report format version.
const Schema = "drams-bench/1"

// Metric is the JSON form of a metrics.Summary.
type Metric struct {
	Count  int64   `json:"count"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	P999   float64 `json:"p999"`
	StdDev float64 `json:"stddev"`
	Unit   string  `json:"unit,omitempty"`
}

// FromSummary converts a histogram summary.
func FromSummary(s metrics.Summary, unit string) Metric {
	return Metric{
		Count: s.Count, Mean: s.Mean, Min: s.Min, Max: s.Max,
		P50: s.P50, P90: s.P90, P99: s.P99, P999: s.P999,
		StdDev: s.StdDev, Unit: unit,
	}
}

// ThresholdVerdict is one evaluated SLO threshold.
type ThresholdVerdict struct {
	Expr   string  `json:"expr"`
	Metric string  `json:"metric"`
	Actual float64 `json:"actual"`
	Pass   bool    `json:"pass"`
}

// TableData embeds an experiment result table (drams-bench reports).
type TableData struct {
	Title  string     `json:"title,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// Report is one benchmark run in machine-readable form.
type Report struct {
	Schema     string             `json:"schema"`
	Name       string             `json:"name"`
	Kind       string             `json:"kind"`
	GitSHA     string             `json:"git_sha,omitempty"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	CPUs       int                `json:"cpus"`
	StartedAt  time.Time          `json:"started_at"`
	ElapsedMS  float64            `json:"elapsed_ms"`
	Pass       bool               `json:"pass"`
	Config     any                `json:"config,omitempty"`
	Metrics    map[string]Metric  `json:"metrics,omitempty"`
	Thresholds []ThresholdVerdict `json:"thresholds,omitempty"`
	Table      *TableData         `json:"table,omitempty"`
	// FleetMetrics is a flat snapshot of each member's /metrics taken at
	// run end, keyed by source ("netsim" or the daemon's metrics address),
	// then full series name → value (histograms appear through their
	// _bucket/_sum/_count series).
	FleetMetrics map[string]map[string]float64 `json:"fleet_metrics,omitempty"`
}

// New returns a Report stamped with the environment fingerprint. Name must
// be filesystem-safe (it becomes part of the output filename).
func New(name, kind string) *Report {
	return &Report{
		Schema:    Schema,
		Name:      name,
		Kind:      kind,
		GitSHA:    gitSHA(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		StartedAt: time.Now().UTC(),
		Pass:      true,
	}
}

// gitSHA resolves the current commit, best-effort: the GIT_SHA environment
// variable wins (CI sets it cheaply), then `git rev-parse`; "" otherwise.
func gitSHA() string {
	if sha := os.Getenv("GIT_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Filename returns the canonical BENCH_<name>.json basename.
func (r *Report) Filename() string {
	name := strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			return c
		}
		return '_'
	}, r.Name)
	return "BENCH_" + name + ".json"
}

// WriteFile writes the report as indented JSON into dir (created if
// missing) and returns the full path.
func (r *Report) WriteFile(dir string) (string, error) {
	if r.Schema == "" {
		r.Schema = Schema
	}
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("benchfmt: output dir: %w", err)
	}
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("benchfmt: encode report: %w", err)
	}
	path := filepath.Join(dir, r.Filename())
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("benchfmt: write report: %w", err)
	}
	return path, nil
}

// ReadFile loads a report back (CI diffing, tests).
func ReadFile(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: parse %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("benchfmt: %s has schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}
