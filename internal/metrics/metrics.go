// Package metrics implements the lightweight instrumentation used by the
// DRAMS experiment harness: counters, gauges and latency histograms with
// percentile summaries. All types are safe for concurrent use and the zero
// values of Counter and Gauge are ready to use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use.
type Counter struct{ n atomic.Int64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which must be >= 0) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a value that can go up and down. The zero value is ready to use.
type Gauge struct{ n atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// Histogram records observations and reports percentile summaries. It stores
// raw samples (bounded by maxSamples with reservoir-style replacement) so
// percentiles are exact for experiments of moderate size.
type Histogram struct {
	mu         sync.Mutex
	samples    []float64
	count      int64
	sum        float64
	min, max   float64
	maxSamples int
	rngState   uint64
}

// NewHistogram returns a Histogram retaining at most maxSamples raw samples
// (64k if maxSamples <= 0).
func NewHistogram(maxSamples int) *Histogram {
	if maxSamples <= 0 {
		maxSamples = 1 << 16
	}
	return &Histogram{
		maxSamples: maxSamples,
		min:        math.Inf(1),
		max:        math.Inf(-1),
		rngState:   0x853c49e6748fea9b,
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < h.maxSamples {
		h.samples = append(h.samples, v)
		return
	}
	// Reservoir sampling keeps percentiles unbiased once full.
	h.rngState = h.rngState*6364136223846793005 + 1442695040888963407
	idx := h.rngState % uint64(h.count)
	if idx < uint64(h.maxSamples) {
		h.samples[idx] = v
	}
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations (0 if none).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 if none).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 if none).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) over retained samples, using
// linear interpolation. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary is a point-in-time percentile snapshot of a Histogram.
type Summary struct {
	Count            int64
	Mean             float64
	Min, Max         float64
	P50, P90, P99    float64
	StdDev           float64
	TotalObservation float64
}

// Snapshot computes a Summary.
func (h *Histogram) Snapshot() Summary {
	h.mu.Lock()
	count := h.count
	sum := h.sum
	samples := make([]float64, len(h.samples))
	copy(samples, h.samples)
	mn, mx := h.min, h.max
	h.mu.Unlock()

	s := Summary{Count: count, TotalObservation: sum}
	if count == 0 {
		return s
	}
	s.Mean = sum / float64(count)
	s.Min, s.Max = mn, mx
	sort.Float64s(samples)
	q := func(p float64) float64 {
		if len(samples) == 0 {
			return 0
		}
		pos := p * float64(len(samples)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return samples[lo]
		}
		frac := pos - float64(lo)
		return samples[lo]*(1-frac) + samples[hi]*frac
	}
	s.P50, s.P90, s.P99 = q(0.50), q(0.90), q(0.99)
	var ss float64
	for _, v := range samples {
		d := v - s.Mean
		ss += d * d
	}
	if len(samples) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(samples)-1))
	}
	return s
}

// String renders the summary as a compact single line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f min=%.3f max=%.3f",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Min, s.Max)
}

// Registry groups named metrics for an experiment run.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(0)
		r.histograms[name] = h
	}
	return h
}

// Dump renders all metrics sorted by name, one per line.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("hist %s: %s", name, h.Snapshot()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
