// Package transport declares fixture wire sentinels.
package transport

import "errors"

// ErrTimeout is a sentinel that crosses the wire wrapped.
var ErrTimeout = errors.New("transport: timeout")
