package blockchain

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"drams/internal/contract"
	"drams/internal/crypto"
)

// testIdentity builds a deterministic identity.
func testIdentity(t testing.TB, name string, seedByte byte) *crypto.Identity {
	t.Helper()
	var seed [32]byte
	copy(seed[:], name)
	seed[31] = seedByte
	return crypto.NewIdentityFromSeed(name, seed)
}

// testChainConfig builds a low-difficulty config with kv+anchor contracts
// and the given allowed identities.
func testChainConfig(t testing.TB, ids ...*crypto.Identity) Config {
	t.Helper()
	reg := contract.NewRegistry()
	reg.MustRegister(&contract.KVContract{ContractName: "kv"})
	reg.MustRegister(&contract.AnchorContract{ContractName: "anchor"})
	pubs := make([]crypto.PublicIdentity, len(ids))
	for i, id := range ids {
		pubs[i] = id.Public()
	}
	return Config{
		Difficulty:  4,
		Identities:  pubs,
		Registry:    reg,
		GenesisTime: time.Unix(1700000000, 0),
	}
}

func putCall(key, value string) contract.Call {
	args, _ := json.Marshal(contract.KVArgs{Key: key, Value: []byte(value)})
	return contract.Call{Contract: "kv", Method: "put", Args: args}
}

// mineChild assembles and mines a block of txs on the given parent.
func mineChild(t testing.TB, c *Chain, parent crypto.Digest, txs ...Transaction) *Block {
	t.Helper()
	pb, ok := c.BlockByHash(parent)
	if !ok {
		t.Fatalf("parent %s unknown", parent.Short())
	}
	c.mu.RLock()
	diff := c.expectedDifficultyLocked(pb)
	c.mu.RUnlock()
	b := &Block{
		Header: BlockHeader{
			Height:       pb.Header.Height + 1,
			PrevHash:     parent,
			MerkleRoot:   ComputeMerkleRoot(txs),
			TimeUnixNano: pb.Header.TimeUnixNano + int64(100*time.Millisecond),
			Difficulty:   diff,
			Miner:        "test-miner",
		},
		Txs: txs,
	}
	if !Mine(context.Background(), b, 0) {
		t.Fatal("mining failed")
	}
	return b
}

func TestGenesis(t *testing.T) {
	c := NewChain(testChainConfig(t))
	hash, height := c.Head()
	if height != 0 {
		t.Fatalf("genesis height = %d", height)
	}
	if hash != c.Genesis() {
		t.Fatal("head is not genesis")
	}
	if c.TotalWork().Sign() != 0 {
		t.Fatal("genesis carries work")
	}
	// Two chains with the same config share a genesis.
	c2 := NewChain(testChainConfig(t))
	if c2.Genesis() != c.Genesis() {
		t.Fatal("genesis not deterministic")
	}
}

func TestAddBlockExtendsHead(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	c := NewChain(testChainConfig(t, alice))
	tx, err := NewTransaction(alice, 1, putCall("k", "v"))
	if err != nil {
		t.Fatal(err)
	}
	b := mineChild(t, c, c.Genesis(), tx)
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if _, h := c.Head(); h != 1 {
		t.Fatalf("height = %d", h)
	}
	// State applied.
	var got []byte
	c.ReadState("kv", func(st contract.StateDB) {
		got, _ = contract.ReadKV(st, "k")
	})
	if string(got) != "v" {
		t.Fatalf("state = %q", got)
	}
	// Receipt recorded with 1 confirmation.
	rec, conf, err := c.Receipt(tx.ID())
	if err != nil || !rec.OK || conf != 1 {
		t.Fatalf("receipt = %+v conf=%d err=%v", rec, conf, err)
	}
	if c.AccountNonce("alice") != 1 {
		t.Fatalf("nonce = %d", c.AccountNonce("alice"))
	}
}

func TestAddBlockRejectsDuplicates(t *testing.T) {
	c := NewChain(testChainConfig(t))
	b := mineChild(t, c, c.Genesis())
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(b); !errors.Is(err, ErrKnownBlock) {
		t.Fatalf("got %v", err)
	}
}

func TestAddBlockRejectsOrphan(t *testing.T) {
	c := NewChain(testChainConfig(t))
	b := mineChild(t, c, c.Genesis())
	b.Header.PrevHash = crypto.Sum([]byte("nowhere"))
	_ = Mine(context.Background(), b, 0)
	if err := c.AddBlock(b); !errors.Is(err, ErrOrphanBlock) {
		t.Fatalf("got %v", err)
	}
}

func TestAddBlockRejectsBadPoW(t *testing.T) {
	c := NewChain(testChainConfig(t))
	b := mineChild(t, c, c.Genesis())
	// Find a nonce that does NOT meet difficulty.
	for b.Header.MeetsDifficulty() {
		b.Header.Nonce++
	}
	if err := c.AddBlock(b); !errors.Is(err, ErrBadPoW) {
		t.Fatalf("got %v", err)
	}
}

func TestAddBlockRejectsBadMerkleRoot(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	c := NewChain(testChainConfig(t, alice))
	tx, _ := NewTransaction(alice, 1, putCall("k", "v"))
	b := mineChild(t, c, c.Genesis(), tx)
	b.Txs = nil // header root no longer matches
	// Re-mine so PoW passes and the failure is attributable to the root.
	_ = Mine(context.Background(), b, 0)
	if err := c.AddBlock(b); !errors.Is(err, ErrBadMerkleRoot) {
		t.Fatalf("got %v", err)
	}
}

func TestAddBlockRejectsBadHeight(t *testing.T) {
	c := NewChain(testChainConfig(t))
	b := mineChild(t, c, c.Genesis())
	b.Header.Height = 5
	_ = Mine(context.Background(), b, 0)
	if err := c.AddBlock(b); !errors.Is(err, ErrBadHeight) {
		t.Fatalf("got %v", err)
	}
}

func TestAddBlockRejectsUnknownSender(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	mallory := testIdentity(t, "mallory", 66)
	c := NewChain(testChainConfig(t, alice)) // mallory not allowlisted
	tx, _ := NewTransaction(mallory, 1, putCall("k", "v"))
	b := mineChild(t, c, c.Genesis(), tx)
	if err := c.AddBlock(b); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("got %v", err)
	}
}

func TestAddBlockRejectsForgedKey(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	mallory := testIdentity(t, "mallory", 66)
	c := NewChain(testChainConfig(t, alice))
	// Mallory signs with her own key but claims to be alice.
	tx := Transaction{From: "mallory", Nonce: 1, Call: putCall("k", "v")}
	if err := tx.Sign(mallory); err != nil {
		t.Fatal(err)
	}
	tx.From = "alice" // forged sender; signature now stale too
	b := mineChild(t, c, c.Genesis(), tx)
	if err := c.AddBlock(b); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("got %v", err)
	}
}

func TestNonceOrderingEnforced(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	c := NewChain(testChainConfig(t, alice))
	tx2, _ := NewTransaction(alice, 2, putCall("a", "1")) // skips nonce 1
	b := mineChild(t, c, c.Genesis(), tx2)
	if err := c.AddBlock(b); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("got %v", err)
	}
	// Correct sequence within one block works.
	tx1, _ := NewTransaction(alice, 1, putCall("a", "1"))
	tx2b, _ := NewTransaction(alice, 2, putCall("b", "2"))
	good := mineChild(t, c, c.Genesis(), tx1, tx2b)
	if err := c.AddBlock(good); err != nil {
		t.Fatal(err)
	}
	// Replaying nonce 1 in a later block fails.
	replay := mineChild(t, c, good.Hash(), tx1)
	if err := c.AddBlock(replay); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("replay: %v", err)
	}
}

func TestFailedTxIncludedWithoutStateChange(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	bob := testIdentity(t, "bob", 2)
	c := NewChain(testChainConfig(t, alice, bob))
	tx1, _ := NewTransaction(alice, 1, putCall("k", "alice's"))
	b1 := mineChild(t, c, c.Genesis(), tx1)
	if err := c.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	// Bob tries to overwrite alice's key: contract error, tx still mined.
	tx2, _ := NewTransaction(bob, 1, putCall("k", "bob's"))
	b2 := mineChild(t, c, b1.Hash(), tx2)
	if err := c.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	rec, _, err := c.Receipt(tx2.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rec.OK || rec.Err == "" {
		t.Fatalf("receipt = %+v", rec)
	}
	var got []byte
	c.ReadState("kv", func(st contract.StateDB) { got, _ = contract.ReadKV(st, "k") })
	if string(got) != "alice's" {
		t.Fatalf("state = %q", got)
	}
	// Bob's nonce is still consumed.
	if c.AccountNonce("bob") != 1 {
		t.Fatalf("bob nonce = %d", c.AccountNonce("bob"))
	}
}

func TestForkChoiceHeaviestWork(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	c := NewChain(testChainConfig(t, alice))
	txA, _ := NewTransaction(alice, 1, putCall("branch", "A"))
	txB, _ := NewTransaction(alice, 1, putCall("branch", "B"))

	// Branch A: one block.
	a1 := mineChild(t, c, c.Genesis(), txA)
	if err := c.AddBlock(a1); err != nil {
		t.Fatal(err)
	}
	headAfterA, _ := c.Head()
	if headAfterA != a1.Hash() {
		t.Fatal("head should be a1")
	}

	// Branch B: two blocks from genesis → more work → reorg.
	b1 := mineChild(t, c, c.Genesis(), txB)
	// b1 must differ from a1; different tx content guarantees it.
	if err := c.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	// Equal work: head must be the tie-break winner (lexicographically
	// smaller hash), whichever branch that is.
	a1h, b1h := a1.Hash(), b1.Hash()
	wantTie := a1h
	if string(b1h[:]) < string(a1h[:]) {
		wantTie = b1h
	}
	if h, _ := c.Head(); h != wantTie {
		t.Fatalf("equal-work tie break: head %s, want %s", h.Short(), wantTie.Short())
	}
	tx2, _ := NewTransaction(alice, 2, putCall("extra", "x"))
	b2 := mineChild(t, c, b1.Hash(), tx2)
	if err := c.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	if h, height := c.Head(); h != b2.Hash() || height != 2 {
		t.Fatalf("reorg failed: head=%s height=%d", h.Short(), height)
	}
	// State must reflect branch B only.
	var branch, extra []byte
	c.ReadState("kv", func(st contract.StateDB) {
		branch, _ = contract.ReadKV(st, "branch")
		extra, _ = contract.ReadKV(st, "extra")
	})
	if string(branch) != "B" || string(extra) != "x" {
		t.Fatalf("post-reorg state branch=%q extra=%q", branch, extra)
	}
	// txA is no longer on the best chain.
	if _, _, err := c.Receipt(txA.ID()); !errors.Is(err, ErrTxNotFound) {
		t.Fatalf("txA receipt after reorg: %v", err)
	}
	// Best chain hashes reflect branch B.
	hashes := c.BestChainHashes()
	if len(hashes) != 3 || hashes[1] != b1.Hash() || hashes[2] != b2.Hash() {
		t.Fatalf("best chain = %v", hashes)
	}
}

func TestEqualWorkTieBreakDeterministic(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	// Build two single-block branches on two chains, then cross-feed; both
	// chains must pick the same winner.
	c1 := NewChain(testChainConfig(t, alice))
	c2 := NewChain(testChainConfig(t, alice))
	txA, _ := NewTransaction(alice, 1, putCall("b", "A"))
	txB, _ := NewTransaction(alice, 1, putCall("b", "B"))
	a := mineChild(t, c1, c1.Genesis(), txA)
	b := mineChild(t, c2, c2.Genesis(), txB)
	for _, blk := range []*Block{a, b} {
		if err := c1.AddBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	for _, blk := range []*Block{b, a} { // reverse arrival order
		if err := c2.AddBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	h1, _ := c1.Head()
	h2, _ := c2.Head()
	if h1 != h2 {
		t.Fatalf("tie break diverged: %s vs %s", h1.Short(), h2.Short())
	}
	if c1.StateDigest() != c2.StateDigest() {
		t.Fatal("states diverged on equal-work tie")
	}
}

func TestDifficultyScheduleValidated(t *testing.T) {
	c := NewChain(testChainConfig(t))
	b := mineChild(t, c, c.Genesis())
	b.Header.Difficulty = 2 // easier than scheduled 4
	_ = Mine(context.Background(), b, 0)
	if err := c.AddBlock(b); !errors.Is(err, ErrBadDifficulty) {
		t.Fatalf("got %v", err)
	}
}

func TestDifficultyOverride(t *testing.T) {
	c := NewChain(testChainConfig(t))
	c.SetDifficultyOverride(6)
	if got := c.NextDifficulty(); got != 6 {
		t.Fatalf("NextDifficulty = %d", got)
	}
	b := mineChild(t, c, c.Genesis())
	if b.Header.Difficulty != 6 {
		t.Fatalf("mined difficulty = %d", b.Header.Difficulty)
	}
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	c.SetDifficultyOverride(0)
	if got := c.NextDifficulty(); got != 6 {
		// With override cleared the schedule uses the parent's difficulty.
		t.Fatalf("NextDifficulty after clear = %d, want parent's 6", got)
	}
}

func TestRetargetingRaisesDifficultyWhenBlocksTooFast(t *testing.T) {
	cfg := testChainConfig(t)
	cfg.RetargetInterval = 4
	cfg.TargetBlockTime = time.Second // our synthetic timestamps are 100ms apart → too fast
	c := NewChain(cfg)
	parent := c.Genesis()
	for i := 0; i < 3; i++ {
		b := mineChild(t, c, parent)
		if err := c.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		parent = b.Hash()
	}
	// Height 4 is a retarget boundary; blocks are 100ms apart vs 1s target.
	if got := c.NextDifficulty(); got != 5 {
		t.Fatalf("retarget difficulty = %d, want 5", got)
	}
	b4 := mineChild(t, c, parent)
	if b4.Header.Difficulty != 5 {
		t.Fatalf("block difficulty = %d", b4.Header.Difficulty)
	}
	if err := c.AddBlock(b4); err != nil {
		t.Fatal(err)
	}
}

func TestRetargetingLowersDifficultyWhenBlocksTooSlow(t *testing.T) {
	cfg := testChainConfig(t)
	cfg.RetargetInterval = 2
	cfg.TargetBlockTime = time.Millisecond // 100ms synthetic spacing → too slow
	cfg.MinDifficulty = 1
	c := NewChain(cfg)
	b1 := mineChild(t, c, c.Genesis())
	if err := c.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	if got := c.NextDifficulty(); got != 3 {
		t.Fatalf("difficulty = %d, want 3", got)
	}
}

func TestHeadSubscription(t *testing.T) {
	c := NewChain(testChainConfig(t))
	ch, cancel := c.SubscribeHead()
	defer cancel()
	b := mineChild(t, c, c.Genesis())
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("no head notification")
	}
}

func TestEventSinkDelivery(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	c := NewChain(testChainConfig(t, alice))
	var sunk []contract.Event
	c.SetEventSink(func(height uint64, events []contract.Event) {
		sunk = append(sunk, events...)
	})
	tx, _ := NewTransaction(alice, 1, putCall("k", "v"))
	b := mineChild(t, c, c.Genesis(), tx)
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if len(sunk) != 1 || sunk[0].Type != "Put" {
		t.Fatalf("sunk = %+v", sunk)
	}
}

func TestStateDigestConvergenceAcrossReplicas(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	mk := func() *Chain { return NewChain(testChainConfig(t, alice)) }
	c1, c2 := mk(), mk()
	parent := c1.Genesis()
	var blocks []*Block
	for i := 1; i <= 5; i++ {
		tx, _ := NewTransaction(alice, uint64(i), putCall(fmt.Sprintf("k%d", i), "v"))
		b := mineChild(t, c1, parent, tx)
		if err := c1.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
		parent = b.Hash()
	}
	// Feed replica out of order: orphans rejected, so apply in order but
	// interleave duplicates.
	for _, b := range blocks {
		if err := c2.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		_ = c2.AddBlock(b) // duplicate
	}
	if c1.StateDigest() != c2.StateDigest() {
		t.Fatal("replicas diverged")
	}
	if c1.Height() != 5 || c2.Height() != 5 {
		t.Fatalf("heights %d/%d", c1.Height(), c2.Height())
	}
}

func TestBlockByHeight(t *testing.T) {
	c := NewChain(testChainConfig(t))
	b := mineChild(t, c, c.Genesis())
	_ = c.AddBlock(b)
	got, ok := c.BlockByHeight(1)
	if !ok || got.Hash() != b.Hash() {
		t.Fatal("BlockByHeight(1) wrong")
	}
	if _, ok := c.BlockByHeight(9); ok {
		t.Fatal("phantom height")
	}
	gen, ok := c.BlockByHeight(0)
	if !ok || gen.Hash() != c.Genesis() {
		t.Fatal("BlockByHeight(0) should be genesis")
	}
}

// Property-style test: any single-bit mutation of a valid block must be
// rejected (identity of the log store, paper §II).
func TestAnyHeaderMutationRejected(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	base := NewChain(testChainConfig(t, alice))
	tx, _ := NewTransaction(alice, 1, putCall("k", "v"))
	b := mineChild(t, base, base.Genesis(), tx)

	mutations := []func(*Block){
		func(m *Block) { m.Header.Height++ },
		func(m *Block) { m.Header.PrevHash[0] ^= 1 },
		func(m *Block) { m.Header.MerkleRoot[0] ^= 1 },
		func(m *Block) { m.Header.Nonce++ },
		func(m *Block) { m.Header.Difficulty-- },
		func(m *Block) { m.Txs[0].Nonce = 9 },
		func(m *Block) { m.Txs[0].Signature[0] ^= 1 },
		func(m *Block) { m.Txs[0].From = "other" },
	}
	for i, mutate := range mutations {
		c := NewChain(testChainConfig(t, alice))
		cp := *b
		cp.Txs = append([]Transaction(nil), b.Txs...)
		cp.Txs[0].Signature = append([]byte(nil), b.Txs[0].Signature...)
		mutate(&cp)
		if err := c.AddBlock(&cp); err == nil {
			// The only acceptable outcome would be a *different valid block*,
			// which a blind mutation cannot produce except with 2^-difficulty
			// luck on the nonce field; treat success as failure.
			if cp.Hash() == b.Hash() {
				t.Fatalf("mutation %d produced identical block", i)
			}
			if !cp.Header.MeetsDifficulty() {
				t.Fatalf("mutation %d accepted without valid PoW", i)
			}
		}
	}
}
