package blockchain

import (
	"context"
	"fmt"
	"sync"

	"drams/internal/contract"
	"drams/internal/crypto"
)

// Sender serialises transaction submission for one component identity: it
// assigns strictly increasing nonces, signs, and submits to a node. Every
// DRAMS component that writes to the chain (LIs, the Analyser, the PAP)
// owns one Sender.
type Sender struct {
	node *Node
	id   *crypto.Identity

	mu   sync.Mutex
	next uint64
}

// NewSender builds a Sender whose nonce counter continues from the
// identity's confirmed on-chain nonce.
func NewSender(node *Node, id *crypto.Identity) *Sender {
	return &Sender{node: node, id: id, next: node.Chain().AccountNonce(id.Name()) + 1}
}

// Identity returns the sending identity's name.
func (s *Sender) Identity() string { return s.id.Name() }

// Send signs and submits one contract call, returning the transaction ID.
func (s *Sender) Send(call contract.Call) (crypto.Digest, error) {
	s.mu.Lock()
	nonce := s.next
	s.next++
	tx, err := NewTransaction(s.id, nonce, call)
	if err != nil {
		s.next = nonce // roll the counter back; nothing was submitted
		s.mu.Unlock()
		return crypto.Digest{}, err
	}
	// Submit while still holding the lock so concurrent Sends cannot
	// reorder nonces in the mempool gossip.
	err = s.node.SubmitTx(tx)
	if err != nil {
		s.next = nonce
		s.mu.Unlock()
		return crypto.Digest{}, fmt.Errorf("blockchain: sender %q submit: %w", s.id.Name(), err)
	}
	s.mu.Unlock()
	return tx.ID(), nil
}

// SendAndWait submits a call and blocks until it has the requested number
// of confirmations, returning the execution receipt.
func (s *Sender) SendAndWait(ctx context.Context, call contract.Call, confirmations uint64) (Receipt, error) {
	txID, err := s.Send(call)
	if err != nil {
		return Receipt{}, err
	}
	if confirmations == 0 {
		confirmations = 1
	}
	return s.node.WaitForReceipt(ctx, txID, confirmations)
}

// Resync re-reads the confirmed on-chain nonce; call after a partition or
// local crash left the counter ahead of the chain.
func (s *Sender) Resync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	confirmed := s.node.Chain().AccountNonce(s.id.Name())
	if confirmed+1 > s.next {
		s.next = confirmed + 1
	}
	// If we are ahead because txs are still pending, keep the local
	// counter: the pending txs will confirm or the caller retries later.
}
