// Package merkle is a stratum member gone wrong: it reaches outside the
// stratum.
package merkle

import (
	"fix/internal/util" // want "the stratum may import only the stdlib"
)

// Sum hashes the input.
func Sum(data []byte) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range data {
		h = util.Mix(h, b)
	}
	return h
}
