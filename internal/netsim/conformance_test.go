package netsim

import (
	"testing"

	"drams/internal/transport"
	"drams/internal/transport/transporttest"
)

// TestTransportConformance runs the shared transport conformance suite
// against the simulator (async delivery, no injected faults): netsim and
// the TCP backend must be interchangeable behind transport.Transport.
// (Synchronous mode is exempt: inline delivery runs call handlers on the
// caller's goroutine, so a blocking handler cannot be cancelled mid-call —
// that mode is a determinism tool for unit tests, not a wire contract.)
func TestTransportConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T, n int) []transport.Transport {
		net := New(Config{Seed: 7})
		t.Cleanup(func() { net.Close() })
		out := make([]transport.Transport, n)
		for i := range out {
			out[i] = net
		}
		return out
	})
}
