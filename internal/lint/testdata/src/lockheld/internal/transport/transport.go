// Package transport is the fixture wire abstraction.
package transport

// Endpoint is the blocking peer interface.
type Endpoint interface {
	Call(method string, payload []byte) ([]byte, error)
	Send(payload []byte) error
}
