package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drams/internal/blockchain"
	"drams/internal/clock"
	"drams/internal/metrics"
	"drams/internal/trace"
)

// maxTracked caps the submission-tracking map: entries are removed as soon
// as their request matches or alerts, and stragglers (requests that never
// produce an on-chain outcome) are evicted oldest-first beyond this bound so
// sustained traffic cannot grow the monitor without limit.
const maxTracked = 4096

// defaultSubscriberBuffer is the channel capacity of a subscription when
// AlertFilter.Buffer is left zero.
const defaultSubscriberBuffer = 64

// MonitorStats is a snapshot of what the monitor has observed.
type MonitorStats struct {
	LogsSeen     int64
	AlertsSeen   int64
	Matched      int64
	AlertsByType map[AlertType]int64
	// DetectionLatencyMs summarises wall-clock time from TrackSubmission
	// to the corresponding alert arriving off-chain.
	DetectionLatencyMs metrics.Summary
	// Tracked is the number of in-flight submission-latency entries.
	Tracked int
	// Subscribers is the number of live alert subscriptions.
	Subscribers int
	// StreamDropped counts events discarded because a subscriber's buffer
	// was full (slow consumer). The on-chain record is unaffected.
	StreamDropped int64
	// PolicyActivations / PolicyRejections count the policy rollout events
	// published through this monitor (PAP watcher wiring).
	PolicyActivations int64
	PolicyRejections  int64
}

// AlertFilter selects which monitor events a subscription receives. The
// zero value matches every event.
type AlertFilter struct {
	// ReqID restricts the stream to one request ("" = any).
	ReqID string
	// Types restricts the stream to the listed alert types. nil matches
	// every security alert; the synthetic AlertMatched completion events
	// are opt-in and delivered only when Types lists them explicitly.
	Types []AlertType
	// Tenant restricts the stream to alerts attributed to one tenant.
	// AlertMatched events carry no tenant and are filtered out by a
	// non-empty Tenant.
	Tenant string
	// Replay delivers already-recorded matching events (alerts seen so
	// far, and AlertMatched for already-completed requests) into the
	// channel at subscribe time, before any live events.
	Replay bool
	// Buffer sets the channel capacity (default 64). When the buffer is
	// full, further events for this subscriber are dropped and counted in
	// MonitorStats.StreamDropped.
	Buffer int
}

// matches reports whether the filter selects the event.
func (f AlertFilter) matches(a Alert) bool {
	if f.ReqID != "" && f.ReqID != a.ReqID {
		return false
	}
	if f.Tenant != "" && f.Tenant != a.Tenant {
		return false
	}
	if len(f.Types) == 0 {
		return !a.Type.IsSynthetic()
	}
	for _, t := range f.Types {
		if t == a.Type {
			return true
		}
	}
	return false
}

// subscriber is one live subscription.
type subscriber struct {
	filter  AlertFilter
	ch      chan Alert
	done    chan struct{} // closed on cancel; releases the ctx watcher
	dropped int64         // guarded by Monitor.mu
}

// Monitor is the off-chain DRAMS observer: it consumes contract events from
// a blockchain node, aggregates security alerts, fans them out to
// subscribers, exposes wait primitives for tests/experiments, and measures
// detection latency. The on-chain state remains the ground truth; the
// monitor is a (restartable) view.
type Monitor struct {
	node *blockchain.Node
	clk  clock.Clock

	mu        sync.Mutex
	stopped   bool // set by Stop; new subscriptions are refused after
	alerts    []Alert
	alertKeys map[string]bool // dedupe re-delivered events
	byType    map[AlertType]int64
	matched   map[string]uint64 // reqID → height
	policyLog []Alert           // policy rollout events, for Replay
	tracked   map[string]time.Time
	trackedQ  []string // insertion order, for straggler eviction
	subs      map[uint64]*subscriber
	nextSub   uint64
	handlers  []func(Alert)

	tracer atomic.Pointer[trace.Tracer]

	logsSeen   metrics.Counter
	alertsSeen metrics.Counter
	matchedCnt metrics.Counter
	dropCnt    metrics.Counter
	policyActs metrics.Counter
	policyRejs metrics.Counter
	latency    *metrics.Histogram

	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	cancelSub func()
}

// NewMonitor builds a monitor attached to a node.
func NewMonitor(node *blockchain.Node, clk clock.Clock) *Monitor {
	if clk == nil {
		clk = clock.System{}
	}
	return &Monitor{
		node:      node,
		clk:       clk,
		alertKeys: make(map[string]bool),
		byType:    make(map[AlertType]int64),
		matched:   make(map[string]uint64),
		tracked:   make(map[string]time.Time),
		subs:      make(map[uint64]*subscriber),
		latency:   metrics.NewHistogram(0),
		stop:      make(chan struct{}),
	}
}

// SetTracer attaches (or clears, with nil) the end-to-end span recorder:
// anchored logs, matches and alerts then produce chain.anchor,
// monitor.match and monitor.alert spans keyed by the record's trace ID
// (which defaults to the request ID, so Deployment.Trace(reqID) finds
// them).
func (m *Monitor) SetTracer(t *trace.Tracer) { m.tracer.Store(t) }

// traceEventRecord recovers enough of a LogStored payload to attribute a
// trace span: the trace ID (request ID when the record predates tracing)
// and the request ID. Batch-anchored records arrive wrapped.
func traceEventRecord(payload []byte) (traceID, reqID string) {
	rec, err := DecodeLogRecord(payload)
	if err != nil || rec.ReqID == "" {
		if br, berr := DecodeBatchedRecord(payload); berr == nil {
			rec = br.Record
		} else {
			return "", ""
		}
	}
	if rec.TraceID != "" {
		return rec.TraceID, rec.ReqID
	}
	return rec.ReqID, rec.ReqID
}

// Start begins consuming events.
func (m *Monitor) Start() {
	events, cancel := m.node.SubscribeEvents(0)
	m.cancelSub = cancel
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			select {
			case <-m.stop:
				return
			case note, ok := <-events:
				if !ok {
					return
				}
				for _, e := range note.Events {
					m.handleEvent(e.Contract, e.Type, e.Payload, note.Height)
				}
			}
		}
	}()
}

// Stop halts the monitor and closes every subscription channel.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	if m.cancelSub != nil {
		m.cancelSub()
	}
	// Mark stopped before waiting: registration and wg.Add share the
	// mutex, so any Subscribe either completed its Add before this point
	// or will observe stopped and register nothing.
	m.mu.Lock()
	m.stopped = true
	subs := m.subs
	m.subs = make(map[uint64]*subscriber)
	m.mu.Unlock()
	m.wg.Wait()
	for _, s := range subs {
		close(s.done)
		close(s.ch)
	}
}

// Subscribe registers a stream of monitor events selected by the filter.
// The returned channel is closed when the subscription is cancelled, the
// context ends, or the monitor stops. The cancel function is idempotent and
// must be called (directly or via ctx) to release the subscription.
//
// Delivery is best-effort per subscriber: the channel buffer is bounded
// (AlertFilter.Buffer) and events beyond a full buffer are dropped and
// counted, so one slow consumer cannot stall the monitor or its peers.
func (m *Monitor) Subscribe(ctx context.Context, f AlertFilter) (<-chan Alert, func()) {
	buf := f.Buffer
	if buf <= 0 {
		buf = defaultSubscriberBuffer
	}
	sub := &subscriber{
		filter: f,
		ch:     make(chan Alert, buf),
		done:   make(chan struct{}),
	}

	m.mu.Lock()
	if m.stopped {
		// Subscribing to a stopped monitor yields a closed stream, same
		// as a live subscription observing shutdown.
		m.mu.Unlock()
		close(sub.done)
		close(sub.ch)
		return sub.ch, func() {}
	}
	id := m.nextSub
	m.nextSub++
	m.subs[id] = sub
	if f.Replay {
		m.replayLocked(sub)
	}
	watch := ctx != nil && ctx.Done() != nil
	if watch {
		// Under the same lock as registration, so Stop's wg.Wait is
		// ordered strictly after this Add.
		m.wg.Add(1)
	}
	m.mu.Unlock()

	cancel := func() {
		m.mu.Lock()
		s, ok := m.subs[id]
		delete(m.subs, id)
		m.mu.Unlock()
		if ok {
			// No delivery can race the close: sends only happen while the
			// subscriber is registered, under m.mu.
			close(s.done)
			close(s.ch)
		}
	}

	if watch {
		go func() {
			defer m.wg.Done()
			select {
			case <-ctx.Done():
				cancel()
			case <-sub.done:
			case <-m.stop:
			}
		}()
	}
	return sub.ch, cancel
}

// PublishPolicyEvent feeds a policy rollout observation (the PAP watcher's
// staged→activated/rejected outcomes) into the monitor's stream. The events
// are synthetic: delivered only to subscriptions listing their type,
// retained for Replay, and counted separately from security alerts.
func (m *Monitor) PublishPolicyEvent(a Alert) {
	switch a.Type {
	case AlertPolicyActivated:
		m.policyActs.Inc()
	case AlertPolicyRejected:
		m.policyRejs.Inc()
	default:
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return
	}
	m.policyLog = append(m.policyLog, a)
	m.publishLocked(a)
}

// PolicyEvents returns a copy of the policy rollout events seen so far.
func (m *Monitor) PolicyEvents() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alert, len(m.policyLog))
	copy(out, m.policyLog)
	return out
}

// replayLocked pushes already-recorded events matching the subscription
// into its channel: recorded alerts first, then policy rollout events, then
// synthetic AlertMatched events for completed requests.
func (m *Monitor) replayLocked(sub *subscriber) {
	for _, a := range m.alerts {
		if sub.filter.matches(a) {
			m.sendLocked(sub, a)
		}
	}
	for _, a := range m.policyLog {
		if sub.filter.matches(a) {
			m.sendLocked(sub, a)
		}
	}
	if sub.filter.ReqID != "" {
		if h, ok := m.matched[sub.filter.ReqID]; ok {
			a := Alert{Type: AlertMatched, ReqID: sub.filter.ReqID, Height: h}
			if sub.filter.matches(a) {
				m.sendLocked(sub, a)
			}
		}
		return
	}
	for reqID, h := range m.matched {
		a := Alert{Type: AlertMatched, ReqID: reqID, Height: h}
		if sub.filter.matches(a) {
			m.sendLocked(sub, a)
		}
	}
}

// sendLocked delivers one event to one subscriber without blocking,
// counting a drop when the buffer is full.
func (m *Monitor) sendLocked(sub *subscriber, a Alert) {
	select {
	case sub.ch <- a:
	default:
		sub.dropped++
		m.dropCnt.Inc()
	}
}

// publishLocked fans an event out to every matching subscriber.
func (m *Monitor) publishLocked(a Alert) {
	for _, sub := range m.subs {
		if sub.filter.matches(a) {
			m.sendLocked(sub, a)
		}
	}
}

// OnAlert registers a handler invoked (on the monitor goroutine) for every
// new alert. Prefer Subscribe for new code; OnAlert remains for callers
// that want inline, unbuffered delivery.
func (m *Monitor) OnAlert(fn func(Alert)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers = append(m.handlers, fn)
}

// TrackSubmission records the wall-clock submission time of a request's
// first log so detection latency can be measured end-to-end. The entry is
// removed when the request matches or alerts; stragglers are evicted
// oldest-first beyond maxTracked.
func (m *Monitor) TrackSubmission(reqID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tracked[reqID]; ok {
		return
	}
	m.tracked[reqID] = m.clk.Now()
	m.trackedQ = append(m.trackedQ, reqID)
	if len(m.trackedQ) > 2*maxTracked {
		// Most queue entries settle (match/alert) long before eviction;
		// compact the settled ones out so the queue is bounded too.
		live := m.trackedQ[:0]
		for _, id := range m.trackedQ {
			if _, ok := m.tracked[id]; ok {
				live = append(live, id)
			}
		}
		m.trackedQ = live
	}
	for len(m.tracked) > maxTracked && len(m.trackedQ) > 0 {
		old := m.trackedQ[0]
		m.trackedQ = m.trackedQ[1:]
		delete(m.tracked, old)
	}
}

// untrackLocked removes a settled request from the latency tracker. The
// eviction queue is left to age out naturally (deleting from the map is
// what bounds memory; the queue only holds strings already submitted).
func (m *Monitor) untrackLocked(reqID string) {
	delete(m.tracked, reqID)
}

func (m *Monitor) handleEvent(contractName, eventType string, payload []byte, height uint64) {
	if contractName != ContractName {
		return
	}
	switch eventType {
	case EventLogStored:
		m.logsSeen.Inc()
		if tr := m.tracer.Load(); tr != nil {
			if traceID, reqID := traceEventRecord(payload); traceID != "" {
				m.mu.Lock()
				t0, ok := m.tracked[reqID]
				m.mu.Unlock()
				if ok {
					// Submission-to-block-inclusion: how long the record
					// waited to be anchored by the chain.
					tr.Span(traceID, trace.StageChainAnchor, t0, m.clk.Since(t0))
				}
			}
		}
	case EventMatched:
		var body struct {
			ReqID  string `json:"reqId"`
			Height uint64 `json:"height"`
		}
		if err := json.Unmarshal(payload, &body); err != nil {
			return
		}
		m.mu.Lock()
		if _, seen := m.matched[body.ReqID]; seen {
			// Chain events are delivered at-least-once (reorgs re-deliver);
			// completions are published to subscribers exactly once.
			m.mu.Unlock()
			return
		}
		m.matched[body.ReqID] = height
		t0, hadT0 := m.tracked[body.ReqID]
		m.untrackLocked(body.ReqID)
		m.publishLocked(Alert{Type: AlertMatched, ReqID: body.ReqID, Height: height})
		m.mu.Unlock()
		m.matchedCnt.Inc()
		if hadT0 {
			m.tracer.Load().Span(body.ReqID, trace.StageMonitorMatch, t0, m.clk.Since(t0))
		}
	case EventAlert:
		a, err := DecodeAlert(payload)
		if err != nil {
			return
		}
		key := a.ReqID + "|" + string(a.Type)
		m.mu.Lock()
		if m.alertKeys[key] {
			m.mu.Unlock()
			return
		}
		m.alertKeys[key] = true
		m.alerts = append(m.alerts, a)
		m.byType[a.Type]++
		if t0, ok := m.tracked[a.ReqID]; ok {
			m.latency.ObserveDuration(m.clk.Since(t0))
			m.untrackLocked(a.ReqID)
			// Detection latency doubles as the monitor.alert span: first
			// probe submission to the alert surfacing off-chain.
			m.tracer.Load().Span(a.ReqID, trace.StageMonitorAlert, t0, m.clk.Since(t0))
		}
		handlers := make([]func(Alert), len(m.handlers))
		copy(handlers, m.handlers)
		m.publishLocked(a)
		m.mu.Unlock()
		m.alertsSeen.Inc()
		for _, fn := range handlers {
			fn(a)
		}
	}
}

// WaitForAlert blocks until an alert of the given type is seen for reqID.
func (m *Monitor) WaitForAlert(ctx context.Context, reqID string, t AlertType) (Alert, error) {
	ch, cancel := m.Subscribe(ctx, AlertFilter{
		ReqID: reqID, Types: []AlertType{t}, Replay: true, Buffer: 1,
	})
	defer cancel()
	select {
	case a, ok := <-ch:
		if !ok {
			break
		}
		return a, nil
	case <-m.stop:
	}
	if err := ctx.Err(); err != nil {
		return Alert{}, fmt.Errorf("core: wait for %s on %s: %w", t, reqID, err)
	}
	return Alert{}, fmt.Errorf("core: wait for %s on %s: monitor stopped", t, reqID)
}

// WaitForMatched blocks until reqID completes cleanly.
func (m *Monitor) WaitForMatched(ctx context.Context, reqID string) error {
	ch, cancel := m.Subscribe(ctx, AlertFilter{
		ReqID: reqID, Types: []AlertType{AlertMatched}, Replay: true, Buffer: 1,
	})
	defer cancel()
	select {
	case _, ok := <-ch:
		if ok {
			return nil
		}
	case <-m.stop:
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: wait for matched %s: %w", reqID, err)
	}
	return fmt.Errorf("core: wait for matched %s: monitor stopped", reqID)
}

// Alerts returns a copy of all alerts seen so far.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// AlertsFor returns the alerts recorded for one request.
func (m *Monitor) AlertsFor(reqID string) []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Alert
	for _, a := range m.alerts {
		if a.ReqID == reqID {
			out = append(out, a)
		}
	}
	return out
}

// Matched reports whether a request completed cleanly, and at what height.
func (m *Monitor) Matched(reqID string) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.matched[reqID]
	return h, ok
}

// DetectionLatency exports the detection-latency distribution in a form a
// Prometheus histogram can be rendered from (milliseconds).
func (m *Monitor) DetectionLatency() metrics.HistExport { return m.latency.Export() }

// Stats snapshots the monitor counters.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	byType := make(map[AlertType]int64, len(m.byType))
	for k, v := range m.byType {
		byType[k] = v
	}
	tracked := len(m.tracked)
	subscribers := len(m.subs)
	m.mu.Unlock()
	return MonitorStats{
		LogsSeen:           m.logsSeen.Value(),
		AlertsSeen:         m.alertsSeen.Value(),
		Matched:            m.matchedCnt.Value(),
		AlertsByType:       byType,
		DetectionLatencyMs: m.latency.Snapshot(),
		Tracked:            tracked,
		Subscribers:        subscribers,
		StreamDropped:      m.dropCnt.Value(),
		PolicyActivations:  m.policyActs.Value(),
		PolicyRejections:   m.policyRejs.Value(),
	}
}
