package attack

import (
	"math"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/idgen"
)

// ForgeLogResult reports the outcome of an outsider forgery attempt (A8).
type ForgeLogResult struct {
	// Rejected is true when the chain refused the transaction — the
	// desired outcome.
	Rejected bool
	// Err is the rejection error.
	Err error
}

// AttemptLogForgery simulates attack A8: an outsider (an identity not on
// the federation allowlist) fabricates a log record and tries to submit it.
// The permissioned chain must reject it at the signature gate.
func AttemptLogForgery(node *blockchain.Node, reqID string) ForgeLogResult {
	outsider, err := crypto.NewIdentity("outsider")
	if err != nil {
		return ForgeLogResult{Rejected: false, Err: err}
	}
	rec := core.LogRecord{
		Kind:      core.KindPEPRequest,
		ReqID:     reqID,
		Tenant:    "tenant-1",
		Agent:     "forged-agent",
		ReqDigest: crypto.Sum([]byte("forged request")),
	}
	tx, err := blockchain.NewTransaction(outsider, 1, contract.Call{
		Contract: core.ContractName, Method: core.MethodLog, Args: rec.Encode(),
	})
	if err != nil {
		return ForgeLogResult{Rejected: false, Err: err}
	}
	if err := node.SubmitTx(tx); err != nil {
		return ForgeLogResult{Rejected: true, Err: err}
	}
	return ForgeLogResult{Rejected: false}
}

// RewriteProbability computes the probability that an attacker controlling
// fraction q of the federation hash power rewrites a log entry buried under
// z confirmations — Nakamoto's catch-up analysis [5], which the paper's
// §III Log Size discussion invokes when warning that "a possibly
// lightweight PoW ... does not ensure strong integrity guarantees".
func RewriteProbability(q float64, z int) float64 {
	if q >= 0.5 {
		return 1
	}
	if z <= 0 {
		return 1
	}
	p := 1 - q
	lambda := float64(z) * q / p
	sum := 1.0
	for k := 0; k <= z; k++ {
		poisson := math.Exp(-lambda)
		for i := 1; i <= k; i++ {
			poisson *= lambda / float64(i)
		}
		sum -= poisson * (1 - math.Pow(q/p, float64(z-k)))
	}
	if sum < 0 {
		return 0
	}
	return sum
}

// SimulateRewriteRace estimates the rewrite probability by Monte Carlo on
// the actual two-phase race: (1) while the honest chain accumulates the z
// confirmation blocks, the attacker mines privately — each block in this
// period is the attacker's with probability q; (2) from the resulting
// deficit the race continues as a random walk, and the attacker wins on
// reaching parity (he then publishes the longer secret branch). A deficit
// beyond z+80 is counted as a loss (the win probability from there is
// below (q/p)^80). The analytic formula approximates phase 1 with a
// Poisson; the exact race simulated here differs from it by well under a
// percentage point for practical parameters.
func SimulateRewriteRace(q float64, z int, trials int, seed uint64) float64 {
	if trials <= 0 {
		trials = 1000
	}
	if q >= 0.5 {
		return 1
	}
	rng := idgen.NewRand(seed)
	wins := 0
	for t := 0; t < trials; t++ {
		// Phase 1: attacker head start while z honest blocks confirm.
		attacker := 0
		for honest := 0; honest < z; {
			if rng.Float64() < q {
				attacker++
			} else {
				honest++
			}
		}
		deficit := z - attacker
		if deficit <= 0 {
			wins++
			continue
		}
		// Phase 2: gambler's ruin from the remaining deficit.
		for deficit > 0 && deficit <= z+80 {
			if rng.Float64() < q {
				deficit--
			} else {
				deficit++
			}
		}
		if deficit <= 0 {
			wins++
		}
	}
	return float64(wins) / float64(trials)
}
