package core

import (
	"encoding/json"
	"fmt"
	"strconv"

	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/merkle"
)

// MaxLogBatch bounds how many records one batch transaction may anchor. It
// is a validation limit all replicas share: a hostile batch cannot force a
// replica to hash an unbounded leaf set.
const MaxLogBatch = 256

// LogBatch is the argument of MethodLogBatch: one flush window of probe
// records anchored under a single Merkle root. The LI signs the batch once
// instead of once per record, so a window of N observations costs one
// transaction, one signature and one nonce instead of N of each — the
// contract recomputes the root from the records and rejects any mismatch,
// so the anchoring is exactly as binding as N individual transactions.
type LogBatch struct {
	Root    crypto.Digest `json:"root"`
	Records []LogRecord   `json:"records"`
}

// NewLogBatch builds a batch over the given records, computing the Merkle
// root over their canonical encodings.
func NewLogBatch(recs []LogRecord) (LogBatch, error) {
	if len(recs) == 0 {
		return LogBatch{}, fmt.Errorf("core: empty log batch")
	}
	if len(recs) > MaxLogBatch {
		return LogBatch{}, fmt.Errorf("core: batch of %d records exceeds limit %d", len(recs), MaxLogBatch)
	}
	leaves := make([][]byte, len(recs))
	for i := range recs {
		leaves[i] = recs[i].Encode()
	}
	tree, err := merkle.Build(leaves)
	if err != nil {
		return LogBatch{}, err
	}
	return LogBatch{Root: tree.Root(), Records: recs}, nil
}

// Encode serialises the batch.
func (lb LogBatch) Encode() []byte {
	b, err := json.Marshal(lb)
	if err != nil {
		panic(fmt.Sprintf("core: encode log batch: %v", err))
	}
	return b
}

// DecodeLogBatch parses a batch.
func DecodeLogBatch(data []byte) (LogBatch, error) {
	var lb LogBatch
	if err := json.Unmarshal(data, &lb); err != nil {
		return LogBatch{}, fmt.Errorf("core: decode log batch: %w", err)
	}
	return lb, nil
}

// BatchedRecord is the LogStored event payload for a batch-anchored record:
// the record itself plus the membership proof tying it to the anchored
// root. Off-chain consumers (the analyser foremost) verify the proof against
// the on-chain anchor before trusting the record, so an event forger cannot
// inject observations the chain never committed to.
type BatchedRecord struct {
	Record LogRecord     `json:"record"`
	Root   crypto.Digest `json:"root"`
	Index  int           `json:"index"`
	Proof  merkle.Proof  `json:"proof"`
}

// Encode serialises the envelope.
func (br BatchedRecord) Encode() []byte {
	b, err := json.Marshal(br)
	if err != nil {
		panic(fmt.Sprintf("core: encode batched record: %v", err))
	}
	return b
}

// DecodeBatchedRecord parses a batched-record envelope. Payloads that are
// plain records (or anything else) fail: the envelope must carry a root and
// a record.
func DecodeBatchedRecord(data []byte) (BatchedRecord, error) {
	var br BatchedRecord
	if err := json.Unmarshal(data, &br); err != nil {
		return BatchedRecord{}, fmt.Errorf("core: decode batched record: %w", err)
	}
	if br.Root.IsZero() || br.Record.ReqID == "" {
		return BatchedRecord{}, fmt.Errorf("core: payload is not a batched record")
	}
	return br, nil
}

// VerifyInclusion checks the record's membership under the envelope's root.
func (br BatchedRecord) VerifyInclusion() bool {
	return merkle.Verify(br.Root, br.Record.Encode(), br.Proof)
}

// batchKey is the state key anchoring one batch root.
func batchKey(root crypto.Digest) string { return "batch/" + root.String() }

// ReadBatchAnchor reports whether root was anchored by a committed batch
// transaction, and how many records it covered.
func ReadBatchAnchor(st contract.StateDB, root crypto.Digest) (int, bool) {
	b, ok := st.Get(batchKey(root))
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(string(b))
	if err != nil {
		return 0, false
	}
	return n, true
}
