// Command app is a wiring layer: importing obs here is the design.
package main

import "fix/internal/obs"

func main() { _ = obs.NewRegistry() }
