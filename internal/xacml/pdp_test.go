package xacml

import (
	"errors"
	"testing"
)

func samplePolicySet() *PolicySet {
	// Doctors may read records; everyone else is denied.
	read := TargetMatching(CatAction, "op", String("read"))
	doctor := &Rule{ID: "doctor-read", Effect: EffectPermit,
		Target: roleTarget("doctor"),
		Condition: &CmpExpr{Op: CmpEq,
			Attr: Designator{Cat: CatAction, ID: "op"}, Lit: String("read")},
	}
	fallback := &Rule{ID: "default-deny", Effect: EffectDeny}
	pol := &Policy{ID: "records", Version: "1", Target: read, Alg: FirstApplicable,
		Rules: []*Rule{doctor, fallback}}
	return &PolicySet{ID: "root", Version: "v1", Alg: DenyUnlessPermit,
		Items: []PolicyItem{{Policy: pol}}}
}

func readReq(role string) *Request {
	return NewRequest("q").
		Add(CatSubject, "role", String(role)).
		Add(CatAction, "op", String("read"))
}

func TestPDPEvaluate(t *testing.T) {
	pdp := NewPDP(samplePolicySet())
	res, err := pdp.Evaluate(readReq("doctor"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Permit {
		t.Fatalf("doctor read = %s", res.Decision)
	}
	if res.PolicyID != "root" || res.PolicyVersion != "v1" || res.PolicyDigest.IsZero() {
		t.Fatalf("result metadata: %+v", res)
	}
	res2, _ := pdp.Evaluate(readReq("intern"))
	if res2.Decision != Deny {
		t.Fatalf("intern read = %s", res2.Decision)
	}
	if pdp.Evaluations() != 2 {
		t.Fatalf("evaluations = %d", pdp.Evaluations())
	}
}

func TestPDPNoPolicy(t *testing.T) {
	pdp := NewPDP(nil)
	if _, err := pdp.Evaluate(readReq("doctor")); !errors.Is(err, ErrNoPolicy) {
		t.Fatalf("got %v", err)
	}
	if _, _, err := pdp.Policy(); !errors.Is(err, ErrNoPolicy) {
		t.Fatalf("got %v", err)
	}
}

func TestPDPLoadIsolatesCallerMutation(t *testing.T) {
	ps := samplePolicySet()
	pdp := NewPDP(ps)
	before, _ := pdp.Evaluate(readReq("doctor"))
	// Caller mutates their copy after loading; PDP must be unaffected.
	ps.Items[0].Policy.Rules[0].Effect = EffectDeny
	after, _ := pdp.Evaluate(readReq("doctor"))
	if before.Decision != after.Decision {
		t.Fatal("PDP affected by caller mutation after Load")
	}
}

func TestPDPHotSwap(t *testing.T) {
	pdp := NewPDP(samplePolicySet())
	res, _ := pdp.Evaluate(readReq("doctor"))
	if res.Decision != Permit {
		t.Fatal("precondition failed")
	}
	// New policy version denies everything.
	v2 := &PolicySet{ID: "root", Version: "v2", Alg: PermitUnlessDeny,
		Items: []PolicyItem{{Policy: &Policy{ID: "deny-all", Version: "1", Alg: FirstApplicable,
			Rules: []*Rule{{ID: "d", Effect: EffectDeny}}}}}}
	pdp.Load(v2)
	res2, _ := pdp.Evaluate(readReq("doctor"))
	if res2.Decision != Deny || res2.PolicyVersion != "v2" {
		t.Fatalf("after swap: %+v", res2)
	}
	if res.PolicyDigest == res2.PolicyDigest {
		t.Fatal("digest did not change with policy version")
	}
}

func TestResultDigestCoversDecision(t *testing.T) {
	pdp := NewPDP(samplePolicySet())
	res, _ := pdp.Evaluate(readReq("doctor"))
	tampered := res
	tampered.Decision = Deny
	if res.Digest() == tampered.Digest() {
		t.Fatal("digest does not cover decision")
	}
	t2 := res
	t2.PolicyVersion = "vX"
	if res.Digest() == t2.Digest() {
		t.Fatal("digest does not cover policy version")
	}
}

func TestResultEncodeDecodeRoundTrip(t *testing.T) {
	pdp := NewPDP(samplePolicySet())
	res, _ := pdp.Evaluate(readReq("doctor"))
	back, err := DecodeResult(res.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Digest() != res.Digest() {
		t.Fatal("round trip changed digest")
	}
	if _, err := DecodeResult([]byte("{")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestPRPPublishActivateHistory(t *testing.T) {
	prp := NewPRP()
	if _, _, err := prp.Active(); !errors.Is(err, ErrNoPolicy) {
		t.Fatalf("empty PRP: %v", err)
	}
	v1 := samplePolicySet()
	d1, err := prp.Publish(v1)
	if err != nil || d1.IsZero() {
		t.Fatalf("publish: %v", err)
	}
	v2 := samplePolicySet()
	v2.Version = "v2"
	if _, err := prp.Publish(v2); err != nil {
		t.Fatal(err)
	}
	// Latest publication is active.
	_, ver, err := prp.Active()
	if err != nil || ver != "v2" {
		t.Fatalf("active = %q, %v", ver, err)
	}
	// Duplicate version rejected.
	if _, err := prp.Publish(v1); err == nil {
		t.Fatal("duplicate version accepted")
	}
	// Rollback.
	if err := prp.Activate("v1"); err != nil {
		t.Fatal(err)
	}
	_, ver, _ = prp.Active()
	if ver != "v1" {
		t.Fatalf("after rollback active = %q", ver)
	}
	if err := prp.Activate("ghost"); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("got %v", err)
	}
	if _, err := prp.Version("ghost"); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("got %v", err)
	}
	hist := prp.History()
	if len(hist) != 2 || hist[0] != "v1" || hist[1] != "v2" {
		t.Fatalf("history = %v", hist)
	}
}

func TestPRPPublishNeedsVersion(t *testing.T) {
	prp := NewPRP()
	ps := samplePolicySet()
	ps.Version = ""
	if _, err := prp.Publish(ps); err == nil {
		t.Fatal("versionless publish accepted")
	}
}

func TestPRPStorageIsolation(t *testing.T) {
	prp := NewPRP()
	ps := samplePolicySet()
	if _, err := prp.Publish(ps); err != nil {
		t.Fatal(err)
	}
	ps.Items[0].Policy.Rules[0].Effect = EffectDeny // caller mutates after publish
	stored, _, err := prp.Active()
	if err != nil {
		t.Fatal(err)
	}
	if stored.Items[0].Policy.Rules[0].Effect == EffectDeny {
		t.Fatal("PRP stored aliased policy")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(5, DefaultGenParams())
	b := NewGenerator(5, DefaultGenParams())
	psA := a.PolicySet("x", "1")
	psB := b.PolicySet("x", "1")
	if psA.Digest() != psB.Digest() {
		t.Fatal("generator not deterministic")
	}
	rA := a.Request("r")
	rB := b.Request("r")
	if rA.Digest() != rB.Digest() {
		t.Fatal("request generator not deterministic")
	}
}

func TestGeneratedPoliciesEvaluateWithoutPanic(t *testing.T) {
	gen := NewGenerator(99, GenParams{Rules: 8, Policies: 4, Attrs: 4, ValuesPerAttr: 5, MaxCondDepth: 3, MustBePresentRate: 0.2})
	ps := gen.PolicySet("root", "1")
	pdp := NewPDP(ps)
	counts := map[Decision]int{}
	for i := 0; i < 500; i++ {
		res, err := pdp.Evaluate(gen.Request("r"))
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Decision]++
	}
	// A healthy random policy shape yields a mix of outcomes.
	if len(counts) < 2 {
		t.Fatalf("decision distribution suspiciously uniform: %v", counts)
	}
}
