// Package pap implements the off-chain half of the DRAMS Policy
// Administration Point: runtime policy administration for a whole cloud
// federation, with the private blockchain as the tamper-evident replication
// and ordering layer.
//
// The paper's architecture (§II) assumes the PAP publishes policy versions
// whose digests every member can verify (the trust anchor of check M6).
// This package makes that dynamic:
//
//   - Admin signs PolicyUpdate transactions — the full serialized
//     xacml.PolicySet, its digest and a height-gated activation — executed
//     by the on-chain core.PolicyContract (which lives in package core so
//     the log-match contract can cross-read its state for M6);
//   - Watcher runs on every federation member: it tails its node's chain
//     events, pre-stages and digest-verifies announced versions, and
//     atomically hot-reloads the local PDP (and PRP view) the moment the
//     chain reaches the activation height — every member flips at the same
//     block height, with the decision cache invalidated in the same step.
//
// Failure modes are first-class: a version whose bytes do not verify
// against the anchored digest, or do not parse, is never activated locally
// and surfaces as a PolicyRejected event; a conflicting re-anchor of an
// existing version is flagged on-chain (PolicyConflict) and reported by the
// Admin as an error.
package pap

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/metrics"
	"drams/internal/xacml"
)

// ErrPolicyConflict is returned by Admin.UpdatePolicy when the version is
// already anchored on-chain with a different digest.
var ErrPolicyConflict = errors.New("pap: policy version already anchored with a different digest")

// UpdateOptions shape one policy update / rollback.
type UpdateOptions struct {
	// ActivateDelta schedules activation this many blocks after the
	// current chain height (0 = at the block that includes the
	// transaction). Larger deltas give slow members time to pre-stage the
	// parsed set before the fleet-wide flip.
	ActivateDelta uint64
	// ActivateHeight, when non-zero, overrides ActivateDelta with an
	// absolute chain height.
	ActivateHeight uint64
	// Confirmations to wait for after the transaction is mined (default 1).
	Confirmations uint64
}

// Proposal reports a submitted policy update.
type Proposal struct {
	Version string
	Digest  crypto.Digest
	TxID    crypto.Digest
	// ActivateHeight is the height the fleet will flip at.
	ActivateHeight uint64
}

// AdminStats snapshot.
type AdminStats struct {
	UpdatesSubmitted   int64
	RollbacksSubmitted int64
	Conflicts          int64
}

// Admin publishes policy updates on behalf of the federation's PAP
// identity. Safe for concurrent use; updates from one Admin are ordered by
// its transaction nonces.
type Admin struct {
	node   *blockchain.Node
	sender *blockchain.Sender

	updates   metrics.Counter
	rollbacks metrics.Counter
	conflicts metrics.Counter
}

// NewAdmin binds the PAP identity to a chain node. Any member's node works:
// the update is a normal transaction and reaches the block producers by
// gossip, so an edge process can administer policies for the whole fleet.
func NewAdmin(node *blockchain.Node, pap *crypto.Identity) *Admin {
	return &Admin{node: node, sender: blockchain.NewSender(node, pap)}
}

// resolveHeight turns the options into the absolute activation height.
func (a *Admin) resolveHeight(opts UpdateOptions) uint64 {
	if opts.ActivateHeight > 0 {
		return opts.ActivateHeight
	}
	return a.node.Chain().Height() + opts.ActivateDelta
}

// UpdatePolicy signs and submits ps as a new on-chain policy version,
// waiting until the transaction is mined (and confirmed per opts). The
// returned Proposal carries the activation height every member will flip
// at; use a Watcher (or Deployment.Admin's wrapper) to observe the local
// flip itself.
func (a *Admin) UpdatePolicy(ctx context.Context, ps *xacml.PolicySet, opts UpdateOptions) (Proposal, error) {
	if ps == nil || ps.Version == "" {
		return Proposal{}, errors.New("pap: policy set with a version is required")
	}
	blob := ps.Encode()
	pu := core.PolicyUpdate{
		Version:        ps.Version,
		Policy:         blob,
		Digest:         crypto.Sum(blob),
		ActivateHeight: a.resolveHeight(opts),
	}
	rec, err := a.submit(ctx, core.MethodPolicyUpdate, pu.Encode(), opts)
	if err != nil {
		return Proposal{}, err
	}
	for _, ev := range rec.Events {
		if ev.Type == core.EventPolicyConflict {
			a.conflicts.Inc()
			return Proposal{}, fmt.Errorf("%w: version %q", ErrPolicyConflict, ps.Version)
		}
	}
	a.updates.Inc()
	return Proposal{Version: ps.Version, Digest: pu.Digest, TxID: rec.TxID, ActivateHeight: pu.ActivateHeight}, nil
}

// Rollback re-activates an already-anchored version (height-gated like an
// update; the policy bytes do not travel again).
func (a *Admin) Rollback(ctx context.Context, version string, opts UpdateOptions) (Proposal, error) {
	if version == "" {
		return Proposal{}, errors.New("pap: rollback needs a version")
	}
	args := core.PolicyActivateArgs{Version: version, ActivateHeight: a.resolveHeight(opts)}
	enc, err := json.Marshal(args)
	if err != nil {
		return Proposal{}, err
	}
	rec, err := a.submit(ctx, core.MethodPolicyActivate, enc, opts)
	if err != nil {
		return Proposal{}, err
	}
	digest, _ := a.PolicyDigest(version)
	a.rollbacks.Inc()
	return Proposal{Version: version, Digest: digest, TxID: rec.TxID, ActivateHeight: args.ActivateHeight}, nil
}

func (a *Admin) submit(ctx context.Context, method string, args []byte, opts UpdateOptions) (blockchain.Receipt, error) {
	// The PAP identity may be driven from several processes (any member
	// can administer); re-reading the confirmed nonce narrows the window
	// for collisions with updates published elsewhere.
	a.sender.Resync()
	conf := opts.Confirmations
	if conf == 0 {
		conf = 1
	}
	rec, err := a.sender.SendAndWait(ctx, contract.Call{
		Contract: core.PolicyContractName, Method: method, Args: args,
	}, conf)
	if err != nil {
		return blockchain.Receipt{}, fmt.Errorf("pap: submit %s: %w", method, err)
	}
	if !rec.OK {
		return blockchain.Receipt{}, fmt.Errorf("pap: %s rejected on-chain: %s", method, rec.Err)
	}
	return rec, nil
}

// ActivePolicy reads the chain's current active version and digest.
func (a *Admin) ActivePolicy() (version string, digest crypto.Digest, ok bool) {
	a.node.Chain().ReadState(core.PolicyContractName, func(st contract.StateDB) {
		version, digest, ok = core.ReadActivePolicy(st)
	})
	return
}

// PolicyDigest reads the anchored digest of a version.
func (a *Admin) PolicyDigest(version string) (digest crypto.Digest, ok bool) {
	a.node.Chain().ReadState(core.PolicyContractName, func(st contract.StateDB) {
		digest, ok = core.ReadPolicyDigest(st, version)
	})
	return
}

// PolicySet fetches and parses the stored policy bytes of a version.
func (a *Admin) PolicySet(version string) (*xacml.PolicySet, error) {
	var blob []byte
	a.node.Chain().ReadState(core.PolicyContractName, func(st contract.StateDB) {
		blob, _ = core.ReadPolicyBlob(st, version)
	})
	if blob == nil {
		return nil, fmt.Errorf("pap: version %q is not anchored", version)
	}
	return xacml.DecodePolicySet(blob)
}

// History returns the on-chain activation history, oldest first.
func (a *Admin) History() []core.PolicyActivation {
	var out []core.PolicyActivation
	a.node.Chain().ReadState(core.PolicyContractName, func(st contract.StateDB) {
		out = core.ReadPolicyHistory(st)
	})
	return out
}

// Stats snapshots the admin counters.
func (a *Admin) Stats() AdminStats {
	return AdminStats{
		UpdatesSubmitted:   a.updates.Value(),
		RollbacksSubmitted: a.rollbacks.Value(),
		Conflicts:          a.conflicts.Value(),
	}
}
