package blockchain

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
)

func TestTransactionSignVerify(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	reg := NewIdentityRegistry(alice.Public())
	tx, err := NewTransaction(alice, 1, putCall("k", "v"))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.VerifyTx(&tx); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionSignNameMismatch(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	tx := Transaction{From: "bob", Nonce: 1, Call: putCall("k", "v")}
	if err := tx.Sign(alice); err == nil {
		t.Fatal("signing with mismatched From accepted")
	}
}

func TestVerifyRejectsTamperedFields(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	reg := NewIdentityRegistry(alice.Public())
	base, _ := NewTransaction(alice, 1, putCall("k", "v"))

	cases := map[string]func(*Transaction){
		"nonce":     func(tx *Transaction) { tx.Nonce = 2 },
		"call":      func(tx *Transaction) { tx.Call = putCall("k", "EVIL") },
		"signature": func(tx *Transaction) { tx.Signature[0] ^= 1 },
		"pubkey":    func(tx *Transaction) { tx.PubKey[0] ^= 1 },
	}
	for name, mutate := range cases {
		tx := base
		tx.Signature = append([]byte(nil), base.Signature...)
		tx.PubKey = append([]byte(nil), base.PubKey...)
		mutate(&tx)
		if err := reg.VerifyTx(&tx); err == nil {
			t.Errorf("tampered %s accepted", name)
		}
	}
}

func TestVerifyUnknownSender(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	reg := NewIdentityRegistry() // empty allowlist
	tx, _ := NewTransaction(alice, 1, putCall("k", "v"))
	if err := reg.VerifyTx(&tx); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("got %v", err)
	}
	reg.Add(alice.Public())
	if err := reg.VerifyTx(&tx); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 1 {
		t.Fatalf("len = %d", reg.Len())
	}
}

func TestTxIDUniqueness(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	tx1, _ := NewTransaction(alice, 1, putCall("k", "v"))
	tx2, _ := NewTransaction(alice, 2, putCall("k", "v"))
	tx3, _ := NewTransaction(alice, 1, putCall("k", "w"))
	if tx1.ID() == tx2.ID() || tx1.ID() == tx3.ID() {
		t.Fatal("distinct txs share IDs")
	}
	// Same inputs → same ID (ed25519 is deterministic).
	tx1b, _ := NewTransaction(alice, 1, putCall("k", "v"))
	if tx1.ID() != tx1b.ID() {
		t.Fatal("identical tx produced different IDs")
	}
}

func TestHeaderHashCoversAllFields(t *testing.T) {
	base := BlockHeader{Height: 1, Difficulty: 4, TimeUnixNano: 12345, Miner: "m", Nonce: 7}
	h := base.Hash()
	muts := []func(*BlockHeader){
		func(x *BlockHeader) { x.Height++ },
		func(x *BlockHeader) { x.PrevHash[3] ^= 1 },
		func(x *BlockHeader) { x.MerkleRoot[3] ^= 1 },
		func(x *BlockHeader) { x.TimeUnixNano++ },
		func(x *BlockHeader) { x.Difficulty++ },
		func(x *BlockHeader) { x.Nonce++ },
		func(x *BlockHeader) { x.Miner = "x" },
	}
	for i, m := range muts {
		hh := base
		m(&hh)
		if hh.Hash() == h {
			t.Errorf("mutation %d did not change header hash", i)
		}
	}
}

func TestBlockEncodeDecodeRoundTrip(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	tx, _ := NewTransaction(alice, 1, putCall("k", "v"))
	b := &Block{
		Header: BlockHeader{Height: 9, Difficulty: 4, Miner: "m", TimeUnixNano: 55, Nonce: 3,
			MerkleRoot: ComputeMerkleRoot([]Transaction{tx})},
		Txs: []Transaction{tx},
	}
	dec, err := DecodeBlock(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hash() != b.Hash() {
		t.Fatal("round trip changed block hash")
	}
	if len(dec.Txs) != 1 || dec.Txs[0].ID() != tx.ID() {
		t.Fatal("round trip changed txs")
	}
}

func TestTxEncodeDecodeRoundTrip(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	tx, _ := NewTransaction(alice, 7, putCall("a", "b"))
	dec, err := DecodeTx(EncodeTx(tx))
	if err != nil {
		t.Fatal(err)
	}
	if dec.ID() != tx.ID() {
		t.Fatal("tx round trip changed ID")
	}
	if _, err := DecodeTx([]byte("{")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeBlock([]byte("nope")); err == nil {
		t.Fatal("garbage block decoded")
	}
}

func TestComputeMerkleRootEmpty(t *testing.T) {
	if !ComputeMerkleRoot(nil).IsZero() {
		t.Fatal("empty block root should be zero")
	}
}

func TestMerkleRootOrderSensitive(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	tx1, _ := NewTransaction(alice, 1, putCall("a", "1"))
	tx2, _ := NewTransaction(alice, 2, putCall("b", "2"))
	r1 := ComputeMerkleRoot([]Transaction{tx1, tx2})
	r2 := ComputeMerkleRoot([]Transaction{tx2, tx1})
	if r1 == r2 {
		t.Fatal("tx order should change merkle root")
	}
}

func TestExpectedAttempts(t *testing.T) {
	if got := ExpectedAttemptsForDifficulty(10); got != 1024 {
		t.Fatalf("got %v", got)
	}
}

func TestMeetsDifficultyProperty(t *testing.T) {
	// Every mined header at difficulty d must have ≥ d leading zero bits.
	if err := quick.Check(func(height uint64, miner string) bool {
		h := BlockHeader{Height: height % 1000, Difficulty: 6, Miner: miner}
		b := Block{Header: h}
		if !Mine(context.Background(), &b, height) {
			return false
		}
		hash := b.Header.Hash()
		return hash.LeadingZeroBits() >= 6
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
