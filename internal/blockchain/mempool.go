package blockchain

import (
	"fmt"
	"sort"
	"sync"

	"drams/internal/crypto"
)

// Mempool holds pending transactions ordered by (sender, nonce) so block
// assembly can pick executable sequences — a transaction is only included
// once all lower nonces of its sender are confirmed or included first.
type Mempool struct {
	mu       sync.Mutex
	bySender map[string]map[uint64]Transaction
	byID     map[crypto.Digest]struct{}
	size     int
	maxSize  int
}

// NewMempool returns a mempool bounded to maxSize transactions (10 000 when
// maxSize <= 0).
func NewMempool(maxSize int) *Mempool {
	if maxSize <= 0 {
		maxSize = 10000
	}
	return &Mempool{
		bySender: make(map[string]map[uint64]Transaction),
		byID:     make(map[crypto.Digest]struct{}),
		maxSize:  maxSize,
	}
}

// Add inserts a transaction. Duplicates (by ID, or same sender+nonce) return
// ErrKnownTx; a full pool returns an error.
func (m *Mempool) Add(tx Transaction) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.addLocked(tx)
}

// AddBatch inserts a batch of transactions under one lock acquisition and
// returns one error per transaction, index-aligned (nil = admitted). Used by
// the node's batched gossip-admission loop.
func (m *Mempool) AddBatch(txs []Transaction) []error {
	errs := make([]error, len(txs))
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range txs {
		errs[i] = m.addLocked(txs[i])
	}
	return errs
}

func (m *Mempool) addLocked(tx Transaction) error {
	id := tx.ID()
	if _, ok := m.byID[id]; ok {
		return ErrKnownTx
	}
	if m.size >= m.maxSize {
		return fmt.Errorf("blockchain: mempool full (%d)", m.maxSize)
	}
	slot, ok := m.bySender[tx.From]
	if !ok {
		slot = make(map[uint64]Transaction)
		m.bySender[tx.From] = slot
	}
	if _, ok := slot[tx.Nonce]; ok {
		return fmt.Errorf("%w: sender %q nonce %d", ErrKnownTx, tx.From, tx.Nonce)
	}
	slot[tx.Nonce] = tx
	m.byID[id] = struct{}{}
	m.size++
	return nil
}

// Has reports whether the transaction ID is pending.
func (m *Mempool) Has(id crypto.Digest) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.byID[id]
	return ok
}

// Len returns the number of pending transactions.
func (m *Mempool) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.size
}

// Collect returns up to max transactions executable on top of the given
// confirmed per-sender nonces, in a deterministic (sender, nonce) order. The
// transactions stay in the pool until PruneConfirmed removes them.
func (m *Mempool) Collect(max int, confirmed map[string]uint64) []Transaction {
	m.mu.Lock()
	defer m.mu.Unlock()
	senders := make([]string, 0, len(m.bySender))
	for s := range m.bySender {
		senders = append(senders, s)
	}
	sort.Strings(senders)
	var out []Transaction
	for _, s := range senders {
		next := confirmed[s] + 1
		for {
			tx, ok := m.bySender[s][next]
			if !ok || len(out) >= max {
				break
			}
			out = append(out, tx)
			next++
		}
		if len(out) >= max {
			break
		}
	}
	return out
}

// All returns up to max pending transactions in deterministic (sender,
// nonce) order; used for periodic rebroadcast after partitions.
func (m *Mempool) All(max int) []Transaction {
	m.mu.Lock()
	defer m.mu.Unlock()
	senders := make([]string, 0, len(m.bySender))
	for s := range m.bySender {
		senders = append(senders, s)
	}
	sort.Strings(senders)
	var out []Transaction
	for _, s := range senders {
		nonces := make([]uint64, 0, len(m.bySender[s]))
		for n := range m.bySender[s] {
			nonces = append(nonces, n)
		}
		sort.Slice(nonces, func(i, j int) bool { return nonces[i] < nonces[j] })
		for _, n := range nonces {
			if len(out) >= max {
				return out
			}
			out = append(out, m.bySender[s][n])
		}
	}
	return out
}

// PruneConfirmed drops every pending transaction whose nonce is already
// covered by the confirmed nonces (i.e. it executed on the best chain, or a
// competing transaction with the same nonce did).
func (m *Mempool) PruneConfirmed(confirmed map[string]uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for sender, txs := range m.bySender {
		limit := confirmed[sender]
		for nonce, tx := range txs {
			if nonce <= limit {
				delete(txs, nonce)
				delete(m.byID, tx.ID())
				m.size--
			}
		}
		if len(txs) == 0 {
			delete(m.bySender, sender)
		}
	}
}
