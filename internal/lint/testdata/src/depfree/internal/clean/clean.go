// Package clean is the zero-finding twin: a component importing a
// non-restricted stratum member, which is fine.
package clean

import "fix/internal/metrics"

// Component counts things.
type Component struct{ reg metrics.Registry }

// Touch bumps the counter.
func (c *Component) Touch() { c.reg.Inc() }
