package loadgen

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// fireFunc runs one iteration synchronously; i is the global iteration
// index (used for deterministic template/tenant picks).
type fireFunc func(i uint64)

// runExecutor dispatches on the executor type and blocks until the
// schedule is exhausted and every in-flight iteration returned (or ctx is
// cancelled). It owns all iteration accounting on the engine.
func runExecutor(ctx context.Context, spec ExecutorSpec, seed uint64, eng *engine, fire fireFunc) {
	if spec.Type == ExecLoopingVU {
		runClosedLoop(ctx, spec, eng, fire)
		return
	}
	runOpenLoop(ctx, spec, seed, eng, fire)
}

// rateAtOffset evaluates the arrival-rate profile at an offset from run
// start: constant for ExecConstantArrivalRate, piecewise-linear through
// the stages (starting at spec.Rate) for ExecRampingArrivalRate.
func rateAtOffset(spec ExecutorSpec, offset time.Duration) float64 {
	if spec.Type != ExecRampingArrivalRate {
		return spec.Rate
	}
	prev := spec.Rate
	var base time.Duration
	for _, st := range spec.Stages {
		d := st.Duration.D()
		if offset < base+d {
			frac := float64(offset-base) / float64(d)
			return prev + (st.Target-prev)*frac
		}
		prev = st.Target
		base += d
	}
	return prev
}

// runOpenLoop fires iterations on the arrival schedule regardless of
// in-flight completions. Arrivals that find every worker busy are counted
// as dropped — never queued (queueing would re-couple the schedule to
// service time, which is the coordinated-omission bug this executor
// exists to avoid) and never silently skipped.
func runOpenLoop(ctx context.Context, spec ExecutorSpec, seed uint64, eng *engine, fire fireFunc) {
	total := spec.totalDuration()
	sem := make(chan struct{}, spec.MaxWorkers)
	rng := rand.New(rand.NewSource(int64(seed)))
	start := time.Now()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}

	var wg sync.WaitGroup
	var offset time.Duration
	var i uint64
	for {
		r := rateAtOffset(spec, offset)
		if r <= 0 {
			// Dead zone of the profile: step forward until the rate
			// comes back.
			offset += 10 * time.Millisecond
			if offset >= total {
				break
			}
			continue
		}
		gapSec := 1 / r
		if spec.Poisson {
			gapSec = rng.ExpFloat64() / r
		}
		offset += time.Duration(gapSec * float64(time.Second))
		if offset >= total {
			break
		}
		// Sleep to the scheduled arrival. A late scheduler fires
		// immediately — arrivals are anchored to the run clock, not to
		// the previous iteration's completion.
		if wait := time.Until(start.Add(offset)); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				wg.Wait()
				return
			}
		} else if ctx.Err() != nil {
			wg.Wait()
			return
		}
		eng.recordStarted()
		idx := i
		i++
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				fire(idx)
			}()
		default:
			eng.recordDropped()
		}
	}
	wg.Wait()
}

// runClosedLoop runs VUs workers, each firing its next iteration only
// after the previous one returned — the coordinated-omission-prone
// baseline: a stalled backend stalls the schedule itself, so the stall is
// sampled at most once per VU.
func runClosedLoop(ctx context.Context, spec ExecutorSpec, eng *engine, fire fireFunc) {
	var deadline time.Time
	if d := spec.Duration.D(); d > 0 {
		deadline = time.Now().Add(d)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for vu := 0; vu < spec.VUs; vu++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if !deadline.IsZero() && !time.Now().Before(deadline) {
					return
				}
				n := next.Add(1)
				if spec.Iterations > 0 && n > spec.Iterations {
					return
				}
				eng.recordStarted()
				fire(uint64(n - 1))
			}
		}()
	}
	wg.Wait()
}
