package lint

import (
	"go/ast"
	"go/types"
)

// SeedPin enforces the PR 6 reproducibility contract: adversarial and
// chaos runs must replay bit-for-bit, so every netsim/attack
// configuration literal built in a test (and anywhere in the attack
// harness itself) pins its Seed field explicitly — and never derives it
// from time.Now(), which is the one way to make a failing chaos trial
// unreproducible exactly when its trace matters most.
type SeedPin struct {
	// SeededPkgs are the module-relative packages whose struct types carry
	// a Seed field under this contract.
	SeededPkgs []string
	// AlwaysPkgs are packages where the rule applies to non-test files too.
	AlwaysPkgs []string
}

// NewSeedPin returns the analyzer covering netsim and attack config types.
func NewSeedPin() *SeedPin {
	return &SeedPin{
		SeededPkgs: []string{"internal/netsim", "internal/attack"},
		AlwaysPkgs: []string{"internal/attack"},
	}
}

func (a *SeedPin) Name() string { return "seedpin" }

func (a *SeedPin) Doc() string {
	return "netsim/attack config literals in tests pin an explicit Seed not derived from time.Now() (PR 6)"
}

func (a *SeedPin) Run(p *Pass) {
	alwaysOn := matchAnyPath(p.PkgRel(), a.AlwaysPkgs)
	for _, f := range p.Files {
		if !alwaysOn && !p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[lit]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			rel, inMod := p.Rel(named.Obj().Pkg().Path())
			if !inMod || !matchAnyPath(rel, a.SeededPkgs) {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			seedIdx := -1
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i).Name() == "Seed" {
					seedIdx = i
					break
				}
			}
			if seedIdx < 0 {
				return true
			}
			a.checkLit(p, lit, named, seedIdx)
			return true
		})
	}
}

func (a *SeedPin) checkLit(p *Pass, lit *ast.CompositeLit, named *types.Named, seedIdx int) {
	var seedVal ast.Expr
	keyed := false
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			keyed = true
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Seed" {
				seedVal = kv.Value
			}
		} else if i == seedIdx {
			seedVal = elt // positional literal
		}
	}
	if seedVal == nil && (keyed || len(lit.Elts) == 0) {
		p.Reportf(lit.Pos(), "%s literal without an explicit Seed: chaos and attack runs must replay bit-for-bit, pin one", named.Obj().Name())
		return
	}
	if seedVal == nil {
		return
	}
	ast.Inspect(seedVal, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && isPkgFunc(p.Info, call, "time", "Now") {
			p.Reportf(call.Pos(), "Seed derived from time.Now(): a failing trial becomes unreproducible, pin a constant seed")
			return false
		}
		return true
	})
}
