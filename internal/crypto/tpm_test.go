package crypto

import (
	"errors"
	"testing"
)

func newTPM(t *testing.T) *SoftTPM {
	t.Helper()
	tpm, err := NewSoftTPM("test")
	if err != nil {
		t.Fatal(err)
	}
	return tpm
}

func TestTPMExtendChangesPCR(t *testing.T) {
	tpm := newTPM(t)
	before, err := tpm.PCR(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tpm.Extend(0, []byte("li-binary-v1")); err != nil {
		t.Fatal(err)
	}
	after, _ := tpm.PCR(0)
	if before == after {
		t.Fatal("Extend did not change PCR")
	}
}

func TestTPMExtendOrderMatters(t *testing.T) {
	a, b := newTPM(t), newTPM(t)
	_ = a.Extend(0, []byte("x"))
	_ = a.Extend(0, []byte("y"))
	_ = b.Extend(0, []byte("y"))
	_ = b.Extend(0, []byte("x"))
	pa, _ := a.PCR(0)
	pb, _ := b.PCR(0)
	if pa == pb {
		t.Fatal("measurement order should matter")
	}
}

func TestTPMExtendBadIndex(t *testing.T) {
	tpm := newTPM(t)
	if err := tpm.Extend(-1, nil); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := tpm.Extend(NumPCRs, nil); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := tpm.PCR(NumPCRs); err == nil {
		t.Fatal("PCR out-of-range accepted")
	}
}

func TestTPMSealUnsealHappyPath(t *testing.T) {
	tpm := newTPM(t)
	_ = tpm.Extend(1, []byte("li-binary"))
	handle := tpm.Seal(1<<1, []byte("shared-key-K"))
	got, err := tpm.Unseal(handle)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared-key-K" {
		t.Fatalf("unsealed %q", got)
	}
}

func TestTPMUnsealFailsAfterTamper(t *testing.T) {
	tpm := newTPM(t)
	_ = tpm.Extend(1, []byte("li-binary-v1"))
	handle := tpm.Seal(1<<1, []byte("K"))
	// Tampered component gets re-measured at "boot": PCR changes.
	_ = tpm.Extend(1, []byte("li-binary-TAMPERED"))
	if _, err := tpm.Unseal(handle); !errors.Is(err, ErrSealBroken) {
		t.Fatalf("unseal after tamper: %v, want ErrSealBroken", err)
	}
}

func TestTPMUnsealIgnoresUnboundPCRs(t *testing.T) {
	tpm := newTPM(t)
	_ = tpm.Extend(1, []byte("li"))
	handle := tpm.Seal(1<<1, []byte("K"))
	// PCR 2 is not in the mask; extending it must not break the seal.
	_ = tpm.Extend(2, []byte("unrelated"))
	if _, err := tpm.Unseal(handle); err != nil {
		t.Fatalf("seal broken by unrelated PCR: %v", err)
	}
}

func TestTPMUnsealUnknownHandle(t *testing.T) {
	tpm := newTPM(t)
	if _, err := tpm.Unseal("nope"); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("got %v", err)
	}
}

func TestTPMQuoteVerifies(t *testing.T) {
	tpm := newTPM(t)
	log := &MeasurementLog{}
	measure := func(idx int, name string, data []byte) {
		_ = tpm.Extend(idx, data)
		log.Append(idx, name, data)
	}
	measure(0, "li", []byte("li-v1"))
	measure(1, "agent", []byte("agent-v1"))

	nonce := []byte("verifier-nonce")
	mask := uint8(1<<0 | 1<<1)
	q := tpm.GenerateQuote(mask, nonce)
	expected := log.ExpectedComposite(mask)
	if err := VerifyQuote(tpm.EndorsementKey(), q, expected, nonce); err != nil {
		t.Fatalf("quote verification failed: %v", err)
	}
}

func TestTPMQuoteDetectsTamper(t *testing.T) {
	tpm := newTPM(t)
	log := &MeasurementLog{}
	_ = tpm.Extend(0, []byte("li-TAMPERED"))
	log.Append(0, "li", []byte("li-v1")) // verifier expects the good binary

	nonce := []byte("n")
	q := tpm.GenerateQuote(1<<0, nonce)
	err := VerifyQuote(tpm.EndorsementKey(), q, log.ExpectedComposite(1<<0), nonce)
	if err == nil {
		t.Fatal("tampered component passed attestation")
	}
}

func TestTPMQuoteRejectsReplay(t *testing.T) {
	tpm := newTPM(t)
	q := tpm.GenerateQuote(1, []byte("nonce-A"))
	if err := VerifyQuote(tpm.EndorsementKey(), q, q.Composite, []byte("nonce-B")); err == nil {
		t.Fatal("replayed quote accepted under different nonce")
	}
}

func TestTPMQuoteRejectsForgedSignature(t *testing.T) {
	tpm := newTPM(t)
	other := newTPM(t)
	q := tpm.GenerateQuote(1, []byte("n"))
	if err := VerifyQuote(other.EndorsementKey(), q, q.Composite, []byte("n")); err == nil {
		t.Fatal("quote accepted under wrong endorsement key")
	}
}

func TestMeasurementLogExpectedPCRsMatchTPM(t *testing.T) {
	tpm := newTPM(t)
	log := &MeasurementLog{}
	entries := []struct {
		idx  int
		name string
		data string
	}{
		{0, "li", "li-v1"}, {0, "agent", "agent-v1"}, {3, "analyser", "an-v2"},
	}
	for _, e := range entries {
		_ = tpm.Extend(e.idx, []byte(e.data))
		log.Append(e.idx, e.name, []byte(e.data))
	}
	exp := log.ExpectedPCRs()
	for i := 0; i < NumPCRs; i++ {
		got, _ := tpm.PCR(i)
		if got != exp[i] {
			t.Fatalf("PCR %d: tpm %s vs expected %s", i, got.Short(), exp[i].Short())
		}
	}
	byPCR := log.ComponentsByPCR()
	if len(byPCR[0]) != 2 || byPCR[0][0] != "agent" {
		t.Fatalf("ComponentsByPCR = %v", byPCR)
	}
	if len(log.Entries()) != 3 {
		t.Fatalf("entries = %d", len(log.Entries()))
	}
}
