package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"drams"
	"drams/internal/xacml"
)

// stubTarget is an in-memory Target with a configurable service time, for
// exercising executor accounting without a deployment.
type stubTarget struct {
	serviceTime time.Duration
	failTenant  string
	ids         atomic.Uint64
	flips       atomic.Int64
	kills       atomic.Int64
	rejoins     atomic.Int64
}

func (s *stubTarget) Tenants() []string { return []string{"tenant-1", "tenant-2", "tenant-3"} }
func (s *stubTarget) NewRequest() *xacml.Request {
	return xacml.NewRequest(fmt.Sprintf("stub-%d", s.ids.Add(1)))
}
func (s *stubTarget) Decide(ctx context.Context, tenant string, req *xacml.Request) (drams.Enforcement, error) {
	if s.serviceTime > 0 {
		select {
		case <-time.After(s.serviceTime):
		case <-ctx.Done():
			return drams.Enforcement{}, ctx.Err()
		}
	}
	if tenant == s.failTenant {
		return drams.Enforcement{}, errors.New("stub: tenant down")
	}
	return drams.Enforcement{Decision: xacml.Permit}, nil
}
func (s *stubTarget) FlipPolicy(context.Context, *xacml.PolicySet) error {
	s.flips.Add(1)
	return nil
}
func (s *stubTarget) Kill(string) error {
	s.kills.Add(1)
	return nil
}
func (s *stubTarget) Rejoin(context.Context, string) error {
	s.rejoins.Add(1)
	return nil
}
func (s *stubTarget) Matched() <-chan drams.Alert { return nil }
func (s *stubTarget) Close()                      {}

func TestOpenLoopHitsArrivalRate(t *testing.T) {
	scn := Scenario{
		Name: "rate-check",
		Executor: ExecutorSpec{
			Type: ExecConstantArrivalRate, Rate: 200,
			Duration: Duration(time.Second), MaxWorkers: 64,
		},
		SampleEvery: Duration(250 * time.Millisecond),
	}
	res, err := Run(context.Background(), scn, &stubTarget{serviceTime: time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Open loop: iteration count tracks the schedule, not service time.
	if res.Iterations < 120 || res.Iterations > 280 {
		t.Fatalf("iterations = %d, want ~200 for 200/s x 1s", res.Iterations)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped = %d with an idle worker pool", res.Dropped)
	}
	if res.Requests+res.Errors+res.Dropped != res.Iterations {
		t.Fatalf("accounting leak: %d+%d+%d != %d", res.Requests, res.Errors, res.Dropped, res.Iterations)
	}
	if len(res.Windows) < 3 {
		t.Fatalf("expected >=3 sample windows, got %d", len(res.Windows))
	}
	if res.Metrics["rate"] < 100 {
		t.Fatalf("completed rate %.1f/s, want ~200", res.Metrics["rate"])
	}
}

func TestOpenLoopDropsWhenSaturated(t *testing.T) {
	// One worker, 60ms service, 200/s arrivals: almost every arrival finds
	// the pool busy and must be counted dropped — never queued, never lost.
	scn := Scenario{
		Name: "saturated",
		Executor: ExecutorSpec{
			Type: ExecConstantArrivalRate, Rate: 200,
			Duration: Duration(600 * time.Millisecond), MaxWorkers: 1,
		},
		Thresholds: []string{"dropped<1%"},
	}
	res, err := Run(context.Background(), scn, &stubTarget{serviceTime: 60 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("expected dropped iterations with MaxWorkers=1 and slow service")
	}
	if res.Requests+res.Errors+res.Dropped != res.Iterations {
		t.Fatalf("accounting leak: %d+%d+%d != %d", res.Requests, res.Errors, res.Dropped, res.Iterations)
	}
	// The dropped SLO must fail the run.
	if res.Pass {
		t.Fatalf("run passed despite dropped=%d/%d and threshold dropped<1%%", res.Dropped, res.Iterations)
	}
}

func TestClosedLoopIterationCap(t *testing.T) {
	scn := Scenario{
		Name: "capped",
		Executor: ExecutorSpec{
			Type: ExecLoopingVU, VUs: 4, Iterations: 100,
			Duration: Duration(10 * time.Second),
		},
	}
	res, err := Run(context.Background(), scn, &stubTarget{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 100 {
		t.Fatalf("iterations = %d, want exactly 100", res.Iterations)
	}
	if res.Requests != 100 || res.Errors != 0 || res.Dropped != 0 {
		t.Fatalf("requests=%d errors=%d dropped=%d", res.Requests, res.Errors, res.Dropped)
	}
}

func TestRunRecordsErrors(t *testing.T) {
	scn := Scenario{
		Name: "errors",
		Executor: ExecutorSpec{
			Type: ExecConstantArrivalRate, Rate: 150, Duration: Duration(500 * time.Millisecond),
		},
		Thresholds: []string{"error_rate<1%"},
	}
	// tenant-2 always fails: one third of traffic errors.
	res, err := Run(context.Background(), scn, &stubTarget{failTenant: "tenant-2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("expected errors from the failing tenant")
	}
	er := res.Metrics["error_rate"]
	if er < 0.2 || er > 0.45 {
		t.Fatalf("error_rate = %.3f, want ~1/3", er)
	}
	if res.Pass {
		t.Fatal("run passed despite error_rate threshold")
	}
}

func TestRunSchedulesEvents(t *testing.T) {
	st := &stubTarget{}
	scn := Scenario{
		Name: "events",
		Executor: ExecutorSpec{
			Type: ExecConstantArrivalRate, Rate: 50, Duration: Duration(700 * time.Millisecond),
		},
		PolicyFlip: &PolicyFlipSpec{After: Duration(100 * time.Millisecond), Policy: "standard:v2"},
		Churn: &ChurnSpec{
			Victim:      "tenant-2",
			KillAfter:   Duration(200 * time.Millisecond),
			RejoinAfter: Duration(200 * time.Millisecond),
		},
	}
	res, err := Run(context.Background(), scn, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.flips.Load() != 1 || st.kills.Load() != 1 || st.rejoins.Load() != 1 {
		t.Fatalf("flips=%d kills=%d rejoins=%d, want 1 each",
			st.flips.Load(), st.kills.Load(), st.rejoins.Load())
	}
	kinds := map[string]bool{}
	for _, ev := range res.Events {
		if ev.Err != "" {
			t.Fatalf("event %s failed: %s", ev.Kind, ev.Err)
		}
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"policy-flip", "kill", "rejoin"} {
		if !kinds[want] {
			t.Fatalf("missing event %q in %+v", want, res.Events)
		}
	}
}

func TestRunRejectsUnknownChurnVictim(t *testing.T) {
	scn := Scenario{
		Name:     "bad-victim",
		Executor: ExecutorSpec{Type: ExecConstantArrivalRate, Rate: 10, Duration: Duration(100 * time.Millisecond)},
		Churn:    &ChurnSpec{Victim: "tenant-99", KillAfter: 1, RejoinAfter: 1},
	}
	if _, err := Run(context.Background(), scn, &stubTarget{}, nil); err == nil {
		t.Fatal("expected error for unknown churn victim")
	}
}

func TestRateAtOffsetRamping(t *testing.T) {
	spec := ExecutorSpec{
		Type: ExecRampingArrivalRate, Rate: 100,
		Stages: []Stage{
			{Target: 300, Duration: Duration(2 * time.Second)},
			{Target: 300, Duration: Duration(time.Second)},
			{Target: 0, Duration: Duration(time.Second)},
		},
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 100},
		{time.Second, 200},
		{2 * time.Second, 300},
		{2500 * time.Millisecond, 300},
		{3500 * time.Millisecond, 150},
		{5 * time.Second, 0}, // past the profile
	}
	for _, tc := range cases {
		if got := rateAtOffset(spec, tc.at); !almostEq(got, tc.want) {
			t.Errorf("rateAtOffset(%v) = %g, want %g", tc.at, got, tc.want)
		}
	}
	if got := spec.totalDuration(); got != 4*time.Second {
		t.Errorf("totalDuration = %v, want 4s", got)
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	orig, err := BuiltinScenario("ramp-flip-churn")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.MarshalIndent(orig, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scn.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Executor.Type != orig.Executor.Type ||
		len(got.Executor.Stages) != len(orig.Executor.Stages) ||
		got.Executor.Stages[1].Duration != orig.Executor.Stages[1].Duration ||
		got.PolicyFlip == nil || got.PolicyFlip.Policy != orig.PolicyFlip.Policy ||
		got.Churn == nil || got.Churn.Victim != orig.Churn.Victim ||
		len(got.Thresholds) != len(orig.Thresholds) {
		t.Fatalf("round-trip mismatch:\norig %+v\ngot  %+v", orig, got)
	}
	// Durations must serialize human-readable, not as nanosecond blobs.
	if !strings.Contains(string(raw), `"2s"`) {
		t.Fatalf("expected duration strings in JSON:\n%s", raw)
	}
}

func TestBuiltinScenariosValidate(t *testing.T) {
	for _, name := range BuiltinScenarioNames() {
		scn, err := BuiltinScenario(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := scn.withDefaults().Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", name, err)
		}
	}
	if _, err := BuiltinScenario("nope"); err == nil {
		t.Error("expected error for unknown builtin")
	}
}

// TestNetsimRampFlipChurn is the end-to-end drill ISSUE 7 requires: ramping
// open-loop arrivals against a monitored in-process federation with a
// mid-run on-chain policy flip and a member kill/rejoin, alert-detection
// latency sampled throughout.
func TestNetsimRampFlipChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("netsim e2e in -short mode")
	}
	target, err := NewNetsimTarget(NetsimConfig{
		Clouds:     3,
		Monitoring: true,
		NetLatency: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	scn := Scenario{
		Name: "e2e",
		Executor: ExecutorSpec{
			Type: ExecRampingArrivalRate, Rate: 40, Poisson: true, MaxWorkers: 512,
			Stages: []Stage{
				{Target: 120, Duration: Duration(1500 * time.Millisecond)},
				{Target: 120, Duration: Duration(1500 * time.Millisecond)},
			},
		},
		Mix: []MixEntry{
			{Template: TemplateRead, Weight: 0.6},
			{Template: TemplateWrite, Weight: 0.3},
			{Template: TemplateCrossTenant, Weight: 0.1},
		},
		RequestTimeout: Duration(2 * time.Second),
		SampleEvery:    Duration(500 * time.Millisecond),
		AlertSample:    0.5,
		PolicyFlip:     &PolicyFlipSpec{After: Duration(700 * time.Millisecond), Policy: "standard:v2"},
		Churn: &ChurnSpec{
			Victim:      "tenant-2",
			KillAfter:   Duration(1200 * time.Millisecond),
			RejoinAfter: Duration(800 * time.Millisecond),
		},
		// Generous: the churn window fails tenant-2 traffic by design.
		Thresholds: []string{"p99<2000ms", "error_rate<60%", "dropped<50%", "count>50"},
		Seed:       7,
	}
	res, err := Run(context.Background(), scn, target, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("e2e thresholds failed:\n%s", FormatVerdicts(res.Verdicts))
	}
	if res.Requests == 0 || len(res.Windows) < 3 {
		t.Fatalf("requests=%d windows=%d", res.Requests, len(res.Windows))
	}
	var sawFlip, sawKill, sawRejoin bool
	for _, ev := range res.Events {
		if ev.Err != "" {
			t.Fatalf("event %s failed: %s", ev.Kind, ev.Err)
		}
		switch ev.Kind {
		case "policy-flip":
			sawFlip = true
		case "kill":
			sawKill = true
		case "rejoin":
			sawRejoin = true
		}
	}
	if !sawFlip || !sawKill || !sawRejoin {
		t.Fatalf("missing events: %+v", res.Events)
	}
	// The flip must be observable: decisions after activation carry v2.
	req := target.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatAction, "op", xacml.String("read")).
		Add(xacml.CatResource, "type", xacml.String("record"))
	enf, err := target.Decide(context.Background(), "tenant-1", req)
	if err != nil {
		t.Fatal(err)
	}
	if enf.PolicyVersion != "v2" {
		t.Fatalf("post-flip decision ran policy %q, want v2", enf.PolicyVersion)
	}
	// Alert-detection latency must have been measured (monitoring on,
	// AlertSample 0.5 over hundreds of requests).
	if res.AlertLatency.Count == 0 {
		t.Fatal("no alert-detection latency samples recorded")
	}
	if _, ok := res.Metrics["alert_p99"]; !ok {
		t.Fatalf("alert_p99 missing from metric map: %v", sortedMetricKeys(res.Metrics))
	}
	// Churn must leave a visible scar: some errors during the kill window.
	if res.Errors == 0 {
		t.Log("warning: no errors during churn window (timing-dependent)")
	}
	rep := res.Report("netsim")
	if rep.Name != "loadgen_e2e" || !rep.Pass || len(rep.Thresholds) != 4 {
		t.Fatalf("report mismatch: %+v", rep)
	}
	if _, ok := rep.Metrics["alert_latency_ms"]; !ok {
		t.Fatal("report missing alert_latency_ms")
	}
}
