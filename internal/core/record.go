// Package core implements the DRAMS monitor itself — the paper's primary
// contribution. It defines:
//
//   - the log-record schema produced by the probing agents at the four
//     interception points of an access-control exchange (PEP sends request,
//     PDP receives request, PDP sends response, PEP enforces response), plus
//     the Analyser's expected-decision verdicts and the PAP's policy
//     publications;
//   - the on-chain log-match smart contract executing the "expressly
//     devised algorithms" (paper §II) — checks M1–M6 of DESIGN.md — and
//     emitting security-alert events;
//   - the off-chain Monitor that consumes those events, and the Analyser
//     runtime that re-derives expected decisions.
//
// Confidentiality: on-chain data is visible to every federation member
// (paper §II), so records never carry request/response content in the
// clear. Matching works on content digests and on keyed decision
// commitments (HMAC over the shared LI key K), while the full payload
// travels AES-GCM-encrypted for authorised forensics. Equality of
// commitments is exactly equality of decisions, so the contract can compare
// what it cannot read.
package core

import (
	"encoding/json"
	"fmt"

	"drams/internal/crypto"
	"drams/internal/xacml"
)

// LogKind labels the interception point that produced a record.
type LogKind string

// The four probe interception points plus the analyser verdict.
const (
	// KindPEPRequest: the tenant-edge agent saw the PEP send a request
	// towards the PDP.
	KindPEPRequest LogKind = "pep.request"
	// KindPDPRequest: the infrastructure-tenant agent saw the request
	// arrive at the PDP.
	KindPDPRequest LogKind = "pdp.request"
	// KindPDPResponse: the infrastructure-tenant agent saw the PDP send
	// its decision back.
	KindPDPResponse LogKind = "pdp.response"
	// KindPEPResponse: the tenant-edge agent saw the response arrive and
	// observed which effect the PEP actually enforced.
	KindPEPResponse LogKind = "pep.response"
)

// LogKinds lists the four probe kinds in pipeline order.
func LogKinds() []LogKind {
	return []LogKind{KindPEPRequest, KindPDPRequest, KindPDPResponse, KindPEPResponse}
}

// DecisionTag is a keyed commitment to a decision: HMAC_K(reqID || decision).
// Tags for the same request are equal iff the decisions are equal, and
// reveal nothing without K.
func DecisionTag(key crypto.Key, reqID string, d xacml.Decision) crypto.Digest {
	return crypto.HMAC(key, []byte(fmt.Sprintf("decision|%s|%d", reqID, d.Simple())))
}

// LogRecord is one monitoring observation. The fields used by on-chain
// matching (digests, tags) are public; Payload is the AES-GCM-encrypted
// full context.
type LogRecord struct {
	Kind   LogKind `json:"kind"`
	ReqID  string  `json:"reqId"`
	Tenant string  `json:"tenant"`
	// TraceID carries the end-to-end tracing identifier minted at the PEP
	// (observability metadata only — no contract check reads it; older
	// records decode with it empty).
	TraceID string `json:"trace,omitempty"`
	// Agent is the probing agent that produced the observation.
	Agent string `json:"agent"`
	// ReqDigest fingerprints the request content (M1).
	ReqDigest crypto.Digest `json:"reqDigest"`
	// RespDigest fingerprints the response content (M2); zero for request
	// records.
	RespDigest crypto.Digest `json:"respDigest,omitempty"`
	// DecisionTag commits to the decision carried by the response (M2,
	// M5); zero for request records.
	DecisionTag crypto.Digest `json:"decisionTag,omitempty"`
	// EnforcedTag commits to the effect the PEP actually enforced (M4);
	// only on pep.response records.
	EnforcedTag crypto.Digest `json:"enforcedTag,omitempty"`
	// PolicyVersion/PolicyDigest identify the policy the PDP claims to
	// have evaluated (M6); only on pdp.response records.
	PolicyVersion string        `json:"policyVersion,omitempty"`
	PolicyDigest  crypto.Digest `json:"policyDigest,omitempty"`
	// TimestampUnixNano is the agent-local observation time (diagnostic
	// only; consensus ordering comes from block heights).
	TimestampUnixNano int64 `json:"ts"`
	// Payload is the encrypted full context (request and, for response
	// records, the result).
	Payload []byte `json:"payload,omitempty"`
}

// Encode serialises the record as JSON.
func (lr LogRecord) Encode() []byte {
	b, err := json.Marshal(lr)
	if err != nil {
		panic(fmt.Sprintf("core: encode log record: %v", err))
	}
	return b
}

// DecodeLogRecord parses a JSON record.
func DecodeLogRecord(data []byte) (LogRecord, error) {
	var lr LogRecord
	if err := json.Unmarshal(data, &lr); err != nil {
		return LogRecord{}, fmt.Errorf("core: decode log record: %w", err)
	}
	return lr, nil
}

// Validate checks structural well-formedness per kind.
func (lr LogRecord) Validate() error {
	if lr.ReqID == "" {
		return fmt.Errorf("core: log record without request id")
	}
	switch lr.Kind {
	case KindPEPRequest, KindPDPRequest:
		if lr.ReqDigest.IsZero() {
			return fmt.Errorf("core: %s record without request digest", lr.Kind)
		}
	case KindPDPResponse:
		if lr.RespDigest.IsZero() || lr.DecisionTag.IsZero() {
			return fmt.Errorf("core: %s record missing response digest or decision tag", lr.Kind)
		}
		if lr.PolicyDigest.IsZero() {
			return fmt.Errorf("core: %s record missing policy digest", lr.Kind)
		}
	case KindPEPResponse:
		if lr.RespDigest.IsZero() || lr.DecisionTag.IsZero() || lr.EnforcedTag.IsZero() {
			return fmt.Errorf("core: %s record missing response digest or tags", lr.Kind)
		}
	default:
		return fmt.Errorf("core: unknown log kind %q", lr.Kind)
	}
	return nil
}

// Verdict is the Analyser's expected-decision statement for one request
// (check M5). ExpectedTag commits to the expected decision with the same
// keyed construction the agents use, so the contract compares tags.
type Verdict struct {
	ReqID string `json:"reqId"`
	// ExpectedTag is DecisionTag(K, reqID, expectedDecision).
	ExpectedTag crypto.Digest `json:"expectedTag"`
	// PolicyDigest is the digest of the policy version the analyser used.
	PolicyDigest crypto.Digest `json:"policyDigest"`
	// Analyser names the producing component.
	Analyser string `json:"analyser"`
}

// Encode serialises the verdict.
func (v Verdict) Encode() []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("core: encode verdict: %v", err))
	}
	return b
}

// DecodeVerdict parses a JSON verdict.
func DecodeVerdict(data []byte) (Verdict, error) {
	var v Verdict
	if err := json.Unmarshal(data, &v); err != nil {
		return Verdict{}, fmt.Errorf("core: decode verdict: %w", err)
	}
	return v, nil
}

// PolicyAnnouncement is the PAP's on-chain publication of a policy version
// digest (the trust anchor for M6).
type PolicyAnnouncement struct {
	Version string        `json:"version"`
	Digest  crypto.Digest `json:"digest"`
	Active  bool          `json:"active"`
}

// Encode serialises the announcement.
func (pa PolicyAnnouncement) Encode() []byte {
	b, err := json.Marshal(pa)
	if err != nil {
		panic(fmt.Sprintf("core: encode policy announcement: %v", err))
	}
	return b
}

// EncryptedContext is the plaintext structure sealed into
// LogRecord.Payload: the full exchange context for authorised forensics.
type EncryptedContext struct {
	Request  *xacml.Request `json:"request,omitempty"`
	Result   *xacml.Result  `json:"result,omitempty"`
	Enforced xacml.Decision `json:"enforced,omitempty"`
	Note     string         `json:"note,omitempty"`
}

// Seal encrypts the context with the LI key.
func (ec EncryptedContext) Seal(cipher *crypto.Cipher, reqID string) ([]byte, error) {
	plain, err := json.Marshal(ec)
	if err != nil {
		return nil, fmt.Errorf("core: seal context: %w", err)
	}
	return cipher.Encrypt(plain, []byte(reqID))
}

// OpenContext decrypts a sealed context.
func OpenContext(cipher *crypto.Cipher, reqID string, payload []byte) (EncryptedContext, error) {
	plain, err := cipher.Decrypt(payload, []byte(reqID))
	if err != nil {
		return EncryptedContext{}, fmt.Errorf("core: open context: %w", err)
	}
	var ec EncryptedContext
	if err := json.Unmarshal(plain, &ec); err != nil {
		return EncryptedContext{}, fmt.Errorf("core: open context: %w", err)
	}
	return ec, nil
}
