package blockchain

import (
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"drams/internal/contract"
	"drams/internal/metrics"
)

// Parallel block apply. Block validation executes non-conflicting contract
// transactions speculatively in parallel (optimistic concurrency control),
// then commits them in transaction order:
//
//  1. Speculate: every transaction runs concurrently against the pre-block
//     state through a trackingState that records its read set (exact keys
//     plus Keys() prefix scans) and buffers its writes.
//  2. Commit in order: transaction i's speculative result is valid iff no
//     key it read was written (or deleted) by a committed transaction
//     0..i-1 — the conflict rule is "your read set intersects an earlier
//     write set", with a prefix scan conflicting when any earlier write
//     falls under the scanned prefix. Valid results apply their buffered
//     writes; conflicting transactions re-execute sequentially against the
//     current state.
//
// Because commits happen in transaction order and every conflicting
// transaction re-executes on the committed state, the resulting state,
// receipts and event order are byte-identical to sequential application on
// every replica — parallelism is a local execution strategy, not a
// consensus parameter. In the DRAMS workload, probe-log transactions for
// different request IDs touch disjoint key sets (rec/<reqID>/..., keyed by
// request), so typical blocks commit almost entirely from the speculative
// pass.

// parallelApplyMinTxs is the block size below which goroutine fan-out costs
// more than it saves and application stays sequential.
const parallelApplyMinTxs = 8

// trackingState is the speculative execution view: reads fall through to
// the pre-block base state and are recorded; writes and deletes are
// buffered. The contract engine's own per-call overlay commits into it, so
// after execution `writes`/`deletes` hold the transaction's net effect.
type trackingState struct {
	base     contract.StateDB
	reads    map[string]struct{}
	prefixes []string
	writes   map[string][]byte
	deletes  map[string]bool
}

func newTrackingState(base contract.StateDB) *trackingState {
	return &trackingState{
		base:    base,
		reads:   make(map[string]struct{}),
		writes:  make(map[string][]byte),
		deletes: make(map[string]bool),
	}
}

func (t *trackingState) Get(key string) ([]byte, bool) {
	t.reads[key] = struct{}{}
	if t.deletes[key] {
		return nil, false
	}
	if v, ok := t.writes[key]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, true
	}
	return t.base.Get(key)
}

func (t *trackingState) Set(key string, value []byte) {
	delete(t.deletes, key)
	cp := make([]byte, len(value))
	copy(cp, value)
	t.writes[key] = cp
}

func (t *trackingState) Delete(key string) {
	delete(t.writes, key)
	t.deletes[key] = true
}

func (t *trackingState) Keys(prefix string) []string {
	t.prefixes = append(t.prefixes, prefix)
	set := make(map[string]bool)
	for _, k := range t.base.Keys(prefix) {
		set[k] = true
	}
	for k := range t.writes {
		if strings.HasPrefix(k, prefix) {
			set[k] = true
		}
	}
	for k := range t.deletes {
		delete(set, k)
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// conflictsWith reports whether this transaction's recorded read set
// intersects the given committed write/delete key set.
func (t *trackingState) conflictsWith(written map[string]struct{}) bool {
	if len(written) == 0 {
		return false
	}
	for k := range t.reads {
		if _, ok := written[k]; ok {
			return true
		}
	}
	for _, p := range t.prefixes {
		for k := range written {
			if strings.HasPrefix(k, p) {
				return true
			}
		}
	}
	return false
}

// commitTo applies the buffered effects to dst and records the touched keys
// in written.
func (t *trackingState) commitTo(dst contract.StateDB, written map[string]struct{}) {
	for k, v := range t.writes {
		dst.Set(k, v)
		written[k] = struct{}{}
	}
	for k := range t.deletes {
		dst.Delete(k)
		written[k] = struct{}{}
	}
}

// ApplyStats are the parallel-apply observability counters.
type ApplyStats struct {
	// ParallelBlocks / SequentialBlocks count how blocks were applied
	// (sequential includes small blocks under the parallel threshold).
	ParallelBlocks   int64
	SequentialBlocks int64
	// SpeculativeTxs counts transactions whose speculative result
	// committed; ConflictTxs counts transactions re-executed sequentially
	// after a read-write conflict with an earlier transaction.
	SpeculativeTxs int64
	ConflictTxs    int64
}

// applyMetrics lives on Chain.
type applyMetrics struct {
	parallelBlocks   metrics.Counter
	sequentialBlocks metrics.Counter
	speculativeTxs   metrics.Counter
	conflictTxs      metrics.Counter
}

// txResult is one transaction's speculative outcome.
type txResult struct {
	ts     *trackingState
	events []contract.Event
	err    error
}

// applyWorkers resolves the effective speculative-execution pool size.
func (c *Chain) applyWorkers() int {
	if c.cfg.ApplyWorkers > 0 {
		return c.cfg.ApplyWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// applyParallelLocked is the OCC path of applyBlockLocked. Caller holds
// c.mu; the speculative goroutines touch only the engine (stateless) and
// the internally-locked state.
func (c *Chain) applyParallelLocked(b *Block, state *contract.State, nonces map[string]uint64) []contract.Event {
	results := make([]txResult, len(b.Txs))
	workers := c.applyWorkers()
	if workers > len(b.Txs) {
		workers = len(b.Txs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(b.Txs) {
					return
				}
				tx := &b.Txs[i]
				ts := newTrackingState(state)
				evs, err := c.engine.Execute(contract.CallCtx{
					Height:    b.Header.Height,
					BlockTime: b.Header.Time(),
					TxID:      tx.ID(),
					Caller:    tx.From,
				}, ts, tx.Call)
				results[i] = txResult{ts: ts, events: evs, err: err}
			}
		}()
	}
	wg.Wait()

	var events []contract.Event
	written := make(map[string]struct{})
	for i := range b.Txs {
		tx := &b.Txs[i]
		nonces[tx.From] = tx.Nonce
		res := &results[i]
		if res.ts.conflictsWith(written) {
			// A committed earlier transaction invalidated this speculative
			// run: redo it against the current state, which now includes
			// all earlier effects — exactly the sequential semantics.
			c.applyMet.conflictTxs.Inc()
			ts := newTrackingState(state)
			evs, err := c.engine.Execute(contract.CallCtx{
				Height:    b.Header.Height,
				BlockTime: b.Header.Time(),
				TxID:      tx.ID(),
				Caller:    tx.From,
			}, ts, tx.Call)
			res = &txResult{ts: ts, events: evs, err: err}
		} else {
			c.applyMet.speculativeTxs.Inc()
		}
		res.ts.commitTo(state, written)
		rec := Receipt{TxID: tx.ID(), Height: b.Header.Height, OK: res.err == nil, Events: res.events}
		if res.err != nil {
			rec.Err = res.err.Error()
		}
		c.receipts[tx.ID()] = rec
		c.txHeight[tx.ID()] = b.Header.Height
		events = append(events, res.events...)
	}
	events = append(events, c.engine.OnBlock(b.Header.Height, b.Header.Time(), state)...)
	return events
}

// ApplyStats snapshots the parallel-apply counters.
func (c *Chain) ApplyStats() ApplyStats {
	return ApplyStats{
		ParallelBlocks:   c.applyMet.parallelBlocks.Value(),
		SequentialBlocks: c.applyMet.sequentialBlocks.Value(),
		SpeculativeTxs:   c.applyMet.speculativeTxs.Value(),
		ConflictTxs:      c.applyMet.conflictTxs.Value(),
	}
}
