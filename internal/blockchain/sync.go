package blockchain

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"drams/internal/crypto"
	"drams/internal/transport"
)

// Catch-up protocol. A node that (re)joins — fresh, after a restart from
// its data dir, or after a partition — pulls the missing suffix of the best
// chain from a peer. The wire protocol is bc.getrange: one Call returns up
// to SyncBatch encoded blocks walking parent links backwards (descending
// height) from a cursor hash, so rejoin time is dominated by validation
// throughput instead of per-block round-trips. The fetched branch is then
// applied oldest-first through Chain.AddBlock, i.e. with exactly the
// validation (signatures via the TxVerifier pipeline, PoW, difficulty
// schedule, nonces) gossiped blocks get.
//
// bc.getblock (single block by hash) remains served and is used as a
// fallback when the peer predates the range protocol, and as the measured
// baseline of the V6 rejoin benchmark (NodeConfig.PerBlockSync).

// maxRangeServe clamps how many blocks one bc.getrange call returns,
// whatever the requester asked for.
const maxRangeServe = 512

// maxRangeBytes soft-caps the encoded payload of one range response so it
// stays well under transport frame limits (TCP caps frames at 32 MiB and
// JSON encoding inflates by ~4/3) whatever the block size. At least one
// block is always served; the requester keeps issuing windows until the
// branch attaches, so a shorter-than-asked response only costs extra
// round-trips, never progress.
const maxRangeBytes = 4 << 20

// syncCallTimeout bounds each catch-up Call.
const syncCallTimeout = 10 * time.Second

// rangeReq asks for up to Count blocks starting at Cursor (inclusive) and
// walking PrevHash links backwards. Codec advertises the highest response
// container format the requester understands: 0 (or absent — a pre-binary
// requester) keeps the JSON container, 1 requests the binary container,
// which ships binary block encodings without base64 inflation. The request
// itself stays JSON — it is one tiny frame per sync window, not hot.
type rangeReq struct {
	Cursor crypto.Digest `json:"cursor"`
	Count  int           `json:"count"`
	Codec  int           `json:"codec,omitempty"`
}

// rangeResp carries the encoded blocks, descending from the cursor. Fewer
// than Count blocks come back when the walk reaches genesis (which is never
// shipped — every member derives it from Config) or the serving cap.
type rangeResp struct {
	Blocks [][]byte `json:"blocks"`
}

// encodeRangeResp serialises resp in the binary container: the codec
// version byte, then u32 count, then u32-length-prefixed block encodings.
func encodeRangeResp(resp *rangeResp) []byte {
	n := 1 + 4
	for _, enc := range resp.Blocks {
		n += 4 + len(enc)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, codecVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(resp.Blocks)))
	for _, enc := range resp.Blocks {
		buf = appendBlob32(buf, enc)
	}
	return buf
}

// decodeRangeResp parses either response container (binary or JSON).
func decodeRangeResp(data []byte) (rangeResp, error) {
	if len(data) == 0 {
		return rangeResp{}, errors.New("blockchain: empty range response")
	}
	if data[0] != codecVersion {
		var resp rangeResp
		if err := json.Unmarshal(data, &resp); err != nil {
			return rangeResp{}, err
		}
		return resp, nil
	}
	r := txReader{buf: data, off: 1}
	count, err := r.u32()
	if err != nil {
		return rangeResp{}, err
	}
	if count > maxRangeServe {
		return rangeResp{}, fmt.Errorf("blockchain: range response declares %d blocks", count)
	}
	resp := rangeResp{Blocks: make([][]byte, 0, count)}
	for i := uint32(0); i < count; i++ {
		enc, err := r.blob()
		if err != nil {
			return rangeResp{}, err
		}
		resp.Blocks = append(resp.Blocks, enc)
	}
	if r.off != len(data) {
		return rangeResp{}, fmt.Errorf("blockchain: range response has %d trailing bytes", len(data)-r.off)
	}
	return resp, nil
}

// handleGetRange serves a descending window of blocks for batched catch-up.
func (n *Node) handleGetRange(from string, payload []byte) ([]byte, error) {
	var req rangeReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("blockchain: getrange: %w", err)
	}
	count := req.Count
	if count <= 0 || count > maxRangeServe {
		count = maxRangeServe
	}
	var resp rangeResp
	cursor := req.Cursor
	total := 0
	for len(resp.Blocks) < count {
		b, ok := n.chain.BlockByHash(cursor)
		if !ok {
			if len(resp.Blocks) == 0 {
				return nil, fmt.Errorf("blockchain: getrange %s: not found", cursor.Short())
			}
			break
		}
		if b.Header.Height == 0 {
			break
		}
		enc := n.wireEncodeBlock(b)
		if len(resp.Blocks) > 0 && total+len(enc) > maxRangeBytes {
			break
		}
		resp.Blocks = append(resp.Blocks, enc)
		total += len(enc)
		cursor = b.Header.PrevHash
	}
	if req.Codec >= 1 && !n.cfg.LegacyJSONWire {
		return encodeRangeResp(&resp), nil
	}
	return json.Marshal(resp)
}

// call issues one catch-up Call with the protocol timeout, counting it.
func (n *Node) syncCall(peer, kind string, payload []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), syncCallTimeout)
	defer cancel()
	n.syncCalls.Inc()
	return n.ep.Call(ctx, peer, kind, payload)
}

// fetchAncestors returns up to n.cfg.SyncBatch blocks descending from
// cursor (inclusive), verifying hash linkage so a lying peer cannot inject
// blocks outside the requested branch. With PerBlockSync — or a peer that
// does not speak bc.getrange, remembered in *legacy so one pull probes at
// most once — it degrades to one bc.getblock per block.
func (n *Node) fetchAncestors(peer string, cursor crypto.Digest, legacy *bool) ([]*Block, error) {
	if !*legacy {
		payload, err := json.Marshal(rangeReq{Cursor: cursor, Count: n.cfg.SyncBatch, Codec: 1})
		if err != nil {
			return nil, err
		}
		raw, err := n.syncCall(peer, kindGetRange, payload)
		switch {
		case err == nil:
			resp, err := decodeRangeResp(raw)
			if err != nil {
				return nil, fmt.Errorf("blockchain: range from %q: %w", peer, err)
			}
			blocks := make([]*Block, 0, len(resp.Blocks))
			want := cursor
			for _, enc := range resp.Blocks {
				b, err := DecodeBlock(enc)
				if err != nil {
					return nil, fmt.Errorf("blockchain: range from %q: %w", peer, err)
				}
				if b.Hash() != want {
					return nil, fmt.Errorf("blockchain: range from %q: block %s off-branch (want %s)",
						peer, b.Hash().Short(), want.Short())
				}
				blocks = append(blocks, b)
				want = b.Header.PrevHash
			}
			n.syncBlocks.Add(int64(len(blocks)))
			return blocks, nil
		case !errors.Is(err, transport.ErrNoHandler):
			return nil, err
		}
		// Peer predates the range protocol: remember and fall through to
		// per-block, so the remainder of this pull skips the futile probe.
		*legacy = true
	}
	raw, err := n.syncCall(peer, kindGetBlock, cursor.Bytes())
	if err != nil {
		return nil, err
	}
	b, err := DecodeBlock(raw)
	if err != nil {
		return nil, err
	}
	if b.Hash() != cursor {
		return nil, fmt.Errorf("blockchain: block from %q is not %s", peer, cursor.Short())
	}
	n.syncBlocks.Inc()
	return []*Block{b}, nil
}

// pullBranch fetches the ancestry of cursor from peer in batched descending
// windows until it attaches to a locally-known block, then applies the
// whole suffix oldest-first through full validation. pending holds
// already-held descendants of cursor, newest first (the orphan that
// triggered the pull). The walk is bounded by SyncDepth blocks.
func (n *Node) pullBranch(peer string, cursor crypto.Digest, pending []*Block) error {
	legacy := n.cfg.PerBlockSync
	for {
		if _, ok := n.chain.BlockByHash(cursor); ok {
			break // attached
		}
		if len(pending) >= n.cfg.SyncDepth {
			return fmt.Errorf("blockchain: branch from %q exceeds sync depth %d", peer, n.cfg.SyncDepth)
		}
		fetched, err := n.fetchAncestors(peer, cursor, &legacy)
		if err != nil {
			return err
		}
		if len(fetched) == 0 {
			return fmt.Errorf("blockchain: branch from %q does not attach (empty range at %s)", peer, cursor.Short())
		}
		for _, b := range fetched {
			pending = append(pending, b)
			cursor = b.Header.PrevHash
			if _, ok := n.chain.BlockByHash(cursor); ok {
				break
			}
		}
	}
	// Apply oldest-first; each block passes the normal AddBlock validation.
	for i := len(pending) - 1; i >= 0; i-- {
		err := n.chain.AddBlock(pending[i])
		if err != nil && !errors.Is(err, ErrKnownBlock) {
			n.rejected.Inc()
			return fmt.Errorf("blockchain: apply synced block %s: %w", pending[i].Hash().Short(), err)
		}
	}
	return nil
}

// resolveOrphans pulls the missing ancestors of orphan b from the peer that
// gossiped it and applies the branch. Returns true if b was accepted.
func (n *Node) resolveOrphans(b *Block, peer string) bool {
	if err := n.pullBranch(peer, b.Header.PrevHash, []*Block{b}); err != nil {
		return false
	}
	n.orphans.Inc()
	return true
}

// fetchHead asks peer for its best-chain tip.
func (n *Node) fetchHead(peer string) (headInfo, error) {
	raw, err := n.syncCall(peer, kindHead, nil)
	if err != nil {
		return headInfo{}, err
	}
	var hi headInfo
	if err := json.Unmarshal(raw, &hi); err != nil {
		return headInfo{}, err
	}
	n.noteSeenHeight(hi.Height)
	return hi, nil
}

// syncAttempts bounds how often SyncFrom chases a peer whose head keeps
// advancing mid-sync before settling for the progress already made.
const syncAttempts = 3

// SyncFrom pulls the peer's best chain and imports it (used by nodes that
// join or restart). Blocks arrive in batched ranges and are validated
// oldest-first. A peer that mines on while we sync is tolerated: the pull
// is retried against the advanced head a bounded number of times, and if
// the peer still outruns us, having imported a valid suffix counts as
// success — the remaining blocks arrive through normal gossip.
func (n *Node) SyncFrom(peer string) error {
	startHeight := n.chain.Height()
	var lastErr error
	for attempt := 0; attempt < syncAttempts; attempt++ {
		hi, err := n.fetchHead(peer)
		if err != nil {
			return fmt.Errorf("blockchain: sync from %q: %w", peer, err)
		}
		if _, ok := n.chain.BlockByHash(hi.Hash); ok {
			return nil // already have their head
		}
		if err := n.pullBranch(peer, hi.Hash, nil); err != nil {
			lastErr = err
		}
		if _, ok := n.chain.BlockByHash(hi.Hash); ok {
			return nil // converged on the head we were told about
		}
		// The head the peer reported is gone (reorged away) or the pull
		// raced new blocks; go around and chase the fresh head.
	}
	if n.chain.Height() > startHeight {
		// Accept progress: a valid suffix was imported even though the
		// peer's head kept moving; gossip delivers the rest.
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("peer head kept advancing")
	}
	return fmt.Errorf("blockchain: sync from %q did not converge: %w", peer, lastErr)
}
