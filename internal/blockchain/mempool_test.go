package blockchain

import (
	"errors"
	"fmt"
	"testing"

	"drams/internal/crypto"
)

func poolTx(t *testing.T, id *crypto.Identity, nonce uint64) Transaction {
	t.Helper()
	tx, err := NewTransaction(id, nonce, putCall(fmt.Sprintf("%s-k%d", id.Name(), nonce), "v"))
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestMempoolAddAndDuplicate(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	p := NewMempool(0)
	tx := poolTx(t, alice, 1)
	if err := p.Add(tx); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx); !errors.Is(err, ErrKnownTx) {
		t.Fatalf("duplicate: %v", err)
	}
	if !p.Has(tx.ID()) || p.Len() != 1 {
		t.Fatal("pool state wrong")
	}
}

func TestMempoolSameSenderNonceConflict(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	p := NewMempool(0)
	tx1, _ := NewTransaction(alice, 1, putCall("a", "1"))
	tx1b, _ := NewTransaction(alice, 1, putCall("b", "2")) // same nonce, different call
	if err := p.Add(tx1); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx1b); !errors.Is(err, ErrKnownTx) {
		t.Fatalf("nonce conflict: %v", err)
	}
}

func TestMempoolCollectExecutableOrder(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	bob := testIdentity(t, "bob", 2)
	p := NewMempool(0)
	// Insert out of order and with a gap for bob.
	for _, tx := range []Transaction{
		poolTx(t, alice, 2), poolTx(t, alice, 1),
		poolTx(t, bob, 1), poolTx(t, bob, 3), // bob nonce 2 missing
	} {
		if err := p.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Collect(10, map[string]uint64{})
	if len(got) != 3 {
		t.Fatalf("collected %d txs, want 3 (alice 1,2 + bob 1)", len(got))
	}
	if got[0].From != "alice" || got[0].Nonce != 1 || got[1].Nonce != 2 {
		t.Fatalf("alice order wrong: %+v", got[:2])
	}
	if got[2].From != "bob" || got[2].Nonce != 1 {
		t.Fatalf("bob tx wrong: %+v", got[2])
	}
}

func TestMempoolCollectRespectsConfirmedNonces(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	p := NewMempool(0)
	_ = p.Add(poolTx(t, alice, 1))
	_ = p.Add(poolTx(t, alice, 2))
	got := p.Collect(10, map[string]uint64{"alice": 1}) // nonce 1 confirmed
	if len(got) != 1 || got[0].Nonce != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestMempoolCollectMax(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	p := NewMempool(0)
	for n := uint64(1); n <= 5; n++ {
		_ = p.Add(poolTx(t, alice, n))
	}
	if got := p.Collect(3, nil); len(got) != 3 {
		t.Fatalf("collected %d, want 3", len(got))
	}
}

func TestMempoolPruneConfirmed(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	bob := testIdentity(t, "bob", 2)
	p := NewMempool(0)
	a1, a2 := poolTx(t, alice, 1), poolTx(t, alice, 2)
	b1 := poolTx(t, bob, 1)
	for _, tx := range []Transaction{a1, a2, b1} {
		_ = p.Add(tx)
	}
	p.PruneConfirmed(map[string]uint64{"alice": 1})
	if p.Has(a1.ID()) {
		t.Fatal("confirmed tx not pruned")
	}
	if !p.Has(a2.ID()) || !p.Has(b1.ID()) {
		t.Fatal("unconfirmed txs pruned")
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestMempoolAllOrderedAndBounded(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	bob := testIdentity(t, "bob", 2)
	p := NewMempool(0)
	_ = p.Add(poolTx(t, bob, 2))
	_ = p.Add(poolTx(t, alice, 1))
	_ = p.Add(poolTx(t, bob, 1))
	all := p.All(10)
	if len(all) != 3 {
		t.Fatalf("all = %d", len(all))
	}
	if all[0].From != "alice" || all[1].From != "bob" || all[1].Nonce != 1 || all[2].Nonce != 2 {
		t.Fatalf("order = %v", all)
	}
	if got := p.All(2); len(got) != 2 {
		t.Fatalf("bounded = %d", len(got))
	}
}

func TestMempoolFull(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	p := NewMempool(2)
	_ = p.Add(poolTx(t, alice, 1))
	_ = p.Add(poolTx(t, alice, 2))
	if err := p.Add(poolTx(t, alice, 3)); err == nil {
		t.Fatal("overfull pool accepted tx")
	}
}
