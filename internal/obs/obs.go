// Package obs is the operations surface of a DRAMS deployment: it turns
// the in-process instrumentation (metrics.Registry plus the Stats()
// snapshots scattered across node, verifier, caches, transport, Logging
// Interface, watcher, monitor and analyser) into a single gatherable
// sample set, renders it in Prometheus text exposition format, serves
// /metrics, /healthz and /readyz over HTTP, and reconstructs per-request
// span timelines from the trace IDs that ride along with every decision.
//
// The package is dependency-free by design (stdlib + internal/metrics
// only): component packages import obs to record trace spans, and the
// wiring layers (drams.New, cmd/drams-node) register closures over each
// component's Stats() accessor as collectors — obs never imports the
// components, so there are no import cycles and no locks shared with the
// hot path. A scrape snapshots everything first (Gather) and only then
// writes to the client, so a stalled scraper holds no lock any decide,
// mine or flush could contend on.
package obs

import (
	"sync"

	"drams/internal/metrics"
)

// Collector produces a batch of samples at gather time — typically a
// closure over some component's Stats() accessor, converting its counters
// into named samples.
type Collector func() []metrics.Sample

// Gatherer merges a registry's native metrics with registered collectors
// into one deterministic sample set.
type Gatherer struct {
	mu   sync.Mutex
	reg  *metrics.Registry
	cols []Collector
}

// NewGatherer wraps a registry (nil is allowed: collectors only).
func NewGatherer(reg *metrics.Registry) *Gatherer {
	return &Gatherer{reg: reg}
}

// Registry returns the wrapped registry (nil if none).
func (g *Gatherer) Registry() *metrics.Registry {
	if g == nil {
		return nil
	}
	return g.reg
}

// Register adds a collector. Safe for concurrent use with Gather.
func (g *Gatherer) Register(c Collector) {
	if g == nil || c == nil {
		return
	}
	g.mu.Lock()
	g.cols = append(g.cols, c)
	g.mu.Unlock()
}

// Gather snapshots the registry and every collector, returning samples
// sorted by family then series name. The returned slice is a snapshot:
// rendering it later touches no component state.
func (g *Gatherer) Gather() []metrics.Sample {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	cols := make([]Collector, len(g.cols))
	copy(cols, g.cols)
	g.mu.Unlock()

	var out []metrics.Sample
	if g.reg != nil {
		out = g.reg.Samples()
	}
	for _, c := range cols {
		out = append(out, c()...)
	}
	metrics.SortSamples(out)
	return out
}

// C builds a counter sample (family name must end in _total).
func C(name, help string, v int64) metrics.Sample {
	return metrics.Sample{Name: name, Kind: metrics.KindCounter, Help: help, Value: v}
}

// G builds a gauge sample.
func G(name, help string, v int64) metrics.Sample {
	return metrics.Sample{Name: name, Kind: metrics.KindGauge, Help: help, Value: v}
}

// H builds a histogram sample from an export snapshot.
func H(name, help string, ex metrics.HistExport) metrics.Sample {
	return metrics.Sample{Name: name, Kind: metrics.KindHistogram, Help: help, Hist: &ex}
}
