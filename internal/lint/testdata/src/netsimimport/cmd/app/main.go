// Command app is designated wiring: binaries choose their transport.
package main

import "fix/internal/netsim"

func main() {
	_ = netsim.New(netsim.Config{Synchronous: true, Seed: 1})
}
