package drams

import (
	"context"
	"fmt"

	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/pap"
	"drams/internal/xacml"
)

// Policy rollout stream events, deliverable through Alerts subscriptions
// that list them explicitly (they are synthetic, like AlertMatched).
const (
	// AlertPolicyActivated is emitted when this deployment hot-reloads to
	// a newly activated on-chain policy version.
	AlertPolicyActivated = core.AlertPolicyActivated
	// AlertPolicyRejected is emitted when a policy update could not be
	// applied (digest mismatch, unparseable bytes, on-chain conflict).
	AlertPolicyRejected = core.AlertPolicyRejected
)

// UpdateOptions shape a policy update or rollback (see pap.UpdateOptions).
type UpdateOptions = pap.UpdateOptions

// PolicyActivation is one entry of the on-chain activation history.
type PolicyActivation = core.PolicyActivation

// Admin is the runtime policy administration handle of a deployment: it
// signs on-chain PolicyUpdate transactions with the federation's PAP
// identity and observes the local rollout. Obtain one per administering
// tenant with Deployment.Admin.
type Admin struct {
	dep    *Deployment
	tenant string
	inner  *pap.Admin
}

// Admin returns a policy administration handle publishing through the
// given tenant's cloud node — any federation member can administer; the
// update reaches the block producers by gossip and every member activates
// it at the same chain height.
func (d *Deployment) Admin(tenant string) (*Admin, error) {
	ten, ok := d.topology.Tenant(tenant)
	if !ok {
		return nil, fmt.Errorf("drams: unknown tenant %q", tenant)
	}
	node, ok := d.Nodes[ten.Cloud]
	if !ok {
		return nil, fmt.Errorf("drams: tenant %q's cloud %q has no chain node", tenant, ten.Cloud)
	}
	return &Admin{dep: d, tenant: tenant, inner: pap.NewAdmin(node, d.papID)}, nil
}

// Tenant returns the tenant this admin publishes through.
func (a *Admin) Tenant() string { return a.tenant }

// UpdatePolicy signs and submits ps as a new on-chain policy version and
// blocks until this deployment has activated it (every other member flips
// at the same chain height). Options tune the activation gate: a non-zero
// ActivateDelta publishes now but flips the fleet that many blocks later.
func (a *Admin) UpdatePolicy(ctx context.Context, ps *xacml.PolicySet, opts UpdateOptions) error {
	prop, err := a.inner.UpdatePolicy(ctx, ps, opts)
	if err != nil {
		return err
	}
	return a.dep.watcher.WaitForVersion(ctx, prop.Version)
}

// Rollback re-activates an already-anchored version and blocks until this
// deployment has flipped back to it.
func (a *Admin) Rollback(ctx context.Context, version string, opts UpdateOptions) error {
	if _, err := a.inner.Rollback(ctx, version, opts); err != nil {
		return err
	}
	return a.dep.watcher.WaitForVersion(ctx, version)
}

// PolicyVersion returns the active on-chain policy version ("" before the
// first activation).
func (a *Admin) PolicyVersion() string {
	version, _, _ := a.inner.ActivePolicy()
	return version
}

// PolicyDigest returns the anchored digest of a version.
func (a *Admin) PolicyDigest(version string) (crypto.Digest, bool) {
	return a.inner.PolicyDigest(version)
}

// PolicySet fetches and parses the chain-stored policy of a version.
func (a *Admin) PolicySet(version string) (*xacml.PolicySet, error) {
	return a.inner.PolicySet(version)
}

// History returns the on-chain activation history, oldest first.
func (a *Admin) History() []PolicyActivation { return a.inner.History() }

// PolicyStats are the deployment-level PAP/PDP reload counters.
type PolicyStats struct {
	// Version / Height identify the last locally activated policy.
	Version string
	Height  uint64
	// Staged / Activations / Rejections count watcher transitions.
	Staged      int64
	Activations int64
	Rejections  int64
	// EventsDropped / Resyncs report the watcher's recovery path: chain
	// event notifications its subscription missed, and the chain-state
	// reconciliations triggered to compensate for them (the watcher's
	// unconditional startup Sync is not counted).
	EventsDropped int64
	Resyncs       int64
	// CachePurges counts decision-cache purges (one per hot reload; 0
	// with the cache disabled).
	CachePurges int64
}

// PolicyStats snapshots the deployment's policy lifecycle counters, the
// PAP-side complement of Node.Stats and DecisionCache.Stats.
func (d *Deployment) PolicyStats() PolicyStats {
	st := d.watcher.Stats()
	out := PolicyStats{
		Version:       st.Version,
		Height:        st.Height,
		Staged:        st.Staged,
		Activations:   st.Activations,
		Rejections:    st.Rejections,
		EventsDropped: st.EventsDropped,
		Resyncs:       st.Resyncs,
	}
	if c := d.PDP.Cache(); c != nil {
		out.CachePurges = c.Stats().Purges
	}
	return out
}
