package logger

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/netsim"
	"drams/internal/xacml"
)

var testKey = crypto.DeriveKey("logger-test", "K")

type liEnv struct {
	node *blockchain.Node
	li   *LI
}

func newLIEnv(t *testing.T, mode SubmitMode) *liEnv {
	t.Helper()
	var seed [32]byte
	seed[0] = 7
	id := crypto.NewIdentityFromSeed("li@t1", seed)
	reg := contract.NewRegistry()
	reg.MustRegister(core.NewLogMatchContract(core.MatchConfig{
		TimeoutBlocks: 50, PAP: "pap", Analyser: "analyser",
	}))
	net := netsim.New(netsim.Config{Seed: 2})
	node, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "node-0",
		Chain: blockchain.Config{
			Difficulty: 4,
			Identities: []crypto.PublicIdentity{id.Public()},
			Registry:   reg,
		},
		Network:            net,
		Mine:               true,
		EmptyBlockInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	li, err := NewLI(LIConfig{
		Name: "li@t1", Tenant: "t1", Node: node, Identity: id, Key: testKey, Mode: mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	li.Start()
	t.Cleanup(func() {
		li.Stop()
		node.Stop()
		net.Close()
	})
	return &liEnv{node: node, li: li}
}

func pepRequestRecord(reqID string) core.LogRecord {
	return core.LogRecord{
		Kind:      core.KindPEPRequest,
		ReqID:     reqID,
		Tenant:    "t1",
		Agent:     "agent@t1",
		ReqDigest: crypto.Sum([]byte("request-" + reqID)),
	}
}

func waitForRecord(t *testing.T, node *blockchain.Node, reqID string, kind core.LogKind) core.LogRecord {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		var rec core.LogRecord
		var ok bool
		node.Chain().ReadState(core.ContractName, func(st contract.StateDB) {
			rec, ok = core.ReadStoredRecord(st, reqID, kind)
		})
		if ok {
			return rec
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("record %s/%s never reached the chain", reqID, kind)
	return core.LogRecord{}
}

func TestLIAsyncSubmission(t *testing.T) {
	env := newLIEnv(t, SubmitAsync)
	rec := pepRequestRecord("async-1")
	if err := env.li.Log(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	got := waitForRecord(t, env.node, "async-1", core.KindPEPRequest)
	if got.ReqDigest != rec.ReqDigest {
		t.Fatal("stored record differs")
	}
	if env.li.Stats().Submitted == 0 {
		t.Fatal("no submission counted")
	}
}

func TestLIBatchedAnchoring(t *testing.T) {
	env := newLIEnv(t, SubmitAsync)
	// A burst larger than one flush window: the LI must anchor (most of)
	// it in Merkle-batched transactions while every record still reaches
	// contract state.
	const n = 24
	for i := 0; i < n; i++ {
		if err := env.li.Log(context.Background(), pepRequestRecord(fmt.Sprintf("batch-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		waitForRecord(t, env.node, fmt.Sprintf("batch-%d", i), core.KindPEPRequest)
	}
	st := env.li.Stats()
	if st.Submitted != n {
		t.Fatalf("submitted = %d records, want %d", st.Submitted, n)
	}
	if st.BatchesSubmitted == 0 {
		t.Fatal("burst produced no batch transactions")
	}
}

func TestLISyncSubmission(t *testing.T) {
	env := newLIEnv(t, SubmitSync)
	if err := env.li.Log(context.Background(), pepRequestRecord("sync-1")); err != nil {
		t.Fatal(err)
	}
	waitForRecord(t, env.node, "sync-1", core.KindPEPRequest)
}

func TestLIConfirmedSubmission(t *testing.T) {
	env := newLIEnv(t, SubmitConfirmed)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := env.li.Log(ctx, pepRequestRecord("conf-1")); err != nil {
		t.Fatal(err)
	}
	// Confirmed mode means the record is on-chain when Log returns.
	var ok bool
	env.node.Chain().ReadState(core.ContractName, func(st contract.StateDB) {
		_, ok = core.ReadStoredRecord(st, "conf-1", core.KindPEPRequest)
	})
	if !ok {
		t.Fatal("confirmed log not on chain at return")
	}
}

func TestLIStoppedRejects(t *testing.T) {
	env := newLIEnv(t, SubmitSync)
	env.li.Stop()
	if err := env.li.Log(context.Background(), pepRequestRecord("x")); !errors.Is(err, ErrStopped) {
		t.Fatalf("got %v", err)
	}
}

func TestLIAlertDispatch(t *testing.T) {
	env := newLIEnv(t, SubmitSync)
	var alerted atomic.Value
	env.li.OnAlert(func(a core.Alert) { alerted.Store(a) })

	// Conflicting records for the same interception point → equivocation
	// alert surfaced to the LI's handlers.
	rec := pepRequestRecord("eq-1")
	if err := env.li.Log(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	waitForRecord(t, env.node, "eq-1", core.KindPEPRequest)
	conflict := rec
	conflict.ReqDigest = crypto.Sum([]byte("conflict"))
	if err := env.li.Log(context.Background(), conflict); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if v := alerted.Load(); v != nil {
			a := v.(core.Alert)
			if a.Type != core.AlertEquivocation {
				t.Fatalf("alert = %+v", a)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("alert never dispatched")
}

func TestLISealOpenAndTag(t *testing.T) {
	env := newLIEnv(t, SubmitSync)
	req := xacml.NewRequest("r1").Add(xacml.CatSubject, "role", xacml.String("doctor"))
	sealed, err := env.li.Seal(core.EncryptedContext{Request: req}, "r1")
	if err != nil {
		t.Fatal(err)
	}
	ec, err := env.li.Open("r1", sealed)
	if err != nil {
		t.Fatal(err)
	}
	if ec.Request.Digest() != req.Digest() {
		t.Fatal("seal/open mismatch")
	}
	if env.li.DecisionTag("r1", xacml.Permit) != core.DecisionTag(testKey, "r1", xacml.Permit) {
		t.Fatal("LI tag differs from core tag")
	}
	if env.li.Name() != "li@t1" || env.li.Tenant() != "t1" {
		t.Fatal("identity accessors wrong")
	}
}

func TestAgentObservationsReachChain(t *testing.T) {
	env := newLIEnv(t, SubmitSync)
	agent := NewAgent("agent@t1", "t1", env.li, nil)
	req := xacml.NewRequest("ag-1").
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	res := xacml.Result{
		RequestID: "ag-1", Decision: xacml.Permit,
		PolicyID: "root", PolicyVersion: "v1", PolicyDigest: crypto.Sum([]byte("pol")),
	}

	agent.PEPRequestSent(req)
	agent.PDPRequestReceived(req)
	agent.PDPResponseSent(req, res)
	agent.PEPResponseReceived(req, res, xacml.Permit)

	for _, kind := range core.LogKinds() {
		rec := waitForRecord(t, env.node, "ag-1", kind)
		if rec.ReqDigest != req.Digest() {
			t.Fatalf("%s: wrong request digest", kind)
		}
		if rec.Agent != "agent@t1" || rec.Tenant != "t1" {
			t.Fatalf("%s: provenance %q/%q", kind, rec.Agent, rec.Tenant)
		}
		switch kind {
		case core.KindPDPResponse:
			if rec.PolicyDigest != res.PolicyDigest || rec.DecisionTag != env.li.DecisionTag("ag-1", xacml.Permit) {
				t.Fatalf("%s: wrong response fields", kind)
			}
			// The sealed context must contain the request for the analyser.
			ec, err := env.li.Open("ag-1", rec.Payload)
			if err != nil || ec.Request == nil || ec.Result == nil {
				t.Fatalf("%s: context not recoverable: %v", kind, err)
			}
		case core.KindPEPResponse:
			if rec.EnforcedTag != env.li.DecisionTag("ag-1", xacml.Permit) {
				t.Fatalf("%s: wrong enforced tag", kind)
			}
		}
	}
	if st := agent.Stats(); st.Observed != 4 || st.Errors != 0 {
		t.Fatalf("agent stats = %+v", st)
	}
}

func TestAgentErrorsDoNotPanic(t *testing.T) {
	env := newLIEnv(t, SubmitSync)
	agent := NewAgent("agent@t1", "t1", env.li, nil)
	env.li.Stop() // submissions now fail
	req := xacml.NewRequest("err-1")
	agent.PEPRequestSent(req)
	if st := agent.Stats(); st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNewLIValidation(t *testing.T) {
	if _, err := NewLI(LIConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestLIAsyncQueueOverflow(t *testing.T) {
	// A tiny queue with no workers running: submissions beyond capacity
	// must fail fast with ErrQueueFull and be counted as dropped, never
	// blocking the access-control path.
	var seed [32]byte
	seed[0] = 9
	id := crypto.NewIdentityFromSeed("li@q", seed)
	reg := contract.NewRegistry()
	reg.MustRegister(core.NewLogMatchContract(core.MatchConfig{TimeoutBlocks: 100}))
	net := netsim.New(netsim.Config{Seed: 6})
	defer net.Close()
	node, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "q-node",
		Chain: blockchain.Config{Difficulty: 4,
			Identities: []crypto.PublicIdentity{id.Public()}, Registry: reg},
		Network: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	li, err := NewLI(LIConfig{
		Name: "li@q", Tenant: "q", Node: node, Identity: id, Key: testKey,
		Mode: SubmitAsync, QueueSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Note: Start() not called — the queue only fills.
	var full int
	for i := 0; i < 5; i++ {
		err := li.Log(context.Background(), pepRequestRecord(fmt.Sprintf("q-%d", i)))
		if errors.Is(err, ErrQueueFull) {
			full++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if full != 3 {
		t.Fatalf("queue-full errors = %d, want 3", full)
	}
	if st := li.Stats(); st.Dropped != 3 || st.QueueLen != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLIFailedSubmissionCounted(t *testing.T) {
	env := newLIEnv(t, SubmitSync)
	env.node.Stop() // chain gone: submissions fail
	err := env.li.Log(context.Background(), pepRequestRecord("fail-1"))
	if err == nil {
		t.Fatal("submission to stopped node succeeded")
	}
	if st := env.li.Stats(); st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
