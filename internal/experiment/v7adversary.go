package experiment

import (
	"fmt"
	"strings"

	"drams/internal/attack"
)

// V7Params parameterise the adversarial-detection campaign.
type V7Params struct {
	// Trials per attack class.
	Trials int
	// Seed pins the deployment and netsim RNGs — the whole campaign is
	// reproducible under it.
	Seed uint64
}

// DefaultV7Params runs every chaos class three times under the standard
// seed.
func DefaultV7Params() V7Params {
	return V7Params{Trials: 3, Seed: 7}
}

// RunV7 drives the Byzantine-member chaos fleet (attack.ChaosCatalogue)
// against fresh 3-member federations and reports detection as a first-class
// metric: per-attack-class detection rate, p50/p99 detection latency in wall
// milliseconds and in chain blocks (injection → first matching alert), and
// false-positive count.
func RunV7(p V7Params) (Table, error) {
	c := attack.Campaign{
		Scenarios: attack.ChaosCatalogue(),
		Trials:    p.Trials,
		Seed:      p.Seed,
	}
	rep, err := c.Run()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "V7",
		Title:  "adversarial detection: Byzantine miners, ordering attacks — latency from injection to alert",
		Header: []string{"class", "alert", "trials", "detected", "rate", "p50_ms", "p99_ms", "p50_blk", "p99_blk", "false_pos"},
		Notes: []string{
			fmt.Sprintf("3-member federation per scenario, Δ=8 blocks, difficulty 6, seed %d (reproducible)", rep.Seed),
			"latency is injection → first matching on-chain alert; blocks counted on the monitor's chain view",
			"false_pos counts alerts on requests the attack never touched or of types it cannot cause",
		},
	}
	for _, r := range rep.Results {
		if r.Err != "" {
			return t, fmt.Errorf("V7: class %s: %s", r.Class, r.Err)
		}
		alerts := make([]string, len(r.Expected))
		for i, a := range r.Expected {
			alerts[i] = string(a)
		}
		t.Rows = append(t.Rows, []string{
			r.Class,
			strings.Join(alerts, "|"),
			count(int64(r.Trials)),
			count(int64(r.Detected)),
			pct(r.Detected, r.Trials),
			msF(r.WallMillis.P50),
			msF(r.WallMillis.P99),
			fmt.Sprintf("%.0f", r.Blocks.P50),
			fmt.Sprintf("%.0f", r.Blocks.P99),
			count(int64(r.FalsePositives)),
		})
	}
	return t, nil
}
