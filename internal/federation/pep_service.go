package federation

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drams/internal/idgen"
	"drams/internal/metrics"
	"drams/internal/trace"
	"drams/internal/transport"
	"drams/internal/xacml"
)

// ErrRequestDropped is returned to the application when the exchange was
// lost (either injected suppression or network failure).
var ErrRequestDropped = errors.New("federation: access request dropped")

// PEPProbe is the hook interface a DRAMS agent implements at a tenant edge.
type PEPProbe interface {
	PEPRequestSent(req *xacml.Request)
	PEPResponseReceived(req *xacml.Request, res xacml.Result, enforced xacml.Decision)
}

// Tamper models a compromised data path around one PEP (paper §I threat
// model: "access requests or responses are modified ... by a malicious user
// or software"). All fields are optional.
type Tamper struct {
	// Request rewrites the request after the probe observed it — i.e. on
	// the wire between PEP egress and PDP ingress (attack A1).
	Request func(req *xacml.Request) *xacml.Request
	// Response rewrites the PDP result before the PEP-side probe observes
	// arrival — i.e. on the wire between PDP egress and PEP ingress (A2).
	Response func(res xacml.Result) xacml.Result
	// Enforce overrides the effect the PEP actually enforces (A3).
	Enforce func(received xacml.Decision) xacml.Decision
	// DropRequest suppresses the request after the probe logged it (A6).
	DropRequest bool
	// DropResponse suppresses the response before the PEP-side probe
	// could log it (A7): the exchange never completes at the edge.
	DropResponse bool
	// Batch manipulates the encoded item pipeline of DecideBatch after
	// every request was probed and individually tampered — the
	// batch-boundary ordering surface: reorder, duplicate or drop wire
	// items without any edge probe noticing. The PDP answers positionally,
	// so a reordered batch misaligns decisions with requests (caught by
	// M2), and a shrunk batch fails the whole pipeline (caught by M3).
	// Single-request Decide calls are unaffected.
	Batch func(items []json.RawMessage) []json.RawMessage
}

// Enforcement is what the PEP hands back to the application.
type Enforcement struct {
	Decision    xacml.Decision     `json:"decision"`
	Obligations []xacml.Obligation `json:"obligations,omitempty"`
	// PolicyVersion identifies the policy-set version the PDP decided
	// under — the application-visible trace of a runtime policy rollout
	// ("" when the exchange failed before a decision arrived).
	PolicyVersion string `json:"policyVersion,omitempty"`
}

// Permitted reports whether access is granted (XACML: only an explicit
// Permit grants; everything else is treated as not granted by a
// deny-biased PEP).
func (e Enforcement) Permitted() bool { return e.Decision == xacml.Permit }

// PEPService is the tenant-edge Policy Enforcement Point.
type PEPService struct {
	tenant  string
	ep      transport.Endpoint
	timeout time.Duration

	probe  atomic.Pointer[probeBoxPEP]
	tamper atomic.Pointer[Tamper]
	tracer atomic.Pointer[trace.Tracer]

	requests metrics.Counter
	permits  metrics.Counter
	denies   metrics.Counter
	failures metrics.Counter
}

// traceIDs mints fallback trace identifiers for requests that arrive at a
// PEP without a correlation ID (shared across PEPs; trace IDs only need
// uniqueness, not reproducibility).
var traceIDs = sync.OnceValue(idgen.New)

// ensureTraceID stamps the request with its end-to-end trace identifier:
// the correlation ID when present (so Deployment.Trace(reqID) works with
// the IDs callers already hold), a fresh one otherwise. Requests arriving
// with a TraceID (e.g. relayed from another edge) keep it.
func ensureTraceID(req *xacml.Request) string {
	if req.TraceID == "" {
		if req.ID != "" {
			req.TraceID = req.ID
		} else {
			req.TraceID = "t-" + traceIDs().Next().String()
		}
	}
	return req.TraceID
}

type probeBoxPEP struct{ p PEPProbe }

// NewPEPService registers a PEP for a tenant on the network.
func NewPEPService(net transport.Transport, tenant string, timeout time.Duration) (*PEPService, error) {
	ep, err := net.Register(PEPAddr(tenant))
	if err != nil {
		return nil, fmt.Errorf("federation: register PEP %q: %w", tenant, err)
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &PEPService{tenant: tenant, ep: ep, timeout: timeout}, nil
}

// Tenant returns the tenant this PEP serves.
func (s *PEPService) Tenant() string { return s.tenant }

// SetProbe attaches the DRAMS agent hook.
func (s *PEPService) SetProbe(p PEPProbe) { s.probe.Store(&probeBoxPEP{p: p}) }

// SetTracer attaches (or clears, with nil) the end-to-end span recorder.
func (s *PEPService) SetTracer(t *trace.Tracer) { s.tracer.Store(t) }

// SetTamper installs (or clears, with nil) attack injection.
func (s *PEPService) SetTamper(t *Tamper) {
	if t == nil {
		t = &Tamper{}
	}
	s.tamper.Store(t)
}

// PEPStats snapshot.
type PEPStats struct {
	Requests, Permits, Denies, Failures int64
}

// Stats snapshots the counters.
func (s *PEPService) Stats() PEPStats {
	return PEPStats{
		Requests: s.requests.Value(),
		Permits:  s.permits.Value(),
		Denies:   s.denies.Value(),
		Failures: s.failures.Value(),
	}
}

// Decide runs the full PEP flow for an application request: probe, forward
// to the PDP, receive, probe, enforce. It returns what was enforced.
func (s *PEPService) Decide(ctx context.Context, req *xacml.Request) (Enforcement, error) {
	s.requests.Inc()
	tam := s.tamper.Load()
	traceID := ensureTraceID(req)
	start := time.Now()

	// Probe sees the request as the application/PEP formed it.
	if pb := s.probe.Load(); pb != nil && pb.p != nil {
		pb.p.PEPRequestSent(req)
	}

	// In-transit tampering / suppression happens after the probe.
	wire := req
	if tam != nil {
		if tam.DropRequest {
			s.failures.Inc()
			return Enforcement{Decision: xacml.IndeterminateDP}, ErrRequestDropped
		}
		if tam.Request != nil {
			wire = tam.Request(req.Clone())
		}
	}

	callCtx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	raw, err := s.ep.Call(callCtx, PDPAddr, kindEvaluate, wire.Encode())
	if err != nil {
		s.failures.Inc()
		return Enforcement{Decision: xacml.IndeterminateDP}, fmt.Errorf("federation: PEP %s → PDP: %w", s.tenant, err)
	}
	res, err := xacml.DecodeResult(raw)
	if err != nil {
		s.failures.Inc()
		return Enforcement{Decision: xacml.IndeterminateDP}, err
	}

	// Response-side tampering/suppression happens before the probe sees
	// the arrival (the probe observes the tenant edge).
	if tam != nil {
		if tam.DropResponse {
			s.failures.Inc()
			return Enforcement{Decision: xacml.IndeterminateDP}, ErrRequestDropped
		}
		if tam.Response != nil {
			res = tam.Response(res)
		}
	}

	enforced := res.Decision
	if tam != nil && tam.Enforce != nil {
		enforced = tam.Enforce(res.Decision)
	}

	if pb := s.probe.Load(); pb != nil && pb.p != nil {
		pb.p.PEPResponseReceived(req, res, enforced)
	}
	s.tracer.Load().Span(traceID, trace.StagePEPDecide, start, time.Since(start))

	if enforced == xacml.Permit {
		s.permits.Inc()
	} else {
		s.denies.Inc()
	}
	return Enforcement{Decision: enforced, Obligations: res.Obligations, PolicyVersion: res.PolicyVersion}, nil
}

// DecideBatch runs the full PEP flow for a pipeline of application
// requests: every request is probed, tampered and counted exactly as Decide
// would, but all requests share a single network round-trip to the PDP and
// arrive while its decision cache is warm from the batch's own earlier
// items.
//
// The returned slice is positionally aligned with reqs and always has
// len(reqs) entries; an entry whose request failed carries IndeterminateDP.
// The error is nil only when every request succeeded — per-item failures
// are combined with errors.Join, so errors.Is(err, ErrRequestDropped) still
// works across the batch boundary.
func (s *PEPService) DecideBatch(ctx context.Context, reqs []*xacml.Request) ([]Enforcement, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([]Enforcement, len(reqs))
	errs := make([]error, len(reqs))
	for i := range out {
		out[i] = Enforcement{Decision: xacml.IndeterminateDP}
	}
	failAll := func(err error) ([]Enforcement, error) {
		for i := range reqs {
			s.failures.Inc()
			errs[i] = err
		}
		return out, errors.Join(errs...)
	}
	tam := s.tamper.Load()
	start := time.Now()

	wire := batchEvalRequest{Reqs: make([]json.RawMessage, len(reqs))}
	for i, req := range reqs {
		s.requests.Inc()
		ensureTraceID(req)
		// Probe sees each request as the application/PEP formed it.
		if pb := s.probe.Load(); pb != nil && pb.p != nil {
			pb.p.PEPRequestSent(req)
		}
		w := req
		if tam != nil && tam.Request != nil {
			w = tam.Request(req.Clone())
		}
		wire.Reqs[i] = w.Encode()
	}
	// In-transit suppression hits the shared pipeline after the probes
	// observed every item, so each one fails exactly as Decide would.
	if tam != nil && tam.DropRequest {
		return failAll(ErrRequestDropped)
	}
	// Batch-boundary manipulation happens on the wire encoding, after the
	// probes observed every item in its honest order.
	if tam != nil && tam.Batch != nil {
		wire.Reqs = tam.Batch(wire.Reqs)
	}

	payload, err := json.Marshal(wire)
	if err != nil {
		return failAll(fmt.Errorf("federation: PEP %s encode batch: %w", s.tenant, err))
	}
	callCtx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	raw, err := s.ep.Call(callCtx, PDPAddr, kindEvaluateBatch, payload)
	if err != nil {
		return failAll(fmt.Errorf("federation: PEP %s → PDP batch: %w", s.tenant, err))
	}
	var resp batchEvalResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return failAll(fmt.Errorf("federation: PEP %s decode batch reply: %w", s.tenant, err))
	}
	if len(resp.Items) != len(reqs) {
		return failAll(fmt.Errorf("federation: PEP %s batch reply has %d items for %d requests",
			s.tenant, len(resp.Items), len(reqs)))
	}
	if tam != nil && tam.DropResponse {
		return failAll(ErrRequestDropped)
	}

	for i, req := range reqs {
		item := resp.Items[i]
		if item.Err != "" {
			s.failures.Inc()
			errs[i] = errors.New(item.Err)
			continue
		}
		res, err := xacml.DecodeResult(item.Result)
		if err != nil {
			s.failures.Inc()
			errs[i] = err
			continue
		}
		if tam != nil && tam.Response != nil {
			res = tam.Response(res)
		}
		enforced := res.Decision
		if tam != nil && tam.Enforce != nil {
			enforced = tam.Enforce(res.Decision)
		}
		if pb := s.probe.Load(); pb != nil && pb.p != nil {
			pb.p.PEPResponseReceived(req, res, enforced)
		}
		// Each item shares the batch's single round-trip, so every trace
		// in the pipeline records the same PEP-observed span duration.
		s.tracer.Load().Span(req.TraceID, trace.StagePEPDecide, start, time.Since(start))
		if enforced == xacml.Permit {
			s.permits.Inc()
		} else {
			s.denies.Inc()
		}
		out[i] = Enforcement{Decision: enforced, Obligations: res.Obligations, PolicyVersion: res.PolicyVersion}
	}
	return out, errors.Join(errs...)
}
