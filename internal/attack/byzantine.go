package attack

import (
	"context"
	"fmt"
	"sync"
	"time"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/transport"
)

// ByzantineNode wraps a blockchain.Node with the chain-level misbehaviours
// of a compromised federation member (the gap §I's threat model leaves
// beyond log tampering): block withholding (mine but suppress broadcast),
// selective transaction censorship (keep a victim tenant's probe-log
// records out of mined blocks) and delayed anchoring (hold matching records
// in the mempool past the M3 window, then release). The wrapper only drives
// the node's adversary hooks — the node itself keeps validating and
// importing honest traffic, exactly like a real subverted member would.
type ByzantineNode struct {
	node *blockchain.Node

	mu         sync.Mutex
	heldTx     int
	heldBlocks int
}

// Byzantine wraps node for adversarial control.
func Byzantine(node *blockchain.Node) *ByzantineNode {
	return &ByzantineNode{node: node}
}

// Node returns the wrapped chain node.
func (b *ByzantineNode) Node() *blockchain.Node { return b.node }

// WithholdGossip makes the member mine and validate normally but suppress
// every outbound bc.tx / bc.block frame: its own mined blocks and every
// transaction submitted through it (a colocated tenant's probe logs) stay
// trapped on the member. Detection relies on the honest side of the
// federation arming the M3 deadline from the records it does see.
func (b *ByzantineNode) WithholdGossip() {
	b.node.SetGossipFilter(func(kind string, payload []byte) bool {
		switch kind {
		case blockchain.WireTx:
			b.mu.Lock()
			b.heldTx++
			b.mu.Unlock()
			return false
		case blockchain.WireBlock:
			b.mu.Lock()
			b.heldBlocks++
			b.mu.Unlock()
			return false
		}
		return true
	})
}

// ReleaseGossip ends the withholding phase. Trapped transactions reach the
// honest chain through the node's periodic rebroadcast; the member's
// private blocks lose the cumulative-work race and are simply abandoned
// when it reorganises onto the heavier honest chain.
func (b *ByzantineNode) ReleaseGossip() { b.node.SetGossipFilter(nil) }

// Suppressed reports how many tx and block gossip fan-outs the withholding
// filter swallowed so far.
func (b *ByzantineNode) Suppressed() (txs, blocks int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.heldTx, b.heldBlocks
}

// CensorSenders installs a mining filter dropping every pending transaction
// from the given senders — e.g. "li@tenant-2" to keep a victim tenant's
// probe logs off-chain. Only effective when this node produces blocks
// (designated producer, or a mining member under MineAll); honest miners
// would include the records anyway.
func (b *ByzantineNode) CensorSenders(senders ...string) {
	block := make(map[string]bool, len(senders))
	for _, s := range senders {
		block[s] = true
	}
	b.node.SetCollectFilter(dropMatching(func(tx blockchain.Transaction) bool {
		return block[tx.From]
	}))
}

// DelayRecords installs a mining filter holding back every log record
// matching pred. Held transactions stay pending and anchor as soon as
// LiftCensorship runs — the "delay probe-log anchoring past the monitor's
// grace window" attack, as opposed to CensorSenders' permanent drop.
func (b *ByzantineNode) DelayRecords(pred func(core.LogRecord) bool) {
	b.node.SetCollectFilter(dropMatching(func(tx blockchain.Transaction) bool {
		for _, rec := range decodeLogRecords(tx) {
			if pred(rec) {
				return true
			}
		}
		return false
	}))
}

// LiftCensorship removes the mining filter; everything held in the mempool
// is eligible for the next block.
func (b *ByzantineNode) LiftCensorship() { b.node.SetCollectFilter(nil) }

// dropMatching builds a collect filter removing every transaction matching
// pred AND every later transaction from the same sender in the collection:
// per-sender nonces are contiguous, so a censored transaction's successors
// would render the block invalid — dropping the whole suffix keeps the
// Byzantine block acceptable to honest validators (a stealthy censor).
func dropMatching(pred func(blockchain.Transaction) bool) func([]blockchain.Transaction) []blockchain.Transaction {
	return func(txs []blockchain.Transaction) []blockchain.Transaction {
		tainted := make(map[string]bool)
		out := make([]blockchain.Transaction, 0, len(txs))
		for _, tx := range txs {
			if tainted[tx.From] || pred(tx) {
				tainted[tx.From] = true
				continue
			}
			out = append(out, tx)
		}
		return out
	}
}

// decodeLogRecords extracts the log records a transaction carries, if any:
// one for a plain log call, the whole window for a Merkle-anchored batch. A
// censor must judge the full batch — it cannot drop individual records from
// an anchored window without invalidating the root, so matching any record
// taints the transaction.
func decodeLogRecords(tx blockchain.Transaction) []core.LogRecord {
	if tx.Call.Contract != core.ContractName {
		return nil
	}
	switch tx.Call.Method {
	case core.MethodLog:
		rec, err := core.DecodeLogRecord(tx.Call.Args)
		if err != nil {
			return nil
		}
		return []core.LogRecord{rec}
	case core.MethodLogBatch:
		lb, err := core.DecodeLogBatch(tx.Call.Args)
		if err != nil {
			return nil
		}
		return lb.Records
	}
	return nil
}

// ForgeConflictingRecord signs a pep.request record that conflicts with the
// honest record already stored for reqID: same (reqID, kind) key, different
// request digest. The log-match contract keys records by (reqID, kind)
// regardless of sender, so any allowlisted identity can carry the conflict;
// a Byzantine member naturally uses its own hosted tenant's LI identity,
// whose nonce stream is otherwise idle. Executing the transaction raises
// AlertEquivocation on every honest replica.
func ForgeConflictingRecord(view *blockchain.Chain, id *crypto.Identity, victimTenant, reqID string) (blockchain.Transaction, error) {
	rec := core.LogRecord{
		Kind:              core.KindPEPRequest,
		ReqID:             reqID,
		Tenant:            victimTenant,
		Agent:             "byzantine@" + id.Name(),
		ReqDigest:         crypto.Sum([]byte("equivocating view of " + reqID)),
		TimestampUnixNano: time.Now().UnixNano(),
	}
	nonce := view.AccountNonce(id.Name()) + 1
	tx, err := blockchain.NewTransaction(id, nonce, contract.Call{
		Contract: core.ContractName, Method: core.MethodLog, Args: rec.Encode(),
	})
	if err != nil {
		return blockchain.Transaction{}, fmt.Errorf("attack: forge conflicting record: %w", err)
	}
	return tx, nil
}

// DoubleMine mines two distinct sibling blocks on view's current head — the
// chain-level equivocation primitive. The siblings carry different
// transaction sets (and skewed timestamps, so two empty siblings still get
// distinct hashes); the caller delivers each to a different peer subset via
// DeliverBlock. Mining runs at the chain's scheduled difficulty with fixed
// attacker seeds, so the blocks are fully valid under honest validation.
func DoubleMine(ctx context.Context, view *blockchain.Chain, miner string, txsA, txsB []blockchain.Transaction) (*blockchain.Block, *blockchain.Block, error) {
	parentHash, parentHeight := view.Head()
	build := func(txs []blockchain.Transaction, skew int64) *blockchain.Block {
		return &blockchain.Block{
			Header: blockchain.BlockHeader{
				Height:       parentHeight + 1,
				PrevHash:     parentHash,
				MerkleRoot:   blockchain.ComputeMerkleRoot(txs),
				TimeUnixNano: time.Now().UnixNano() + skew,
				Difficulty:   view.NextDifficulty(),
				Miner:        miner,
			},
			Txs: txs,
		}
	}
	a, b := build(txsA, 0), build(txsB, 1)
	if !blockchain.Mine(ctx, a, 0xa77ac0) || !blockchain.Mine(ctx, b, 0xa77ac1) {
		return nil, nil, fmt.Errorf("attack: double-mine cancelled: %w", ctx.Err())
	}
	return a, b, nil
}

// DeliverBlock pushes a block frame directly to the named node addresses,
// bypassing the miner's normal full fan-out — the targeted-delivery half of
// an equivocation attack.
func DeliverBlock(ep transport.Endpoint, b *blockchain.Block, to ...string) {
	payload := b.Encode()
	for _, addr := range to {
		_ = ep.Send(addr, blockchain.WireBlock, payload)
	}
}

// DeliverTx gossips a raw transaction to the named node addresses.
func DeliverTx(ep transport.Endpoint, tx blockchain.Transaction, to ...string) {
	payload := blockchain.EncodeTx(tx)
	for _, addr := range to {
		_ = ep.Send(addr, blockchain.WireTx, payload)
	}
}
