package blockchain

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/netsim"
	"drams/internal/transport/tcp"
)

// testCluster spins up n mining nodes sharing a network and identity set.
func testCluster(t *testing.T, n int, ids ...*crypto.Identity) ([]*Node, *netsim.Network) {
	t.Helper()
	net := netsim.New(netsim.Config{BaseLatency: time.Millisecond, Jitter: time.Millisecond, Seed: 42})
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(NodeConfig{
			Name:    fmt.Sprintf("node-%d", i),
			Chain:   testChainConfig(t, ids...),
			Network: net,
			Mine:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		net.Close()
	})
	for _, nd := range nodes {
		nd.Start()
	}
	return nodes, net
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

func TestSingleNodeMinesSubmittedTx(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	nodes, _ := testCluster(t, 1, alice)
	n := nodes[0]
	tx, _ := NewTransaction(alice, 1, putCall("k", "v"))
	if err := n.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rec, err := n.WaitForReceipt(ctx, tx.ID(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.OK {
		t.Fatalf("receipt = %+v", rec)
	}
	if n.Stats().BlocksMined == 0 {
		t.Fatal("no blocks mined")
	}
}

func TestClusterConvergence(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	nodes, _ := testCluster(t, 3, alice)

	// Submit transactions to different nodes.
	for i := 1; i <= 6; i++ {
		tx, _ := NewTransaction(alice, uint64(i), putCall(fmt.Sprintf("k%d", i), "v"))
		if err := nodes[i%3].SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
		// Wait for each tx so nonces stay in order even if a node's pool
		// briefly lacks a predecessor.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := nodes[i%3].WaitForReceipt(ctx, tx.ID(), 1); err != nil {
			cancel()
			t.Fatalf("tx %d: %v", i, err)
		}
		cancel()
	}

	waitFor(t, 10*time.Second, func() bool {
		d0 := nodes[0].Chain().StateDigest()
		return d0 == nodes[1].Chain().StateDigest() && d0 == nodes[2].Chain().StateDigest() &&
			nodes[0].Chain().AccountNonce("alice") == 6 &&
			nodes[1].Chain().AccountNonce("alice") == 6 &&
			nodes[2].Chain().AccountNonce("alice") == 6
	}, "cluster state digests converge")
}

func TestGossipReachesNonMiningNode(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 7})
	defer net.Close()
	miner, err := NewNode(NodeConfig{Name: "miner", Chain: testChainConfig(t, alice), Network: net, Mine: true})
	if err != nil {
		t.Fatal(err)
	}
	observer, err := NewNode(NodeConfig{Name: "observer", Chain: testChainConfig(t, alice), Network: net, Mine: false})
	if err != nil {
		t.Fatal(err)
	}
	defer miner.Stop()
	defer observer.Stop()
	miner.Start()
	observer.Start()

	tx, _ := NewTransaction(alice, 1, putCall("k", "v"))
	if err := observer.SubmitTx(tx); err != nil { // submitted at the non-miner
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := observer.WaitForReceipt(ctx, tx.ID(), 1); err != nil {
		t.Fatal(err)
	}
	var got []byte
	observer.Chain().ReadState("kv", func(st contract.StateDB) { got, _ = contract.ReadKV(st, "k") })
	if string(got) != "v" {
		t.Fatalf("observer state = %q", got)
	}
}

func TestPartitionHealReconvergence(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	bob := testIdentity(t, "bob", 2)
	nodes, net := testCluster(t, 2, alice, bob)
	n0, n1 := nodes[0], nodes[1]

	// Partition, let each side mine its own tx.
	net.Partition([]string{"node-0"}, []string{"node-1"})
	txA, _ := NewTransaction(alice, 1, putCall("a", "1"))
	txB, _ := NewTransaction(bob, 1, putCall("b", "1"))
	if err := n0.SubmitTx(txA); err != nil {
		t.Fatal(err)
	}
	if err := n1.SubmitTx(txB); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := n0.WaitForReceipt(ctx, txA.ID(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.WaitForReceipt(ctx, txB.ID(), 1); err != nil {
		t.Fatal(err)
	}

	// Heal; nodes must converge. Gossip of new blocks triggers orphan
	// resolution; resubmitting the minority tx is the clients' job (the LI
	// retries), here we push both txs to both pools.
	net.Heal()
	_ = n0.SubmitTx(txB)
	_ = n1.SubmitTx(txA)
	if err := n0.SyncFrom("node-1"); err != nil {
		t.Logf("sync n0<-n1: %v", err)
	}
	if err := n1.SyncFrom("node-0"); err != nil {
		t.Logf("sync n1<-n0: %v", err)
	}

	waitFor(t, 15*time.Second, func() bool {
		if n0.Chain().StateDigest() != n1.Chain().StateDigest() {
			return false
		}
		var a, b []byte
		n0.Chain().ReadState("kv", func(st contract.StateDB) {
			a, _ = contract.ReadKV(st, "a")
			b, _ = contract.ReadKV(st, "b")
		})
		return string(a) == "1" && string(b) == "1"
	}, "partition heal convergence with both txs applied")
}

func TestEventSubscription(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	nodes, _ := testCluster(t, 1, alice)
	n := nodes[0]
	events, cancel := n.SubscribeEvents(64)
	defer cancel()

	tx, _ := NewTransaction(alice, 1, putCall("k", "v"))
	if err := n.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case note := <-events:
			for _, e := range note.Events {
				if e.Type == "Put" && e.Contract == "kv" {
					return // success
				}
			}
		case <-deadline:
			t.Fatal("Put event never delivered")
		}
	}
}

func TestEmptyBlocksAdvanceChain(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 3})
	defer net.Close()
	n, err := NewNode(NodeConfig{
		Name:               "n",
		Chain:              testChainConfig(t, alice),
		Network:            net,
		Mine:               true,
		EmptyBlockInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	n.Start()
	waitFor(t, 10*time.Second, func() bool { return n.Chain().Height() >= 3 }, "empty blocks mined")
}

func TestSubmitAfterStop(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 5})
	defer net.Close()
	n, err := NewNode(NodeConfig{Name: "n", Chain: testChainConfig(t, alice), Network: net})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	n.Stop()
	tx, _ := NewTransaction(alice, 1, putCall("k", "v"))
	if err := n.SubmitTx(tx); !errors.Is(err, ErrStopped) {
		t.Fatalf("got %v", err)
	}
}

func TestSubmitRejectsUnknownIdentity(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	mallory := testIdentity(t, "mallory", 9)
	net := netsim.New(netsim.Config{Seed: 5})
	defer net.Close()
	n, err := NewNode(NodeConfig{Name: "n", Chain: testChainConfig(t, alice), Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	tx, _ := NewTransaction(mallory, 1, putCall("k", "v"))
	if err := n.SubmitTx(tx); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("got %v", err)
	}
}

func TestNetworkSubmitEndpoint(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	nodes, net := testCluster(t, 1, alice)
	client, err := net.Register("client")
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := NewTransaction(alice, 1, putCall("k", "v"))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := client.Call(ctx, "node-0", "bc.submit", EncodeTx(tx))
	if err != nil {
		t.Fatal(err)
	}
	id := tx.ID()
	if string(resp) != string(id.Bytes()) {
		t.Fatal("submit response is not the tx id")
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if _, err := nodes[0].WaitForReceipt(wctx, tx.ID(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestLateJoinerSyncs(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	nodes, net := testCluster(t, 1, alice)
	n0 := nodes[0]
	for i := 1; i <= 3; i++ {
		tx, _ := NewTransaction(alice, uint64(i), putCall(fmt.Sprintf("k%d", i), "v"))
		if err := n0.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := n0.WaitForReceipt(ctx, tx.ID(), 1); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
	}
	late, err := NewNode(NodeConfig{Name: "late", Chain: testChainConfig(t, alice), Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Stop()
	late.Start()
	if err := late.SyncFrom("node-0"); err != nil {
		t.Fatal(err)
	}
	if late.Chain().StateDigest() != n0.Chain().StateDigest() {
		t.Fatal("late joiner did not reach the same state")
	}
}

func TestGossipScopedToChainPeers(t *testing.T) {
	// With Peers empty, gossip must go only to chain peers discovered via
	// the bc.hello handshake — never sprayed at unrelated endpoints (PEPs,
	// PDP, logger faces) sharing the transport.
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Synchronous: true, Seed: 9})
	defer net.Close()

	var stray atomic.Int64
	for _, addr := range []string{"pep@tenant-1", "pdp@infrastructure", "li-endpoint@tenant-1"} {
		ep, err := net.Register(addr)
		if err != nil {
			t.Fatal(err)
		}
		ep.OnDefault(func(msg netsim.Message) {
			if strings.HasPrefix(msg.Kind, "bc.") && msg.Kind != "bc.hello" {
				stray.Add(1)
			}
		})
	}

	var nodes []*Node
	for i := 0; i < 3; i++ {
		n, err := NewNode(NodeConfig{
			Name:                fmt.Sprintf("node-%d", i),
			Chain:               testChainConfig(t, alice),
			Network:             net,
			RebroadcastInterval: -1, // keep the message count deterministic
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.Start()
	}

	// Synchronous delivery: hello discovery has converged by now.
	base := net.Stats()

	tx, _ := NewTransaction(alice, 1, putCall("k", "v"))
	if err := nodes[0].SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return nodes[1].Mempool().Has(tx.ID()) && nodes[2].Mempool().Has(tx.ID())
	}, "tx reaches every chain peer")

	if got := stray.Load(); got != 0 {
		t.Fatalf("non-node endpoints received %d chain gossip frames", got)
	}
	// Scoped flood: the submitter sends to its 2 chain peers, each peer
	// re-gossips at most once more — ≤ 6 sends. The old spray-to-everyone
	// behaviour would have sent to all 5 other registered addresses per
	// hop (≥ 10 sends for the same propagation).
	delta := net.Stats().Sent - base.Sent
	if delta > 6 {
		t.Fatalf("tx flood used %d sends, want ≤ 6 (gossip not scoped to chain peers)", delta)
	}
}

func TestDynamicPeerDiscoveryOverTCP(t *testing.T) {
	// With Peers empty on a multi-process transport, the bc.hello
	// handshake must converge even though addresses become routable long
	// after NewNode's initial announcement: rebroadcastLoop re-announces
	// whenever the transport's address set changes.
	alice := testIdentity(t, "alice", 1)
	trA, err := tcp.New(tcp.Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()

	nodeA, err := NewNode(NodeConfig{
		Name:                "node-a",
		Chain:               testChainConfig(t, alice),
		Network:             trA,
		RebroadcastInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Stop()
	nodeA.Start()

	// The second process comes up only after the first node already sent
	// its one-shot hello into an empty universe.
	trB, err := tcp.New(tcp.Config{ListenAddr: "127.0.0.1:0", Peers: []string{trA.Advertise()}})
	if err != nil {
		t.Fatal(err)
	}
	defer trB.Close()
	nodeB, err := NewNode(NodeConfig{
		Name:                "node-b",
		Chain:               testChainConfig(t, alice),
		Network:             trB,
		RebroadcastInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Stop()
	nodeB.Start()

	tx, _ := NewTransaction(alice, 1, putCall("k", "v"))
	if err := nodeA.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, func() bool { return nodeB.Mempool().Has(tx.ID()) },
		"tx gossip crosses processes after dynamic discovery")
}
