package xacml

import (
	"errors"
	"testing"
	"time"
)

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{String("x"), String("x"), true},
		{String("x"), String("y"), false},
		{Int(3), Int(3), true},
		{Int(3), Int(4), false},
		{Float(1.5), Float(1.5), true},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Time(time.Unix(5, 0)), Time(time.Unix(5, 0)), true},
		{String("3"), Int(3), false}, // cross-type never equal
		{Int(0), Bool(false), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%s == %s: got %v", c.a, c.b, got)
		}
	}
}

func TestValueCompareOrdered(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{String("a"), String("b"), -1},
		{Float(1.5), Float(0.5), 1},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0)), -1},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Fatalf("%s vs %s: %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("%s vs %s = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareErrors(t *testing.T) {
	if _, err := Int(1).Compare(String("1")); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("got %v", err)
	}
	if _, err := Bool(true).Compare(Bool(false)); !errors.Is(err, ErrNotOrdered) {
		t.Fatalf("got %v", err)
	}
}

func TestValueStringForms(t *testing.T) {
	cases := map[string]Value{
		`"hi"`: String("hi"),
		"42":   Int(42),
		"true": Bool(true),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestValueKeyDistinguishesTypes(t *testing.T) {
	if Int(1).Key() == String("1").Key() {
		t.Fatal("keys collide across types")
	}
	if Int(1).Key() != Int(1).Key() {
		t.Fatal("key not deterministic")
	}
}

func TestBagContains(t *testing.T) {
	b := Bag{String("a"), Int(1)}
	if !b.Contains(String("a")) || !b.Contains(Int(1)) {
		t.Fatal("Contains missed present values")
	}
	if b.Contains(String("b")) || b.Contains(Int(2)) {
		t.Fatal("Contains found absent values")
	}
	var empty Bag
	if !empty.IsEmpty() || b.IsEmpty() {
		t.Fatal("IsEmpty wrong")
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{
		TypeString: "string", TypeInt: "int", TypeFloat: "float", TypeBool: "bool", TypeTime: "time",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q", ty, ty.String())
		}
	}
}
