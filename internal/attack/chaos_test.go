package attack

import (
	"context"
	"testing"
	"time"

	"drams"
	"drams/internal/blockchain"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/federation"
	"drams/internal/netsim"
	"drams/internal/xacml"
)

// TestChaosCatalogueShape pins the chaos fleet: one scenario per attack
// class, each fully specified.
func TestChaosCatalogueShape(t *testing.T) {
	cat := ChaosCatalogue()
	if len(cat) != 5 {
		t.Fatalf("chaos catalogue has %d scenarios, want 5", len(cat))
	}
	want := map[string]bool{
		ClassWithholding:  true,
		ClassEquivocation: true,
		ClassCensorship:   true,
		ClassOrdering:     true,
		ClassSuppression:  true,
	}
	seen := map[string]bool{}
	for _, sc := range cat {
		if !want[sc.Class] {
			t.Fatalf("unknown class %q", sc.Class)
		}
		if seen[sc.Class] {
			t.Fatalf("duplicate class %q", sc.Class)
		}
		seen[sc.Class] = true
		if sc.Name == "" || sc.Description == "" || len(sc.Expected) == 0 || sc.Run == nil {
			t.Fatalf("class %q underspecified", sc.Class)
		}
	}
}

// TestChaosCampaignDetectionMatrix is the executable form of experiment V7:
// every attack class must be detected on every trial, with zero false
// positives, under the pinned seed.
func TestChaosCampaignDetectionMatrix(t *testing.T) {
	rep, err := Campaign{Scenarios: ChaosCatalogue(), Trials: 1, Seed: 7}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Err != "" {
			t.Errorf("%s: injection failed: %s", r.Class, r.Err)
			continue
		}
		if r.Detected != r.Trials {
			t.Errorf("%s: detected %d/%d trials", r.Class, r.Detected, r.Trials)
		}
		if r.FalsePositives != 0 {
			t.Errorf("%s: %d false positives", r.Class, r.FalsePositives)
		}
	}
	if !rep.AllDetected() {
		t.Fatalf("campaign gate failed: %+v", rep.Results)
	}
}

// TestDetectionLatencyBounds bounds how many blocks each catalogue scenario
// may take from injection to alert on a synchronous (deterministic-delivery)
// network: tamper-class attacks are caught as soon as the records anchor;
// suppression-class attacks additionally wait out the Δ-block M3 window.
func TestDetectionLatencyBounds(t *testing.T) {
	const timeoutBlocks = 10
	net := netsim.New(netsim.Config{Synchronous: true, Seed: 21})
	defer net.Close()
	dep, err := drams.New(drams.Config{
		Policy:             detectPolicy(),
		Difficulty:         6,
		TimeoutBlocks:      timeoutBlocks,
		EmptyBlockInterval: 15 * time.Millisecond,
		Seed:               21,
		Transport:          net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	for _, sc := range Catalogue(escalateToDoctor) {
		sc := sc
		t.Run(sc.ID+"_"+sc.Name, func(t *testing.T) {
			cleanup, err := sc.Install(dep, "tenant-1")
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()

			// Suppression-class scenarios are only detectable once the
			// M3 deadline lapses; everything else anchors and alerts
			// within a handful of blocks.
			bound := uint64(16)
			for _, want := range sc.Expected {
				if want == core.AlertMessageSuppressed || want == core.AlertVerdictMissing {
					bound = timeoutBlocks + 16
				}
			}

			_, injectHeight := dep.InfraNode().Chain().Head()
			req := dep.NewRequest().Add(xacml.CatSubject, "role", xacml.String("intern"))
			_, _ = dep.Request("tenant-1", req) // drop-class attacks fail the call by design

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			alert, ok := waitAnyAlert(ctx, dep, req.ID, sc.Expected)
			if !ok {
				t.Fatalf("%s: no alert within deadline; saw %v", sc.ID, dep.Monitor.AlertsFor(req.ID))
			}
			if alert.Height > injectHeight+bound {
				t.Fatalf("%s: detection took %d blocks (inject height %d, alert height %d), bound %d",
					sc.ID, alert.Height-injectHeight, injectHeight, alert.Height, bound)
			}
		})
	}
}

// TestDeploymentEquivocationConvergence drives a full chain-level
// equivocation against a live federation: a Byzantine member double-mines
// sibling blocks for disjoint peer subsets, one carrying a record that
// conflicts with the victim's already-matched request. The federation must
// both detect (AlertEquivocation, exactly once per victim request) and
// converge — the fork heals under cumulative-work fork choice.
func TestDeploymentEquivocationConvergence(t *testing.T) {
	const seed = 11
	dep, err := drams.New(drams.Config{
		Policy:             ChaosPolicy(),
		Topology:           federation.SimpleTopology("equiv", 3),
		Difficulty:         6,
		TimeoutBlocks:      8,
		EmptyBlockInterval: 200 * time.Millisecond,
		Seed:               seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Clean exchange first: the honest records for the victim's request
	// are on-chain and matched, so the forged record is unambiguously the
	// conflicting second write.
	req := ChaosRequest(dep)
	if _, err := dep.RequestContext(ctx, "tenant-2", req); err != nil {
		t.Fatal(err)
	}
	if err := dep.WaitForMatched(ctx, req.ID); err != nil {
		t.Fatal(err)
	}

	view := dep.InfraNode().Chain()
	li := crypto.NewIdentityFromSeed("li@tenant-3", federation.IdentitySeed(seed, "li@tenant-3"))
	forged, err := ForgeConflictingRecord(view, li, "tenant-2", req.ID)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2, err := DoubleMine(ctx, view, "node@cloud-3", []blockchain.Transaction{forged}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := dep.Transport.Register("adversary@equiv")
	if err != nil {
		t.Fatal(err)
	}
	// Split-brain delivery: the monitor's side sees the sibling with the
	// forged record, the Byzantine member's side sees the empty sibling.
	DeliverBlock(ep, b1, "node@cloud-1", "node@cloud-2")
	DeliverBlock(ep, b2, "node@cloud-3")
	DeliverTx(ep, forged, "node@cloud-1", "node@cloud-2", "node@cloud-3")

	if _, err := dep.WaitForAlert(ctx, req.ID, core.AlertEquivocation); err != nil {
		t.Fatalf("equivocation not detected: %v (alerts: %v)", err, dep.Monitor.AlertsFor(req.ID))
	}

	// Exactly once per victim request, even while the fork resolves.
	time.Sleep(500 * time.Millisecond)
	n := 0
	for _, a := range dep.Monitor.AlertsFor(req.ID) {
		if a.Type == core.AlertEquivocation {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("AlertEquivocation raised %d times, want exactly 1", n)
	}

	// Both forks' followers converge onto one chain.
	deadline := time.Now().Add(30 * time.Second)
	for {
		d1 := dep.Nodes["cloud-1"].Chain().StateDigest()
		d2 := dep.Nodes["cloud-2"].Chain().StateDigest()
		d3 := dep.Nodes["cloud-3"].Chain().StateDigest()
		if d1 == d2 && d2 == d3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("forks did not converge: %s %s %s", d1.Short(), d2.Short(), d3.Short())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPartitionHealSoak runs the partition/heal chaos drill: the victim's
// whole member (chain node + PEP) is cut off mid-attack. While partitioned,
// the honest side must stay silent — no record anchored, so no M-alert may
// fire. After the heal, the trapped probe log rebroadcasts, arms the M3
// deadline and true detection lands within the bound.
func TestPartitionHealSoak(t *testing.T) {
	const timeoutBlocks = 8
	dep, err := drams.New(drams.Config{
		Policy:             ChaosPolicy(),
		Topology:           federation.SimpleTopology("soak", 3),
		Difficulty:         6,
		TimeoutBlocks:      timeoutBlocks,
		EmptyBlockInterval: 15 * time.Millisecond,
		Seed:               13,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if dep.Net == nil {
		t.Fatal("deployment has no netsim network")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Baseline: a clean exchange matches without alerts.
	clean := ChaosRequest(dep)
	if _, err := dep.RequestContext(ctx, "tenant-2", clean); err != nil {
		t.Fatal(err)
	}
	if err := dep.WaitForMatched(ctx, clean.ID); err != nil {
		t.Fatal(err)
	}

	// Cut the victim member off: its chain node and its tenant's PEP land
	// in one island, the rest of the federation in the other.
	dep.Net.Partition([]string{"node@cloud-3", "pep@tenant-3"})

	req := ChaosRequest(dep)
	reqCtx, reqCancel := context.WithTimeout(ctx, 3*time.Second)
	if _, err := dep.RequestContext(reqCtx, "tenant-3", req); err == nil {
		reqCancel()
		t.Fatal("partitioned PEP unexpectedly reached the PDP")
	}
	reqCancel()

	// Soak well past the Δ window: the probe's pep.request is trapped on
	// the partitioned node, so the honest side must not raise anything.
	_, h0 := dep.InfraNode().Chain().Head()
	for {
		if _, h := dep.InfraNode().Chain().Head(); h >= h0+timeoutBlocks+4 {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("chain stalled during partition soak")
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, a := range dep.Monitor.Alerts() {
		t.Fatalf("false alert during partition: %+v", a)
	}

	// Heal: the trapped record rebroadcasts, anchors, arms the deadline —
	// and the half-complete exchange is flagged within the bound.
	dep.Net.Heal()
	_, healHeight := dep.InfraNode().Chain().Head()
	alert, err := dep.WaitForAlert(ctx, req.ID, core.AlertMessageSuppressed)
	if err != nil {
		t.Fatalf("no detection after heal: %v (alerts: %v)", err, dep.Monitor.Alerts())
	}
	if bound := healHeight + timeoutBlocks + 16; alert.Height > bound {
		t.Fatalf("post-heal detection too slow: alert at height %d, healed at %d, bound %d",
			alert.Height, healHeight, bound)
	}
}

// TestDelayedAnchorBeyondM6Grace delays a pdp.response record past a policy
// rollout's grace window: the record was honest when produced (under v1),
// but the producer holds it until v1 has been superseded for more than Δ
// blocks. Anchoring it late must trip M6's version check.
func TestDelayedAnchorBeyondM6Grace(t *testing.T) {
	const timeoutBlocks = 8
	dep, err := drams.New(drams.Config{
		Policy:             ChaosPolicy(),
		Difficulty:         6,
		TimeoutBlocks:      timeoutBlocks,
		EmptyBlockInterval: 15 * time.Millisecond,
		Seed:               17,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	infra, err := dep.Topology().InfrastructureTenant()
	if err != nil {
		t.Fatal(err)
	}
	byz := Byzantine(dep.Nodes[infra.Cloud])

	req := ChaosRequest(dep)
	byz.DelayRecords(HoldRecords(core.KindPDPResponse, req.ID))
	if _, err := dep.RequestContext(ctx, "tenant-2", req); err != nil {
		t.Fatal(err)
	}

	// Supersede v1 and let the grace window lapse.
	v2 := ChaosPolicy()
	v2.Version = "v2"
	if err := dep.PublishPolicy(v2); err != nil {
		t.Fatal(err)
	}
	_, actHeight := dep.InfraNode().Chain().Head()
	for {
		if _, h := dep.InfraNode().Chain().Head(); h > actHeight+timeoutBlocks+2 {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("chain stalled while waiting out the grace window")
		}
		time.Sleep(20 * time.Millisecond)
	}

	byz.LiftCensorship()
	if _, err := dep.WaitForAlert(ctx, req.ID, core.AlertPolicyTampered); err != nil {
		t.Fatalf("stale anchor not flagged: %v (alerts: %v)", err, dep.Monitor.AlertsFor(req.ID))
	}
}
