package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"drams/internal/clock"
)

// dispatcherMonitor builds a monitor that is never started: handleEvent is
// driven directly, so the dispatcher is exercised without a chain node.
func dispatcherMonitor() *Monitor {
	return NewMonitor(nil, clock.System{})
}

func pumpAlert(m *Monitor, a Alert) {
	m.handleEvent(ContractName, EventAlert, a.Encode(), a.Height)
}

func pumpMatched(m *Monitor, reqID string, height uint64) {
	payload := []byte(fmt.Sprintf(`{"reqId":%q,"height":%d}`, reqID, height))
	m.handleEvent(ContractName, EventMatched, payload, height)
}

func TestSubscribeFilterSelectsEvents(t *testing.T) {
	m := dispatcherMonitor()
	defer m.Stop()

	all, cancelAll := m.Subscribe(context.Background(), AlertFilter{})
	defer cancelAll()
	byTenant, cancelTen := m.Subscribe(context.Background(), AlertFilter{Tenant: "t1"})
	defer cancelTen()
	byType, cancelType := m.Subscribe(context.Background(), AlertFilter{Types: []AlertType{AlertEquivocation}})
	defer cancelType()
	matchedOnly, cancelMatched := m.Subscribe(context.Background(), AlertFilter{Types: []AlertType{AlertMatched}})
	defer cancelMatched()

	pumpAlert(m, Alert{Type: AlertRequestTampered, ReqID: "r1", Tenant: "t1", Height: 1})
	pumpAlert(m, Alert{Type: AlertEquivocation, ReqID: "r2", Tenant: "t2", Height: 2})
	pumpMatched(m, "r3", 3)

	recv := func(ch <-chan Alert) []Alert {
		var out []Alert
		for {
			select {
			case a := <-ch:
				out = append(out, a)
			default:
				return out
			}
		}
	}
	// The zero filter carries every security alert but not the synthetic
	// completion events.
	if got := recv(all); len(got) != 2 {
		t.Fatalf("all-filter got %v", got)
	}
	if got := recv(byTenant); len(got) != 1 || got[0].ReqID != "r1" {
		t.Fatalf("tenant-filter got %v", got)
	}
	if got := recv(byType); len(got) != 1 || got[0].Type != AlertEquivocation {
		t.Fatalf("type-filter got %v", got)
	}
	if got := recv(matchedOnly); len(got) != 1 || got[0].Type != AlertMatched || got[0].ReqID != "r3" {
		t.Fatalf("matched-filter got %v", got)
	}
}

func TestSubscribeReplayDeliversHistory(t *testing.T) {
	m := dispatcherMonitor()
	defer m.Stop()

	pumpAlert(m, Alert{Type: AlertRequestTampered, ReqID: "r1", Tenant: "t1", Height: 1})
	pumpMatched(m, "r2", 2)

	ch, cancel := m.Subscribe(context.Background(), AlertFilter{ReqID: "r1", Replay: true})
	defer cancel()
	select {
	case a := <-ch:
		if a.Type != AlertRequestTampered {
			t.Fatalf("replayed %v", a)
		}
	default:
		t.Fatal("no replayed alert")
	}

	mch, mcancel := m.Subscribe(context.Background(), AlertFilter{
		Types: []AlertType{AlertMatched}, Replay: true,
	})
	defer mcancel()
	select {
	case a := <-mch:
		if a.Type != AlertMatched || a.ReqID != "r2" {
			t.Fatalf("replayed %v", a)
		}
	default:
		t.Fatal("no replayed matched event")
	}
}

func TestSlowConsumerDropAccounting(t *testing.T) {
	m := dispatcherMonitor()
	defer m.Stop()

	ch, cancel := m.Subscribe(context.Background(), AlertFilter{Buffer: 2})
	defer cancel()
	const n = 50
	for i := 0; i < n; i++ {
		pumpAlert(m, Alert{Type: AlertEquivocation, ReqID: fmt.Sprintf("r%d", i), Height: uint64(i)})
	}
	if got := m.Stats().StreamDropped; got != n-2 {
		t.Fatalf("StreamDropped = %d, want %d", got, n-2)
	}
	// The buffered prefix is intact: drops never reorder or corrupt.
	a := <-ch
	b := <-ch
	if a.ReqID != "r0" || b.ReqID != "r1" {
		t.Fatalf("buffered = %v, %v", a, b)
	}
	// A healthy peer subscribed later is unaffected by the slow one.
	fast, fcancel := m.Subscribe(context.Background(), AlertFilter{})
	defer fcancel()
	pumpAlert(m, Alert{Type: AlertEquivocation, ReqID: "fresh", Height: 99})
	if got := <-fast; got.ReqID != "fresh" {
		t.Fatalf("fast sub got %v", got)
	}
}

func TestSubscribeCancelAndContext(t *testing.T) {
	m := dispatcherMonitor()
	defer m.Stop()

	ch, cancel := m.Subscribe(context.Background(), AlertFilter{})
	if m.Stats().Subscribers != 1 {
		t.Fatalf("subscribers = %d", m.Stats().Subscribers)
	}
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
	if m.Stats().Subscribers != 0 {
		t.Fatalf("subscribers = %d after cancel", m.Stats().Subscribers)
	}

	ctx, ctxCancel := context.WithCancel(context.Background())
	ch2, cancel2 := m.Subscribe(ctx, AlertFilter{})
	defer cancel2()
	ctxCancel()
	select {
	case _, ok := <-ch2:
		if ok {
			t.Fatal("unexpected event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel not closed after ctx cancel")
	}
}

func TestMatchedRedeliveryPublishedOnce(t *testing.T) {
	m := dispatcherMonitor()
	defer m.Stop()

	ch, cancel := m.Subscribe(context.Background(), AlertFilter{Types: []AlertType{AlertMatched}})
	defer cancel()
	// Chain events are at-least-once: a reorg re-delivers Matched.
	pumpMatched(m, "r1", 3)
	pumpMatched(m, "r1", 5)
	if got := <-ch; got.ReqID != "r1" || got.Height != 3 {
		t.Fatalf("first completion = %v", got)
	}
	select {
	case got := <-ch:
		t.Fatalf("duplicate completion delivered: %v", got)
	default:
	}
	if got := m.Stats().Matched; got != 1 {
		t.Fatalf("Matched = %d, want 1", got)
	}
}

func TestSubscribeAfterStopYieldsClosedStream(t *testing.T) {
	m := dispatcherMonitor()
	m.Stop()
	ch, cancel := m.Subscribe(context.Background(), AlertFilter{})
	if _, ok := <-ch; ok {
		t.Fatal("subscription on a stopped monitor delivered an event")
	}
	cancel() // no-op, must not panic
	if got := m.Stats().Subscribers; got != 0 {
		t.Fatalf("subscribers = %d", got)
	}
}

func TestStopClosesSubscriptions(t *testing.T) {
	m := dispatcherMonitor()
	ch, cancel := m.Subscribe(context.Background(), AlertFilter{})
	m.Stop()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("unexpected event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel not closed by Stop")
	}
	cancel() // still safe after Stop
}

// TestSubscribeStorm hammers the dispatcher with concurrent subscribes,
// unsubscribes and a sustained alert storm; run under -race this is the
// safety net for the locking scheme.
func TestSubscribeStorm(t *testing.T) {
	m := dispatcherMonitor()
	defer m.Stop()

	const (
		storms   = 4
		alerts   = 500
		churners = 8
		rounds   = 40
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < storms; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < alerts; i++ {
				pumpAlert(m, Alert{
					Type:   AlertEquivocation,
					ReqID:  fmt.Sprintf("s%d-r%d", s, i),
					Tenant: fmt.Sprintf("t%d", i%3),
					Height: uint64(i),
				})
			}
		}(s)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ch, cancel := m.Subscribe(context.Background(), AlertFilter{
					Tenant: fmt.Sprintf("t%d", r%3),
					Buffer: 4,
				})
				// Drain a little, then churn away mid-stream.
				for i := 0; i < 2; i++ {
					select {
					case <-ch:
					case <-stop:
					default:
					}
				}
				cancel()
			}
		}(c)
	}
	wg.Wait()
	close(stop)

	if got := m.Stats().Subscribers; got != 0 {
		t.Fatalf("leaked %d subscribers", got)
	}
	if got := m.Stats().AlertsSeen; got != storms*alerts {
		t.Fatalf("alerts seen = %d, want %d", got, storms*alerts)
	}
}

func TestTrackedMapBounded(t *testing.T) {
	m := dispatcherMonitor()
	defer m.Stop()

	// Stragglers (no outcome ever) cannot grow tracking without bound.
	for i := 0; i < 3*maxTracked; i++ {
		m.TrackSubmission(fmt.Sprintf("straggler-%d", i))
	}
	if got := m.Stats().Tracked; got > maxTracked {
		t.Fatalf("tracked = %d, want <= %d", got, maxTracked)
	}

	// A matched outcome clears its entry immediately.
	m.TrackSubmission("will-match")
	before := m.Stats().Tracked
	pumpMatched(m, "will-match", 7)
	if got := m.Stats().Tracked; got != before-1 {
		t.Fatalf("tracked = %d after match, want %d", got, before-1)
	}

	// An alert outcome measures latency, then clears its entry.
	m.TrackSubmission("will-alert")
	before = m.Stats().Tracked
	pumpAlert(m, Alert{Type: AlertEquivocation, ReqID: "will-alert", Height: 8})
	if got := m.Stats().Tracked; got != before-1 {
		t.Fatalf("tracked = %d after alert, want %d", got, before-1)
	}
	if got := m.Stats().DetectionLatencyMs.Count; got != 1 {
		t.Fatalf("latency count = %d", got)
	}
}
