package contract

import (
	"encoding/json"
	"errors"
	"testing"

	"drams/internal/crypto"
)

func kvCall(method, key string, value []byte) Call {
	args, _ := json.Marshal(KVArgs{Key: key, Value: value})
	return Call{Contract: "kv", Method: method, Args: args}
}

func execKV(t *testing.T, e *Engine, st *State, caller, method, key string, value []byte) ([]Event, error) {
	t.Helper()
	return e.Execute(CallCtx{Caller: caller}, st, kvCall(method, key, value))
}

func newKVEngine() (*Engine, *State) {
	r := NewRegistry()
	r.MustRegister(&KVContract{ContractName: "kv"})
	r.MustRegister(&AnchorContract{ContractName: "anchor"})
	return NewEngine(r), NewState()
}

func TestKVPutGet(t *testing.T) {
	e, st := newKVEngine()
	events, err := execKV(t, e, st, "alice", "put", "greeting", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != "Put" {
		t.Fatalf("events = %+v", events)
	}
	v, ok := ReadKV(Namespace(st, "kv"), "greeting")
	if !ok || string(v) != "hello" {
		t.Fatalf("read = %q, %v", v, ok)
	}
}

func TestKVOwnership(t *testing.T) {
	e, st := newKVEngine()
	if _, err := execKV(t, e, st, "alice", "put", "k", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := execKV(t, e, st, "mallory", "put", "k", []byte("evil")); err == nil {
		t.Fatal("foreign overwrite accepted")
	}
	// Owner can update and delete.
	if _, err := execKV(t, e, st, "alice", "put", "k", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := execKV(t, e, st, "alice", "del", "k", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := ReadKV(Namespace(st, "kv"), "k"); ok {
		t.Fatal("delete failed")
	}
	// After delete, anyone can claim the key.
	if _, err := execKV(t, e, st, "mallory", "put", "k", []byte("m")); err != nil {
		t.Fatalf("reclaim after delete: %v", err)
	}
}

func TestKVBadArgs(t *testing.T) {
	e, st := newKVEngine()
	_, err := e.Execute(CallCtx{}, st, Call{Contract: "kv", Method: "put", Args: json.RawMessage(`{`)})
	if !errors.Is(err, ErrBadArgs) {
		t.Fatalf("got %v", err)
	}
	if _, err := execKV(t, e, st, "a", "put", "", nil); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("empty key: %v", err)
	}
	if _, err := execKV(t, e, st, "a", "nope", "k", nil); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method: %v", err)
	}
}

func anchorCall(t *testing.T, stream string, seq uint64, root crypto.Digest, count int) Call {
	t.Helper()
	args, err := json.Marshal(AnchorArgs{Stream: stream, Seq: seq, Root: root, Count: count})
	if err != nil {
		t.Fatal(err)
	}
	return Call{Contract: "anchor", Method: "anchor", Args: args}
}

func TestAnchorHappyPath(t *testing.T) {
	e, st := newKVEngine()
	root := crypto.Sum([]byte("batch-1"))
	events, err := e.Execute(CallCtx{Height: 12, Caller: "li-1"}, st, anchorCall(t, "logs", 1, root, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != "Anchored" {
		t.Fatalf("events = %+v", events)
	}
	ns := Namespace(st, "anchor")
	rec, ok := ReadAnchor(ns, "logs", 1)
	if !ok {
		t.Fatal("anchor missing")
	}
	if rec.Root != root || rec.Count != 64 || rec.Height != 12 || rec.By != "li-1" {
		t.Fatalf("rec = %+v", rec)
	}
	head, ok := ReadAnchorHead(ns, "logs")
	if !ok || head != 1 {
		t.Fatalf("head = %d, %v", head, ok)
	}
}

func TestAnchorIdempotentRetry(t *testing.T) {
	e, st := newKVEngine()
	root := crypto.Sum([]byte("b"))
	if _, err := e.Execute(CallCtx{Caller: "li"}, st, anchorCall(t, "s", 1, root, 1)); err != nil {
		t.Fatal(err)
	}
	// Same (stream, seq, root): client retry, accepted silently.
	if _, err := e.Execute(CallCtx{Caller: "li"}, st, anchorCall(t, "s", 1, root, 1)); err != nil {
		t.Fatalf("idempotent retry rejected: %v", err)
	}
}

func TestAnchorConflictRejected(t *testing.T) {
	e, st := newKVEngine()
	if _, err := e.Execute(CallCtx{Caller: "li"}, st, anchorCall(t, "s", 1, crypto.Sum([]byte("a")), 1)); err != nil {
		t.Fatal(err)
	}
	_, err := e.Execute(CallCtx{Caller: "li"}, st, anchorCall(t, "s", 1, crypto.Sum([]byte("b")), 1))
	if err == nil {
		t.Fatal("conflicting anchor accepted")
	}
	// The original record must be intact (failed call rolled back).
	rec, _ := ReadAnchor(Namespace(st, "anchor"), "s", 1)
	if rec.Root != crypto.Sum([]byte("a")) {
		t.Fatal("conflict mutated original anchor")
	}
}

func TestAnchorListOrdered(t *testing.T) {
	e, st := newKVEngine()
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := e.Execute(CallCtx{Height: seq, Caller: "li"}, st,
			anchorCall(t, "s", seq, crypto.SumAll([]byte{byte(seq)}), int(seq))); err != nil {
			t.Fatal(err)
		}
	}
	list := ListAnchors(Namespace(st, "anchor"), "s")
	if len(list) != 5 {
		t.Fatalf("list len = %d", len(list))
	}
	for i, rec := range list {
		if rec.Count != i+1 {
			t.Fatalf("list out of order: %+v", list)
		}
	}
	head, _ := ReadAnchorHead(Namespace(st, "anchor"), "s")
	if head != 5 {
		t.Fatalf("head = %d", head)
	}
}

func TestAnchorSeparateStreams(t *testing.T) {
	e, st := newKVEngine()
	if _, err := e.Execute(CallCtx{Caller: "li"}, st, anchorCall(t, "a", 1, crypto.Sum([]byte("x")), 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(CallCtx{Caller: "li"}, st, anchorCall(t, "b", 1, crypto.Sum([]byte("y")), 1)); err != nil {
		t.Fatalf("stream isolation broken: %v", err)
	}
}

func TestAnchorBadMethodAndArgs(t *testing.T) {
	e, st := newKVEngine()
	if _, err := e.Execute(CallCtx{}, st, Call{Contract: "anchor", Method: "x"}); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("got %v", err)
	}
	if _, err := e.Execute(CallCtx{}, st, Call{Contract: "anchor", Method: "anchor", Args: json.RawMessage(`{]`)}); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("got %v", err)
	}
	args, _ := json.Marshal(AnchorArgs{Stream: ""})
	if _, err := e.Execute(CallCtx{}, st, Call{Contract: "anchor", Method: "anchor", Args: args}); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("empty stream: %v", err)
	}
}
