package drams

import (
	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/federation"
)

// ChainParams are the consensus-critical knobs every process of a
// federation must agree on: they feed the smart-contract configuration and
// the chain validation rules, so two processes with different values
// compute different state digests from the same transactions.
type ChainParams struct {
	// Difficulty is the PoW difficulty in leading-zero bits (default 8).
	Difficulty uint8
	// MaxTxPerBlock caps block size (default 256).
	MaxTxPerBlock int
	// TimeoutBlocks is the log-match M3 window Δ (default 5 blocks).
	TimeoutBlocks uint64
	// RequireVerdict demands an analyser verdict per request.
	RequireVerdict bool
	// VerifyWorkers / VerifyCacheSize / SequentialVerify tune the local
	// signature-verification pipeline (performance-only: they do not
	// affect chain state and may differ between processes).
	VerifyWorkers    int
	VerifyCacheSize  int
	SequentialVerify bool
}

func (p ChainParams) withDefaults() ChainParams {
	if p.Difficulty == 0 {
		p.Difficulty = 8
	}
	if p.MaxTxPerBlock == 0 {
		p.MaxTxPerBlock = 256
	}
	if p.TimeoutBlocks == 0 {
		p.TimeoutBlocks = 5
	}
	return p
}

// ChainMaterial is everything a federation process derives from the shared
// seed + tenant list: component identities, the chain allowlist, the
// shared LI key, the contract registry and the chain configuration.
// drams.New (single process) and the drams-node daemon (one process per
// tenant) both build their chains from this, so the two construction paths
// can join the same federation — provided they pass the same seed, tenant
// set and ChainParams.
type ChainMaterial struct {
	// Chain is the node configuration shared by every chain node.
	Chain blockchain.Config
	// LIIdentities holds each tenant's Logging Interface signer, keyed by
	// tenant name.
	LIIdentities map[string]*crypto.Identity
	// AnalyserID and PAPID sign verdicts and policy announcements.
	AnalyserID, PAPID *crypto.Identity
	// Key is the federation's shared symmetric LI key K.
	Key crypto.Key
}

// NewChainMaterial deterministically derives the federation's consensus
// material. tenantNames must list every tenant (edge and infrastructure)
// in the federation; ordering does not matter.
func NewChainMaterial(seed uint64, tenantNames []string, p ChainParams) ChainMaterial {
	p = p.withDefaults()
	m := ChainMaterial{
		LIIdentities: make(map[string]*crypto.Identity, len(tenantNames)),
		Key:          federation.SharedKey(seed),
	}
	var allow []crypto.PublicIdentity
	for _, ten := range tenantNames {
		id := crypto.NewIdentityFromSeed("li@"+ten, federation.IdentitySeed(seed, "li@"+ten))
		m.LIIdentities[ten] = id
		allow = append(allow, id.Public())
	}
	m.AnalyserID = crypto.NewIdentityFromSeed("analyser", federation.IdentitySeed(seed, "analyser"))
	m.PAPID = crypto.NewIdentityFromSeed("pap", federation.IdentitySeed(seed, "pap"))
	allow = append(allow, m.AnalyserID.Public(), m.PAPID.Public())

	registry := contract.NewRegistry()
	registry.MustRegister(core.NewLogMatchContract(core.MatchConfig{
		TimeoutBlocks:  p.TimeoutBlocks,
		PAP:            m.PAPID.Name(),
		Analyser:       m.AnalyserID.Name(),
		RequireVerdict: p.RequireVerdict,
		// M6 trusts the policy lifecycle contract's chain-replicated
		// anchor once it holds an active policy.
		PolicyContract: core.PolicyContractName,
	}))
	registry.MustRegister(&core.PolicyContract{PAP: m.PAPID.Name()})
	registry.MustRegister(&contract.AnchorContract{ContractName: "anchor"})
	registry.MustRegister(&contract.KVContract{ContractName: "kv"})

	m.Chain = blockchain.Config{
		Difficulty:       p.Difficulty,
		MaxTxPerBlock:    p.MaxTxPerBlock,
		Identities:       allow,
		Registry:         registry,
		VerifyWorkers:    p.VerifyWorkers,
		VerifyCacheSize:  p.VerifyCacheSize,
		SequentialVerify: p.SequentialVerify,
	}
	return m
}
