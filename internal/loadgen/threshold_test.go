package loadgen

import (
	"strings"
	"testing"
)

func TestParseThreshold(t *testing.T) {
	cases := []struct {
		expr    string
		metric  string
		op      string
		value   float64
		wantErr string
	}{
		{expr: "p99<5ms", metric: "p99", op: "<", value: 5},
		{expr: "p99 < 5ms", metric: "p99", op: "<", value: 5},
		{expr: "p50<=250us", metric: "p50", op: "<=", value: 0.25},
		{expr: "mean<1.5s", metric: "mean", op: "<", value: 1500},
		{expr: "error_rate<0.1%", metric: "error_rate", op: "<", value: 0.001},
		{expr: "error_rate<=1%", metric: "error_rate", op: "<=", value: 0.01},
		{expr: "dropped<1%", metric: "dropped", op: "<", value: 0.01},
		{expr: "rate>100", metric: "rate", op: ">", value: 100},
		{expr: "rate>=99.5", metric: "rate", op: ">=", value: 99.5},
		{expr: "count>1000", metric: "count", op: ">", value: 1000},
		{expr: "alert_p99<2s", metric: "alert_p99", op: "<", value: 2000},
		{expr: "p999<1m", metric: "p999", op: "<", value: 60000},

		{expr: "", wantErr: "empty"},
		{expr: "p99", wantErr: "no comparison"},
		{expr: "p99=5ms", wantErr: "no comparison"},
		{expr: "p99==5ms", wantErr: "no comparison"},
		{expr: "bogus<5ms", wantErr: "unknown metric"},
		{expr: "<5ms", wantErr: "missing metric"},
		{expr: "p99<", wantErr: "missing value"},
		{expr: "p99<fast", wantErr: "cannot parse value"},
		{expr: "p99<5 ms extra", wantErr: "cannot parse value"},
		{expr: "error_rate<%", wantErr: "cannot parse value"},
	}
	for _, tc := range cases {
		th, err := ParseThreshold(tc.expr)
		if tc.wantErr != "" {
			if err == nil {
				t.Errorf("ParseThreshold(%q): expected error containing %q, got %+v", tc.expr, tc.wantErr, th)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseThreshold(%q): error %q does not contain %q", tc.expr, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseThreshold(%q): unexpected error %v", tc.expr, err)
			continue
		}
		if th.Metric != tc.metric || th.Op != tc.op || !almostEq(th.Value, tc.value) {
			t.Errorf("ParseThreshold(%q) = {%s %s %g}, want {%s %s %g}",
				tc.expr, th.Metric, th.Op, th.Value, tc.metric, tc.op, tc.value)
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestThresholdEvaluate(t *testing.T) {
	m := map[string]float64{"p99": 4.2, "error_rate": 0.002, "dropped": 0, "rate": 120}
	cases := []struct {
		expr string
		pass bool
	}{
		{"p99<5ms", true},
		{"p99<4ms", false},
		{"p99<=4.2", true},
		{"p99>4ms", true},
		{"p99>=4.2", true},
		{"error_rate<0.1%", false},
		{"error_rate<1%", true},
		{"dropped<1%", true},
		{"rate>100", true},
		{"rate>200", false},
		// Metric absent from the run (e.g. alert latency with monitoring
		// off) must fail loudly, not vacuously pass.
		{"alert_p99<1s", false},
	}
	for _, tc := range cases {
		th, err := ParseThreshold(tc.expr)
		if err != nil {
			t.Fatalf("ParseThreshold(%q): %v", tc.expr, err)
		}
		v := th.Evaluate(m)
		if v.Pass != tc.pass {
			t.Errorf("Evaluate(%q) pass=%v, want %v (actual=%g)", tc.expr, v.Pass, tc.pass, v.Actual)
		}
		if v.Expr != tc.expr {
			t.Errorf("Evaluate(%q): verdict echoes expr %q", tc.expr, v.Expr)
		}
	}
}

func TestEvaluateThresholdsAggregate(t *testing.T) {
	m := map[string]float64{"p99": 10, "error_rate": 0}
	ths, err := ParseThresholds([]string{"p99<20ms", "error_rate<1%"})
	if err != nil {
		t.Fatal(err)
	}
	verdicts, ok := EvaluateThresholds(ths, m)
	if !ok || len(verdicts) != 2 {
		t.Fatalf("expected all-pass with 2 verdicts, got ok=%v verdicts=%+v", ok, verdicts)
	}
	ths2, err := ParseThresholds([]string{"p99<20ms", "p99<5ms"})
	if err != nil {
		t.Fatal(err)
	}
	verdicts, ok = EvaluateThresholds(ths2, m)
	if ok {
		t.Fatalf("expected failure, got ok=true: %+v", verdicts)
	}
	if !verdicts[0].Pass || verdicts[1].Pass {
		t.Fatalf("per-verdict results wrong: %+v", verdicts)
	}
	out := FormatVerdicts(verdicts)
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "FAIL") {
		t.Fatalf("FormatVerdicts output missing PASS/FAIL markers:\n%s", out)
	}
}

func TestParseThresholdsPropagatesError(t *testing.T) {
	if _, err := ParseThresholds([]string{"p99<5ms", "junk"}); err == nil {
		t.Fatal("expected error for malformed list entry")
	}
}

func TestSortedMetricKeys(t *testing.T) {
	keys := sortedMetricKeys(map[string]float64{"p99": 1, "dropped": 2, "rate": 3})
	want := []string{"dropped", "p99", "rate"}
	if len(keys) != len(want) {
		t.Fatalf("got %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("got %v, want %v", keys, want)
		}
	}
}
