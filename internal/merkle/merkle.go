// Package merkle implements binary Merkle hash trees with membership proofs.
//
// DRAMS uses Merkle trees in two places: (1) each blockchain block commits to
// its transaction set through a Merkle root, and (2) the hybrid
// database+blockchain store (paper §III, reference [9]) anchors batches of
// database writes on-chain as a single root, with per-entry membership proofs
// verified at audit time.
//
// Leaves are domain-separated from interior nodes (0x00 / 0x01 prefixes) so
// that a proof for an interior node can never masquerade as a leaf —
// preventing the classic second-preimage attack on naive Merkle trees.
package merkle

import (
	"errors"
	"fmt"

	"drams/internal/crypto"
)

var (
	// ErrEmptyTree is returned when building a tree over zero leaves.
	ErrEmptyTree = errors.New("merkle: cannot build tree with no leaves")
	// ErrIndexRange is returned when a proof is requested for an index
	// outside the tree.
	ErrIndexRange = errors.New("merkle: leaf index out of range")
)

const (
	leafPrefix     = 0x00
	interiorPrefix = 0x01
)

// LeafHash computes the domain-separated hash of a leaf payload.
func LeafHash(data []byte) crypto.Digest {
	buf := make([]byte, 1+len(data))
	buf[0] = leafPrefix
	copy(buf[1:], data)
	return crypto.Sum(buf)
}

// NodeHash combines two child digests into a parent digest.
func NodeHash(left, right crypto.Digest) crypto.Digest {
	buf := make([]byte, 1+2*crypto.DigestSize)
	buf[0] = interiorPrefix
	copy(buf[1:], left[:])
	copy(buf[1+crypto.DigestSize:], right[:])
	return crypto.Sum(buf)
}

// Tree is an immutable Merkle tree built over a sequence of leaves. An odd
// node at any level is promoted (not duplicated), which avoids the Bitcoin
// CVE-2012-2459 duplicate-leaf ambiguity.
type Tree struct {
	levels [][]crypto.Digest // levels[0] = leaf hashes, last level = [root]
	n      int
}

// Build constructs a tree over the given leaf payloads.
func Build(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, ErrEmptyTree
	}
	level := make([]crypto.Digest, len(leaves))
	for i, l := range leaves {
		level[i] = LeafHash(l)
	}
	return buildFromLeafHashes(level), nil
}

// BuildFromHashes constructs a tree whose leaves are pre-hashed digests
// (useful when leaf payloads are large and already fingerprinted).
func BuildFromHashes(leafHashes []crypto.Digest) (*Tree, error) {
	if len(leafHashes) == 0 {
		return nil, ErrEmptyTree
	}
	level := make([]crypto.Digest, len(leafHashes))
	copy(level, leafHashes)
	return buildFromLeafHashes(level), nil
}

func buildFromLeafHashes(level []crypto.Digest) *Tree {
	t := &Tree{n: len(level)}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]crypto.Digest, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, NodeHash(level[i], level[i+1]))
			} else {
				// Odd node: promote unchanged.
				next = append(next, level[i])
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// Root returns the tree's root digest.
func (t *Tree) Root() crypto.Digest {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// Len returns the number of leaves.
func (t *Tree) Len() int { return t.n }

// ProofStep is one sibling digest on the path from a leaf to the root.
type ProofStep struct {
	Sibling crypto.Digest `json:"sibling"`
	Left    bool          `json:"left"` // true if the sibling is the left child
}

// Proof is a membership proof for one leaf.
type Proof struct {
	LeafIndex int         `json:"leafIndex"`
	Steps     []ProofStep `json:"steps"`
}

// Prove returns the membership proof for the leaf at index.
func (t *Tree) Prove(index int) (Proof, error) {
	if index < 0 || index >= t.n {
		return Proof{}, fmt.Errorf("merkle: prove index %d of %d leaves: %w", index, t.n, ErrIndexRange)
	}
	p := Proof{LeafIndex: index}
	idx := index
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		sib := idx ^ 1
		if sib < len(level) {
			p.Steps = append(p.Steps, ProofStep{Sibling: level[sib], Left: sib < idx})
		}
		// If sib >= len(level) the node was promoted; no step is recorded.
		idx /= 2
	}
	return p, nil
}

// Verify checks that leaf payload data is included under root via proof.
func Verify(root crypto.Digest, data []byte, proof Proof) bool {
	return VerifyHash(root, LeafHash(data), proof)
}

// VerifyHash checks inclusion of a pre-hashed leaf digest under root.
func VerifyHash(root crypto.Digest, leafHash crypto.Digest, proof Proof) bool {
	cur := leafHash
	for _, s := range proof.Steps {
		if s.Left {
			cur = NodeHash(s.Sibling, cur)
		} else {
			cur = NodeHash(cur, s.Sibling)
		}
	}
	return cur == root
}

// RootOf is a convenience that computes the Merkle root of the payloads
// without retaining the tree. It returns the zero digest for no leaves,
// providing a stable sentinel for "empty set" (e.g. an empty block).
func RootOf(leaves [][]byte) crypto.Digest {
	if len(leaves) == 0 {
		return crypto.Digest{}
	}
	t, err := Build(leaves)
	if err != nil {
		return crypto.Digest{}
	}
	return t.Root()
}

// RootOfHashes computes the root over pre-hashed leaves, zero digest if none.
func RootOfHashes(hashes []crypto.Digest) crypto.Digest {
	if len(hashes) == 0 {
		return crypto.Digest{}
	}
	t, err := BuildFromHashes(hashes)
	if err != nil {
		return crypto.Digest{}
	}
	return t.Root()
}
