package blockchain

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"drams/internal/contract"
	"drams/internal/crypto"
)

func testTx(t testing.TB, name string, nonce uint64) Transaction {
	t.Helper()
	id := testIdentity(t, name, byte(nonce)+77)
	tx, err := NewTransaction(id, nonce, contract.Call{
		Contract: "drams.logmatch", Method: "log",
		Args: json.RawMessage(`{"reqId":"r-1","kind":"pep.request"}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func testBlockForCodec(t testing.TB, txCount int) *Block {
	t.Helper()
	var txs []Transaction
	for i := 0; i < txCount; i++ {
		txs = append(txs, testTx(t, "alice", uint64(i+1)))
	}
	return &Block{
		Header: BlockHeader{
			Height:       7,
			PrevHash:     crypto.Sum([]byte("parent")),
			MerkleRoot:   ComputeMerkleRoot(txs),
			TimeUnixNano: 1712345678901234567,
			Difficulty:   9,
			Nonce:        0xdeadbeefcafe,
			Miner:        "member@tenant-1",
		},
		Txs: txs,
	}
}

func TestTxBinaryRoundTrip(t *testing.T) {
	tx := testTx(t, "alice", 3)
	enc := EncodeTx(tx)
	if enc[0] != codecVersion {
		t.Fatalf("encoding starts with 0x%02x, want version byte", enc[0])
	}
	got, err := DecodeTx(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tx) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tx)
	}
	if got.ID() != tx.ID() {
		t.Fatal("tx ID changed through encoding")
	}
}

func TestTxJSONFallbackDecode(t *testing.T) {
	tx := testTx(t, "alice", 3)
	got, err := DecodeTx(EncodeTxJSON(tx))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != tx.ID() {
		t.Fatal("JSON-decoded tx differs")
	}
}

func TestBlockBinaryRoundTrip(t *testing.T) {
	for _, txCount := range []int{0, 1, 5} {
		b := testBlockForCodec(t, txCount)
		enc := b.Encode()
		got, err := DecodeBlock(enc)
		if err != nil {
			t.Fatalf("txCount=%d: %v", txCount, err)
		}
		if !reflect.DeepEqual(got, b) {
			t.Fatalf("txCount=%d round trip mismatch", txCount)
		}
		if got.Hash() != b.Hash() {
			t.Fatalf("txCount=%d: block hash changed", txCount)
		}
	}
}

func TestBlockJSONFallbackDecode(t *testing.T) {
	b := testBlockForCodec(t, 3)
	got, err := DecodeBlock(EncodeBlockJSON(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != b.Hash() {
		t.Fatal("JSON-decoded block differs")
	}
	if len(got.Txs) != 3 || got.Txs[1].ID() != b.Txs[1].ID() {
		t.Fatal("JSON-decoded txs differ")
	}
}

// Empty optional fields must round-trip without being conflated with
// present-but-empty values the signature covers.
func TestTxRoundTripEmptyFields(t *testing.T) {
	tx := Transaction{From: "x", Nonce: 0, Call: contract.Call{Contract: "c", Method: "m"}}
	got, err := DecodeTx(EncodeTx(tx))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tx) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tx)
	}
}

func TestDecodeRejectsHostileInput(t *testing.T) {
	valid := testBlockForCodec(t, 2).Encode()
	cases := map[string][]byte{
		"empty":            nil,
		"unknown format":   {0x7f, 1, 2, 3},
		"bare version":     {codecVersion},
		"truncated header": valid[:20],
		"truncated txs":    valid[:len(valid)-5],
		"trailing bytes":   append(append([]byte(nil), valid...), 0),
	}
	// A lying tx count: the count field sits right after the miner string.
	b := testBlockForCodec(t, 2)
	countOff := 1 + 8 + crypto.DigestSize + crypto.DigestSize + 8 + 1 + 8 + 2 + len(b.Header.Miner)
	lying := append([]byte(nil), valid...)
	lying[countOff] = 0xff
	lying[countOff+1] = 0xff
	cases["lying tx count"] = lying

	for name, data := range cases {
		if _, err := DecodeBlock(data); err == nil {
			t.Errorf("%s: block decode accepted hostile input", name)
		}
	}
	validTx := EncodeTx(testTx(t, "alice", 1))
	for name, data := range map[string][]byte{
		"empty":          nil,
		"unknown format": {0x7f, 1, 2, 3},
		"truncated":      validTx[:len(validTx)-3],
		"trailing":       append(append([]byte(nil), validTx...), 0),
	} {
		if _, err := DecodeTx(data); err == nil {
			t.Errorf("%s: tx decode accepted hostile input", name)
		}
	}
}

func TestAppendTxReusesBuffer(t *testing.T) {
	tx := testTx(t, "alice", 1)
	buf := make([]byte, 0, 4096)
	one, err := AppendTx(buf, &tx)
	if err != nil {
		t.Fatal(err)
	}
	if &one[0] != &buf[:1][0] {
		t.Fatal("AppendTx reallocated despite sufficient capacity")
	}
	two, err := AppendTx(one, &tx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(two[:len(one)], two[len(one):]) {
		t.Fatal("consecutive appends differ")
	}
}

// Binary encoding must be meaningfully smaller than JSON for the same tx —
// the wire-bandwidth half of the hot-path win.
func TestBinarySmallerThanJSON(t *testing.T) {
	b := testBlockForCodec(t, 8)
	bin, jsn := len(b.Encode()), len(EncodeBlockJSON(b))
	if bin >= jsn {
		t.Fatalf("binary block (%d bytes) not smaller than JSON (%d bytes)", bin, jsn)
	}
}

func TestRangeRespRoundTrip(t *testing.T) {
	resp := rangeResp{Blocks: [][]byte{
		testBlockForCodec(t, 2).Encode(),
		testBlockForCodec(t, 0).Encode(),
	}}
	got, err := decodeRangeResp(encodeRangeResp(&resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatal("binary range response round trip mismatch")
	}
	jsonEnc, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err = decodeRangeResp(jsonEnc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatal("JSON range response round trip mismatch")
	}
}
