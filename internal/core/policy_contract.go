package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/xacml"
)

// PolicyContractName is the on-chain address of the DRAMS policy lifecycle
// contract. It lives in package core (not pap) because the log-match
// contract's M6 check reads its state cross-contract, and the off-chain PAP
// components in internal/pap import core for the monitor wiring.
const PolicyContractName = "drams.policy"

// PolicyContract event types.
const (
	// EventPolicyStaged: a new version (or a re-activation of an existing
	// one) was accepted and scheduled; watchers pre-stage the parsed set.
	EventPolicyStaged = "PolicyStaged"
	// EventPolicyActivated: the scheduled height was reached and the
	// version is now the federation's active policy.
	EventPolicyActivated = "PolicyActivated"
	// EventPolicyConflict: a re-submission of an existing version carried a
	// different digest — visible equivocation, AnchorConflict-style.
	EventPolicyConflict = "PolicyConflict"
)

// PolicyContract method names.
const (
	// MethodPolicyUpdate proposes a new policy version: full serialized
	// PolicySet + digest + activation height.
	MethodPolicyUpdate = "update"
	// MethodPolicyActivate re-schedules an already-stored version
	// (rollback / re-activation); no policy bytes travel again.
	MethodPolicyActivate = "activate"
)

// PolicyUpdate is the argument payload of PolicyContract.update: the policy
// itself (canonical JSON of the xacml.PolicySet), its version and digest,
// and the chain height at which every member must activate it.
type PolicyUpdate struct {
	Version string `json:"version"`
	// Policy is the full serialized xacml.PolicySet.
	Policy []byte `json:"policy"`
	// Digest is the declared canonical digest of Policy; the contract
	// recomputes and rejects mismatches, so the anchored digest is always
	// the digest of the stored bytes.
	Digest crypto.Digest `json:"digest"`
	// ActivateHeight is the absolute chain height at which the version
	// becomes active. Heights at or below the executing block activate at
	// the executing block's boundary — still the same height everywhere.
	ActivateHeight uint64 `json:"activateHeight"`
}

// Encode serialises the update.
func (pu PolicyUpdate) Encode() []byte {
	b, err := json.Marshal(pu)
	if err != nil {
		panic(fmt.Sprintf("core: encode policy update: %v", err))
	}
	return b
}

// PolicyActivateArgs are the arguments of PolicyContract.activate.
type PolicyActivateArgs struct {
	Version        string `json:"version"`
	ActivateHeight uint64 `json:"activateHeight"`
}

// PolicyRecord is the stored metadata of one proposed version.
type PolicyRecord struct {
	Digest crypto.Digest `json:"digest"`
	// Height is the block height the proposal executed at.
	Height uint64 `json:"height"`
	By     string `json:"by"`
}

// PolicyActivation is one entry of the on-chain activation history and the
// payload of EventPolicyActivated.
type PolicyActivation struct {
	Version string        `json:"version"`
	Digest  crypto.Digest `json:"digest"`
	// Height is the block height the activation fired at.
	Height uint64 `json:"height"`
}

// PolicyContract is the on-chain half of the Policy Administration Point:
// policy versions are first-class chain-replicated objects (full serialized
// set + digest), and activation is height-gated so every federation member
// flips at the same block height. It is deterministic: proposals validate
// structurally (digest recomputation, XACML parse) over transaction bytes
// only, and scheduled activations fire from the block hook.
type PolicyContract struct {
	// PAP is the only identity allowed to propose or re-activate policies
	// ("" disables the gate — tests only). Consensus configuration: every
	// node must deploy the same value.
	PAP string
}

var (
	_ contract.Contract  = (*PolicyContract)(nil)
	_ contract.BlockHook = (*PolicyContract)(nil)
)

// Name implements contract.Contract.
func (pc *PolicyContract) Name() string { return PolicyContractName }

// State keys. Scheduled activations sort by due height (zero-padded hex),
// the same trick the log-match deadline index uses.
func policyBlobKey(version string) string { return "blob/" + version }
func policyMetaKey(version string) string { return "meta/" + version }
func policySchedKey(due uint64, version string) string {
	return fmt.Sprintf("sched/%016x/%s", due, version)
}
func policyHistKey(seq uint64) string { return fmt.Sprintf("hist/%016x", seq) }

// policyDeactKey records the height at which a version stopped being
// active, giving the M6 check a bounded grace window for in-flight
// decisions around a flip.
func policyDeactKey(version string) string { return "deact/" + version }

const (
	policyActiveVerKey = "active"
	policyHistSeqKey   = "histseq"
)

// Execute implements contract.Contract.
func (pc *PolicyContract) Execute(ctx contract.CallCtx, st contract.StateDB, call contract.Call) ([]contract.Event, error) {
	if pc.PAP != "" && ctx.Caller != pc.PAP {
		return nil, fmt.Errorf("core: policy %s from %q, only %q may administer policies",
			call.Method, ctx.Caller, pc.PAP)
	}
	switch call.Method {
	case MethodPolicyUpdate:
		return pc.execUpdate(ctx, st, call.Args)
	case MethodPolicyActivate:
		return pc.execActivate(ctx, st, call.Args)
	default:
		return nil, fmt.Errorf("%w: %q", contract.ErrUnknownMethod, call.Method)
	}
}

func (pc *PolicyContract) execUpdate(ctx contract.CallCtx, st contract.StateDB, args []byte) ([]contract.Event, error) {
	var pu PolicyUpdate
	if err := json.Unmarshal(args, &pu); err != nil {
		return nil, fmt.Errorf("%w: %v", contract.ErrBadArgs, err)
	}
	if pu.Version == "" || len(pu.Policy) == 0 {
		return nil, fmt.Errorf("%w: incomplete policy update", contract.ErrBadArgs)
	}
	actual := crypto.Sum(pu.Policy)
	if actual != pu.Digest {
		return nil, fmt.Errorf("core: policy %q digest mismatch: declared %s, content %s",
			pu.Version, pu.Digest.Short(), actual.Short())
	}
	ps, err := xacml.DecodePolicySet(pu.Policy)
	if err != nil {
		return nil, fmt.Errorf("%w: policy does not parse: %v", contract.ErrBadArgs, err)
	}
	if ps.Version != pu.Version {
		return nil, fmt.Errorf("%w: policy set carries version %q, update says %q",
			contract.ErrBadArgs, ps.Version, pu.Version)
	}

	if raw, ok := st.Get(policyMetaKey(pu.Version)); ok {
		var prev PolicyRecord
		if err := json.Unmarshal(raw, &prev); err == nil && prev.Digest == pu.Digest {
			// Idempotent re-submit (client retry, or re-publishing a
			// superseded version instead of using activate): the anchor is
			// untouched but the requested activation still schedules —
			// OnBlock no-ops if the version is already active, so a pure
			// retry converges while a re-publish genuinely re-activates.
			return pc.schedule(ctx, st, pu.Version, pu.Digest, pu.ActivateHeight)
		}
		// Equivocation: keep the original anchor untouched and make the
		// attempt visible on-chain (the engine drops events of failed
		// transactions, so — like the log-match equivocation alert — the
		// conflict is flagged by a successful tx that changes no state;
		// the Admin turns the event into a client-side error).
		payload, _ := json.Marshal(map[string]any{
			"version": pu.Version, "by": ctx.Caller,
			"anchored": prev.Digest.String(), "attempted": pu.Digest.String(),
		})
		return []contract.Event{{Type: EventPolicyConflict, Payload: payload}}, nil
	}

	rec := PolicyRecord{Digest: pu.Digest, Height: ctx.Height, By: ctx.Caller}
	meta, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("core: encode policy record: %w", err)
	}
	st.Set(policyBlobKey(pu.Version), pu.Policy)
	st.Set(policyMetaKey(pu.Version), meta)
	return pc.schedule(ctx, st, pu.Version, pu.Digest, pu.ActivateHeight)
}

func (pc *PolicyContract) execActivate(ctx contract.CallCtx, st contract.StateDB, args []byte) ([]contract.Event, error) {
	var pa PolicyActivateArgs
	if err := json.Unmarshal(args, &pa); err != nil {
		return nil, fmt.Errorf("%w: %v", contract.ErrBadArgs, err)
	}
	raw, ok := st.Get(policyMetaKey(pa.Version))
	if !ok {
		return nil, fmt.Errorf("core: activate unknown policy version %q", pa.Version)
	}
	var rec PolicyRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("core: corrupt policy record for %q: %v", pa.Version, err)
	}
	return pc.schedule(ctx, st, pa.Version, rec.Digest, pa.ActivateHeight)
}

// schedule stages an activation: due heights at or below the executing
// block fire at this block's boundary (OnBlock runs after the block's
// transactions), later heights wait in the sorted schedule index.
func (pc *PolicyContract) schedule(ctx contract.CallCtx, st contract.StateDB, version string, digest crypto.Digest, due uint64) ([]contract.Event, error) {
	if due < ctx.Height {
		due = ctx.Height
	}
	st.Set(policySchedKey(due, version), []byte("1"))
	payload, _ := json.Marshal(PolicyActivation{Version: version, Digest: digest, Height: due})
	return []contract.Event{{Type: EventPolicyStaged, Payload: payload}}, nil
}

// OnBlock implements contract.BlockHook: it fires every scheduled
// activation whose height has been reached, flipping the active pointer and
// appending to the on-chain activation history.
func (pc *PolicyContract) OnBlock(height uint64, blockTime time.Time, st contract.StateDB) []contract.Event {
	var events []contract.Event
	for _, key := range st.Keys("sched/") {
		rest := strings.TrimPrefix(key, "sched/")
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			st.Delete(key)
			continue
		}
		var due uint64
		if _, err := fmt.Sscanf(rest[:slash], "%x", &due); err != nil {
			st.Delete(key)
			continue
		}
		if due > height {
			break // keys are sorted by due height
		}
		version := rest[slash+1:]
		st.Delete(key)

		raw, ok := st.Get(policyMetaKey(version))
		if !ok {
			continue
		}
		var rec PolicyRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			continue
		}
		if prev, ok := st.Get(policyActiveVerKey); ok {
			if string(prev) == version {
				continue // already active: re-activation is a no-op
			}
			st.Set(policyDeactKey(string(prev)), []byte(fmt.Sprintf("%d", height)))
		}
		st.Set(policyActiveVerKey, []byte(version))
		st.Delete(policyDeactKey(version))

		var seq uint64
		if b, ok := st.Get(policyHistSeqKey); ok {
			fmt.Sscanf(string(b), "%d", &seq)
		}
		seq++
		st.Set(policyHistSeqKey, []byte(fmt.Sprintf("%d", seq)))
		act := PolicyActivation{Version: version, Digest: rec.Digest, Height: height}
		enc, _ := json.Marshal(act)
		st.Set(policyHistKey(seq), enc)
		events = append(events, contract.Event{Type: EventPolicyActivated, Payload: enc})
	}
	return events
}

// ---------------------------------------------------------------------------
// State readers. They operate on the policy contract's namespaced view
// (Chain.ReadState(PolicyContractName, ...)) for off-chain components, with
// Cross* variants over a contract.CrossReader for consensus code (M6).

// ReadActivePolicy returns the active version and its anchored digest.
func ReadActivePolicy(st contract.StateDB) (string, crypto.Digest, bool) {
	ver, ok := st.Get(policyActiveVerKey)
	if !ok {
		return "", crypto.Digest{}, false
	}
	d, ok := ReadPolicyDigest(st, string(ver))
	if !ok {
		return "", crypto.Digest{}, false
	}
	return string(ver), d, true
}

// ReadPolicyDigest returns the anchored digest of a stored version.
func ReadPolicyDigest(st contract.StateDB, version string) (crypto.Digest, bool) {
	raw, ok := st.Get(policyMetaKey(version))
	if !ok {
		return crypto.Digest{}, false
	}
	var rec PolicyRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return crypto.Digest{}, false
	}
	return rec.Digest, true
}

// ReadPolicyBlob returns the stored serialized policy set of a version.
func ReadPolicyBlob(st contract.StateDB, version string) ([]byte, bool) {
	return st.Get(policyBlobKey(version))
}

// ReadPolicyHistory returns the activation history, oldest first.
func ReadPolicyHistory(st contract.StateDB) []PolicyActivation {
	keys := st.Keys("hist/")
	out := make([]PolicyActivation, 0, len(keys))
	for _, k := range keys {
		b, ok := st.Get(k)
		if !ok {
			continue
		}
		var act PolicyActivation
		if err := json.Unmarshal(b, &act); err != nil {
			continue
		}
		out = append(out, act)
	}
	return out
}

// ReadPolicyDeactivatedAt returns the height at which a previously active
// version was superseded (absent for the active version and for versions
// never activated).
func ReadPolicyDeactivatedAt(st contract.StateDB, version string) (uint64, bool) {
	b, ok := st.Get(policyDeactKey(version))
	if !ok {
		return 0, false
	}
	var h uint64
	if _, err := fmt.Sscanf(string(b), "%d", &h); err != nil {
		return 0, false
	}
	return h, true
}

// crossState adapts one contract's namespace of a CrossReader to the
// read-only part of contract.StateDB so the Read* helpers above work
// unchanged inside another contract's execution.
type crossState struct {
	cross contract.CrossReader
	name  string
}

func (c crossState) Get(key string) ([]byte, bool) { return c.cross.Read(c.name, key) }
func (c crossState) Set(string, []byte)            { panic("core: cross-contract state is read-only") }
func (c crossState) Delete(string)                 { panic("core: cross-contract state is read-only") }
func (c crossState) Keys(prefix string) []string   { return c.cross.ReadKeys(c.name, prefix) }
