package blockchain

import (
	"context"
	"testing"
	"time"
)

// A gossip filter returning false for everything models a withholding
// member: it keeps mining and importing, but nothing leaves the node — not
// block announcements, not tx rebroadcasts.
func TestGossipFilterSuppressesOutbound(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	nodes, _ := testCluster(t, 2, alice)
	byz, honest := nodes[0], nodes[1]

	byz.SetGossipFilter(func(kind string, payload []byte) bool { return false })

	tx, _ := NewTransaction(alice, 1, putCall("held", "v"))
	if err := byz.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if rec, err := byz.WaitForReceipt(ctx, tx.ID(), 1); err != nil || !rec.OK {
		t.Fatalf("withholding node must still mine locally: rec=%+v err=%v", rec, err)
	}
	// Outlast a few rebroadcast intervals: neither the block announcement
	// nor the periodic tx re-gossip may leak.
	time.Sleep(600 * time.Millisecond)
	if n := honest.Chain().AccountNonce("alice"); n != 0 {
		t.Fatalf("gossip leaked through the filter: honest nonce = %d", n)
	}

	// After release the next mined block announces normally and the honest
	// node backfills the withheld ancestor.
	byz.SetGossipFilter(nil)
	tx2, _ := NewTransaction(alice, 2, putCall("free", "v"))
	if err := byz.SubmitTx(tx2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		return honest.Chain().AccountNonce("alice") == 2
	}, "honest node catches up after gossip release")
}

// A collect filter models a censoring producer: submitted transactions stay
// pending (valid, rebroadcastable) but never enter this node's blocks.
func TestCollectFilterCensorsSender(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	nodes, _ := testCluster(t, 1, alice)
	n := nodes[0]

	n.SetCollectFilter(func(txs []Transaction) []Transaction {
		out := make([]Transaction, 0, len(txs))
		for _, tx := range txs {
			if tx.From != "alice" {
				out = append(out, tx)
			}
		}
		return out
	})

	tx, _ := NewTransaction(alice, 1, putCall("censored", "v"))
	if err := n.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	if got := n.Chain().AccountNonce("alice"); got != 0 {
		t.Fatalf("censored tx was mined: nonce = %d", got)
	}

	// Lifting the filter frees the held transaction; the second submission
	// wakes the (otherwise idle) mining loop and both are mined in nonce
	// order.
	n.SetCollectFilter(nil)
	tx2, _ := NewTransaction(alice, 2, putCall("after", "v"))
	if err := n.SubmitTx(tx2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if rec, err := n.WaitForReceipt(ctx, tx.ID(), 1); err != nil || !rec.OK {
		t.Fatalf("held tx not mined after lift: rec=%+v err=%v", rec, err)
	}
}
