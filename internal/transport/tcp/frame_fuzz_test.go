package tcp

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: it must
// reject or accept without panicking, and anything it accepts must survive a
// re-encode/re-read round trip unchanged.
func FuzzReadFrame(f *testing.F) {
	seed, err := appendFrame(nil, &frame{
		typ: fCall, corr: 7, from: "node-a", to: "node-b", kind: "bc.block",
		payload: []byte{0x01, 0xff, 0x00},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		re, err := appendFrame(nil, &got)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		back, err := readFrame(bufio.NewReader(bytes.NewReader(re)))
		if err != nil {
			t.Fatalf("re-read of canonical frame failed: %v", err)
		}
		if back.typ != got.typ || back.corr != got.corr || back.from != got.from ||
			back.to != got.to || back.kind != got.kind || back.errStr != got.errStr ||
			!bytes.Equal(back.payload, got.payload) {
			t.Fatalf("frame not canonical:\n got %+v\nwant %+v", back, got)
		}
	})
}

// FuzzFrameRoundTrip drives the encoder with arbitrary field values; every
// encodable frame must read back identical.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(1), uint64(0), "a", "b", "kind", "", []byte("payload"))
	f.Add(byte(3), uint64(1<<40), "", "", "", "boom", []byte(nil))
	f.Fuzz(func(t *testing.T, typ byte, corr uint64, from, to, kind, errStr string, payload []byte) {
		in := frame{typ: typ, corr: corr, from: from, to: to, kind: kind, errStr: errStr, payload: payload}
		enc, err := appendFrame(nil, &in)
		if err != nil {
			return // oversize fields are rejected, not encoded
		}
		got, err := readFrame(bufio.NewReader(bytes.NewReader(enc)))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		samePayload := bytes.Equal(got.payload, in.payload)
		if got.typ != in.typ || got.corr != in.corr || got.from != in.from ||
			got.to != in.to || got.kind != in.kind || got.errStr != in.errStr || !samePayload {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, in)
		}
	})
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	in := frame{typ: fMsg, corr: 42, from: "node@tenant-1", to: "node@infrastructure",
		kind: "bc.block", payload: make([]byte, 512)}
	enc, err := appendFrame(nil, &in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	buf := make([]byte, 0, len(enc))
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		if buf, err = appendFrame(buf, &in); err != nil {
			b.Fatal(err)
		}
		if _, err := readFrame(bufio.NewReader(bytes.NewReader(buf))); err != nil {
			b.Fatal(err)
		}
	}
}
