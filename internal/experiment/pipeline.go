package experiment

import (
	"fmt"
	"time"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/xacml"
)

// V1Params parameterise the signature-verification pipeline comparison.
type V1Params struct {
	// BatchSizes are the transaction batch sizes compared (block-sized).
	BatchSizes []int
	// Workers sizes the batch verifier's pool (0 = GOMAXPROCS).
	Workers int
}

// DefaultV1Params sweeps typical block sizes.
func DefaultV1Params() V1Params {
	return V1Params{BatchSizes: []int{64, 256, 1024}}
}

// RunV1 compares block-validation signature checking across the three
// verification modes: sequential (pre-pipeline baseline), batch with a cold
// cache (worker-pool fanout only), and batch with a warm cache (the steady
// state: every transaction was already verified at mempool admission, so
// block validation is pure cache hits).
func RunV1(p V1Params) (Table, error) {
	t := Table{
		ID:     "V1",
		Title:  "signature-verification pipeline: block validation cost per mode",
		Header: []string{"batch", "sequential_us_per_tx", "batch_cold_us_per_tx", "batch_warm_us_per_tx", "warm_speedup"},
		Notes: []string{
			"sequential: one inline ed25519 check per tx (SequentialVerify baseline)",
			"batch-cold: worker-pool fanout, empty verified-tx LRU",
			"batch-warm: every tx already verified at mempool admission (gossip steady state)",
		},
	}
	var seed [32]byte
	seed[0] = 0x51
	id := crypto.NewIdentityFromSeed("v1-writer", seed)
	reg := blockchain.NewIdentityRegistry(id.Public())
	for _, size := range p.BatchSizes {
		txs := make([]blockchain.Transaction, size)
		for i := range txs {
			call := contract.Call{Contract: "kv", Method: "put", Args: []byte(fmt.Sprintf(`{"key":"k%d"}`, i))}
			tx, err := blockchain.NewTransaction(id, uint64(i+1), call)
			if err != nil {
				return t, err
			}
			txs[i] = tx
		}

		seqStart := time.Now()
		for i := range txs {
			if err := reg.VerifyTx(&txs[i]); err != nil {
				return t, err
			}
		}
		seqUs := usPer(time.Since(seqStart), size)

		cold := blockchain.NewTxVerifier(reg, blockchain.VerifierConfig{Workers: p.Workers, CacheSize: -1})
		coldStart := time.Now()
		if err := cold.VerifyAll(txs); err != nil {
			return t, err
		}
		coldUs := usPer(time.Since(coldStart), size)

		warm := blockchain.NewTxVerifier(reg, blockchain.VerifierConfig{Workers: p.Workers, CacheSize: 2 * size})
		if err := warm.VerifyAll(txs); err != nil { // admission pass fills the LRU
			return t, err
		}
		warmStart := time.Now()
		if err := warm.VerifyAll(txs); err != nil {
			return t, err
		}
		warmUs := usPer(time.Since(warmStart), size)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.2f", seqUs), fmt.Sprintf("%.2f", coldUs), fmt.Sprintf("%.2f", warmUs),
			fmt.Sprintf("%.1fx", seqUs/warmUs),
		})
	}
	return t, nil
}

// V2Params parameterise the PDP decision-cache comparison.
type V2Params struct {
	// RuleCounts are the policy sizes swept.
	RuleCounts []int
	// Requests is the number of distinct requests in the working set.
	Requests int
	// Repeats is how many passes are made over the working set (the cached
	// PDP misses on the first pass and hits on the rest).
	Repeats int
	// CacheSize bounds the decision cache (0 = default).
	CacheSize int
}

// DefaultV2Params sweeps small-to-large policies over a repeated working
// set.
func DefaultV2Params() V2Params {
	return V2Params{RuleCounts: []int{10, 100, 1000}, Requests: 128, Repeats: 8}
}

// RunV2 measures repeated-request PDP evaluation with and without the
// decision cache, cross-checking that both produce identical decisions.
func RunV2(p V2Params) (Table, error) {
	t := Table{
		ID:     "V2",
		Title:  "PDP decision cache: repeated-request evaluation cost",
		Header: []string{"rules", "uncached_us_per_req", "cached_us_per_req", "speedup", "hit_rate"},
		Notes: []string{
			fmt.Sprintf("%d distinct requests, %d passes; the cache misses on pass 1, hits after", p.Requests, p.Repeats),
			"cached and uncached decisions are cross-checked for equality each run",
		},
	}
	for _, rules := range p.RuleCounts {
		gen := xacml.NewGenerator(uint64(rules), xacml.GenParams{
			Rules: rules, Policies: 1, Attrs: 4, ValuesPerAttr: 4, MaxCondDepth: 2,
		})
		ps := gen.PolicySet("v2", "v1")
		reqs := make([]*xacml.Request, p.Requests)
		for i := range reqs {
			reqs[i] = gen.Request(fmt.Sprintf("r%d", i))
		}
		total := p.Requests * p.Repeats

		plain := xacml.NewPDP(ps)
		plainStart := time.Now()
		plainRes := make([]xacml.Decision, len(reqs))
		for rep := 0; rep < p.Repeats; rep++ {
			for i, r := range reqs {
				res, err := plain.Evaluate(r)
				if err != nil {
					return t, err
				}
				plainRes[i] = res.Decision
			}
		}
		plainUs := usPer(time.Since(plainStart), total)

		cached := xacml.NewCachedPDP(ps, p.CacheSize)
		cachedStart := time.Now()
		for rep := 0; rep < p.Repeats; rep++ {
			for i, r := range reqs {
				res, err := cached.Evaluate(r)
				if err != nil {
					return t, err
				}
				if res.Decision != plainRes[i] {
					return t, fmt.Errorf("V2 rules=%d req %d: cached %v != uncached %v", rules, i, res.Decision, plainRes[i])
				}
			}
		}
		cachedUs := usPer(time.Since(cachedStart), total)
		stats := cached.Cache().Stats()
		hitRate := float64(stats.Hits) / float64(stats.Hits+stats.Misses)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rules),
			fmt.Sprintf("%.2f", plainUs), fmt.Sprintf("%.2f", cachedUs),
			fmt.Sprintf("%.1fx", plainUs/cachedUs),
			fmt.Sprintf("%.2f", hitRate),
		})
	}
	return t, nil
}

// usPer converts a total duration over n operations to µs per operation.
func usPer(d time.Duration, n int) float64 {
	return float64(d.Microseconds()) / float64(n)
}
