package federation

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"drams/internal/metrics"
	"drams/internal/trace"
	"drams/internal/transport"
	"drams/internal/xacml"
)

// Message kinds for access-control evaluation calls.
const (
	kindEvaluate      = "ac.eval"
	kindEvaluateBatch = "ac.evalBatch"
)

// batchEvalRequest is the wire form of a pipelined evaluation call: N
// encoded requests sharing one network round-trip.
type batchEvalRequest struct {
	Reqs []json.RawMessage `json:"reqs"`
}

// batchEvalItem is one per-request outcome inside a batch reply. Err is set
// when that request failed to decode or evaluate; failures are per-item so
// one bad request cannot poison the rest of the batch.
type batchEvalItem struct {
	Result json.RawMessage `json:"result,omitempty"`
	Err    string          `json:"err,omitempty"`
}

// batchEvalResponse is the wire form of a batch reply, positionally aligned
// with the request batch.
type batchEvalResponse struct {
	Items []batchEvalItem `json:"items"`
}

// PDPProbe is the hook interface a DRAMS agent implements at the PDP side
// (infrastructure tenant).
type PDPProbe interface {
	PDPRequestReceived(req *xacml.Request)
	PDPResponseSent(req *xacml.Request, res xacml.Result)
}

// PDPService exposes the federation PDP on the network. It wraps an
// xacml.Evaluator; the attack framework substitutes a compromised evaluator
// to model altered evaluation processes (threats of paper §I).
type PDPService struct {
	ep        transport.Endpoint
	evaluator atomic.Pointer[evalBox]
	probe     atomic.Pointer[probeBoxPDP]
	tracer    atomic.Pointer[trace.Tracer]

	evaluations metrics.Counter
	failures    metrics.Counter
}

type evalBox struct{ ev xacml.Evaluator }
type probeBoxPDP struct{ p PDPProbe }

// NewPDPService registers the PDP service on the network at PDPAddr.
func NewPDPService(net transport.Transport, evaluator xacml.Evaluator) (*PDPService, error) {
	ep, err := net.Register(PDPAddr)
	if err != nil {
		return nil, fmt.Errorf("federation: register PDP: %w", err)
	}
	s := &PDPService{ep: ep}
	s.evaluator.Store(&evalBox{ev: evaluator})
	ep.OnCall(kindEvaluate, s.handleEvaluate)
	ep.OnCall(kindEvaluateBatch, s.handleEvaluateBatch)
	return s, nil
}

// SetEvaluator swaps the decision engine (policy reload or attack
// injection).
func (s *PDPService) SetEvaluator(ev xacml.Evaluator) {
	s.evaluator.Store(&evalBox{ev: ev})
}

// SetProbe attaches the DRAMS agent hook.
func (s *PDPService) SetProbe(p PDPProbe) {
	s.probe.Store(&probeBoxPDP{p: p})
}

// SetTracer attaches (or clears, with nil) the end-to-end span recorder.
func (s *PDPService) SetTracer(t *trace.Tracer) { s.tracer.Store(t) }

// PDPStats is a snapshot of the service counters.
type PDPStats struct {
	Evaluations, Failures int64
}

// Stats snapshots the counters.
func (s *PDPService) Stats() PDPStats {
	return PDPStats{Evaluations: s.evaluations.Value(), Failures: s.failures.Value()}
}

// Evaluations returns how many requests the service has processed.
func (s *PDPService) Evaluations() int64 { return s.evaluations.Value() }

// evaluateOne runs the probe→evaluate→probe path for a single encoded
// request; both the single and the batch handler go through it so every
// request produces identical probe logs regardless of how it arrived.
func (s *PDPService) evaluateOne(payload []byte) ([]byte, error) {
	req, err := xacml.DecodeRequest(payload)
	if err != nil {
		s.failures.Inc()
		return nil, fmt.Errorf("federation: PDP decode request: %w", err)
	}
	start := time.Now()
	if pb := s.probe.Load(); pb != nil && pb.p != nil {
		pb.p.PDPRequestReceived(req)
	}
	box := s.evaluator.Load()
	if box == nil || box.ev == nil {
		s.failures.Inc()
		return nil, errors.New("federation: PDP has no evaluator")
	}
	res, err := box.ev.Evaluate(req)
	if err != nil {
		s.failures.Inc()
		return nil, fmt.Errorf("federation: PDP evaluate: %w", err)
	}
	s.evaluations.Inc()
	if pb := s.probe.Load(); pb != nil && pb.p != nil {
		pb.p.PDPResponseSent(req, res)
	}
	s.tracer.Load().Span(req.TraceID, trace.StagePDPEval, start, time.Since(start))
	return res.Encode(), nil
}

func (s *PDPService) handleEvaluate(from string, payload []byte) ([]byte, error) {
	return s.evaluateOne(payload)
}

func (s *PDPService) handleEvaluateBatch(from string, payload []byte) ([]byte, error) {
	var batch batchEvalRequest
	if err := json.Unmarshal(payload, &batch); err != nil {
		s.failures.Inc()
		return nil, fmt.Errorf("federation: PDP decode batch: %w", err)
	}
	out := batchEvalResponse{Items: make([]batchEvalItem, len(batch.Reqs))}
	for i, raw := range batch.Reqs {
		res, err := s.evaluateOne(raw)
		if err != nil {
			out.Items[i].Err = err.Error()
			continue
		}
		out.Items[i].Result = res
	}
	b, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("federation: PDP encode batch: %w", err)
	}
	return b, nil
}
