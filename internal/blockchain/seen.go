package blockchain

import (
	"sync"
	"time"

	"drams/internal/clock"
	"drams/internal/crypto"
)

// seenCache remembers digests of recently handled gossip payloads so the
// periodic rebroadcast flood (every peer re-sends its pending transactions a
// few times a second) costs a duplicate one hash instead of a full wire
// decode plus transaction-ID derivation — under heavy backlog that decode
// work compounds into the very latency that created the backlog.
//
// Entries age out via two generations: inserts go to the current generation,
// lookups consult both, and the generations rotate when the current one
// fills or seenTTL elapses. A digest therefore suppresses duplicates for at
// least one and at most two rotation periods — bounded memory, and a payload
// that becomes relevant again (e.g. a transaction dropped in a reorg and
// re-gossiped) is only muted briefly.
type seenCache struct {
	mu        sync.Mutex
	cur, prev map[crypto.Digest]struct{}
	max       int
	clk       clock.Clock
	rotated   time.Time
}

const (
	seenCacheSize = 4096
	seenTTL       = 2 * time.Second
)

func newSeenCache(max int, clk clock.Clock) *seenCache {
	return &seenCache{
		cur:     make(map[crypto.Digest]struct{}, max),
		prev:    map[crypto.Digest]struct{}{},
		max:     max,
		clk:     clk,
		rotated: clk.Now(),
	}
}

// rotateLocked starts a fresh generation when the current one is full or
// stale.
func (c *seenCache) rotateLocked() {
	if len(c.cur) < c.max && c.clk.Since(c.rotated) < seenTTL {
		return
	}
	c.prev = c.cur
	c.cur = make(map[crypto.Digest]struct{}, c.max)
	c.rotated = c.clk.Now()
}

// has reports whether d was marked within the retention window.
func (c *seenCache) has(d crypto.Digest) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rotateLocked()
	if _, ok := c.cur[d]; ok {
		return true
	}
	_, ok := c.prev[d]
	return ok
}

// len reports how many digests are currently retained (both generations).
func (c *seenCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cur) + len(c.prev)
}

// add marks d as handled.
func (c *seenCache) add(d crypto.Digest) {
	c.mu.Lock()
	c.rotateLocked()
	c.cur[d] = struct{}{}
	c.mu.Unlock()
}
