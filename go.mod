module drams

go 1.24
