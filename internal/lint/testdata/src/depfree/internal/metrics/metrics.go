// Package metrics is a fixture stratum member.
package metrics

// Registry collects counters.
type Registry struct{ n int }

// Inc bumps the counter.
func (r *Registry) Inc() { r.n++ }
