package analysis

import (
	"fmt"

	"drams/internal/xacml"
)

// maxWitnesses bounds how many counterexamples a report retains.
const maxWitnesses = 16

// CompletenessReport is the outcome of a completeness check: a policy is
// complete over the abstract domain when every request yields Permit or
// Deny (never NotApplicable or Indeterminate).
type CompletenessReport struct {
	Checked        int
	Complete       bool
	NotApplicable  int
	Indeterminate  int
	NAWitnesses    []*xacml.Request
	IndetWitnesses []*xacml.Request
}

// CheckCompleteness evaluates the compiled policy over its abstract domain.
func CheckCompleteness(c *Compiled, dom *Domain, params EnumParams) CompletenessReport {
	rep := CompletenessReport{Complete: true}
	for _, r := range dom.Requests(params) {
		rep.Checked++
		switch c.ExpectedSimple(r) {
		case xacml.NotApplicable:
			rep.Complete = false
			rep.NotApplicable++
			if len(rep.NAWitnesses) < maxWitnesses {
				rep.NAWitnesses = append(rep.NAWitnesses, r)
			}
		case xacml.IndeterminateDP:
			rep.Complete = false
			rep.Indeterminate++
			if len(rep.IndetWitnesses) < maxWitnesses {
				rep.IndetWitnesses = append(rep.IndetWitnesses, r)
			}
		}
	}
	return rep
}

// ImpactWitness is a request whose decision changed between two policy
// versions.
type ImpactWitness struct {
	Request *xacml.Request
	Before  xacml.Decision
	After   xacml.Decision
}

// String renders the witness compactly.
func (w ImpactWitness) String() string {
	return fmt.Sprintf("%s: %s → %s", string(w.Request.CanonicalBytes()), w.Before, w.After)
}

// ImpactReport is the outcome of a change-impact analysis.
type ImpactReport struct {
	Checked     int
	Differences int
	Equivalent  bool
	Witnesses   []ImpactWitness
}

// ChangeImpact compares two policy versions over the union of their
// abstract domains and reports witness requests whose (four-valued)
// decision differs — the ref [8] capability DRAMS uses when policies are
// updated.
func ChangeImpact(before, after *xacml.PolicySet, params EnumParams) ImpactReport {
	dom := ExtractDomain(before, after)
	cb, ca := Compile(before), Compile(after)
	rep := ImpactReport{Equivalent: true}
	for _, r := range dom.Requests(params) {
		rep.Checked++
		db, da := cb.ExpectedSimple(r), ca.ExpectedSimple(r)
		if db != da {
			rep.Equivalent = false
			rep.Differences++
			if len(rep.Witnesses) < maxWitnesses {
				rep.Witnesses = append(rep.Witnesses, ImpactWitness{Request: r, Before: db, After: da})
			}
		}
	}
	return rep
}

// RedundancyReport lists rules whose removal does not change any decision
// over the abstract domain (domain-relative redundancy).
type RedundancyReport struct {
	Checked        int // requests evaluated per rule
	RedundantRules []string
}

// CheckRedundancy tests each rule of each (possibly nested) policy for
// domain-relative redundancy.
func CheckRedundancy(ps *xacml.PolicySet, params EnumParams) RedundancyReport {
	dom := ExtractDomain(ps)
	reqs := dom.Requests(params)
	base := Compile(ps)
	baseline := make([]xacml.Decision, len(reqs))
	for i, r := range reqs {
		baseline[i] = base.ExpectedSimple(r)
	}
	rep := RedundancyReport{Checked: len(reqs)}

	type ruleRef struct {
		policy *xacml.Policy
		idx    int
		id     string
	}
	var refs []ruleRef
	var collect func(ps *xacml.PolicySet)
	collect = func(ps *xacml.PolicySet) {
		for _, item := range ps.Items {
			if item.Policy != nil {
				for i, ru := range item.Policy.Rules {
					refs = append(refs, ruleRef{policy: item.Policy, idx: i, id: ru.ID})
				}
			}
			if item.Set != nil {
				collect(item.Set)
			}
		}
	}
	collect(ps)

	for _, ref := range refs {
		// Temporarily remove the rule, recompile, compare.
		rules := ref.policy.Rules
		without := make([]*xacml.Rule, 0, len(rules)-1)
		without = append(without, rules[:ref.idx]...)
		without = append(without, rules[ref.idx+1:]...)
		ref.policy.Rules = without
		mod := Compile(ps)
		redundant := true
		for i, r := range reqs {
			if mod.ExpectedSimple(r) != baseline[i] {
				redundant = false
				break
			}
		}
		ref.policy.Rules = rules // restore
		if redundant {
			rep.RedundantRules = append(rep.RedundantRules, ref.id)
		}
	}
	return rep
}
