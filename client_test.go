package drams_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"drams"
	"drams/internal/core"
	"drams/internal/xacml"
)

// openTestDeployment is testDeployment via the Open/options path.
func openTestDeployment(t *testing.T, opts ...drams.Option) *drams.Deployment {
	t.Helper()
	base := []drams.Option{
		drams.WithDifficulty(6),
		drams.WithTimeoutBlocks(20),
		drams.WithEmptyBlockInterval(15 * time.Millisecond),
		drams.WithSeed(42),
	}
	dep, err := drams.Open(testPolicy("v1"), append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Close)
	return dep
}

func TestOpenOptionsAndAccessors(t *testing.T) {
	dep := openTestDeployment(t)

	if _, err := dep.Client("tenant-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Client("ghost"); err == nil {
		t.Fatal("Client for unknown tenant succeeded")
	}
	if _, err := dep.PEP("tenant-2"); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.PEP("ghost"); err == nil {
		t.Fatal("PEP for unknown tenant succeeded")
	}
	if _, err := dep.Node("cloud-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Node("ghost"); err == nil {
		t.Fatal("Node for unknown cloud succeeded")
	}

	// The monitoring toggle flows through the option.
	off, err := drams.Open(testPolicy("v1"),
		drams.WithDifficulty(6),
		drams.WithMonitoring(false),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(off.Close)
	if off.Monitor != nil {
		t.Fatal("WithMonitoring(false) left the monitor running")
	}
	if _, _, err := off.Alerts(context.Background(), drams.AlertFilter{}); !errors.Is(err, drams.ErrMonitoringDisabled) {
		t.Fatalf("Alerts with monitoring off = %v", err)
	}
}

func TestClientDecideMatchesOnChain(t *testing.T) {
	dep := openTestDeployment(t)
	client, err := dep.Client("tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	req := client.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	enf, err := client.Decide(ctx20(t), req)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() {
		t.Fatalf("doctor read = %s", enf.Decision)
	}
	if err := dep.WaitForMatched(ctx20(t), req.ID); err != nil {
		t.Fatal(err)
	}
}

func TestClientDecideHonorsCancellation(t *testing.T) {
	dep := openTestDeployment(t)
	client, err := dep.Client("tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Decide(ctx, doctorRequest(dep)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Decide with cancelled ctx = %v", err)
	}
	// The compat path accepts a context too.
	if _, err := dep.RequestContext(ctx, "tenant-1", doctorRequest(dep)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RequestContext with cancelled ctx = %v", err)
	}
}

// TestDecideBatchEquivalence checks the satellite guarantee: a pipelined
// batch produces the same decisions and the same on-chain evidence (4 log
// records per exchange, all matched, zero alerts) as sequential Decide.
func TestDecideBatchEquivalence(t *testing.T) {
	dep := openTestDeployment(t, drams.WithTimeoutBlocks(80))
	client, err := dep.Client("tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	roles := []string{"doctor", "intern", "nurse"}
	build := func() []*xacml.Request {
		reqs := make([]*xacml.Request, n)
		for i := range reqs {
			reqs[i] = client.NewRequest().
				Add(xacml.CatSubject, "role", xacml.String(roles[i%len(roles)])).
				Add(xacml.CatAction, "op", xacml.String("read"))
		}
		return reqs
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancelCtx()

	waitAll := func(reqs []*xacml.Request) {
		t.Helper()
		for _, req := range reqs {
			if err := dep.WaitForMatched(ctx, req.ID); err != nil {
				t.Fatal(err)
			}
		}
	}

	seqReqs := build()
	seqDecisions := make([]xacml.Decision, n)
	logsBefore := dep.Monitor.Stats().LogsSeen
	for i, req := range seqReqs {
		enf, err := client.Decide(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		seqDecisions[i] = enf.Decision
	}
	waitAll(seqReqs)
	seqLogs := dep.Monitor.Stats().LogsSeen - logsBefore

	batchReqs := build()
	logsBefore = dep.Monitor.Stats().LogsSeen
	enfs, err := client.DecideBatch(ctx, batchReqs)
	if err != nil {
		t.Fatal(err)
	}
	waitAll(batchReqs)
	batchLogs := dep.Monitor.Stats().LogsSeen - logsBefore

	if len(enfs) != n {
		t.Fatalf("batch returned %d enforcements", len(enfs))
	}
	for i, enf := range enfs {
		if enf.Decision != seqDecisions[i] {
			t.Fatalf("request %d: batch %s != sequential %s", i, enf.Decision, seqDecisions[i])
		}
	}
	if seqLogs != 4*n || batchLogs != 4*n {
		t.Fatalf("on-chain logs: sequential %d, batch %d, want %d each", seqLogs, batchLogs, 4*n)
	}
	if got := dep.Monitor.Stats().AlertsSeen; got != 0 {
		t.Fatalf("clean traffic raised %d alerts: %v", got, dep.Monitor.Alerts())
	}
}

func TestDecideBatchUnderTamperAlertsPerRequest(t *testing.T) {
	dep := openTestDeployment(t, drams.WithTimeoutBlocks(80))
	client, err := dep.Client("tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.TamperPEP("tenant-1", &drams.Tamper{
		Enforce: func(xacml.Decision) xacml.Decision { return xacml.Permit },
	}); err != nil {
		t.Fatal(err)
	}
	const n = 3
	reqs := make([]*xacml.Request, n)
	for i := range reqs {
		reqs[i] = client.NewRequest().
			Add(xacml.CatSubject, "role", xacml.String("intern")).
			Add(xacml.CatAction, "op", xacml.String("read"))
	}
	enfs, err := client.DecideBatch(ctx20(t), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, enf := range enfs {
		if !enf.Permitted() {
			t.Fatalf("request %d: attack precondition failed (%s)", i, enf.Decision)
		}
	}
	// Every request in the batch is individually detected.
	for _, req := range reqs {
		if _, err := dep.WaitForAlert(ctx20(t), req.ID, core.AlertEnforcementMismatch); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDecideAsyncFuture(t *testing.T) {
	dep := openTestDeployment(t, drams.WithTimeoutBlocks(80))
	client, err := dep.Client("tenant-2")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	futures := make([]*drams.Future, n)
	for i := range futures {
		futures[i] = client.DecideAsync(ctx20(t), doctorRequest(dep))
		if futures[i].RequestID() == "" {
			t.Fatal("future has no request ID")
		}
	}
	for i, f := range futures {
		enf, err := f.Wait(ctx20(t))
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if !enf.Permitted() {
			t.Fatalf("future %d: %s", i, enf.Decision)
		}
		// Wait is repeatable.
		if _, err := f.Wait(ctx20(t)); err != nil {
			t.Fatal(err)
		}
		if err := dep.WaitForMatched(ctx20(t), f.RequestID()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAlertsStreamDeliversTenantAlerts(t *testing.T) {
	dep := openTestDeployment(t)
	client, err := dep.Client("tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	alerts, stop, err := dep.Alerts(ctx20(t), drams.AlertFilter{Tenant: "tenant-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	if err := dep.TamperPEP("tenant-1", &drams.Tamper{
		Enforce: func(xacml.Decision) xacml.Decision { return xacml.Permit },
	}); err != nil {
		t.Fatal(err)
	}
	const n = 3
	want := map[string]bool{}
	for i := 0; i < n; i++ {
		req := client.NewRequest().
			Add(xacml.CatSubject, "role", xacml.String(fmt.Sprintf("intern-%d", i))).
			Add(xacml.CatAction, "op", xacml.String("read"))
		if _, err := client.Decide(ctx20(t), req); err != nil {
			t.Fatal(err)
		}
		want[req.ID] = true
	}
	deadline := time.After(20 * time.Second)
	for len(want) > 0 {
		select {
		case a := <-alerts:
			if a.Tenant != "tenant-1" {
				t.Fatalf("stream leaked alert for %q", a.Tenant)
			}
			if a.Type == core.AlertEnforcementMismatch {
				delete(want, a.ReqID)
			}
		case <-deadline:
			t.Fatalf("missing alerts for %v", want)
		}
	}
}
