package experiment

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"drams/internal/logger"
)

// Small-parameter smoke runs: every driver must complete and its table
// shape must be sane. The real sweeps run in bench_test.go / drams-bench.

func cell(t *testing.T, tab Table, row int, col string) string {
	t.Helper()
	for i, h := range tab.Header {
		if h == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("table %s has no column %q", tab.ID, col)
	return ""
}

func cellFloat(t *testing.T, tab Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("cell %s[%d] = %q not a number", col, row, cell(t, tab, row, col))
	}
	return v
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := Table{ID: "X", Title: "demo", Header: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	out := tab.Render()
	for _, want := range []string{"== X: demo ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Errorf("csv = %q", csv)
	}
}

func TestRunE1Smoke(t *testing.T) {
	tab, err := RunE1(E1Params{Requests: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	byMetric := map[string]string{}
	for _, row := range tab.Rows {
		byMetric[row[0]] = row[1]
	}
	if byMetric["alerts (expect 0)"] != "0" {
		t.Fatalf("alerts = %s", byMetric["alerts (expect 0)"])
	}
	if byMetric["matched exchanges"] == "0" {
		t.Fatal("nothing matched")
	}
}

func TestRunE2Smoke(t *testing.T) {
	tab, err := RunE2(E2Params{Sizes: []int{64, 4096}, Difficulties: []uint8{6}, Samples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if v := cellFloat(t, tab, i, "p50_ms"); v <= 0 {
			t.Fatalf("row %d p50 = %v", i, v)
		}
	}
}

func TestRunE3ShapeMonotone(t *testing.T) {
	tab, err := RunE3(E3Params{Difficulties: []uint8{4, 10, 14}, Blocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Expected hashes must grow by the difficulty ratio (exact), and the
	// probability columns must be constant across rows.
	h0 := cellFloat(t, tab, 0, "hashes_expected")
	h2 := cellFloat(t, tab, 2, "hashes_expected")
	if h2 != h0*1024 {
		t.Fatalf("hashes: %v vs %v", h0, h2)
	}
}

func TestRunE4Smoke(t *testing.T) {
	tab, err := RunE4(E4Params{Writes: 24, BatchSizes: []int{8}, ValueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range tab.Rows {
		rows[row[0]] = row
	}
	if len(rows) != 3 { // pure-db, hybrid-8, pure-chain
		t.Fatalf("modes = %v", rows)
	}
	if cell(t, tab, 0, "tamper_detected") != "no" {
		t.Fatal("pure-db should not detect tampering")
	}
	for i, row := range tab.Rows {
		if strings.HasPrefix(row[0], "hybrid") || row[0] == "pure-chain" {
			if cell(t, tab, i, "tamper_detected") != "yes" {
				t.Fatalf("%s did not detect tampering", row[0])
			}
		}
	}
	// Shape: pure-db p50 <= hybrid p50 <= pure-chain p50.
	var dbP50, hybP50, chainP50 float64
	for i, row := range tab.Rows {
		switch {
		case row[0] == "pure-db":
			dbP50 = cellFloat(t, tab, i, "p50_ms")
		case strings.HasPrefix(row[0], "hybrid"):
			hybP50 = cellFloat(t, tab, i, "p50_ms")
		case row[0] == "pure-chain":
			chainP50 = cellFloat(t, tab, i, "p50_ms")
		}
	}
	if !(dbP50 <= hybP50*10 && hybP50 < chainP50) {
		t.Fatalf("latency ordering violated: db=%v hybrid=%v chain=%v", dbP50, hybP50, chainP50)
	}
}

func TestRunE5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("E5 full matrix in -short mode")
	}
	tab, err := RunE5(E5Params{Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		name := row[0]
		if name == "control (no attack)" {
			if !strings.HasPrefix(row[3], "0 ") {
				t.Fatalf("control row: %v", row)
			}
			continue
		}
		if got := cell(t, tab, i, "rate"); !strings.HasPrefix(got, "100") && got != "yes" {
			t.Fatalf("%s detection rate = %s", name, got)
		}
	}
}

func TestRunE6Smoke(t *testing.T) {
	tab, err := RunE6(E6Params{Requests: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Confirmed mode must be slower than probes-off.
	off := cellFloat(t, tab, 0, "p50_ms")
	confirmed := cellFloat(t, tab, 2, "p50_ms")
	if confirmed <= off {
		t.Fatalf("confirmed (%v ms) should exceed off (%v ms)", confirmed, off)
	}
}

func TestRunE7ShapeGrowsWithRules(t *testing.T) {
	// Per-request evaluation cost fluctuates with the random policy shape
	// (short-circuiting), so the asserted shape is the structural one:
	// compile time grows with rule count, and every measurement is
	// positive. The far-apart rule counts keep this robust under noisy
	// schedulers (e.g. -race).
	tab, err := RunE7(E7Params{RuleCounts: []int{10, 1000}, Requests: 50})
	if err != nil {
		t.Fatal(err)
	}
	smallCompile := cellFloat(t, tab, 0, "compile_ms")
	bigCompile := cellFloat(t, tab, 1, "compile_ms")
	if bigCompile <= smallCompile {
		t.Fatalf("compile cost should grow with rules: %v vs %v", smallCompile, bigCompile)
	}
	for i := range tab.Rows {
		if v := cellFloat(t, tab, i, "expected_us_per_req"); v <= 0 {
			t.Fatalf("row %d expected_us_per_req = %v", i, v)
		}
	}
}

func TestRunE8Smoke(t *testing.T) {
	tab, err := RunE8(E8Params{CloudCounts: []int{2}, Requests: 6})
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tab, 0, "alerts") != "0" {
		t.Fatalf("alerts = %s", cell(t, tab, 0, "alerts"))
	}
}

func TestRunAB1Smoke(t *testing.T) {
	tab, err := RunAB1(AB1Params{TimeoutBlocks: []uint64{5, 20}, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Detection latency in blocks must track the window size.
	small := cellFloat(t, tab, 0, "detect_mean_blocks")
	big := cellFloat(t, tab, 1, "detect_mean_blocks")
	if big <= small {
		t.Fatalf("Δ ablation shape violated: %v vs %v blocks", small, big)
	}
}

func TestRunAB2AnalyserMatters(t *testing.T) {
	tab, err := RunAB2(AB2Params{Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	full, ablated := tab.Rows[0], tab.Rows[1]
	if full[2] != "1/1" {
		t.Fatalf("full config missed A4: %v", full)
	}
	if ablated[2] != "0/1" {
		t.Fatalf("ablated config should miss A4: %v", ablated)
	}
	// A3 is caught by log matching alone in both configurations.
	if full[1] != "1/1" || ablated[1] != "1/1" {
		t.Fatalf("A3 rows: full=%v ablated=%v", full, ablated)
	}
}

func TestRunAB3Smoke(t *testing.T) {
	tab, err := RunAB3(AB3Params{Requests: 6})
	if err != nil {
		t.Fatal(err)
	}
	async := cellFloat(t, tab, 0, "p50_ms")
	confirmed := cellFloat(t, tab, 2, "p50_ms")
	if confirmed <= async {
		t.Fatalf("confirmed (%v) should cost more than async (%v)", confirmed, async)
	}
}

func TestStandardDeploymentModes(t *testing.T) {
	dep, err := NewStandardDeployment(2, logger.SubmitAsync, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	req := StandardRequest(dep, 0) // doctor read → permit
	enf, err := dep.Request("tenant-1", req)
	if err != nil || !enf.Permitted() {
		t.Fatalf("standard request: %v %v", enf, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := dep.Monitor.Matched(req.ID); ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("standard request never matched")
}

func TestRunV5Smoke(t *testing.T) {
	// Reduced churn run (the -quick parameters): enough traffic to overlap
	// at least one on-chain policy update on each backend, decisions
	// cross-checked inside RunV5.
	tab, err := RunV5(V5Params{Requests: 2048, Batch: 64, UpdateEveryBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The churning rows must have landed at least one update and purged
	// the decision cache at least twice (boot + update) — the fleet-wide
	// hot-reload invariant V5 exists to prove.
	for _, row := range tab.Rows {
		if row[1] == "off" {
			continue
		}
		if row[2] == "0" {
			t.Fatalf("churn row landed no updates: %v", row)
		}
		purges, err := strconv.Atoi(row[3])
		if err != nil || purges < 2 {
			t.Fatalf("churn row purges = %q, want >= 2: %v", row[3], row)
		}
	}
}

func TestRunV6Smoke(t *testing.T) {
	// Reduced rejoin run: both protocols over a short chain, with the
	// batched mode required to beat per-block on transport calls — the
	// round-trip economics V6 exists to prove (state-digest equality is
	// cross-checked inside RunV6).
	tab, err := RunV6(V6Params{ChainLengths: []int{48}, SyncBatch: 16,
		NetLatency: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	calls := make(map[string]int)
	for _, row := range tab.Rows {
		n, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("calls cell %q: %v", row[3], err)
		}
		calls[row[1]] = n
	}
	if calls["per-block"] < 48 {
		t.Fatalf("per-block used %d calls for 48 blocks", calls["per-block"])
	}
	if batched := calls["batched(16)"]; batched >= calls["per-block"]/4 {
		t.Fatalf("batched sync used %d calls vs per-block %d", batched, calls["per-block"])
	}
}

func TestRunV8Smoke(t *testing.T) {
	// Reduced hot-path run (the V7 catalogue re-run is skipped here — the
	// attack package and TestRunV7 cover it). The two hardware-independent
	// acceptance ratios are asserted: batched anchoring must cut tx volume
	// by at least 8x at window 16, and the binary codec must be at least 5x
	// allocation-leaner than JSON on both the tx round trip and block
	// decode.
	tab, err := RunV8(V8Params{Requests: 64, Batch: 32, Records: 32, Window: 16,
		ApplyBlocks: 2, ApplyTxs: 32, V7Trials: 0})
	if err != nil {
		t.Fatal(err)
	}
	byMetric := map[string][]string{}
	for _, row := range tab.Rows {
		byMetric[row[0]] = row
	}
	anchor := byMetric["anchor_txs_per_32_records"]
	if anchor == nil {
		t.Fatalf("no anchor row in %v", tab.Rows)
	}
	unbatched, _ := strconv.Atoi(anchor[1])
	batched, _ := strconv.Atoi(anchor[2])
	if unbatched != 32 {
		t.Fatalf("window-1 burst anchored in %d txs, want 32", unbatched)
	}
	if batched == 0 || unbatched < 8*batched {
		t.Fatalf("anchoring reduction %d -> %d txs is under 8x", unbatched, batched)
	}
	for _, metric := range []string{"tx_roundtrip_allocs_op", "block_decode_allocs_op"} {
		row := byMetric[metric]
		if row == nil {
			t.Fatalf("no %s row", metric)
		}
		jsonAllocs, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		binAllocs, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if binAllocs*5 > jsonAllocs {
			t.Fatalf("%s: binary %.1f not 5x leaner than JSON %.1f", metric, binAllocs, jsonAllocs)
		}
	}
	for _, metric := range []string{"decide_batch_req_s", "block_apply_tx_s"} {
		row := byMetric[metric]
		if row == nil {
			t.Fatalf("no %s row", metric)
		}
		for _, cell := range row[1:3] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v <= 0 {
				t.Fatalf("%s cell %q not a positive rate", metric, cell)
			}
		}
	}
}
