package experiment

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"drams"
	"drams/internal/federation"
	"drams/internal/transport/tcp"
	"drams/internal/xacml"
)

// V5Params parameterise the policy-churn experiment: sustained decision
// traffic while PAP updates land on-chain every few blocks.
type V5Params struct {
	// Requests is the total number of decisions measured per mode.
	Requests int
	// Batch is the DecideBatch pipeline depth.
	Batch int
	// UpdateEveryBlocks is the churn cadence: a new policy version is
	// published whenever the chain advanced this many blocks since the
	// last one.
	UpdateEveryBlocks uint64
}

// DefaultV5Params drives 16k decisions per mode with an update every 4
// blocks (~10 updates per measured second at the 25ms block cadence).
func DefaultV5Params() V5Params {
	return V5Params{Requests: 16384, Batch: 64, UpdateEveryBlocks: 4}
}

// v5Backend is one deployment universe: a full DRAMS federation (chain +
// PAP watcher) plus a dedicated bench PEP talking to its PDP.
type v5Backend struct {
	name  string
	dep   *drams.Deployment
	pep   *federation.PEPService
	close func()
}

// newV5Netsim builds the deployment on the in-process simulator.
func newV5Netsim() (*v5Backend, error) {
	dep, err := drams.Open(StandardPolicy("v1"),
		drams.WithMonitoring(false),
		drams.WithDifficulty(8),
		drams.WithEmptyBlockInterval(25*time.Millisecond),
		drams.WithSeed(5),
	)
	if err != nil {
		return nil, err
	}
	pep, err := federation.NewPEPService(dep.Transport, "bench-edge", 30*time.Second)
	if err != nil {
		dep.Close()
		return nil, err
	}
	return &v5Backend{name: "netsim", dep: dep, pep: pep, close: dep.Close}, nil
}

// newV5TCP puts the whole deployment on one TCP transport and the bench
// PEP on a second, peered over loopback — every decision crosses real
// sockets while policy updates churn the chain underneath.
func newV5TCP() (*v5Backend, error) {
	depTr, err := tcp.New(tcp.Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		return nil, err
	}
	dep, err := drams.Open(StandardPolicy("v1"),
		drams.WithMonitoring(false),
		drams.WithDifficulty(8),
		drams.WithEmptyBlockInterval(25*time.Millisecond),
		drams.WithSeed(5),
		drams.WithTransport(depTr),
	)
	if err != nil {
		depTr.Close()
		return nil, err
	}
	pepTr, err := tcp.New(tcp.Config{ListenAddr: "127.0.0.1:0", Peers: []string{depTr.Advertise()}})
	if err != nil {
		dep.Close()
		depTr.Close()
		return nil, err
	}
	closeAll := func() { dep.Close(); pepTr.Close(); depTr.Close() }
	pep, err := federation.NewPEPService(pepTr, "bench-edge", 30*time.Second)
	if err != nil {
		closeAll()
		return nil, err
	}
	if err := v4WaitAddr(pepTr, federation.PDPAddr, 10*time.Second); err != nil {
		closeAll()
		return nil, err
	}
	return &v5Backend{name: "tcp-loopback", dep: dep, pep: pep, close: closeAll}, nil
}

// v5Churner publishes a fresh policy version (same rules, new version
// string — so the digest, and with it every decision-cache entry, changes)
// whenever the chain advances by the configured stride.
type v5Churner struct {
	stop    chan struct{}
	done    chan struct{}
	updates atomic.Int64
	failed  atomic.Int64
}

func startV5Churn(dep *drams.Deployment, stride uint64) (*v5Churner, error) {
	admin, err := dep.Admin("tenant-1")
	if err != nil {
		return nil, err
	}
	c := &v5Churner{stop: make(chan struct{}), done: make(chan struct{})}
	chain := dep.InfraNode().Chain()
	go func() {
		defer close(c.done)
		last := chain.Height()
		version := 1
		for {
			select {
			case <-c.stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			h := chain.Height()
			if h < last+stride {
				continue
			}
			last = h
			version++
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := admin.UpdatePolicy(ctx, StandardPolicy(fmt.Sprintf("v%d", version)), drams.UpdateOptions{})
			cancel()
			if err != nil {
				c.failed.Add(1)
				continue
			}
			c.updates.Add(1)
		}
	}()
	return c, nil
}

func (c *v5Churner) halt() (updates int64, failed int64) {
	close(c.stop)
	<-c.done
	return c.updates.Load(), c.failed.Load()
}

// v5Measure runs the sequential and batched phases over the bench PEP,
// checking every decision stays Permit across policy flips (the churned
// versions share the same rules; only version identity and digest change).
func v5Measure(b *v5Backend, p V5Params) (seq, batch time.Duration, err error) {
	newReqs := func(tag string) []*xacml.Request {
		reqs := make([]*xacml.Request, p.Requests)
		for i := range reqs {
			reqs[i] = xacml.NewRequest(fmt.Sprintf("v5-%s-%d", tag, i)).
				Add(xacml.CatSubject, "role", xacml.String("doctor")).
				Add(xacml.CatAction, "op", xacml.String("read")).
				Add(xacml.CatResource, "type", xacml.String("record"))
		}
		return reqs
	}
	ctx := context.Background()

	// Warm-up: connections, decision cache, JIT paths.
	warm := newReqs("warm")
	if _, err := b.pep.DecideBatch(ctx, warm[:min(len(warm), 256)]); err != nil {
		return 0, 0, fmt.Errorf("V5 %s warm-up: %w", b.name, err)
	}

	seqStart := time.Now()
	for i, req := range newReqs("seq") {
		enf, err := b.pep.Decide(ctx, req)
		if err != nil {
			return 0, 0, fmt.Errorf("V5 %s sequential: %w", b.name, err)
		}
		if enf.Decision != xacml.Permit {
			return 0, 0, fmt.Errorf("V5 %s req %d: %v under churned policy %s",
				b.name, i, enf.Decision, enf.PolicyVersion)
		}
	}
	seq = time.Since(seqStart)

	batchReqs := newReqs("batch")
	batchStart := time.Now()
	for off := 0; off < len(batchReqs); off += p.Batch {
		enfs, err := b.pep.DecideBatch(ctx, batchReqs[off:off+p.Batch])
		if err != nil {
			return 0, 0, fmt.Errorf("V5 %s batch: %w", b.name, err)
		}
		for i, enf := range enfs {
			if enf.Decision != xacml.Permit {
				return 0, 0, fmt.Errorf("V5 %s batch req %d: %v under churned policy %s",
					b.name, off+i, enf.Decision, enf.PolicyVersion)
			}
		}
	}
	batch = time.Since(batchStart)
	return seq, batch, nil
}

// RunV5 measures decisions-under-churn: the same sustained Decide /
// DecideBatch traffic of V4, but with the PAP publishing a new on-chain
// policy version every few blocks — each activation hot-swaps the PDP and
// purges the decision cache fleet-wide. Rows compare quiet vs churning
// runs on netsim and on real TCP loopback sockets.
func RunV5(p V5Params) (Table, error) {
	t := Table{
		ID:     "V5",
		Title:  "policy churn: decision throughput while on-chain policy updates land",
		Header: []string{"transport", "churn", "updates", "purges", "decide_seq_req_s", fmt.Sprintf("batch%d_req_s", p.Batch)},
		Notes: []string{
			fmt.Sprintf("%d decisions per mode; churn publishes a new policy version every %d blocks (25ms empty-block cadence)",
				p.Requests, p.UpdateEveryBlocks),
			"every activation is a fleet-wide height-gated hot reload: PDP swap + decision-cache purge",
			"decisions are checked to stay Permit across every flip (versions share rules; digests differ)",
		},
	}
	if p.Batch < 1 || p.Requests%p.Batch != 0 {
		return t, fmt.Errorf("V5: batch %d must divide Requests %d", p.Batch, p.Requests)
	}
	backends := []func() (*v5Backend, error){newV5Netsim, newV5TCP}
	for _, newBackend := range backends {
		for _, churn := range []bool{false, true} {
			b, err := newBackend()
			if err != nil {
				return t, err
			}
			var churner *v5Churner
			if churn {
				if churner, err = startV5Churn(b.dep, p.UpdateEveryBlocks); err != nil {
					b.close()
					return t, err
				}
			}
			seq, batch, err := v5Measure(b, p)
			var updates int64
			if churner != nil {
				updates, _ = churner.halt()
			}
			purges := b.dep.PolicyStats().CachePurges
			b.close()
			if err != nil {
				return t, err
			}
			label := "off"
			if churn {
				label = fmt.Sprintf("every %d blocks", p.UpdateEveryBlocks)
			}
			t.Rows = append(t.Rows, []string{
				b.name, label,
				fmt.Sprintf("%d", updates),
				fmt.Sprintf("%d", purges),
				rate(p.Requests, seq),
				rate(p.Requests, batch),
			})
		}
	}
	return t, nil
}
