package lint

import (
	"go/ast"
)

// CtxFlow enforces the PR 2 context contract: once a function receives a
// context.Context, every derived operation must flow from it — minting a
// fresh context.Background()/TODO() inside such a function (including in
// closures that lexically capture the parameter) silently severs the
// caller's deadline and cancellation, which is exactly the bug the client
// API rework removed from the PEP round-trip. Deliberate detachment (a
// goroutine that must outlive the request) takes a //lint:ignore with the
// reason.
type CtxFlow struct{}

// NewCtxFlow returns the analyzer.
func NewCtxFlow() *CtxFlow { return &CtxFlow{} }

func (a *CtxFlow) Name() string { return "ctxflow" }

func (a *CtxFlow) Doc() string {
	return "a function with a context.Context parameter must not mint context.Background()/TODO() (PR 2)"
}

func (a *CtxFlow) Run(p *Pass) {
	for _, f := range p.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(p.Info, call, "context", "Background", "TODO") {
				return true
			}
			// Flag when any lexically enclosing function takes a ctx: a
			// nested closure can (and should) use the captured parameter.
			for _, anc := range stack {
				var ft *ast.FuncType
				switch fn := anc.(type) {
				case *ast.FuncDecl:
					ft = fn.Type
				case *ast.FuncLit:
					ft = fn.Type
				default:
					continue
				}
				if funcTypeTakesContext(p.Info, ft) {
					name := calleeFunc(p.Info, call).Name()
					p.Reportf(call.Pos(), "context.%s() inside a function that receives a context.Context: derive from the caller's ctx so deadlines and cancellation propagate", name)
					break
				}
			}
			return true
		})
	}
}
