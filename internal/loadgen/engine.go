package loadgen

import (
	"sync"
	"sync/atomic"
	"time"

	"drams/internal/metrics"
)

// Window is one time-series sample of the run: the delta of every counter
// and the latency distribution observed since the previous window.
type Window struct {
	// Offset is the window end, as an offset from run start.
	Offset Duration `json:"offset"`
	// Started counts iterations scheduled in the window (fired + dropped).
	Started int64 `json:"started"`
	// Requests counts decisions completed successfully.
	Requests int64 `json:"requests"`
	// Errors counts decisions that returned an error (timeouts included).
	Errors int64 `json:"errors"`
	// Dropped counts open-loop iterations shed at arrival because every
	// worker was busy.
	Dropped int64 `json:"dropped"`
	// P50/P99/Max summarise the window's decision latency in ms.
	P50 float64 `json:"p50_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// windowState is the engine's live per-window accumulator, swapped out
// atomically on every tick.
type windowState struct {
	hist     *metrics.Histogram
	started  metrics.Counter
	errors   metrics.Counter
	dropped  metrics.Counter
	requests metrics.Counter
}

func newWindowState() *windowState {
	return &windowState{hist: metrics.NewHistogram(0)}
}

// engine aggregates the run's measurements: cumulative HDR histograms plus
// counters, and a ticker-sampled time series of Windows. All record paths
// are safe for concurrent use by executor workers.
type engine struct {
	latency  *metrics.Histogram // decision latency, ms (cumulative)
	alertLat *metrics.Histogram // alert-detection latency, ms (cumulative)

	started  metrics.Counter
	requests metrics.Counter
	errors   metrics.Counter
	dropped  metrics.Counter

	window atomic.Pointer[windowState]

	mu      sync.Mutex
	windows []Window

	start time.Time

	// inflight tracks submit times of alert-sampled requests by reqID.
	inflight sync.Map // string -> time.Time
}

func newEngine(start time.Time) *engine {
	e := &engine{
		latency:  metrics.NewHistogram(0),
		alertLat: metrics.NewHistogram(0),
		start:    start,
	}
	e.window.Store(newWindowState())
	return e
}

// recordStarted counts one scheduled iteration.
func (e *engine) recordStarted() {
	e.started.Inc()
	e.window.Load().started.Inc()
}

// recordDropped counts one iteration shed at arrival (pool saturated).
func (e *engine) recordDropped() {
	e.dropped.Inc()
	e.window.Load().dropped.Inc()
}

// recordSuccess records one completed decision's latency.
func (e *engine) recordSuccess(latency time.Duration) {
	e.requests.Inc()
	e.latency.ObserveDuration(latency)
	w := e.window.Load()
	w.requests.Inc()
	w.hist.ObserveDuration(latency)
}

// recordError counts one failed decision.
func (e *engine) recordError() {
	e.errors.Inc()
	e.window.Load().errors.Inc()
}

// trackAlert registers a request for alert-detection measurement.
func (e *engine) trackAlert(reqID string, submitted time.Time) {
	e.inflight.Store(reqID, submitted)
}

// alertSeen resolves a tracked request against its AlertMatched event.
func (e *engine) alertSeen(reqID string, at time.Time) {
	v, ok := e.inflight.LoadAndDelete(reqID)
	if !ok {
		return
	}
	e.alertLat.ObserveDuration(at.Sub(v.(time.Time)))
}

// sample closes the current window into the time series.
func (e *engine) sample(now time.Time) {
	old := e.window.Swap(newWindowState())
	s := old.hist.Snapshot()
	w := Window{
		Offset:   Duration(now.Sub(e.start)),
		Started:  old.started.Value(),
		Requests: old.requests.Value(),
		Errors:   old.errors.Value(),
		Dropped:  old.dropped.Value(),
		P50:      s.P50,
		P99:      s.P99,
		Max:      s.Max,
	}
	e.mu.Lock()
	e.windows = append(e.windows, w)
	e.mu.Unlock()
}

// series returns the sampled windows.
func (e *engine) series() []Window {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Window(nil), e.windows...)
}

// metricValues builds the threshold-evaluation map from the run totals.
func (e *engine) metricValues(elapsed time.Duration) map[string]float64 {
	lat := e.latency.Snapshot()
	started := e.started.Value()
	dropped := e.dropped.Value()
	attempts := started - dropped
	errs := e.errors.Value()

	m := map[string]float64{
		"p50": lat.P50, "p90": lat.P90, "p99": lat.P99, "p999": lat.P999,
		"mean": lat.Mean, "min": lat.Min, "max": lat.Max,
		"count": float64(e.requests.Value()),
	}
	if attempts > 0 {
		m["error_rate"] = float64(errs) / float64(attempts)
	} else {
		m["error_rate"] = 0
	}
	if started > 0 {
		m["dropped"] = float64(dropped) / float64(started)
	} else {
		m["dropped"] = 0
	}
	if elapsed > 0 {
		m["rate"] = float64(e.requests.Value()) / elapsed.Seconds()
	}
	if a := e.alertLat.Snapshot(); a.Count > 0 {
		m["alert_p50"], m["alert_p99"], m["alert_mean"] = a.P50, a.P99, a.Mean
	}
	return m
}
