// Trusted platform: the paper's §III "System Integrity" mitigation. The
// shared LI key K is sealed in a (simulated) TPM bound to the measured LI
// binary; a verifier checks attestation quotes. Tampering with the LI
// component (1) breaks the seal — the tampered LI cannot decrypt logs — and
// (2) fails remote attestation.
//
//	go run ./examples/trustedplatform
package main

import (
	"errors"
	"fmt"
	"os"

	"drams/internal/crypto"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trustedplatform:", err)
		os.Exit(1)
	}
}

func run() error {
	const liPCR = 1
	goodBinary := []byte("logging-interface binary v1.4.2")

	// --- Tenant boot: measure the LI, seal K. ---
	tpm, err := crypto.NewSoftTPM("tenant-1")
	if err != nil {
		return err
	}
	measurements := &crypto.MeasurementLog{}
	measure := func(component string, data []byte) error {
		if err := tpm.Extend(liPCR, data); err != nil {
			return err
		}
		measurements.Append(liPCR, component, data)
		return nil
	}
	if err := measure("li-binary", goodBinary); err != nil {
		return err
	}

	key, err := crypto.NewKey()
	if err != nil {
		return err
	}
	handle := tpm.Seal(1<<liPCR, key[:])
	fmt.Println("boot: LI measured into PCR1, shared key K sealed to that state")

	// --- Normal operation: unseal works, logs decrypt. ---
	raw, err := tpm.Unseal(handle)
	if err != nil {
		return err
	}
	var k crypto.Key
	copy(k[:], raw)
	cipher, err := crypto.NewCipher(k)
	if err != nil {
		return err
	}
	ct, err := cipher.Encrypt([]byte("decision Permit for req-1"), nil)
	if err != nil {
		return err
	}
	pt, err := cipher.Decrypt(ct, nil)
	if err != nil {
		return err
	}
	fmt.Printf("operation: K unsealed, log entry encrypts/decrypts: %q\n", pt)

	// --- Remote attestation by the federation verifier. ---
	nonce := []byte("verifier-nonce-20260611")
	quote := tpm.GenerateQuote(1<<liPCR, nonce)
	expected := measurements.ExpectedComposite(1 << liPCR)
	if err := crypto.VerifyQuote(tpm.EndorsementKey(), quote, expected, nonce); err != nil {
		return err
	}
	fmt.Println("attestation: quote signature and PCR composite verified ✓")

	// --- The attacker swaps the LI binary; the platform re-measures it. ---
	fmt.Println()
	fmt.Println("attacker replaces the LI binary; next boot measures the tampered code...")
	evilBinary := []byte("logging-interface binary v1.4.2 (with exfiltration)")
	if err := tpm.Extend(liPCR, evilBinary); err != nil {
		return err
	}

	// 1. The sealed key is unrecoverable.
	if _, err := tpm.Unseal(handle); !errors.Is(err, crypto.ErrSealBroken) {
		return fmt.Errorf("tampered platform unsealed K: %v", err)
	}
	fmt.Println("  unseal(K): REFUSED (PCR state changed) — tampered LI cannot decrypt logs ✓")

	// 2. Attestation fails against the known-good measurement log.
	nonce2 := []byte("verifier-nonce-2")
	quote2 := tpm.GenerateQuote(1<<liPCR, nonce2)
	err = crypto.VerifyQuote(tpm.EndorsementKey(), quote2, expected, nonce2)
	if err == nil {
		return fmt.Errorf("tampered platform passed attestation")
	}
	fmt.Printf("  attestation: FAILED as expected (%v) ✓\n", err)

	fmt.Println()
	fmt.Println("the §III mitigation holds: off-chain component tampering is detectable,")
	fmt.Println("and the shared symmetric key never leaves an untampered platform")
	return nil
}
