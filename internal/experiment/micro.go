package experiment

import (
	"context"
	"fmt"
	"time"

	"drams/internal/analysis"
	"drams/internal/attack"
	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/hybrid"
	"drams/internal/idgen"
	"drams/internal/logger"
	"drams/internal/metrics"
	"drams/internal/netsim"
	"drams/internal/store"
	"drams/internal/xacml"
)

// singleNode spins up one mining chain node with the DRAMS contracts and an
// allowlisted writer identity.
func singleNode(difficulty uint8, emptyInterval time.Duration) (*blockchain.Node, *crypto.Identity, func(), error) {
	var seed [32]byte
	seed[0] = 0x33
	id := crypto.NewIdentityFromSeed("bench-writer", seed)
	reg := contract.NewRegistry()
	reg.MustRegister(core.NewLogMatchContract(core.MatchConfig{TimeoutBlocks: 1 << 20}))
	reg.MustRegister(&contract.AnchorContract{ContractName: "anchor"})
	net := netsim.New(netsim.Config{Seed: 5})
	node, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "bench-node",
		Chain: blockchain.Config{
			Difficulty: difficulty,
			Identities: []crypto.PublicIdentity{id.Public()},
			Registry:   reg,
		},
		Network:            net,
		Mine:               true,
		EmptyBlockInterval: emptyInterval,
	})
	if err != nil {
		net.Close()
		return nil, nil, nil, err
	}
	node.Start()
	cleanup := func() {
		node.Stop()
		net.Close()
	}
	return node, id, cleanup, nil
}

// E2Params parameterise the log-size/latency sweep.
type E2Params struct {
	Sizes        []int   // payload bytes
	Difficulties []uint8 // PoW bits
	Samples      int     // records per point
}

// DefaultE2Params covers 64 B – 64 KiB at three difficulties.
func DefaultE2Params() E2Params {
	return E2Params{
		Sizes:        []int{64, 1024, 4096, 16384, 65536},
		Difficulties: []uint8{8, 12, 16},
		Samples:      8,
	}
}

// RunE2 measures the time to store an encrypted log record of a given size
// on the chain with confirmation — the paper's §III claim: "the bigger the
// size is, the higher is the latency to store the log on the blockchain",
// with PoW difficulty as the tunable.
func RunE2(p E2Params) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "log-storage latency vs. log size and PoW difficulty (confirmed writes)",
		Header: []string{"difficulty", "size_bytes", "samples", "p50_ms", "p99_ms", "mean_ms"},
		Notes: []string{
			"each sample: submit one log record and wait for 1 confirmation",
			"paper §III: latency grows with log size; difficulty is the PoW tuning knob",
		},
	}
	rng := idgen.NewRand(77)
	for _, diff := range p.Difficulties {
		node, id, cleanup, err := singleNode(diff, 0)
		if err != nil {
			return t, err
		}
		li, err := logger.NewLI(logger.LIConfig{
			Name: id.Name(), Tenant: "bench", Node: node, Identity: id,
			Key: crypto.DeriveKey("bench", "K"), Mode: logger.SubmitConfirmed,
		})
		if err != nil {
			cleanup()
			return t, err
		}
		li.Start()
		for _, size := range p.Sizes {
			h := metrics.NewHistogram(0)
			for s := 0; s < p.Samples; s++ {
				rec := core.LogRecord{
					Kind:      core.KindPEPRequest,
					ReqID:     fmt.Sprintf("e2-%d-%d-%d", diff, size, s),
					Tenant:    "bench",
					Agent:     "bench-agent",
					ReqDigest: crypto.Sum([]byte{byte(s)}),
					Payload:   rng.Bytes(size),
				}
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				start := time.Now()
				err := li.Log(ctx, rec)
				cancel()
				if err != nil {
					li.Stop()
					cleanup()
					return t, fmt.Errorf("E2 d=%d size=%d: %w", diff, size, err)
				}
				h.ObserveDuration(time.Since(start))
			}
			s := h.Snapshot()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", diff), fmt.Sprintf("%d", size), fmt.Sprintf("%d", p.Samples),
				msF(s.P50), msF(s.P99), msF(s.Mean),
			})
		}
		li.Stop()
		cleanup()
	}
	return t, nil
}

// E3Params parameterise the PoW sweep.
type E3Params struct {
	Difficulties []uint8
	Blocks       int // blocks mined per difficulty
}

// DefaultE3Params sweeps 4–18 bits.
func DefaultE3Params() E3Params {
	return E3Params{Difficulties: []uint8{4, 8, 12, 14, 16, 18}, Blocks: 6}
}

// RunE3 quantifies the PoW latency/integrity tension of §III: block
// production time per difficulty (measured by actually mining) against the
// probability that an attacker rewrites a 6-confirmation log entry.
func RunE3(p E3Params) (Table, error) {
	t := Table{
		ID:    "E3",
		Title: "PoW tunability: block latency vs. rewrite resistance",
		Header: []string{"difficulty", "mean_block_ms", "hashes_expected",
			"P_rewrite(q=0.10,z=6)", "P_rewrite(q=0.30,z=6)", "P_rewrite(q=0.45,z=6)"},
		Notes: []string{
			"block times measured by real mining on this host",
			"rewrite probabilities from the Nakamoto race analysis (attack.RewriteProbability)",
			"paper §III: lightweight PoW keeps latency low but 'does not ensure strong integrity guarantees'",
		},
	}
	for _, diff := range p.Difficulties {
		h := metrics.NewHistogram(0)
		prev := crypto.Sum([]byte("e3-genesis"))
		for i := 0; i < p.Blocks; i++ {
			b := &blockchain.Block{Header: blockchain.BlockHeader{
				Height:     uint64(i + 1),
				PrevHash:   prev,
				Difficulty: diff,
				Miner:      "e3",
			}}
			start := time.Now()
			if !blockchain.Mine(context.Background(), b, uint64(i)*1e9) {
				return t, fmt.Errorf("E3: mining cancelled")
			}
			h.ObserveDuration(time.Since(start))
			prev = b.Hash()
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", diff),
			msF(h.Snapshot().Mean),
			fmt.Sprintf("%.0f", blockchain.ExpectedAttemptsForDifficulty(diff)),
			fmt.Sprintf("%.2e", attack.RewriteProbability(0.10, 6)),
			fmt.Sprintf("%.2e", attack.RewriteProbability(0.30, 6)),
			fmt.Sprintf("%.2e", attack.RewriteProbability(0.45, 6)),
		})
	}
	return t, nil
}

// E4Params parameterise the hybrid-store comparison.
type E4Params struct {
	Writes     int
	BatchSizes []int
	ValueSize  int
}

// DefaultE4Params writes 250 entries of 256 bytes; 250 is deliberately not
// a multiple of the batch sizes so the unprotected tail window is visible.
func DefaultE4Params() E4Params {
	return E4Params{Writes: 250, BatchSizes: []int{16, 64, 256}, ValueSize: 256}
}

// RunE4 compares pure-database, hybrid (several anchoring batch sizes) and
// pure-chain storage: write latency versus tamper detectability — the
// trade-off the paper's §III attributes to the hybrid design of ref [9].
func RunE4(p E4Params) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "hybrid DB+blockchain trade-off: write latency vs. integrity",
		Header: []string{"mode", "writes", "p50_ms", "p99_ms", "throughput_w_s", "tamper_detected", "unprotected_at_tamper"},
		Notes: []string{
			"pure-db: plain WAL database, no anchoring — tampering is silent",
			"hybrid-B: Merkle root of every B writes anchored on-chain; audit detects tampering",
			"pure-chain: every write individually anchored and confirmed before returning",
			"unprotected_at_tamper: entries whose anchor is not yet on-chain when the attacker",
			"strikes — the §III window: they stay auditable only while the store process survives",
		},
	}
	rng := idgen.NewRand(99)
	value := func(i int) []byte { return rng.Bytes(p.ValueSize) }

	// Pure DB.
	{
		db := store.NewMemory()
		h := metrics.NewHistogram(0)
		start := time.Now()
		for i := 0; i < p.Writes; i++ {
			w := time.Now()
			if err := db.Put(fmt.Sprintf("key-%d", i), value(i)); err != nil {
				return t, err
			}
			h.ObserveDuration(time.Since(w))
		}
		elapsed := time.Since(start)
		db.TamperUnderlying("key-0", []byte("evil"))
		s := h.Snapshot()
		t.Rows = append(t.Rows, []string{"pure-db", fmt.Sprintf("%d", p.Writes),
			msF(s.P50), msF(s.P99), rate(p.Writes, elapsed), "no", fmt.Sprintf("%d", p.Writes)})
	}

	runHybrid := func(label string, batch int, confirm uint64) error {
		node, id, cleanup, err := singleNode(8, 0)
		if err != nil {
			return err
		}
		defer cleanup()
		hs, err := hybrid.Open(hybrid.Config{
			Stream:            "e4",
			BatchSize:         batch,
			Sender:            blockchain.NewSender(node, id),
			Node:              node,
			WaitConfirmations: confirm,
		})
		if err != nil {
			return err
		}
		h := metrics.NewHistogram(0)
		start := time.Now()
		ctx := context.Background()
		for i := 0; i < p.Writes; i++ {
			w := time.Now()
			if err := hs.Put(ctx, fmt.Sprintf("key-%d", i), value(i)); err != nil {
				return err
			}
			h.ObserveDuration(time.Since(w))
		}
		elapsed := time.Since(start)
		// The attacker strikes now: entries of the current (unanchored)
		// batch are still in the unprotected window — tampering the first
		// entry of batch 1 is detectable only if batch 1 was anchored.
		pendingAtTamper := hs.Stats().PendingEntries
		hs.TamperLogEntry(1, 0, []byte("evil"))
		// Normal operation continues: the tail batch is flushed, and the
		// audit waits until all submitted anchors are on-chain.
		waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
		defer cancel()
		_ = hs.Flush(waitCtx)
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			var anchored int
			node.Chain().ReadState("anchor", func(st contract.StateDB) {
				anchored = len(contract.ListAnchors(st, "e4"))
			})
			if int64(anchored) >= hs.Stats().AnchorsSubmitted {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		rep := hs.Audit()
		detected := "no"
		if !rep.Clean() {
			detected = "yes"
		}
		s := h.Snapshot()
		t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%d", p.Writes),
			msF(s.P50), msF(s.P99), rate(p.Writes, elapsed), detected, fmt.Sprintf("%d", pendingAtTamper)})
		return nil
	}

	for _, b := range p.BatchSizes {
		if err := runHybrid(fmt.Sprintf("hybrid-%d", b), b, 0); err != nil {
			return t, fmt.Errorf("E4 hybrid-%d: %w", b, err)
		}
	}
	if err := runHybrid("pure-chain", 1, 1); err != nil {
		return t, fmt.Errorf("E4 pure-chain: %w", err)
	}
	return t, nil
}

// E7Params parameterise the analyser sweep.
type E7Params struct {
	RuleCounts []int
	Requests   int
}

// DefaultE7Params sweeps 10–1000 rules.
func DefaultE7Params() E7Params {
	return E7Params{RuleCounts: []int{10, 50, 100, 500, 1000}, Requests: 300}
}

// RunE7 measures the analyser: compile time, expected-decision derivation
// time (the per-request cost of check M5), PDP evaluation for comparison,
// and a change-impact analysis — the ref [8] machinery DRAMS builds on.
func RunE7(p E7Params) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "analyser cost vs. policy size",
		Header: []string{"rules", "compile_ms", "expected_us_per_req", "pdp_us_per_req", "change_impact_ms", "impact_requests"},
		Notes: []string{
			"expected_us_per_req: analyser re-derivation (M5); pdp_us_per_req: the PDP's own evaluation",
			"change_impact: v1 vs v1+one widened rule over the abstract domain (≤2000 requests)",
		},
	}
	for _, n := range p.RuleCounts {
		gen := xacml.NewGenerator(uint64(n), xacml.GenParams{
			Rules: n, Policies: 1, Attrs: 4, ValuesPerAttr: 4, MaxCondDepth: 2,
		})
		ps := gen.PolicySet("bench", "v1")
		reqs := make([]*xacml.Request, p.Requests)
		for i := range reqs {
			reqs[i] = gen.Request(fmt.Sprintf("r%d", i))
		}

		cStart := time.Now()
		compiled := analysis.Compile(ps)
		compileMs := time.Since(cStart)

		aStart := time.Now()
		for _, r := range reqs {
			_ = compiled.ExpectedSimple(r)
		}
		expectedUs := float64(time.Since(aStart).Microseconds()) / float64(len(reqs))

		pdp := xacml.NewPDP(ps)
		pStart := time.Now()
		for _, r := range reqs {
			if _, err := pdp.Evaluate(r); err != nil {
				return t, err
			}
		}
		pdpUs := float64(time.Since(pStart).Microseconds()) / float64(len(reqs))

		v2 := ps.Clone()
		v2.Version = "v2"
		v2.Items[0].Policy.Rules = append([]*xacml.Rule{{
			ID: "widen", Effect: xacml.EffectPermit,
			Target: xacml.TargetMatching(xacml.CatSubject, "attr0", xacml.String("v0")),
		}}, v2.Items[0].Policy.Rules...)
		iStart := time.Now()
		rep := analysis.ChangeImpact(ps, v2, analysis.EnumParams{MaxRequests: 2000, Seed: 3})
		impactMs := time.Since(iStart)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), ms(compileMs),
			fmt.Sprintf("%.1f", expectedUs), fmt.Sprintf("%.1f", pdpUs),
			ms(impactMs), fmt.Sprintf("%d", rep.Checked),
		})
	}
	return t, nil
}
