// Package xacml implements the access-control substrate that DRAMS
// monitors: a faithful subset of the OASIS XACML 3.0 model (paper §I — the
// FaaS access control system "is based on the eXtensible Access Control
// Markup Language (XACML) consisting of Policy Decision Point (PDP) and
// Policy Enforcement Point (PEP)").
//
// The subset covers: typed attribute values and bags, four attribute
// categories, DNF targets (AnyOf / AllOf / Match), rules with boolean
// condition expressions, policies and policy sets with the six standard
// combining algorithms, extended-Indeterminate decision semantics per
// XACML 3.0 §7, obligations, JSON serialisation and canonical digests used
// by the monitor to detect policy substitution (check M6).
package xacml

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"
)

// Type enumerates attribute data types.
type Type uint8

// Supported attribute types.
const (
	TypeString Type = iota + 1
	TypeInt
	TypeFloat
	TypeBool
	TypeTime
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	case TypeTime:
		return "time"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ErrTypeMismatch is returned when comparing values of different types.
var ErrTypeMismatch = errors.New("xacml: type mismatch")

// ErrNotOrdered is returned when ordering is requested for an unordered
// type (bool).
var ErrNotOrdered = errors.New("xacml: type has no ordering")

// Value is a typed attribute value.
type Value struct {
	T  Type      `json:"t"`
	S  string    `json:"s,omitempty"`
	I  int64     `json:"i,omitempty"`
	F  float64   `json:"f,omitempty"`
	B  bool      `json:"b,omitempty"`
	Tm time.Time `json:"tm,omitempty"`
}

// String builds a string value.
func String(s string) Value { return Value{T: TypeString, S: s} }

// Int builds an integer value.
func Int(i int64) Value { return Value{T: TypeInt, I: i} }

// Float builds a float value.
func Float(f float64) Value { return Value{T: TypeFloat, F: f} }

// Bool builds a boolean value.
func Bool(b bool) Value { return Value{T: TypeBool, B: b} }

// Time builds a time value.
func Time(tm time.Time) Value { return Value{T: TypeTime, Tm: tm.UTC()} }

// Equal reports exact typed equality.
func (v Value) Equal(o Value) bool {
	if v.T != o.T {
		return false
	}
	switch v.T {
	case TypeString:
		return v.S == o.S
	case TypeInt:
		return v.I == o.I
	case TypeFloat:
		return v.F == o.F
	case TypeBool:
		return v.B == o.B
	case TypeTime:
		return v.Tm.Equal(o.Tm)
	default:
		return false
	}
}

// Compare returns -1/0/+1 ordering for ordered types and an error for type
// mismatches or unordered types.
func (v Value) Compare(o Value) (int, error) {
	if v.T != o.T {
		return 0, fmt.Errorf("%w: %s vs %s", ErrTypeMismatch, v.T, o.T)
	}
	switch v.T {
	case TypeString:
		switch {
		case v.S < o.S:
			return -1, nil
		case v.S > o.S:
			return 1, nil
		}
		return 0, nil
	case TypeInt:
		switch {
		case v.I < o.I:
			return -1, nil
		case v.I > o.I:
			return 1, nil
		}
		return 0, nil
	case TypeFloat:
		switch {
		case v.F < o.F:
			return -1, nil
		case v.F > o.F:
			return 1, nil
		}
		return 0, nil
	case TypeTime:
		switch {
		case v.Tm.Before(o.Tm):
			return -1, nil
		case v.Tm.After(o.Tm):
			return 1, nil
		}
		return 0, nil
	case TypeBool:
		return 0, ErrNotOrdered
	default:
		return 0, fmt.Errorf("xacml: compare unknown type %d", v.T)
	}
}

// String renders the value for debugging and witnesses.
func (v Value) String() string {
	switch v.T {
	case TypeString:
		return strconv.Quote(v.S)
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeBool:
		return strconv.FormatBool(v.B)
	case TypeTime:
		return v.Tm.Format(time.RFC3339)
	default:
		return "<invalid>"
	}
}

// Key returns a canonical map key for the value, used for deduplication in
// the analyser's finite-domain abstraction.
func (v Value) Key() string {
	return string(v.appendKey(nil))
}

// appendKey appends the Key encoding to dst. This is the hot path of
// request canonicalization (probe digests, the PDP decision-cache key), so
// it avoids fmt; the output stays byte-identical to the historic
// fmt-based encoding.
func (v Value) appendKey(dst []byte) []byte {
	dst = strconv.AppendUint(dst, uint64(v.T), 10)
	dst = append(dst, '|')
	switch v.T {
	case TypeString:
		dst = strconv.AppendQuote(dst, v.S)
	case TypeInt:
		dst = strconv.AppendInt(dst, v.I, 10)
	case TypeFloat:
		dst = strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	case TypeBool:
		dst = strconv.AppendBool(dst, v.B)
	case TypeTime:
		dst = v.Tm.AppendFormat(dst, time.RFC3339)
	default:
		dst = append(dst, "<invalid>"...)
	}
	return dst
}

// Bag is an unordered multiset of values, the XACML attribute-bag type.
type Bag []Value

// Contains reports whether the bag holds a value equal to v.
func (b Bag) Contains(v Value) bool {
	for _, x := range b {
		if x.Equal(v) {
			return true
		}
	}
	return false
}

// IsEmpty reports whether the bag has no values.
func (b Bag) IsEmpty() bool { return len(b) == 0 }

// MarshalJSON keeps empty bags explicit.
func (b Bag) MarshalJSON() ([]byte, error) {
	return json.Marshal([]Value(b))
}
