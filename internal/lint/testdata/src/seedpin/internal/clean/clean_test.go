package clean

import (
	"testing"

	"fix/internal/netsim"
)

func TestPinned(t *testing.T) {
	cfg := netsim.Config{Synchronous: true, Seed: 1}
	_ = cfg
}
