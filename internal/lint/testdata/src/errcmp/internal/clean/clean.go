// Package clean is the zero-finding twin for errcmp.
package clean

import (
	"errors"

	"fix/internal/transport"
)

// ErrLocal is a package-local sentinel: identity comparison is fine here.
var ErrLocal = errors.New("local")

// Classify matches wire sentinels with errors.Is.
func Classify(err error) string {
	if errors.Is(err, transport.ErrTimeout) {
		return "timeout"
	}
	if err == ErrLocal {
		return "local"
	}
	if err == nil {
		return "ok"
	}
	return "other"
}
