package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"drams/internal/attack"
	"drams/internal/logger"
	"drams/internal/metrics"
	"drams/internal/xacml"
)

// E1Params parameterise the end-to-end run.
type E1Params struct {
	Requests int
	Workers  int
}

// DefaultE1Params runs 48 requests with 4 workers.
func DefaultE1Params() E1Params { return E1Params{Requests: 48, Workers: 4} }

// RunE1 exercises the full Figure-1 deployment: mixed permit/deny traffic
// across both edge tenants, every exchange matched on-chain, zero alerts.
func RunE1(p E1Params) (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "Figure 1 end-to-end: monitored access control on a 2-cloud federation",
		Header: []string{"metric", "value"},
	}
	dep, err := NewStandardDeployment(2, logger.SubmitAsync, false, 0)
	if err != nil {
		return t, err
	}
	defer dep.Close()

	clients, err := edgeClients(dep)
	if err != nil {
		return t, err
	}
	enforceLat := metrics.NewHistogram(0)
	matchLat := metrics.NewHistogram(0)
	var permits, denies int64
	var mu sync.Mutex

	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, p.Workers)
	errCh := make(chan error, p.Requests)
	for i := 0; i < p.Requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			req := StandardRequest(dep, i)
			client := clients[i%len(clients)]
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			t0 := time.Now()
			enf, err := client.Decide(ctx, req)
			if err != nil {
				errCh <- err
				return
			}
			enforceLat.ObserveDuration(time.Since(t0))
			if err := dep.WaitForMatched(ctx, req.ID); err != nil {
				errCh <- err
				return
			}
			matchLat.ObserveDuration(time.Since(t0))
			mu.Lock()
			if enf.Permitted() {
				permits++
			} else {
				denies++
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return t, err
	}
	elapsed := time.Since(start)

	el := enforceLat.Snapshot()
	ml := matchLat.Snapshot()
	node := dep.InfraNode()
	mst := dep.Monitor.Stats()
	t.Rows = [][]string{
		{"requests", fmt.Sprintf("%d", p.Requests)},
		{"permits", count(permits)},
		{"denies", count(denies)},
		{"enforcement p50 (ms)", msF(el.P50)},
		{"enforcement p99 (ms)", msF(el.P99)},
		{"match (on-chain) p50 (ms)", msF(ml.P50)},
		{"match (on-chain) p99 (ms)", msF(ml.P99)},
		{"monitored throughput (req/s)", rate(p.Requests, elapsed)},
		{"chain height", fmt.Sprintf("%d", node.Chain().Height())},
		{"log records seen", count(mst.LogsSeen)},
		{"matched exchanges", count(mst.Matched)},
		{"alerts (expect 0)", count(mst.AlertsSeen)},
	}
	if mst.AlertsSeen != 0 {
		t.Notes = append(t.Notes, "WARNING: clean traffic raised alerts")
	}
	return t, nil
}

// E5Params parameterise the detection matrix.
type E5Params struct {
	Trials int
}

// DefaultE5Params runs 3 trials per attack.
func DefaultE5Params() E5Params { return E5Params{Trials: 3} }

// RunE5 executes the full threat catalogue and reports detection rate and
// latency per attack — the quantitative form of the paper's §I claims.
func RunE5(p E5Params) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "attack detection matrix (threat model of paper §I)",
		Header: []string{"attack", "alert", "trials", "detected", "rate", "mean_latency_ms", "mean_latency_blocks"},
		Notes: []string{
			"latency: wall time / blocks from the malicious request to the alert landing on-chain",
			"control row: clean traffic must raise no alert (false-positive check)",
		},
	}
	dep, err := NewStandardDeployment(2, logger.SubmitAsync, false, 20)
	if err != nil {
		return t, err
	}
	defer dep.Close()
	client, err := dep.Client("tenant-1")
	if err != nil {
		return t, err
	}

	escalate := func(req *xacml.Request) *xacml.Request {
		out := xacml.NewRequest(req.ID)
		out.Add(xacml.CatSubject, "role", xacml.String("doctor"))
		out.Add(xacml.CatAction, "op", xacml.String("read"))
		return out
	}

	for _, sc := range attack.Catalogue(escalate) {
		detected := 0
		latency := metrics.NewHistogram(0)
		blockLat := metrics.NewHistogram(0)
		for trial := 0; trial < p.Trials; trial++ {
			cleanup, err := sc.Install(dep, "tenant-1")
			if err != nil {
				return t, fmt.Errorf("E5 %s: %w", sc.ID, err)
			}
			req := dep.NewRequest().
				Add(xacml.CatSubject, "role", xacml.String("intern")).
				Add(xacml.CatAction, "op", xacml.String("read"))
			_, startHeight := dep.InfraNode().Chain().Head()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			t0 := time.Now()
			_, _ = client.Decide(ctx, req) // suppression scenarios error by design

			hit := false
			for _, want := range sc.Expected {
				if alert, err := dep.WaitForAlert(ctx, req.ID, want); err == nil {
					hit = true
					latency.ObserveDuration(time.Since(t0))
					blockLat.Observe(float64(alert.Height - startHeight))
					break
				}
			}
			cancel()
			cleanup()
			if hit {
				detected++
			}
		}
		alertNames := ""
		for i, a := range sc.Expected {
			if i > 0 {
				alertNames += "|"
			}
			alertNames += string(a)
		}
		t.Rows = append(t.Rows, []string{
			sc.ID + " " + sc.Name, alertNames, fmt.Sprintf("%d", p.Trials),
			fmt.Sprintf("%d", detected), pct(detected, p.Trials),
			msF(latency.Snapshot().Mean), fmt.Sprintf("%.1f", blockLat.Snapshot().Mean),
		})
	}

	// A8: outsider log forgery is rejected at the chain boundary.
	forge := attack.AttemptLogForgery(dep.InfraNode(), "e5-forged")
	forged := "no"
	if forge.Rejected {
		forged = "yes"
	}
	t.Rows = append(t.Rows, []string{"A8 log forgery (outsider)", "tx rejected", "1", "1", forged, "-", "-"})

	// Control: clean request, expect Matched and zero alerts.
	req := dep.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := client.Decide(ctx, req); err != nil {
		return t, err
	}
	if err := dep.WaitForMatched(ctx, req.ID); err != nil {
		return t, fmt.Errorf("E5 control: %w", err)
	}
	falsePos := len(dep.Monitor.AlertsFor(req.ID))
	t.Rows = append(t.Rows, []string{"control (no attack)", "none expected", "1",
		fmt.Sprintf("%d false alerts", falsePos), "-", "-", "-"})
	return t, nil
}

// E6Params parameterise the overhead comparison.
type E6Params struct {
	Requests int
	Workers  int
}

// DefaultE6Params runs 60 requests with 6 workers per mode.
func DefaultE6Params() E6Params { return E6Params{Requests: 60, Workers: 6} }

// RunE6 measures the monitoring overhead on the access-control hot path:
// probes off vs. asynchronous logging vs. fully confirmed logging.
func RunE6(p E6Params) (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "monitoring overhead on access-control latency/throughput",
		Header: []string{"mode", "requests", "p50_ms", "p99_ms", "throughput_req_s"},
		Notes: []string{
			"off: probes disabled (bare access control)",
			"async: agents log in the background (DRAMS default)",
			"confirmed: every observation waits for on-chain confirmation before the PEP proceeds",
		},
	}
	modes := []struct {
		label string
		mode  logger.SubmitMode
		off   bool
	}{
		{"off", logger.SubmitAsync, true},
		{"async", logger.SubmitAsync, false},
		{"confirmed", logger.SubmitConfirmed, false},
	}
	for _, m := range modes {
		dep, err := NewStandardDeployment(2, m.mode, m.off, 1<<20)
		if err != nil {
			return t, err
		}
		client, err := dep.Client("tenant-1")
		if err != nil {
			dep.Close()
			return t, err
		}
		lat := metrics.NewHistogram(0)
		start := time.Now()
		var wg sync.WaitGroup
		sem := make(chan struct{}, p.Workers)
		errCh := make(chan error, p.Requests)
		for i := 0; i < p.Requests; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				req := StandardRequest(dep, i)
				t0 := time.Now()
				if _, err := client.Decide(context.Background(), req); err != nil {
					errCh <- err
					return
				}
				lat.ObserveDuration(time.Since(t0))
			}(i)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			dep.Close()
			return t, fmt.Errorf("E6 %s: %w", m.label, err)
		}
		elapsed := time.Since(start)
		s := lat.Snapshot()
		t.Rows = append(t.Rows, []string{m.label, fmt.Sprintf("%d", p.Requests),
			msF(s.P50), msF(s.P99), rate(p.Requests, elapsed)})
		dep.Close()
	}
	return t, nil
}

// E8Params parameterise the scale-out sweep.
type E8Params struct {
	CloudCounts []int
	Requests    int // per deployment
}

// DefaultE8Params sweeps 2–8 clouds.
func DefaultE8Params() E8Params { return E8Params{CloudCounts: []int{2, 4, 8}, Requests: 48} }

// RunE8 scales the federation out: one cloud = one chain node + one edge
// tenant; traffic is spread over all tenants and every exchange must match
// on-chain.
func RunE8(p E8Params) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "federation scale-out: tenants vs. monitored throughput",
		Header: []string{"clouds", "tenants", "requests", "throughput_req_s", "match_p50_ms", "match_p99_ms", "alerts"},
	}
	for _, n := range p.CloudCounts {
		dep, err := NewStandardDeployment(n, logger.SubmitAsync, false, 0)
		if err != nil {
			return t, err
		}
		clients, err := edgeClients(dep)
		if err != nil {
			dep.Close()
			return t, err
		}
		tenants := dep.Topology().EdgeTenants()
		matchLat := metrics.NewHistogram(0)
		start := time.Now()
		var wg sync.WaitGroup
		sem := make(chan struct{}, 2*n)
		errCh := make(chan error, p.Requests)
		for i := 0; i < p.Requests; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				req := StandardRequest(dep, i)
				client := clients[i%len(clients)]
				ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
				defer cancel()
				t0 := time.Now()
				if _, err := client.Decide(ctx, req); err != nil {
					errCh <- err
					return
				}
				if err := dep.WaitForMatched(ctx, req.ID); err != nil {
					errCh <- fmt.Errorf("tenant %s: %w", client.Tenant(), err)
					return
				}
				matchLat.ObserveDuration(time.Since(t0))
			}(i)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			dep.Close()
			return t, fmt.Errorf("E8 n=%d: %w", n, err)
		}
		elapsed := time.Since(start)
		s := matchLat.Snapshot()
		alerts := dep.Monitor.Stats().AlertsSeen
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", len(tenants)), fmt.Sprintf("%d", p.Requests),
			rate(p.Requests, elapsed), msF(s.P50), msF(s.P99), count(alerts),
		})
		dep.Close()
	}
	return t, nil
}
