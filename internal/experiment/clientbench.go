package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"drams"
	"drams/internal/xacml"
)

// V3Params parameterise the client pipeline comparison: per-request Decide
// vs DecideBatch over the same PEP endpoint.
type V3Params struct {
	// InFlight are the pipeline depths compared (worker count for
	// concurrent Decide, batch size for DecideBatch).
	InFlight []int
	// Requests is the total number of decisions measured per mode.
	Requests int
	// NetLatency shapes the simulated federation network (jitter is set
	// to the same value); the round-trip cost is what batching amortises.
	NetLatency time.Duration
}

// DefaultV3Params sweeps pipeline depths 1/8/64 over a half-millisecond
// one-way network.
func DefaultV3Params() V3Params {
	return V3Params{InFlight: []int{1, 8, 64}, Requests: 256, NetLatency: 500 * time.Microsecond}
}

// RunV3 measures access-decision throughput through the drams.Client API in
// three shapes: sequential per-request Decide (one in flight), concurrent
// per-request Decide (n workers), and DecideBatch (n requests sharing one
// network round-trip). Decisions are cross-checked between the sequential
// and batch runs.
func RunV3(p V3Params) (Table, error) {
	t := Table{
		ID:     "V3",
		Title:  "client pipeline: DecideBatch vs per-request Decide throughput",
		Header: []string{"inflight", "decide_seq_req_s", "decide_conc_req_s", "batch_req_s", "batch_vs_seq"},
		Notes: []string{
			fmt.Sprintf("%d requests per mode over a %s (+ jitter) simulated network, monitoring off",
				p.Requests, p.NetLatency),
			"decide_seq: one Decide at a time; decide_conc: n workers; batch: DecideBatch of n",
			"sequential and batch decisions are cross-checked for equality each run",
		},
	}
	dep, err := drams.Open(StandardPolicy("v1"),
		drams.WithMonitoring(false),
		drams.WithNetwork(p.NetLatency, p.NetLatency),
		drams.WithDifficulty(8),
		drams.WithEmptyBlockInterval(25*time.Millisecond),
		drams.WithSeed(7),
	)
	if err != nil {
		return t, err
	}
	defer dep.Close()
	client, err := dep.Client("tenant-1")
	if err != nil {
		return t, err
	}
	ctx := context.Background()

	newReqs := func() []*xacml.Request {
		reqs := make([]*xacml.Request, p.Requests)
		for i := range reqs {
			reqs[i] = StandardRequest(dep, i)
		}
		return reqs
	}

	// Warm the PDP decision cache over the request working set so every
	// mode measures the same steady state.
	if _, err := client.DecideBatch(ctx, newReqs()); err != nil {
		return t, fmt.Errorf("V3 warm-up: %w", err)
	}

	// Sequential baseline, measured once: strictly one Decide in flight.
	seqDecisions := make([]xacml.Decision, p.Requests)
	seqStart := time.Now()
	for i, req := range newReqs() {
		enf, err := client.Decide(ctx, req)
		if err != nil {
			return t, fmt.Errorf("V3 sequential: %w", err)
		}
		seqDecisions[i] = enf.Decision
	}
	seqElapsed := time.Since(seqStart)

	for _, n := range p.InFlight {
		if n < 1 || p.Requests%n != 0 {
			return t, fmt.Errorf("V3: in-flight %d must divide Requests %d", n, p.Requests)
		}

		// Concurrent per-request Decide: n workers over the same load.
		concReqs := newReqs()
		var wg sync.WaitGroup
		errCh := make(chan error, n)
		concStart := time.Now()
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(concReqs); i += n {
					if _, err := client.Decide(ctx, concReqs[i]); err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		concElapsed := time.Since(concStart)
		close(errCh)
		for err := range errCh {
			return t, fmt.Errorf("V3 concurrent n=%d: %w", n, err)
		}

		// Pipelined DecideBatch: the same load in batches of n.
		batchReqs := newReqs()
		batchStart := time.Now()
		for off := 0; off < len(batchReqs); off += n {
			enfs, err := client.DecideBatch(ctx, batchReqs[off:off+n])
			if err != nil {
				return t, fmt.Errorf("V3 batch n=%d: %w", n, err)
			}
			for i, enf := range enfs {
				if enf.Decision != seqDecisions[off+i] {
					return t, fmt.Errorf("V3 n=%d req %d: batch %v != sequential %v",
						n, off+i, enf.Decision, seqDecisions[off+i])
				}
			}
		}
		batchElapsed := time.Since(batchStart)

		batchRate := float64(p.Requests) / batchElapsed.Seconds()
		seqRate := float64(p.Requests) / seqElapsed.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			rate(p.Requests, seqElapsed),
			rate(p.Requests, concElapsed),
			rate(p.Requests, batchElapsed),
			fmt.Sprintf("%.1fx", batchRate/seqRate),
		})
	}
	return t, nil
}
