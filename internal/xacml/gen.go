package xacml

import (
	"fmt"

	"drams/internal/idgen"
)

// GenParams tune the random policy generator used by differential tests
// (analyser vs. PDP), property tests and the E7 benchmark sweep.
type GenParams struct {
	// Rules is the number of rules per policy.
	Rules int
	// Policies is the number of policies in the set.
	Policies int
	// Attrs is the number of distinct attribute IDs per category.
	Attrs int
	// ValuesPerAttr is the size of each attribute's value universe.
	ValuesPerAttr int
	// MaxCondDepth bounds condition expression nesting.
	MaxCondDepth int
	// MustBePresentRate is the probability a designator demands presence
	// (introduces Indeterminate behaviour).
	MustBePresentRate float64
}

// DefaultGenParams returns a moderate policy shape.
func DefaultGenParams() GenParams {
	return GenParams{Rules: 5, Policies: 3, Attrs: 3, ValuesPerAttr: 4, MaxCondDepth: 2, MustBePresentRate: 0.1}
}

// Generator produces random policies and matching random requests from a
// shared attribute vocabulary, deterministically from a seed.
type Generator struct {
	rng    *idgen.Rand
	params GenParams
	vocab  []Designator // flattened attribute vocabulary
}

// NewGenerator builds a seeded generator.
func NewGenerator(seed uint64, params GenParams) *Generator {
	if params.Rules <= 0 {
		params.Rules = 1
	}
	if params.Policies <= 0 {
		params.Policies = 1
	}
	if params.Attrs <= 0 {
		params.Attrs = 1
	}
	if params.ValuesPerAttr <= 0 {
		params.ValuesPerAttr = 2
	}
	g := &Generator{rng: idgen.NewRand(seed), params: params}
	for _, cat := range Categories() {
		for i := 0; i < params.Attrs; i++ {
			g.vocab = append(g.vocab, Designator{Cat: cat, ID: AttributeID(fmt.Sprintf("attr%d", i))})
		}
	}
	return g
}

// value returns the k-th value of an attribute's universe; attributes are
// string- or int-typed depending on their index parity.
func (g *Generator) value(d Designator, k int) Value {
	if len(d.ID)%2 == 0 {
		return Int(int64(k))
	}
	return String(fmt.Sprintf("v%d", k))
}

func (g *Generator) randDesignator() Designator {
	d := g.vocab[g.rng.Intn(len(g.vocab))]
	if g.rng.Float64() < g.params.MustBePresentRate {
		d.MustBePresent = true
	}
	return d
}

func (g *Generator) randValueFor(d Designator) Value {
	return g.value(d, g.rng.Intn(g.params.ValuesPerAttr))
}

func (g *Generator) randMatch() Match {
	d := g.randDesignator()
	ops := []CmpOp{CmpEq, CmpEq, CmpEq, CmpNe, CmpLt, CmpGe} // biased to equality
	op := ops[g.rng.Intn(len(ops))]
	return Match{Op: op, Attr: d, Lit: g.randValueFor(d)}
}

func (g *Generator) randTarget(emptyRate float64) Target {
	if g.rng.Float64() < emptyRate {
		return Target{}
	}
	nAny := 1 + g.rng.Intn(2)
	t := Target{}
	for i := 0; i < nAny; i++ {
		nAll := 1 + g.rng.Intn(2)
		any := AnyOf{}
		for j := 0; j < nAll; j++ {
			nM := 1 + g.rng.Intn(2)
			all := AllOf{}
			for k := 0; k < nM; k++ {
				all.Matches = append(all.Matches, g.randMatch())
			}
			any.AllOf = append(any.AllOf, all)
		}
		t.AnyOf = append(t.AnyOf, any)
	}
	return t
}

func (g *Generator) randExpr(depth int) Expr {
	if depth <= 0 || g.rng.Float64() < 0.4 {
		// Leaf.
		switch g.rng.Intn(4) {
		case 0:
			d := g.randDesignator()
			return &CmpExpr{Op: CmpEq, Attr: d, Lit: g.randValueFor(d)}
		case 1:
			d := g.randDesignator()
			set := []Value{g.randValueFor(d), g.randValueFor(d)}
			return &InExpr{Attr: d, Set: set}
		case 2:
			d := g.randDesignator()
			ops := []CmpOp{CmpLt, CmpLe, CmpGt, CmpGe}
			return &CmpExpr{Op: ops[g.rng.Intn(len(ops))], Attr: d, Lit: g.randValueFor(d)}
		default:
			return &PresentExpr{Attr: g.randDesignator()}
		}
	}
	switch g.rng.Intn(3) {
	case 0:
		return &AndExpr{Args: []Expr{g.randExpr(depth - 1), g.randExpr(depth - 1)}}
	case 1:
		return &OrExpr{Args: []Expr{g.randExpr(depth - 1), g.randExpr(depth - 1)}}
	default:
		return &NotExpr{Arg: g.randExpr(depth - 1)}
	}
}

func (g *Generator) randAlg() CombiningAlg {
	algs := []CombiningAlg{DenyOverrides, PermitOverrides, FirstApplicable, DenyUnlessPermit, PermitUnlessDeny}
	return algs[g.rng.Intn(len(algs))]
}

// Policy generates one random policy.
func (g *Generator) Policy(id string) *Policy {
	p := &Policy{ID: id, Version: "1", Target: g.randTarget(0.3), Alg: g.randAlg()}
	for i := 0; i < g.params.Rules; i++ {
		eff := EffectPermit
		if g.rng.Intn(2) == 0 {
			eff = EffectDeny
		}
		ru := &Rule{
			ID:     fmt.Sprintf("%s-r%d", id, i),
			Effect: eff,
			Target: g.randTarget(0.4),
		}
		if g.rng.Float64() < 0.7 {
			ru.Condition = g.randExpr(g.params.MaxCondDepth)
		}
		p.Rules = append(p.Rules, ru)
	}
	return p
}

// PolicySet generates a random policy set of params.Policies policies.
func (g *Generator) PolicySet(id, version string) *PolicySet {
	ps := &PolicySet{ID: id, Version: version, Target: g.randTarget(0.6), Alg: g.randAlg()}
	for i := 0; i < g.params.Policies; i++ {
		ps.Items = append(ps.Items, PolicyItem{Policy: g.Policy(fmt.Sprintf("%s-p%d", id, i))})
	}
	return ps
}

// Request generates a random request over the generator's vocabulary. Some
// attributes are omitted (probability ~1/3) to exercise missing-attribute
// paths, and some carry multiple values to exercise bag semantics.
func (g *Generator) Request(id string) *Request {
	r := NewRequest(id)
	for _, d := range g.vocab {
		switch g.rng.Intn(3) {
		case 0:
			// absent
		case 1:
			r.Add(d.Cat, d.ID, g.value(d, g.rng.Intn(g.params.ValuesPerAttr)))
		default:
			r.Add(d.Cat, d.ID, g.value(d, g.rng.Intn(g.params.ValuesPerAttr)))
			r.Add(d.Cat, d.ID, g.value(d, g.rng.Intn(g.params.ValuesPerAttr)))
		}
	}
	return r
}

// StandardPolicy is the canonical benchmark/demo policy shared by the
// experiment harness and the drams-node daemon: role-gated reads and
// writes over records with a default deny.
func StandardPolicy(version string) *PolicySet {
	match := func(cat Category, id AttributeID, v string) Match {
		return Match{Op: CmpEq, Attr: Designator{Cat: cat, ID: id}, Lit: String(v)}
	}
	target := func(ms ...Match) Target {
		return Target{AnyOf: []AnyOf{{AllOf: []AllOf{{Matches: ms}}}}}
	}
	rules := []*Rule{
		{ID: "doctor-read", Effect: EffectPermit,
			Target: target(match(CatSubject, "role", "doctor"), match(CatAction, "op", "read"))},
		{ID: "doctor-write", Effect: EffectPermit,
			Target: target(match(CatSubject, "role", "doctor"), match(CatAction, "op", "write"))},
		{ID: "nurse-read", Effect: EffectPermit,
			Target: target(match(CatSubject, "role", "nurse"), match(CatAction, "op", "read"))},
		{ID: "default-deny", Effect: EffectDeny},
	}
	return &PolicySet{ID: "records", Version: version, Alg: DenyUnlessPermit,
		Items: []PolicyItem{{Policy: &Policy{
			ID: "records-policy", Version: "1", Alg: FirstApplicable, Rules: rules}}}}
}

// RestrictedPolicy is the rollout-demo counterpart of StandardPolicy: reads
// over records are revoked for every role (doctors keep write access), so a
// doctor-read request permitted under StandardPolicy is denied under it.
// The policy rollout example, the V5 churn benchmark and the federation
// smoke test push it as the "v2" update to prove a fleet-wide flip.
func RestrictedPolicy(version string) *PolicySet {
	match := func(cat Category, id AttributeID, v string) Match {
		return Match{Op: CmpEq, Attr: Designator{Cat: cat, ID: id}, Lit: String(v)}
	}
	target := func(ms ...Match) Target {
		return Target{AnyOf: []AnyOf{{AllOf: []AllOf{{Matches: ms}}}}}
	}
	rules := []*Rule{
		{ID: "doctor-write", Effect: EffectPermit,
			Target: target(match(CatSubject, "role", "doctor"), match(CatAction, "op", "write"))},
		{ID: "default-deny", Effect: EffectDeny},
	}
	return &PolicySet{ID: "records", Version: version, Alg: DenyUnlessPermit,
		Items: []PolicyItem{{Policy: &Policy{
			ID: "records-policy", Version: "1", Alg: FirstApplicable, Rules: rules}}}}
}
