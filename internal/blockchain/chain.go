package blockchain

import (
	"bytes"
	"fmt"
	"math/big"
	"sync"
	"time"

	"drams/internal/clock"
	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/metrics"
	"drams/internal/store"
)

// Config are the consensus parameters of a private DRAMS chain. Every node
// of one federation must be constructed with identical values.
type Config struct {
	// Difficulty is the initial PoW difficulty in leading zero bits.
	Difficulty uint8
	// MinDifficulty/MaxDifficulty clamp automatic retargeting.
	MinDifficulty, MaxDifficulty uint8
	// TargetBlockTime is the desired block interval for retargeting.
	TargetBlockTime time.Duration
	// RetargetInterval is the number of blocks between difficulty
	// adjustments; 0 disables retargeting.
	RetargetInterval uint64
	// MaxTxPerBlock caps block size.
	MaxTxPerBlock int
	// GenesisTime timestamps the genesis block; all nodes must agree.
	GenesisTime time.Time
	// Identities is the permissioned allowlist of transaction senders.
	Identities []crypto.PublicIdentity
	// Registry holds the deployed contracts.
	Registry *contract.Registry
	// Clock is the time source (defaults to the system clock).
	Clock clock.Clock
	// VerifyWorkers sizes the signature-verification worker pool used for
	// block validation and batched mempool admission (default GOMAXPROCS).
	VerifyWorkers int
	// VerifyCacheSize bounds the verified-transaction LRU shared by gossip
	// admission and block validation (default 8192; negative disables).
	VerifyCacheSize int
	// SequentialVerify disables the batch-verification pipeline and its
	// cache: every signature is checked inline, one at a time — the
	// pre-pipeline baseline for overhead experiments.
	SequentialVerify bool
	// SequentialApply disables parallel (OCC) transaction application
	// during block validation — the baseline for apply-throughput
	// experiments. Application strategy does not affect consensus: the
	// parallel path commits in transaction order and re-executes on
	// conflict, so both strategies produce identical state and receipts.
	SequentialApply bool
	// ApplyWorkers sizes the speculative-execution pool of the parallel
	// apply path (default GOMAXPROCS; the parallel path engages only when
	// the effective value exceeds 1).
	ApplyWorkers int
}

func (c Config) withDefaults() Config {
	if c.Difficulty == 0 {
		c.Difficulty = 10
	}
	if c.MinDifficulty == 0 {
		c.MinDifficulty = 1
	}
	if c.MaxDifficulty == 0 {
		c.MaxDifficulty = 30
	}
	if c.TargetBlockTime == 0 {
		c.TargetBlockTime = 200 * time.Millisecond
	}
	if c.MaxTxPerBlock == 0 {
		c.MaxTxPerBlock = 256
	}
	if c.GenesisTime.IsZero() {
		c.GenesisTime = time.Unix(1700000000, 0).UTC()
	}
	if c.Registry == nil {
		c.Registry = contract.NewRegistry()
	}
	if c.Clock == nil {
		c.Clock = clock.System{}
	}
	return c
}

// EventSink receives contract events once their block joins the best chain.
// Events are delivered at-least-once: a reorganisation can re-deliver.
type EventSink func(height uint64, events []contract.Event)

// Chain is one node's view of the blockchain. It is safe for concurrent use.
type Chain struct {
	cfg      Config
	engine   *contract.Engine
	ids      *IdentityRegistry
	verifier *TxVerifier
	clk      clock.Clock

	mu        sync.RWMutex
	blocks    map[crypto.Digest]*Block
	work      map[crypto.Digest]*big.Int // cumulative work incl. block
	genesis   crypto.Digest
	head      crypto.Digest
	bestChain []crypto.Digest // index = height
	state     *contract.State
	nonces    map[string]uint64
	receipts  map[crypto.Digest]Receipt
	txHeight  map[crypto.Digest]uint64
	emitted   map[crypto.Digest]bool
	override  uint8 // manual difficulty override, 0 = none

	sink     EventSink
	headSubs map[int]chan struct{}
	subSeq   int

	storeKV     *store.KV // incremental persistence target (nil = volatile)
	persisted   metrics.Counter
	persistErrs metrics.Counter

	applyMet applyMetrics
}

// NewChain constructs a chain containing only the genesis block.
func NewChain(cfg Config) *Chain {
	cfg = cfg.withDefaults()
	c := &Chain{
		cfg:      cfg,
		engine:   contract.NewEngine(cfg.Registry),
		ids:      NewIdentityRegistry(cfg.Identities...),
		clk:      cfg.Clock,
		blocks:   make(map[crypto.Digest]*Block),
		work:     make(map[crypto.Digest]*big.Int),
		state:    contract.NewState(),
		nonces:   make(map[string]uint64),
		receipts: make(map[crypto.Digest]Receipt),
		txHeight: make(map[crypto.Digest]uint64),
		emitted:  make(map[crypto.Digest]bool),
		headSubs: make(map[int]chan struct{}),
	}
	c.verifier = NewTxVerifier(c.ids, VerifierConfig{
		Workers:    cfg.VerifyWorkers,
		CacheSize:  cfg.VerifyCacheSize,
		Sequential: cfg.SequentialVerify,
	})
	gen := &Block{Header: BlockHeader{
		Height:       0,
		TimeUnixNano: cfg.GenesisTime.UnixNano(),
		Difficulty:   cfg.Difficulty,
		Miner:        "genesis",
	}}
	gh := gen.Hash()
	c.blocks[gh] = gen
	c.work[gh] = big.NewInt(0)
	c.genesis = gh
	c.head = gh
	c.bestChain = []crypto.Digest{gh}
	c.emitted[gh] = true
	return c
}

// Identities exposes the permissioned membership registry.
func (c *Chain) Identities() *IdentityRegistry { return c.ids }

// Verifier exposes the transaction signature verifier. The node shares it
// between mempool admission and block validation so a transaction verified
// at gossip ingest is not re-verified when its block arrives.
func (c *Chain) Verifier() *TxVerifier { return c.verifier }

// Config returns the consensus parameters.
func (c *Chain) Config() Config { return c.cfg }

// SetEventSink installs the at-least-once event delivery callback.
func (c *Chain) SetEventSink(sink EventSink) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sink = sink
}

// SetDifficultyOverride forces the difficulty of all future blocks. In a
// real deployment this is a coordinated governance action; experiments use
// it to sweep PoW parameters (§III). Zero restores the schedule.
func (c *Chain) SetDifficultyOverride(d uint8) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.override = d
}

// Genesis returns the genesis block hash.
func (c *Chain) Genesis() crypto.Digest {
	return c.genesis
}

// Head returns the best-chain tip hash and height.
func (c *Chain) Head() (crypto.Digest, uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.head, c.blocks[c.head].Header.Height
}

// Height returns the best-chain height.
func (c *Chain) Height() uint64 {
	_, h := c.Head()
	return h
}

// BlockByHash returns a block by hash.
func (c *Chain) BlockByHash(h crypto.Digest) (*Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.blocks[h]
	return b, ok
}

// BlockByHeight returns the best-chain block at the given height.
func (c *Chain) BlockByHeight(height uint64) (*Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if height >= uint64(len(c.bestChain)) {
		return nil, false
	}
	return c.blocks[c.bestChain[height]], true
}

// TotalWork returns the cumulative work of the best chain.
func (c *Chain) TotalWork() *big.Int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return new(big.Int).Set(c.work[c.head])
}

// NextDifficulty returns the difficulty required for a child of the current
// head.
func (c *Chain) NextDifficulty() uint8 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.expectedDifficultyLocked(c.blocks[c.head])
}

// expectedDifficultyLocked computes the difficulty a child of parent must
// carry, following the retargeting schedule. Caller holds at least RLock.
func (c *Chain) expectedDifficultyLocked(parent *Block) uint8 {
	if c.override != 0 {
		return c.override
	}
	cur := parent.Header.Difficulty
	interval := c.cfg.RetargetInterval
	nextHeight := parent.Header.Height + 1
	if interval == 0 || nextHeight < interval || nextHeight%interval != 0 {
		return cur
	}
	// Walk back `interval` blocks along this branch to find the window start.
	ancestor := parent
	for i := uint64(0); i < interval-1; i++ {
		p, ok := c.blocks[ancestor.Header.PrevHash]
		if !ok {
			return cur
		}
		ancestor = p
	}
	actual := time.Duration(parent.Header.TimeUnixNano - ancestor.Header.TimeUnixNano)
	target := c.cfg.TargetBlockTime * time.Duration(interval)
	next := cur
	switch {
	case actual < target/2 && cur < c.cfg.MaxDifficulty:
		next = cur + 1
	case actual > target*2 && cur > c.cfg.MinDifficulty:
		next = cur - 1
	}
	return next
}

// AccountNonce returns the last applied nonce for a sender on the best
// chain (0 if none).
func (c *Chain) AccountNonce(sender string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nonces[sender]
}

// AccountNonces returns a copy of all best-chain sender nonces.
func (c *Chain) AccountNonces() map[string]uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]uint64, len(c.nonces))
	for k, v := range c.nonces {
		out[k] = v
	}
	return out
}

// Receipt returns the execution receipt of a best-chain transaction along
// with its confirmation count (1 = in the head block).
func (c *Chain) Receipt(txID crypto.Digest) (Receipt, uint64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.receipts[txID]
	if !ok {
		return Receipt{}, 0, fmt.Errorf("blockchain: receipt %s: %w", txID.Short(), ErrTxNotFound)
	}
	headHeight := c.blocks[c.head].Header.Height
	return r, headHeight - r.Height + 1, nil
}

// ReadState runs fn with read access to the named contract's best-chain
// state. fn must not retain the StateDB.
func (c *Chain) ReadState(contractName string, fn func(st contract.StateDB)) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	fn(contract.Namespace(c.state, contractName))
}

// StateDigest returns a digest of the full contract state at head; replicas
// on the same best chain must agree.
func (c *Chain) StateDigest() crypto.Digest {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.state.Digest()
}

// SubscribeHead returns a channel signalled (coalesced) on every head
// change, plus a cancel function.
func (c *Chain) SubscribeHead() (<-chan struct{}, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subSeq++
	id := c.subSeq
	ch := make(chan struct{}, 1)
	c.headSubs[id] = ch
	return ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.headSubs, id)
	}
}

// AddBlock validates and inserts a block, switching the best chain if the
// new branch carries more work. It returns ErrOrphanBlock when the parent is
// unknown (callers should sync ancestors) and ErrKnownBlock for duplicates.
func (c *Chain) AddBlock(b *Block) error {
	hash := b.Hash()

	// Cheap structural gates run before any signature work, so a gossip
	// flood of duplicate, orphan or forged blocks cannot buy expensive
	// ed25519 batches for the price of a message. addBlockLocked repeats
	// these checks authoritatively under the lock.
	c.mu.RLock()
	_, known := c.blocks[hash]
	parent, haveParent := c.blocks[b.Header.PrevHash]
	var wantDifficulty uint8
	if haveParent {
		wantDifficulty = c.expectedDifficultyLocked(parent)
	}
	c.mu.RUnlock()
	if known {
		return ErrKnownBlock
	}
	if !haveParent {
		return fmt.Errorf("%w: parent %s of block %s", ErrOrphanBlock, b.Header.PrevHash.Short(), hash.Short())
	}
	if b.Header.Height != parent.Header.Height+1 {
		return fmt.Errorf("%w: height %d after parent %d", ErrBadHeight, b.Header.Height, parent.Header.Height)
	}
	if b.Header.Difficulty != wantDifficulty {
		return fmt.Errorf("%w: have %d, want %d at height %d", ErrBadDifficulty, b.Header.Difficulty, wantDifficulty, b.Header.Height)
	}
	if !b.Header.MeetsDifficulty() {
		return fmt.Errorf("%w: block %s at difficulty %d", ErrBadPoW, hash.Short(), b.Header.Difficulty)
	}
	if ComputeMerkleRoot(b.Txs) != b.Header.MerkleRoot {
		return fmt.Errorf("%w: block %s", ErrBadMerkleRoot, hash.Short())
	}
	if len(b.Txs) > c.cfg.MaxTxPerBlock {
		return fmt.Errorf("blockchain: block %s has %d txs, max %d", hash.Short(), len(b.Txs), c.cfg.MaxTxPerBlock)
	}

	// Verify transaction signatures outside the chain lock: verification
	// depends only on the identity registry, and the batch verifier fans
	// the checks out across cores, skipping transactions already verified
	// at mempool admission.
	if err := c.verifier.VerifyAll(b.Txs); err != nil {
		return fmt.Errorf("blockchain: block %s %w", hash.Short(), err)
	}

	c.mu.Lock()
	emits, err := c.addBlockLocked(b, hash)
	var sink EventSink
	if err == nil {
		sink = c.sink
		if len(emits) > 0 {
			c.notifyHeadLocked()
		}
	}
	c.mu.Unlock()

	if err != nil {
		return err
	}
	if sink != nil {
		for _, e := range emits {
			if len(e.events) > 0 {
				sink(e.height, e.events)
			}
		}
	}
	return nil
}

type blockEvents struct {
	height uint64
	events []contract.Event
}

func (c *Chain) addBlockLocked(b *Block, hash crypto.Digest) ([]blockEvents, error) {
	if _, ok := c.blocks[hash]; ok {
		return nil, ErrKnownBlock
	}
	parent, ok := c.blocks[b.Header.PrevHash]
	if !ok {
		return nil, fmt.Errorf("%w: parent %s of block %s", ErrOrphanBlock, b.Header.PrevHash.Short(), hash.Short())
	}
	if b.Header.Height != parent.Header.Height+1 {
		return nil, fmt.Errorf("%w: height %d after parent %d", ErrBadHeight, b.Header.Height, parent.Header.Height)
	}
	if want := c.expectedDifficultyLocked(parent); b.Header.Difficulty != want {
		return nil, fmt.Errorf("%w: have %d, want %d at height %d", ErrBadDifficulty, b.Header.Difficulty, want, b.Header.Height)
	}
	if !b.Header.MeetsDifficulty() {
		return nil, fmt.Errorf("%w: block %s at difficulty %d", ErrBadPoW, hash.Short(), b.Header.Difficulty)
	}
	if ComputeMerkleRoot(b.Txs) != b.Header.MerkleRoot {
		return nil, fmt.Errorf("%w: block %s", ErrBadMerkleRoot, hash.Short())
	}
	if len(b.Txs) > c.cfg.MaxTxPerBlock {
		return nil, fmt.Errorf("blockchain: block %s has %d txs, max %d", hash.Short(), len(b.Txs), c.cfg.MaxTxPerBlock)
	}
	// Transaction signatures were verified in AddBlock, outside the lock.
	// Validate per-sender nonce ordering against the branch state.
	branchNonces, err := c.branchNoncesLocked(parent)
	if err != nil {
		return nil, err
	}
	if err := checkNonces(branchNonces, b.Txs); err != nil {
		return nil, fmt.Errorf("blockchain: block %s: %w", hash.Short(), err)
	}

	c.blocks[hash] = b
	c.work[hash] = new(big.Int).Add(c.work[b.Header.PrevHash], workOf(b.Header.Difficulty))

	if !c.betterThanHeadLocked(hash) {
		return nil, nil // valid side-branch block; kept for future fork choice
	}
	return c.reorgToLocked(hash)
}

// betterThanHeadLocked implements fork choice: more cumulative work wins;
// ties break toward the lexicographically smaller hash for determinism.
func (c *Chain) betterThanHeadLocked(hash crypto.Digest) bool {
	cmp := c.work[hash].Cmp(c.work[c.head])
	if cmp != 0 {
		return cmp > 0
	}
	return bytes.Compare(hash[:], c.head[:]) < 0
}

// branchNoncesLocked returns the per-sender nonces at the given branch tip.
// For the best-chain head this is O(1); for a fork it replays the branch's
// transactions (signature checks already done at insertion).
func (c *Chain) branchNoncesLocked(tip *Block) (map[string]uint64, error) {
	tipHash := tip.Hash()
	if tipHash == c.head {
		out := make(map[string]uint64, len(c.nonces))
		for k, v := range c.nonces {
			out[k] = v
		}
		return out, nil
	}
	path, err := c.pathFromGenesisLocked(tipHash)
	if err != nil {
		return nil, err
	}
	nonces := make(map[string]uint64)
	for _, bh := range path {
		for i := range c.blocks[bh].Txs {
			tx := &c.blocks[bh].Txs[i]
			nonces[tx.From] = tx.Nonce
		}
	}
	return nonces, nil
}

func checkNonces(nonces map[string]uint64, txs []Transaction) error {
	for i := range txs {
		tx := &txs[i]
		if tx.Nonce != nonces[tx.From]+1 {
			return fmt.Errorf("%w: sender %q nonce %d, expected %d", ErrBadNonce, tx.From, tx.Nonce, nonces[tx.From]+1)
		}
		nonces[tx.From] = tx.Nonce
	}
	return nil
}

// pathFromGenesisLocked returns block hashes from the first post-genesis
// block to tip, inclusive.
func (c *Chain) pathFromGenesisLocked(tip crypto.Digest) ([]crypto.Digest, error) {
	var rev []crypto.Digest
	cur := tip
	for cur != c.genesis {
		b, ok := c.blocks[cur]
		if !ok {
			return nil, fmt.Errorf("%w: broken branch at %s", ErrOrphanBlock, cur.Short())
		}
		rev = append(rev, cur)
		cur = b.Header.PrevHash
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// reorgToLocked switches the best chain to newHead. Fast path: newHead
// extends the current head, so state is updated incrementally. Slow path:
// full deterministic replay from genesis.
func (c *Chain) reorgToLocked(newHead crypto.Digest) ([]blockEvents, error) {
	nb := c.blocks[newHead]
	if nb.Header.PrevHash == c.head {
		evs := c.applyBlockLocked(nb, c.state, c.nonces)
		c.head = newHead
		c.bestChain = append(c.bestChain, newHead)
		c.persistAppendLocked(nb)
		if c.emitted[newHead] {
			return []blockEvents{{height: nb.Header.Height}}, nil
		}
		c.emitted[newHead] = true
		return []blockEvents{{height: nb.Header.Height, events: evs}}, nil
	}

	oldBest := c.bestChain
	path, err := c.pathFromGenesisLocked(newHead)
	if err != nil {
		return nil, err
	}
	state := contract.NewState()
	nonces := make(map[string]uint64)
	c.receipts = make(map[crypto.Digest]Receipt)
	c.txHeight = make(map[crypto.Digest]uint64)
	best := make([]crypto.Digest, 0, len(path)+1)
	best = append(best, c.genesis)
	var emits []blockEvents
	// Swap in the fresh state so applyBlockLocked records receipts there.
	c.state, c.nonces = state, nonces
	for _, bh := range path {
		b := c.blocks[bh]
		evs := c.applyBlockLocked(b, state, nonces)
		best = append(best, bh)
		if !c.emitted[bh] {
			c.emitted[bh] = true
			emits = append(emits, blockEvents{height: b.Header.Height, events: evs})
		}
	}
	c.head = newHead
	c.bestChain = best
	c.persistReorgLocked(oldBest)
	return emits, nil
}

// applyBlockLocked executes a block's transactions and block hooks against
// state, recording receipts. Nonce validity was checked beforehand. Large
// blocks go through the OCC parallel path (parallel.go); both paths produce
// identical state, receipts and event order.
func (c *Chain) applyBlockLocked(b *Block, state *contract.State, nonces map[string]uint64) []contract.Event {
	if !c.cfg.SequentialApply && len(b.Txs) >= parallelApplyMinTxs && c.applyWorkers() > 1 {
		c.applyMet.parallelBlocks.Inc()
		return c.applyParallelLocked(b, state, nonces)
	}
	c.applyMet.sequentialBlocks.Inc()
	var events []contract.Event
	for i := range b.Txs {
		tx := &b.Txs[i]
		nonces[tx.From] = tx.Nonce
		ctx := contract.CallCtx{
			Height:    b.Header.Height,
			BlockTime: b.Header.Time(),
			TxID:      tx.ID(),
			Caller:    tx.From,
		}
		evs, err := c.engine.Execute(ctx, state, tx.Call)
		rec := Receipt{TxID: tx.ID(), Height: b.Header.Height, OK: err == nil, Events: evs}
		if err != nil {
			rec.Err = err.Error()
		}
		c.receipts[tx.ID()] = rec
		c.txHeight[tx.ID()] = b.Header.Height
		events = append(events, evs...)
	}
	events = append(events, c.engine.OnBlock(b.Header.Height, b.Header.Time(), state)...)
	return events
}

func (c *Chain) notifyHeadLocked() {
	for _, ch := range c.headSubs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func workOf(difficulty uint8) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(difficulty))
}

// BestChainHashes returns the hashes of the best chain from genesis to head.
func (c *Chain) BestChainHashes() []crypto.Digest {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]crypto.Digest, len(c.bestChain))
	copy(out, c.bestChain)
	return out
}
