package crypto

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// The paper's §III "System Integrity" discussion proposes a trusted hardware
// platform (e.g. a TPM) to (a) store the shared symmetric key K and (b)
// guarantee the integrity of off-chain components such as the Logging
// Interface. No physical TPM is available in this reproduction, so SoftTPM
// simulates the three capabilities the mitigation actually relies on:
//
//   - Measured boot: components are "measured" (hashed) into Platform
//     Configuration Registers (PCRs) using the standard extend operation
//     PCR' = H(PCR || measurement).
//   - Sealing: secrets are bound to the PCR state at seal time; Unseal fails
//     if any measured component has since changed.
//   - Attestation: signed quotes over the PCR state let a remote verifier
//     (the Analyser or an administrator) check component integrity.
//
// A tampered LI therefore (1) cannot recover K and (2) is remotely
// detectable — exactly the behaviour the paper's mitigation needs.

// ErrSealBroken is returned by Unseal when the current PCR state differs
// from the state the secret was sealed under.
var ErrSealBroken = errors.New("crypto: PCR state changed since sealing; unseal refused")

// ErrUnknownHandle is returned when a sealed-secret handle does not exist.
var ErrUnknownHandle = errors.New("crypto: unknown sealed-secret handle")

// NumPCRs is the number of platform configuration registers in a SoftTPM.
const NumPCRs = 8

// SoftTPM is a software simulation of a trusted platform module. It is safe
// for concurrent use.
type SoftTPM struct {
	mu     sync.Mutex
	pcrs   [NumPCRs]Digest
	sealed map[string]sealedSecret
	ident  *Identity // endorsement key for quotes
	nextID int
}

type sealedSecret struct {
	pcrMask  uint8 // bitmask of PCR indices the secret is bound to
	pcrState Digest
	secret   []byte
}

// NewSoftTPM constructs a SoftTPM with a fresh endorsement identity.
func NewSoftTPM(deviceName string) (*SoftTPM, error) {
	id, err := NewIdentity("tpm:" + deviceName)
	if err != nil {
		return nil, fmt.Errorf("crypto: new soft TPM: %w", err)
	}
	return &SoftTPM{sealed: make(map[string]sealedSecret), ident: id}, nil
}

// EndorsementKey returns the public endorsement identity used to sign quotes.
func (t *SoftTPM) EndorsementKey() PublicIdentity { return t.ident.Public() }

// Extend measures data into PCR index: PCR' = H(PCR || H(data)).
func (t *SoftTPM) Extend(index int, data []byte) error {
	if index < 0 || index >= NumPCRs {
		return fmt.Errorf("crypto: PCR index %d out of range [0,%d)", index, NumPCRs)
	}
	m := Sum(data)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pcrs[index] = SumAll(t.pcrs[index][:], m[:])
	return nil
}

// PCR returns the current value of the indexed register.
func (t *SoftTPM) PCR(index int) (Digest, error) {
	if index < 0 || index >= NumPCRs {
		return Digest{}, fmt.Errorf("crypto: PCR index %d out of range [0,%d)", index, NumPCRs)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pcrs[index], nil
}

// compositeLocked hashes the selected PCRs into one digest. Caller holds mu.
func (t *SoftTPM) compositeLocked(mask uint8) Digest {
	var chunks [][]byte
	for i := 0; i < NumPCRs; i++ {
		if mask&(1<<i) != 0 {
			chunks = append(chunks, t.pcrs[i].Bytes())
		}
	}
	return SumAll(chunks...)
}

// Seal binds secret to the current state of the PCRs selected by mask and
// returns an opaque handle for later Unseal.
func (t *SoftTPM) Seal(mask uint8, secret []byte) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	handle := fmt.Sprintf("seal-%d", t.nextID)
	cp := make([]byte, len(secret))
	copy(cp, secret)
	t.sealed[handle] = sealedSecret{pcrMask: mask, pcrState: t.compositeLocked(mask), secret: cp}
	return handle
}

// Unseal returns the secret bound to handle, but only if the selected PCRs
// still match their value at Seal time. A component that was re-measured
// after tampering gets ErrSealBroken.
func (t *SoftTPM) Unseal(handle string) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sealed[handle]
	if !ok {
		return nil, fmt.Errorf("crypto: unseal %q: %w", handle, ErrUnknownHandle)
	}
	if t.compositeLocked(s.pcrMask) != s.pcrState {
		return nil, ErrSealBroken
	}
	out := make([]byte, len(s.secret))
	copy(out, s.secret)
	return out, nil
}

// Quote is a signed attestation over a PCR selection and a caller nonce.
type Quote struct {
	Nonce     []byte   `json:"nonce"`
	PCRMask   uint8    `json:"pcrMask"`
	Composite Digest   `json:"composite"`
	PCRValues []Digest `json:"pcrValues"`
	Signature []byte   `json:"signature"`
}

// GenerateQuote produces a signed attestation of the PCRs selected by mask,
// bound to a verifier-chosen nonce to prevent replay.
func (t *SoftTPM) GenerateQuote(mask uint8, nonce []byte) Quote {
	t.mu.Lock()
	composite := t.compositeLocked(mask)
	var values []Digest
	for i := 0; i < NumPCRs; i++ {
		if mask&(1<<i) != 0 {
			values = append(values, t.pcrs[i])
		}
	}
	t.mu.Unlock()

	msg := quoteMessage(mask, composite, nonce)
	return Quote{
		Nonce:     append([]byte(nil), nonce...),
		PCRMask:   mask,
		Composite: composite,
		PCRValues: values,
		Signature: t.ident.Sign(msg),
	}
}

// VerifyQuote checks a quote's signature against the TPM's endorsement key
// and the expected composite PCR digest.
func VerifyQuote(ek PublicIdentity, q Quote, expectedComposite Digest, nonce []byte) error {
	if !ConstantTimeEqual(q.Nonce, nonce) {
		return errors.New("crypto: quote nonce mismatch (possible replay)")
	}
	msg := quoteMessage(q.PCRMask, q.Composite, q.Nonce)
	if !ek.Verify(msg, q.Signature) {
		return errors.New("crypto: quote signature invalid")
	}
	if q.Composite != expectedComposite {
		return fmt.Errorf("crypto: attested PCR composite %s differs from expected %s (component tampered)",
			q.Composite.Short(), expectedComposite.Short())
	}
	return nil
}

func quoteMessage(mask uint8, composite Digest, nonce []byte) []byte {
	return SumAll([]byte{mask}, composite[:], nonce).Bytes()
}

// MeasurementLog records which components were measured at "boot" so a
// verifier can recompute the expected PCR composite.
type MeasurementLog struct {
	mu      sync.Mutex
	entries []MeasurementEntry
}

// MeasurementEntry is one measured component.
type MeasurementEntry struct {
	PCRIndex  int    `json:"pcrIndex"`
	Component string `json:"component"`
	Digest    Digest `json:"digest"`
}

// Append records a measurement.
func (l *MeasurementLog) Append(pcrIndex int, component string, data []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, MeasurementEntry{PCRIndex: pcrIndex, Component: component, Digest: Sum(data)})
}

// Entries returns a copy of the log.
func (l *MeasurementLog) Entries() []MeasurementEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]MeasurementEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// ExpectedPCRs replays the measurement log to compute the PCR values a
// well-behaved platform should exhibit.
func (l *MeasurementLog) ExpectedPCRs() [NumPCRs]Digest {
	l.mu.Lock()
	defer l.mu.Unlock()
	var pcrs [NumPCRs]Digest
	for _, e := range l.entries {
		if e.PCRIndex < 0 || e.PCRIndex >= NumPCRs {
			continue
		}
		pcrs[e.PCRIndex] = SumAll(pcrs[e.PCRIndex][:], e.Digest[:])
	}
	return pcrs
}

// ExpectedComposite computes the composite digest over the PCRs selected by
// mask that a platform faithfully extending this log would attest to.
func (l *MeasurementLog) ExpectedComposite(mask uint8) Digest {
	pcrs := l.ExpectedPCRs()
	var chunks [][]byte
	for i := 0; i < NumPCRs; i++ {
		if mask&(1<<i) != 0 {
			chunks = append(chunks, pcrs[i].Bytes())
		}
	}
	return SumAll(chunks...)
}

// ComponentsByPCR lists measured component names grouped by register, sorted
// for stable display.
func (l *MeasurementLog) ComponentsByPCR() map[int][]string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[int][]string)
	for _, e := range l.entries {
		out[e.PCRIndex] = append(out[e.PCRIndex], e.Component)
	}
	for _, names := range out {
		sort.Strings(names)
	}
	return out
}
