package logger

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/netsim"
	"drams/internal/xacml"
)

// remoteEnv: a chain node, an exposed LI and a remote agent on one network.
type remoteEnv struct {
	*liEnv
	net   *netsim.Network
	agent *RemoteAgent
}

func newRemoteEnv(t *testing.T) *remoteEnv {
	t.Helper()
	var seed [32]byte
	seed[0] = 17
	id := crypto.NewIdentityFromSeed("li@t1", seed)
	reg := contract.NewRegistry()
	reg.MustRegister(core.NewLogMatchContract(core.MatchConfig{TimeoutBlocks: 100}))
	net := netsim.New(netsim.Config{Seed: 19, BaseLatency: time.Millisecond})
	node, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "r-node",
		Chain: blockchain.Config{
			Difficulty: 4,
			Identities: []crypto.PublicIdentity{id.Public()},
			Registry:   reg,
		},
		Network:            net,
		Mine:               true,
		EmptyBlockInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	li, err := NewLI(LIConfig{
		Name: "li@t1", Tenant: "t1", Node: node, Identity: id, Key: testKey, Mode: SubmitSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	li.Start()
	if err := li.Expose(net, "li-endpoint@t1"); err != nil {
		t.Fatal(err)
	}
	agent, err := NewRemoteAgent(net, "remote-agent@t1", "li-endpoint@t1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		li.Stop()
		node.Stop()
		net.Close()
	})
	return &remoteEnv{liEnv: &liEnv{node: node, li: li}, net: net, agent: agent}
}

func remoteReq(id string) (*xacml.Request, xacml.Result) {
	req := xacml.NewRequest(id).
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	res := xacml.Result{RequestID: id, Decision: xacml.Permit,
		PolicyID: "root", PolicyVersion: "v1", PolicyDigest: crypto.Sum([]byte("pol"))}
	return req, res
}

func TestRemoteAgentObservationsReachChain(t *testing.T) {
	env := newRemoteEnv(t)
	req, res := remoteReq("ra-1")

	env.agent.PEPRequestSent(req)
	env.agent.PDPRequestReceived(req)
	env.agent.PDPResponseSent(req, res)
	env.agent.PEPResponseReceived(req, res, xacml.Permit)

	for _, kind := range core.LogKinds() {
		rec := waitForRecord(t, env.node, "ra-1", kind)
		if rec.ReqDigest != req.Digest() {
			t.Fatalf("%s: wrong request digest", kind)
		}
		if rec.Agent != "remote-agent@t1" || rec.Tenant != "t1" {
			t.Fatalf("%s: provenance %q/%q", kind, rec.Agent, rec.Tenant)
		}
	}
	// The LI (not the agent) derived tags and sealed the context: the
	// payload decrypts with the LI key and contains the request.
	rec := waitForRecord(t, env.node, "ra-1", core.KindPDPResponse)
	ec, err := env.li.Open("ra-1", rec.Payload)
	if err != nil || ec.Request == nil || ec.Result == nil {
		t.Fatalf("sealed context: %v", err)
	}
	if rec.DecisionTag != env.li.DecisionTag("ra-1", xacml.Permit) {
		t.Fatal("decision tag not derived by LI")
	}
	if st := env.agent.Stats(); st.Observed != 4 || st.Errors != 0 {
		t.Fatalf("agent stats = %+v", st)
	}
}

// TestRemoteAndLocalAgentsProduceIdenticalRecords is the interoperability
// check: the monitoring pipeline cannot tell whether observations came from
// an in-process or a remote agent.
func TestRemoteAndLocalAgentsProduceIdenticalRecords(t *testing.T) {
	env := newRemoteEnv(t)
	local := NewAgent("remote-agent@t1", "t1", env.li, nil) // same name on purpose

	req, res := remoteReq("dup-check")
	env.agent.PEPRequestSent(req)
	remote := waitForRecord(t, env.node, "dup-check", core.KindPEPRequest)

	// The local agent's record for the same observation is an exact
	// duplicate of the matching fields (timestamps and payload nonces
	// differ; the contract treats differing duplicates as equivocation, so
	// compare fields rather than submitting).
	_ = res
	localRec := core.LogRecord{
		Kind: core.KindPEPRequest, ReqID: req.ID, ReqDigest: req.Digest(),
		Tenant: "t1", Agent: local.name,
	}
	if remote.ReqDigest != localRec.ReqDigest || remote.Kind != localRec.Kind ||
		remote.Tenant != localRec.Tenant || remote.Agent != localRec.Agent {
		t.Fatalf("remote record diverges from local schema: %+v", remote)
	}
}

func TestRemoteAgentAlertPush(t *testing.T) {
	env := newRemoteEnv(t)
	var got atomic.Value
	env.agent.OnAlert(func(a core.Alert) { got.Store(a) })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := env.agent.Subscribe(ctx); err != nil {
		t.Fatal(err)
	}

	// Trigger an equivocation alert through the same LI.
	rec := pepRequestRecord("push-1")
	if err := env.li.Log(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	waitForRecord(t, env.node, "push-1", core.KindPEPRequest)
	conflict := rec
	conflict.ReqDigest = crypto.Sum([]byte("conflict"))
	if err := env.li.Log(context.Background(), conflict); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if v := got.Load(); v != nil {
			if v.(core.Alert).Type != core.AlertEquivocation {
				t.Fatalf("alert = %+v", v)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("alert never pushed to the remote agent")
}

func TestObservationValidation(t *testing.T) {
	req := xacml.NewRequest("v-1")
	res := xacml.Result{RequestID: "v-1", Decision: xacml.Permit}
	cases := []struct {
		name string
		obs  Observation
		ok   bool
	}{
		{"pep request ok", Observation{Kind: core.KindPEPRequest, ReqID: "v-1", Request: req}, true},
		{"no request", Observation{Kind: core.KindPEPRequest, ReqID: "v-1"}, false},
		{"no id", Observation{Kind: core.KindPEPRequest, Request: req}, false},
		{"response without result", Observation{Kind: core.KindPDPResponse, ReqID: "v-1", Request: req}, false},
		{"enforcement without decision", Observation{Kind: core.KindPEPResponse, ReqID: "v-1", Request: req, Result: &res}, false},
		{"enforcement ok", Observation{Kind: core.KindPEPResponse, ReqID: "v-1", Request: req, Result: &res, Enforced: xacml.Permit}, true},
		{"unknown kind", Observation{Kind: "weird", ReqID: "v-1", Request: req}, false},
	}
	for _, c := range cases {
		err := c.obs.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRemoteAgentErrorCounting(t *testing.T) {
	env := newRemoteEnv(t)
	// Partition the agent from the LI: observations fail, counted, no panic.
	env.agent.SetCallTimeout(100 * time.Millisecond)
	env.net.Partition([]string{"remote-agent@t1"}, []string{"li-endpoint@t1", "r-node"})
	req, _ := remoteReq("err-1")
	env.agent.PEPRequestSent(req)
	if st := env.agent.Stats(); st.Errors == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
