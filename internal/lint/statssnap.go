package lint

import (
	"go/ast"
	"go/types"
)

// StatsSnap enforces the snapshot contract on exported Stats() methods:
// the returned value is a point-in-time copy, never a live reference to a
// mutex-guarded map or slice. Handing out the live container races with
// the hot path the moment the caller iterates it (PR 9's stalled-scraper
// fix depends on Stats snapshots being safe to serialize with no lock
// held). Copy idioms — ranging into a fresh container, len()/cap(),
// indexed reads, copy/append sources — are recognized; anything else that
// lets a receiver-rooted map or slice escape is flagged.
type StatsSnap struct{}

// NewStatsSnap returns the analyzer.
func NewStatsSnap() *StatsSnap { return &StatsSnap{} }

func (a *StatsSnap) Name() string { return "statssnap" }

func (a *StatsSnap) Doc() string {
	return "exported Stats() methods return copies, never live references to guarded maps/slices (PR 9)"
}

func (a *StatsSnap) Run(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Stats" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
				continue
			}
			recv := receiverIdentObj(p.Info, fd)
			if recv == nil {
				continue
			}
			a.checkBody(p, fd, recv)
		}
	}
}

func (a *StatsSnap) checkBody(p *Pass, fd *ast.FuncDecl, recv types.Object) {
	walkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		root := selectorRoot(sel.X)
		if root == nil || p.Info.Uses[root] != recv {
			return true
		}
		tv, ok := p.Info.Types[sel]
		if !ok || !isMapOrSlice(tv.Type) {
			return true
		}
		if escapeSafe(sel, stack) {
			return false // the selector's own children need no second look
		}
		p.Reportf(sel.Pos(), "Stats() retains a reference to guarded %s: return a copy so callers can iterate without racing the hot path", types.ExprString(sel))
		return false
	})
}

// escapeSafe reports whether the immediate syntactic context of sel only
// reads the container without retaining it.
func escapeSafe(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	// Walk out through parens.
	i := len(stack) - 1
	for i > 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	switch parent := stack[i].(type) {
	case *ast.RangeStmt:
		return ast.Unparen(parent.X) == sel // `for k, v := range s.m` copies
	case *ast.IndexExpr:
		return ast.Unparen(parent.X) == sel // `s.m[k]` reads one element
	case *ast.CallExpr:
		switch fun := ast.Unparen(parent.Fun).(type) {
		case *ast.Ident:
			switch fun.Name {
			case "len", "cap":
				return true
			case "copy":
				// copy(dst, s.m) reads; copy(s.m, src) would mutate but
				// retains nothing either way.
				return true
			case "append":
				// append(dst, s.m...) reads the source; append(s.m, x)
				// retains the backing array in the result.
				return len(parent.Args) > 0 && ast.Unparen(parent.Args[0]) != sel
			}
		}
	case *ast.SelectorExpr:
		// s.m.Something() — method call on the container (e.g. a typed
		// map with a Snapshot method); the method decides, not us.
		return parent.X == sel && i+1 <= len(stack)
	}
	return false
}
