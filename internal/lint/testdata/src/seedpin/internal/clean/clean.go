// Package clean is the zero-finding twin for seedpin.
package clean
