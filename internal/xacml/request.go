package xacml

import (
	"encoding/json"
	"fmt"
	"sort"

	"drams/internal/crypto"
)

// Category is an XACML attribute category.
type Category string

// The four standard categories.
const (
	CatSubject     Category = "subject"
	CatResource    Category = "resource"
	CatAction      Category = "action"
	CatEnvironment Category = "environment"
)

// Categories lists the standard categories in canonical order.
func Categories() []Category {
	return []Category{CatSubject, CatResource, CatAction, CatEnvironment}
}

// AttributeID names an attribute within a category (e.g. "role", "owner").
type AttributeID string

// Request is an access request: attribute bags grouped by category.
type Request struct {
	// ID correlates the request across PEP, PDP, logs and monitor checks.
	ID string `json:"id"`
	// TraceID is the end-to-end tracing identifier minted at the PEP and
	// propagated through wire calls, probe records and analyser events. It
	// is observability metadata: excluded (like ID) from CanonicalBytes,
	// so it never perturbs content digests, M1 matching or the decision
	// cache. Empty when tracing is off or the request predates it.
	TraceID string `json:"trace,omitempty"`
	// Attrs holds the attribute bags.
	Attrs map[Category]map[AttributeID]Bag `json:"attrs"`
}

// NewRequest returns an empty request with the given correlation ID.
func NewRequest(id string) *Request {
	return &Request{ID: id, Attrs: make(map[Category]map[AttributeID]Bag)}
}

// Add appends a value to the (category, attribute) bag and returns the
// request for chaining.
func (r *Request) Add(cat Category, id AttributeID, v Value) *Request {
	m, ok := r.Attrs[cat]
	if !ok {
		m = make(map[AttributeID]Bag)
		r.Attrs[cat] = m
	}
	m[id] = append(m[id], v)
	return r
}

// Get returns the bag for (category, attribute); empty if absent.
func (r *Request) Get(cat Category, id AttributeID) Bag {
	if m, ok := r.Attrs[cat]; ok {
		return m[id]
	}
	return nil
}

// Clone deep-copies the request.
func (r *Request) Clone() *Request {
	out := NewRequest(r.ID)
	out.TraceID = r.TraceID
	for cat, m := range r.Attrs {
		for id, bag := range m {
			for _, v := range bag {
				out.Add(cat, id, v)
			}
		}
	}
	return out
}

// CanonicalBytes returns a deterministic encoding of the request content
// (excluding the correlation ID) used for integrity digests: the monitor
// compares the digest logged at the PEP with the digest logged at the PDP
// (check M1), and the PDP decision cache keys on it. It runs on every
// monitored request (twice, at PEP and PDP probes), so the encoding is
// built with plain appends rather than fmt.
func (r *Request) CanonicalBytes() []byte {
	buf := make([]byte, 0, 256)
	cats := make([]string, 0, len(r.Attrs))
	for c := range r.Attrs {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	for _, c := range cats {
		m := r.Attrs[Category(c)]
		ids := make([]string, 0, len(m))
		for id := range m {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		for _, id := range ids {
			bag := m[AttributeID(id)]
			buf = append(buf, c...)
			buf = append(buf, '/')
			buf = append(buf, id...)
			buf = append(buf, '=', '[')
			switch len(bag) {
			case 0:
			case 1:
				buf = bag[0].appendKey(buf)
			default:
				vals := make([]string, len(bag))
				for i, v := range bag {
					vals[i] = v.Key()
				}
				sort.Strings(vals)
				for i, v := range vals {
					if i > 0 {
						buf = append(buf, ',')
					}
					buf = append(buf, v...)
				}
			}
			buf = append(buf, ']', ';')
		}
	}
	return buf
}

// Digest returns the content digest of the request.
func (r *Request) Digest() crypto.Digest {
	return crypto.Sum(r.CanonicalBytes())
}

// Encode serialises the request as JSON.
func (r *Request) Encode() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("xacml: encode request: %v", err))
	}
	return b
}

// DecodeRequest parses a JSON request.
func DecodeRequest(data []byte) (*Request, error) {
	var r Request
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("xacml: decode request: %w", err)
	}
	return &r, nil
}

// Designator references an attribute in a request.
type Designator struct {
	Cat Category    `json:"cat"`
	ID  AttributeID `json:"id"`
	// MustBePresent makes a missing attribute an evaluation error
	// (Indeterminate) rather than a non-match.
	MustBePresent bool `json:"mustBePresent,omitempty"`
}

// ErrMissingAttribute signals a MustBePresent designator with no values.
var ErrMissingAttribute = fmt.Errorf("xacml: missing attribute")

// Resolve returns the designated bag; a MustBePresent designator with an
// empty bag returns ErrMissingAttribute.
func (d Designator) Resolve(r *Request) (Bag, error) {
	bag := r.Get(d.Cat, d.ID)
	if len(bag) == 0 && d.MustBePresent {
		return nil, fmt.Errorf("%w: %s/%s", ErrMissingAttribute, d.Cat, d.ID)
	}
	return bag, nil
}

// Key returns a canonical identifier for the designated attribute (ignoring
// MustBePresent), used by the analyser's domain extraction.
func (d Designator) Key() string { return string(d.Cat) + "/" + string(d.ID) }
