package merkle

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"drams/internal/crypto"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestBuildEmptyFails(t *testing.T) {
	if _, err := Build(nil); !errors.Is(err, ErrEmptyTree) {
		t.Fatalf("got %v", err)
	}
	if _, err := BuildFromHashes(nil); !errors.Is(err, ErrEmptyTree) {
		t.Fatalf("got %v", err)
	}
}

func TestSingleLeaf(t *testing.T) {
	tr, err := Build(leaves(1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root() != LeafHash([]byte("leaf-0")) {
		t.Fatal("single-leaf root should be the leaf hash")
	}
	p, err := tr.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 0 {
		t.Fatalf("single leaf proof has %d steps", len(p.Steps))
	}
	if !Verify(tr.Root(), []byte("leaf-0"), p) {
		t.Fatal("single leaf proof failed")
	}
}

func TestProofsVerifyAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		ls := leaves(n)
		tr, err := Build(ls)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for i := 0; i < n; i++ {
			p, err := tr.Prove(i)
			if err != nil {
				t.Fatalf("n=%d Prove(%d): %v", n, i, err)
			}
			if !Verify(tr.Root(), ls[i], p) {
				t.Fatalf("n=%d leaf %d proof failed", n, i)
			}
		}
	}
}

func TestProofRejectsWrongLeaf(t *testing.T) {
	ls := leaves(10)
	tr, _ := Build(ls)
	p, _ := tr.Prove(3)
	if Verify(tr.Root(), []byte("not-the-leaf"), p) {
		t.Fatal("proof verified for wrong payload")
	}
	if Verify(tr.Root(), ls[4], p) {
		t.Fatal("proof for index 3 verified leaf 4")
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	ls := leaves(8)
	tr, _ := Build(ls)
	p, _ := tr.Prove(0)
	other, _ := Build(leaves(9))
	if Verify(other.Root(), ls[0], p) {
		t.Fatal("proof verified under wrong root")
	}
}

func TestProofIndexRange(t *testing.T) {
	tr, _ := Build(leaves(4))
	if _, err := tr.Prove(-1); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("got %v", err)
	}
	if _, err := tr.Prove(4); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("got %v", err)
	}
}

func TestRootChangesWithAnyLeafChange(t *testing.T) {
	base := leaves(16)
	tr, _ := Build(base)
	root := tr.Root()
	for i := range base {
		mutated := leaves(16)
		mutated[i] = append(mutated[i], 'X')
		tr2, _ := Build(mutated)
		if tr2.Root() == root {
			t.Fatalf("mutating leaf %d did not change root", i)
		}
	}
}

func TestDomainSeparation(t *testing.T) {
	// An interior node value must never equal a leaf hash of the
	// concatenated children (second-preimage defence).
	l, r := LeafHash([]byte("a")), LeafHash([]byte("b"))
	node := NodeHash(l, r)
	concat := append(l.Bytes(), r.Bytes()...)
	if node == LeafHash(concat) {
		t.Fatal("interior node collides with leaf hash")
	}
}

func TestOddPromotionNoDuplicateAmbiguity(t *testing.T) {
	// With duplicate-last-leaf trees, [a,b,c] and [a,b,c,c] share a root;
	// promotion must distinguish them.
	t3, _ := Build(leaves(3))
	ls4 := leaves(3)
	ls4 = append(ls4, ls4[2])
	t4, _ := Build(ls4)
	if t3.Root() == t4.Root() {
		t.Fatal("odd-promotion tree has duplicate-leaf ambiguity")
	}
}

func TestBuildFromHashesMatchesBuild(t *testing.T) {
	ls := leaves(7)
	hashes := make([]crypto.Digest, len(ls))
	for i, l := range ls {
		hashes[i] = LeafHash(l)
	}
	a, _ := Build(ls)
	b, _ := BuildFromHashes(hashes)
	if a.Root() != b.Root() {
		t.Fatal("Build and BuildFromHashes disagree")
	}
	p, _ := b.Prove(2)
	if !VerifyHash(b.Root(), hashes[2], p) {
		t.Fatal("VerifyHash failed")
	}
}

func TestRootOfConveniences(t *testing.T) {
	if !RootOf(nil).IsZero() {
		t.Fatal("RootOf(nil) should be zero digest")
	}
	if !RootOfHashes(nil).IsZero() {
		t.Fatal("RootOfHashes(nil) should be zero digest")
	}
	ls := leaves(5)
	tr, _ := Build(ls)
	if RootOf(ls) != tr.Root() {
		t.Fatal("RootOf mismatch")
	}
}

// Property: every proof of every leaf verifies, and no proof verifies a
// mutated payload.
func TestProofsPropertyBased(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(payloads [][]byte, flip uint8) bool {
		if len(payloads) == 0 {
			return true
		}
		if len(payloads) > 64 {
			payloads = payloads[:64]
		}
		tr, err := Build(payloads)
		if err != nil {
			return false
		}
		idx := int(flip) % len(payloads)
		p, err := tr.Prove(idx)
		if err != nil {
			return false
		}
		if !Verify(tr.Root(), payloads[idx], p) {
			return false
		}
		mutated := append(append([]byte(nil), payloads[idx]...), 0xAB)
		return !Verify(tr.Root(), mutated, p)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: proofs are non-transferable across indices unless payloads equal.
func TestProofNonTransferable(t *testing.T) {
	ls := leaves(32)
	tr, _ := Build(ls)
	for i := 0; i < 32; i++ {
		p, _ := tr.Prove(i)
		for j := 0; j < 32; j++ {
			if i == j {
				continue
			}
			if Verify(tr.Root(), ls[j], p) {
				t.Fatalf("proof for %d verified leaf %d", i, j)
			}
		}
	}
}
