package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // negative deltas ignored
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("concurrent counter = %d, want 16000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
		tol  float64
	}{
		{0, 1, 0}, {1, 1000, 0}, {0.5, 500.5, 1}, {0.9, 900, 2}, {0.99, 990, 2},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Errorf("q%.2f = %v, want ~%v", c.q, got, c.want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
}

func TestHistogramBoundedMemory(t *testing.T) {
	h := NewHistogram(128)
	for i := 0; i < 100000; i++ {
		h.Observe(float64(i))
	}
	// Log-bucketed storage: memory tracks the data's span (octaves ×
	// sub-buckets), never the sample count.
	if got := h.Buckets(); got > 16*1024 {
		t.Fatalf("bucket count grew to %d", got)
	}
	if h.Count() != 100000 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-49999.5) > 100 {
		t.Fatalf("p50 = %v, want ~49999.5", p50)
	}
}

func TestHistogramNegativeAndZero(t *testing.T) {
	h := NewHistogram(0)
	for _, v := range []float64{-10, -1, 0, 0, 1, 10} {
		h.Observe(v)
	}
	if h.Min() != -10 || h.Max() != 10 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if p0 := h.Quantile(0); p0 != -10 {
		t.Fatalf("q0 = %v, want -10", p0)
	}
	if p50 := h.Quantile(0.5); math.Abs(p50) > 0.5 {
		t.Fatalf("p50 = %v, want ~0", p50)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(0)
	h.ObserveDuration(1500 * time.Microsecond)
	if got := h.Mean(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("duration ms = %v, want 1.5", got)
	}
}

func TestSnapshotStdDev(t *testing.T) {
	h := NewHistogram(0)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("summary string: %s", s)
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("registry did not return same counter")
	}
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(1)
	dump := r.Dump()
	for _, want := range []string{"counter x = 1", "gauge g = 5", "hist h"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1024)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}
