// Package trace is the dependency-free span recorder for the end-to-end
// decision pipeline. It lives below the component layer on purpose:
// components (PEP/PDP services, the LI, the analyser, the monitor) record
// spans through it without importing internal/obs, keeping the PR 9
// layering contract — obs builds the operator surface (exposition, trace
// timelines over HTTP) on top, and nothing in the hot path shares an
// import or a lock with the scrape path. Package obs aliases these types,
// so wiring layers keep using obs.Tracer unchanged.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"drams/internal/metrics"
)

// Canonical stage names for the end-to-end decision pipeline, in causal
// order. Components record spans under these; ad-hoc stages are allowed
// but these are what dashboards and Deployment.Trace document.
const (
	StagePEPDecide      = "pep.decide"      // PEP-observed round trip to the PDP
	StagePDPEval        = "pdp.eval"        // PDP-side policy evaluation
	StageLIFlushWait    = "li.flush_wait"   // probe record queued at the LI → batch tx submitted
	StageChainAnchor    = "chain.anchor"    // request tracked → its log record anchored in a block
	StageAnalyserVerify = "analyser.verify" // analyser re-derivation of one log record
	StageMonitorMatch   = "monitor.match"   // request tracked → M-check match observed off-chain
	StageMonitorAlert   = "monitor.alert"   // request tracked → alert observed off-chain
)

// stageFamily is the histogram family every span duration lands in, one
// series per stage label.
const stageFamily = "drams_trace_stage_ms"

// Span is one recorded stage of a request's end-to-end timeline.
type Span struct {
	TraceID  string
	Stage    string
	Start    time.Time
	Duration time.Duration
}

// String renders the span for timeline dumps.
func (s Span) String() string {
	return fmt.Sprintf("%-16s +%8.3fms  %.3fms", s.Stage,
		float64(s.Start.UnixNano()%1e12)/1e6, float64(s.Duration)/float64(time.Millisecond))
}

// Tracer records per-request stage spans: each span lands in a bounded
// per-trace timeline (FIFO-evicted once capacity distinct trace IDs are
// held) and in a per-stage duration histogram on the registry, so /metrics
// answers "where does the time go" in aggregate while Trace answers it for
// one request. All methods are safe on a nil receiver — a nil *Tracer is
// the disabled tracer, costing one branch per call site.
type Tracer struct {
	reg *metrics.Registry
	cap int

	mu    sync.Mutex
	spans map[string][]Span
	order []string // insertion order of trace IDs, for FIFO eviction
}

// DefaultCapacity bounds how many distinct in-flight/recent trace
// timelines a Tracer retains.
const DefaultCapacity = 4096

// New builds a tracer recording stage histograms into reg (which may be
// nil: timelines only). capacity <= 0 uses DefaultCapacity.
func New(reg *metrics.Registry, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if reg != nil {
		reg.Help(stageFamily, "Per-stage span durations of the decision pipeline, labelled by stage.")
	}
	return &Tracer{reg: reg, cap: capacity, spans: make(map[string][]Span)}
}

// Span records one stage of a trace. No-op on a nil tracer or empty
// traceID, so call sites need no enablement checks.
func (t *Tracer) Span(traceID, stage string, start time.Time, d time.Duration) {
	if t == nil || traceID == "" {
		return
	}
	if d < 0 {
		d = 0
	}
	if t.reg != nil {
		t.reg.Histogram(fmt.Sprintf(`%s{stage=%q}`, stageFamily, stage)).ObserveDuration(d)
	}
	t.mu.Lock()
	if _, ok := t.spans[traceID]; !ok {
		if len(t.order) >= t.cap {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.spans, evict)
		}
		t.order = append(t.order, traceID)
	}
	t.spans[traceID] = append(t.spans[traceID], Span{TraceID: traceID, Stage: stage, Start: start, Duration: d})
	t.mu.Unlock()
}

// Trace returns the recorded timeline for one trace ID, sorted by span
// start time. Nil when unknown (or the tracer is nil / the trace was
// evicted).
func (t *Tracer) Trace(traceID string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := t.spans[traceID]
	out := make([]Span, len(spans))
	copy(out, spans)
	t.mu.Unlock()
	if len(out) == 0 {
		return nil
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}
